package gossip_test

import (
	"testing"

	"gossip"
)

// buildRingWithChord builds the quickstart topology: a fast ring plus one
// slow chord.
func buildRingWithChord(t *testing.T) *gossip.Graph {
	t.Helper()
	g := gossip.NewGraph(6)
	for v := 0; v < 6; v++ {
		g.MustAddEdge(v, (v+1)%6, 1)
	}
	g.MustAddEdge(0, 3, 100)
	return g
}

func TestFacadeAnalyze(t *testing.T) {
	g := buildRingWithChord(t)
	p, err := gossip.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	if p.N != 6 || p.M != 7 {
		t.Fatalf("profile: %+v", p)
	}
	// The slow chord is useless: the critical latency is 1 (the fast
	// ring carries the bottleneck) and D ignores the latency-100 edge.
	if p.Conductance.EllStar != 1 {
		t.Fatalf("ℓ* = %d, want 1", p.Conductance.EllStar)
	}
	if p.Diameter != 3 {
		t.Fatalf("D = %d, want 3", p.Diameter)
	}
	if err := p.Conductance.CheckTheorem5(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeDisseminateAllAlgorithms(t *testing.T) {
	g := buildRingWithChord(t)
	for _, algo := range []gossip.Algorithm{
		gossip.Auto, gossip.PushPull, gossip.Spanner, gossip.Pattern, gossip.Flood,
	} {
		out, err := gossip.Disseminate(g, gossip.Options{
			Algorithm:      algo,
			Source:         2,
			KnownLatencies: true,
			Seed:           5,
		})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if !out.Completed || out.Rounds <= 0 {
			t.Fatalf("%v: %+v", algo, out)
		}
	}
}

func TestFacadeGraphValidation(t *testing.T) {
	g := gossip.NewGraph(3)
	if err := g.AddEdge(0, 1, 0); err == nil {
		t.Fatal("zero latency accepted")
	}
	g.MustAddEdge(0, 1, 1)
	if _, err := gossip.Analyze(g); err == nil {
		t.Fatal("disconnected graph accepted by Analyze")
	}
}
