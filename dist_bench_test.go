// Distributed-execution benchmarks: the shard wire codec's round-trip
// cost (the per-barrier overhead every worker pays) and the end-to-end
// coordinator path against a single process. Both are in the bench-json
// artifact; the coordinator benchmark also records the wall-clock ratio
// as a metric so the perf trajectory of distributed mode is tracked
// across PRs.
package gossip_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"gossip/internal/loadgen"
	"gossip/internal/server"
	"gossip/internal/server/api"
	"gossip/internal/sim"
)

// BenchmarkDistributedShardMerge round-trips one realistic round
// barrier through the wire codec: two shard frames (intents, gains,
// calendar bits) encoded, then decoded the way a worker ingests the
// coordinator's rebroadcast bundle. This is the fixed per-round tax of
// distributed mode on top of the simulation itself.
func BenchmarkDistributedShardMerge(b *testing.B) {
	const perShard = 2048
	frames := make([]sim.DistFrame, 2)
	for s := range frames {
		f := &frames[s]
		f.Round = 7
		f.Shard = s
		f.MinWake = 8
		f.SleeperWake = sim.WakeOnDelivery
		f.NextDeliver = 8
		f.Pending = true
		for i := 0; i < perShard; i++ {
			u := int32(s*perShard + i)
			f.Intents = append(f.Intents, sim.DistIntent{
				U: u, Idx: int32(i % 4), V: u ^ 1, VIdx: int32(i % 4),
				Lat: int32(1 + i%3), Lost: i%10 == 0,
			})
			f.Gains = append(f.Gains, sim.DistGain{Node: u, Rumor: u ^ 1})
		}
	}
	enc := make([][]byte, 2)
	var decoded sim.DistFrame
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := range frames {
			enc[s] = api.AppendRoundFrame(enc[s][:0], &frames[s])
		}
		for s := range enc {
			if err := api.DecodeRoundFrame(enc[s], &decoded); err != nil {
				b.Fatal(err)
			}
			if len(decoded.Intents) != perShard {
				b.Fatalf("decoded %d intents, want %d", len(decoded.Intents), perShard)
			}
		}
	}
	b.ReportMetric(float64(2*perShard), "intents/op")
}

// BenchmarkDistributedCoordinator times a sharded push-pull job through
// the full fleet path — coordinator fan-out, HTTP shard sessions, round
// barriers, result assembly — with a fresh seed every iteration so no
// cache short-circuits the measurement. The single-process wall clock
// for the same jobs is measured untimed and the ratio reported as
// single/coordinator; on a single-core host the distributed run
// time-slices one CPU, so the honest ratio sits below 1 there (E28
// records the critical-path compute ratio alongside).
func BenchmarkDistributedCoordinator(b *testing.B) {
	fleet, err := loadgen.StartFleet(3, server.Config{Pool: 2, CacheSize: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer fleet.Close()
	single, err := loadgen.StartLocal(server.Config{Pool: 2, CacheSize: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer single.Close()

	post := func(base string, req server.Request) error {
		raw, err := json.Marshal(req)
		if err != nil {
			return err
		}
		resp, err := http.Post(base+"/v1/simulations", "application/json", bytes.NewReader(raw))
		if err != nil {
			return err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d: %.200s", resp.StatusCode, body)
		}
		return nil
	}
	job := func(seed uint64) server.Request {
		return server.Request{
			Driver: "push-pull",
			Graph:  server.GraphSpec{Family: "regular", N: 4096, Latency: 1},
			Seed:   seed,
		}
	}

	// Untimed single-process baseline over the same seed sequence.
	singleStart := time.Now()
	for i := 0; i < b.N; i++ {
		if err := post(single.URL, job(uint64(i)*2_654_435_761+1)); err != nil {
			b.Fatal(err)
		}
	}
	singleNS := float64(time.Since(singleStart))

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := job(uint64(i)*2_654_435_761 + 1)
		req.Shards = 2
		if err := post(fleet.URLs()[0], req); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	coordNS := float64(b.Elapsed())
	if coordNS > 0 {
		b.ReportMetric(singleNS/coordNS, "single/coord-wall")
	}
}
