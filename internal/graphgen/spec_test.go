package graphgen

import (
	"strings"
	"testing"
)

// TestBuildFamilies builds every advertised family once and sanity-checks
// the node count against the family's -n semantics.
func TestBuildFamilies(t *testing.T) {
	wantN := map[string]int{
		"clique":   12,
		"star":     12,
		"path":     12,
		"cycle":    12,
		"tree":     12,
		"er":       12,
		"regular":  12,
		"grid":     16,     // side = ceil(sqrt 12) = 4
		"dumbbell": 24,     // per-side count
		"ring":     6 * 12, // layers × per-layer count
	}
	for _, fam := range Families() {
		spec := Spec{Family: fam, N: 12, Latency: 2, P: 0.3, Layers: 6, Seed: 7}
		g, err := Build(spec)
		if err != nil {
			t.Fatalf("Build(%s): %v", fam, err)
		}
		if want, ok := wantN[fam]; ok && g.N() != want {
			t.Errorf("Build(%s): n = %d, want %d", fam, g.N(), want)
		}
		if g.N() == 0 || g.M() == 0 {
			t.Errorf("Build(%s): empty graph n=%d m=%d", fam, g.N(), g.M())
		}
		if min := spec.MinNodes(); g.N() < min {
			t.Errorf("Build(%s): n = %d below MinNodes %d", fam, g.N(), min)
		}
	}
}

func TestBuildUnknownFamily(t *testing.T) {
	_, err := Build(Spec{Family: "moebius", N: 8})
	if err == nil || !strings.Contains(err.Error(), "unknown family") {
		t.Fatalf("err = %v, want unknown family", err)
	}
}

// TestBuildDeterministic pins that a Spec fully determines the topology:
// same spec, same edges — the property gossipd's request memoization
// relies on.
func TestBuildDeterministic(t *testing.T) {
	a, err := Build(Spec{Family: "er", N: 32, Latency: 1, P: 0.2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(Spec{Family: "ER", N: 32, Latency: 1, P: 0.2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != b.N() || a.M() != b.M() {
		t.Fatalf("same spec built different graphs: %d/%d vs %d/%d", a.N(), a.M(), b.N(), b.M())
	}
	for u := 0; u < a.N(); u++ {
		na, nb := a.Neighbors(u), b.Neighbors(u)
		if len(na) != len(nb) {
			t.Fatalf("node %d: degree %d vs %d", u, len(na), len(nb))
		}
	}
}

// TestBuildPassesValuesThrough pins that Build never rewrites caller
// values: an explicit p=0 Erdős–Rényi must fail exactly like calling the
// generator directly (edgeless graphs cannot be connected), not silently
// simulate some default p.
func TestBuildPassesValuesThrough(t *testing.T) {
	if _, err := Build(Spec{Family: "er", N: 8, Latency: 1, P: 0, Seed: 3}); err == nil {
		t.Fatal("Build(er, p=0) succeeded; p must reach the generator verbatim")
	}
}
