package graphgen

import (
	"testing"
)

func TestRingMatchingExpanderCSR(t *testing.T) {
	for _, n := range []int{4, 5, 100, 1001} {
		csr, err := RingMatchingExpanderCSR(n, 2, NewRand(uint64(n)))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := csr.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if csr.N() != n {
			t.Fatalf("n=%d: got %d nodes", n, csr.N())
		}
		if csr.M() < n {
			t.Fatalf("n=%d: %d edges, want at least the cycle", n, csr.M())
		}
		if d := csr.MaxDegree(); d > 3 {
			t.Fatalf("n=%d: max degree %d, want <= 3", n, d)
		}
		if csr.MaxLatency() != 2 {
			t.Fatalf("n=%d: max latency %d", n, csr.MaxLatency())
		}
	}
	if _, err := RingMatchingExpanderCSR(3, 1, NewRand(1)); err == nil {
		t.Fatal("n=3 accepted")
	}
	if _, err := RingMatchingExpanderCSR(10, 0, NewRand(1)); err == nil {
		t.Fatal("latency 0 accepted")
	}
}

func TestRingMatchingExpanderDeterministic(t *testing.T) {
	a, err := RingMatchingExpanderCSR(64, 1, NewRand(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RingMatchingExpanderCSR(64, 1, NewRand(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.M() != b.M() {
		t.Fatalf("same seed, different edge counts %d vs %d", a.M(), b.M())
	}
	for u := 0; u < 64; u++ {
		na, nb := a.NeighborIDs(u), b.NeighborIDs(u)
		if len(na) != len(nb) {
			t.Fatalf("node %d: degrees differ", u)
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("node %d: adjacency differs at slot %d", u, i)
			}
		}
	}
}

func TestSlowBridgeRingCSR(t *testing.T) {
	for _, n := range []int{6, 7, 1000} {
		csr, err := SlowBridgeRingCSR(n, 50)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := csr.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if csr.M() != n+1 {
			t.Fatalf("n=%d: %d edges, want %d (two cycles + bridge)", n, csr.M(), n+1)
		}
		if csr.MaxLatency() != 50 {
			t.Fatalf("n=%d: max latency %d, want the bridge's 50", n, csr.MaxLatency())
		}
	}
	if _, err := SlowBridgeRingCSR(5, 10); err == nil {
		t.Fatal("n=5 accepted")
	}
	if _, err := SlowBridgeRingCSR(10, 0); err == nil {
		t.Fatal("bridge latency 0 accepted")
	}
}
