// Package graphgen builds the graph families used throughout the
// reproduction: standard topologies (cliques, stars, grids, expanders,
// random graphs) and the paper's lower-bound constructions (the guessing
// game gadgets of Figure 1, the bipartite network of Theorem 10, and the
// ring of gadgets of Figure 2 / Theorem 13).
//
// All randomized generators take an explicit *rand.Rand so experiments are
// reproducible from a seed.
package graphgen

import (
	"fmt"
	"math/rand/v2"

	"gossip/internal/graph"
)

// Clique returns the complete graph K_n with every edge at the given
// latency.
func Clique(n, latency int) *graph.Graph {
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.MustAddEdge(u, v, latency)
		}
	}
	return g
}

// Star returns a star on n nodes with node 0 as the center.
func Star(n, latency int) *graph.Graph {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(0, v, latency)
	}
	return g
}

// Path returns the path 0-1-...-(n-1) with uniform latency.
func Path(n, latency int) *graph.Graph {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(v-1, v, latency)
	}
	return g
}

// Cycle returns the n-cycle with uniform latency.
func Cycle(n, latency int) *graph.Graph {
	g := Path(n, latency)
	if n > 2 {
		g.MustAddEdge(n-1, 0, latency)
	}
	return g
}

// Grid returns the rows x cols grid graph with uniform latency.
func Grid(rows, cols, latency int) *graph.Graph {
	g := graph.New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.MustAddEdge(id(r, c), id(r, c+1), latency)
			}
			if r+1 < rows {
				g.MustAddEdge(id(r, c), id(r+1, c), latency)
			}
		}
	}
	return g
}

// BinaryTree returns a complete binary tree on n nodes (heap numbering).
func BinaryTree(n, latency int) *graph.Graph {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge((v-1)/2, v, latency)
	}
	return g
}

// ErdosRenyi returns a connected G(n,p) sample with uniform latency.
// It resamples until connected (p must be above the connectivity
// threshold for this to terminate quickly) and gives up after 1000 tries.
func ErdosRenyi(n int, p float64, latency int, rng *rand.Rand) (*graph.Graph, error) {
	for try := 0; try < 1000; try++ {
		g := graph.New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < p {
					g.MustAddEdge(u, v, latency)
				}
			}
		}
		if g.Connected() {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graphgen: G(%d,%.4f) not connected after 1000 samples", n, p)
}

// RandomRegular returns a connected random d-regular graph on n nodes via
// the configuration (pairing) model with edge-swap repair: colliding stub
// pairs (self-loops, duplicates) are resolved by double-edge swaps against
// already-placed edges, which keeps the uniform-ish distribution while
// avoiding the exponentially unlikely clean pairing at larger d. n*d must
// be even and d < n. Random regular graphs with d >= 3 are expanders with
// high probability, which is how the paper's Theorem 9 network uses them.
func RandomRegular(n, d int, latency int, rng *rand.Rand) (*graph.Graph, error) {
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graphgen: n*d = %d*%d is odd", n, d)
	}
	if d >= n {
		return nil, fmt.Errorf("graphgen: degree %d >= n %d", d, n)
	}
	if d == 0 && n > 1 {
		return nil, fmt.Errorf("graphgen: 0-regular graph on %d > 1 nodes is disconnected", n)
	}
	for try := 0; try < 200; try++ {
		g, ok := pairWithRepair(n, d, latency, rng)
		if ok && g.Connected() {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graphgen: no simple connected %d-regular graph on %d nodes after 200 attempts", d, n)
}

// pairWithRepair runs one configuration-model draw, fixing collisions via
// double-edge swaps.
func pairWithRepair(n, d, latency int, rng *rand.Rand) (*graph.Graph, bool) {
	stubs := make([]int, 0, n*d)
	for u := 0; u < n; u++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, u)
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	g := graph.New(n)
	var leftoverStubs []int
	for i := 0; i < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u == v || g.HasEdge(u, v) {
			leftoverStubs = append(leftoverStubs, u, v)
			continue
		}
		g.MustAddEdge(u, v, latency)
	}
	// Repair: place each leftover pair either directly or by swapping
	// with a random existing edge (x,y): remove (x,y), add (u,x),(v,y).
	for attempts := 0; len(leftoverStubs) > 0; attempts++ {
		if attempts > 200*n*d {
			return nil, false
		}
		u := leftoverStubs[len(leftoverStubs)-2]
		v := leftoverStubs[len(leftoverStubs)-1]
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v, latency)
			leftoverStubs = leftoverStubs[:len(leftoverStubs)-2]
			continue
		}
		edges := g.Edges()
		if len(edges) == 0 {
			return nil, false
		}
		e := edges[rng.IntN(len(edges))]
		x, y := e.U, e.V
		if rng.IntN(2) == 0 {
			x, y = y, x
		}
		if u == x || v == y || g.HasEdge(u, x) || g.HasEdge(v, y) {
			continue
		}
		if err := g.RemoveEdge(e.U, e.V); err != nil {
			return nil, false
		}
		g.MustAddEdge(u, x, latency)
		g.MustAddEdge(v, y, latency)
		leftoverStubs = leftoverStubs[:len(leftoverStubs)-2]
	}
	return g, true
}

// Dumbbell returns two cliques of size half joined by a single bridge edge
// with the given bridge latency; intra-clique edges have latency 1.
// This is the canonical "one slow cut edge" topology: its critical
// conductance is tiny and its ℓ* equals bridgeLatency.
func Dumbbell(half int, bridgeLatency int) *graph.Graph {
	g := graph.New(2 * half)
	for u := 0; u < half; u++ {
		for v := u + 1; v < half; v++ {
			g.MustAddEdge(u, v, 1)
			g.MustAddEdge(half+u, half+v, 1)
		}
	}
	g.MustAddEdge(0, half, bridgeLatency)
	return g
}

// MultiBridgeDumbbell is Dumbbell with `bridges` parallel-ish slow links
// (distinct endpoint pairs) between the two cliques.
func MultiBridgeDumbbell(half, bridges, bridgeLatency int) (*graph.Graph, error) {
	if bridges > half {
		return nil, fmt.Errorf("graphgen: %d bridges > clique size %d", bridges, half)
	}
	g := graph.New(2 * half)
	for u := 0; u < half; u++ {
		for v := u + 1; v < half; v++ {
			g.MustAddEdge(u, v, 1)
			g.MustAddEdge(half+u, half+v, 1)
		}
	}
	for i := 0; i < bridges; i++ {
		g.MustAddEdge(i, half+i, bridgeLatency)
	}
	return g, nil
}

// AssignRandomLatencies overwrites every edge latency with a value drawn
// uniformly from [lo, hi].
func AssignRandomLatencies(g *graph.Graph, lo, hi int, rng *rand.Rand) {
	if lo < 1 || hi < lo {
		panic(fmt.Sprintf("graphgen: bad latency range [%d,%d]", lo, hi))
	}
	g.ForEachEdge(func(e graph.Edge) {
		l := lo + rng.IntN(hi-lo+1)
		if err := g.SetLatency(e.U, e.V, l); err != nil {
			panic(err)
		}
	})
}

// NewRand returns a deterministic PRNG for the given seed, the single
// construction used across the repository.
func NewRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}
