package graphgen

import (
	"fmt"
	"math/rand/v2"

	"gossip/internal/graph"
)

// This file holds the streaming generators of the million-node substrate:
// they emit graph.CSR directly through a CSRBuilder — flat edge streams,
// no adjacency maps — so building an n=10⁶ topology costs a few flat
// array passes instead of millions of map insertions.

// RingMatchingExpanderCSR returns the classic "cycle plus random perfect
// matching" expander on n nodes in CSR form: the n-cycle guarantees
// connectivity, the matching drives the diameter to O(log n) with high
// probability — the sparse constant-degree topology where push-pull's
// O(log n) spread time is observable at n=10⁶. Matching pairs that would
// duplicate a cycle edge are skipped (degrees are 2 or 3; with odd n one
// node sits out of the matching).
func RingMatchingExpanderCSR(n, latency int, rng *rand.Rand) (*graph.CSR, error) {
	if n < 4 {
		return nil, fmt.Errorf("graphgen: ring-matching expander needs n >= 4, got %d", n)
	}
	if latency < 1 {
		return nil, fmt.Errorf("graphgen: non-positive latency %d", latency)
	}
	b := graph.NewCSRBuilder(n)
	for u := 0; u < n; u++ {
		b.MustAddEdge(u, (u+1)%n, latency)
	}
	perm := rng.Perm(n)
	for i := 0; i+1 < len(perm); i += 2 {
		u, v := perm[i], perm[i+1]
		if d := (u - v + n) % n; d == 1 || d == n-1 {
			continue // would duplicate a cycle edge
		}
		b.MustAddEdge(u, v, latency)
	}
	return b.Finalize()
}

// SlowBridgeRingCSR returns the sparse slow-bridge dumbbell in CSR form:
// two (n/2)-node unit-latency cycles joined by a single bridge edge of
// the given latency — the canonical one-slow-cut topology (critical
// conductance tiny, ℓ* = bridgeLatency) at O(n) edges. This is the
// streaming analogue of the clique-sided graphgen.Dumbbell, which is
// O(n²) edges and unusable at n=10⁶.
func SlowBridgeRingCSR(n, bridgeLatency int) (*graph.CSR, error) {
	if n < 6 {
		return nil, fmt.Errorf("graphgen: slow-bridge ring needs n >= 6, got %d", n)
	}
	if bridgeLatency < 1 {
		return nil, fmt.Errorf("graphgen: non-positive bridge latency %d", bridgeLatency)
	}
	half := n / 2
	b := graph.NewCSRBuilder(n)
	sides := [2]int{half, n - half}
	base := 0
	for s := 0; s < 2; s++ {
		size := sides[s]
		for i := 0; i < size; i++ {
			b.MustAddEdge(base+i, base+(i+1)%size, 1)
		}
		base += size
	}
	b.MustAddEdge(0, half, bridgeLatency)
	return b.Finalize()
}
