package graphgen

import (
	"testing"
)

func TestClique(t *testing.T) {
	g := Clique(5, 2)
	if g.N() != 5 || g.M() != 10 {
		t.Fatalf("K5: n=%d m=%d", g.N(), g.M())
	}
	if g.MaxDegree() != 4 {
		t.Fatalf("K5 max degree = %d", g.MaxDegree())
	}
	if l, _ := g.Latency(0, 4); l != 2 {
		t.Fatalf("K5 latency = %d", l)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStar(t *testing.T) {
	g := Star(6, 3)
	if g.M() != 5 || g.Degree(0) != 5 || g.Degree(1) != 1 {
		t.Fatalf("star shape wrong: m=%d", g.M())
	}
	if g.WeightedDiameter() != 6 {
		t.Fatalf("star diameter = %d, want 6", g.WeightedDiameter())
	}
}

func TestPathCycle(t *testing.T) {
	p := Path(4, 1)
	if p.M() != 3 || p.WeightedDiameter() != 3 {
		t.Fatalf("path wrong: m=%d D=%d", p.M(), p.WeightedDiameter())
	}
	c := Cycle(4, 1)
	if c.M() != 4 || c.WeightedDiameter() != 2 {
		t.Fatalf("cycle wrong: m=%d D=%d", c.M(), c.WeightedDiameter())
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4, 1)
	if g.N() != 12 {
		t.Fatalf("grid n = %d", g.N())
	}
	// 3 rows x 3 horizontal edges + 2 x 4 vertical edges = 9 + 8.
	if g.M() != 17 {
		t.Fatalf("grid m = %d, want 17", g.M())
	}
	if g.WeightedDiameter() != 5 {
		t.Fatalf("grid diameter = %d, want 5", g.WeightedDiameter())
	}
}

func TestBinaryTree(t *testing.T) {
	g := BinaryTree(7, 1)
	if g.M() != 6 {
		t.Fatalf("tree m = %d", g.M())
	}
	if g.Degree(0) != 2 || g.Degree(1) != 3 {
		t.Fatal("tree degrees wrong")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestErdosRenyi(t *testing.T) {
	rng := NewRand(7)
	g, err := ErdosRenyi(40, 0.3, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.MaxLatency() != 2 {
		t.Fatalf("ER latency = %d", g.MaxLatency())
	}
}

func TestRandomRegular(t *testing.T) {
	rng := NewRand(11)
	g, err := RandomRegular(30, 4, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		if g.Degree(u) != 4 {
			t.Fatalf("node %d degree %d, want 4", u, g.Degree(u))
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomRegularErrors(t *testing.T) {
	rng := NewRand(1)
	if _, err := RandomRegular(5, 3, 1, rng); err == nil {
		t.Fatal("odd n*d should error")
	}
	if _, err := RandomRegular(4, 4, 1, rng); err == nil {
		t.Fatal("d >= n should error")
	}
}

func TestDumbbell(t *testing.T) {
	g := Dumbbell(5, 50)
	if g.N() != 10 {
		t.Fatalf("dumbbell n = %d", g.N())
	}
	if l, ok := g.Latency(0, 5); !ok || l != 50 {
		t.Fatalf("bridge latency = %d,%v", l, ok)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Diameter: into clique (1) + bridge (50) + out of clique (1).
	if d := g.WeightedDiameter(); d != 52 {
		t.Fatalf("dumbbell diameter = %d, want 52", d)
	}
}

func TestMultiBridgeDumbbell(t *testing.T) {
	g, err := MultiBridgeDumbbell(4, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for i := 0; i < 4; i++ {
		if g.HasEdge(i, 4+i) {
			count++
		}
	}
	if count != 3 {
		t.Fatalf("bridges = %d, want 3", count)
	}
	if _, err := MultiBridgeDumbbell(3, 4, 10); err == nil {
		t.Fatal("too many bridges should error")
	}
}

func TestAssignRandomLatencies(t *testing.T) {
	g := Clique(6, 1)
	AssignRandomLatencies(g, 3, 9, NewRand(5))
	for _, e := range g.Edges() {
		if e.Latency < 3 || e.Latency > 9 {
			t.Fatalf("latency %d outside [3,9]", e.Latency)
		}
	}
}

func TestNewRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("NewRand not deterministic")
		}
	}
}
