package graphgen

import (
	"testing"

	"gossip/internal/graph"
)

func TestGadgetShape(t *testing.T) {
	targets := TargetSet{{0, 1}: true}
	gd, err := NewGadget(3, 2, 50, targets, false)
	if err != nil {
		t.Fatal(err)
	}
	g := gd.Graph
	if g.N() != 6 {
		t.Fatalf("gadget n = %d", g.N())
	}
	// L-clique edges: 3; cross edges: 9.
	if g.M() != 12 {
		t.Fatalf("gadget m = %d, want 12", g.M())
	}
	if l, _ := g.Latency(gd.Left(0), gd.Right(1)); l != 2 {
		t.Fatalf("target cross edge latency = %d, want lo=2", l)
	}
	if l, _ := g.Latency(gd.Left(0), gd.Right(0)); l != 50 {
		t.Fatalf("non-target cross edge latency = %d, want hi=50", l)
	}
	if l, _ := g.Latency(gd.Left(0), gd.Left(1)); l != 1 {
		t.Fatalf("clique edge latency = %d, want 1", l)
	}
	if g.HasEdge(gd.Right(0), gd.Right(1)) {
		t.Fatal("asymmetric gadget has an R-clique edge")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGadgetSymmetric(t *testing.T) {
	gd, err := NewGadget(3, 1, 10, TargetSet{}, true)
	if err != nil {
		t.Fatal(err)
	}
	if !gd.Graph.HasEdge(gd.Right(0), gd.Right(1)) {
		t.Fatal("symmetric gadget missing R-clique edge")
	}
	// 2 cliques x 3 edges + 9 cross edges.
	if gd.Graph.M() != 15 {
		t.Fatalf("Gsym m = %d, want 15", gd.Graph.M())
	}
}

func TestGadgetErrors(t *testing.T) {
	if _, err := NewGadget(0, 1, 2, TargetSet{}, false); err == nil {
		t.Fatal("m=0 should error")
	}
	if _, err := NewGadget(2, 3, 2, TargetSet{}, false); err == nil {
		t.Fatal("hi < lo should error")
	}
}

func TestSingletonAndRandomTarget(t *testing.T) {
	rng := NewRand(3)
	st := SingletonTarget(8, rng)
	if len(st) != 1 {
		t.Fatalf("singleton target size = %d", len(st))
	}
	rt := RandomTarget(30, 0.5, rng)
	if len(rt) < 300 || len(rt) > 600 {
		t.Fatalf("Random_0.5 on 30x30 gave %d pairs, expected ~450", len(rt))
	}
}

func TestTheorem9Network(t *testing.T) {
	rng := NewRand(5)
	net, err := NewTheorem9Network(40, 8, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph
	if g.N() != 40 {
		t.Fatalf("n = %d", g.N())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Left gadget nodes connect to: Δ-1 clique + Δ cross + 1 hub = 2Δ.
	if d := g.Degree(0); d != 16 {
		t.Fatalf("left node degree = %d, want 16", d)
	}
	// Exactly one fast cross edge.
	fast := 0
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if l, _ := g.Latency(net.Gadget.Left(i), net.Gadget.Right(j)); l == 1 {
				fast++
			}
		}
	}
	if fast != 1 {
		t.Fatalf("fast cross edges = %d, want 1", fast)
	}
}

func TestTheorem9NetworkTight(t *testing.T) {
	rng := NewRand(6)
	net, err := NewTheorem9Network(16, 8, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	if net.Graph.N() != 16 {
		t.Fatalf("n = %d", net.Graph.N())
	}
	if _, err := NewTheorem9Network(10, 8, 20, rng); err == nil {
		t.Fatal("n < 2Δ should error")
	}
}

func TestTheorem10Network(t *testing.T) {
	rng := NewRand(9)
	net, err := NewTheorem10Network(20, 4, 1000, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if net.Graph.N() != 40 {
		t.Fatalf("n = %d", net.Graph.N())
	}
	if err := net.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	fast, slow := 0, 0
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			l, _ := net.Graph.Latency(net.Gadget.Left(i), net.Gadget.Right(j))
			switch l {
			case 4:
				fast++
			case 1000:
				slow++
			default:
				t.Fatalf("unexpected cross latency %d", l)
			}
		}
	}
	if fast+slow != 400 {
		t.Fatalf("cross edge count = %d", fast+slow)
	}
	if fast < 60 || fast > 200 {
		t.Fatalf("fast edges = %d, expected ~120", fast)
	}
	if _, err := NewTheorem10Network(5, 2, 10, 1.5, rng); err == nil {
		t.Fatal("phi > 1 should error")
	}
}

func TestRingNetworkShape(t *testing.T) {
	rng := NewRand(13)
	r, err := NewRingNetwork(6, 4, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	g := r.Graph
	if g.N() != 24 {
		t.Fatalf("ring n = %d", g.N())
	}
	// Observation 14: (3s-1)-regular.
	for u := 0; u < g.N(); u++ {
		if g.Degree(u) != 3*4-1 {
			t.Fatalf("node %d degree = %d, want %d", u, g.Degree(u), 3*4-1)
		}
	}
	if len(r.FastEdges) != 6 {
		t.Fatalf("fast edges = %d, want 6", len(r.FastEdges))
	}
	for _, fe := range r.FastEdges {
		if l, ok := g.Latency(fe[0], fe[1]); !ok || l != 1 {
			t.Fatalf("fast edge latency = %d", l)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRingNetworkErrors(t *testing.T) {
	rng := NewRand(1)
	if _, err := NewRingNetwork(2, 4, 5, rng); err == nil {
		t.Fatal("k < 3 should error")
	}
	if _, err := NewRingNetwork(4, 0, 5, rng); err == nil {
		t.Fatal("s < 1 should error")
	}
	if _, err := NewRingNetwork(4, 2, 0, rng); err == nil {
		t.Fatal("ell < 1 should error")
	}
}

func TestRingFromAlpha(t *testing.T) {
	rng := NewRand(17)
	r, err := RingFromAlpha(64, 0.125, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Realized alpha should be within a constant of the request.
	a := r.Alpha()
	if a < 0.05 || a > 0.35 {
		t.Fatalf("realized alpha = %v for request 0.125", a)
	}
	if _, err := RingFromAlpha(64, 0, 8, rng); err == nil {
		t.Fatal("alpha = 0 should error")
	}
}

func TestRingDiameterScalesWithLayers(t *testing.T) {
	rng := NewRand(23)
	r, err := NewRingNetwork(8, 3, 1000, rng)
	if err != nil {
		t.Fatal(err)
	}
	d := r.Graph.WeightedDiameter()
	// Fast ring edges keep the diameter near k/2 plus per-layer hops,
	// far below the slow latency.
	if d >= 1000 {
		t.Fatalf("diameter %d should avoid slow edges", d)
	}
	if d < int64(r.Layers/2) {
		t.Fatalf("diameter %d below half the layer count %d", d, r.Layers/2)
	}
}

// The gadget cross edges must form a cut separating L from R.
func TestGadgetCrossEdgesFormCut(t *testing.T) {
	gd, err := NewGadget(4, 1, 9, TargetSet{{1, 2}: true}, true)
	if err != nil {
		t.Fatal(err)
	}
	g := gd.Graph
	var crossless []graph.Edge
	g.ForEachEdge(func(e graph.Edge) {
		left := func(v int) bool { return v < gd.M }
		if left(e.U) == left(e.V) {
			crossless = append(crossless, e)
		}
	})
	// Removing all cross edges must disconnect L from R: rebuild without
	// them and check.
	h := graph.New(g.N())
	for _, e := range crossless {
		h.MustAddEdge(e.U, e.V, e.Latency)
	}
	if h.Connected() {
		t.Fatal("cross edges do not form a cut")
	}
}
