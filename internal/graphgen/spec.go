package graphgen

import (
	"fmt"
	"sort"
	"strings"

	"gossip/internal/graph"
)

// Spec names a generated topology family with its parameters — the
// machine-readable form of the family/-n/-latency/-p/-layers surface the
// CLIs expose and gossipd accepts in simulation requests. Every value is
// passed to the generator verbatim (only Family is case-folded): callers
// own their defaults — the CLI through its flag defaults, gossipd
// through request validation — so an explicit Latency 0 or P 0 reaches
// the generator and fails the same way it always has, rather than being
// silently rewritten.
type Spec struct {
	// Family is one of Families() (case-insensitive).
	Family string
	// N is the node count; for dumbbell and gadget it is the per-side
	// count, for ring the per-layer count — exactly the CLI -n semantics.
	N int
	// Latency is the uniform (or slow-edge, depending on family) latency.
	Latency int
	// P is the edge/target probability for er and gadget.
	P float64
	// Layers is the ring layer count.
	Layers int
	// Seed drives the randomized families (er, regular, ring, gadget).
	Seed uint64
}

// MinNodes returns how many nodes Build will produce for s: exact for
// every family except gadget, where the Theorem 10 construction's size
// is not a closed form and N is a lower bound. This is the bound
// request validators check node ids (source, fault-schedule entries)
// against.
func (s Spec) MinNodes() int {
	switch strings.ToLower(strings.TrimSpace(s.Family)) {
	case "grid":
		side := 1
		for side*side < s.N {
			side++
		}
		return side * side
	case "dumbbell":
		return 2 * s.N
	case "ring":
		return s.Layers * s.N
	default:
		return s.N
	}
}

// Families returns the sorted topology family names Build accepts.
func Families() []string {
	out := []string{
		"clique", "star", "path", "cycle", "grid", "tree",
		"er", "regular", "dumbbell", "ring", "gadget",
	}
	sort.Strings(out)
	return out
}

// Build constructs the topology a Spec names. It is the single
// family-name dispatch shared by cmd/gossipsim and the gossipd request
// validator; an unknown family is an error, never a panic.
func Build(s Spec) (*graph.Graph, error) {
	s.Family = strings.ToLower(strings.TrimSpace(s.Family))
	rng := NewRand(s.Seed)
	switch s.Family {
	case "clique":
		return Clique(s.N, s.Latency), nil
	case "star":
		return Star(s.N, s.Latency), nil
	case "path":
		return Path(s.N, s.Latency), nil
	case "cycle":
		return Cycle(s.N, s.Latency), nil
	case "grid":
		side := 1
		for side*side < s.N {
			side++
		}
		return Grid(side, side, s.Latency), nil
	case "tree":
		return BinaryTree(s.N, s.Latency), nil
	case "er":
		return ErdosRenyi(s.N, s.P, s.Latency, rng)
	case "regular":
		return RandomRegular(s.N, 4, s.Latency, rng)
	case "dumbbell":
		return Dumbbell(s.N, s.Latency), nil
	case "ring":
		ring, err := NewRingNetwork(s.Layers, s.N, s.Latency, rng)
		if err != nil {
			return nil, err
		}
		return ring.Graph, nil
	case "gadget":
		net, err := NewTheorem10Network(s.N, 1, s.Latency, s.P, rng)
		if err != nil {
			return nil, err
		}
		return net.Graph, nil
	default:
		return nil, fmt.Errorf("graphgen: unknown family %q (have %s)",
			s.Family, strings.Join(Families(), ", "))
	}
}
