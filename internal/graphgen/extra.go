package graphgen

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"gossip/internal/graph"
)

// Hypercube returns the d-dimensional hypercube (n = 2^d nodes) with
// uniform latency — the classic low-diameter, log-degree topology.
func Hypercube(dim, latency int) (*graph.Graph, error) {
	if dim < 1 || dim > 20 {
		return nil, fmt.Errorf("graphgen: hypercube dimension %d out of range [1,20]", dim)
	}
	n := 1 << uint(dim)
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for b := 0; b < dim; b++ {
			v := u ^ (1 << uint(b))
			if u < v {
				g.MustAddEdge(u, v, latency)
			}
		}
	}
	return g, nil
}

// Torus returns the rows x cols torus (grid with wraparound) with uniform
// latency.
func Torus(rows, cols, latency int) (*graph.Graph, error) {
	if rows < 3 || cols < 3 {
		return nil, fmt.Errorf("graphgen: torus needs both sides >= 3, got %dx%d", rows, cols)
	}
	g := graph.New(rows * cols)
	id := func(r, c int) int { return (r%rows)*cols + (c % cols) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.MustAddEdge(id(r, c), id(r, c+1), latency)
			g.MustAddEdge(id(r, c), id(r+1, c), latency)
		}
	}
	return g, nil
}

// WattsStrogatz returns a small-world graph: a ring lattice where each
// node connects to its k nearest neighbors per side, with each edge
// rewired to a random endpoint with probability beta. Rewiring that would
// create a duplicate or self-loop is skipped, so degrees vary slightly.
func WattsStrogatz(n, k int, beta float64, latency int, rng *rand.Rand) (*graph.Graph, error) {
	if k < 1 || 2*k >= n {
		return nil, fmt.Errorf("graphgen: watts-strogatz needs 1 <= k and 2k < n, got n=%d k=%d", n, k)
	}
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("graphgen: beta %v outside [0,1]", beta)
	}
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for j := 1; j <= k; j++ {
			v := (u + j) % n
			target := v
			if rng.Float64() < beta {
				target = rng.IntN(n)
			}
			if target == u || g.HasEdge(u, target) {
				target = v // fall back to the lattice edge
			}
			if target != u && !g.HasEdge(u, target) {
				g.MustAddEdge(u, target, latency)
			}
		}
	}
	if !g.Connected() {
		// Rare at moderate beta; stitch the ring back together.
		for u := 0; u < n; u++ {
			v := (u + 1) % n
			if !g.HasEdge(u, v) {
				g.MustAddEdge(u, v, latency)
			}
		}
	}
	return g, nil
}

// ChungLu returns a power-law random graph (the social-network topology
// of the Doerr et al. line of work the paper cites): node u gets weight
// (u+1)^(-1/(gamma-1)) and edge (u,v) appears with probability
// min(1, w_u·w_v·m/ (Σw)²·... ) scaled so the expected edge count is
// roughly targetM. The result is connectivity-repaired with a spanning
// ring.
func ChungLu(n int, gamma float64, targetM int, latency int, rng *rand.Rand) (*graph.Graph, error) {
	if gamma <= 2 {
		return nil, fmt.Errorf("graphgen: chung-lu exponent %v must exceed 2", gamma)
	}
	if n < 3 {
		return nil, fmt.Errorf("graphgen: chung-lu needs n >= 3")
	}
	w := make([]float64, n)
	sum := 0.0
	for u := 0; u < n; u++ {
		w[u] = math.Pow(float64(u+1), -1/(gamma-1))
		sum += w[u]
	}
	scale := 2 * float64(targetM) / (sum * sum)
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p := w[u] * w[v] * scale
			if p > 1 {
				p = 1
			}
			if rng.Float64() < p {
				g.MustAddEdge(u, v, latency)
			}
		}
	}
	for u := 0; u < n; u++ {
		v := (u + 1) % n
		if !g.HasEdge(u, v) {
			g.MustAddEdge(u, v, latency)
		}
	}
	return g, nil
}

// BarbellChain returns c cliques of size s chained by bridge edges of the
// given latency — a multi-bottleneck generalization of the dumbbell.
func BarbellChain(cliques, size, bridgeLatency int) (*graph.Graph, error) {
	if cliques < 2 || size < 2 {
		return nil, fmt.Errorf("graphgen: barbell chain needs >= 2 cliques of size >= 2")
	}
	g := graph.New(cliques * size)
	id := func(c, i int) int { return c*size + i }
	for c := 0; c < cliques; c++ {
		for a := 0; a < size; a++ {
			for b := a + 1; b < size; b++ {
				g.MustAddEdge(id(c, a), id(c, b), 1)
			}
		}
		if c+1 < cliques {
			g.MustAddEdge(id(c, size-1), id(c+1, 0), bridgeLatency)
		}
	}
	return g, nil
}

// DegreeHistogram returns the sorted distinct degrees and their counts —
// handy for verifying heavy-tailed generators.
func DegreeHistogram(g *graph.Graph) ([]int, map[int]int) {
	counts := make(map[int]int)
	for u := 0; u < g.N(); u++ {
		counts[g.Degree(u)]++
	}
	degrees := make([]int, 0, len(counts))
	for d := range counts {
		degrees = append(degrees, d)
	}
	sort.Ints(degrees)
	return degrees, counts
}
