package graphgen

import (
	"fmt"
	"math"
	"math/rand/v2"

	"gossip/internal/graph"
)

// TargetSet is a set of bipartite index pairs (i,j), i.e. the guessing
// game's fast cross edges between left node i and right node j.
type TargetSet map[[2]int]bool

// SingletonTarget returns a target set containing one uniformly random
// pair from [0,m) x [0,m).
func SingletonTarget(m int, rng *rand.Rand) TargetSet {
	return TargetSet{{rng.IntN(m), rng.IntN(m)}: true}
}

// RandomTarget returns the predicate Random_p of the paper: every pair of
// [0,m) x [0,m) joins the target set independently with probability p.
func RandomTarget(m int, p float64, rng *rand.Rand) TargetSet {
	t := TargetSet{}
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if rng.Float64() < p {
				t[[2]int{i, j}] = true
			}
		}
	}
	return t
}

// Gadget is the constructed guessing-game network G(2m, lo, hi, P) of
// Section 3.2 (Figure 1), plus bookkeeping the experiments need.
type Gadget struct {
	Graph *graph.Graph
	// M is the side size; nodes 0..M-1 are the left set L (a latency-1
	// clique), nodes M..2M-1 are the right set R.
	M int
	// Lo and Hi are the fast/slow cross-edge latencies.
	Lo, Hi int
	// Targets are the fast cross edges (the oracle's hidden target set).
	Targets TargetSet
	// Symmetric records whether R is also a clique (Gsym).
	Symmetric bool
}

// Left returns the node ID of left index i.
func (gd *Gadget) Left(i int) graph.NodeID { return i }

// Right returns the node ID of right index j.
func (gd *Gadget) Right(j int) graph.NodeID { return gd.M + j }

// NewGadget builds G(2m, lo, hi, P): a latency-1 clique on L, the complete
// bipartite graph L x R where cross edge (i,j) has latency lo iff
// (i,j) ∈ targets and hi otherwise. With symmetric=true it builds
// Gsym(2m, lo, hi, P), which adds a latency-1 clique on R.
func NewGadget(m, lo, hi int, targets TargetSet, symmetric bool) (*Gadget, error) {
	if m < 1 {
		return nil, fmt.Errorf("graphgen: gadget side %d < 1", m)
	}
	if lo < 1 || hi < lo {
		return nil, fmt.Errorf("graphgen: gadget latencies lo=%d hi=%d invalid", lo, hi)
	}
	g := graph.New(2 * m)
	for u := 0; u < m; u++ {
		for v := u + 1; v < m; v++ {
			g.MustAddEdge(u, v, 1)
			if symmetric {
				g.MustAddEdge(m+u, m+v, 1)
			}
		}
	}
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			lat := hi
			if targets[[2]int{i, j}] {
				lat = lo
			}
			g.MustAddEdge(i, m+j, lat)
		}
	}
	return &Gadget{Graph: g, M: m, Lo: lo, Hi: hi, Targets: targets, Symmetric: symmetric}, nil
}

// Theorem9Network is the Ω(Δ) lower-bound construction: the symmetric
// gadget Gsym(2Δ, 1, hi, singleton) with a constant-degree expander of the
// remaining n-2Δ nodes attached to all of L via one expander node.
type Theorem9Network struct {
	Gadget *Gadget
	Graph  *graph.Graph
	Delta  int
}

// NewTheorem9Network builds the Theorem 9 network on >= 2*delta nodes.
// hi is the slow latency (the theorem uses Δ; experiments may pass more
// to make the lower bound visible). If n > 2*delta, the extra nodes form
// a 4-regular random expander whose node 0 connects to every left vertex.
func NewTheorem9Network(n, delta, hi int, rng *rand.Rand) (*Theorem9Network, error) {
	if n < 2*delta {
		return nil, fmt.Errorf("graphgen: n=%d < 2Δ=%d", n, 2*delta)
	}
	target := SingletonTarget(delta, rng)
	gd, err := NewGadget(delta, 1, hi, target, true)
	if err != nil {
		return nil, err
	}
	rest := n - 2*delta
	if rest == 0 {
		return &Theorem9Network{Gadget: gd, Graph: gd.Graph, Delta: delta}, nil
	}
	g := graph.New(n)
	gd.Graph.ForEachEdge(func(e graph.Edge) { g.MustAddEdge(e.U, e.V, e.Latency) })
	// Attach the expander on nodes [2Δ, n).
	switch {
	case rest == 1:
		// Degenerate expander: a single hub node.
	case rest < 6:
		for u := 0; u < rest; u++ {
			for v := u + 1; v < rest; v++ {
				g.MustAddEdge(2*delta+u, 2*delta+v, 1)
			}
		}
	default:
		deg := 4
		if rest*deg%2 != 0 {
			deg = 3
		}
		exp, err := RandomRegular(rest, deg, 1, rng)
		if err != nil {
			return nil, fmt.Errorf("graphgen: theorem 9 expander: %w", err)
		}
		exp.ForEachEdge(func(e graph.Edge) { g.MustAddEdge(2*delta+e.U, 2*delta+e.V, e.Latency) })
	}
	// One expander node connects to all of L.
	for i := 0; i < delta; i++ {
		g.MustAddEdge(2*delta, i, 1)
	}
	gd2 := *gd
	gd2.Graph = g
	return &Theorem9Network{Gadget: &gd2, Graph: g, Delta: delta}, nil
}

// Theorem10Network is the conductance lower-bound construction: the
// bipartite gadget G(2n, ℓ, hi, Random_φ) where each cross edge is fast
// (latency ℓ) independently with probability φ and slow (latency hi)
// otherwise. The paper uses hi = n²; callers may pass smaller hi to keep
// simulated horizons reasonable as long as hi exceeds the bound under test.
type Theorem10Network struct {
	Gadget *Gadget
	Graph  *graph.Graph
	// Phi is the sampling probability (the designed conductance Θ(φ)).
	Phi float64
	// Ell is the fast-edge latency ℓ.
	Ell int
}

// NewTheorem10Network samples the Theorem 10 network with side size n.
func NewTheorem10Network(n, ell, hi int, phi float64, rng *rand.Rand) (*Theorem10Network, error) {
	if phi <= 0 || phi > 1 {
		return nil, fmt.Errorf("graphgen: phi=%v outside (0,1]", phi)
	}
	if ell < 1 || hi < ell {
		return nil, fmt.Errorf("graphgen: ell=%d hi=%d invalid", ell, hi)
	}
	targets := RandomTarget(n, phi, rng)
	// The left clique keeps the graph connected even if some right node
	// drew no fast edge; slow edges keep R attached regardless.
	gd, err := NewGadget(n, ell, hi, targets, false)
	if err != nil {
		return nil, err
	}
	return &Theorem10Network{Gadget: gd, Graph: gd.Graph, Phi: phi, Ell: ell}, nil
}

// RingNetwork is the Theorem 13 / Figure 2 construction: k node layers of
// size s wired in a ring, each layer a latency-1 clique, adjacent layers
// complete bipartite with every cross edge at latency ℓ except one
// uniformly random fast (latency-1) edge per adjacent pair.
type RingNetwork struct {
	Graph  *graph.Graph
	Layers int // k
	Size   int // s
	Ell    int
	// FastEdges[i] is the fast cross edge between layer i and layer
	// (i+1) mod k, as (node in layer i, node in layer i+1).
	FastEdges [][2]graph.NodeID
}

// Node returns the ID of member j of layer i.
func (r *RingNetwork) Node(layer, j int) graph.NodeID { return layer*r.Size + j }

// Alpha returns the designed conductance parameter: Lemma 15 shows the
// half-ring cut has φℓ = 2s²/(s(3s-1)·k/2) — with s = cnα and k = 2/(cα)
// this is exactly α. We report it from the realized k and s.
func (r *RingNetwork) Alpha() float64 {
	// Volume of half the ring: (k/2)·s·(3s-1); cut edges of latency ≤ ℓ
	// across the two boundaries: 2s².
	return 2 * float64(r.Size) * float64(r.Size) /
		(float64(r.Layers) / 2 * float64(r.Size) * float64(3*r.Size-1))
}

// NewRingNetwork builds the ring with k layers of s nodes each.
func NewRingNetwork(k, s, ell int, rng *rand.Rand) (*RingNetwork, error) {
	if k < 3 {
		return nil, fmt.Errorf("graphgen: ring needs >= 3 layers, got %d", k)
	}
	if s < 1 {
		return nil, fmt.Errorf("graphgen: layer size %d < 1", s)
	}
	if ell < 1 {
		return nil, fmt.Errorf("graphgen: ell %d < 1", ell)
	}
	g := graph.New(k * s)
	r := &RingNetwork{Graph: g, Layers: k, Size: s, Ell: ell}
	for layer := 0; layer < k; layer++ {
		for u := 0; u < s; u++ {
			for v := u + 1; v < s; v++ {
				g.MustAddEdge(r.Node(layer, u), r.Node(layer, v), 1)
			}
		}
	}
	for layer := 0; layer < k; layer++ {
		next := (layer + 1) % k
		fi, fj := rng.IntN(s), rng.IntN(s)
		for u := 0; u < s; u++ {
			for v := 0; v < s; v++ {
				lat := ell
				if u == fi && v == fj {
					lat = 1
				}
				g.MustAddEdge(r.Node(layer, u), r.Node(next, v), lat)
			}
		}
		r.FastEdges = append(r.FastEdges, [2]graph.NodeID{r.Node(layer, fi), r.Node(next, fj)})
	}
	return r, nil
}

// RingFromAlpha chooses k and s per Theorem 13 for a 2n-node ring with
// conductance parameter alpha: c = 3/4 + sqrt(9-8α)/4 (so c ∈ [1, 3/2)),
// s = c·n·α and k = 2/(c·α), rounded to integers with k >= 3 and s >= 1.
func RingFromAlpha(n int, alpha float64, ell int, rng *rand.Rand) (*RingNetwork, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("graphgen: alpha=%v outside (0,1]", alpha)
	}
	c := 0.75 + math.Sqrt(9-8*alpha)/4
	s := int(math.Round(c * float64(n) * alpha))
	if s < 1 {
		s = 1
	}
	k := int(math.Round(2 / (c * alpha)))
	if k < 3 {
		k = 3
	}
	return NewRingNetwork(k, s, ell, rng)
}
