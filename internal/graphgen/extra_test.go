package graphgen

import (
	"testing"
)

func TestHypercube(t *testing.T) {
	g, err := Hypercube(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 16 {
		t.Fatalf("n = %d", g.N())
	}
	// d-regular with n·d/2 edges.
	for u := 0; u < g.N(); u++ {
		if g.Degree(u) != 4 {
			t.Fatalf("degree(%d) = %d", u, g.Degree(u))
		}
	}
	if g.M() != 32 {
		t.Fatalf("m = %d", g.M())
	}
	if g.HopDiameter() != 4 {
		t.Fatalf("hop diameter = %d, want 4", g.HopDiameter())
	}
	if _, err := Hypercube(0, 1); err == nil {
		t.Fatal("dim 0 should error")
	}
	if _, err := Hypercube(21, 1); err == nil {
		t.Fatal("dim 21 should error")
	}
}

func TestTorus(t *testing.T) {
	g, err := Torus(4, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 20 || g.M() != 40 {
		t.Fatalf("torus shape: n=%d m=%d", g.N(), g.M())
	}
	for u := 0; u < g.N(); u++ {
		if g.Degree(u) != 4 {
			t.Fatalf("degree(%d) = %d", u, g.Degree(u))
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := Torus(2, 5, 1); err == nil {
		t.Fatal("small torus should error")
	}
}

func TestWattsStrogatz(t *testing.T) {
	rng := NewRand(3)
	g, err := WattsStrogatz(40, 2, 0.2, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Expected ~n·k edges minus skipped rewires.
	if g.M() < 40 || g.M() > 80 {
		t.Fatalf("m = %d", g.M())
	}
	if _, err := WattsStrogatz(10, 5, 0.1, 1, rng); err == nil {
		t.Fatal("2k >= n should error")
	}
	if _, err := WattsStrogatz(10, 2, 1.5, 1, rng); err == nil {
		t.Fatal("beta > 1 should error")
	}
}

func TestWattsStrogatzZeroBetaIsLattice(t *testing.T) {
	rng := NewRand(4)
	g, err := WattsStrogatz(12, 2, 0, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Pure ring lattice: every node has degree 4 and m = n·k.
	if g.M() != 24 {
		t.Fatalf("m = %d, want 24", g.M())
	}
	for u := 0; u < g.N(); u++ {
		if g.Degree(u) != 4 {
			t.Fatalf("degree(%d) = %d", u, g.Degree(u))
		}
	}
}

func TestChungLu(t *testing.T) {
	rng := NewRand(5)
	g, err := ChungLu(100, 2.5, 300, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Heavy tail: the max degree should far exceed the mean degree.
	degrees, _ := DegreeHistogram(g)
	maxDeg := degrees[len(degrees)-1]
	meanDeg := 2 * float64(g.M()) / float64(g.N())
	if float64(maxDeg) < 2*meanDeg {
		t.Fatalf("no heavy tail: max %d vs mean %.1f", maxDeg, meanDeg)
	}
	if _, err := ChungLu(10, 2.0, 30, 1, rng); err == nil {
		t.Fatal("gamma <= 2 should error")
	}
	if _, err := ChungLu(2, 2.5, 1, 1, rng); err == nil {
		t.Fatal("n < 3 should error")
	}
}

func TestBarbellChain(t *testing.T) {
	g, err := BarbellChain(3, 4, 25)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 12 {
		t.Fatalf("n = %d", g.N())
	}
	// 3 cliques x 6 edges + 2 bridges.
	if g.M() != 20 {
		t.Fatalf("m = %d", g.M())
	}
	if l, ok := g.Latency(3, 4); !ok || l != 25 {
		t.Fatalf("bridge latency = %d,%v", l, ok)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := BarbellChain(1, 4, 5); err == nil {
		t.Fatal("single clique should error")
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := Star(5, 1)
	degrees, counts := DegreeHistogram(g)
	if len(degrees) != 2 || degrees[0] != 1 || degrees[1] != 4 {
		t.Fatalf("degrees = %v", degrees)
	}
	if counts[1] != 4 || counts[4] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}
