package sim

// SpreadCurve derives the spreading curve from InformedAt: element t is
// the number of nodes that held the watched rumor by round t, for
// t = 0..Rounds. Nodes never informed do not contribute.
func (r Result) SpreadCurve() []int {
	if r.Rounds < 0 {
		return nil
	}
	curve := make([]int, r.Rounds+1)
	for _, at := range r.InformedAt {
		if at >= 0 && at <= r.Rounds {
			curve[at]++
		}
	}
	for t := 1; t <= r.Rounds; t++ {
		curve[t] += curve[t-1]
	}
	return curve
}

// HalfTime returns the first round by which at least half of the nodes
// were informed, or -1 when that never happened.
func (r Result) HalfTime() int {
	curve := r.SpreadCurve()
	half := (len(r.InformedAt) + 1) / 2
	for t, c := range curve {
		if c >= half {
			return t
		}
	}
	return -1
}
