package sim

import (
	"testing"

	"gossip/internal/bitset"
	"gossip/internal/graph"
)

// fixedProtocol activates a fixed neighbor index on chosen rounds.
type fixedProtocol struct {
	nv       *NodeView
	schedule map[int]int // round -> neighbor index
	delivers []Delivery
}

func (p *fixedProtocol) Activate(round int) (int, bool) {
	idx, ok := p.schedule[round]
	return idx, ok
}
func (p *fixedProtocol) OnDeliver(d Delivery) { p.delivers = append(p.delivers, d) }

func pathGraph(lats ...int) *graph.Graph {
	g := graph.New(len(lats) + 1)
	for i, l := range lats {
		g.MustAddEdge(i, i+1, l)
	}
	return g
}

func TestExchangeLatencySemantics(t *testing.T) {
	// Two nodes, edge latency 3. Node 0 activates at round 0; rumor must
	// arrive at node 1 exactly at round 3.
	g := pathGraph(3)
	protos := make(map[int]*fixedProtocol)
	res, err := Run(Config{Graph: g, Mode: OneToAll, Source: 0, MaxRounds: 100},
		func(nv *NodeView) Protocol {
			p := &fixedProtocol{nv: nv, schedule: map[int]int{}}
			if nv.ID() == 0 {
				p.schedule[0] = 0
			}
			protos[nv.ID()] = p
			return p
		}, StopAllInformed(0))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("run did not complete")
	}
	if res.Rounds != 3 {
		t.Fatalf("rounds = %d, want 3", res.Rounds)
	}
	if res.InformedAt[1] != 3 {
		t.Fatalf("InformedAt[1] = %d, want 3", res.InformedAt[1])
	}
	if res.Exchanges != 1 || res.Messages != 2 {
		t.Fatalf("exchanges/messages = %d/%d", res.Exchanges, res.Messages)
	}
	// Both endpoints got OnDeliver with the right metadata.
	d1 := protos[1].delivers
	if len(d1) != 1 || d1[0].Round != 3 || d1[0].Latency != 3 || d1[0].Initiator {
		t.Fatalf("node 1 delivery = %+v", d1)
	}
	d0 := protos[0].delivers
	if len(d0) != 1 || !d0[0].Initiator || d0[0].Peer != 1 {
		t.Fatalf("node 0 delivery = %+v", d0)
	}
}

func TestSnapshotAtInitiation(t *testing.T) {
	// Path 0-1-2 with latencies 1, 5. Node 1 activates toward 2 at round
	// 0 (before it knows the rumor) and at round 2 (after). The round-0
	// exchange must NOT carry the rumor; the round-2 one must, arriving
	// at round 7.
	g := pathGraph(1, 5)
	res, err := Run(Config{Graph: g, Mode: OneToAll, Source: 0, MaxRounds: 100},
		func(nv *NodeView) Protocol {
			p := &fixedProtocol{nv: nv, schedule: map[int]int{}}
			switch nv.ID() {
			case 0:
				p.schedule[0] = 0 // deliver rumor to node 1 at round 1
			case 1:
				idx := nv.NeighborIndex(2)
				p.schedule[0] = idx // too early: no rumor yet
				p.schedule[2] = idx // carries rumor, arrives at 7
			}
			return p
		}, StopAllInformed(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.InformedAt[2] != 7 {
		t.Fatalf("InformedAt[2] = %d, want 7 (snapshot semantics)", res.InformedAt[2])
	}
}

func TestBidirectionalExchange(t *testing.T) {
	// AllToAll: one exchange informs both endpoints of each other.
	g := pathGraph(2)
	res, err := Run(Config{Graph: g, Mode: AllToAll, MaxRounds: 10},
		func(nv *NodeView) Protocol {
			p := &fixedProtocol{nv: nv, schedule: map[int]int{}}
			if nv.ID() == 0 {
				p.schedule[0] = 0
			}
			return p
		}, StopAllHaveAll())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Rounds != 2 {
		t.Fatalf("bidirectional exchange: %+v", res)
	}
}

func TestLatencyDiscovery(t *testing.T) {
	g := pathGraph(4)
	var v0 *NodeView
	_, err := Run(Config{Graph: g, Mode: OneToAll, Source: 0, MaxRounds: 10},
		func(nv *NodeView) Protocol {
			p := &fixedProtocol{nv: nv, schedule: map[int]int{}}
			if nv.ID() == 0 {
				v0 = nv
				p.schedule[0] = 0
			}
			return p
		}, StopAllInformed(0))
	if err != nil {
		t.Fatal(err)
	}
	if l, ok := v0.Latency(0); !ok || l != 4 {
		t.Fatalf("latency after discovery = %d,%v want 4,true", l, ok)
	}
}

func TestKnownLatenciesMode(t *testing.T) {
	g := pathGraph(7)
	_, err := Run(Config{Graph: g, Mode: OneToAll, Source: 0, MaxRounds: 1, KnownLatencies: true},
		func(nv *NodeView) Protocol {
			if l, ok := nv.Latency(0); !ok || l != 7 {
				t.Errorf("node %d: latency = %d,%v want 7,true", nv.ID(), l, ok)
			}
			return &fixedProtocol{nv: nv, schedule: map[int]int{}}
		}, StopNever())
	if err != nil {
		t.Fatal(err)
	}
}

func TestHorizonIncomplete(t *testing.T) {
	g := pathGraph(100)
	res, err := Run(Config{Graph: g, Mode: OneToAll, Source: 0, MaxRounds: 5},
		func(nv *NodeView) Protocol {
			p := &fixedProtocol{nv: nv, schedule: map[int]int{}}
			if nv.ID() == 0 {
				p.schedule[0] = 0
			}
			return p
		}, StopAllInformed(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("run completed despite horizon")
	}
	if res.Rounds != 5 {
		t.Fatalf("rounds = %d, want horizon 5", res.Rounds)
	}
}

func TestQuiescenceStops(t *testing.T) {
	g := pathGraph(1, 1)
	res, err := Run(Config{Graph: g, Mode: OneToAll, Source: 0, MaxRounds: 1000},
		func(nv *NodeView) Protocol {
			return &fixedProtocol{nv: nv, schedule: map[int]int{}} // nobody acts
		}, StopAllInformed(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("incomplete quiescent run reported completed")
	}
	if res.Rounds != 0 {
		t.Fatalf("quiescence detected at round %d, want 0", res.Rounds)
	}
}

func TestInitialRumorsCarryOver(t *testing.T) {
	g := pathGraph(1)
	initial := []*bitset.Set{bitset.New(2), bitset.New(2)}
	initial[0].Add(0)
	initial[0].Add(1) // node 0 already knows both
	initial[1].Add(1)
	res, err := Run(Config{Graph: g, MaxRounds: 10, Mode: AllToAll, InitialRumors: initial},
		func(nv *NodeView) Protocol {
			p := &fixedProtocol{nv: nv, schedule: map[int]int{}}
			if nv.ID() == 0 {
				p.schedule[0] = 0
			}
			return p
		}, StopAllHaveAll())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Rounds != 1 {
		t.Fatalf("carry-over run: %+v", res)
	}
	final := res.FinalRumors()
	if !final[1].Full() {
		t.Fatal("node 1 missing rumors after carry-over")
	}
}

func TestInitialRumorsLengthMismatch(t *testing.T) {
	g := pathGraph(1)
	_, err := Run(Config{Graph: g, MaxRounds: 10, InitialRumors: []*bitset.Set{bitset.New(2)}},
		func(nv *NodeView) Protocol { return &fixedProtocol{nv: nv} }, StopNever())
	if err == nil {
		t.Fatal("expected error for mismatched InitialRumors")
	}
}

func TestInvalidGraphRejected(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1, 1) // node 2 disconnected
	_, err := Run(Config{Graph: g, MaxRounds: 10},
		func(nv *NodeView) Protocol { return &fixedProtocol{nv: nv} }, StopNever())
	if err == nil {
		t.Fatal("expected error for disconnected graph")
	}
	if _, err := Run(Config{MaxRounds: 1}, nil, StopNever()); err == nil {
		t.Fatal("expected error for nil graph")
	}
}

func TestInvalidActivationRejected(t *testing.T) {
	g := pathGraph(1)
	_, err := Run(Config{Graph: g, MaxRounds: 10, Mode: OneToAll},
		func(nv *NodeView) Protocol {
			return &fixedProtocol{nv: nv, schedule: map[int]int{0: 99}}
		}, StopNever())
	if err == nil {
		t.Fatal("expected error for out-of-range activation")
	}
}

// metaProto verifies metadata snapshot/delivery.
type metaProto struct {
	nv      *NodeView
	val     int
	gotPeer []any
}

func (p *metaProto) Activate(round int) (int, bool) {
	if p.nv.ID() == 0 && round == 0 {
		return 0, true
	}
	return 0, false
}
func (p *metaProto) OnDeliver(d Delivery) { p.gotPeer = append(p.gotPeer, d.PeerMeta) }
func (p *metaProto) Meta() any            { return p.val }

func TestMetaDelivery(t *testing.T) {
	g := pathGraph(2)
	protos := map[int]*metaProto{}
	_, err := Run(Config{Graph: g, MaxRounds: 10, Mode: OneToAll},
		func(nv *NodeView) Protocol {
			p := &metaProto{nv: nv, val: 100 + nv.ID()}
			protos[nv.ID()] = p
			return p
		}, StopNever())
	if err != nil {
		t.Fatal(err)
	}
	if len(protos[1].gotPeer) != 1 || protos[1].gotPeer[0].(int) != 100 {
		t.Fatalf("node 1 peer meta = %v, want [100]", protos[1].gotPeer)
	}
	if len(protos[0].gotPeer) != 1 || protos[0].gotPeer[0].(int) != 101 {
		t.Fatalf("node 0 peer meta = %v, want [101]", protos[0].gotPeer)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	g := graph.New(8)
	for u := 0; u < 8; u++ {
		for v := u + 1; v < 8; v++ {
			g.MustAddEdge(u, v, 1+(u+v)%4)
		}
	}
	run := func() Result {
		res, err := Run(Config{Graph: g, Seed: 99, Mode: OneToAll, Source: 0, MaxRounds: 1000},
			func(nv *NodeView) Protocol { return &randomProto{nv: nv} }, StopAllInformed(0))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Rounds != b.Rounds || a.Exchanges != b.Exchanges {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

type randomProto struct{ nv *NodeView }

func (p *randomProto) Activate(int) (int, bool) { return p.nv.RNG().IntN(p.nv.Degree()), true }
func (p *randomProto) OnDeliver(Delivery)       {}

func TestNonBlockingConcurrentExchanges(t *testing.T) {
	// A node may have several exchanges in flight: activate the slow
	// edge every round; deliveries arrive in consecutive rounds.
	g := pathGraph(10)
	protos := map[int]*fixedProtocol{}
	res, err := Run(Config{Graph: g, MaxRounds: 30, Mode: OneToAll},
		func(nv *NodeView) Protocol {
			p := &fixedProtocol{nv: nv, schedule: map[int]int{}}
			if nv.ID() == 0 {
				p.schedule[0] = 0
				p.schedule[1] = 0
				p.schedule[2] = 0
			}
			protos[nv.ID()] = p
			return p
		}, StopNever())
	if err != nil {
		t.Fatal(err)
	}
	if res.Exchanges != 3 {
		t.Fatalf("exchanges = %d, want 3 concurrent", res.Exchanges)
	}
	rounds := []int{}
	for _, d := range protos[1].delivers {
		rounds = append(rounds, d.Round)
	}
	if len(rounds) != 3 || rounds[0] != 10 || rounds[1] != 11 || rounds[2] != 12 {
		t.Fatalf("delivery rounds = %v, want [10 11 12]", rounds)
	}
}

func TestStopCombinators(t *testing.T) {
	always := func(*World) bool { return true }
	never := func(*World) bool { return false }
	if StopAnd(always, never)(nil) {
		t.Fatal("StopAnd(true,false) = true")
	}
	if !StopAnd(always, always)(nil) {
		t.Fatal("StopAnd(true,true) = false")
	}
	if !StopOr(never, always)(nil) {
		t.Fatal("StopOr(false,true) = false")
	}
	if StopOr(never, never)(nil) {
		t.Fatal("StopOr(false,false) = true")
	}
	if StopNever()(nil) {
		t.Fatal("StopNever() = true")
	}
}

func TestNodeViewAccessors(t *testing.T) {
	g := pathGraph(2, 3)
	_, err := Run(Config{Graph: g, MaxRounds: 1, Mode: AllToAll, KnownLatencies: true},
		func(nv *NodeView) Protocol {
			if nv.N() != 3 {
				t.Errorf("N() = %d", nv.N())
			}
			if nv.ID() == 1 {
				if nv.Degree() != 2 {
					t.Errorf("Degree() = %d", nv.Degree())
				}
				if nv.NeighborIndex(0) < 0 || nv.NeighborIndex(2) < 0 {
					t.Error("NeighborIndex missing neighbors")
				}
				if nv.NeighborIndex(1) != -1 {
					t.Error("NeighborIndex(self) should be -1")
				}
				if !nv.Knows(1) {
					t.Error("node 1 missing its own rumor in AllToAll mode")
				}
			}
			return &fixedProtocol{nv: nv, schedule: map[int]int{}}
		}, StopNever())
	if err != nil {
		t.Fatal(err)
	}
}
