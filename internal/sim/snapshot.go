// Deterministic engine snapshot/restore: CaptureAt runs a configuration
// to a round barrier and freezes the complete engine state — gain
// journals and rumor sets, the delivery calendar (bucket ring + overflow
// heap), per-node protocol and loss-draw RNG stream cursors, adversity
// and crash cursors, the informed tally and transport counters. Resume
// rebuilds a fresh engine from an equivalent configuration and splices
// the frozen state over it, so the continued run is bit-identical to a
// cold run that never stopped — or, when the resume configuration
// diverges in the permitted knobs, a deterministic fork of the shared
// prefix. One snapshot can be resumed many times, concurrently: the
// captured engine is never mutated again.
package sim

import (
	"fmt"
	"sort"
)

// StateCloner is the Protocol extension snapshotting requires: a freshly
// constructed protocol instance is asked to copy the mutable state of
// the frozen source instance for the same node. The source belongs to a
// finished capture run and must only be read; anything reachable from a
// previously returned Meta() value must be treated as immutable (meta
// snapshots captured by in-flight exchanges are shared across resumes).
// State derived purely from construction inputs (topology, known
// latencies, options) need not be copied — the factory already rebuilt
// it identically.
type StateCloner interface {
	CloneStateFrom(src Protocol)
}

// Snapshot is a frozen engine at a round barrier, produced by CaptureAt.
// It is immutable and safe for concurrent Resume calls.
type Snapshot struct {
	src   *engine // frozen capture engine; nil when done
	round int
	done  bool
	res   Result
}

// CaptureAt runs cfg until the first processed round >= atRound and
// freezes the engine there. The prefix runs under stop as usual; if the
// run finishes (stop holds, quiescence, or the horizon) before reaching
// atRound the snapshot is marked Done and carries the final result,
// which every Resume then returns as-is — a fork past the end of a run
// is just the run. Every protocol the factory builds must implement
// StateCloner.
func CaptureAt(cfg Config, factory Factory, stop StopFunc, atRound int) (*Snapshot, error) {
	if atRound < 0 {
		return nil, fmt.Errorf("sim: capture round %d is negative", atRound)
	}
	e, err := newEngine(cfg, factory)
	if err != nil {
		return nil, err
	}
	for u := 0; u < e.n; u++ {
		if _, ok := e.protos[u].(StateCloner); !ok {
			return nil, fmt.Errorf("sim: protocol %T does not implement StateCloner and cannot be snapshotted", e.protos[u])
		}
	}
	e.snapAt = atRound
	res, err := e.run(stop)
	if err != nil {
		return nil, err
	}
	if !e.snapped {
		return &Snapshot{done: true, res: res, round: res.Rounds}, nil
	}
	return &Snapshot{src: e, round: e.snapRound}, nil
}

// Round is the barrier round actually captured (>= the requested round
// when the event loop jumped over it), or the final round when Done.
func (s *Snapshot) Round() int { return s.round }

// Done reports that the capture run finished before reaching the
// requested round; Resume returns its final result directly.
func (s *Snapshot) Done() bool { return s.done }

// Resume continues the frozen run under cfg with a fresh engine. cfg
// must agree with the capture configuration on everything that shaped
// the prefix — topology (same Graph/CSR values), Seed, KnownLatencies,
// Mode, Source/Sources, InitialRumors, CrashAt, LatencyJitter — and may
// diverge on Workers, MaxRounds, MaxInPerRound and Adversity. With an
// identical configuration the continued run is bit-identical to a cold
// run at any worker count.
//
// Adversity divergence semantics: the prefix ran under the capture
// schedule — in-flight exchange fates and the alive set carry over
// unchanged — and the diverged schedule governs from the fork round on.
// Diverged-schedule events scheduled before the fork round are skipped,
// and loss draws come from fresh per-node streams, so a diverged resume
// is deterministic but is not claimed equal to any cold run. Place
// diverged events at or after the fork round for sane semantics.
func (s *Snapshot) Resume(cfg Config, factory Factory, stop StopFunc) (Result, error) {
	if s.done {
		return s.res, nil
	}
	src := s.src
	e, err := newEngine(cfg, factory)
	if err != nil {
		return Result{}, err
	}
	if err := compatible(&src.cfg, &e.cfg); err != nil {
		return Result{}, err
	}
	if e.cfg.MaxRounds < s.round {
		return Result{}, fmt.Errorf("sim: resume horizon %d is before the snapshot round %d", e.cfg.MaxRounds, s.round)
	}

	// Per-node state: rumor set + journal, discovered latencies, protocol
	// RNG cursors, protocol-private state.
	for u := 0; u < e.n; u++ {
		dst, so := e.views[u], src.views[u]
		dst.rum.cloneFrom(&so.rum)
		dst.journal = append(dst.journal[:0], so.journal...)
		copy(dst.known, so.known)
		e.pcgArena[u] = src.pcgArena[u]
		cl, ok := e.protos[u].(StateCloner)
		if !ok {
			return Result{}, fmt.Errorf("sim: protocol %T does not implement StateCloner and cannot be restored", e.protos[u])
		}
		cl.CloneStateFrom(src.protos[u])
	}
	copy(e.wake, src.wake)
	copy(e.informedAt, src.informedAt)
	if e.sent != nil {
		copy(e.sent, src.sent)
	}
	e.world.informed = src.world.informed.Clone()
	if src.world.alive != nil {
		e.world.alive = src.world.alive.Clone()
	}

	// Calendar: every pending exchange, in (deliver, seq) order — the
	// order cold execution appended them — re-pushed relative to the
	// barrier round. Ring geometry is identical (same topology, same
	// jitter setting), so near/far routing matches the capture run.
	pend := make([]exch, 0, src.pendingLen())
	for _, bucket := range src.ring {
		pend = append(pend, bucket...)
	}
	pend = append(pend, src.overflow...)
	sort.Slice(pend, func(i, j int) bool {
		if pend[i].deliver != pend[j].deliver {
			return pend[i].deliver < pend[j].deliver
		}
		return pend[i].seq < pend[j].seq
	})
	for _, ex := range pend {
		e.push(ex, s.round)
	}

	// Counters and cursors. Rounds/Completed are set when the run ends;
	// InformedAt/World already point at this engine's fresh slices.
	e.seq = src.seq
	e.res.Exchanges = src.res.Exchanges
	e.res.Messages = src.res.Messages
	e.res.Dropped = src.res.Dropped
	e.res.Delivered = src.res.Delivered
	e.res.RumorPayload = src.res.RumorPayload
	e.nextCrash = src.nextCrash
	e.jitterPCG = src.jitterPCG

	if sameSpec(cfg.Adversity, src.cfg.Adversity) {
		// Same schedule: events recompiled identically, cursor and loss
		// stream positions carry over — the bit-identical path.
		e.nextAdvEvent = src.nextAdvEvent
		if src.advPCG != nil {
			copy(e.advPCG, src.advPCG)
		}
	} else {
		// Diverged schedule: it governs from the fork round on. Events it
		// placed before the barrier never happen (the prefix already ran
		// under the capture schedule); events at the barrier round apply.
		for e.nextAdvEvent < len(e.advEvents) && e.advEvents[e.nextAdvEvent].Round < s.round {
			e.nextAdvEvent++
		}
	}

	e.startRound = s.round
	return e.run(stop)
}

// sameSpec reports whether a resume reuses the capture run's adversity
// spec (identity, not structural equality: cursor carry-over is only
// meaningful for the exact schedule the prefix ran under).
func sameSpec(a, b any) bool { return a == b }

// compatible checks that a resume configuration matches the capture
// configuration on every field that shaped the prefix. Both configs are
// post-normalization (newEngine defaults applied).
func compatible(capture, resume *Config) error {
	switch {
	case resume.Graph != capture.Graph || resume.CSR != capture.CSR:
		return fmt.Errorf("sim: resume topology differs from the snapshot's (same Graph/CSR values required)")
	case resume.Seed != capture.Seed:
		return fmt.Errorf("sim: resume seed %d differs from the snapshot's %d", resume.Seed, capture.Seed)
	case resume.KnownLatencies != capture.KnownLatencies:
		return fmt.Errorf("sim: resume known-latencies mode differs from the snapshot's")
	case resume.Mode != capture.Mode:
		return fmt.Errorf("sim: resume rumor mode differs from the snapshot's")
	case resume.Source != capture.Source:
		return fmt.Errorf("sim: resume source %d differs from the snapshot's %d", resume.Source, capture.Source)
	case !sameIntSlice(resume.Sources, capture.Sources):
		return fmt.Errorf("sim: resume sources differ from the snapshot's")
	case !sameIntSlice(resume.CrashAt, capture.CrashAt):
		return fmt.Errorf("sim: resume crash schedule differs from the snapshot's")
	case !sameRumorSeed(resume, capture):
		return fmt.Errorf("sim: resume initial rumors differ from the snapshot's (same slice required)")
	case resume.LatencyJitter != capture.LatencyJitter:
		return fmt.Errorf("sim: resume latency jitter %v differs from the snapshot's %v", resume.LatencyJitter, capture.LatencyJitter)
	}
	return nil
}

func sameIntSlice(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sameRumorSeed compares InitialRumors by identity: the sets seeded the
// prefix, so a resume must hand back the very same slice (or none).
func sameRumorSeed(a, b *Config) bool {
	if len(a.InitialRumors) != len(b.InitialRumors) {
		return false
	}
	return len(a.InitialRumors) == 0 || &a.InitialRumors[0] == &b.InitialRumors[0]
}
