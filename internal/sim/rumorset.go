package sim

import (
	"slices"

	"gossip/internal/bitset"
)

const (
	// denseDirectLimit: runs on at most this many nodes get a dense
	// per-node bitset from the start — the pre-CSR behavior, cheap at
	// small n and fastest for the all-to-all experiment regimes.
	denseDirectLimit = 1 << 13
	// densePromoteLen: on larger networks a node's set starts as a sorted
	// sparse slice and promotes to a dense bitset once it holds this many
	// rumors. One-to-all and local-broadcast workloads never promote, so
	// per-node memory is O(rumors held), not O(n) — the difference
	// between 125 GB and a few hundred MB at n=10⁶.
	densePromoteLen = 1 << 12
)

// rumorSet is a node's rumor membership structure: a hybrid sparse/dense
// set keyed by rumor id. The gain journal (held by NodeView) stays the
// authoritative ordered record; this structure only answers membership.
type rumorSet struct {
	n      int
	sorted []int32     // sorted members while sparse; nil once dense
	dense  *bitset.Set // non-nil once promoted (or from the start, small n)
}

func (s *rumorSet) init(n int) {
	s.n = n
	if n <= denseDirectLimit {
		s.dense = bitset.New(n)
	}
}

func (s *rumorSet) contains(r int32) bool {
	if s.dense != nil {
		return s.dense.Contains(int(r))
	}
	_, found := slices.BinarySearch(s.sorted, r)
	return found
}

// add inserts r and reports whether it was absent.
func (s *rumorSet) add(r int32) bool {
	if s.dense != nil {
		if s.dense.Contains(int(r)) {
			return false
		}
		s.dense.Add(int(r))
		return true
	}
	i, found := slices.BinarySearch(s.sorted, r)
	if found {
		return false
	}
	s.sorted = slices.Insert(s.sorted, i, r)
	if len(s.sorted) >= densePromoteLen {
		s.promote()
	}
	return true
}

func (s *rumorSet) promote() {
	s.dense = bitset.New(s.n)
	for _, r := range s.sorted {
		s.dense.Add(int(r))
	}
	s.sorted = nil
}

// cloneFrom replaces s with a deep copy of src (same representation:
// sparse stays sparse, dense stays dense), reusing s's sparse backing
// where possible. Used by snapshot restore; src is never mutated.
func (s *rumorSet) cloneFrom(src *rumorSet) {
	s.n = src.n
	s.sorted = append(s.sorted[:0], src.sorted...)
	if src.dense != nil {
		s.dense = src.dense.Clone()
	} else {
		s.dense = nil
	}
}

func (s *rumorSet) count() int {
	if s.dense != nil {
		return s.dense.Count()
	}
	return len(s.sorted)
}
