package sim

import (
	"gossip/internal/adversity"
	"gossip/internal/bitset"
	"gossip/internal/graph"
)

// StopAllInformed stops when every node holds rumor r (one-to-all
// dissemination of source r's rumor). When r is the run's watched rumor
// the check rides the engine-maintained informed tally — a word-level
// NextClear scan, O(n/64) — instead of probing every node's set.
func StopAllInformed(r graph.NodeID) StopFunc {
	return func(w *World) bool {
		if w.informed != nil && r == w.watched {
			return w.informed.NextClear(0) >= len(w.Views)
		}
		for _, nv := range w.Views {
			if !nv.rum.contains(int32(r)) {
				return false
			}
		}
		return true
	}
}

// StopAllHaveAll stops when every node holds every rumor (all-to-all
// dissemination; use with Config.Mode == AllToAll). The per-node check
// is the journal length — O(1), no popcount.
func StopAllHaveAll() StopFunc {
	return func(w *World) bool {
		n := len(w.Views)
		for _, nv := range w.Views {
			if len(nv.journal) != n {
				return false
			}
		}
		return true
	}
}

// StopLocalBroadcast stops when every node holds the rumor of each of its
// graph neighbors (the paper's local broadcast; use with AllToAll mode).
func StopLocalBroadcast() StopFunc {
	return func(w *World) bool {
		for _, nv := range w.Views {
			for _, nb := range nv.nbrs {
				if !nv.rum.contains(nb) {
					return false
				}
			}
		}
		return true
	}
}

// StopEllLocalBroadcast stops when every node holds the rumor of each
// neighbor reachable by an edge of latency <= ell (the ℓ-local broadcast
// problem of Section 4.1.1).
func StopEllLocalBroadcast(ell int) StopFunc {
	return func(w *World) bool {
		for _, nv := range w.Views {
			for i, nb := range nv.nbrs {
				if int(nv.lats[i]) <= ell && !nv.rum.contains(nb) {
					return false
				}
			}
		}
		return true
	}
}

// StopAllAliveInformed stops when every node still alive holds rumor r
// (the meaningful completion criterion under fail-stop crashes: crashed
// nodes can never be informed). When r is the watched rumor this is a
// word-level subset test of the alive mask against the informed tally.
func StopAllAliveInformed(r graph.NodeID) StopFunc {
	return func(w *World) bool {
		if w.informed != nil && w.alive != nil && r == w.watched {
			return w.alive.SubsetOf(w.informed)
		}
		for u, nv := range w.Views {
			if w.Alive(u) && !nv.rum.contains(int32(r)) {
				return false
			}
		}
		return true
	}
}

// StopAllSurvivorsInformed stops when every node the failure model
// never permanently removes holds rumor r — the completion criterion
// under churn. A temporarily-down node rejoins and must still be
// informed, so unlike StopAllAliveInformed the run cannot end while it
// is away; only nodes a crash schedule or a never-rejoining churn
// interval removes for good are exempt. This matches the goneForever
// semantics the multi-phase pipelines judge completion with. When r is
// the watched rumor the check is a word-level subset test of the
// survivor mask against the engine-maintained informed tally.
func StopAllSurvivorsInformed(r graph.NodeID, crashAt []int, spec *adversity.Spec) StopFunc {
	var survivors *bitset.Set
	return func(w *World) bool {
		if survivors == nil {
			survivors = bitset.New(len(w.Views))
			for u := range w.Views {
				if crashAt != nil && crashAt[u] >= 0 {
					continue
				}
				if spec.NeverReturns(u) {
					continue
				}
				survivors.Add(u)
			}
		}
		if w.informed != nil && r == w.watched {
			return survivors.SubsetOf(w.informed)
		}
		for u, nv := range w.Views {
			if survivors.Contains(u) && !nv.rum.contains(int32(r)) {
				return false
			}
		}
		return true
	}
}

// Per-shard leader summaries of a distributed run (World.distLeader):
// a non-negative value is the node every owned survivor of the shard has
// unanimously decided on; the sentinels mark shards with nothing to say
// or with an owned survivor still down, undecided or disagreeing.
const (
	// LeaderAgnostic marks a shard owning no survivors: it cannot veto.
	LeaderAgnostic int32 = -2
	// LeaderUnsettled marks a shard where some owned survivor is down,
	// undecided, or disagrees with the others.
	LeaderUnsettled int32 = -1
)

// StopLeaderStable stops when every survivor — every node the failure
// model never permanently removes — is currently up, reports a decided
// leader through the LeaderReporter facet, all survivors name the same
// leader, and that leader is itself a survivor. A temporarily-down node
// rejoins and must still converge, so the run cannot end while it is
// away (the StopAllSurvivorsInformed semantics). Nodes without the
// facet count as undecided. On a distributed shard worker the check
// combines the per-shard leader summaries every owner captured at the
// same point of the round the serial engine would read its facets.
func StopLeaderStable(crashAt []int, spec *adversity.Spec) StopFunc {
	var survivors *bitset.Set
	ensure := func(w *World) {
		if survivors != nil {
			return
		}
		survivors = bitset.New(len(w.Views))
		for u := range w.Views {
			if crashAt != nil && crashAt[u] >= 0 {
				continue
			}
			if spec.NeverReturns(u) {
				continue
			}
			survivors.Add(u)
		}
	}
	return func(w *World) bool {
		ensure(w)
		leader := LeaderAgnostic
		if w.distLeader != nil {
			for _, l := range w.distLeader {
				switch {
				case l == LeaderAgnostic:
				case l == LeaderUnsettled:
					return false
				case leader == LeaderAgnostic:
					leader = l
				case leader != l:
					return false
				}
			}
		} else {
			for u := range w.Views {
				if !survivors.Contains(u) {
					continue
				}
				lr := w.leaders[u]
				if lr == nil || !w.Alive(u) {
					return false
				}
				l, decided := lr.Leader()
				if !decided {
					return false
				}
				switch {
				case leader == LeaderAgnostic:
					leader = int32(l)
				case leader != int32(l):
					return false
				}
			}
		}
		// No survivors at all: vacuously stable. Otherwise the elected
		// node must itself be a survivor.
		return leader == LeaderAgnostic || survivors.Contains(int(leader))
	}
}

// StopRootAcked stops when root's rumor set contains the rumor of every
// survivor — the echo/convergecast completion criterion: each node's own
// rumor doubles as its ack, so the wave is complete exactly when the
// root has heard the full survivor set. The check reads only rumor
// state, which distributed workers replicate for all nodes, so it is
// shard-safe with no extra barrier traffic.
func StopRootAcked(root graph.NodeID, crashAt []int, spec *adversity.Spec) StopFunc {
	var survivors *bitset.Set
	return func(w *World) bool {
		if survivors == nil {
			survivors = bitset.New(len(w.Views))
			for u := range w.Views {
				if crashAt != nil && crashAt[u] >= 0 {
					continue
				}
				if spec.NeverReturns(u) {
					continue
				}
				survivors.Add(u)
			}
		}
		rv := w.Views[root]
		if len(rv.journal) < survivors.Count() {
			return false
		}
		acked := true
		survivors.ForEach(func(u int) {
			if acked && !rv.rum.contains(int32(u)) {
				acked = false
			}
		})
		return acked
	}
}

// StopAllDone stops when every live node's protocol implementing
// DoneReporter reports done (protocols without DoneReporter count as
// done; crashed nodes are excluded — their state can never change). The
// DoneReporter facets are resolved once at setup, not per check.
func StopAllDone() StopFunc {
	return func(w *World) bool {
		if w.distDone != nil {
			// Distributed shard worker: remote facets are not
			// materialized, so the check rides the per-shard all-done
			// flags every owner captured at the same point of the round
			// the serial engine would evaluate its facets.
			for _, done := range w.distDone {
				if !done {
					return false
				}
			}
			return true
		}
		if w.dones != nil {
			for u, dr := range w.dones {
				if dr != nil && w.Alive(u) && !dr.Done() {
					return false
				}
			}
			return true
		}
		for u, p := range w.Protos {
			if !w.Alive(u) {
				continue
			}
			if dr, ok := p.(DoneReporter); ok && !dr.Done() {
				return false
			}
		}
		return true
	}
}

// StopAnd stops when all constituent conditions hold.
func StopAnd(fns ...StopFunc) StopFunc {
	return func(w *World) bool {
		for _, fn := range fns {
			if !fn(w) {
				return false
			}
		}
		return true
	}
}

// StopOr stops when any constituent condition holds.
func StopOr(fns ...StopFunc) StopFunc {
	return func(w *World) bool {
		for _, fn := range fns {
			if fn(w) {
				return true
			}
		}
		return false
	}
}

// StopNever runs to the horizon (useful for fixed-budget executions).
func StopNever() StopFunc { return func(*World) bool { return false } }
