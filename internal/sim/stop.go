package sim

import "gossip/internal/graph"

// StopAllInformed stops when every node holds rumor r (one-to-all
// dissemination of source r's rumor).
func StopAllInformed(r graph.NodeID) StopFunc {
	return func(w *World) bool {
		for _, nv := range w.Views {
			if !nv.rum.Contains(r) {
				return false
			}
		}
		return true
	}
}

// StopAllHaveAll stops when every node holds every rumor (all-to-all
// dissemination; use with Config.Mode == AllToAll).
func StopAllHaveAll() StopFunc {
	return func(w *World) bool {
		for _, nv := range w.Views {
			if !nv.rum.Full() {
				return false
			}
		}
		return true
	}
}

// StopLocalBroadcast stops when every node holds the rumor of each of its
// graph neighbors (the paper's local broadcast; use with AllToAll mode).
func StopLocalBroadcast() StopFunc {
	return func(w *World) bool {
		for _, nv := range w.Views {
			for _, nb := range nv.nbrs {
				if !nv.rum.Contains(nb.ID) {
					return false
				}
			}
		}
		return true
	}
}

// StopEllLocalBroadcast stops when every node holds the rumor of each
// neighbor reachable by an edge of latency <= ell (the ℓ-local broadcast
// problem of Section 4.1.1).
func StopEllLocalBroadcast(ell int) StopFunc {
	return func(w *World) bool {
		for _, nv := range w.Views {
			for _, nb := range nv.nbrs {
				if nb.Latency <= ell && !nv.rum.Contains(nb.ID) {
					return false
				}
			}
		}
		return true
	}
}

// StopAllAliveInformed stops when every node still alive holds rumor r
// (the meaningful completion criterion under fail-stop crashes: crashed
// nodes can never be informed).
func StopAllAliveInformed(r graph.NodeID) StopFunc {
	return func(w *World) bool {
		for u, nv := range w.Views {
			if w.Alive(u) && !nv.rum.Contains(r) {
				return false
			}
		}
		return true
	}
}

// StopAllDone stops when every live node's protocol implementing
// DoneReporter reports done (protocols without DoneReporter count as
// done; crashed nodes are excluded — their state can never change).
func StopAllDone() StopFunc {
	return func(w *World) bool {
		for u, p := range w.Protos {
			if !w.Alive(u) {
				continue
			}
			if dr, ok := p.(DoneReporter); ok && !dr.Done() {
				return false
			}
		}
		return true
	}
}

// StopAnd stops when all constituent conditions hold.
func StopAnd(fns ...StopFunc) StopFunc {
	return func(w *World) bool {
		for _, fn := range fns {
			if !fn(w) {
				return false
			}
		}
		return true
	}
}

// StopOr stops when any constituent condition holds.
func StopOr(fns ...StopFunc) StopFunc {
	return func(w *World) bool {
		for _, fn := range fns {
			if fn(w) {
				return true
			}
		}
		return false
	}
}

// StopNever runs to the horizon (useful for fixed-budget executions).
func StopNever() StopFunc { return func(*World) bool { return false } }
