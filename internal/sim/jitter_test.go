package sim

import (
	"math"
	"testing"
)

func TestJitterZeroIsExact(t *testing.T) {
	g := pathGraph(5)
	res, err := Run(Config{Graph: g, Mode: OneToAll, Source: 0, MaxRounds: 100, LatencyJitter: 0},
		func(nv *NodeView) Protocol {
			p := &fixedProtocol{nv: nv, schedule: map[int]int{}}
			if nv.ID() == 0 {
				p.schedule[0] = 0
			}
			return p
		}, StopAllInformed(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 5 {
		t.Fatalf("rounds = %d, want exactly 5 without jitter", res.Rounds)
	}
}

func TestJitterPerturbsWithinBounds(t *testing.T) {
	// Latency 100 with 30% jitter: delivery must land in [70, 130].
	g := pathGraph(100)
	res, err := Run(Config{Graph: g, Mode: OneToAll, Source: 0, MaxRounds: 500, LatencyJitter: 0.3, Seed: 7},
		func(nv *NodeView) Protocol {
			p := &fixedProtocol{nv: nv, schedule: map[int]int{}}
			if nv.ID() == 0 {
				p.schedule[0] = 0
			}
			return p
		}, StopAllInformed(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds < 70 || res.Rounds > 130 {
		t.Fatalf("jittered delivery at %d, want within [70,130]", res.Rounds)
	}
}

func TestJitterNeverBelowOne(t *testing.T) {
	g := pathGraph(1)
	res, err := Run(Config{Graph: g, Mode: OneToAll, Source: 0, MaxRounds: 20, LatencyJitter: 0.9, Seed: 3},
		func(nv *NodeView) Protocol {
			p := &fixedProtocol{nv: nv, schedule: map[int]int{}}
			if nv.ID() == 0 {
				p.schedule[0] = 0
			}
			return p
		}, StopAllInformed(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds < 1 {
		t.Fatalf("delivery in %d rounds; latency must stay >= 1", res.Rounds)
	}
}

// TestJitterValidation pins the config-block validation: LatencyJitter
// must be a finite value in [0,1), rejected before the run starts.
func TestJitterValidation(t *testing.T) {
	g := pathGraph(1)
	cases := []struct {
		jitter float64
		ok     bool
	}{
		{0, true},
		{0.001, true},
		{0.5, true},
		{0.999, true},
		{-0.1, false},
		{-1, false},
		{1.0, false},
		{1.5, false},
		{2.5, false},
		{math.NaN(), false},
		{math.Inf(1), false},
		{math.Inf(-1), false},
	}
	for _, c := range cases {
		_, err := Run(Config{Graph: g, MaxRounds: 5, LatencyJitter: c.jitter},
			func(nv *NodeView) Protocol { return &fixedProtocol{nv: nv} }, StopNever())
		if c.ok && err != nil {
			t.Fatalf("jitter %v rejected: %v", c.jitter, err)
		}
		if !c.ok && err == nil {
			t.Fatalf("jitter %v accepted", c.jitter)
		}
	}
}

func TestJitterDeterministicBySeed(t *testing.T) {
	g := pathGraph(50, 50, 50)
	run := func() int {
		res, err := Run(Config{Graph: g, Mode: OneToAll, Source: 0, MaxRounds: 1000, LatencyJitter: 0.4, Seed: 11},
			func(nv *NodeView) Protocol {
				p := &fixedProtocol{nv: nv, schedule: map[int]int{}}
				if nv.ID() == 0 {
					p.schedule[0] = 0
				}
				if nv.ID() == 1 {
					p.schedule[1] = nv.NeighborIndex(2)
				}
				if nv.ID() == 2 {
					p.schedule[2] = nv.NeighborIndex(3)
				}
				return p
			}, StopNever())
		if err != nil {
			t.Fatal(err)
		}
		return res.Rounds
	}
	if run() != run() {
		t.Fatal("jitter not deterministic under a fixed seed")
	}
}

func TestRumorPayloadAccounting(t *testing.T) {
	// AllToAll path of 2 nodes, one exchange: each side carries 1 rumor.
	g := pathGraph(1)
	res, err := Run(Config{Graph: g, Mode: AllToAll, MaxRounds: 10},
		func(nv *NodeView) Protocol {
			p := &fixedProtocol{nv: nv, schedule: map[int]int{}}
			if nv.ID() == 0 {
				p.schedule[0] = 0
			}
			return p
		}, StopAllHaveAll())
	if err != nil {
		t.Fatal(err)
	}
	if res.RumorPayload != 2 {
		t.Fatalf("RumorPayload = %d, want 2", res.RumorPayload)
	}
}
