package sim

import (
	"strings"
	"testing"

	"gossip/internal/graphgen"
)

// cloningProtocol extends randProtocol with StateCloner; it has no
// mutable state beyond the engine-owned RNG cursor, so the clone is a
// no-op. It exists so snapshot tests can run without the gossip layer.
type cloningProtocol struct{ randProtocol }

func (p *cloningProtocol) CloneStateFrom(Protocol) {}

func cloningFactory(nv *NodeView) Protocol {
	return &cloningProtocol{randProtocol{nv: nv}}
}

// TestCaptureRejectsNonCloner pins the fail-fast contract: a protocol
// without CloneStateFrom cannot be snapshotted, and CaptureAt says so
// before running anything.
func TestCaptureRejectsNonCloner(t *testing.T) {
	g := graphgen.Clique(6, 1)
	cfg := Config{Graph: g, Seed: 1, MaxRounds: 64}
	_, err := CaptureAt(cfg, func(nv *NodeView) Protocol { return &randProtocol{nv: nv} }, StopAllInformed(0), 4)
	if err == nil || !strings.Contains(err.Error(), "StateCloner") {
		t.Fatalf("want StateCloner error, got %v", err)
	}
}

// TestCaptureRejectsNegativeRound pins the argument guard.
func TestCaptureRejectsNegativeRound(t *testing.T) {
	g := graphgen.Clique(6, 1)
	cfg := Config{Graph: g, Seed: 1, MaxRounds: 64}
	if _, err := CaptureAt(cfg, cloningFactory, StopAllInformed(0), -1); err == nil {
		t.Fatal("negative capture round accepted")
	}
}

// TestCaptureAfterEndIsDone: forking past the end of the run yields a
// Done snapshot whose every Resume returns the finished result.
func TestCaptureAfterEndIsDone(t *testing.T) {
	g := graphgen.Clique(8, 1)
	cfg := Config{Graph: g, Seed: 3, MaxRounds: 1 << 12}
	cold, err := Run(cfg, cloningFactory, StopAllInformed(0))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := CaptureAt(cfg, cloningFactory, StopAllInformed(0), cold.Rounds+100)
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Done() || snap.Round() != cold.Rounds {
		t.Fatalf("want done snapshot at round %d, got done=%v round=%d", cold.Rounds, snap.Done(), snap.Round())
	}
	res, err := snap.Resume(cfg, cloningFactory, StopAllInformed(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != cold.Rounds || res.Exchanges != cold.Exchanges {
		t.Fatalf("done resume diverges from cold run: %+v vs %+v", res, cold)
	}
}

// TestResumeRejectsIncompatibleConfig enumerates the frozen knobs: a
// resume that diverges on any prefix-shaping field must be refused.
func TestResumeRejectsIncompatibleConfig(t *testing.T) {
	g := graphgen.Clique(8, 1)
	base := Config{Graph: g, Seed: 3, MaxRounds: 1 << 12}
	snap, err := CaptureAt(base, cloningFactory, StopAllInformed(0), 2)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Done() {
		t.Fatal("capture finished before round 2; graph too easy for this test")
	}
	bad := []struct {
		name string
		mut  func(*Config)
	}{
		{"seed", func(c *Config) { c.Seed = 4 }},
		{"graph", func(c *Config) { c.Graph = graphgen.Clique(8, 1) }},
		{"source", func(c *Config) { c.Source = 1 }},
		{"crashes", func(c *Config) { c.CrashAt = make([]int, 8) }},
		{"jitter", func(c *Config) { c.LatencyJitter = 0.25 }},
		{"horizon-before-fork", func(c *Config) { c.MaxRounds = 1 }},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mut(&cfg)
			if _, err := snap.Resume(cfg, cloningFactory, StopAllInformed(0)); err == nil {
				t.Fatalf("incompatible resume (%s) accepted", tc.name)
			}
		})
	}
}

// TestResumeBitIdentical is the core engine-level guarantee on the
// minimal protocol: capture at R, resume with the identical config, and
// the continuation must equal the cold run exactly — counters, final
// round, and the per-node informed schedule — at 1 and 8 workers and
// in every cross combination of capture/resume worker counts.
func TestResumeBitIdentical(t *testing.T) {
	g := graphgen.Grid(8, 8, 3)
	mk := func(workers int) Config {
		return Config{Graph: g, Seed: 9, MaxRounds: 1 << 12, Workers: workers}
	}
	cold, err := Run(mk(1), cloningFactory, StopAllInformed(0))
	if err != nil {
		t.Fatal(err)
	}
	fork := cold.Rounds / 2
	for _, cw := range []int{1, 8} {
		snap, err := CaptureAt(mk(cw), cloningFactory, StopAllInformed(0), fork)
		if err != nil {
			t.Fatal(err)
		}
		for _, rw := range []int{1, 8} {
			warm, err := snap.Resume(mk(rw), cloningFactory, StopAllInformed(0))
			if err != nil {
				t.Fatal(err)
			}
			if warm.Rounds != cold.Rounds || warm.Exchanges != cold.Exchanges ||
				warm.Messages != cold.Messages || warm.Delivered != cold.Delivered ||
				warm.RumorPayload != cold.RumorPayload {
				t.Fatalf("capture@w%d/resume@w%d diverges:\n warm %+v\n cold %+v", cw, rw, warm, cold)
			}
			for u := range cold.InformedAt {
				if warm.InformedAt[u] != cold.InformedAt[u] {
					t.Fatalf("capture@w%d/resume@w%d: node %d informed at %d, cold %d",
						cw, rw, u, warm.InformedAt[u], cold.InformedAt[u])
				}
			}
		}
	}
}
