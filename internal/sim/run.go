package sim

import (
	"container/heap"
	"fmt"
	"math/rand/v2"

	"gossip/internal/bitset"
	"gossip/internal/graph"
)

// DefaultMaxRounds is the safety horizon when Config.MaxRounds is zero.
const DefaultMaxRounds = 1 << 20

// Factory builds the protocol instance for one node. It runs once per
// node before round 0.
type Factory func(nv *NodeView) Protocol

// StopFunc decides when the simulation is finished. It runs after the
// deliveries of each round have been applied.
type StopFunc func(w *World) bool

// World is the global state a StopFunc may inspect.
type World struct {
	Graph  *graph.Graph
	Views  []*NodeView
	Protos []Protocol
	Round  int
	// crashAt mirrors Config.CrashAt (nil when no failures configured).
	crashAt []int
}

// Alive reports whether node u has not crashed as of the current round.
func (w *World) Alive(u graph.NodeID) bool {
	return w.crashAt == nil || w.crashAt[u] < 0 || w.Round < w.crashAt[u]
}

// exchange is an in-flight bidirectional rumor swap.
type exchange struct {
	deliver   int
	initRound int
	seq       int64
	u, v      graph.NodeID // u initiated
	uIdx      int          // adjacency index of v at u
	vIdx      int          // adjacency index of u at v
	latency   int
	uSnap     *bitset.Set // u's rumors at initiation
	vSnap     *bitset.Set // v's rumors at initiation
	uMeta     any
	vMeta     any
}

// exchangeHeap orders exchanges by (deliver, seq) so delivery order is
// deterministic.
type exchangeHeap []*exchange

func (h exchangeHeap) Len() int { return len(h) }
func (h exchangeHeap) Less(i, j int) bool {
	if h[i].deliver != h[j].deliver {
		return h[i].deliver < h[j].deliver
	}
	return h[i].seq < h[j].seq
}
func (h exchangeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *exchangeHeap) Push(x interface{}) { *h = append(*h, x.(*exchange)) }
func (h *exchangeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Run executes the simulation until stop returns true or the horizon is
// reached.
func Run(cfg Config, factory Factory, stop StopFunc) (Result, error) {
	if cfg.Graph == nil {
		return Result{}, fmt.Errorf("sim: nil graph")
	}
	if err := cfg.Graph.Validate(); err != nil {
		return Result{}, fmt.Errorf("sim: invalid graph: %w", err)
	}
	if cfg.Mode == 0 {
		cfg.Mode = OneToAll
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = DefaultMaxRounds
	}
	g := cfg.Graph
	n := g.N()
	if cfg.Source < 0 || cfg.Source >= n {
		return Result{}, fmt.Errorf("sim: source %d out of range", cfg.Source)
	}
	for _, s := range cfg.Sources {
		if s < 0 || s >= n {
			return Result{}, fmt.Errorf("sim: source %d out of range", s)
		}
	}
	if cfg.CrashAt != nil && len(cfg.CrashAt) != n {
		return Result{}, fmt.Errorf("sim: %d crash entries for %d nodes", len(cfg.CrashAt), n)
	}

	views := make([]*NodeView, n)
	protos := make([]Protocol, n)
	for u := 0; u < n; u++ {
		nbrs := g.Neighbors(u)
		known := make([]int, len(nbrs))
		for i := range known {
			if cfg.KnownLatencies {
				known[i] = nbrs[i].Latency
			} else {
				known[i] = -1
			}
		}
		views[u] = &NodeView{
			id:    u,
			n:     n,
			g:     g,
			nbrs:  nbrs,
			known: known,
			rum:   bitset.New(n),
			rng:   rand.New(rand.NewPCG(cfg.Seed, uint64(u)*0x9e3779b97f4a7c15+1)),
		}
	}
	watched := cfg.Source
	if len(cfg.Sources) > 0 {
		watched = cfg.Sources[0]
	}
	informedAt := make([]int, n)
	for i := range informedAt {
		informedAt[i] = -1
	}
	switch {
	case cfg.InitialRumors != nil:
		if len(cfg.InitialRumors) != n {
			return Result{}, fmt.Errorf("sim: %d initial rumor sets for %d nodes", len(cfg.InitialRumors), n)
		}
		for u := 0; u < n; u++ {
			views[u].rum.UnionWith(cfg.InitialRumors[u])
			if views[u].rum.Contains(watched) {
				informedAt[u] = 0
			}
		}
	case cfg.Mode == OneToAll && len(cfg.Sources) > 0:
		for _, s := range cfg.Sources {
			views[s].rum.Add(s)
		}
		informedAt[watched] = 0
	case cfg.Mode == OneToAll:
		views[cfg.Source].rum.Add(cfg.Source)
		informedAt[cfg.Source] = 0
	case cfg.Mode == AllToAll:
		for u := 0; u < n; u++ {
			views[u].rum.Add(u)
		}
		informedAt[watched] = 0
	default:
		return Result{}, fmt.Errorf("sim: unknown rumor mode %d", cfg.Mode)
	}
	for u := 0; u < n; u++ {
		protos[u] = factory(views[u])
		if protos[u] == nil {
			return Result{}, fmt.Errorf("sim: factory returned nil protocol for node %d", u)
		}
	}

	world := &World{Graph: g, Views: views, Protos: protos, crashAt: cfg.CrashAt}
	crashed := func(u graph.NodeID, round int) bool {
		return cfg.CrashAt != nil && cfg.CrashAt[u] >= 0 && round >= cfg.CrashAt[u]
	}
	if cfg.LatencyJitter < 0 || cfg.LatencyJitter >= 1 {
		if cfg.LatencyJitter != 0 {
			return Result{}, fmt.Errorf("sim: latency jitter %v outside [0,1)", cfg.LatencyJitter)
		}
	}
	jitterRNG := rand.New(rand.NewPCG(cfg.Seed^0xdeadbeefcafe, 0x5851f42d4c957f2d))
	actualLatency := func(nominal int) int {
		if cfg.LatencyJitter == 0 {
			return nominal
		}
		f := 1 + cfg.LatencyJitter*(2*jitterRNG.Float64()-1)
		l := int(float64(nominal)*f + 0.5)
		if l < 1 {
			l = 1
		}
		return l
	}
	var (
		pending exchangeHeap
		seq     int64
		res     Result
	)
	res.InformedAt = informedAt
	res.World = world
	heap.Init(&pending)

	deliverOne := func(ex *exchange) {
		// A fail-stop endpoint neither responds nor forwards: the whole
		// exchange is lost if either side is down at completion time.
		if crashed(ex.u, ex.deliver) || crashed(ex.v, ex.deliver) {
			res.Dropped++
			return
		}
		res.RumorPayload += int64(ex.uSnap.Count()) + int64(ex.vSnap.Count())
		for _, side := range [2]struct {
			self, peer       graph.NodeID
			selfIdx, peerIdx int
			snap             *bitset.Set
			meta             any
			initiator        bool
		}{
			{ex.u, ex.v, ex.uIdx, ex.vIdx, ex.vSnap, ex.vMeta, true},
			{ex.v, ex.u, ex.vIdx, ex.uIdx, ex.uSnap, ex.uMeta, false},
		} {
			nv := views[side.self]
			before := nv.rum.Count()
			nv.rum.UnionWith(side.snap)
			gained := nv.rum.Count() - before
			nv.known[side.selfIdx] = ex.latency
			if informedAt[side.self] < 0 && nv.rum.Contains(watched) {
				informedAt[side.self] = ex.deliver
			}
			protos[side.self].OnDeliver(Delivery{
				Round:         ex.deliver,
				InitRound:     ex.initRound,
				Peer:          side.peer,
				NeighborIndex: side.selfIdx,
				Latency:       ex.latency,
				Initiator:     side.initiator,
				PeerRumors:    side.snap,
				NewRumors:     gained,
				PeerMeta:      side.meta,
			})
		}
	}

	for round := 0; round <= cfg.MaxRounds; round++ {
		world.Round = round
		for pending.Len() > 0 && pending[0].deliver <= round {
			deliverOne(heap.Pop(&pending).(*exchange))
		}
		if stop(world) {
			res.Rounds = round
			res.Completed = true
			return res, nil
		}
		idle := true
		var inCount []int
		if cfg.MaxInPerRound > 0 {
			inCount = make([]int, n)
		}
		for u := 0; u < n; u++ {
			if crashed(u, round) {
				continue
			}
			idx, ok := protos[u].Activate(round)
			if !ok {
				continue
			}
			nv := views[u]
			if idx < 0 || idx >= len(nv.nbrs) {
				return res, fmt.Errorf("sim: node %d activated invalid neighbor index %d", u, idx)
			}
			idle = false
			v := nv.nbrs[idx].ID
			if inCount != nil {
				if inCount[v] >= cfg.MaxInPerRound {
					// Bounded in-degree: the connection is refused; the
					// attempt still costs a message.
					res.Messages++
					res.Dropped++
					continue
				}
				inCount[v]++
			}
			lat := actualLatency(nv.nbrs[idx].Latency)
			vIdx := views[v].NeighborIndex(u)
			ex := &exchange{
				deliver:   round + lat,
				initRound: round,
				seq:       seq,
				u:         u,
				v:         v,
				uIdx:      idx,
				vIdx:      vIdx,
				latency:   lat,
				uSnap:     nv.rum.Clone(),
				vSnap:     views[v].rum.Clone(),
			}
			seq++
			if mp, ok := protos[u].(MetaProducer); ok {
				ex.uMeta = mp.Meta()
			}
			if mp, ok := protos[v].(MetaProducer); ok {
				ex.vMeta = mp.Meta()
			}
			heap.Push(&pending, ex)
			res.Exchanges++
			res.Messages += 2
		}
		if idle && pending.Len() == 0 {
			// Nothing in flight and nobody acted this round. Unless a
			// protocol is waiting on an internal timer (Waiter), nobody
			// will ever act again and the run is over.
			waiting := false
			for u := 0; u < n; u++ {
				if w, ok := protos[u].(Waiter); ok && !crashed(u, round) && w.Waiting() {
					waiting = true
					break
				}
			}
			if !waiting {
				res.Rounds = round
				res.Completed = stop(world)
				return res, nil
			}
		}
	}
	res.Rounds = cfg.MaxRounds
	res.Completed = false
	return res, nil
}
