package sim

import (
	"container/heap"
	"fmt"
	"math/bits"
	"math/rand/v2"
	"sort"
	"sync"

	"gossip/internal/adversity"
	"gossip/internal/bitset"
	"gossip/internal/graph"
)

// DefaultMaxRounds is the safety horizon when Config.MaxRounds is zero.
const DefaultMaxRounds = 1 << 20

// Factory builds the protocol instance for one node. It runs once per
// node, in node order, before round 0.
type Factory func(nv *NodeView) Protocol

// StopFunc decides when the simulation is finished. It runs after the
// deliveries of each round have been applied.
type StopFunc func(w *World) bool

// World is the global state a StopFunc may inspect.
type World struct {
	// Graph is the adjacency-map form of the network; nil when the run
	// was configured with Config.CSR only.
	Graph *graph.Graph
	// CSR is the compressed sparse row form the engine executes on.
	CSR    *graph.CSR
	Views  []*NodeView
	Protos []Protocol
	Round  int
	// crashAt mirrors Config.CrashAt (nil when no failures configured).
	crashAt []int
	// adv is the compiled adversity schedule (nil when benign).
	adv *adversity.Schedule
	// watched is the rumor whose spread InformedAt tracks; informed is
	// the word-level tally of nodes holding it, maintained incrementally
	// by the engine so completion checks are O(n/64) scans instead of
	// per-node set probes.
	watched  graph.NodeID
	informed *bitset.Set
	// alive tracks non-crashed nodes (nil when no failures configured).
	alive *bitset.Set
	// dones caches the DoneReporter facet per node (nil entries for
	// protocols without one) so quiescence stops skip per-check type
	// assertions.
	dones []DoneReporter
	// distDone, on a distributed shard worker, holds every shard's
	// captured all-done flag for the stop evaluation in progress (remote
	// protocol facets are not materialized on a worker, so StopAllDone
	// consults these instead of scanning dones). Nil in serial runs.
	distDone []bool
	// leaders caches the LeaderReporter facet per node (nil entries for
	// protocols without one), mirroring dones.
	leaders []LeaderReporter
	// distLeader, on a distributed shard worker, holds every shard's
	// captured leader summary for the stop evaluation in progress — a
	// node ID when the shard's owned survivors unanimously decided it,
	// or a LeaderAgnostic/LeaderUnsettled sentinel. Nil in serial runs.
	distLeader []int32
}

// Alive reports whether node u is up (not crashed, not churned out) as
// of the current round.
func (w *World) Alive(u graph.NodeID) bool {
	if w.crashAt != nil && w.crashAt[u] >= 0 && w.Round >= w.crashAt[u] {
		return false
	}
	return w.adv == nil || !w.adv.Down(u, w.Round)
}

// exch is an in-flight bidirectional rumor swap, stored by value in the
// delivery calendar. Instead of cloning the endpoints' rumor sets it
// records a window into each endpoint's gain journal: [start,end) is the
// delta this exchange carries, end is also the size of the endpoint's
// full set at initiation time. uNews/vNews are the captured journal
// window views, filled in when the exchange comes due.
type exch struct {
	seq          int64
	deliver      int
	initRound    int
	u, v         int32 // u initiated
	uIdx, vIdx   int32 // adjacency index of the peer at u / at v
	latency      int32
	uStart, uEnd int32 // window into u's journal
	vStart, vEnd int32 // window into v's journal
	// lost marks an exchange the adversity schedule kills (message
	// loss, churned-out endpoint, flapped link). It is decided at
	// initiation — serially, in node order, so sharded runs agree — but
	// executed at the delivery round, so calendar occupancy and idle
	// detection match the fail-stop crash path exactly.
	lost         bool
	uMeta, vMeta any
	uNews, vNews []int32 // news *for* u (v's window) / *for* v (u's window)
}

// exchHeap is the overflow queue for deliveries beyond the calendar
// ring's horizon (slow edges), ordered by (deliver, seq).
type exchHeap []exch

func (h exchHeap) Len() int { return len(h) }
func (h exchHeap) Less(i, j int) bool {
	if h[i].deliver != h[j].deliver {
		return h[i].deliver < h[j].deliver
	}
	return h[i].seq < h[j].seq
}
func (h exchHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *exchHeap) Push(x interface{}) { *h = append(*h, x.(exch)) }
func (h *exchHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = exch{}
	*h = old[:n-1]
	return it
}

// never is the parked-wake sentinel.
const never = WakeOnDelivery

// actIntent is one buffered activation: node u wants to contact its
// idx-th neighbor this round.
type actIntent struct{ u, idx int32 }

// shard is the per-worker slice of a round: a contiguous node range plus
// the buffers its worker fills between barriers. Everything a worker
// writes lives either here or in per-node state it owns, which is what
// makes worker-count-independent determinism structural rather than
// lucky.
type shard struct {
	lo, hi int
	// intents are this shard's activations, in node order; merged into
	// exchanges serially at the round barrier.
	intents []actIntent
	// recs are this shard's due deliveries: index into the engine's due
	// list shifted left one, low bit = side (0 = initiator endpoint).
	recs []uint32
	// newlyInformed collects nodes that first saw the watched rumor this
	// round; folded into the informed tally at the barrier.
	newlyInformed        []int32
	minWake, sleeperWake int
	idle, called         bool
	err                  error
}

type engine struct {
	cfg      Config
	csr      *graph.CSR
	n        int
	views    []*NodeView
	protos   []Protocol
	sleeper  []Sleeper
	waiter   []Waiter
	meta     []MetaProducer
	amnesiac []AmnesiaReseter
	world    *World

	// pcgArena/rngArena back every NodeView's private stream; kept on the
	// engine (not as setup locals) so a snapshot can copy the PCG cursors
	// and a restored engine can splice them back in.
	pcgArena []rand.PCG
	rngArena []rand.Rand

	watched    graph.NodeID
	informedAt []int
	wake       []int
	// sent is the per-half-edge journal high-water mark (delta windows);
	// nil under latency jitter, which falls back to full prefixes.
	sent []int32

	// ring is the delivery calendar: bucket d&ringMask holds the
	// exchanges completing at round d, in seq order, for deliveries
	// within ringSize rounds; farther ones wait in overflow. Bucket
	// append order is seq order because initiations are merged in node
	// order round by round, so draining a bucket needs no sorting.
	ring      [][]exch
	ringMask  int
	ringCount int
	overflow  exchHeap

	due    []exch // scratch: this round's deliveries in (deliver,seq) order
	dueBuf []exch // merge buffer when overflow items join a bucket
	// spare is the drained bucket's backing array, handed forward to the
	// next first-touch slot: a drained slot is not due again for
	// len(ring) rounds, while the slot the current round schedules into
	// usually starts empty — recycling makes steady-state scheduling
	// allocation-free at fixed latency instead of regrowing a multi-MB
	// bucket through doublings every round.
	spare []exch

	shards  []shard
	workers int

	// jitterPCG is the jitter draw stream, held by value (jitterRNG wraps
	// it) so snapshots can copy the cursor like any per-node stream.
	jitterPCG rand.PCG
	jitterRNG *rand.Rand
	useDelta  bool
	inCount   []int
	seq       int64
	res       Result

	// startRound is where the event loop enters (non-zero on a restored
	// engine). snapAt >= 0 arms a capture barrier: the loop freezes and
	// returns at the first processed round >= snapAt, recording it in
	// snapRound and setting snapped.
	startRound int
	snapAt     int
	snapRound  int
	snapped    bool

	crashRounds []int
	crashNodes  map[int][]int32
	nextCrash   int

	// adv is the compiled fault schedule; advRNG holds the per-node
	// loss-draw PCG streams (allocated only when the schedule can lose
	// exchanges, and distinct from the protocol streams so faults do not
	// perturb protocol randomness).
	adv          *adversity.Schedule
	advPCG       []rand.PCG
	advRNG       []rand.Rand
	advEvents    []adversity.Event
	nextAdvEvent int

	// dist is the distributed-execution state of a shard worker (nil in
	// ordinary runs); see dist.go.
	dist *distRun
}

// down reports whether node u is unavailable at round (crashed per the
// legacy schedule, or inside an adversity down interval).
func (e *engine) down(u int, round int) bool {
	if e.crashed(u, round) {
		return true
	}
	return e.adv != nil && e.adv.Down(u, round)
}

func (e *engine) crashed(u int, round int) bool {
	ca := e.cfg.CrashAt
	return ca != nil && ca[u] >= 0 && round >= ca[u]
}

func (e *engine) actualLatency(nominal int) int {
	if e.cfg.LatencyJitter == 0 {
		return nominal
	}
	f := 1 + e.cfg.LatencyJitter*(2*e.jitterRNG.Float64()-1)
	l := int(float64(nominal)*f + 0.5)
	if l < 1 {
		l = 1
	}
	return l
}

func nextPow2(x int) int {
	if x <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(x-1))
}

// csrHasEdge reports whether {u,v} is an edge of the topology (used to
// validate adversity schedules, not on any hot path).
func csrHasEdge(csr *graph.CSR, u, v int) bool {
	if u < 0 || u >= csr.N() || v < 0 || v >= csr.N() {
		return false
	}
	for _, nb := range csr.NeighborIDs(u) {
		if int(nb) == v {
			return true
		}
	}
	return false
}

// Run executes the simulation until stop returns true or the horizon is
// reached.
func Run(cfg Config, factory Factory, stop StopFunc) (Result, error) {
	e, err := newEngine(cfg, factory)
	if err != nil {
		return Result{}, err
	}
	return e.run(stop)
}

// newEngine validates cfg and builds a ready-to-run engine positioned at
// round 0: arenas, rumor seeding, protocol facets, the delivery calendar
// and the worker shards. Run is newEngine + run; snapshot restore
// (snapshot.go) builds the same fresh engine and splices captured state
// over it, which is why everything mutable lives in engine fields.
func newEngine(cfg Config, factory Factory) (*engine, error) {
	return newEngineShard(cfg, factory, 0, 1)
}

// newEngineShard is newEngine generalized to a distributed shard worker:
// with shardCount > 1 the engine still builds the full deterministic
// node-state arenas (views, journals, RNG streams, seeding — all
// derivable from cfg alone), but protocol instances and their facets are
// constructed only for the worker's contiguous node range, and the
// single execution shard covers exactly that range. shardCount <= 1 is
// the ordinary full-range engine.
func newEngineShard(cfg Config, factory Factory, shardIdx, shardCount int) (*engine, error) {
	csr := cfg.CSR
	if csr == nil {
		if cfg.Graph == nil {
			return nil, fmt.Errorf("sim: nil graph")
		}
		if err := cfg.Graph.Validate(); err != nil {
			return nil, fmt.Errorf("sim: invalid graph: %w", err)
		}
		csr = cfg.Graph.CSR()
	} else if err := csr.Validate(); err != nil {
		return nil, fmt.Errorf("sim: invalid graph: %w", err)
	}
	if cfg.Mode == 0 {
		cfg.Mode = OneToAll
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = DefaultMaxRounds
	}
	// LatencyJitter is part of config validation, not of the round loop:
	// anything that is not a finite value in [0,1) is rejected up front
	// (the negated-range form also catches NaN).
	if cfg.LatencyJitter != 0 && !(cfg.LatencyJitter >= 0 && cfg.LatencyJitter < 1) {
		return nil, fmt.Errorf("sim: latency jitter %v outside [0,1)", cfg.LatencyJitter)
	}
	n := csr.N()
	if cfg.Source < 0 || cfg.Source >= n {
		return nil, fmt.Errorf("sim: source %d out of range", cfg.Source)
	}
	for _, s := range cfg.Sources {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("sim: source %d out of range", s)
		}
	}
	if cfg.CrashAt != nil && len(cfg.CrashAt) != n {
		return nil, fmt.Errorf("sim: %d crash entries for %d nodes", len(cfg.CrashAt), n)
	}
	var sched *adversity.Schedule
	if !cfg.Adversity.Empty() {
		var err error
		sched, err = cfg.Adversity.Compile(n)
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		for _, ref := range sched.EdgeRefs() {
			if !csrHasEdge(csr, ref[0], ref[1]) {
				return nil, fmt.Errorf("sim: adversity schedule references edge (%d,%d) not in the graph", ref[0], ref[1])
			}
		}
	}

	e := &engine{cfg: cfg, csr: csr, n: n, adv: sched, snapAt: -1}

	// NodeViews, known-latency tables and RNG states are arena-allocated:
	// a handful of slabs instead of ~4n small objects keeps setup off the
	// allocator's hot path at n=10⁶.
	viewArena := make([]NodeView, n)
	views := make([]*NodeView, n)
	protos := make([]Protocol, n)
	knownArena := make([]int32, csr.HalfEdges())
	e.pcgArena = make([]rand.PCG, n)
	e.rngArena = make([]rand.Rand, n)
	pcgArena, rngArena := e.pcgArena, e.rngArena
	for u := 0; u < n; u++ {
		off := csr.Offset(u)
		deg := csr.Degree(u)
		known := knownArena[off : int(off)+deg : int(off)+deg]
		lats := csr.Latencies(u)
		for i := range known {
			if cfg.KnownLatencies {
				known[i] = lats[i]
			} else {
				known[i] = -1
			}
		}
		pcgArena[u] = *rand.NewPCG(cfg.Seed, uint64(u)*0x9e3779b97f4a7c15+1)
		rngArena[u] = *rand.New(&pcgArena[u])
		viewArena[u] = NodeView{
			id:    u,
			n:     n,
			nbrs:  csr.NeighborIDs(u),
			lats:  lats,
			known: known,
			rng:   &rngArena[u],
		}
		viewArena[u].rum.init(n)
		views[u] = &viewArena[u]
	}
	e.views = views
	e.protos = protos

	watched := cfg.Source
	if len(cfg.Sources) > 0 {
		watched = cfg.Sources[0]
	}
	e.watched = watched
	informedAt := make([]int, n)
	for i := range informedAt {
		informedAt[i] = -1
	}
	e.informedAt = informedAt
	informed := bitset.New(n)
	switch {
	case cfg.InitialRumors != nil:
		if len(cfg.InitialRumors) != n {
			return nil, fmt.Errorf("sim: %d initial rumor sets for %d nodes", len(cfg.InitialRumors), n)
		}
		for u := 0; u < n; u++ {
			nv := views[u]
			nv.seedFrom(cfg.InitialRumors[u])
			if nv.rum.contains(int32(watched)) {
				informedAt[u] = 0
				informed.Add(u)
			}
		}
	case cfg.Mode == OneToAll && len(cfg.Sources) > 0:
		for _, s := range cfg.Sources {
			views[s].gain(s)
		}
		informedAt[watched] = 0
		informed.Add(watched)
	case cfg.Mode == OneToAll:
		views[cfg.Source].gain(cfg.Source)
		informedAt[cfg.Source] = 0
		informed.Add(cfg.Source)
	case cfg.Mode == AllToAll:
		for u := 0; u < n; u++ {
			views[u].gain(u)
		}
		informedAt[watched] = 0
		informed.Add(watched)
	default:
		return nil, fmt.Errorf("sim: unknown rumor mode %d", cfg.Mode)
	}

	// Sleeper/Waiter/MetaProducer/DoneReporter facets are fixed per
	// protocol: resolve the type assertions once instead of per round.
	// A distributed shard worker instantiates protocols only for its
	// owned range; remote entries stay nil and are never invoked (remote
	// protocol effects arrive through barrier frames instead).
	ownLo, ownHi := 0, n
	if shardCount > 1 {
		per := (n + shardCount - 1) / shardCount
		ownLo = shardIdx * per
		if ownLo > n {
			ownLo = n
		}
		ownHi = ownLo + per
		if ownHi > n {
			ownHi = n
		}
	}
	e.sleeper = make([]Sleeper, n)
	e.waiter = make([]Waiter, n)
	e.meta = make([]MetaProducer, n)
	e.amnesiac = make([]AmnesiaReseter, n)
	dones := make([]DoneReporter, n)
	leaders := make([]LeaderReporter, n)
	for u := ownLo; u < ownHi; u++ {
		protos[u] = factory(views[u])
		if protos[u] == nil {
			return nil, fmt.Errorf("sim: factory returned nil protocol for node %d", u)
		}
		if s, ok := protos[u].(Sleeper); ok {
			e.sleeper[u] = s
		}
		if w, ok := protos[u].(Waiter); ok {
			e.waiter[u] = w
		}
		if m, ok := protos[u].(MetaProducer); ok {
			e.meta[u] = m
		}
		if a, ok := protos[u].(AmnesiaReseter); ok {
			e.amnesiac[u] = a
		}
		if d, ok := protos[u].(DoneReporter); ok {
			dones[u] = d
		}
		if l, ok := protos[u].(LeaderReporter); ok {
			leaders[u] = l
		}
	}

	var alive *bitset.Set
	if cfg.CrashAt != nil || (sched != nil && sched.HasDown()) {
		alive = bitset.New(n)
		for u := 0; u < n; u++ {
			alive.Add(u)
		}
	}
	if cfg.CrashAt != nil {
		// Scheduled crashes are calendar events: a stop condition
		// quantifying over alive nodes can flip at a crash round with no
		// other activity.
		e.crashNodes = map[int][]int32{}
		for u, r := range cfg.CrashAt {
			if r >= 0 {
				e.crashNodes[r] = append(e.crashNodes[r], int32(u))
			}
		}
		for r := range e.crashNodes {
			e.crashRounds = append(e.crashRounds, r)
		}
		sort.Ints(e.crashRounds)
	}
	if sched != nil {
		// Leave/rejoin transitions are calendar events too, applied
		// serially at the top of their round.
		e.advEvents = sched.Events()
		if sched.HasLoss() {
			e.advPCG = make([]rand.PCG, n)
			e.advRNG = make([]rand.Rand, n)
			for u := 0; u < n; u++ {
				e.advPCG[u] = *rand.NewPCG(cfg.Seed^0xa5a5f00dd00dfeed, uint64(u)*0x9e3779b97f4a7c15+0x632be59bd9b4e019)
				e.advRNG[u] = *rand.New(&e.advPCG[u])
			}
		}
	}

	e.world = &World{
		Graph: cfg.Graph, CSR: csr, Views: views, Protos: protos,
		crashAt: cfg.CrashAt, adv: sched, watched: watched, informed: informed,
		alive: alive, dones: dones, leaders: leaders,
	}
	e.res.InformedAt = informedAt
	e.res.World = e.world

	e.jitterPCG = *rand.NewPCG(cfg.Seed^0xdeadbeefcafe, 0x5851f42d4c957f2d)
	e.jitterRNG = rand.New(&e.jitterPCG)
	// Delta windows require exchanges on an edge to deliver in initiation
	// order; jitter can reorder them, so it falls back to full prefixes.
	e.useDelta = cfg.LatencyJitter == 0
	if e.useDelta {
		e.sent = make([]int32, csr.HalfEdges())
	}
	if cfg.MaxInPerRound > 0 {
		e.inCount = make([]int, n)
	}
	e.wake = make([]int, n)

	// Calendar ring: sized to cover every achievable delivery delta when
	// that is small, capped otherwise (slow-edge deliveries overflow to
	// the heap, which stays tiny because slow edges are, by the paper's
	// economics, the rare ones).
	maxDelta := csr.MaxLatency()
	if cfg.LatencyJitter > 0 {
		maxDelta = 2*maxDelta + 1
	}
	ringSize := nextPow2(maxDelta + 2)
	if ringSize > 1<<13 {
		ringSize = 1 << 13
	}
	e.ring = make([][]exch, ringSize)
	e.ringMask = ringSize - 1

	if shardCount > 1 {
		// One execution shard spanning exactly the owned range; the
		// goroutine fan-out is pointless on a worker that owns a single
		// contiguous slice of the network.
		e.workers = 1
		e.shards = []shard{{lo: ownLo, hi: ownHi}}
		return e, nil
	}
	e.workers = cfg.Workers
	if e.workers < 1 {
		e.workers = 1
	}
	if e.workers > n {
		e.workers = n
	}
	e.shards = make([]shard, e.workers)
	per := (n + e.workers - 1) / e.workers
	for i := range e.shards {
		lo := i * per
		hi := lo + per
		if hi > n {
			hi = n
		}
		e.shards[i] = shard{lo: lo, hi: hi}
	}

	return e, nil
}

// parallel runs fn over every shard: inline when serial, fanned across
// goroutines otherwise. fn must only touch shard-local buffers and
// per-node state owned by the shard's range.
func (e *engine) parallel(fn func(s *shard)) {
	if e.workers == 1 {
		fn(&e.shards[0])
		return
	}
	var wg sync.WaitGroup
	for i := range e.shards {
		wg.Add(1)
		go func(s *shard) {
			defer wg.Done()
			fn(s)
		}(&e.shards[i])
	}
	wg.Wait()
}

func (e *engine) shardOf(u int32) *shard {
	per := e.shards[0].hi - e.shards[0].lo
	i := int(u) / per
	if i >= len(e.shards) {
		i = len(e.shards) - 1
	}
	return &e.shards[i]
}

// push schedules ex: near deliveries into the calendar ring, far ones
// into the overflow heap.
func (e *engine) push(ex exch, round int) {
	if ex.deliver-round < len(e.ring) {
		slot := ex.deliver & e.ringMask
		b := e.ring[slot]
		if cap(b) == 0 && cap(e.spare) != 0 {
			b, e.spare = e.spare, nil
		}
		e.ring[slot] = append(b, ex)
		e.ringCount++
	} else {
		heap.Push(&e.overflow, ex)
	}
}

func (e *engine) pendingLen() int { return e.ringCount + len(e.overflow) }

// nextDeliver returns the earliest round > round with a pending
// delivery, or -1 when nothing is in flight.
func (e *engine) nextDeliver(round int) int {
	nd := -1
	if e.ringCount > 0 {
		for d := round + 1; d <= round+len(e.ring); d++ {
			if len(e.ring[d&e.ringMask]) > 0 {
				nd = d
				break
			}
		}
	}
	if len(e.overflow) > 0 && (nd < 0 || e.overflow[0].deliver < nd) {
		nd = e.overflow[0].deliver
	}
	return nd
}

// collectDue gathers the exchanges completing at round into e.due in
// (deliver, seq) order, merging overflow-heap items with the calendar
// bucket when slow-edge deliveries fall due.
func (e *engine) collectDue(round int) {
	bucket := e.ring[round&e.ringMask]
	e.ringCount -= len(bucket)
	if len(e.overflow) > 0 && e.overflow[0].deliver <= round {
		// Merge overflow items (popped in seq order) with the bucket
		// (already in seq order) into the scratch buffer.
		e.dueBuf = e.dueBuf[:0]
		var hot []exch
		for len(e.overflow) > 0 && e.overflow[0].deliver <= round {
			hot = append(hot, heap.Pop(&e.overflow).(exch))
		}
		i, j := 0, 0
		for i < len(hot) && j < len(bucket) {
			if hot[i].seq < bucket[j].seq {
				e.dueBuf = append(e.dueBuf, hot[i])
				i++
			} else {
				e.dueBuf = append(e.dueBuf, bucket[j])
				j++
			}
		}
		e.dueBuf = append(e.dueBuf, hot[i:]...)
		e.dueBuf = append(e.dueBuf, bucket[j:]...)
		e.due = e.dueBuf
	} else {
		e.due = bucket
	}
}

// drainDue collects the exchanges completing at round into e.due in
// (deliver, seq) order, applies crash drops and payload accounting, and
// routes per-endpoint delivery records to the owning shards.
func (e *engine) drainDue(round int) {
	e.collectDue(round)
	for i := range e.due {
		ex := &e.due[i]
		// A fail-stop endpoint neither responds nor forwards: the whole
		// exchange is lost if either side is down at completion time.
		// Adversity losses (ex.lost) were decided at initiation and are
		// executed here the same way: no payload, no delivery records.
		if ex.lost || e.crashed(int(ex.u), ex.deliver) || e.crashed(int(ex.v), ex.deliver) {
			e.res.Dropped++
			ex.uNews, ex.vNews = nil, nil
			continue
		}
		e.res.Delivered++
		// The journal prefix length at initiation is the full snapshot
		// size: payload accounting is identical to the cloning engine.
		e.res.RumorPayload += int64(ex.uEnd) + int64(ex.vEnd)
		ex.uNews = e.views[ex.v].journal[ex.vStart:ex.vEnd]
		ex.vNews = e.views[ex.u].journal[ex.uStart:ex.uEnd]
		su := e.shardOf(ex.u)
		su.recs = append(su.recs, uint32(i)<<1)
		sv := e.shardOf(ex.v)
		sv.recs = append(sv.recs, uint32(i)<<1|1)
	}
}

// deliverShard applies this shard's due deliveries: rumor gains, latency
// discovery, informed bookkeeping and OnDeliver callbacks — all against
// node state this shard owns. The news windows were captured at the
// serial drain, so cross-shard journal reads see immutable data.
func (e *engine) deliverShard(s *shard, round int) {
	watched := int32(e.watched)
	for _, enc := range s.recs {
		ex := &e.due[enc>>1]
		var self, peer, selfIdx int32
		var news []int32
		var meta any
		initiator := enc&1 == 0
		if initiator {
			self, peer, selfIdx = ex.u, ex.v, ex.uIdx
			news, meta = ex.uNews, ex.vMeta
		} else {
			self, peer, selfIdx = ex.v, ex.u, ex.vIdx
			news, meta = ex.vNews, ex.uMeta
		}
		nv := e.views[self]
		gained := 0
		for _, r := range news {
			if nv.gain(int(r)) {
				gained++
			}
		}
		nv.known[selfIdx] = ex.latency
		if e.informedAt[self] < 0 && nv.rum.contains(watched) {
			e.informedAt[self] = ex.deliver
			s.newlyInformed = append(s.newlyInformed, self)
		}
		if e.wake[self] > round {
			e.wake[self] = round
		}
		e.protos[self].OnDeliver(Delivery{
			Round:         ex.deliver,
			InitRound:     ex.initRound,
			Peer:          int(peer),
			NeighborIndex: int(selfIdx),
			Latency:       int(ex.latency),
			Initiator:     initiator,
			News:          news,
			NewRumors:     gained,
			PeerMeta:      meta,
		})
	}
	s.recs = s.recs[:0]
}

// finishDeliveries folds shard-local informed events into the global
// tally and releases this round's delivery storage.
func (e *engine) finishDeliveries(round int) {
	for i := range e.shards {
		s := &e.shards[i]
		for _, u := range s.newlyInformed {
			e.world.informed.Add(int(u))
		}
		s.newlyInformed = s.newlyInformed[:0]
	}
	for i := range e.due {
		e.due[i].uMeta, e.due[i].vMeta = nil, nil
		e.due[i].uNews, e.due[i].vNews = nil, nil
	}
	slot := round & e.ringMask
	if b := e.ring[slot][:0]; cap(b) > cap(e.spare) {
		e.ring[slot], e.spare = nil, b
	} else {
		e.ring[slot] = b
	}
	e.due = nil
}

// activateShard runs the activation scan for this shard's node range:
// wake filtering, Activate calls (each node draws only from its own RNG
// stream), NextWake scheduling, and intent buffering in node order.
func (e *engine) activateShard(s *shard, round int) {
	s.minWake, s.sleeperWake = never, never
	s.idle, s.called = true, false
	for u := s.lo; u < s.hi; u++ {
		if e.down(u, round) {
			continue
		}
		if e.wake[u] > round {
			if e.wake[u] < s.minWake {
				s.minWake = e.wake[u]
			}
			if e.sleeper[u] != nil && e.wake[u] < s.sleeperWake {
				s.sleeperWake = e.wake[u]
			}
			continue
		}
		s.called = true
		idx, ok := e.protos[u].Activate(round)
		if ok {
			if idx < 0 || idx >= len(e.views[u].nbrs) {
				if s.err == nil {
					s.err = fmt.Errorf("sim: node %d activated invalid neighbor index %d", u, idx)
				}
			} else {
				s.idle = false
				s.intents = append(s.intents, actIntent{u: int32(u), idx: int32(idx)})
			}
		}
		next := round + 1
		if sl := e.sleeper[u]; sl != nil {
			if w := sl.NextWake(round); w > next {
				next = w
			}
		}
		e.wake[u] = next
		if next < s.minWake {
			s.minWake = next
		}
		if e.sleeper[u] != nil && next < s.sleeperWake {
			s.sleeperWake = next
		}
	}
}

// mergeIntents turns buffered activations into scheduled exchanges, in
// node order across shards — the same order the serial engine uses, so
// in-degree caps, jitter draws, sequence numbers and meta sampling are
// identical for every worker count.
func (e *engine) mergeIntents(round int) {
	for si := range e.shards {
		s := &e.shards[si]
		for _, it := range s.intents {
			u, idx := int(it.u), int(it.idx)
			nv := e.views[u]
			v := int(nv.nbrs[idx])
			if e.inCount != nil {
				if e.inCount[v] >= e.cfg.MaxInPerRound {
					// Bounded in-degree: the connection is refused; the
					// attempt still costs a message.
					e.res.Messages++
					e.res.Dropped++
					continue
				}
				e.inCount[v]++
			}
			lat := e.actualLatency(int(nv.lats[idx]))
			vIdx := e.csr.PeerIndex(u, idx)
			ex := exch{
				deliver:   round + lat,
				initRound: round,
				seq:       e.seq,
				u:         it.u, v: int32(v),
				uIdx: it.idx, vIdx: int32(vIdx),
				latency: int32(lat),
				uEnd:    int32(len(nv.journal)),
				vEnd:    int32(len(e.views[v].journal)),
			}
			if e.adv != nil {
				// Fate is fixed here, serially in node order: schedule
				// drops (a churned-out endpoint or flapped link anywhere
				// in the transit window) are static, and loss draws come
				// from the initiator's dedicated PCG stream — only for
				// exchanges the schedule did not already kill.
				ex.lost = e.adv.DownDuring(u, round, ex.deliver) ||
					e.adv.DownDuring(v, round, ex.deliver) ||
					e.adv.LinkDownDuring(u, v, round, ex.deliver)
				if !ex.lost && e.advRNG != nil {
					if p := e.adv.LossProb(u, v); p > 0 && e.advRNG[u].Float64() < p {
						ex.lost = true
					}
				}
			}
			if e.sent != nil && !ex.lost {
				// High-water marks advance only on exchanges that will
				// deliver, so delta windows chain exactly over the
				// delivered sequence of each edge: an adversity drop in
				// the middle of an edge's history cannot eat rumors.
				hu := e.csr.HalfIndex(u, idx)
				hv := e.csr.HalfIndex(v, vIdx)
				ex.uStart = e.sent[hu]
				ex.vStart = e.sent[hv]
				e.sent[hu] = ex.uEnd
				e.sent[hv] = ex.vEnd
			}
			e.seq++
			if mp := e.meta[u]; mp != nil {
				ex.uMeta = mp.Meta()
			}
			if mp := e.meta[v]; mp != nil {
				ex.vMeta = mp.Meta()
			}
			e.push(ex, round)
			e.res.Exchanges++
			e.res.Messages += 2
		}
		s.intents = s.intents[:0]
	}
}

// amnesia resets node u to its initial rumor assignment: the journal and
// membership set are cleared (safe: any exchange whose windows reference
// the old journal was in flight across the down interval and is lost),
// the node's delta high-water marks are rewound so peers receive its
// rebuilt state from scratch, the informed tally is corrected, and the
// protocol is told to restart (AmnesiaReseter). In a multi-phase
// pipeline "initial assignment" means the state the node entered the
// current phase with (Config.InitialRumors) — the restart cannot reach
// behind the phase boundary. Runs serially inside the event loop.
func (e *engine) amnesia(u int, round int) {
	nv := e.views[u]
	nv.rum = rumorSet{}
	nv.rum.init(e.n)
	nv.journal = nv.journal[:0]
	if e.sent != nil {
		off := int(e.csr.Offset(u))
		for i := 0; i < e.csr.Degree(u); i++ {
			// u's own marks track its truncated journal; the peers'
			// marks toward u promise "u already has this prefix", which
			// amnesia just broke — both directions rewind to zero.
			e.sent[off+i] = 0
			v := int(nv.nbrs[i])
			e.sent[e.csr.HalfIndex(v, e.csr.PeerIndex(u, i))] = 0
		}
	}
	switch {
	case e.cfg.InitialRumors != nil:
		nv.seedFrom(e.cfg.InitialRumors[u])
	case e.cfg.Mode == OneToAll && len(e.cfg.Sources) > 0:
		for _, s := range e.cfg.Sources {
			if s == u {
				nv.gain(u)
				break
			}
		}
	case e.cfg.Mode == OneToAll:
		if u == e.cfg.Source {
			nv.gain(u)
		}
	default: // AllToAll re-generates the node's own rumor
		nv.gain(u)
	}
	if nv.rum.contains(int32(e.watched)) {
		if e.informedAt[u] < 0 {
			e.informedAt[u] = round
		}
		e.world.informed.Add(u)
	} else {
		e.informedAt[u] = -1
		e.world.informed.Remove(u)
	}
	if a := e.amnesiac[u]; a != nil {
		a.OnAmnesia()
	}
}

func (e *engine) run(stop StopFunc) (Result, error) {
	for round := e.startRound; round <= e.cfg.MaxRounds; {
		// Capture barrier: the top of an iteration is the one point where
		// no intermediate state exists — due is nil, shard buffers are
		// empty, this round's crash/adversity events are unprocessed — so
		// freezing here and re-entering at the same round replays the
		// iteration exactly. Round jumps may overshoot snapAt; the round
		// actually captured is recorded, and it is by construction a round
		// the cold run would also have processed.
		if e.snapAt >= 0 && round >= e.snapAt {
			e.snapped = true
			e.snapRound = round
			return e.res, nil
		}
		e.world.Round = round
		for e.nextCrash < len(e.crashRounds) && e.crashRounds[e.nextCrash] <= round {
			for _, u := range e.crashNodes[e.crashRounds[e.nextCrash]] {
				e.world.alive.Remove(int(u))
			}
			e.nextCrash++
		}
		for e.nextAdvEvent < len(e.advEvents) && e.advEvents[e.nextAdvEvent].Round <= round {
			ev := &e.advEvents[e.nextAdvEvent]
			for _, u := range ev.Leave {
				e.world.alive.Remove(u)
			}
			for _, rj := range ev.Rejoin {
				e.world.alive.Add(rj.Node)
				if rj.Amnesia {
					e.amnesia(rj.Node, round)
				}
				// A rejoin is a wake event: the node may act this round.
				if e.wake[rj.Node] > round {
					e.wake[rj.Node] = round
				}
			}
			e.nextAdvEvent++
		}
		e.drainDue(round)
		e.parallel(func(s *shard) { e.deliverShard(s, round) })
		e.finishDeliveries(round)
		if stop(e.world) {
			e.res.Rounds = round
			e.res.Completed = true
			return e.res, nil
		}
		if e.inCount != nil {
			for i := range e.inCount {
				e.inCount[i] = 0
			}
		}
		e.parallel(func(s *shard) { e.activateShard(s, round) })
		for i := range e.shards {
			if err := e.shards[i].err; err != nil {
				return e.res, err
			}
		}
		e.mergeIntents(round)
		idle, called := true, false
		minWake, sleeperWake := never, never
		for i := range e.shards {
			s := &e.shards[i]
			idle = idle && s.idle
			called = called || s.called
			if s.minWake < minWake {
				minWake = s.minWake
			}
			// sleeperWake tracks the earliest round an alive Sleeper has
			// explicitly scheduled (timers and the like): unlike the
			// default wake-next-round of plain protocols, a declared
			// future wake is pending activity and must suppress the
			// idle-termination check.
			if s.sleeperWake < sleeperWake {
				sleeperWake = s.sleeperWake
			}
		}
		if idle && e.pendingLen() == 0 && sleeperWake == never && e.nextAdvEvent >= len(e.advEvents) {
			// Nothing in flight, nobody acted this round, and no
			// leave/rejoin transition is still to come (a rejoin re-wakes
			// its node; a leave can flip an alive-quantified stop).
			// Unless a protocol is waiting on an internal timer (Waiter),
			// nobody will ever act again and the run is over.
			waiting := false
			for u := 0; u < e.n; u++ {
				if w := e.waiter[u]; w != nil && !e.down(u, round) && w.Waiting() {
					waiting = true
					break
				}
			}
			if !waiting {
				e.res.Rounds = round
				e.res.Completed = stop(e.world)
				return e.res, nil
			}
		}
		// Jump to the next round where anything can change: a delivery,
		// an eligible activation, a scheduled crash — or the immediately
		// following round when protocols acted this round, since a stop
		// condition over protocol state may flip then.
		next := minWake
		if nd := e.nextDeliver(round); nd >= 0 && nd < next {
			next = nd
		}
		if e.nextCrash < len(e.crashRounds) && e.crashRounds[e.nextCrash] < next {
			next = e.crashRounds[e.nextCrash]
		}
		if e.nextAdvEvent < len(e.advEvents) && e.advEvents[e.nextAdvEvent].Round < next {
			next = e.advEvents[e.nextAdvEvent].Round
		}
		if called && round+1 < next {
			next = round + 1
		}
		if next <= round {
			next = round + 1
		}
		round = next
	}
	e.res.Rounds = e.cfg.MaxRounds
	e.res.Completed = false
	return e.res, nil
}
