package sim

import (
	"container/heap"
	"fmt"
	"math/rand/v2"
	"sort"

	"gossip/internal/bitset"
	"gossip/internal/graph"
)

// DefaultMaxRounds is the safety horizon when Config.MaxRounds is zero.
const DefaultMaxRounds = 1 << 20

// Factory builds the protocol instance for one node. It runs once per
// node before round 0.
type Factory func(nv *NodeView) Protocol

// StopFunc decides when the simulation is finished. It runs after the
// deliveries of each round have been applied.
type StopFunc func(w *World) bool

// World is the global state a StopFunc may inspect.
type World struct {
	Graph  *graph.Graph
	Views  []*NodeView
	Protos []Protocol
	Round  int
	// crashAt mirrors Config.CrashAt (nil when no failures configured).
	crashAt []int
}

// Alive reports whether node u has not crashed as of the current round.
func (w *World) Alive(u graph.NodeID) bool {
	return w.crashAt == nil || w.crashAt[u] < 0 || w.Round < w.crashAt[u]
}

// exchange is an in-flight bidirectional rumor swap. Instead of cloning
// the endpoints' rumor sets it records a window into each endpoint's gain
// journal: [start,end) is the delta this exchange carries, end is also
// the size of the endpoint's full set at initiation time.
type exchange struct {
	deliver      int
	initRound    int
	seq          int64
	u, v         graph.NodeID // u initiated
	uIdx         int          // adjacency index of v at u
	vIdx         int          // adjacency index of u at v
	latency      int
	uStart, uEnd int32 // window into u's journal
	vStart, vEnd int32 // window into v's journal
	uMeta, vMeta any
}

// exchangeHeap orders exchanges by (deliver, seq) so delivery order is
// deterministic.
type exchangeHeap []*exchange

func (h exchangeHeap) Len() int { return len(h) }
func (h exchangeHeap) Less(i, j int) bool {
	if h[i].deliver != h[j].deliver {
		return h[i].deliver < h[j].deliver
	}
	return h[i].seq < h[j].seq
}
func (h exchangeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *exchangeHeap) Push(x interface{}) { *h = append(*h, x.(*exchange)) }
func (h *exchangeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// Run executes the simulation until stop returns true or the horizon is
// reached.
func Run(cfg Config, factory Factory, stop StopFunc) (Result, error) {
	if cfg.Graph == nil {
		return Result{}, fmt.Errorf("sim: nil graph")
	}
	if err := cfg.Graph.Validate(); err != nil {
		return Result{}, fmt.Errorf("sim: invalid graph: %w", err)
	}
	if cfg.Mode == 0 {
		cfg.Mode = OneToAll
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = DefaultMaxRounds
	}
	// LatencyJitter is part of config validation, not of the round loop:
	// anything that is not a finite value in [0,1) is rejected up front
	// (the negated-range form also catches NaN).
	if cfg.LatencyJitter != 0 && !(cfg.LatencyJitter >= 0 && cfg.LatencyJitter < 1) {
		return Result{}, fmt.Errorf("sim: latency jitter %v outside [0,1)", cfg.LatencyJitter)
	}
	g := cfg.Graph
	n := g.N()
	if cfg.Source < 0 || cfg.Source >= n {
		return Result{}, fmt.Errorf("sim: source %d out of range", cfg.Source)
	}
	for _, s := range cfg.Sources {
		if s < 0 || s >= n {
			return Result{}, fmt.Errorf("sim: source %d out of range", s)
		}
	}
	if cfg.CrashAt != nil && len(cfg.CrashAt) != n {
		return Result{}, fmt.Errorf("sim: %d crash entries for %d nodes", len(cfg.CrashAt), n)
	}

	// NodeViews and the known-latency tables are arena-allocated: two
	// slabs instead of 2n small objects keeps setup off the allocator's
	// hot path at n=10⁴⁺.
	viewArena := make([]NodeView, n)
	views := make([]*NodeView, n)
	protos := make([]Protocol, n)
	totalDeg := 0
	for u := 0; u < n; u++ {
		totalDeg += g.Degree(u)
	}
	knownArena := make([]int, totalDeg)
	knownOff := 0
	for u := 0; u < n; u++ {
		nbrs := g.Neighbors(u)
		known := knownArena[knownOff : knownOff+len(nbrs) : knownOff+len(nbrs)]
		knownOff += len(nbrs)
		for i := range known {
			if cfg.KnownLatencies {
				known[i] = nbrs[i].Latency
			} else {
				known[i] = -1
			}
		}
		viewArena[u] = NodeView{
			id:    u,
			n:     n,
			g:     g,
			nbrs:  nbrs,
			known: known,
			rum:   bitset.New(n),
			rng:   rand.New(rand.NewPCG(cfg.Seed, uint64(u)*0x9e3779b97f4a7c15+1)),
		}
		views[u] = &viewArena[u]
	}
	watched := cfg.Source
	if len(cfg.Sources) > 0 {
		watched = cfg.Sources[0]
	}
	informedAt := make([]int, n)
	for i := range informedAt {
		informedAt[i] = -1
	}
	switch {
	case cfg.InitialRumors != nil:
		if len(cfg.InitialRumors) != n {
			return Result{}, fmt.Errorf("sim: %d initial rumor sets for %d nodes", len(cfg.InitialRumors), n)
		}
		for u := 0; u < n; u++ {
			nv := views[u]
			cfg.InitialRumors[u].ForEach(func(r int) { nv.gain(r) })
			if nv.rum.Contains(watched) {
				informedAt[u] = 0
			}
		}
	case cfg.Mode == OneToAll && len(cfg.Sources) > 0:
		for _, s := range cfg.Sources {
			views[s].gain(s)
		}
		informedAt[watched] = 0
	case cfg.Mode == OneToAll:
		views[cfg.Source].gain(cfg.Source)
		informedAt[cfg.Source] = 0
	case cfg.Mode == AllToAll:
		for u := 0; u < n; u++ {
			views[u].gain(u)
		}
		informedAt[watched] = 0
	default:
		return Result{}, fmt.Errorf("sim: unknown rumor mode %d", cfg.Mode)
	}
	// Sleeper/Waiter/MetaProducer facets are fixed per protocol: resolve
	// the type assertions once instead of per round/exchange.
	sleepers := make([]Sleeper, n)
	waiters := make([]Waiter, n)
	metas := make([]MetaProducer, n)
	for u := 0; u < n; u++ {
		protos[u] = factory(views[u])
		if protos[u] == nil {
			return Result{}, fmt.Errorf("sim: factory returned nil protocol for node %d", u)
		}
		if s, ok := protos[u].(Sleeper); ok {
			sleepers[u] = s
		}
		if w, ok := protos[u].(Waiter); ok {
			waiters[u] = w
		}
		if m, ok := protos[u].(MetaProducer); ok {
			metas[u] = m
		}
	}

	world := &World{Graph: g, Views: views, Protos: protos, crashAt: cfg.CrashAt}
	crashed := func(u graph.NodeID, round int) bool {
		return cfg.CrashAt != nil && cfg.CrashAt[u] >= 0 && round >= cfg.CrashAt[u]
	}
	// Scheduled crashes are calendar events: a stop condition quantifying
	// over alive nodes can flip at a crash round with no other activity.
	var crashRounds []int
	if cfg.CrashAt != nil {
		seen := map[int]bool{}
		for _, r := range cfg.CrashAt {
			if r >= 0 && !seen[r] {
				seen[r] = true
				crashRounds = append(crashRounds, r)
			}
		}
		sort.Ints(crashRounds)
	}
	nextCrash := 0

	jitterRNG := rand.New(rand.NewPCG(cfg.Seed^0xdeadbeefcafe, 0x5851f42d4c957f2d))
	actualLatency := func(nominal int) int {
		if cfg.LatencyJitter == 0 {
			return nominal
		}
		f := 1 + cfg.LatencyJitter*(2*jitterRNG.Float64()-1)
		l := int(float64(nominal)*f + 0.5)
		if l < 1 {
			l = 1
		}
		return l
	}
	// Delta windows require exchanges on an edge to deliver in initiation
	// order; jitter can reorder them, so it falls back to full prefixes.
	useDelta := cfg.LatencyJitter == 0
	var sent [][]int32 // per node, per adjacency index: journal high-water mark
	if useDelta {
		sent = make([][]int32, n)
		for u := 0; u < n; u++ {
			sent[u] = make([]int32, len(views[u].nbrs))
		}
	}

	var (
		pending exchangeHeap
		free    []*exchange // exchange struct free list
		seq     int64
		res     Result
	)
	res.InformedAt = informedAt
	res.World = world
	heap.Init(&pending)
	newExchange := func() *exchange {
		if k := len(free); k > 0 {
			ex := free[k-1]
			free = free[:k-1]
			return ex
		}
		return &exchange{}
	}
	recycle := func(ex *exchange) {
		*ex = exchange{}
		free = append(free, ex)
	}

	// wake[u] is the next round u's protocol is eligible for Activate;
	// WakeOnDelivery parks the node. Deliveries re-wake below.
	wake := make([]int, n)

	deliverOne := func(ex *exchange, round int) {
		// A fail-stop endpoint neither responds nor forwards: the whole
		// exchange is lost if either side is down at completion time.
		if crashed(ex.u, ex.deliver) || crashed(ex.v, ex.deliver) {
			res.Dropped++
			return
		}
		// The journal prefix length at initiation is the full snapshot
		// size: payload accounting is identical to the cloning engine.
		res.RumorPayload += int64(ex.uEnd) + int64(ex.vEnd)
		for _, side := range [2]struct {
			self, peer       graph.NodeID
			selfIdx, peerIdx int
			news             []int32
			peerSize         int32
			meta             any
			initiator        bool
		}{
			{ex.u, ex.v, ex.uIdx, ex.vIdx, views[ex.v].journal[ex.vStart:ex.vEnd], ex.vEnd, ex.vMeta, true},
			{ex.v, ex.u, ex.vIdx, ex.uIdx, views[ex.u].journal[ex.uStart:ex.uEnd], ex.uEnd, ex.uMeta, false},
		} {
			nv := views[side.self]
			gained := 0
			for _, r := range side.news {
				if nv.gain(int(r)) {
					gained++
				}
			}
			nv.known[side.selfIdx] = ex.latency
			if informedAt[side.self] < 0 && nv.rum.Contains(watched) {
				informedAt[side.self] = ex.deliver
			}
			if wake[side.self] > round {
				wake[side.self] = round
			}
			protos[side.self].OnDeliver(Delivery{
				Round:         ex.deliver,
				InitRound:     ex.initRound,
				Peer:          side.peer,
				NeighborIndex: side.selfIdx,
				Latency:       ex.latency,
				Initiator:     side.initiator,
				News:          side.news,
				NewRumors:     gained,
				PeerMeta:      side.meta,
			})
		}
	}

	var inCount []int
	if cfg.MaxInPerRound > 0 {
		inCount = make([]int, n)
	}
	const never = WakeOnDelivery

	for round := 0; round <= cfg.MaxRounds; {
		world.Round = round
		for nextCrash < len(crashRounds) && crashRounds[nextCrash] <= round {
			nextCrash++
		}
		for pending.Len() > 0 && pending[0].deliver <= round {
			ex := heap.Pop(&pending).(*exchange)
			deliverOne(ex, round)
			recycle(ex)
		}
		if stop(world) {
			res.Rounds = round
			res.Completed = true
			return res, nil
		}
		if inCount != nil {
			for i := range inCount {
				inCount[i] = 0
			}
		}
		idle := true
		called := false
		minWake := never
		// sleeperWake tracks the earliest round an alive Sleeper has
		// explicitly scheduled (timers and the like): unlike the default
		// wake-next-round of plain protocols, a declared future wake is
		// pending activity and must suppress the idle-termination check.
		sleeperWake := never
		for u := 0; u < n; u++ {
			if crashed(u, round) {
				continue
			}
			if wake[u] > round {
				if wake[u] < minWake {
					minWake = wake[u]
				}
				if sleepers[u] != nil && wake[u] < sleeperWake {
					sleeperWake = wake[u]
				}
				continue
			}
			called = true
			idx, ok := protos[u].Activate(round)
			if ok {
				nv := views[u]
				if idx < 0 || idx >= len(nv.nbrs) {
					return res, fmt.Errorf("sim: node %d activated invalid neighbor index %d", u, idx)
				}
				idle = false
				v := nv.nbrs[idx].ID
				refused := false
				if inCount != nil {
					if inCount[v] >= cfg.MaxInPerRound {
						// Bounded in-degree: the connection is refused;
						// the attempt still costs a message.
						res.Messages++
						res.Dropped++
						refused = true
					} else {
						inCount[v]++
					}
				}
				if !refused {
					lat := actualLatency(nv.nbrs[idx].Latency)
					vIdx := views[v].NeighborIndex(u)
					ex := newExchange()
					ex.deliver = round + lat
					ex.initRound = round
					ex.seq = seq
					ex.u, ex.v = u, v
					ex.uIdx, ex.vIdx = idx, vIdx
					ex.latency = lat
					ex.uEnd = int32(len(nv.journal))
					ex.vEnd = int32(len(views[v].journal))
					if useDelta {
						ex.uStart = sent[u][idx]
						ex.vStart = sent[v][vIdx]
						sent[u][idx] = ex.uEnd
						sent[v][vIdx] = ex.vEnd
					}
					seq++
					if mp := metas[u]; mp != nil {
						ex.uMeta = mp.Meta()
					}
					if mp := metas[v]; mp != nil {
						ex.vMeta = mp.Meta()
					}
					heap.Push(&pending, ex)
					res.Exchanges++
					res.Messages += 2
				}
			}
			next := round + 1
			if s := sleepers[u]; s != nil {
				if w := s.NextWake(round); w > next {
					next = w
				}
			}
			wake[u] = next
			if next < minWake {
				minWake = next
			}
			if sleepers[u] != nil && next < sleeperWake {
				sleeperWake = next
			}
		}
		if idle && pending.Len() == 0 && sleeperWake == never {
			// Nothing in flight and nobody acted this round. Unless a
			// protocol is waiting on an internal timer (Waiter), nobody
			// will ever act again and the run is over.
			waiting := false
			for u := 0; u < n; u++ {
				if w := waiters[u]; w != nil && !crashed(u, round) && w.Waiting() {
					waiting = true
					break
				}
			}
			if !waiting {
				res.Rounds = round
				res.Completed = stop(world)
				return res, nil
			}
		}
		// Jump to the next round where anything can change: a delivery,
		// an eligible activation, a scheduled crash — or the immediately
		// following round when protocols acted this round, since a stop
		// condition over protocol state may flip then.
		next := minWake
		if pending.Len() > 0 && pending[0].deliver < next {
			next = pending[0].deliver
		}
		if nextCrash < len(crashRounds) && crashRounds[nextCrash] < next {
			next = crashRounds[nextCrash]
		}
		if called && round+1 < next {
			next = round + 1
		}
		if next <= round {
			next = round + 1
		}
		round = next
	}
	res.Rounds = cfg.MaxRounds
	res.Completed = false
	return res, nil
}
