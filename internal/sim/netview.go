package sim

import (
	"math/rand/v2"

	"gossip/internal/graph"
)

// This file is the real-transport escape hatch: a NodeView that lives
// outside the calendar engine. The engine normally owns every NodeView
// and drives protocols through the event loop; a real-network runner
// (internal/gossip RunNet over an internal/transport mesh) instead hosts
// one protocol instance per node on real goroutines and real clocks, but
// wants the *same protocol code* — the same Activate/OnDeliver structs,
// the same per-node RNG derivation, the same rumor bookkeeping — so that
// simulated and real executions differ only in transport.

// NewNetView builds a standalone NodeView for node id of an n-node CSR
// topology, mirroring the engine's construction exactly: the same
// seed-derived per-node PCG stream (so a protocol's random choices come
// from the same distribution family as a simulated run with the same
// seed), the same known-latency initialization, the same hybrid rumor
// set. The view is not registered with any engine; the caller owns rumor
// mutation through Gain.
func NewNetView(csr *graph.CSR, id graph.NodeID, seed uint64, knownLatencies bool) *NodeView {
	lats := csr.Latencies(id)
	known := make([]int32, len(lats))
	for i := range known {
		if knownLatencies {
			known[i] = lats[i]
		} else {
			known[i] = -1
		}
	}
	nv := &NodeView{
		id:    id,
		n:     csr.N(),
		nbrs:  csr.NeighborIDs(id),
		lats:  lats,
		known: known,
		rng:   rand.New(rand.NewPCG(seed, uint64(id)*0x9e3779b97f4a7c15+1)),
	}
	nv.rum.init(csr.N())
	return nv
}

// Gain adds rumor r to the node's set and journal, reporting whether it
// was new — the exported mutation path for real-transport runners (the
// engine uses the unexported equivalent so the journal invariant has a
// single owner either way).
func (nv *NodeView) Gain(r int) bool { return nv.gain(r) }

// Journal returns the node's rumors in gain order. It is a read-only
// view into node-owned storage: real-transport runners snapshot it into
// outgoing messages; callers must not mutate or retain it across Gain
// calls.
func (nv *NodeView) Journal() []int32 { return nv.journal }

// DiscoverLatency records the latency of the edge to the i-th neighbor,
// the real-transport analogue of the engine's on-delivery latency
// discovery.
func (nv *NodeView) DiscoverLatency(i int, latency int) { nv.known[i] = int32(latency) }
