//go:build linux

package sim

import "syscall"

// threadCPUNS returns the CPU time (user + system) consumed by the
// calling OS thread, in nanoseconds, or -1 when the kernel refuses the
// query. The caller must hold runtime.LockOSThread for the duration it
// wants attributed, otherwise the goroutine migrates and deltas mix
// threads.
func threadCPUNS() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_THREAD, &ru); err != nil {
		return -1
	}
	return ru.Utime.Nano() + ru.Stime.Nano()
}
