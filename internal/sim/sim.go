// Package sim is a deterministic event-driven simulator for the paper's
// network model (Section 1, "Model"): synchronous rounds, one exchange
// initiation per node per round, bidirectional rumor exchange over an edge
// of latency ℓ completing ℓ rounds later, non-blocking initiations.
//
// Exchange semantics. When node u activates edge (u,v) at round t, the
// simulator snapshots both endpoints' rumor sets at t and merges each
// snapshot into the opposite endpoint at round t+ℓ. Information therefore
// crosses an edge in exactly ℓ rounds in either direction and a round trip
// costs ℓ in total, matching the paper's collapsed round-trip model
// (footnote 3: equivalent within constant factors to send-then-respond).
//
// The simulator owns the rumor sets (every protocol in the paper exchanges
// "all rumors known", so the transport is protocol-independent); protocol
// implementations control only the activation schedule and may attach
// small metadata to exchanges.
//
// # Execution model
//
// The engine is event-driven. Rounds are not enumerated one by one;
// instead an activation calendar tracks, per node, the next round at
// which the node's protocol may act, and a delivery heap tracks in-flight
// exchanges. The engine processes only rounds where something can happen
// — a delivery, an eligible activation, or a scheduled crash — and jumps
// over idle spans, so a run costs O(events), not O(maxRounds·n). By
// default a protocol is woken every round (exactly the classical loop:
// push-pull behaves identically); protocols opt into sleeping by
// implementing Sleeper. A delivery always re-wakes its endpoints.
//
// # Rumor transport
//
// Snapshots are never materialized. Each node keeps a journal of the
// rumors it gained, in gain order; "u's rumor set at round t" is exactly
// a prefix of u's journal, so an exchange records two (start,end) journal
// windows instead of cloning two O(n)-bit sets. Per-edge high-water marks
// shrink the windows to deltas (only rumors gained since the previous
// exchange on that edge); dropped exchanges cannot violate this because,
// with deterministic latencies, drops on an edge always form a suffix of
// its exchange sequence. Under LatencyJitter (where completions can
// reorder) the engine conservatively falls back to full-prefix windows.
// Delivered payload accounting is unchanged: the journal prefix length at
// initiation time is the size of the full-state snapshot the model sends.
package sim

import (
	"fmt"
	"math/rand/v2"

	"gossip/internal/adversity"
	"gossip/internal/bitset"
	"gossip/internal/graph"
)

// Config describes one simulation run.
type Config struct {
	// Graph is the network. Required unless CSR is set.
	Graph *graph.Graph
	// CSR supplies the topology directly in compressed sparse row form —
	// the million-node path, where an adjacency-map Graph is never
	// materialized. When both are set CSR is used (callers must keep them
	// consistent); when only Graph is set the engine converts it once,
	// preserving adjacency order so results are identical either way.
	CSR *graph.CSR
	// Workers shards intra-round execution across this many goroutines:
	// nodes are partitioned into contiguous worker-owned shards,
	// activations and deliveries run shard-parallel, and shard-buffered
	// exchange intents are merged at the round barrier in node order.
	// Because every node draws from its own seed-derived RNG stream and
	// cross-shard effects are applied at barriers, results are
	// bit-identical for every worker count. 0 or 1 runs serial.
	Workers int
	// Seed drives all per-node randomness.
	Seed uint64
	// KnownLatencies exposes adjacent edge latencies to nodes from round
	// zero (the Section 4 model). Otherwise latencies are discovered
	// when an exchange on the edge completes.
	KnownLatencies bool
	// MaxRounds is the safety horizon; the run fails (Completed=false)
	// when the stop condition has not been met by then. Default 1<<20.
	MaxRounds int
	// Mode selects the initial rumor assignment.
	Mode RumorMode
	// Source is the rumor source for OneToAll mode.
	Source graph.NodeID
	// InitialRumors, when non-nil, seeds each node's rumor set instead
	// of Mode's default assignment (the sets are cloned). This is how
	// multi-phase algorithms carry state across sequential sim.Run
	// phases.
	InitialRumors []*bitset.Set
	// Sources, when non-empty in OneToAll mode, seeds several sources
	// (multi-source dissemination); Source is ignored and completion is
	// judged against all of them.
	Sources []graph.NodeID
	// CrashAt[u], when non-nil, is the round at which node u fails
	// (negative = never). A crashed node stops initiating, and any
	// exchange involving it that would complete at or after the crash
	// round is lost entirely — matching a fail-stop node that neither
	// responds nor forwards. Stop conditions should quantify over alive
	// nodes (see StopAllAliveInformed).
	CrashAt []int
	// Adversity attaches a declarative fault schedule: per-edge message
	// loss, node churn (leave/rejoin with retention or amnesia), link
	// flaps and crash batches — see package adversity. The spec is
	// compiled at Run and its leave/rejoin transitions become calendar
	// events interleaved with deliveries. Loss draws come from per-node
	// PCG streams (separate from the protocol streams), and loss/drop
	// outcomes are fixed at initiation time in node order, so runs under
	// any fault schedule stay bit-identical for every worker count.
	// Whether an in-flight exchange survives is decided from the
	// schedule alone: it is lost iff an endpoint is down, or the link is
	// flapped down, at any round of its transit window — a node that
	// leaves mid-flight neither responds nor forwards. Nil means benign.
	Adversity *adversity.Spec
	// MaxInPerRound, when positive, caps how many incoming exchange
	// initiations a node accepts per round (the bounded in-degree model
	// of Daum et al. discussed in the paper's conclusion). Initiations
	// beyond the cap are dropped: the messages are counted but nothing
	// is delivered.
	MaxInPerRound int
	// LatencyJitter in [0,1) perturbs each exchange's actual completion
	// time to round(ℓ·(1+U[-j,+j])), minimum 1 — the fluctuating link
	// quality of the paper's footnote 2. Nominal latencies are what
	// nodes know in KnownLatencies mode; discovery observes the
	// perturbed value of the measuring exchange, so planned schedules
	// can be stale.
	LatencyJitter float64
}

// RumorMode selects how rumors are seeded.
type RumorMode int

const (
	// OneToAll seeds only Config.Source with its rumor.
	OneToAll RumorMode = iota + 1
	// AllToAll seeds every node with its own rumor.
	AllToAll
)

// Delivery describes one completed exchange from the perspective of one
// endpoint. The simulator has already merged PeerRumors into the node's
// rumor set when OnDeliver is invoked.
type Delivery struct {
	// Round is the completion round (initiation round + edge latency).
	Round int
	// InitRound is the round the exchange was initiated.
	InitRound int
	// Peer is the other endpoint.
	Peer graph.NodeID
	// NeighborIndex is the adjacency index of Peer at this node.
	NeighborIndex int
	// Latency is the latency of the traversed edge (now discovered).
	Latency int
	// Initiator reports whether this node initiated the exchange.
	Initiator bool
	// News lists the rumor ids this exchange conveyed from the peer, in
	// the order the peer gained them (a delta against what earlier
	// exchanges on this edge already carried; the union of all deltas on
	// an edge reconstructs the peer's full snapshot). It is a view into
	// engine-owned storage: valid only during OnDeliver, read-only.
	News []int32
	// NewRumors counts rumors this delivery added to the node.
	NewRumors int
	// PeerMeta is the peer protocol's metadata snapshot (nil unless the
	// peer protocol implements MetaProducer).
	PeerMeta any
}

// Protocol is a per-node gossip protocol. The simulator calls Activate
// once per node per round (the model's "choose one neighbor" step) and
// OnDeliver when an exchange involving the node completes.
type Protocol interface {
	// Activate returns the adjacency index of the neighbor to contact
	// this round, or ok=false to stay silent.
	Activate(round int) (neighborIndex int, ok bool)
	// OnDeliver reports a completed exchange.
	OnDeliver(d Delivery)
}

// MetaProducer is an optional Protocol extension: Meta is sampled at
// exchange initiation and delivered to the peer alongside the rumors.
type MetaProducer interface {
	Meta() any
}

// DoneReporter is an optional Protocol extension used by quiescence-based
// stop conditions: Done reports that this node's protocol has terminated.
type DoneReporter interface {
	Done() bool
}

// LeaderReporter is an optional Protocol extension for coordination
// protocols: Leader returns the node this protocol currently considers
// leader and whether that choice has stabilized (the protocol's own
// decision criterion — e.g. "no change for k rounds"). Leader-quantified
// stop conditions (StopLeaderStable) read it at round barriers only.
type LeaderReporter interface {
	Leader() (leader int, decided bool)
}

// AmnesiaReseter is an optional Protocol extension for protocols that
// keep node-local state beyond the engine-owned rumor set — heard sets,
// done flags, round-robin cursors, in-flight markers. When a node
// rejoins from an amnesic churn interval the engine resets its rumor
// state and then calls OnAmnesia so the protocol restarts from its
// initial state too; without this facet a protocol would keep acting on
// knowledge the node no longer holds. Discovered link latencies are
// retained either way (they are measured, not gossiped).
type AmnesiaReseter interface {
	OnAmnesia()
}

// Waiter is an optional Protocol extension for protocols with internal
// timers (e.g. timeouts): while Waiting returns true the simulator will
// not declare quiescence even when no activations or deliveries are
// pending, so the protocol gets future Activate calls to fire its timer.
type Waiter interface {
	Waiting() bool
}

// WakeOnDelivery is the Sleeper sentinel for "park me": the protocol has
// nothing to do until an exchange involving it completes (the engine
// re-wakes a node at every delivery it receives), or ever.
const WakeOnDelivery = int(^uint(0) >> 1)

// Sleeper is an optional Protocol extension feeding the activation
// calendar. After each Activate call at round r the engine asks NextWake
// for the earliest round at which the protocol could act again or mutate
// state (e.g. fire a timeout); the engine will not call Activate before
// that round, which lets it skip the idle span entirely. Return
// WakeOnDelivery to park until the next completed exchange.
//
// Contract: between the current round (exclusive) and the reported wake
// round, Activate would have returned ok=false without changing any
// state — including the node's RNG stream. Protocols that cannot promise
// this must not implement Sleeper; they are woken every round, the
// classical schedule. A delivery re-wakes the node regardless of the
// reported round, so "sleep until my exchange returns" is simply
// WakeOnDelivery.
type Sleeper interface {
	NextWake(round int) int
}

// NodeView is the node-local world handed to a protocol: identity,
// adjacency (CSR slices — no per-node allocations), (possibly
// discovered) latencies, the node's rumor set and a private RNG stream.
type NodeView struct {
	id   graph.NodeID
	n    int
	nbrs []int32 // CSR neighbor view, adjacency order
	lats []int32 // CSR latency view, parallel to nbrs
	// known is the latency per adjacency index as this node knows it;
	// -1 = not yet discovered.
	known []int32
	// rum answers rumor membership; hybrid sparse/dense so one-to-all
	// runs at n=10⁶ do not pay n bits per node.
	rum rumorSet
	// journal lists the node's rumors in gain order; the set at any past
	// round is a prefix, which is how exchanges snapshot without cloning.
	journal []int32
	rng     *rand.Rand
}

// gain adds rumor r to the node's set and journal; it reports whether the
// rumor was new. All rumor mutation goes through here so the journal
// stays an exact gain-ordered index of the set.
func (nv *NodeView) gain(r int) bool {
	if !nv.rum.add(int32(r)) {
		return false
	}
	nv.journal = append(nv.journal, int32(r))
	return true
}

// seedFrom bulk-seeds an empty node from a previous phase's rumor set:
// the dense path is a word-level UnionCount instead of n per-bit probes,
// which is what makes the multi-phase pipelines' between-phase carry-over
// O(n/64) per node.
func (nv *NodeView) seedFrom(src *bitset.Set) {
	if nv.rum.dense != nil && len(nv.journal) == 0 {
		nv.rum.dense.UnionCount(src)
		src.ForEach(func(r int) { nv.journal = append(nv.journal, int32(r)) })
		return
	}
	src.ForEach(func(r int) { nv.gain(r) })
}

// ID returns the node's identity.
func (nv *NodeView) ID() graph.NodeID { return nv.id }

// N returns the network size (the paper's nodes know a polynomial bound
// on n; we expose n itself and note that every algorithm below uses it
// only inside logarithms, where a polynomial bound changes constants).
func (nv *NodeView) N() int { return nv.n }

// Degree returns the node's degree.
func (nv *NodeView) Degree() int { return len(nv.nbrs) }

// NeighborID returns the node ID of the i-th neighbor.
func (nv *NodeView) NeighborID(i int) graph.NodeID { return int(nv.nbrs[i]) }

// NeighborIndex returns the adjacency index of the given neighbor ID, or
// -1 when id is not adjacent.
func (nv *NodeView) NeighborIndex(id graph.NodeID) int {
	for i, nb := range nv.nbrs {
		if int(nb) == id {
			return i
		}
	}
	return -1
}

// Latency returns the latency of the edge to the i-th neighbor and
// whether the node knows it (true always in KnownLatencies mode; after
// discovery otherwise).
func (nv *NodeView) Latency(i int) (int, bool) {
	l := nv.known[i]
	if l < 0 {
		return 0, false
	}
	return int(l), true
}

// Knows reports whether the node holds rumor r.
func (nv *NodeView) Knows(r int) bool { return nv.rum.contains(int32(r)) }

// RumorCount returns how many rumors the node holds (the journal length;
// O(1), no popcount).
func (nv *NodeView) RumorCount() int { return len(nv.journal) }

// RNG returns the node's private deterministic random stream.
func (nv *NodeView) RNG() *rand.Rand { return nv.rng }

// Result summarizes a run.
type Result struct {
	// Rounds is the round at which the stop condition first held
	// (deliveries at round r are visible to a stop check at r).
	Rounds int
	// Completed is false when the horizon was hit first.
	Completed bool
	// Exchanges counts initiated exchanges; Messages counts directed
	// messages (2 per exchange, per the bidirectional model).
	Exchanges int64
	Messages  int64
	// Dropped counts exchanges lost to crashes, the in-degree cap, or
	// the adversity schedule (message loss, churn, link flaps).
	Dropped int64
	// Delivered counts exchanges whose payload reached both endpoints.
	// Among initiated exchanges, Delivered + (dropped in flight) +
	// (still in flight at stop) == Exchanges; note Dropped additionally
	// counts in-degree-cap refusals, which are never initiated, so
	// Delivered + Dropped can exceed Exchanges when MaxInPerRound is
	// set.
	Delivered int64
	// RumorPayload totals the rumor units carried by delivered
	// exchanges (both directions): the bandwidth cost of full-state
	// gossip, which Section 6 contrasts against push-pull's ability to
	// run with small messages.
	RumorPayload int64
	// InformedAt[u] is the first round node u held the watched rumor
	// (Config.Source's rumor in OneToAll mode; u's own otherwise gives 0),
	// or -1 if never.
	InformedAt []int
	// World exposes the final global state (rumor sets, protocols) so
	// multi-phase procedures can inspect and carry it forward.
	World *World
}

// FinalRumors returns every node's rumor set at the end of the run as
// dense bitsets (materialized from the gain journals), suitable for
// Config.InitialRumors of a follow-up phase.
func (r Result) FinalRumors() []*bitset.Set {
	out := make([]*bitset.Set, len(r.World.Views))
	for i, nv := range r.World.Views {
		s := bitset.New(nv.n)
		for _, x := range nv.journal {
			s.Add(int(x))
		}
		out[i] = s
	}
	return out
}

func (r Result) String() string {
	return fmt.Sprintf("result{rounds=%d completed=%v exchanges=%d}", r.Rounds, r.Completed, r.Exchanges)
}
