package sim

import (
	"reflect"
	"testing"

	"gossip/internal/graph"
)

// shardFingerprint captures everything externally observable about a run:
// the summary counters, per-node informed times and per-node journals.
type shardFingerprint struct {
	rounds       int
	completed    bool
	exchanges    int64
	messages     int64
	dropped      int64
	rumorPayload int64
	informedAt   []int
	journals     [][]int32
}

func fingerprint(res Result) shardFingerprint {
	fp := shardFingerprint{
		rounds:       res.Rounds,
		completed:    res.Completed,
		exchanges:    res.Exchanges,
		messages:     res.Messages,
		dropped:      res.Dropped,
		rumorPayload: res.RumorPayload,
		informedAt:   res.InformedAt,
	}
	for _, nv := range res.World.Views {
		fp.journals = append(fp.journals, append([]int32(nil), nv.journal...))
	}
	return fp
}

// denseTestGraph is a small multi-latency graph exercising concurrent
// exchanges across shard boundaries.
func denseTestGraph(n int) *graph.Graph {
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if (u+v)%3 != 0 || v == u+1 {
				g.MustAddEdge(u, v, 1+(u*7+v)%5)
			}
		}
	}
	return g
}

// TestWorkerCountDeterminism is the shard-determinism gate: the same
// configuration must produce bit-identical results (counters, informed
// times, every node's gain journal) at every worker count, including
// under latency jitter, fail-stop crashes and bounded in-degree.
func TestWorkerCountDeterminism(t *testing.T) {
	const n = 37 // deliberately not a multiple of typical worker counts
	g := denseTestGraph(n)
	crashAt := make([]int, n)
	for u := range crashAt {
		crashAt[u] = -1
	}
	crashAt[5], crashAt[11] = 4, 9
	cfgs := map[string]Config{
		"plain":    {Graph: g, Seed: 42, Mode: OneToAll, Source: 0, MaxRounds: 1 << 12},
		"alltoall": {Graph: g, Seed: 7, Mode: AllToAll, MaxRounds: 1 << 12},
		"jitter":   {Graph: g, Seed: 9, Mode: OneToAll, Source: 3, MaxRounds: 1 << 12, LatencyJitter: 0.4},
		"crashes":  {Graph: g, Seed: 11, Mode: OneToAll, Source: 1, MaxRounds: 1 << 12, CrashAt: crashAt},
		"bounded":  {Graph: g, Seed: 13, Mode: AllToAll, MaxRounds: 1 << 12, MaxInPerRound: 2},
	}
	for name, base := range cfgs {
		t.Run(name, func(t *testing.T) {
			stop := StopAllInformed(base.Source)
			if base.Mode == AllToAll {
				stop = StopAllHaveAll()
			}
			if base.CrashAt != nil {
				stop = StopAllAliveInformed(base.Source)
			}
			var want shardFingerprint
			for i, workers := range []int{1, 2, 3, 8, 64} {
				cfg := base
				cfg.Workers = workers
				res, err := Run(cfg, func(nv *NodeView) Protocol { return &randomProto{nv: nv} }, stop)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				got := fingerprint(res)
				if i == 0 {
					want = got
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("workers=%d diverged from workers=1:\n got %+v\nwant %+v", workers, got, want)
				}
			}
		})
	}
}

// TestCSRGraphEquivalence: the same run through Config.Graph and through
// Config.CSR (converted up front) must be bit-identical — the conversion
// preserves adjacency order, and protocols only see adjacency indices.
func TestCSRGraphEquivalence(t *testing.T) {
	g := denseTestGraph(23)
	run := func(cfg Config) shardFingerprint {
		res, err := Run(cfg, func(nv *NodeView) Protocol { return &randomProto{nv: nv} }, StopAllInformed(0))
		if err != nil {
			t.Fatal(err)
		}
		return fingerprint(res)
	}
	viaGraph := run(Config{Graph: g, Seed: 5, Mode: OneToAll, Source: 0, MaxRounds: 1 << 12})
	viaCSR := run(Config{CSR: g.CSR(), Seed: 5, Mode: OneToAll, Source: 0, MaxRounds: 1 << 12})
	if !reflect.DeepEqual(viaGraph, viaCSR) {
		t.Fatalf("CSR run diverged from Graph run:\n graph %+v\n csr   %+v", viaGraph, viaCSR)
	}
	// Sharded CSR run too.
	viaCSR8 := run(Config{CSR: g.CSR(), Seed: 5, Mode: OneToAll, Source: 0, MaxRounds: 1 << 12, Workers: 8})
	if !reflect.DeepEqual(viaGraph, viaCSR8) {
		t.Fatal("sharded CSR run diverged from serial Graph run")
	}
}

// TestCSRConfigValidation: a disconnected CSR is rejected like a
// disconnected Graph.
func TestCSRConfigValidation(t *testing.T) {
	b := graph.NewCSRBuilder(4)
	b.MustAddEdge(0, 1, 1) // nodes 2,3 disconnected
	b.MustAddEdge(2, 3, 1)
	csr, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(Config{CSR: csr, MaxRounds: 4},
		func(nv *NodeView) Protocol { return &fixedProtocol{nv: nv} }, StopNever()); err == nil {
		t.Fatal("disconnected CSR accepted")
	}
}

// TestSlowEdgeOverflowCalendar drives deliveries through the overflow
// heap (latency far beyond the calendar ring) mixed with ring-resident
// fast deliveries, and checks the merged delivery order stays correct.
func TestSlowEdgeOverflowCalendar(t *testing.T) {
	// Star: center 0 with one very slow spoke and several fast ones.
	g := graph.New(6)
	g.MustAddEdge(0, 1, 100_000)
	for v := 2; v < 6; v++ {
		g.MustAddEdge(0, v, 1)
	}
	res, err := Run(Config{Graph: g, Seed: 3, Mode: OneToAll, Source: 0, MaxRounds: 1 << 18},
		func(nv *NodeView) Protocol {
			p := &fixedProtocol{nv: nv, schedule: map[int]int{}}
			if nv.ID() == 0 {
				for i := 0; i < nv.Degree(); i++ {
					p.schedule[i] = i
				}
			}
			return p
		}, StopAllInformed(0))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Rounds != 100_000 {
		t.Fatalf("run %+v, want completion at the slow spoke's delivery round", res)
	}
	if res.InformedAt[1] != 100_000 {
		t.Fatalf("InformedAt[1] = %d, want 100000", res.InformedAt[1])
	}
	for v := 2; v < 6; v++ {
		if res.InformedAt[v] != v {
			t.Fatalf("InformedAt[%d] = %d, want %d", v, res.InformedAt[v], v)
		}
	}
}
