package sim

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Distributed execution: one simulation sharded across cooperating
// worker processes (or goroutines), bit-identical to a serial run.
//
// Every worker builds the full deterministic node-state arenas from the
// same Config — views, journals, RNG streams, rumor seeding are all
// derivable from the config alone — but instantiates protocols only for
// its contiguous owned node range (the same contiguous partition the
// in-process sharded engine uses). Per processed round a worker:
//
//  1. applies the replicated crash/adversity calendar events,
//  2. drains its own delivery calendar and delivers to owned endpoints
//     only, collecting every rumor gain of an owned node,
//  3. activates its owned range and resolves each intent's peer, edge
//     latency and (when an adversity schedule is attached) loss fate —
//     the loss draw order per initiator stream matches the serial merge
//     exactly because a node initiates at most one exchange per round,
//  4. exchanges one DistFrame with every other shard at the round
//     barrier (all-to-all; the coordinator is a dumb lockstep relay),
//  5. applies remote gains in the owner's true order (journal order is
//     positional — remote node state is never mutated except through
//     these shipped appends), evaluates the stop condition exactly where
//     the serial engine would, and
//  6. merges ALL shards' intents in shard-then-node order, assigning the
//     identical global sequence numbers, scheduling only the exchanges
//     that touch its range, and computing the identical next processed
//     round from the broadcast flags.
//
// Because every decision after the barrier is a pure function of the
// frame bundle plus replicated config-derived state, all workers process
// the same round sequence, take the same exit, and return Results whose
// shared fields (Rounds, Completed, InformedAt) are byte-identical to a
// serial run; the counter fields are partial sums attributed to the
// initiating node's owner, so summing them across workers reproduces the
// serial totals.

// DistIntent is one exported activation: node U contacts its Idx-th
// neighbor V over an edge of latency Lat. The initiator's owner resolves
// V and Lat (sequential CSR reads on its own range) and pre-draws the
// adversity loss fate so no other worker re-reads the initiator's CSR
// rows or loss stream.
type DistIntent struct {
	U, Idx, V int32
	// VIdx is u's position in v's adjacency row, resolved by the
	// initiating shard (which pays the CSR lookup once) so receiving
	// workers never binary-search the peer row during the merge.
	VIdx int32
	Lat  int32
	Lost bool
}

// DistGain is one rumor gain of an owned node, shipped so every worker's
// replica of the node's journal grows in the owner's exact gain order.
type DistGain struct{ Node, Rumor int32 }

// DistFrame is one shard's contribution to a round barrier.
type DistFrame struct {
	Round int
	Shard int
	// Intents are the shard's activations in node order.
	Intents []DistIntent
	// Gains are the shard's delivery-phase rumor gains in application
	// order.
	Gains []DistGain
	// MinWake/SleeperWake/Idle/Called mirror the serial per-shard
	// activation aggregates; Pending and NextDeliver describe the
	// shard's delivery calendar after this round's drain but before the
	// merge (new exchanges are derivable from the broadcast intents).
	MinWake     int
	SleeperWake int
	NextDeliver int // earliest pending delivery round, -1 = none
	Pending     bool
	Idle        bool
	Called      bool
	// Waiting reports a live Waiter on this shard; only meaningful when
	// the shard was locally quiescent (the only case the global
	// idle-termination check can trigger).
	Waiting bool
	// DonePre/DonePost capture "every owned DoneReporter is done" before
	// and after this round's activations: the post-delivery stop check
	// needs pre-activation state (the serial engine evaluates it before
	// activating), the idle-termination stop call needs post-activation
	// state.
	DonePre  bool
	DonePost bool
	// LeadPre/LeadPost are the shard's leader summaries at the same two
	// capture points (see ownedLeader): the unanimously decided leader of
	// the shard's owned survivors, or a LeaderAgnostic/LeaderUnsettled
	// sentinel.
	LeadPre  int32
	LeadPost int32
	// MetaCapable marks a shard owning MetaProducer protocols; a meta
	// sub-barrier runs whenever any capable shard sees a cross-shard
	// intent.
	MetaCapable bool
	// Err carries a shard-local activation error (empty = none); all
	// workers abort identically after the barrier.
	Err string
}

func (f *DistFrame) reset(round, shard int) {
	f.Round, f.Shard = round, shard
	f.Intents = f.Intents[:0]
	f.Gains = f.Gains[:0]
	f.MinWake, f.SleeperWake = never, never
	f.NextDeliver = -1
	f.Pending, f.Idle, f.Called, f.Waiting = false, false, false, false
	f.DonePre, f.DonePost, f.MetaCapable = false, false, false
	f.LeadPre, f.LeadPost = LeaderAgnostic, LeaderAgnostic
	f.Err = ""
}

// DistNodeMeta is one node's exchange metadata snapshot. Distributed
// runs require metadata to be []int32 (the only meta type the registered
// protocols produce) so it can cross the wire unchanged.
type DistNodeMeta struct {
	Node int32
	Meta []int32
}

// DistMetaFrame is one shard's contribution to a meta sub-barrier: the
// post-activation metadata of every owned endpoint of a cross-shard
// intent, in first-appearance order over the round's merged intent scan.
type DistMetaFrame struct {
	Round int
	Shard int
	Metas []DistNodeMeta
}

// Exchanger is the barrier transport of a distributed run. Both calls
// block until every shard has contributed its frame for the current
// barrier and return all frames indexed by shard (the caller's own frame
// included).
//
// Aliasing contract: returned frames stay valid until the caller's next
// Exchange call; a frame passed in must not be mutated by the caller
// until its second following barrier of the same kind completes. The
// engine honours this by double-buffering its outgoing frames, which is
// what lets an in-memory Exchanger hand frames between workers without
// copying.
type Exchanger interface {
	ExchangeFrames(f *DistFrame) ([]*DistFrame, error)
	ExchangeMetas(f *DistMetaFrame) ([]*DistMetaFrame, error)
}

// DistStats reports out-of-band execution statistics of one worker (not
// part of Result, so Results stay byte-comparable). ComputeNS is the
// worker's busy time — the per-worker critical path that bounds
// distributed wall-clock when each worker has a core of its own. On
// Linux it is the worker thread's actual CPU time (the worker goroutine
// is locked to its OS thread); elsewhere it falls back to wall time
// minus barrier wait, which over-counts on hosts with fewer cores than
// workers (runnable-but-descheduled time looks like compute).
type DistStats struct {
	Rounds       int64
	Barriers     int64
	MetaBarriers int64
	Intents      int64
	CrossIntents int64
	Gains        int64
	ComputeNS    int64
	WaitNS       int64
}

// DistConfig parameterizes one worker of a distributed run.
type DistConfig struct {
	// Shard is this worker's index in [0, Shards); Shards >= 2.
	Shard, Shards int
	// Exchanger connects the worker to its peers.
	Exchanger Exchanger
	// Stats, when non-nil, receives execution statistics.
	Stats *DistStats
}

// distRun is the per-engine distributed state.
type distRun struct {
	shard, shards int
	lo, hi        int
	per           int
	ex            Exchanger
	stats         *DistStats
	hasDones      bool
	metaAny       bool
	// frames/metaFrames are the double-buffered outgoing frames (see the
	// Exchanger aliasing contract).
	frames       [2]DistFrame
	metaFrames   [2]DistMetaFrame
	barriers     int
	metaBarriers int
	// metaStamp deduplicates meta-frame entries per round (stamped with
	// round+1; processed rounds strictly increase).
	metaStamp []int
	// remoteMeta indexes the current round's shipped metadata by node.
	remoteMeta map[int32][]int32
}

func (d *distRun) owns(u int32) bool { return int(u) >= d.lo && int(u) < d.hi }

func (d *distRun) ownerOf(u int32) int {
	i := int(u) / d.per
	if i >= d.shards {
		i = d.shards - 1
	}
	return i
}

// RunDist executes one shard of a distributed simulation. Every worker
// must be started with the identical cfg, factory semantics and stop
// condition, and Shard/Shards must partition the same node count.
//
// Not every configuration distributes: in-degree caps draw their loss
// fates in an order only the serial merge knows, and latency jitter
// draws from a single global stream — both are rejected here (callers
// gate them with clearer errors at the API layer).
func RunDist(cfg Config, dc DistConfig, factory Factory, stop StopFunc) (Result, error) {
	if dc.Shards < 2 {
		return Result{}, fmt.Errorf("sim: distributed run needs at least 2 shards (got %d)", dc.Shards)
	}
	if dc.Shard < 0 || dc.Shard >= dc.Shards {
		return Result{}, fmt.Errorf("sim: shard %d out of range [0,%d)", dc.Shard, dc.Shards)
	}
	if dc.Exchanger == nil {
		return Result{}, fmt.Errorf("sim: distributed run needs an exchanger")
	}
	if cfg.MaxInPerRound > 0 {
		return Result{}, fmt.Errorf("sim: bounded in-degree is not supported in distributed runs")
	}
	if cfg.LatencyJitter != 0 {
		return Result{}, fmt.Errorf("sim: latency jitter is not supported in distributed runs")
	}
	cfg.Workers = 1
	e, err := newEngineShard(cfg, factory, dc.Shard, dc.Shards)
	if err != nil {
		return Result{}, err
	}
	d := &distRun{
		shard: dc.Shard, shards: dc.Shards,
		lo: e.shards[0].lo, hi: e.shards[0].hi,
		per:   (e.n + dc.Shards - 1) / dc.Shards,
		ex:    dc.Exchanger,
		stats: dc.Stats,
	}
	for u := d.lo; u < d.hi; u++ {
		if e.world.dones[u] != nil {
			d.hasDones = true
		}
		if e.meta[u] != nil {
			d.metaAny = true
		}
	}
	e.dist = d
	e.world.distDone = make([]bool, dc.Shards)
	e.world.distLeader = make([]int32, dc.Shards)
	if d.stats != nil {
		// Pin the goroutine so ComputeNS can read this OS thread's CPU
		// clock (see DistStats); barrier blocking releases the CPU, so
		// thread time is pure compute even when workers share cores.
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
	}
	start := time.Now()
	cpu0 := threadCPUNS()
	res, err := e.runDist(stop)
	if d.stats != nil {
		if cpu1 := threadCPUNS(); cpu0 >= 0 && cpu1 >= 0 {
			d.stats.ComputeNS = cpu1 - cpu0
		} else {
			d.stats.ComputeNS = time.Since(start).Nanoseconds() - d.stats.WaitNS
		}
	}
	return res, err
}

func (d *distRun) exchangeFrames(f *DistFrame) ([]*DistFrame, error) {
	if d.stats == nil {
		return d.ex.ExchangeFrames(f)
	}
	t := time.Now()
	out, err := d.ex.ExchangeFrames(f)
	d.stats.WaitNS += time.Since(t).Nanoseconds()
	d.stats.Barriers++
	return out, err
}

func (d *distRun) exchangeMetas(mf *DistMetaFrame) ([]*DistMetaFrame, error) {
	if d.stats == nil {
		return d.ex.ExchangeMetas(mf)
	}
	t := time.Now()
	out, err := d.ex.ExchangeMetas(mf)
	d.stats.WaitNS += time.Since(t).Nanoseconds()
	d.stats.MetaBarriers++
	return out, err
}

// distDrainDue is drainDue for a shard worker: deliveries route only to
// owned endpoints, and the drop/delivery/payload counters are attributed
// to the initiating node's owner so per-worker partial sums reproduce
// the serial totals.
func (e *engine) distDrainDue(round int) {
	e.collectDue(round)
	d := e.dist
	s := &e.shards[0]
	for i := range e.due {
		ex := &e.due[i]
		mine := d.owns(ex.u)
		if ex.lost || e.crashed(int(ex.u), ex.deliver) || e.crashed(int(ex.v), ex.deliver) {
			if mine {
				e.res.Dropped++
			}
			ex.uNews, ex.vNews = nil, nil
			continue
		}
		if mine {
			e.res.Delivered++
			e.res.RumorPayload += int64(ex.uEnd) + int64(ex.vEnd)
		}
		ex.uNews = e.views[ex.v].journal[ex.vStart:ex.vEnd]
		ex.vNews = e.views[ex.u].journal[ex.uStart:ex.uEnd]
		if mine {
			s.recs = append(s.recs, uint32(i)<<1)
		}
		if d.owns(ex.v) {
			s.recs = append(s.recs, uint32(i)<<1|1)
		}
	}
}

// deliverShardDist is deliverShard with gain capture: every rumor an
// owned node gains is appended to the outgoing frame in application
// order, which is the owner's journal order — the order every replica
// must reproduce.
func (e *engine) deliverShardDist(s *shard, round int, f *DistFrame) {
	watched := int32(e.watched)
	for _, enc := range s.recs {
		ex := &e.due[enc>>1]
		var self, peer, selfIdx int32
		var news []int32
		var meta any
		initiator := enc&1 == 0
		if initiator {
			self, peer, selfIdx = ex.u, ex.v, ex.uIdx
			news, meta = ex.uNews, ex.vMeta
		} else {
			self, peer, selfIdx = ex.v, ex.u, ex.vIdx
			news, meta = ex.vNews, ex.uMeta
		}
		nv := e.views[self]
		gained := 0
		for _, r := range news {
			if nv.gain(int(r)) {
				gained++
				f.Gains = append(f.Gains, DistGain{Node: self, Rumor: r})
			}
		}
		nv.known[selfIdx] = ex.latency
		if e.informedAt[self] < 0 && nv.rum.contains(watched) {
			e.informedAt[self] = ex.deliver
			s.newlyInformed = append(s.newlyInformed, self)
		}
		if e.wake[self] > round {
			e.wake[self] = round
		}
		e.protos[self].OnDeliver(Delivery{
			Round:         ex.deliver,
			InitRound:     ex.initRound,
			Peer:          int(peer),
			NeighborIndex: int(selfIdx),
			Latency:       int(ex.latency),
			Initiator:     initiator,
			News:          news,
			NewRumors:     gained,
			PeerMeta:      meta,
		})
	}
	s.recs = s.recs[:0]
}

// applyRemoteGains grows the replicas of remote nodes exactly as their
// owners did this round. gain() is idempotent and journal-ordered, so
// replicated journals stay positionally identical to the owner's — the
// invariant exchange windows depend on.
func (e *engine) applyRemoteGains(frames []*DistFrame, round int) {
	watched := int32(e.watched)
	for _, f := range frames {
		if f.Shard == e.dist.shard {
			continue
		}
		for _, g := range f.Gains {
			nv := e.views[g.Node]
			nv.gain(int(g.Rumor))
			if e.informedAt[g.Node] < 0 && nv.rum.contains(watched) {
				e.informedAt[g.Node] = round
				e.world.informed.Add(int(g.Node))
			}
		}
	}
}

// exportIntents resolves this shard's buffered activations into wire
// intents: peer id, edge latency, and — when an adversity schedule is
// attached — the loss fate, pre-drawn here in node order. A node
// initiates at most one exchange per round, so per-initiator loss
// streams advance in exactly the order the serial merge draws them.
func (e *engine) exportIntents(s *shard, round int, f *DistFrame) {
	for _, it := range s.intents {
		u, idx := int(it.u), int(it.idx)
		nv := e.views[u]
		v := int(nv.nbrs[idx])
		lat := int(nv.lats[idx])
		di := DistIntent{
			U: it.u, Idx: it.idx, V: int32(v),
			VIdx: int32(e.csr.PeerIndex(u, idx)),
			Lat:  int32(lat),
		}
		if e.adv != nil {
			di.Lost = e.adv.DownDuring(u, round, round+lat) ||
				e.adv.DownDuring(v, round, round+lat) ||
				e.adv.LinkDownDuring(u, v, round, round+lat)
			if !di.Lost && e.advRNG != nil {
				if p := e.adv.LossProb(u, v); p > 0 && e.advRNG[u].Float64() < p {
					di.Lost = true
				}
			}
		}
		f.Intents = append(f.Intents, di)
	}
	s.intents = s.intents[:0]
}

// ownedAllDone captures "every owned live DoneReporter is done" (the
// per-shard conjunct of StopAllDone).
func (e *engine) ownedAllDone() bool {
	w := e.world
	for u := e.dist.lo; u < e.dist.hi; u++ {
		if dr := w.dones[u]; dr != nil && w.Alive(u) && !dr.Done() {
			return false
		}
	}
	return true
}

// ownedLeader captures the per-shard conjunct of StopLeaderStable:
// scanning the owned survivors (survivorship is config-derived, so every
// shard computes it identically), it returns their unanimously decided
// leader, LeaderUnsettled when some owned survivor is down, undecided,
// facet-less or disagreeing, or LeaderAgnostic when the shard owns no
// survivors. On non-coordination protocols (no LeaderReporter facets)
// the first owned survivor short-circuits to LeaderUnsettled, keeping
// the per-round cost O(1) off the election path.
func (e *engine) ownedLeader() int32 {
	w := e.world
	leader := LeaderAgnostic
	for u := e.dist.lo; u < e.dist.hi; u++ {
		if e.cfg.CrashAt != nil && e.cfg.CrashAt[u] >= 0 {
			continue
		}
		if e.cfg.Adversity.NeverReturns(u) {
			continue
		}
		lr := w.leaders[u]
		if lr == nil || !w.Alive(u) {
			return LeaderUnsettled
		}
		l, decided := lr.Leader()
		if !decided {
			return LeaderUnsettled
		}
		if leader == LeaderAgnostic {
			leader = int32(l)
		} else if leader != int32(l) {
			return LeaderUnsettled
		}
	}
	return leader
}

// ownedWaiting reports a live Waiter on the owned range.
func (e *engine) ownedWaiting(round int) bool {
	for u := e.dist.lo; u < e.dist.hi; u++ {
		if w := e.waiter[u]; w != nil && !e.down(u, round) && w.Waiting() {
			return true
		}
	}
	return false
}

// loadDone publishes the bundle's captured per-shard done flags and
// leader summaries for the next stop evaluation (pre- or post-activation
// capture).
func (d *distRun) loadDone(w *World, frames []*DistFrame, post bool) {
	for i, f := range frames {
		if post {
			w.distDone[i] = f.DonePost
			w.distLeader[i] = f.LeadPost
		} else {
			w.distDone[i] = f.DonePre
			w.distLeader[i] = f.LeadPre
		}
	}
}

func (d *distRun) checkBundle(frames []*DistFrame, round int) error {
	if len(frames) != d.shards {
		return fmt.Errorf("sim: round %d barrier returned %d frames for %d shards", round, len(frames), d.shards)
	}
	for i, f := range frames {
		if f == nil || f.Shard != i || f.Round != round {
			return fmt.Errorf("sim: round %d barrier frame %d is misaligned", round, i)
		}
	}
	return nil
}

// buildMetaFrame collects the post-activation metadata of every owned
// MetaProducer endpoint of a cross-shard intent, deduplicated, in the
// deterministic shard-then-node intent order.
func (e *engine) buildMetaFrame(mf *DistMetaFrame, frames []*DistFrame, round int) error {
	d := e.dist
	mf.Round, mf.Shard = round, d.shard
	mf.Metas = mf.Metas[:0]
	if d.metaStamp == nil {
		d.metaStamp = make([]int, e.n)
	}
	stamp := round + 1
	for _, f := range frames {
		for i := range f.Intents {
			in := &f.Intents[i]
			if d.ownerOf(in.U) == d.ownerOf(in.V) {
				continue
			}
			for _, node := range [2]int32{in.U, in.V} {
				if !d.owns(node) || e.meta[node] == nil || d.metaStamp[node] == stamp {
					continue
				}
				d.metaStamp[node] = stamp
				m := e.meta[node].Meta()
				var ms []int32
				if m != nil {
					var ok bool
					if ms, ok = m.([]int32); !ok {
						return fmt.Errorf("sim: distributed runs require []int32 exchange metadata (node %d produced %T)", node, m)
					}
				}
				mf.Metas = append(mf.Metas, DistNodeMeta{Node: node, Meta: ms})
			}
		}
	}
	return nil
}

// distMerge is mergeIntents over the broadcast bundle: every intent in
// shard-then-node order advances the identical global sequence number,
// but only exchanges touching this worker's range are scheduled, with
// the shipped loss fate and peer resolution. It returns the earliest
// delivery round among ALL new exchanges (touching or not), which every
// worker needs for the identical next-round computation.
func (e *engine) distMerge(round int, frames []*DistFrame) int {
	d := e.dist
	minNew := -1
	for _, f := range frames {
		for i := range f.Intents {
			in := &f.Intents[i]
			deliver := round + int(in.Lat)
			if minNew < 0 || deliver < minNew {
				minNew = deliver
			}
			seq := e.seq
			e.seq++
			uOwned := d.owns(in.U)
			if uOwned {
				e.res.Exchanges++
				e.res.Messages += 2
			}
			vOwned := d.owns(in.V)
			if !uOwned && !vOwned {
				continue
			}
			if uOwned != vOwned && d.stats != nil {
				d.stats.CrossIntents++
			}
			u, v := int(in.U), int(in.V)
			vIdx := int(in.VIdx)
			ex := exch{
				deliver:   deliver,
				initRound: round,
				seq:       seq,
				u:         in.U, v: in.V,
				uIdx: in.Idx, vIdx: int32(vIdx),
				latency: in.Lat,
				uEnd:    int32(len(e.views[u].journal)),
				vEnd:    int32(len(e.views[v].journal)),
				lost:    in.Lost,
			}
			if e.sent != nil && !ex.lost {
				hu := e.csr.HalfIndex(u, int(in.Idx))
				hv := e.csr.HalfIndex(v, vIdx)
				ex.uStart = e.sent[hu]
				ex.vStart = e.sent[hv]
				e.sent[hu] = ex.uEnd
				e.sent[hv] = ex.vEnd
			}
			if mp := e.meta[u]; mp != nil {
				ex.uMeta = mp.Meta()
			} else if m, ok := d.remoteMeta[in.U]; ok {
				ex.uMeta = m
			}
			if mp := e.meta[v]; mp != nil {
				ex.vMeta = mp.Meta()
			} else if m, ok := d.remoteMeta[in.V]; ok {
				ex.vMeta = m
			}
			e.push(ex, round)
		}
	}
	return minNew
}

// runDist is the distributed event loop. It mirrors run() decision for
// decision; divergences are confined to how cross-shard state travels
// (frames instead of shared memory) and are individually justified
// against the serial semantics in the comments below.
func (e *engine) runDist(stop StopFunc) (Result, error) {
	d := e.dist
	w := e.world
	for round := 0; round <= e.cfg.MaxRounds; {
		w.Round = round
		// Crash and churn calendars are config-derived and replicated:
		// every worker applies them identically, including the amnesia
		// data reset of remote nodes (protocol-facet restarts happen
		// owner-side only — remote facets are nil).
		for e.nextCrash < len(e.crashRounds) && e.crashRounds[e.nextCrash] <= round {
			for _, u := range e.crashNodes[e.crashRounds[e.nextCrash]] {
				w.alive.Remove(int(u))
			}
			e.nextCrash++
		}
		for e.nextAdvEvent < len(e.advEvents) && e.advEvents[e.nextAdvEvent].Round <= round {
			ev := &e.advEvents[e.nextAdvEvent]
			for _, u := range ev.Leave {
				w.alive.Remove(u)
			}
			for _, rj := range ev.Rejoin {
				w.alive.Add(rj.Node)
				if rj.Amnesia {
					e.amnesia(rj.Node, round)
				}
				if e.wake[rj.Node] > round {
					e.wake[rj.Node] = round
				}
			}
			e.nextAdvEvent++
		}

		f := &d.frames[d.barriers&1]
		f.reset(round, d.shard)

		s := &e.shards[0]
		e.distDrainDue(round)
		e.deliverShardDist(s, round, f)
		e.finishDeliveries(round)

		// The serial engine evaluates stop before activating and (on the
		// idle-termination path) again after; capture the owned done
		// conjunct at both points so either evaluation sees the state the
		// serial engine would.
		f.DonePre = !d.hasDones || e.ownedAllDone()
		f.LeadPre = e.ownedLeader()
		e.activateShard(s, round)
		f.DonePost = !d.hasDones || e.ownedAllDone()
		f.LeadPost = e.ownedLeader()
		e.exportIntents(s, round, f)
		f.Idle, f.Called = s.idle, s.called
		f.MinWake, f.SleeperWake = s.minWake, s.sleeperWake
		f.Pending = e.pendingLen() > 0
		f.NextDeliver = e.nextDeliver(round)
		f.MetaCapable = d.metaAny
		if s.err != nil {
			f.Err = s.err.Error()
			s.err = nil
		}
		if s.idle && !f.Pending && s.sleeperWake == never {
			// Only computed when this shard is locally quiescent — the
			// only case the global idle check can trigger, and the serial
			// engine's own lazy-scan condition.
			f.Waiting = e.ownedWaiting(round)
		}
		if d.stats != nil {
			d.stats.Rounds++
			d.stats.Intents += int64(len(f.Intents))
			d.stats.Gains += int64(len(f.Gains))
		}

		frames, err := d.exchangeFrames(f)
		if err != nil {
			return e.res, fmt.Errorf("sim: shard %d round %d barrier: %w", d.shard, round, err)
		}
		if err := d.checkBundle(frames, round); err != nil {
			return e.res, err
		}
		d.barriers++

		e.applyRemoteGains(frames, round)

		// Post-delivery stop check, exactly where run() evaluates it.
		// Activation already ran locally, but Activate mutates no state a
		// Result field or stop condition reads except DoneReporter flags
		// — and those are evaluated from the pre-activation capture — so
		// a stop-exit here returns the byte-identical serial Result.
		d.loadDone(w, frames, false)
		if stop(w) {
			e.res.Rounds = round
			e.res.Completed = true
			return e.res, nil
		}
		for _, rf := range frames {
			if rf.Err != "" {
				return e.res, fmt.Errorf("sim: %s", rf.Err)
			}
		}

		// Meta sub-barrier: needed only when a meta-capable shard exists
		// and some intent crosses shards this round. Every worker
		// computes the same decision from the bundle.
		metaCap, cross := false, false
		for _, rf := range frames {
			metaCap = metaCap || rf.MetaCapable
			if !cross {
				for i := range rf.Intents {
					in := &rf.Intents[i]
					if d.ownerOf(in.U) != d.ownerOf(in.V) {
						cross = true
						break
					}
				}
			}
		}
		clear(d.remoteMeta)
		if metaCap && cross {
			mf := &d.metaFrames[d.metaBarriers&1]
			if err := e.buildMetaFrame(mf, frames, round); err != nil {
				return e.res, err
			}
			mfs, err := d.exchangeMetas(mf)
			if err != nil {
				return e.res, fmt.Errorf("sim: shard %d round %d meta barrier: %w", d.shard, round, err)
			}
			if len(mfs) != d.shards {
				return e.res, fmt.Errorf("sim: round %d meta barrier returned %d frames for %d shards", round, len(mfs), d.shards)
			}
			if d.remoteMeta == nil {
				d.remoteMeta = make(map[int32][]int32)
			}
			for _, rmf := range mfs {
				if rmf == nil || rmf.Shard == d.shard {
					continue
				}
				for _, nm := range rmf.Metas {
					d.remoteMeta[nm.Node] = nm.Meta
				}
			}
		}

		minNew := e.distMerge(round, frames)

		idle, called := true, false
		minWake, sleeperWake := never, never
		pendingRemote, waiting := false, false
		ndRemote := -1
		for _, rf := range frames {
			idle = idle && rf.Idle
			called = called || rf.Called
			if rf.MinWake < minWake {
				minWake = rf.MinWake
			}
			if rf.SleeperWake < sleeperWake {
				sleeperWake = rf.SleeperWake
			}
			waiting = waiting || rf.Waiting
			if rf.Shard != d.shard {
				if rf.Pending {
					pendingRemote = true
				}
				if rf.NextDeliver >= 0 && (ndRemote < 0 || rf.NextDeliver < ndRemote) {
					ndRemote = rf.NextDeliver
				}
			}
		}
		// Global quiescence: local calendar empty post-merge, every
		// remote calendar empty pre-merge, and nobody activated (idle
		// implies zero intents, so no remote calendar grew).
		if idle && e.pendingLen() == 0 && !pendingRemote && sleeperWake == never && e.nextAdvEvent >= len(e.advEvents) {
			if !waiting {
				d.loadDone(w, frames, true)
				e.res.Rounds = round
				e.res.Completed = stop(w)
				return e.res, nil
			}
		}
		next := minWake
		if nd := e.nextDeliver(round); nd >= 0 && nd < next {
			next = nd
		}
		if ndRemote >= 0 && ndRemote < next {
			next = ndRemote
		}
		if minNew >= 0 && minNew < next {
			next = minNew
		}
		if e.nextCrash < len(e.crashRounds) && e.crashRounds[e.nextCrash] < next {
			next = e.crashRounds[e.nextCrash]
		}
		if e.nextAdvEvent < len(e.advEvents) && e.advEvents[e.nextAdvEvent].Round < next {
			next = e.advEvents[e.nextAdvEvent].Round
		}
		if called && round+1 < next {
			next = round + 1
		}
		if next <= round {
			next = round + 1
		}
		round = next
	}
	e.res.Rounds = e.cfg.MaxRounds
	e.res.Completed = false
	return e.res, nil
}

// localHub is the in-memory Exchanger: a reusable all-to-all barrier for
// shard workers running as goroutines in one process. Frames cross by
// reference — safe under the Exchanger aliasing contract the engine's
// double buffering provides.
type localHub struct {
	shards int
	mu     sync.Mutex
	cond   *sync.Cond
	gen    int
	kind   byte
	count  int
	frames []*DistFrame
	metas  []*DistMetaFrame
	outF   []*DistFrame
	outM   []*DistMetaFrame
	err    error
}

// NewLocalExchange returns an Exchanger connecting `shards` in-process
// workers; every worker uses the same value. This is both the reference
// implementation of the barrier contract and the zero-serialization fast
// path for single-process sharded dispatch.
func NewLocalExchange(shards int) Exchanger {
	h := &localHub{
		shards: shards,
		frames: make([]*DistFrame, shards),
		metas:  make([]*DistMetaFrame, shards),
	}
	h.cond = sync.NewCond(&h.mu)
	return h
}

func (h *localHub) barrier(kind byte, slot int, set func()) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.err != nil {
		return h.err
	}
	if slot < 0 || slot >= h.shards {
		h.fail(fmt.Errorf("sim: barrier frame from shard %d of %d", slot, h.shards))
		return h.err
	}
	if h.count == 0 {
		h.kind = kind
	} else if h.kind != kind {
		h.fail(fmt.Errorf("sim: mixed barrier kinds %q and %q — workers diverged", h.kind, kind))
		return h.err
	}
	set()
	h.count++
	if h.count == h.shards {
		// Publish fresh bundle slices: previous-generation readers may
		// still be iterating theirs.
		if kind == 'f' {
			h.outF = append([]*DistFrame(nil), h.frames...)
		} else {
			h.outM = append([]*DistMetaFrame(nil), h.metas...)
		}
		h.count = 0
		h.gen++
		h.cond.Broadcast()
		return nil
	}
	gen := h.gen
	for gen == h.gen && h.err == nil {
		h.cond.Wait()
	}
	return h.err
}

// fail poisons the hub (a worker returned early or sent a misaligned
// frame) so no peer blocks forever; requires h.mu held.
func (h *localHub) fail(err error) {
	if h.err == nil {
		h.err = err
	}
	h.cond.Broadcast()
}

func (h *localHub) ExchangeFrames(f *DistFrame) ([]*DistFrame, error) {
	if err := h.barrier('f', f.Shard, func() { h.frames[f.Shard] = f }); err != nil {
		return nil, err
	}
	h.mu.Lock()
	out := h.outF
	h.mu.Unlock()
	return out, nil
}

func (h *localHub) ExchangeMetas(f *DistMetaFrame) ([]*DistMetaFrame, error) {
	if err := h.barrier('m', f.Shard, func() { h.metas[f.Shard] = f }); err != nil {
		return nil, err
	}
	h.mu.Lock()
	out := h.outM
	h.mu.Unlock()
	return out, nil
}

// Abort poisons the hub with err, releasing every blocked worker. A
// worker that exits its run loop early (engine error before a barrier)
// must call this or its peers deadlock.
func (h *localHub) Abort(err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.fail(err)
}

// distAborter is the optional Exchanger extension RunDistLocal uses to
// unblock peers when one worker fails before reaching a barrier.
type distAborter interface{ Abort(error) }

// RunDistLocal runs cfg sharded across `shards` in-process workers
// connected by an in-memory barrier, verifies the workers agree, and
// returns the assembled result (counters summed, shared fields checked
// equal) plus per-worker execution stats. The result is byte-identical
// to Run(cfg, factory, stop) for every supported configuration.
func RunDistLocal(cfg Config, shards int, factory Factory, stop StopFunc) (Result, []DistStats, error) {
	if shards < 2 {
		return Result{}, nil, fmt.Errorf("sim: distributed run needs at least 2 shards (got %d)", shards)
	}
	ex := NewLocalExchange(shards)
	results := make([]Result, shards)
	stats := make([]DistStats, shards)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = RunDist(cfg, DistConfig{
				Shard: i, Shards: shards, Exchanger: ex, Stats: &stats[i],
			}, factory, stop)
			if errs[i] != nil {
				ex.(distAborter).Abort(errs[i])
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Result{}, stats, err
		}
	}
	res, err := MergeDistResults(results)
	return res, stats, err
}

// MergeDistResults assembles per-worker partial results into the serial
// result: shared fields must agree bit-for-bit (any divergence is a
// determinism bug, reported as an error, never papered over) and the
// owner-attributed counters sum to the serial totals.
func MergeDistResults(results []Result) (Result, error) {
	if len(results) == 0 {
		return Result{}, fmt.Errorf("sim: no shard results to merge")
	}
	out := results[0]
	for i := 1; i < len(results); i++ {
		r := &results[i]
		if r.Rounds != out.Rounds || r.Completed != out.Completed {
			return Result{}, fmt.Errorf("sim: shard %d disagrees on completion: rounds %d/%v vs %d/%v",
				i, r.Rounds, r.Completed, out.Rounds, out.Completed)
		}
		if len(r.InformedAt) != len(out.InformedAt) {
			return Result{}, fmt.Errorf("sim: shard %d reports %d informed entries, shard 0 reports %d",
				i, len(r.InformedAt), len(out.InformedAt))
		}
		for u := range r.InformedAt {
			if r.InformedAt[u] != out.InformedAt[u] {
				return Result{}, fmt.Errorf("sim: shard %d disagrees on informedAt[%d]: %d vs %d",
					i, u, r.InformedAt[u], out.InformedAt[u])
			}
		}
		out.Exchanges += r.Exchanges
		out.Messages += r.Messages
		out.Dropped += r.Dropped
		out.Delivered += r.Delivered
		out.RumorPayload += r.RumorPayload
	}
	return out, nil
}
