//go:build !linux

package sim

// threadCPUNS reports per-thread CPU time where the platform exposes it
// (see cputime_linux.go); elsewhere workers fall back to wall clock
// minus barrier wait.
func threadCPUNS() int64 { return -1 }
