package sim

import (
	"testing"

	"gossip/internal/graph"
)

func TestCrashStopsActivation(t *testing.T) {
	g := pathGraph(1, 1)
	crashAt := []int{-1, 2, -1}
	activations := map[int][]int{}
	_, err := Run(Config{Graph: g, Mode: AllToAll, MaxRounds: 6, CrashAt: crashAt},
		func(nv *NodeView) Protocol {
			return &recordingProto{nv: nv, log: activations}
		}, StopNever())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range activations[1] {
		if r >= 2 {
			t.Fatalf("crashed node activated at round %d", r)
		}
	}
	if len(activations[0]) < 6 {
		t.Fatalf("healthy node stopped activating: %v", activations[0])
	}
}

// recordingProto activates neighbor 0 every round and records when.
type recordingProto struct {
	nv  *NodeView
	log map[int][]int
}

func (p *recordingProto) Activate(round int) (int, bool) {
	p.log[p.nv.ID()] = append(p.log[p.nv.ID()], round)
	return 0, true
}
func (p *recordingProto) OnDeliver(Delivery) {}

func TestCrashDropsInFlightExchanges(t *testing.T) {
	// Edge latency 5; node 1 crashes at round 3, before the round-0
	// exchange would deliver at round 5 — nothing must arrive.
	g := pathGraph(5)
	res, err := Run(Config{
		Graph: g, Mode: OneToAll, Source: 0, MaxRounds: 20,
		CrashAt: []int{-1, 3},
	}, func(nv *NodeView) Protocol {
		p := &fixedProtocol{nv: nv, schedule: map[int]int{}}
		if nv.ID() == 0 {
			p.schedule[0] = 0
		}
		return p
	}, StopNever())
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", res.Dropped)
	}
	if res.InformedAt[1] >= 0 {
		t.Fatal("crashed node received a delivery")
	}
}

func TestCrashBeforeDeliveryCutsBothWays(t *testing.T) {
	// The initiator also loses the response when the peer dies.
	g := pathGraph(5)
	got := 0
	_, err := Run(Config{
		Graph: g, Mode: AllToAll, MaxRounds: 20,
		CrashAt: []int{-1, 3},
	}, func(nv *NodeView) Protocol {
		p := &fixedProtocol{nv: nv, schedule: map[int]int{}}
		if nv.ID() == 0 {
			p.schedule[0] = 0
		}
		if nv.ID() == 0 {
			// count deliveries via closure below
		}
		return &countingProto{inner: p, hits: &got}
	}, StopNever())
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("deliveries = %d, want 0 (exchange lost)", got)
	}
}

type countingProto struct {
	inner Protocol
	hits  *int
}

func (p *countingProto) Activate(round int) (int, bool) { return p.inner.Activate(round) }
func (p *countingProto) OnDeliver(d Delivery)           { *p.hits++ }

func TestStopAllAliveInformed(t *testing.T) {
	g := pathGraph(1, 100)
	// Node 2 is behind a latency-100 edge and crashes at round 1: the
	// run should stop once nodes 0 and 1 are informed.
	res, err := Run(Config{
		Graph: g, Mode: OneToAll, Source: 0, MaxRounds: 1000,
		CrashAt: []int{-1, -1, 1},
	}, func(nv *NodeView) Protocol {
		p := &fixedProtocol{nv: nv, schedule: map[int]int{}}
		if nv.ID() == 0 {
			p.schedule[0] = 0
		}
		return p
	}, StopAllAliveInformed(0))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("did not complete over survivors")
	}
	if res.Rounds > 2 {
		t.Fatalf("rounds = %d, want <= 2", res.Rounds)
	}
}

func TestCrashConfigValidation(t *testing.T) {
	g := pathGraph(1)
	_, err := Run(Config{Graph: g, MaxRounds: 5, CrashAt: []int{1}},
		func(nv *NodeView) Protocol { return &fixedProtocol{nv: nv} }, StopNever())
	if err == nil {
		t.Fatal("expected error for wrong-length CrashAt")
	}
}

func TestMaxInPerRoundCap(t *testing.T) {
	// Star: all 4 leaves contact the center at round 0 with cap 1 —
	// exactly one exchange goes through.
	g := graph.New(5)
	for v := 1; v < 5; v++ {
		g.MustAddEdge(0, v, 1)
	}
	res, err := Run(Config{
		Graph: g, Mode: AllToAll, MaxRounds: 3, MaxInPerRound: 1,
	}, func(nv *NodeView) Protocol {
		p := &fixedProtocol{nv: nv, schedule: map[int]int{}}
		if nv.ID() != 0 {
			p.schedule[0] = 0
		}
		return p
	}, StopNever())
	if err != nil {
		t.Fatal(err)
	}
	if res.Exchanges != 1 {
		t.Fatalf("Exchanges = %d, want 1 (cap)", res.Exchanges)
	}
	if res.Dropped != 3 {
		t.Fatalf("Dropped = %d, want 3", res.Dropped)
	}
}

func TestMultiSourceSeeding(t *testing.T) {
	g := pathGraph(1, 1, 1)
	res, err := Run(Config{
		Graph: g, Mode: OneToAll, Sources: []graph.NodeID{0, 3}, MaxRounds: 10,
	}, func(nv *NodeView) Protocol {
		return &fixedProtocol{nv: nv, schedule: map[int]int{}}
	}, StopNever())
	if err != nil {
		t.Fatal(err)
	}
	rumors := res.FinalRumors()
	if !rumors[0].Contains(0) || !rumors[3].Contains(3) {
		t.Fatal("sources not seeded")
	}
	if rumors[1].Contains(1) {
		t.Fatal("non-source seeded in multi-source mode")
	}
}

func TestSpreadCurve(t *testing.T) {
	r := Result{Rounds: 4, InformedAt: []int{0, 2, 2, -1, 4}}
	curve := r.SpreadCurve()
	want := []int{1, 1, 3, 3, 4}
	if len(curve) != len(want) {
		t.Fatalf("curve = %v, want %v", curve, want)
	}
	for i := range want {
		if curve[i] != want[i] {
			t.Fatalf("curve = %v, want %v", curve, want)
		}
	}
	if ht := r.HalfTime(); ht != 2 {
		t.Fatalf("HalfTime = %d, want 2", ht)
	}
}

func TestHalfTimeNever(t *testing.T) {
	r := Result{Rounds: 3, InformedAt: []int{0, -1, -1, -1}}
	if ht := r.HalfTime(); ht != -1 {
		t.Fatalf("HalfTime = %d, want -1", ht)
	}
}
