package sim

import (
	"reflect"
	"strings"
	"testing"

	"gossip/internal/adversity"
	"gossip/internal/graph"
)

// distMetaProto exercises the full distributed facet surface the real
// meta protocols (DTG, superstep) use: []int32 exchange metadata that
// feeds back into behavior, a DoneReporter whose flag flips inside
// Activate, Sleeper parking, and amnesia restart — so any divergence in
// how metas or done flags cross shard boundaries changes the
// fingerprint.
type distMetaProto struct {
	nv    *NodeView
	heard map[int32]bool
	done  bool
}

func newDistMetaProto(nv *NodeView) *distMetaProto {
	p := &distMetaProto{nv: nv, heard: map[int32]bool{}}
	p.heard[int32(nv.ID())] = true
	return p
}

func (p *distMetaProto) Meta() any {
	out := make([]int32, 0, len(p.heard))
	for r := range p.heard {
		out = append(out, r)
	}
	// map order is nondeterministic; metas must be deterministic data.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func (p *distMetaProto) Done() bool { return p.done }

func (p *distMetaProto) Activate(int) (int, bool) {
	if p.done {
		return 0, false
	}
	// Done flips during Activate (like DTG.startIteration), pinning the
	// pre- vs post-activation capture split.
	missing := -1
	for i := 0; i < p.nv.Degree(); i++ {
		if !p.heard[int32(p.nv.NeighborID(i))] {
			missing = i
			break
		}
	}
	if missing < 0 {
		p.done = true
		return 0, false
	}
	// Behavior depends on the heard set, which grows from peer metas:
	// a meta delivery divergence changes the activation sequence.
	return missing, true
}

func (p *distMetaProto) OnDeliver(d Delivery) {
	if peer, ok := d.PeerMeta.([]int32); ok {
		for _, r := range peer {
			p.heard[r] = true
		}
	}
	p.heard[int32(d.Peer)] = true
}

func (p *distMetaProto) NextWake(round int) int {
	if p.done {
		return WakeOnDelivery
	}
	return round + 1
}

func (p *distMetaProto) OnAmnesia() {
	p.heard = map[int32]bool{int32(p.nv.ID()): true}
	p.done = false
}

// TestDistMatchesSerial is the distributed bit-identity gate at the
// engine level: RunDistLocal must reproduce the serial Run fingerprint —
// counters, informed times, every node's gain journal — for every shard
// count, across seeding modes, fail-stop crashes and the full adversity
// surface (loss draws, amnesic churn, link flaps, crash batches).
func TestDistMatchesSerial(t *testing.T) {
	const n = 37
	g := denseTestGraph(n)
	crashAt := make([]int, n)
	for u := range crashAt {
		crashAt[u] = -1
	}
	crashAt[5], crashAt[11] = 4, 9
	cfgs := map[string]Config{
		"plain":    {Graph: g, Seed: 42, Mode: OneToAll, Source: 0, MaxRounds: 1 << 12},
		"alltoall": {Graph: g, Seed: 7, Mode: AllToAll, MaxRounds: 1 << 12},
		"crashes":  {Graph: g, Seed: 11, Mode: OneToAll, Source: 1, MaxRounds: 1 << 12, CrashAt: crashAt},
		"adversity": {Graph: g, Seed: 3, Mode: OneToAll, Source: 2, MaxRounds: 1 << 12,
			Adversity: adversity.MustParseSpec("loss=0.15;churn=2:6-14:amnesia;flap=0-1:3-8;crash=9:5")},
	}
	for name, base := range cfgs {
		t.Run(name, func(t *testing.T) {
			stop := StopAllInformed(base.Source)
			switch {
			case base.Mode == AllToAll:
				stop = StopAllHaveAll()
			case base.CrashAt != nil:
				stop = StopAllAliveInformed(base.Source)
			case base.Adversity != nil:
				stop = StopAllSurvivorsInformed(base.Source, nil, base.Adversity)
			}
			factory := func(nv *NodeView) Protocol { return &randomProto{nv: nv} }
			serial, err := Run(base, factory, stop)
			if err != nil {
				t.Fatal(err)
			}
			want := fingerprint(serial)
			for _, shards := range []int{2, 3, 5} {
				res, stats, err := RunDistLocal(base, shards, factory, stop)
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				// The assembled World is shard 0's replica: journals are
				// synchronized every round, so the fingerprint matches in
				// full.
				got := fingerprint(res)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("shards=%d diverged from serial:\n got %+v\nwant %+v", shards, got, want)
				}
				var rounds int64
				for i := range stats {
					rounds += stats[i].Rounds
				}
				if rounds == 0 {
					t.Fatalf("shards=%d: no rounds recorded in stats", shards)
				}
			}
		})
	}
}

// TestDistMetaProtocols covers the meta sub-barrier: protocols whose
// behavior depends on peer metadata (the DTG/superstep shape) must be
// bit-identical distributed, including under amnesic churn, and the
// StopAllDone path must agree with the serial facet scan.
func TestDistMetaProtocols(t *testing.T) {
	g := denseTestGraph(29)
	cfgs := map[string]Config{
		"benign": {Graph: g, Seed: 17, Mode: AllToAll, MaxRounds: 1 << 12, KnownLatencies: true},
		"churny": {Graph: g, Seed: 23, Mode: AllToAll, MaxRounds: 1 << 12, KnownLatencies: true,
			Adversity: adversity.MustParseSpec("churn=3:2-9:amnesia;flap=1-2:3-7")},
	}
	factory := func(nv *NodeView) Protocol { return newDistMetaProto(nv) }
	for name, cfg := range cfgs {
		t.Run(name, func(t *testing.T) {
			serial, err := Run(cfg, factory, StopAllDone())
			if err != nil {
				t.Fatal(err)
			}
			if !serial.Completed {
				t.Fatalf("serial meta run did not complete: %+v", serial)
			}
			want := fingerprint(serial)
			for _, shards := range []int{2, 4} {
				res, stats, err := RunDistLocal(cfg, shards, factory, StopAllDone())
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				got := fingerprint(res)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("shards=%d diverged from serial:\n got %+v\nwant %+v", shards, got, want)
				}
				var cross int64
				for i := range stats {
					cross += stats[i].CrossIntents
				}
				if cross == 0 {
					t.Fatalf("shards=%d: no cross-shard intents — the meta barrier was never exercised", shards)
				}
			}
		})
	}
}

// TestDistRejectsUnsupported pins the distributed gating: configurations
// whose serial semantics cannot be replicated shard-locally are refused
// up front, not silently diverged from.
func TestDistRejectsUnsupported(t *testing.T) {
	g := denseTestGraph(8)
	factory := func(nv *NodeView) Protocol { return &randomProto{nv: nv} }
	cases := []struct {
		name string
		cfg  Config
		dc   DistConfig
		want string
	}{
		{"one-shard", Config{Graph: g}, DistConfig{Shard: 0, Shards: 1, Exchanger: NewLocalExchange(1)}, "at least 2 shards"},
		{"bad-shard", Config{Graph: g}, DistConfig{Shard: 2, Shards: 2, Exchanger: NewLocalExchange(2)}, "out of range"},
		{"no-exchanger", Config{Graph: g}, DistConfig{Shard: 0, Shards: 2}, "exchanger"},
		{"bounded-in", Config{Graph: g, MaxInPerRound: 2}, DistConfig{Shard: 0, Shards: 2, Exchanger: NewLocalExchange(2)}, "bounded in-degree"},
		{"jitter", Config{Graph: g, LatencyJitter: 0.2}, DistConfig{Shard: 0, Shards: 2, Exchanger: NewLocalExchange(2)}, "latency jitter"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := RunDist(tc.cfg, tc.dc, factory, StopNever())
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v, want one containing %q", err, tc.want)
			}
		})
	}
}

// badIdxProto returns an invalid neighbor index at round 3 on one node.
type badIdxProto struct {
	nv  *NodeView
	bad bool
}

func (p *badIdxProto) Activate(round int) (int, bool) {
	if p.bad && round >= 3 {
		return 99, true
	}
	return p.nv.RNG().IntN(p.nv.Degree()), true
}
func (p *badIdxProto) OnDeliver(Delivery) {}

// TestDistErrorPropagates: an activation error on one shard must abort
// every worker with that error (shipped through the frame, applied after
// the barrier), matching the serial engine's error.
func TestDistErrorPropagates(t *testing.T) {
	g := denseTestGraph(16)
	factory := func(nv *NodeView) Protocol {
		return &badIdxProto{nv: nv, bad: nv.ID() == 12} // owned by the last shard
	}
	cfg := Config{Graph: g, Seed: 1, Mode: OneToAll, Source: 0, MaxRounds: 64}
	_, serialErr := Run(cfg, factory, StopAllInformed(0))
	if serialErr == nil {
		t.Fatal("serial run did not error")
	}
	_, _, err := RunDistLocal(cfg, 3, factory, StopAllInformed(0))
	if err == nil || !strings.Contains(err.Error(), "invalid neighbor index") {
		t.Fatalf("distributed error %v, want activation error like serial %v", err, serialErr)
	}
}

// TestDistManyShards: more shards than convenient divisors (including
// empty tail shards when shards > n) still assemble the serial result.
func TestDistManyShards(t *testing.T) {
	g := graph.New(5)
	for u := 0; u < 4; u++ {
		g.MustAddEdge(u, u+1, 1+u%2)
	}
	cfg := Config{Graph: g, Seed: 4, Mode: OneToAll, Source: 0, MaxRounds: 1 << 10}
	factory := func(nv *NodeView) Protocol { return &randomProto{nv: nv} }
	serial, err := Run(cfg, factory, StopAllInformed(0))
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(serial)
	for _, shards := range []int{2, 5, 7} {
		res, _, err := RunDistLocal(cfg, shards, factory, StopAllInformed(0))
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if got := fingerprint(res); !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d diverged from serial", shards)
		}
	}
}
