package sim

import (
	"testing"
)

// sleepyProtocol initiates per a fixed schedule and parks between
// scheduled rounds, counting how often the engine actually wakes it.
type sleepyProtocol struct {
	nv        *NodeView
	schedule  map[int]int // round -> neighbor index
	lastRound int         // largest scheduled round
	calls     int
	delivers  []Delivery
}

func newSleepy(nv *NodeView, schedule map[int]int) *sleepyProtocol {
	s := &sleepyProtocol{nv: nv, schedule: schedule, lastRound: -1}
	for r := range schedule {
		if r > s.lastRound {
			s.lastRound = r
		}
	}
	return s
}

func (s *sleepyProtocol) Activate(round int) (int, bool) {
	s.calls++
	idx, ok := s.schedule[round]
	return idx, ok
}

func (s *sleepyProtocol) OnDeliver(d Delivery) { s.delivers = append(s.delivers, d) }

func (s *sleepyProtocol) NextWake(round int) int {
	for r := round + 1; r <= s.lastRound; r++ {
		if _, ok := s.schedule[r]; ok {
			return r
		}
	}
	return WakeOnDelivery
}

// TestCalendarSkipsIdleSpans is the point of the event engine: a
// latency-1000 edge must not cost 1000 activation scans. The initiator is
// woken only for its scheduled round and its delivery.
func TestCalendarSkipsIdleSpans(t *testing.T) {
	g := pathGraph(1000)
	protos := map[int]*sleepyProtocol{}
	res, err := Run(Config{Graph: g, Mode: OneToAll, Source: 0, MaxRounds: 1 << 20},
		func(nv *NodeView) Protocol {
			sched := map[int]int{}
			if nv.ID() == 0 {
				sched[0] = 0
			}
			p := newSleepy(nv, sched)
			protos[nv.ID()] = p
			return p
		}, StopAllInformed(0))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Rounds != 1000 {
		t.Fatalf("run: %+v, want completion at 1000", res)
	}
	// Round 0 (scheduled), round 1 (post-activity check), round 1000
	// (delivery wake): a handful of calls, not ~1000.
	if protos[0].calls > 5 {
		t.Fatalf("initiator woken %d times across a 1000-round idle span", protos[0].calls)
	}
	if protos[1].calls > 5 {
		t.Fatalf("target woken %d times across a 1000-round idle span", protos[1].calls)
	}
}

// TestDeliveryNewsDelta pins the per-edge high-water semantics: the
// second exchange on an edge carries only rumors gained since the first.
func TestDeliveryNewsDelta(t *testing.T) {
	// Path 0-1-2 with latencies 3,1. Node 1 exchanges with 2 at round 0
	// (news: {1}), then gains rumor 2 (round 1, from that exchange) and
	// rumor 0 (round 3, from node 0), and exchanges with 2 again at round
	// 3: the delta is exactly those gains, [2 0] — rumor 1 is not resent.
	g := pathGraph(3, 1)
	var deliveries *sleepyProtocol
	_, err := Run(Config{Graph: g, Mode: AllToAll, MaxRounds: 20},
		func(nv *NodeView) Protocol {
			sched := map[int]int{}
			switch nv.ID() {
			case 0:
				sched[0] = 0
			case 1:
				idx := nv.NeighborIndex(2)
				sched[0] = idx
				sched[3] = idx
			}
			p := newSleepy(nv, sched)
			if nv.ID() == 2 {
				deliveries = p
			}
			return p
		}, StopAllHaveAll())
	if err != nil {
		t.Fatal(err)
	}
	if len(deliveries.delivers) != 2 {
		t.Fatalf("node 2 got %d deliveries, want 2", len(deliveries.delivers))
	}
	first, second := deliveries.delivers[0], deliveries.delivers[1]
	if len(first.News) != 1 || first.News[0] != 1 || first.NewRumors != 1 {
		t.Fatalf("first delivery news = %v (new %d), want [1]", first.News, first.NewRumors)
	}
	if len(second.News) != 2 || second.News[0] != 2 || second.News[1] != 0 || second.NewRumors != 1 {
		t.Fatalf("second delivery news = %v (new %d), want delta [2 0] with 1 new", second.News, second.NewRumors)
	}
}

// TestCrashRoundIsCalendarEvent: a stop condition quantifying over alive
// nodes can first hold at a crash round with no delivery or activation —
// the engine must process that round rather than jump past it.
func TestCrashRoundIsCalendarEvent(t *testing.T) {
	// Node 2 sits behind a latency-500 edge and crashes at round 7 while
	// node 1's round-1 exchange to it is still in flight (so the run
	// cannot quiesce). Nodes 0,1 are informed by round 1 and then park:
	// all survivors are informed exactly when node 2 dies.
	g := pathGraph(1, 500)
	res, err := Run(Config{
		Graph: g, Mode: OneToAll, Source: 0, MaxRounds: 1 << 20,
		CrashAt: []int{-1, -1, 7},
	}, func(nv *NodeView) Protocol {
		sched := map[int]int{}
		switch nv.ID() {
		case 0:
			sched[0] = 0
		case 1:
			sched[1] = nv.NeighborIndex(2)
		}
		return newSleepy(nv, sched)
	}, StopAllAliveInformed(0))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Rounds != 7 {
		t.Fatalf("run: %+v, want completion exactly at crash round 7", res)
	}
}

// TestScheduledWakeSuppressesQuiescence: a Sleeper that declares a finite
// future wake (a timer) keeps the run alive across an otherwise idle,
// nothing-in-flight span — the engine must jump to the scheduled round,
// not declare quiescence.
func TestScheduledWakeSuppressesQuiescence(t *testing.T) {
	g := pathGraph(1)
	protos := map[int]*sleepyProtocol{}
	res, err := Run(Config{Graph: g, Mode: OneToAll, Source: 0, MaxRounds: 1 << 20},
		func(nv *NodeView) Protocol {
			sched := map[int]int{}
			if nv.ID() == 0 {
				// Nothing until round 10: rounds 1-9 are idle with an
				// empty delivery heap.
				sched[10] = 0
			}
			p := newSleepy(nv, sched)
			protos[nv.ID()] = p
			return p
		}, StopAllInformed(0))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Rounds != 11 {
		t.Fatalf("run: %+v, want completion at 11 (round-10 exchange + latency 1)", res)
	}
	if res.Exchanges != 1 {
		t.Fatalf("exchanges = %d, want the scheduled round-10 initiation", res.Exchanges)
	}
	if protos[0].calls > 5 {
		t.Fatalf("initiator woken %d times; the idle span should be jumped, not scanned", protos[0].calls)
	}
}

// TestJournalMatchesRumorSet: the gain journal is an exact index of the
// rumor set, so FinalRumors (bitset view) and journals must agree.
func TestJournalMatchesRumorSet(t *testing.T) {
	g := pathGraph(1, 1, 1)
	res, err := Run(Config{Graph: g, Mode: AllToAll, Seed: 3, MaxRounds: 1 << 16},
		func(nv *NodeView) Protocol { return &randomProto{nv: nv} }, StopAllHaveAll())
	if err != nil {
		t.Fatal(err)
	}
	for u, nv := range res.World.Views {
		if len(nv.journal) != nv.rum.count() {
			t.Fatalf("node %d: journal length %d != rumor count %d", u, len(nv.journal), nv.rum.count())
		}
		seen := map[int32]bool{}
		for _, r := range nv.journal {
			if seen[r] {
				t.Fatalf("node %d: rumor %d journaled twice", u, r)
			}
			seen[r] = true
			if !nv.rum.contains(r) {
				t.Fatalf("node %d: journaled rumor %d missing from set", u, r)
			}
		}
	}
}
