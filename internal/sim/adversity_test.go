package sim

import (
	"reflect"
	"testing"

	"gossip/internal/adversity"
	"gossip/internal/graph"
	"gossip/internal/graphgen"
)

// randProtocol contacts a uniformly random neighbor every round — the
// minimal spreading protocol for engine tests (push-pull without the
// driver layer).
type randProtocol struct{ nv *NodeView }

func (p *randProtocol) Activate(int) (int, bool) {
	if p.nv.Degree() == 0 {
		return 0, false
	}
	return p.nv.RNG().IntN(p.nv.Degree()), true
}
func (p *randProtocol) OnDeliver(Delivery) {}

// TestStopAliveInformedUnderChurn is the stop-condition agreement gate:
// for schedules that take nodes down and bring them back (with and
// without amnesia), the O(n/64) word-level tally path of
// StopAllAliveInformed (alive ⊆ informed over the engine-maintained
// bitsets) must agree with the per-node scan at every single stop
// check, and the run must be identical at workers 1 and 8.
func TestStopAliveInformedUnderChurn(t *testing.T) {
	cases := []struct {
		name string
		spec *adversity.Spec
	}{
		{"retention", adversity.MustParseSpec("churn=3:2-9;churn=5:4-12")},
		{"amnesia", adversity.MustParseSpec("churn=3:2-9:amnesia;churn=1:5-11:amnesia")},
		// The permanent removals (6 and its cycle neighbor 5) stay
		// adjacent so no survivor is disconnected.
		{"mixed", adversity.MustParseSpec("churn=2:3-10:amnesia;churn=6:1-inf;crash=7:5")},
		{"source-amnesia", adversity.MustParseSpec("churn=0:3-8:amnesia")},
		{"flap-and-churn", adversity.MustParseSpec("flap=0-1:2-6;churn=7:4-13")},
	}
	g := graphgen.Cycle(10, 1)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var results []Result
			for _, workers := range []int{1, 8} {
				checks := 0
				fast := StopAllAliveInformed(0)
				stop := func(w *World) bool {
					checks++
					got := fast(w)
					// The per-node slow path: every alive node holds
					// rumor 0, probing each rumor set directly.
					want := true
					for u, nv := range w.Views {
						if w.Alive(u) && !nv.rum.contains(0) {
							want = false
							break
						}
					}
					if got != want {
						t.Fatalf("workers=%d round %d: tally path %v, per-node scan %v", workers, w.Round, got, want)
					}
					return got
				}
				res, err := Run(Config{
					Graph: g, Seed: 9, Mode: OneToAll, Source: 0,
					MaxRounds: 1 << 12, Adversity: tc.spec, Workers: workers,
				}, func(nv *NodeView) Protocol { return &randProtocol{nv} }, stop)
				if err != nil {
					t.Fatal(err)
				}
				if checks == 0 {
					t.Fatal("stop condition never evaluated")
				}
				res.World = nil // compare the value parts only
				results = append(results, res)
			}
			if !reflect.DeepEqual(results[0], results[1]) {
				t.Fatalf("workers diverge:\n w1 %+v\n w8 %+v", results[0], results[1])
			}
			if !results[0].Completed {
				t.Fatalf("churny broadcast did not complete: %+v", results[0])
			}
		})
	}
}

// TestAmnesiaResetsState pins the amnesia semantics: a node that
// rejoins with amnesia restarts from its initial assignment, its
// informed mark is rewound, and it can be re-informed afterwards.
func TestAmnesiaResetsState(t *testing.T) {
	// Path 0-1-2. Node 1 (degree-1 neighbor of the source) is
	// deterministically informed at round 1, then leaves at round 2 and
	// rejoins amnesic at 20 — forgetting rumor 0. Node 2 can only learn
	// the rumor through node 1, so completion proves re-dissemination.
	g := pathGraph(1, 1)
	spec := adversity.MustParseSpec("churn=1:2-20:amnesia")
	res, err := Run(Config{
		Graph: g, Seed: 5, Mode: OneToAll, Source: 0,
		MaxRounds: 1 << 10, Adversity: spec,
	}, func(nv *NodeView) Protocol { return &randProtocol{nv} }, StopAllInformed(0))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("incomplete: %+v", res)
	}
	// The amnesia reset rewound node 1's informed mark: its recorded
	// informed time must be after the rejoin, not the pre-leave round 1.
	if res.InformedAt[1] < 20 {
		t.Fatalf("node 1 informed at %d, before its amnesic rejoin at 20", res.InformedAt[1])
	}
	if res.InformedAt[2] <= res.InformedAt[1] {
		t.Fatalf("node 2 informed at %d, not after node 1's re-inform at %d", res.InformedAt[2], res.InformedAt[1])
	}
	if !res.World.Views[1].Knows(0) || !res.World.Views[2].Knows(0) {
		t.Fatal("nodes not informed at the end")
	}
}

// TestAmnesiaKeepsOwnRumor: in all-to-all mode an amnesic rejoin
// restarts from the initial assignment, which includes the node's own
// rumor — state is lost, identity is not.
func TestAmnesiaKeepsOwnRumor(t *testing.T) {
	g := graphgen.Clique(4, 1)
	spec := adversity.MustParseSpec("churn=1:2-30:amnesia")
	res, err := Run(Config{
		Graph: g, Seed: 5, Mode: AllToAll,
		MaxRounds: 1 << 10, Adversity: spec,
	}, func(nv *NodeView) Protocol { return &randProtocol{nv} }, StopAllHaveAll())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("all-to-all under amnesic churn incomplete: %+v", res)
	}
}

// TestLossDropsAreAccounted checks the loss bookkeeping at the engine
// level: on a two-node graph with total loss on the only edge, every
// exchange is dropped, nothing is delivered, and no rumor ever crosses.
func TestLossDropsAreAccounted(t *testing.T) {
	g := graph.New(2)
	g.MustAddEdge(0, 1, 1)
	spec := &adversity.Spec{EdgeLoss: []adversity.EdgeLoss{{U: 0, V: 1, P: 1}}}
	res, err := Run(Config{
		Graph: g, Seed: 1, Mode: OneToAll, Source: 0,
		MaxRounds: 64, Adversity: spec,
	}, func(nv *NodeView) Protocol { return &randProtocol{nv} }, StopAllInformed(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("rumor crossed a fully lossy edge")
	}
	if res.Delivered != 0 || res.RumorPayload != 0 {
		t.Fatalf("delivered %d payload %d on a fully lossy edge", res.Delivered, res.RumorPayload)
	}
	if res.Dropped == 0 {
		t.Fatal("no drops recorded")
	}
	if res.InformedAt[1] != -1 {
		t.Fatalf("node 1 informed at %d across a dead edge", res.InformedAt[1])
	}
}

// TestFlapWindowsDropExchanges: an exchange whose transit window
// touches a flap interval is lost; one that starts after the flap ends
// is delivered.
func TestFlapWindowsDropExchanges(t *testing.T) {
	g := pathGraph(4) // one edge, latency 4
	spec := &adversity.Spec{Flaps: []adversity.Flap{{U: 0, V: 1, From: 0, To: 3}}}
	// Initiate at rounds 0 (transit [0,4] overlaps the flap: lost) and
	// 3 (transit [3,7] misses [0,3): delivered).
	res, err := Run(Config{
		Graph: g, Seed: 1, Mode: OneToAll, Source: 0, MaxRounds: 64,
		Adversity: spec,
	}, func(nv *NodeView) Protocol {
		if nv.ID() != 0 {
			return &fixedProtocol{nv: nv, schedule: map[int]int{}}
		}
		return &fixedProtocol{nv: nv, schedule: map[int]int{0: 0, 3: 0}}
	}, StopAllInformed(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != 1 || res.Delivered != 1 {
		t.Fatalf("dropped %d delivered %d, want 1 and 1", res.Dropped, res.Delivered)
	}
	if res.InformedAt[1] != 7 {
		t.Fatalf("node 1 informed at %d, want 7 (the post-flap exchange)", res.InformedAt[1])
	}
}

// TestAdversityValidation: schedules referencing absent edges or
// out-of-range nodes must be rejected by Run.
func TestAdversityValidation(t *testing.T) {
	g := pathGraph(1, 1) // edges 0-1, 1-2 only
	for name, spec := range map[string]*adversity.Spec{
		"absent-flap-edge": {Flaps: []adversity.Flap{{U: 0, V: 2, From: 0, To: 5}}},
		"absent-loss-edge": {EdgeLoss: []adversity.EdgeLoss{{U: 0, V: 2, P: 0.5}}},
		"node-range":       {Churn: []adversity.Churn{{Node: 9, Leave: 0, Rejoin: 5}}},
		"bad-prob":         {Loss: 1.5},
	} {
		_, err := Run(Config{Graph: g, Mode: OneToAll, Source: 0, MaxRounds: 8, Adversity: spec},
			func(nv *NodeView) Protocol { return &randProtocol{nv} }, StopNever())
		if err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestBenignSpecMatchesNil: an empty adversity spec must not perturb a
// run in any way (no extra RNG draws, identical results).
func TestBenignSpecMatchesNil(t *testing.T) {
	g := graphgen.Clique(8, 2)
	run := func(spec *adversity.Spec) Result {
		res, err := Run(Config{Graph: g, Seed: 3, Mode: OneToAll, Source: 0, MaxRounds: 1 << 10, Adversity: spec},
			func(nv *NodeView) Protocol { return &randProtocol{nv} }, StopAllInformed(0))
		if err != nil {
			t.Fatal(err)
		}
		res.World = nil
		return res
	}
	if a, b := run(nil), run(&adversity.Spec{}); !reflect.DeepEqual(a, b) {
		t.Fatalf("empty spec diverges from nil:\n nil   %+v\n empty %+v", a, b)
	}
}
