package envelope

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"gossip/internal/curve"
)

// linearCurve builds a curve gaining `step` nodes per round from 1 up
// to final.
func linearCurve(final, step int) curve.Curve {
	c := curve.Curve{{Round: 0, Informed: 1}}
	informed := 1
	for r := 1; informed < final; r++ {
		informed += step
		if informed > final {
			informed = final
		}
		c = append(c, curve.Point{Round: r, Informed: float64(informed)})
	}
	return c
}

// syntheticReplicas builds a small family of slightly jittered
// exponential spread curves, the shape one-to-all gossip produces.
func syntheticReplicas(n, count int, seed uint64) []curve.Curve {
	rng := rand.New(rand.NewPCG(seed, seed))
	out := make([]curve.Curve, count)
	for i := range out {
		c := curve.Curve{{Round: 0, Informed: 1}}
		informed := 1.0
		for r := 1; informed < float64(n); r++ {
			informed *= 1.6 + 0.2*rng.Float64()
			if informed > float64(n) {
				informed = float64(n)
			}
			c = append(c, curve.Point{Round: r, Informed: informed})
		}
		out[i] = c
	}
	return out
}

// TestBuildDeterministic pins the construction contract: the same
// replicas yield a byte-identical envelope, run after run.
func TestBuildDeterministic(t *testing.T) {
	reps := syntheticReplicas(1000, 8, 42)
	a, err := Build(reps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(reps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two builds over the same replicas differ:\n%+v\n%+v", a, b)
	}
	// Order independence: bounds are min/max over replicas.
	rev := make([]curve.Curve, len(reps))
	for i, c := range reps {
		rev[len(reps)-1-i] = c
	}
	c, err := Build(rev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, c) {
		t.Fatal("replica order changed the envelope")
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, Options{}); err == nil {
		t.Fatal("empty replica set accepted")
	}
	if _, err := Build([]curve.Curve{linearCurve(10, 1)}, Options{}); err == nil {
		t.Fatal("single replica accepted")
	}
	if _, err := Build([]curve.Curve{linearCurve(10, 1), nil}, Options{}); err == nil {
		t.Fatal("empty replica accepted")
	}
	flat := curve.Curve{{Round: 0, Informed: 1}}
	if _, err := Build([]curve.Curve{flat, flat}, Options{}); err == nil {
		t.Fatal("degenerate (no-spread) replicas accepted")
	}
}

func TestBuildBoundsContainReplicas(t *testing.T) {
	reps := syntheticReplicas(500, 6, 7)
	e, err := Build(reps, Options{Levels: 48})
	if err != nil {
		t.Fatal(err)
	}
	// Every replica must lie inside its own envelope even at Dilation 1.
	e.Opts.Dilation = 1
	for i, c := range reps {
		if err := e.Check(c); err != nil {
			t.Fatalf("replica %d outside its own envelope: %v", i, err)
		}
	}
	if e.FinalLo != 500 || e.FinalHi != 500 {
		t.Fatalf("final bounds [%g, %g], want [500, 500]", e.FinalLo, e.FinalHi)
	}
	if e.DIntra < 0 {
		t.Fatalf("negative DIntra %g", e.DIntra)
	}
}

// TestCheckBoundaryClassification is the synthetic boundary table: a
// family of linear curves with per-round incidence in [2, 4] (steps 2,
// 3, 4), then candidates engineered to sit inside, on, and outside the
// dilated bounds.
func TestCheckBoundaryClassification(t *testing.T) {
	// 145 = 1 + 144, and 144 is divisible by every step used below, so
	// no curve has a clipped (fractional-incidence) final segment and
	// the boundary arithmetic is exact.
	reps := []curve.Curve{linearCurve(145, 2), linearCurve(145, 3), linearCurve(145, 4)}
	e, err := Build(reps, Options{Levels: 16, Dilation: 2})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		cand   curve.Curve
		inside bool
	}{
		// Incidence 3 everywhere: strictly interior.
		{"interior", linearCurve(145, 3), true},
		// Incidence 1 = exactly Lo/Dilation (2/2): boundary, inclusive.
		{"on lower boundary", linearCurve(145, 1), true},
		// Incidence 8 = exactly Hi*Dilation (4*2): boundary, inclusive.
		{"on upper boundary", linearCurve(145, 8), true},
		// Incidence 9 > 8: one step past the upper boundary.
		{"past upper boundary", linearCurve(145, 9), false},
		// A curve that stalls at half the final size: the incidence
		// profile matches but the plateau is short (73 = 1 + 72).
		{"stalls below final size", linearCurve(73, 3), false},
		// Overshooting the final size (more nodes than any replica saw;
		// 217 = 1 + 216).
		{"overshoots final size", linearCurve(217, 3), false},
	}
	for _, tc := range cases {
		err := e.Check(tc.cand)
		if tc.inside && err != nil {
			t.Errorf("%s: classified outside: %v", tc.name, err)
		}
		if !tc.inside && err == nil {
			t.Errorf("%s: classified inside, want outside", tc.name)
		}
	}
	// Sub-lower-incidence *interior* violation: halve incidence below
	// Lo/Dilation while still finishing. Incidence 0.9 < 1 everywhere.
	slow := curve.Curve{{Round: 0, Informed: 1}}
	informed := 1.0
	for r := 1; informed < 145; r++ {
		informed += 0.9
		if informed > 145 {
			informed = 145
		}
		slow = append(slow, curve.Point{Round: r, Informed: informed})
	}
	if err := e.Check(slow); err == nil {
		t.Error("sub-lower-bound incidence classified inside")
	}
}

// TestCheckDilationAbsorbsTimeScale pins the reason Dilation exists: a
// candidate that is exactly a 2x time-dilated replica (the real mesh's
// two-tick round trips) passes at Dilation 2 and fails at Dilation 1.
func TestCheckDilationAbsorbsTimeScale(t *testing.T) {
	reps := []curve.Curve{linearCurve(145, 3), linearCurve(145, 4)}
	e, err := Build(reps, Options{Levels: 16, Dilation: 2})
	if err != nil {
		t.Fatal(err)
	}
	dilated := make(curve.Curve, 0)
	for _, p := range linearCurve(145, 3) {
		dilated = append(dilated, curve.Point{Round: 2 * p.Round, Informed: p.Informed})
	}
	if err := e.Check(dilated); err != nil {
		t.Fatalf("2x-dilated replica outside Dilation-2 envelope: %v", err)
	}
	e.Opts.Dilation = 1
	if err := e.Check(dilated); err == nil {
		t.Fatal("2x-dilated replica inside Dilation-1 envelope")
	}
}

func TestCheckFinalSlack(t *testing.T) {
	reps := []curve.Curve{linearCurve(100, 3), linearCurve(100, 4)}
	e, err := Build(reps, Options{Levels: 8})
	if err != nil {
		t.Fatal(err)
	}
	short := linearCurve(96, 3)
	if err := e.Check(short); err == nil {
		t.Fatal("4% final shortfall passed with zero slack")
	}
	e.Opts.FinalSlack = 0.05
	if err := e.Check(short); err != nil {
		t.Fatalf("4%% final shortfall failed with 5%% slack: %v", err)
	}
}

// TestCheckBandTolerance pins the statistical knob: a candidate with a
// few outlier levels passes once BandTolerance covers them, but a
// final-size violation is never tolerated.
func TestCheckBandTolerance(t *testing.T) {
	reps := []curve.Curve{linearCurve(145, 3), linearCurve(145, 4)}
	e, err := Build(reps, Options{Levels: 16, Dilation: 1})
	if err != nil {
		t.Fatal(err)
	}
	// One slow stretch: incidence 1 (below Lo=3) while informed crosses
	// a couple of levels, normal speed elsewhere.
	cand := curve.Curve{{Round: 0, Informed: 1}}
	informed, round := 1, 0
	for informed < 145 {
		step := 3
		if informed > 60 && informed < 80 {
			step = 1
		}
		informed += step
		if informed > 145 {
			informed = 145
		}
		round++
		cand = append(cand, curve.Point{Round: round, Informed: float64(informed)})
	}
	if err := e.Check(cand); err == nil {
		t.Fatal("outlier levels passed with zero tolerance")
	}
	e.Opts.BandTolerance = 0.25
	if err := e.Check(cand); err != nil {
		t.Fatalf("outlier levels failed with 25%% tolerance: %v", err)
	}
	// Tolerance never excuses a final-size violation.
	if err := e.Check(linearCurve(73, 3)); err == nil {
		t.Fatal("final-size violation tolerated")
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Level: -1, Got: 50, Lo: 100, Hi: 100}
	if v.String() == "" {
		t.Fatal("empty final-size violation string")
	}
	v = Violation{Level: 10, Got: 9, Lo: 1, Hi: 8}
	if v.String() == "" {
		t.Fatal("empty band violation string")
	}
}
