// Package envelope derives statistical spread-curve envelopes from
// simulator replicas and classifies real-network runs against them.
//
// Real-transport executions (package transport, gossip.RunNet) are
// nondeterministic: goroutine scheduling, socket timing and inbox drops
// make every run unique, so no golden output can validate them. What
// the simulator *can* predict is the family of spread curves a
// (graph, protocol, seed-family) induces. An Envelope captures that
// family in ICC space (incidence vs cumulative informed, after Lega,
// "Parameter Estimation from ICC curves"): per-level incidence bounds
// over N simulated replicas, plus final-size bounds. ICC coordinates
// are invariant under time shifts, and the Check tolerance absorbs
// uniform time dilation — a real mesh whose exchange round-trip spans
// ~2 ticks instead of the calendar's collapsed single round scales
// every incidence by the same factor, which a per-level slack of
// Dilation accepts without accepting differently *shaped* spreads.
//
// Everything here is a pure function evaluated in fixed order: the same
// replicas yield a bit-identical envelope, so envelopes themselves are
// testable deterministically even though the runs they classify are not.
package envelope

import (
	"fmt"
	"math"

	"gossip/internal/curve"
)

// Options shape envelope construction and classification.
type Options struct {
	// Levels is the number of cumulative levels bounds are evaluated at
	// (default 32). Levels span the replicas' common cumulative range.
	Levels int
	// Dilation is the per-level incidence slack factor (default 2):
	// a candidate incidence x passes a band [lo, hi] when
	// lo/Dilation <= x <= hi*Dilation (with lo-side slack waived where
	// the candidate has no segment at that level, see Check). It absorbs
	// a uniform time-scale difference between the calendar's round model
	// and real round-trips of up to the same factor.
	Dilation float64
	// FinalSlack is the allowed relative deviation of the candidate's
	// final size from the replica bounds (default 0: the candidate must
	// finish inside [FinalLo, FinalHi] exactly — for one-to-all runs on
	// n nodes, every replica finishes at n, so a real run must too).
	FinalSlack float64
	// BandTolerance is the fraction of band checks allowed to fail
	// before Check fails (default 0: any band violation fails). Real
	// fabrics jitter: one slow tick puts a momentary incidence of 1 at
	// one level even when the spread's shape is right, so statistical
	// consumers accept a small fraction of outlier levels. Final-size
	// violations are never tolerated.
	BandTolerance float64
}

func (o Options) withDefaults() Options {
	if o.Levels <= 0 {
		o.Levels = 32
	}
	if o.Dilation <= 0 {
		o.Dilation = 2
	}
	return o
}

// Band is the incidence interval observed across replicas at one
// cumulative level.
type Band struct {
	Level float64 `json:"level"`
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"`
}

// Envelope is the ICC-space spread-curve family of a (graph, protocol,
// seed-family) triple, derived from N simulator replicas.
type Envelope struct {
	// Bands are the per-level incidence bounds, ascending by level.
	Bands []Band `json:"bands"`
	// FinalLo/FinalHi bound the replicas' final cumulative size.
	FinalLo float64 `json:"final_lo"`
	FinalHi float64 `json:"final_hi"`
	// RoundsLo/RoundsHi bound the replicas' completion rounds — not used
	// for classification (ICC space has no time axis) but the handle
	// callers size real-run horizons with.
	RoundsLo int `json:"rounds_lo"`
	RoundsHi int `json:"rounds_hi"`
	// DIntra is the maximum pairwise ICC distance among the replicas
	// themselves: how spread the simulated family already is, the scale
	// any real-run deviation should be read against.
	DIntra float64 `json:"d_intra"`
	// Replicas is the number of curves the envelope was built from.
	Replicas int `json:"replicas"`
	// Opts echoes the construction options; Check reuses them.
	Opts Options `json:"opts"`
}

// Build derives the envelope of the given replica curves. At least two
// replicas are required — a single curve has no spread to bound.
// Construction is deterministic: same replicas in the same order yield
// a bit-identical envelope (and order only matters for nothing: bounds
// are min/max over replicas, so any order yields the same envelope).
func Build(replicas []curve.Curve, opts Options) (*Envelope, error) {
	opts = opts.withDefaults()
	if len(replicas) < 2 {
		return nil, fmt.Errorf("envelope: need >= 2 replicas, got %d", len(replicas))
	}
	for i, c := range replicas {
		if len(c) == 0 {
			return nil, fmt.Errorf("envelope: replica %d is empty", i)
		}
	}
	// The level grid spans the replicas' common cumulative range: above
	// every curve's starting count (incidence is 0 at or below it) and up
	// to the smallest final size.
	lo, hi := 0.0, math.Inf(1)
	e := &Envelope{
		FinalLo:  math.Inf(1),
		RoundsLo: math.MaxInt,
		Replicas: len(replicas),
		Opts:     opts,
	}
	for _, c := range replicas {
		if s := c[0].Informed; s > lo {
			lo = s
		}
		f := c.Final()
		if f < hi {
			hi = f
		}
		e.FinalLo = math.Min(e.FinalLo, f)
		e.FinalHi = math.Max(e.FinalHi, f)
		r := c.FinalRound()
		if r < e.RoundsLo {
			e.RoundsLo = r
		}
		if r > e.RoundsHi {
			e.RoundsHi = r
		}
	}
	if hi <= lo {
		return nil, fmt.Errorf("envelope: degenerate replicas (common cumulative range [%g, %g])", lo, hi)
	}
	e.Bands = make([]Band, opts.Levels)
	for k := range e.Bands {
		// Levels are placed strictly above lo: incidenceAt is 0 at a
		// curve's own starting count, which would pin every lower bound
		// to 0 at the first level.
		level := lo + (hi-lo)*float64(k+1)/float64(opts.Levels)
		b := Band{Level: level, Lo: math.Inf(1)}
		for _, c := range replicas {
			x := c.IncidenceAt(level)
			b.Lo = math.Min(b.Lo, x)
			b.Hi = math.Max(b.Hi, x)
		}
		e.Bands[k] = b
	}
	for i := range replicas {
		for j := i + 1; j < len(replicas); j++ {
			d := curve.ICCDistance(replicas[i], replicas[j])
			if d > e.DIntra {
				e.DIntra = d
			}
		}
	}
	return e, nil
}

// Violation describes one way a candidate curve left the envelope.
type Violation struct {
	// Level is the cumulative level of the violated band, or -1 for a
	// final-size violation.
	Level float64
	// Got is the candidate's incidence (or final size) there.
	Got float64
	// Lo, Hi are the allowed bounds after slack.
	Lo, Hi float64
}

func (v Violation) String() string {
	if v.Level < 0 {
		return fmt.Sprintf("final size %g outside [%g, %g]", v.Got, v.Lo, v.Hi)
	}
	return fmt.Sprintf("incidence %g at level %g outside [%g, %g]", v.Got, v.Level, v.Lo, v.Hi)
}

// Violations classifies a candidate curve against the envelope,
// returning every band and final-size bound it breaks (empty = inside).
// Band checks apply the Dilation slack both ways; the lower bound is
// additionally waived at levels where the candidate's transform is
// exactly 0 but the level lies outside the candidate's own cumulative
// range — classification there is the final-size check's job.
func (e *Envelope) Violations(c curve.Curve) []Violation {
	opts := e.Opts.withDefaults()
	var out []Violation
	slack := e.FinalHi * opts.FinalSlack
	final := c.Final()
	fLo, fHi := e.FinalLo-slack, e.FinalHi+slack
	if final < fLo || final > fHi {
		out = append(out, Violation{Level: -1, Got: final, Lo: fLo, Hi: fHi})
	}
	cLo := 0.0
	if len(c) > 0 {
		cLo = c[0].Informed
	}
	for _, b := range e.Bands {
		lo := b.Lo / opts.Dilation
		hi := b.Hi * opts.Dilation
		x := c.IncidenceAt(b.Level)
		if x == 0 && (b.Level <= cLo || b.Level > final) {
			// The level is outside the candidate's range entirely; the
			// final-size bound already scores that.
			continue
		}
		if x < lo || x > hi {
			out = append(out, Violation{Level: b.Level, Got: x, Lo: lo, Hi: hi})
		}
	}
	return out
}

// Check is Violations reduced to a verdict: nil when the candidate lies
// inside the envelope, an error naming the first few violations
// otherwise. A final-size violation always fails; band violations fail
// once they exceed BandTolerance·len(Bands).
func (e *Envelope) Check(c curve.Curve) error {
	vs := e.Violations(c)
	if len(vs) == 0 {
		return nil
	}
	finals, bands := 0, 0
	for _, v := range vs {
		if v.Level < 0 {
			finals++
		} else {
			bands++
		}
	}
	allowed := int(e.Opts.BandTolerance * float64(len(e.Bands)))
	if finals == 0 && bands <= allowed {
		return nil
	}
	msg := ""
	for i, v := range vs {
		if i == 3 {
			msg += fmt.Sprintf("; ... %d more", len(vs)-i)
			break
		}
		if i > 0 {
			msg += "; "
		}
		msg += v.String()
	}
	return fmt.Errorf("envelope: curve outside envelope (%d violations): %s", len(vs), msg)
}
