// Package cluster is gossipd's fleet layer: the consistent-hash ring
// that partitions the request cache across peers, and the shard RPC
// transport (coordinator relay + worker-side exchanger) that runs one
// simulation across several processes in lockstep.
//
// The package deliberately knows nothing about requests or drivers —
// frames in, frames out. Request parsing and validation stay in
// internal/server; the wire schema lives in internal/server/api.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// vnodes is the number of ring points per peer. 64 keeps the expected
// per-peer load imbalance in the low single-digit percent for small
// fleets while the ring stays a few KiB.
const vnodes = 64

// Ring is a consistent-hash ring over peer addresses. Keys are the
// sha256 canonical request keys the server already computes, so any
// fleet member maps any request to the same owner without coordination.
type Ring struct {
	points []ringPoint
	peers  []string
}

type ringPoint struct {
	hash uint64
	addr string
}

// NewRing builds a ring over the peer addresses (order-insensitive:
// point placement depends only on each address string). Duplicate
// addresses are collapsed.
func NewRing(peers []string) (*Ring, error) {
	seen := map[string]bool{}
	r := &Ring{}
	for _, p := range peers {
		if p == "" {
			return nil, fmt.Errorf("cluster: empty peer address")
		}
		if seen[p] {
			continue
		}
		seen[p] = true
		r.peers = append(r.peers, p)
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hashString(fmt.Sprintf("%s#%d", p, i)), addr: p})
		}
	}
	if len(r.peers) == 0 {
		return nil, fmt.Errorf("cluster: no peers")
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.addr < b.addr
	})
	sort.Strings(r.peers)
	return r, nil
}

// Owner returns the peer owning key: the first ring point clockwise
// from the key's hash.
func (r *Ring) Owner(key string) string {
	h := hashString(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].addr
}

// Peers returns the deduplicated member addresses in sorted order.
func (r *Ring) Peers() []string { return r.peers }

func hashString(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}
