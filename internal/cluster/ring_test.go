package cluster

import (
	"fmt"
	"sort"
	"testing"
)

func TestRingOwnerStableAcrossMemberOrder(t *testing.T) {
	peers := []string{"a:1", "b:2", "c:3", "d:4"}
	shuffled := []string{"c:3", "a:1", "d:4", "b:2"}
	r1, err := NewRing(peers)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing(shuffled)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 512; i++ {
		key := fmt.Sprintf("key-%d", i)
		if o1, o2 := r1.Owner(key), r2.Owner(key); o1 != o2 {
			t.Fatalf("owner of %q depends on membership order: %s vs %s", key, o1, o2)
		}
	}
}

func TestRingSpreadsKeys(t *testing.T) {
	peers := []string{"a:1", "b:2", "c:3"}
	r, err := NewRing(peers)
	if err != nil {
		t.Fatal(err)
	}
	owned := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		owned[r.Owner(fmt.Sprintf("req-%d", i))]++
	}
	for _, p := range peers {
		// 64 vnodes per peer keep the spread well inside a factor of two
		// of fair share; the floor here only guards against a peer being
		// starved or monopolizing.
		if owned[p] < keys/10 {
			t.Errorf("peer %s owns %d of %d keys, suspiciously few", p, owned[p], keys)
		}
	}
}

func TestRingPeersSortedAndDeduped(t *testing.T) {
	r, err := NewRing([]string{"b:2", "a:1", "b:2"})
	if err != nil {
		t.Fatal(err)
	}
	got := r.Peers()
	want := []string{"a:1", "b:2"}
	if !sort.StringsAreSorted(got) || len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Peers() = %v, want %v", got, want)
	}
}

func TestRingRejectsBadMembership(t *testing.T) {
	if _, err := NewRing(nil); err == nil {
		t.Error("NewRing(nil) succeeded")
	}
	if _, err := NewRing([]string{"a:1", ""}); err == nil {
		t.Error("NewRing with empty addr succeeded")
	}
}
