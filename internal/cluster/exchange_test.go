package cluster

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"gossip/internal/server/api"
	"gossip/internal/sim"
)

// shardServer accepts shard-session upgrades the way gossipd's handler
// does — minus the HTTP mux — and runs ServeShard with the given run
// callback. It lets the test drive DialShard/Relay end to end over real
// TCP without importing the server package (which imports this one).
func shardServer(t *testing.T, run func(job api.ShardJob, ex sim.Exchanger) (*api.ShardResult, error)) string {
	return shardServerIdle(t, 10*time.Second, run)
}

// shardServerIdle is shardServer with an explicit session idle window.
func shardServerIdle(t *testing.T, idle time.Duration, run func(job api.ShardJob, ex sim.Exchanger) (*api.ShardResult, error)) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				br := bufio.NewReader(conn)
				if _, err := http.ReadRequest(br); err != nil {
					return
				}
				bw := bufio.NewWriter(conn)
				fmt.Fprintf(bw, "HTTP/1.1 101 Switching Protocols\r\nConnection: Upgrade\r\nUpgrade: %s\r\n\r\n", api.ShardProtocol)
				if err := bw.Flush(); err != nil {
					return
				}
				_ = ServeShard(conn, bufio.NewReadWriter(br, bw), idle, run)
			}(conn)
		}
	}()
	return lis.Addr().String()
}

// echoWorker exchanges `rounds` round barriers and one meta barrier,
// verifying each relayed bundle holds every shard's frame in shard
// order, then reports a result derived from the job.
func echoWorker(rounds int) func(job api.ShardJob, ex sim.Exchanger) (*api.ShardResult, error) {
	return func(job api.ShardJob, ex sim.Exchanger) (*api.ShardResult, error) {
		for r := 0; r < rounds; r++ {
			f := sim.DistFrame{
				Round: r, Shard: job.Shard,
				Intents: []sim.DistIntent{{U: int32(job.Shard), Idx: 0, V: int32(r), VIdx: 1, Lat: 1}},
				Gains:   []sim.DistGain{{Node: int32(job.Shard), Rumor: int32(r)}},
				MinWake: sim.WakeOnDelivery, SleeperWake: sim.WakeOnDelivery, NextDeliver: -1,
			}
			bundle, err := ex.ExchangeFrames(&f)
			if err != nil {
				return nil, err
			}
			if len(bundle) != job.Shards {
				return nil, fmt.Errorf("bundle has %d frames, want %d", len(bundle), job.Shards)
			}
			for i, bf := range bundle {
				if bf.Shard != i || bf.Round != r || len(bf.Intents) != 1 || bf.Intents[0].U != int32(i) {
					return nil, fmt.Errorf("round %d slot %d holds shard %d round %d", r, i, bf.Shard, bf.Round)
				}
			}
		}
		mf := sim.DistMetaFrame{Round: rounds, Shard: job.Shard,
			Metas: []sim.DistNodeMeta{{Node: int32(job.Shard), Meta: []int32{int32(job.Shard)}}}}
		mb, err := ex.ExchangeMetas(&mf)
		if err != nil {
			return nil, err
		}
		for i, bf := range mb {
			if bf.Shard != i || len(bf.Metas) != 1 {
				return nil, fmt.Errorf("meta slot %d holds shard %d", i, bf.Shard)
			}
		}
		informed := []int{0, 1, 2}
		res := &api.ShardResult{
			Rounds: rounds, Completed: true,
			Exchanges: int64(job.Shard + 1), Messages: 2 * int64(job.Shard+1),
			Hash:  api.InformedHash(rounds, true, informed),
			Stats: sim.DistStats{Rounds: int64(rounds), Barriers: int64(rounds)},
		}
		if job.Shard == 0 {
			res.InformedAt = informed
		}
		return res, nil
	}
}

func dialWorkers(t *testing.T, addrs []string) []*WorkerConn {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	conns := make([]*WorkerConn, len(addrs))
	for i, addr := range addrs {
		job := api.ShardJob{SchemaVersion: 1, Shard: i, Shards: len(addrs), RequestKey: "k"}
		wc, err := DialShard(ctx, addr, job)
		if err != nil {
			t.Fatalf("dialing shard %d: %v", i, err)
		}
		t.Cleanup(wc.Close)
		conns[i] = wc
	}
	return conns
}

// TestRelayRoundTrip drives two real shard sessions — TCP dial, HTTP
// upgrade, job frame, three barriers, terminal results — through the
// coordinator relay and checks the assembled aggregate.
func TestRelayRoundTrip(t *testing.T) {
	const rounds = 2
	addr := shardServer(t, echoWorker(rounds))
	conns := dialWorkers(t, []string{addr, addr})
	agg, stats, err := Relay(context.Background(), conns)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Rounds != rounds || !agg.Completed {
		t.Fatalf("aggregate %+v", agg)
	}
	if agg.Exchanges != 3 || agg.Messages != 6 { // 1+2, 2+4: owner-attributed sums
		t.Fatalf("summed counters: %+v", agg)
	}
	if len(agg.InformedAt) != 3 {
		t.Fatalf("InformedAt %v", agg.InformedAt)
	}
	if len(stats) != 2 || stats[0].Barriers != rounds || stats[1].Barriers != rounds {
		t.Fatalf("stats %+v", stats)
	}
}

// TestRelayDivergence gives shard 1 a different terminal hash: the
// coordinator must refuse to assemble — the bit-identity cross-check.
func TestRelayDivergence(t *testing.T) {
	base := echoWorker(1)
	addr := shardServer(t, func(job api.ShardJob, ex sim.Exchanger) (*api.ShardResult, error) {
		res, err := base(job, ex)
		if err != nil {
			return nil, err
		}
		res.Hash += uint64(job.Shard) // shard 1 diverges
		return res, nil
	})
	conns := dialWorkers(t, []string{addr, addr})
	if _, _, err := Relay(context.Background(), conns); err == nil || !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("Relay = %v, want divergence error", err)
	}
}

// TestRelayWorkerError makes one worker fail mid-run: the relay must
// surface the shard error and abort every session.
func TestRelayWorkerError(t *testing.T) {
	addr := shardServer(t, func(job api.ShardJob, ex sim.Exchanger) (*api.ShardResult, error) {
		if job.Shard == 1 {
			return nil, fmt.Errorf("shard 1 exploded")
		}
		return echoWorker(0)(job, ex)
	})
	conns := dialWorkers(t, []string{addr, addr})
	_, _, err := Relay(context.Background(), conns)
	if err == nil {
		t.Fatal("Relay succeeded despite a failing worker")
	}
}

// TestServeShardSlowRunOutlivesIdleWindow is the regression test for
// the absolute-deadline bug: ServeShard used to set one absolute
// deadline at session start, so a healthy shard run whose total wall
// time exceeded the window was killed mid-barrier even though every
// barrier made progress. The deadline is now an idle window refreshed
// at each barrier: this run's total time is several multiples of the
// window, but no single barrier gap exceeds it, so it must complete.
func TestServeShardSlowRunOutlivesIdleWindow(t *testing.T) {
	const idle = 250 * time.Millisecond
	const rounds = 8 // 8 barriers x 90ms ≈ 720ms total, ~3x the window
	addr := shardServerIdle(t, idle, func(job api.ShardJob, ex sim.Exchanger) (*api.ShardResult, error) {
		for r := 0; r < rounds; r++ {
			time.Sleep(90 * time.Millisecond)
			f := sim.DistFrame{Round: r, Shard: job.Shard,
				MinWake: sim.WakeOnDelivery, SleeperWake: sim.WakeOnDelivery, NextDeliver: -1}
			if _, err := ex.ExchangeFrames(&f); err != nil {
				return nil, err
			}
		}
		informed := []int{0, 1}
		res := &api.ShardResult{Rounds: rounds, Completed: true,
			Hash: api.InformedHash(rounds, true, informed)}
		if job.Shard == 0 {
			res.InformedAt = informed
		}
		return res, nil
	})
	conns := dialWorkers(t, []string{addr, addr})
	agg, _, err := Relay(context.Background(), conns)
	if err != nil {
		t.Fatalf("slow-but-healthy shard run killed: %v", err)
	}
	if agg.Rounds != rounds || !agg.Completed {
		t.Fatalf("aggregate %+v", agg)
	}
}

// TestShardIdle pins the worker-side idle-window derivation: the job's
// own timeout plus slack, clamped to the worker's ceiling; jobs without
// a timeout (older coordinators) get the ceiling.
func TestShardIdle(t *testing.T) {
	ceiling := 10 * time.Minute
	if got := shardIdle(ceiling, 0); got != ceiling {
		t.Fatalf("no job timeout: %v, want ceiling %v", got, ceiling)
	}
	if got, want := shardIdle(ceiling, 60_000), time.Minute+shardIdleSlack; got != want {
		t.Fatalf("60s job: %v, want %v", got, want)
	}
	if got := shardIdle(40*time.Second, 60_000); got != 40*time.Second {
		t.Fatalf("clamp: %v, want the 40s ceiling", got)
	}
}

func TestServeShardRejectsBadJob(t *testing.T) {
	addr := shardServer(t, echoWorker(1))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// Shards < 2 is refused by the worker with an error frame, which
	// DialShard has no reason to read — the relay does.
	wc, err := DialShard(ctx, addr, api.ShardJob{Shard: 0, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	if _, _, err := Relay(ctx, []*WorkerConn{wc}); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("Relay = %v, want out-of-range job error", err)
	}
}

func TestDialShardRefused(t *testing.T) {
	// A plain HTTP server that never upgrades: DialShard must fail with
	// the refusal status, not hang.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		if _, err := http.ReadRequest(br); err != nil {
			return
		}
		fmt.Fprint(conn, "HTTP/1.1 503 Service Unavailable\r\nContent-Length: 0\r\n\r\n")
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := DialShard(ctx, lis.Addr().String(), api.ShardJob{Shard: 0, Shards: 2}); err == nil ||
		!strings.Contains(err.Error(), "refused") {
		t.Fatalf("DialShard = %v, want refusal", err)
	}
	// And a dead port errors at connect time.
	if _, err := DialShard(ctx, "127.0.0.1:1", api.ShardJob{Shard: 0, Shards: 2}); err == nil {
		t.Fatal("DialShard to a dead port succeeded")
	}
}
