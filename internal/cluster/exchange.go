package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"gossip/internal/server/api"
	"gossip/internal/sim"
)

// connExchange is the worker half of the shard RPC: a sim.Exchanger
// whose barrier is one frame write plus Shards frame reads on the
// coordinator connection. Decoded bundles are double-buffered to honor
// the Exchanger aliasing contract (returned frames stay valid until the
// caller's next call of the same kind) without per-barrier allocation.
type connExchange struct {
	rw     *bufio.ReadWriter
	conn   net.Conn      // deadline refresh target; nil in unit harnesses
	idle   time.Duration // per-barrier idle window (0: no deadline management)
	shards int
	enc    []byte // encode scratch
	rbuf   []byte // frame read scratch
	err    error  // sticky: once the stream breaks, every barrier fails

	frames     [2][]sim.DistFrame
	barriers   int
	metaFrames [2][]sim.DistMetaFrame
	metaBars   int
}

func newConnExchange(rw *bufio.ReadWriter, shards int) *connExchange {
	ex := &connExchange{rw: rw, shards: shards}
	for p := 0; p < 2; p++ {
		ex.frames[p] = make([]sim.DistFrame, shards)
		ex.metaFrames[p] = make([]sim.DistMetaFrame, shards)
	}
	return ex
}

// refresh pushes the connection deadline one idle window out. Called at
// every barrier, it gives the session idle-timeout semantics: the
// deadline fires only when the stream stops making progress, never
// because a healthy long run outlived one absolute deadline set at
// session start.
func (c *connExchange) refresh() {
	if c.conn != nil && c.idle > 0 {
		_ = c.conn.SetDeadline(time.Now().Add(c.idle))
	}
}

// readBundle reads the relayed bundle: Shards frames of the expected
// kind in shard order, or a single error frame from the coordinator.
func (c *connExchange) readBundle(kind byte, decode func(i int, payload []byte) error) error {
	for i := 0; i < c.shards; i++ {
		k, p, err := api.ReadFrame(c.rw.Reader, c.rbuf[:0])
		if err != nil {
			return fmt.Errorf("cluster: reading barrier bundle: %w", err)
		}
		c.rbuf = p
		switch k {
		case kind:
			if err := decode(i, p); err != nil {
				return err
			}
		case api.FrameError:
			return fmt.Errorf("cluster: coordinator aborted: %s", p)
		default:
			return fmt.Errorf("cluster: frame kind %d in a kind-%d bundle", k, kind)
		}
	}
	return nil
}

func (c *connExchange) ExchangeFrames(f *sim.DistFrame) ([]*sim.DistFrame, error) {
	if c.err != nil {
		return nil, c.err
	}
	c.refresh()
	c.enc = api.AppendRoundFrame(c.enc[:0], f)
	if err := api.WriteFrame(c.rw.Writer, api.FrameRound, c.enc); err != nil {
		c.err = err
		return nil, err
	}
	if err := c.rw.Writer.Flush(); err != nil {
		c.err = err
		return nil, err
	}
	slots := c.frames[c.barriers&1]
	c.barriers++
	bundle := make([]*sim.DistFrame, c.shards)
	err := c.readBundle(api.FrameRound, func(i int, p []byte) error {
		if err := api.DecodeRoundFrame(p, &slots[i]); err != nil {
			return err
		}
		if slots[i].Shard != i {
			return fmt.Errorf("cluster: bundle slot %d holds shard %d", i, slots[i].Shard)
		}
		bundle[i] = &slots[i]
		return nil
	})
	if err != nil {
		c.err = err
		return nil, err
	}
	return bundle, nil
}

func (c *connExchange) ExchangeMetas(f *sim.DistMetaFrame) ([]*sim.DistMetaFrame, error) {
	if c.err != nil {
		return nil, c.err
	}
	c.refresh()
	c.enc = api.AppendMetaFrame(c.enc[:0], f)
	if err := api.WriteFrame(c.rw.Writer, api.FrameMeta, c.enc); err != nil {
		c.err = err
		return nil, err
	}
	if err := c.rw.Writer.Flush(); err != nil {
		c.err = err
		return nil, err
	}
	slots := c.metaFrames[c.metaBars&1]
	c.metaBars++
	bundle := make([]*sim.DistMetaFrame, c.shards)
	err := c.readBundle(api.FrameMeta, func(i int, p []byte) error {
		if err := api.DecodeMetaFrame(p, &slots[i]); err != nil {
			return err
		}
		if slots[i].Shard != i {
			return fmt.Errorf("cluster: meta bundle slot %d holds shard %d", i, slots[i].Shard)
		}
		bundle[i] = &slots[i]
		return nil
	})
	if err != nil {
		c.err = err
		return nil, err
	}
	return bundle, nil
}

// shardIdleSlack pads the job's own execution timeout into the worker's
// idle window: the coordinator needs a moment beyond the job timeout to
// relay the last bundle or the abort frame.
const shardIdleSlack = 30 * time.Second

// shardIdle derives the worker session's per-barrier idle window: the
// job's own effective timeout plus relay slack, clamped to maxIdle (the
// worker's server-level ceiling — a coordinator cannot ask a worker to
// wait longer than the worker's own policy allows). A job that carries
// no timeout (an older coordinator) gets the ceiling.
func shardIdle(maxIdle time.Duration, timeoutMS int) time.Duration {
	if timeoutMS <= 0 {
		return maxIdle
	}
	d := time.Duration(timeoutMS)*time.Millisecond + shardIdleSlack
	if d > maxIdle {
		return maxIdle
	}
	return d
}

// ServeShard runs the worker half of one shard session on a hijacked
// connection whose 101 response has already been written: it reads the
// job frame, hands the job and a connected Exchanger to run, and
// terminates the stream with the result or error frame.
//
// maxIdle bounds how long the session may sit without frame progress,
// so an orphaned session cannot pin the connection forever. It is an
// idle window, not an absolute deadline: every barrier pushes the
// deadline out again, so a healthy run whose total wall time exceeds
// the window keeps going as long as frames keep flowing. Once the job
// frame arrives, the window tightens to the job's own timeout plus
// slack (shardIdle) — the coordinator abandons the job then, so waiting
// longer only pins a dead session.
func ServeShard(conn net.Conn, rw *bufio.ReadWriter, maxIdle time.Duration,
	run func(job api.ShardJob, ex sim.Exchanger) (*api.ShardResult, error)) error {
	_ = conn.SetDeadline(time.Now().Add(maxIdle))
	fail := func(err error) error {
		if werr := api.WriteFrame(rw.Writer, api.FrameError, []byte(err.Error())); werr == nil {
			_ = rw.Writer.Flush()
		}
		return err
	}
	kind, payload, err := api.ReadFrame(rw.Reader, nil)
	if err != nil {
		return fmt.Errorf("cluster: reading job frame: %w", err)
	}
	if kind != api.FrameJob {
		return fail(fmt.Errorf("cluster: first frame kind %d, want job", kind))
	}
	var job api.ShardJob
	if err := json.Unmarshal(payload, &job); err != nil {
		return fail(fmt.Errorf("cluster: decoding job: %w", err))
	}
	if job.Shards < 2 || job.Shard < 0 || job.Shard >= job.Shards {
		return fail(fmt.Errorf("cluster: shard %d of %d out of range", job.Shard, job.Shards))
	}
	ex := newConnExchange(rw, job.Shards)
	ex.conn, ex.idle = conn, shardIdle(maxIdle, job.TimeoutMS)
	ex.refresh()
	res, err := run(job, ex)
	if err != nil {
		return fail(err)
	}
	// The run's tail (post-barrier compute, result encoding) gets one
	// more idle window to ship the terminal frame.
	ex.refresh()
	out := api.AppendShardResult(nil, res)
	if err := api.WriteFrame(rw.Writer, api.FrameResult, out); err != nil {
		return err
	}
	return rw.Writer.Flush()
}

// WorkerConn is the coordinator's handle on one worker shard session.
type WorkerConn struct {
	Addr string
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	rbuf []byte
}

// Close tears the session down; safe to call more than once.
func (wc *WorkerConn) Close() { _ = wc.conn.Close() }

// DialShard opens a shard session: TCP connect, HTTP upgrade handshake
// on api.ShardPath, then the job frame. addr is host:port (an optional
// http:// prefix is accepted).
func DialShard(ctx context.Context, addr string, job api.ShardJob) (*WorkerConn, error) {
	host := strings.TrimPrefix(strings.TrimPrefix(addr, "http://"), "https://")
	host = strings.TrimSuffix(host, "/")
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", host)
	if err != nil {
		return nil, fmt.Errorf("cluster: dialing worker %s: %w", addr, err)
	}
	wc := &WorkerConn{Addr: addr, conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}
	if dl, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(dl)
	}
	req, err := http.NewRequest(http.MethodPost, "http://"+host+api.ShardPath, nil)
	if err != nil {
		wc.Close()
		return nil, err
	}
	req.Header.Set("Connection", "Upgrade")
	req.Header.Set("Upgrade", api.ShardProtocol)
	if err := req.Write(wc.bw); err != nil {
		wc.Close()
		return nil, fmt.Errorf("cluster: handshake with %s: %w", addr, err)
	}
	if err := wc.bw.Flush(); err != nil {
		wc.Close()
		return nil, fmt.Errorf("cluster: handshake with %s: %w", addr, err)
	}
	// The response must be read through wc.br: bytes after the 101 are
	// already shard frames and may sit in the same buffer.
	resp, err := http.ReadResponse(wc.br, req)
	if err != nil {
		wc.Close()
		return nil, fmt.Errorf("cluster: handshake with %s: %w", addr, err)
	}
	if resp.StatusCode != http.StatusSwitchingProtocols {
		msg := resp.Status
		resp.Body.Close()
		wc.Close()
		return nil, fmt.Errorf("cluster: worker %s refused shard session: %s", addr, msg)
	}
	payload, err := json.Marshal(job)
	if err != nil {
		wc.Close()
		return nil, err
	}
	if err := api.WriteFrame(wc.bw, api.FrameJob, payload); err != nil {
		wc.Close()
		return nil, fmt.Errorf("cluster: sending job to %s: %w", addr, err)
	}
	if err := wc.bw.Flush(); err != nil {
		wc.Close()
		return nil, fmt.Errorf("cluster: sending job to %s: %w", addr, err)
	}
	return wc, nil
}

// Relay is the coordinator loop: a dumb lockstep relay. Each generation
// it reads exactly one frame from every worker and either re-broadcasts
// the whole bundle to all of them (round and meta barriers — payloads
// are relayed opaquely, never decoded) or, when every worker has sent
// its terminal result, assembles the aggregate. Any worker error or
// connection failure aborts all sessions; such failures are transient
// from the cache's point of view — the caller must never memoize them.
//
// The merge order guarantee costs the coordinator nothing here: workers
// merge bundles themselves in shard order, the relay only has to keep
// each bundle's frames in shard order, which reading the connections in
// shard sequence does naturally.
func Relay(ctx context.Context, conns []*WorkerConn) (*api.ShardResult, []sim.DistStats, error) {
	s := len(conns)
	relayDone := make(chan struct{})
	defer close(relayDone)
	go func() {
		// Watchdog: a cancelled coordinator (job timeout, shutdown)
		// closes every session so blocked reads fail promptly.
		select {
		case <-ctx.Done():
			for _, wc := range conns {
				wc.Close()
			}
		case <-relayDone:
		}
	}()
	abort := func(msg string) {
		for _, wc := range conns {
			if err := api.WriteFrame(wc.bw, api.FrameError, []byte(msg)); err == nil {
				_ = wc.bw.Flush()
			}
			wc.Close()
		}
	}

	payloads := make([][]byte, s)
	kinds := make([]byte, s)
	for {
		for i, wc := range conns {
			kind, p, err := api.ReadFrame(wc.br, wc.rbuf[:0])
			if err != nil {
				if ctx.Err() != nil {
					err = ctx.Err()
				}
				abort(fmt.Sprintf("shard %d (%s) failed: %v", i, wc.Addr, err))
				return nil, nil, fmt.Errorf("cluster: shard %d (%s): %w", i, wc.Addr, err)
			}
			wc.rbuf = p
			kinds[i], payloads[i] = kind, p
		}
		for i := 1; i < s; i++ {
			if kinds[i] != kinds[0] {
				abort("shard frame kinds diverged")
				return nil, nil, fmt.Errorf("cluster: shard 0 sent kind %d but shard %d sent kind %d — workers diverged", kinds[0], i, kinds[i])
			}
		}
		switch kinds[0] {
		case api.FrameRound, api.FrameMeta:
			for i, wc := range conns {
				for j := 0; j < s; j++ {
					if err := api.WriteFrame(wc.bw, kinds[0], payloads[j]); err != nil {
						abort(fmt.Sprintf("relaying to shard %d failed: %v", i, err))
						return nil, nil, fmt.Errorf("cluster: relaying to shard %d (%s): %w", i, wc.Addr, err)
					}
				}
				if err := wc.bw.Flush(); err != nil {
					abort(fmt.Sprintf("relaying to shard %d failed: %v", i, err))
					return nil, nil, fmt.Errorf("cluster: relaying to shard %d (%s): %w", i, wc.Addr, err)
				}
			}
		case api.FrameResult:
			return assemble(conns, payloads)
		case api.FrameError:
			msg := string(payloads[0])
			abort(msg)
			return nil, nil, fmt.Errorf("cluster: shard 0 (%s): %s", conns[0].Addr, msg)
		default:
			abort(fmt.Sprintf("unexpected frame kind %d", kinds[0]))
			return nil, nil, fmt.Errorf("cluster: unexpected frame kind %d from %s", kinds[0], conns[0].Addr)
		}
	}
}

// assemble folds the per-shard results into the job result: counters
// sum (each worker attributed only what it owns); Rounds, Completed and
// the InformedAt hash must agree bitwise — that cross-check is the
// bit-identity guarantee surfacing at the protocol level.
func assemble(conns []*WorkerConn, payloads [][]byte) (*api.ShardResult, []sim.DistStats, error) {
	agg := &api.ShardResult{}
	stats := make([]sim.DistStats, len(conns))
	for i, p := range payloads {
		r, err := api.DecodeShardResult(p)
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: decoding shard %d result: %w", i, err)
		}
		stats[i] = r.Stats
		if i == 0 {
			agg.Rounds, agg.Completed, agg.Hash = r.Rounds, r.Completed, r.Hash
			agg.InformedAt = r.InformedAt
		} else if r.Rounds != agg.Rounds || r.Completed != agg.Completed || r.Hash != agg.Hash {
			return nil, nil, fmt.Errorf("cluster: shard %d (%s) result diverged from shard 0 (rounds %d vs %d, completed %v vs %v, hash %x vs %x)",
				i, conns[i].Addr, r.Rounds, agg.Rounds, r.Completed, agg.Completed, r.Hash, agg.Hash)
		}
		agg.Exchanges += r.Exchanges
		agg.Messages += r.Messages
		agg.Dropped += r.Dropped
		agg.Delivered += r.Delivered
		agg.RumorPayload += r.RumorPayload
	}
	return agg, stats, nil
}
