package viz

import (
	"strings"
	"testing"
)

func TestSparklineBasics(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Fatal("empty input should render empty")
	}
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	runes := []rune(s)
	if len(runes) != 8 {
		t.Fatalf("len = %d", len(runes))
	}
	if runes[0] != '▁' || runes[7] != '█' {
		t.Fatalf("scale endpoints wrong: %q", s)
	}
	// Monotone input must be monotone in levels.
	for i := 1; i < len(runes); i++ {
		if runes[i] < runes[i-1] {
			t.Fatalf("non-monotone sparkline %q", s)
		}
	}
}

func TestSparklineConstant(t *testing.T) {
	s := Sparkline([]float64{5, 5, 5})
	for _, r := range s {
		if r != '▁' {
			t.Fatalf("constant series should render flat: %q", s)
		}
	}
}

func TestSparklineInts(t *testing.T) {
	if SparklineInts([]int{1, 2}) == "" {
		t.Fatal("empty output for non-empty input")
	}
}

func TestDownsample(t *testing.T) {
	xs := []float64{1, 9, 2, 3, 8, 4}
	out := Downsample(xs, 3)
	if len(out) != 3 {
		t.Fatalf("len = %d", len(out))
	}
	// Bucket maxima: max(1,9)=9, max(2,3)=3, max(8,4)=8.
	if out[0] != 9 || out[1] != 3 || out[2] != 8 {
		t.Fatalf("Downsample = %v", out)
	}
	same := Downsample(xs, 10)
	if len(same) != len(xs) {
		t.Fatal("short input should pass through")
	}
	same[0] = 99
	if xs[0] == 99 {
		t.Fatal("pass-through must copy")
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart([]BarRow{
		{Label: "aa", Value: 10},
		{Label: "b", Value: 5},
		{Label: "neg", Value: -2},
	}, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], strings.Repeat("█", 10)) {
		t.Fatalf("max row not full width: %q", lines[0])
	}
	if !strings.Contains(lines[1], "█████") {
		t.Fatalf("half row wrong: %q", lines[1])
	}
	if strings.Contains(lines[2], "█") {
		t.Fatalf("negative row should be empty bar: %q", lines[2])
	}
	if BarChart(nil, 10) != "" {
		t.Fatal("empty chart should be empty")
	}
}

func TestCurve(t *testing.T) {
	out := Curve("spread", []int{1, 2, 4, 8}, 20)
	if !strings.Contains(out, "spread") || !strings.Contains(out, "final 8") || !strings.Contains(out, "3 rounds") {
		t.Fatalf("Curve = %q", out)
	}
}
