// Package viz renders tiny text visualizations — sparklines and
// horizontal bar charts — used by the CLI tools and examples to show
// spreading curves and experiment series without any plotting
// dependency.
package viz

import (
	"fmt"
	"strings"
)

// sparkLevels are the eight block characters from lowest to highest.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders xs as a unicode sparkline. Values are scaled to the
// min..max range; an empty input yields an empty string.
func Sparkline(xs []float64) string {
	if len(xs) == 0 {
		return ""
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	var b strings.Builder
	for _, x := range xs {
		idx := 0
		if hi > lo {
			idx = int((x - lo) / (hi - lo) * float64(len(sparkLevels)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkLevels) {
			idx = len(sparkLevels) - 1
		}
		b.WriteRune(sparkLevels[idx])
	}
	return b.String()
}

// SparklineInts is Sparkline for integer series.
func SparklineInts(xs []int) string {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Sparkline(fs)
}

// Downsample reduces xs to at most width points by taking the maximum of
// each bucket (so peaks survive), preserving order.
func Downsample(xs []float64, width int) []float64 {
	if width <= 0 || len(xs) <= width {
		return append([]float64(nil), xs...)
	}
	out := make([]float64, width)
	for i := 0; i < width; i++ {
		lo := i * len(xs) / width
		hi := (i + 1) * len(xs) / width
		if hi <= lo {
			hi = lo + 1
		}
		max := xs[lo]
		for _, x := range xs[lo:hi] {
			if x > max {
				max = x
			}
		}
		out[i] = max
	}
	return out
}

// BarRow is one labeled bar.
type BarRow struct {
	Label string
	Value float64
}

// BarChart renders labeled horizontal bars scaled to width characters,
// with the numeric value appended. Negative values are clamped to zero.
func BarChart(rows []BarRow, width int) string {
	if len(rows) == 0 {
		return ""
	}
	if width <= 0 {
		width = 40
	}
	maxVal := 0.0
	maxLabel := 0
	for _, r := range rows {
		if r.Value > maxVal {
			maxVal = r.Value
		}
		if len(r.Label) > maxLabel {
			maxLabel = len(r.Label)
		}
	}
	var b strings.Builder
	for _, r := range rows {
		v := r.Value
		if v < 0 {
			v = 0
		}
		bar := 0
		if maxVal > 0 {
			bar = int(v / maxVal * float64(width))
		}
		fmt.Fprintf(&b, "%-*s %s%s %.4g\n", maxLabel, r.Label,
			strings.Repeat("█", bar), strings.Repeat("·", width-bar), r.Value)
	}
	return b.String()
}

// Curve renders an integer time series (e.g. a spreading curve) as a
// sparkline with a compact caption: final value and length.
func Curve(name string, xs []int, width int) string {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	ds := Downsample(fs, width)
	last := 0
	if len(xs) > 0 {
		last = xs[len(xs)-1]
	}
	return fmt.Sprintf("%s %s (%d rounds, final %d)", name, Sparkline(ds), len(xs)-1, last)
}
