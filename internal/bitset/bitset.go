// Package bitset provides a dense, fixed-capacity bitset used throughout
// the simulator to represent rumor sets: node i's rumor is bit i.
//
// All mutating methods have pointer receivers; the zero value is an empty
// set of capacity zero. Sets used together must share a capacity.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-capacity bitset.
type Set struct {
	n     int
	words []uint64
}

// New returns an empty set with capacity for bits [0, n).
func New(n int) *Set {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative capacity %d", n))
	}
	return &Set{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// Len returns the capacity of the set (number of addressable bits).
func (s *Set) Len() int { return s.n }

// check panics when i is out of range; bitset misuse in the simulator is a
// programming error, not a recoverable condition.
func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Add sets bit i.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Remove clears bit i.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Contains reports whether bit i is set.
func (s *Set) Contains(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Full reports whether every bit in [0, Len) is set.
func (s *Set) Full() bool { return s.Count() == s.n }

// Empty reports whether no bit is set.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// UnionWith adds every bit of t to s. The capacities must match.
func (s *Set) UnionWith(t *Set) {
	if t == nil {
		return
	}
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: union of mismatched capacities %d and %d", s.n, t.n))
	}
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// UnionCount adds every bit of t to s and reports how many bits were
// newly set. It is UnionWith plus a word-level popcount tally: one pass,
// no per-bit probing — the bulk path the simulator uses when seeding a
// node's rumor set from a previous phase.
func (s *Set) UnionCount(t *Set) int {
	if t == nil {
		return 0
	}
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: union of mismatched capacities %d and %d", s.n, t.n))
	}
	added := 0
	for i, w := range t.words {
		old := s.words[i]
		merged := old | w
		if merged != old {
			added += bits.OnesCount64(merged &^ old)
			s.words[i] = merged
		}
	}
	return added
}

// NextClear returns the smallest index >= from whose bit is clear, or
// Len() when every bit of [from, Len) is set. It scans whole words, so
// an all-set prefix costs 1/64th of a per-bit probe loop — the informed
// tally used by completion checks over large node sets.
func (s *Set) NextClear(from int) int {
	if from < 0 {
		from = 0
	}
	if from >= s.n {
		return s.n
	}
	wi := from / wordBits
	w := ^s.words[wi] & (^uint64(0) << (uint(from) % wordBits))
	for {
		if w != 0 {
			i := wi*wordBits + bits.TrailingZeros64(w)
			if i >= s.n {
				return s.n
			}
			return i
		}
		wi++
		if wi >= len(s.words) {
			return s.n
		}
		w = ^s.words[wi]
	}
}

// IntersectWith keeps only bits present in both s and t.
func (s *Set) IntersectWith(t *Set) {
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: intersect of mismatched capacities %d and %d", s.n, t.n))
	}
	for i, w := range t.words {
		s.words[i] &= w
	}
}

// DifferenceWith removes every bit of t from s.
func (s *Set) DifferenceWith(t *Set) {
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: difference of mismatched capacities %d and %d", s.n, t.n))
	}
	for i, w := range t.words {
		s.words[i] &^= w
	}
}

// Equal reports whether s and t contain exactly the same bits.
func (s *Set) Equal(t *Set) bool {
	if s.n != t.n {
		return false
	}
	for i, w := range t.words {
		if s.words[i] != w {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every bit of s is also in t.
func (s *Set) SubsetOf(t *Set) bool {
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: subset of mismatched capacities %d and %d", s.n, t.n))
	}
	for i, w := range s.words {
		if w&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := &Set{n: s.n, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// Clear removes all bits.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Fill sets all bits in [0, Len).
func (s *Set) Fill() {
	for i := 0; i < s.n; i++ {
		s.Add(i)
	}
}

// ForEach calls fn for every set bit in increasing order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// Slice returns the set bits in increasing order.
func (s *Set) Slice() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// String renders the set as {1, 5, 9} for debugging.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
	})
	b.WriteByte('}')
	return b.String()
}
