package bitset

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(100)
	if s.Len() != 100 {
		t.Fatalf("Len() = %d, want 100", s.Len())
	}
	if !s.Empty() {
		t.Fatal("new set not empty")
	}
	if s.Count() != 0 {
		t.Fatalf("Count() = %d, want 0", s.Count())
	}
}

func TestAddRemoveContains(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Contains(i) {
			t.Fatalf("Contains(%d) before Add", i)
		}
		s.Add(i)
		if !s.Contains(i) {
			t.Fatalf("!Contains(%d) after Add", i)
		}
	}
	if s.Count() != 8 {
		t.Fatalf("Count() = %d, want 8", s.Count())
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Fatal("Contains(64) after Remove")
	}
	if s.Count() != 7 {
		t.Fatalf("Count() = %d, want 7", s.Count())
	}
}

func TestAddIdempotent(t *testing.T) {
	s := New(10)
	s.Add(3)
	s.Add(3)
	if s.Count() != 1 {
		t.Fatalf("Count() = %d, want 1", s.Count())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for _, fn := range []func(){
		func() { s.Add(10) },
		func() { s.Add(-1) },
		func() { s.Contains(10) },
		func() { s.Remove(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestUnionWith(t *testing.T) {
	a, b := New(200), New(200)
	a.Add(1)
	a.Add(100)
	b.Add(100)
	b.Add(199)
	a.UnionWith(b)
	want := []int{1, 100, 199}
	got := a.Slice()
	if len(got) != len(want) {
		t.Fatalf("Slice() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Slice() = %v, want %v", got, want)
		}
	}
	// b unchanged
	if b.Count() != 2 {
		t.Fatalf("b.Count() = %d, want 2", b.Count())
	}
}

func TestUnionWithNil(t *testing.T) {
	a := New(10)
	a.Add(3)
	a.UnionWith(nil)
	if a.Count() != 1 {
		t.Fatal("union with nil changed set")
	}
}

func TestMismatchedCapacityPanics(t *testing.T) {
	a, b := New(10), New(20)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched union")
		}
	}()
	a.UnionWith(b)
}

func TestIntersectAndDifference(t *testing.T) {
	a, b := New(64), New(64)
	for i := 0; i < 10; i++ {
		a.Add(i)
	}
	for i := 5; i < 15; i++ {
		b.Add(i)
	}
	c := a.Clone()
	c.IntersectWith(b)
	if c.Count() != 5 {
		t.Fatalf("intersection Count() = %d, want 5", c.Count())
	}
	d := a.Clone()
	d.DifferenceWith(b)
	if d.Count() != 5 {
		t.Fatalf("difference Count() = %d, want 5", d.Count())
	}
	for i := 0; i < 5; i++ {
		if !d.Contains(i) {
			t.Fatalf("difference missing %d", i)
		}
	}
}

func TestEqualSubset(t *testing.T) {
	a, b := New(70), New(70)
	a.Add(69)
	b.Add(69)
	if !a.Equal(b) {
		t.Fatal("equal sets not Equal")
	}
	b.Add(1)
	if a.Equal(b) {
		t.Fatal("unequal sets Equal")
	}
	if !a.SubsetOf(b) {
		t.Fatal("a not subset of superset")
	}
	if b.SubsetOf(a) {
		t.Fatal("superset reported as subset")
	}
	if a.Equal(New(71)) {
		t.Fatal("sets of different capacity Equal")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(64)
	a.Add(5)
	c := a.Clone()
	c.Add(6)
	if a.Contains(6) {
		t.Fatal("clone mutation leaked into original")
	}
}

func TestFillClearFull(t *testing.T) {
	s := New(67)
	s.Fill()
	if !s.Full() {
		t.Fatal("filled set not Full")
	}
	if s.Count() != 67 {
		t.Fatalf("Count() = %d, want 67", s.Count())
	}
	s.Clear()
	if !s.Empty() {
		t.Fatal("cleared set not empty")
	}
}

func TestForEachOrder(t *testing.T) {
	s := New(300)
	want := []int{2, 64, 65, 128, 299}
	for _, i := range want {
		s.Add(i)
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach visited %v, want %v", got, want)
		}
	}
}

func TestString(t *testing.T) {
	s := New(10)
	s.Add(1)
	s.Add(5)
	if got := s.String(); got != "{1, 5}" {
		t.Fatalf("String() = %q, want {1, 5}", got)
	}
}

// TestQuickUnionCommutes property-tests that union is commutative and
// idempotent and that Count matches a reference implementation.
func TestQuickUnionCommutes(t *testing.T) {
	f := func(seedA, seedB uint64) bool {
		const n = 257
		a, b := New(n), New(n)
		ra := rand.New(rand.NewPCG(seedA, 1))
		rb := rand.New(rand.NewPCG(seedB, 2))
		ref := make(map[int]bool)
		for i := 0; i < 64; i++ {
			x, y := ra.IntN(n), rb.IntN(n)
			a.Add(x)
			b.Add(y)
			ref[x] = true
			ref[y] = true
		}
		ab := a.Clone()
		ab.UnionWith(b)
		ba := b.Clone()
		ba.UnionWith(a)
		if !ab.Equal(ba) {
			return false
		}
		again := ab.Clone()
		again.UnionWith(b)
		if !again.Equal(ab) {
			return false
		}
		return ab.Count() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestUnionCount(t *testing.T) {
	const n = 200
	a, b := New(n), New(n)
	for i := 0; i < n; i += 3 {
		a.Add(i)
	}
	for i := 0; i < n; i += 2 {
		b.Add(i)
	}
	// New bits: even numbers not divisible by 3 (i.e. i%6 in {2,4}).
	wantNew := 0
	for i := 0; i < n; i += 2 {
		if i%3 != 0 {
			wantNew++
		}
	}
	ref := a.Clone()
	ref.UnionWith(b)
	if got := a.UnionCount(b); got != wantNew {
		t.Fatalf("UnionCount = %d, want %d", got, wantNew)
	}
	if !a.Equal(ref) {
		t.Fatal("UnionCount result differs from UnionWith")
	}
	if got := a.UnionCount(b); got != 0 {
		t.Fatalf("second UnionCount = %d, want 0", got)
	}
	if got := a.UnionCount(nil); got != 0 {
		t.Fatalf("UnionCount(nil) = %d, want 0", got)
	}
}

func TestUnionCountMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on capacity mismatch")
		}
	}()
	New(10).UnionCount(New(11))
}

func TestNextClear(t *testing.T) {
	const n = 130 // spans three words with a ragged tail
	s := New(n)
	if got := s.NextClear(0); got != 0 {
		t.Fatalf("empty NextClear(0) = %d", got)
	}
	for i := 0; i < n; i++ {
		if i != 64 && i != 129 {
			s.Add(i)
		}
	}
	if got := s.NextClear(0); got != 64 {
		t.Fatalf("NextClear(0) = %d, want 64", got)
	}
	if got := s.NextClear(64); got != 64 {
		t.Fatalf("NextClear(64) = %d, want 64", got)
	}
	if got := s.NextClear(65); got != 129 {
		t.Fatalf("NextClear(65) = %d, want 129", got)
	}
	s.Add(64)
	s.Add(129)
	if got := s.NextClear(0); got != n {
		t.Fatalf("full NextClear(0) = %d, want Len %d", got, n)
	}
	if got := s.NextClear(-5); got != n {
		t.Fatalf("NextClear(-5) = %d, want %d", got, n)
	}
	if got := s.NextClear(n + 7); got != n {
		t.Fatalf("NextClear past end = %d, want %d", got, n)
	}
	// Word-aligned capacity: the tail guard must not report ghost bits.
	w := New(128)
	for i := 0; i < 128; i++ {
		w.Add(i)
	}
	if got := w.NextClear(0); got != 128 {
		t.Fatalf("aligned full NextClear = %d, want 128", got)
	}
}
