package gossip

import (
	"testing"
	"testing/quick"

	"gossip/internal/graphgen"
	"gossip/internal/sim"
)

// Pattern sequence invariants: T(k) has 2k-1 entries, the maximum is k,
// entries are the pattern of lowest-set-bit weights, and the total DTG
// weight Σℓ·log²n follows the Lemma 27 recurrence T(k) = 2T(k/2)+k·log²n,
// i.e. Σℓ over T(k) = k·(log2(k)/2 + 1).
func TestQuickPatternSequenceInvariants(t *testing.T) {
	f := func(raw uint8) bool {
		k := 1 << (raw % 8) // k ∈ {1..128}
		seq, err := PatternSequence(k)
		if err != nil {
			return false
		}
		if len(seq) != 2*k-1 {
			return false
		}
		sum, max := 0, 0
		for _, ell := range seq {
			if ell < 1 || ell > k || ell&(ell-1) != 0 {
				return false
			}
			sum += ell
			if ell > max {
				max = ell
			}
		}
		if max != k {
			return false
		}
		// Σℓ over T(k): S(1)=1; S(k) = 2S(k/2) + k → S(k) = k·(log2 k + 1).
		lg := 0
		for v := k; v > 1; v >>= 1 {
			lg++
		}
		want := k * (lg + 1)
		return sum == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Any completed dissemination must satisfy: every informed time is at
// least the weighted distance from the source (information cannot travel
// faster than the latencies allow).
func TestInformationSpeedLimit(t *testing.T) {
	rng := graphgen.NewRand(33)
	g, err := graphgen.ErdosRenyi(20, 0.3, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	graphgen.AssignRandomLatencies(g, 1, 9, rng)
	res, err := RunPushPull(g, 0, 5, 1<<18)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("incomplete")
	}
	dist := g.Distances(0)
	for u, at := range res.InformedAt {
		if at < 0 {
			t.Fatalf("node %d never informed", u)
		}
		if int64(at) < dist[u] {
			t.Fatalf("node %d informed at %d, below weighted distance %d", u, at, dist[u])
		}
	}
}

// The same speed limit holds for every composed algorithm via the sim's
// snapshot semantics; spot-check the spanner pipeline on a weighted path.
func TestPipelineSpeedLimit(t *testing.T) {
	g := graphgen.Path(10, 7)
	res, err := SpannerBroadcast(g, SpannerOptions{
		D: int(g.WeightedDiameter()), KnownLatencies: true, Seed: 3, SkipCheck: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("incomplete")
	}
	// All-to-all across a path of weighted diameter 63 cannot beat D.
	if int64(res.Rounds) < g.WeightedDiameter() {
		t.Fatalf("completed in %d rounds, below diameter %d", res.Rounds, g.WeightedDiameter())
	}
}

// Unified equals the min of its arms by construction; verify on several
// seeds (quick property).
func TestQuickUnifiedIsMin(t *testing.T) {
	g := graphgen.Clique(12, 2)
	f := func(seed uint16) bool {
		res, err := Unified(g, UnifiedOptions{
			Source: 0, KnownLatencies: true, Seed: uint64(seed), MaxRounds: 1 << 18,
		})
		if err != nil {
			return false
		}
		min := res.PushPull.Rounds
		if res.Spanner.Rounds < min {
			min = res.Spanner.Rounds
		}
		return res.Rounds == min
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// RR with an empty spanner (no out-edges) must terminate immediately
// rather than loop.
func TestRRNoOutEdges(t *testing.T) {
	r := NewRR(nil, 100)
	if _, ok := r.Activate(0); ok {
		t.Fatal("activation with no out-edges")
	}
	if !r.Done() {
		t.Fatal("not done with no out-edges")
	}
}

// Discovery must reveal exactly the latencies of edges whose round trip
// fits in the budget.
func TestDiscoveryBudgetSemantics(t *testing.T) {
	g := graphgen.Dumbbell(4, 50)
	budget := g.MaxDegree() + 10 // bridge (50) cannot respond in time
	res, err := RunDiscovery(g, budget, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	views := res.World.Views
	// Bridge endpoints: the latency-50 edge must still be unknown.
	idx := views[0].NeighborIndex(4)
	if idx >= 0 {
		if _, known := views[0].Latency(idx); known {
			t.Fatal("slow edge discovered inside too-small budget")
		}
	}
	// Clique edges (latency 1) must be known.
	cIdx := views[0].NeighborIndex(1)
	if l, known := views[0].Latency(cIdx); !known || l != 1 {
		t.Fatalf("fast edge not discovered: %d,%v", l, known)
	}
}

// DTG must also work when some nodes have no eligible neighbors at all.
func TestDTGIsolatedUnderFilter(t *testing.T) {
	g := graphgen.Star(6, 10) // all edges latency 10
	res, err := RunDTG(g, DTGOptions{Ell: 1, Seed: 1, MaxRounds: 1000})
	if err != nil {
		t.Fatal(err)
	}
	// Nobody has a G_1 neighbor: everyone done at round 0.
	if !res.Completed || res.Rounds != 0 {
		t.Fatalf("expected trivial completion, got %+v", res)
	}
}

// Protocol interface compliance (the Uber guide's interface checks, here
// verified once at test time for the concrete sim wiring).
func TestProtocolCompliance(t *testing.T) {
	var _ sim.Protocol = (*PushPull)(nil)
	var _ sim.Protocol = (*Flood)(nil)
	var _ sim.Protocol = (*DTG)(nil)
	var _ sim.Protocol = (*RR)(nil)
	var _ sim.Protocol = (*Discover)(nil)
	var _ sim.Protocol = (*Superstep)(nil)
	var _ sim.MetaProducer = (*DTG)(nil)
	var _ sim.MetaProducer = (*Superstep)(nil)
	var _ sim.DoneReporter = (*RR)(nil)
	var _ sim.Waiter = (*Superstep)(nil)
}
