package gossip

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"gossip/internal/adversity"
	"gossip/internal/graph"
	"gossip/internal/graphgen"
	"gossip/internal/spanner"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/engine_golden.json from the current engine")

// goldenRecord pins the externally observable outcome of one protocol on
// one topology under a fixed seed. The values were captured on the
// pre-event-calendar engine (full per-round node scans, full-set
// snapshots); the event-driven engine must reproduce them exactly.
type goldenRecord struct {
	Rounds     int   `json:"rounds"`
	Completed  bool  `json:"completed"`
	Exchanges  int64 `json:"exchanges"`
	InformedAt []int `json:"informed_at,omitempty"`
}

const goldenMaxRounds = 1 << 18

// goldenGraphs returns the topology suite of the equivalence test:
// clique, path, dumbbell (slow bridge) and Erdős–Rényi.
func goldenGraphs() map[string]*graph.Graph {
	rng := graphgen.NewRand(4242)
	er, err := graphgen.ErdosRenyi(24, 0.25, 1, rng)
	if err != nil {
		panic(err)
	}
	graphgen.AssignRandomLatencies(er, 1, 8, rng)
	return map[string]*graph.Graph{
		"clique16":  graphgen.Clique(16, 3),
		"path12":    graphgen.Path(12, 2),
		"dumbbell8": graphgen.Dumbbell(8, 40),
		"er24":      er,
	}
}

// goldenRuns executes all five protocols on g with the given intra-round
// worker count and returns their records. The sharded engine guarantees
// worker-count-independent results, so every workers value must
// reproduce the same goldens.
func goldenRuns(t *testing.T, g *graph.Graph, workers int) map[string]goldenRecord {
	t.Helper()
	out := map[string]goldenRecord{}

	flood, err := Dispatch("flood", g, DriverOptions{
		Source: 0, Seed: 5, MaxRounds: goldenMaxRounds,
		ExecOptions: ExecOptions{Workers: workers},
	})
	if err != nil {
		t.Fatal(err)
	}
	out["flood"] = goldenRecord{flood.Rounds, flood.Completed, flood.Exchanges, flood.InformedAt}

	pp, err := Dispatch("push-pull", g, DriverOptions{
		Source: 0, Seed: 7, MaxRounds: goldenMaxRounds,
		ExecOptions: ExecOptions{Workers: workers},
	})
	if err != nil {
		t.Fatal(err)
	}
	out["push-pull"] = goldenRecord{pp.Rounds, pp.Completed, pp.Exchanges, pp.InformedAt}

	sp, err := spanner.Build(g, spanner.Options{K: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := RunRR(g, RROptions{Spanner: sp, K: g.MaxLatency(), Seed: 9, MaxRounds: goldenMaxRounds, ExecOptions: ExecOptions{Workers: workers}})
	if err != nil {
		t.Fatal(err)
	}
	out["rr"] = goldenRecord{rr.Rounds, rr.Completed, rr.Exchanges, rr.InformedAt}

	dtg, err := RunDTG(g, DTGOptions{Ell: 0, Seed: 13, MaxRounds: goldenMaxRounds, ExecOptions: ExecOptions{Workers: workers}})
	if err != nil {
		t.Fatal(err)
	}
	out["dtg"] = goldenRecord{dtg.Rounds, dtg.Completed, dtg.Exchanges, dtg.InformedAt}

	sb, err := SpannerBroadcast(g, SpannerOptions{KnownLatencies: true, Seed: 11, MaxPhaseRounds: goldenMaxRounds, ExecOptions: ExecOptions{Workers: workers}})
	if err != nil {
		t.Fatal(err)
	}
	// Multi-phase pipeline: no single InformedAt; Rounds/Exchanges pin it.
	out["spanner"] = goldenRecord{Rounds: sb.Rounds, Completed: sb.Completed, Exchanges: sb.Exchanges}

	return out
}

// faultGoldenRuns pins two runs under deterministic fault schedules (one
// lossy, one churny — the adversity subsystem's golden gate): like the
// benign records they are regenerated only on intended semantic change
// and must be identical at any worker count.
func faultGoldenRuns(t *testing.T, graphs map[string]*graph.Graph, workers int) map[string]goldenRecord {
	t.Helper()
	out := map[string]goldenRecord{}

	lossy, err := Dispatch("push-pull", graphs["er24"], DriverOptions{
		Source: 0, Seed: 7, MaxRounds: goldenMaxRounds,
		ExecOptions: ExecOptions{Workers: workers, Adversity: adversity.MustParseSpec("loss=0.1")},
	})
	if err != nil {
		t.Fatal(err)
	}
	out["push-pull+loss10/er24"] = goldenRecord{lossy.Rounds, lossy.Completed, lossy.Exchanges, lossy.InformedAt}

	churny, err := Dispatch("push-pull", graphs["dumbbell8"], DriverOptions{
		Source: 0, Seed: 7, MaxRounds: goldenMaxRounds,
		ExecOptions: ExecOptions{Workers: workers, Adversity: adversity.MustParseSpec("churn=1:4-30:amnesia;churn=3:10-inf;crash=20:2")},
	})
	if err != nil {
		t.Fatal(err)
	}
	out["push-pull+churn/dumbbell8"] = goldenRecord{churny.Rounds, churny.Completed, churny.Exchanges, churny.InformedAt}

	return out
}

// TestEngineGolden is the engine-equivalence gate of the event-calendar
// and sharded-substrate refactors: for fixed seeds, all five protocols
// must report exactly the rounds, exchange counts and per-node informed
// times recorded on the pre-refactor engine — and must do so identically
// with intra-round sharding off (-workers 1) and on (-workers 8).
// Regenerate (only when a semantic change is intended) with:
//
//	go test ./internal/gossip -run TestEngineGolden -update
func TestEngineGolden(t *testing.T) {
	got := map[string]goldenRecord{}
	names := make([]string, 0)
	for name := range goldenGraphs() {
		names = append(names, name)
	}
	sort.Strings(names)
	graphs := goldenGraphs()
	for _, gname := range names {
		serial := goldenRuns(t, graphs[gname], 1)
		sharded := goldenRuns(t, graphs[gname], 8)
		for proto, rec := range serial {
			if !reflect.DeepEqual(sharded[proto], rec) {
				t.Errorf("%s/%s: workers=8 diverges from workers=1:\n w8 %+v\n w1 %+v",
					proto, gname, sharded[proto], rec)
			}
			got[proto+"/"+gname] = rec
		}
	}
	faultSerial := faultGoldenRuns(t, graphs, 1)
	faultSharded := faultGoldenRuns(t, graphs, 8)
	for key, rec := range faultSerial {
		if !reflect.DeepEqual(faultSharded[key], rec) {
			t.Errorf("%s: workers=8 diverges from workers=1 under faults:\n w8 %+v\n w1 %+v",
				key, faultSharded[key], rec)
		}
		got[key] = rec
	}

	path := filepath.Join("testdata", "engine_golden.json")
	if *updateGolden {
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d records", path, len(got))
		return
	}

	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing goldens (run with -update to create): %v", err)
	}
	want := map[string]goldenRecord{}
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Errorf("golden file has %d records, run produced %d", len(want), len(got))
	}
	for key, w := range want {
		g, ok := got[key]
		if !ok {
			t.Errorf("%s: missing from run", key)
			continue
		}
		if g.Rounds != w.Rounds || g.Completed != w.Completed || g.Exchanges != w.Exchanges {
			t.Errorf("%s: rounds/completed/exchanges = %d/%v/%d, golden %d/%v/%d",
				key, g.Rounds, g.Completed, g.Exchanges, w.Rounds, w.Completed, w.Exchanges)
		}
		if w.InformedAt != nil && !reflect.DeepEqual(g.InformedAt, w.InformedAt) {
			t.Errorf("%s: InformedAt diverged from golden\n got %v\nwant %v", key, g.InformedAt, w.InformedAt)
		}
	}
	if t.Failed() {
		fmt.Println("engine no longer reproduces the pre-refactor goldens")
	}
}
