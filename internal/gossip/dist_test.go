package gossip

import (
	"reflect"
	"testing"

	"gossip/internal/graphgen"
	"gossip/internal/sim"
)

func TestDistributable(t *testing.T) {
	for name, want := range map[string]bool{
		"push-pull": true,
		"pushpull":  true, // alias resolves first
		"flood":     true,
		"dtg":       true,
		"superstep": true,
		"election":  true,
		"leader":    true, // alias resolves first
		"echo":      true,
		"auto":      false,
		"pattern":   false,
		"spanner":   false,
		"rr":        false,
		"bogus":     false,
	} {
		if got := Distributable(name); got != want {
			t.Errorf("Distributable(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestPrepareDistRejects(t *testing.T) {
	g := graphgen.Clique(8, 1)
	cases := []struct {
		name   string
		driver string
		opts   DriverOptions
	}{
		{"unknown driver", "bogus", DriverOptions{}},
		{"non-distributable", "auto", DriverOptions{}},
		{"custom stop", "push-pull", DriverOptions{Stop: func(w *sim.World) bool { return false }}},
		{"bounded in-degree", "push-pull", DriverOptions{MaxInPerRound: 2}},
	}
	for _, tc := range cases {
		if _, _, _, err := PrepareDist(tc.driver, g, tc.opts); err == nil {
			t.Errorf("%s: PrepareDist succeeded, want error", tc.name)
		}
		if _, _, err := DispatchLocalSharded(tc.driver, g, tc.opts, 2); err == nil {
			t.Errorf("%s: DispatchLocalSharded succeeded, want error", tc.name)
		}
	}
}

// TestDispatchLocalShardedMatchesDispatch is the in-package spelling of
// the bit-identity contract: the full distributed path (shard engines,
// frame barriers, node-order merge) must reproduce the serial dispatch
// exactly, for every distributable driver, at 2 and 3 shards.
func TestDispatchLocalShardedMatchesDispatch(t *testing.T) {
	g := graphgen.Dumbbell(8, 6)
	for _, name := range []string{"push-pull", "flood", "dtg", "superstep", "election", "echo"} {
		opts := DriverOptions{Source: 0, Seed: 11, MaxRounds: 1 << 14}
		serial, err := Dispatch(name, g, opts)
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		for _, shards := range []int{2, 3} {
			dist, stats, err := DispatchLocalSharded(name, g, opts, shards)
			if err != nil {
				t.Fatalf("%s sharded(%d): %v", name, shards, err)
			}
			if dist.Rounds != serial.Rounds || dist.Completed != serial.Completed ||
				dist.Exchanges != serial.Exchanges || dist.Messages != serial.Messages ||
				dist.Dropped != serial.Dropped || dist.Delivered != serial.Delivered {
				t.Fatalf("%s sharded(%d) counters diverge: %+v vs %+v", name, shards, dist, serial)
			}
			if !reflect.DeepEqual(dist.Sim.InformedAt, serial.Sim.InformedAt) {
				t.Fatalf("%s sharded(%d): InformedAt diverges", name, shards)
			}
			if len(stats) != shards {
				t.Fatalf("%s sharded(%d): %d stats entries", name, shards, len(stats))
			}
			for i, st := range stats {
				if st.Barriers == 0 || st.Rounds == 0 {
					t.Fatalf("%s shard %d stats never moved: %+v", name, i, st)
				}
			}
		}
	}
}
