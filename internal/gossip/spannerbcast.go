package gossip

import (
	"fmt"

	"gossip/internal/adversity"
	"gossip/internal/bitset"
	"gossip/internal/graph"
	"gossip/internal/sim"
	"gossip/internal/spanner"
)

// Phase records the cost of one phase of a composed broadcast algorithm.
type Phase struct {
	Name      string
	Rounds    int
	Exchanges int64
	// Payload is the rumor-units bandwidth the phase consumed.
	Payload int64
}

// BroadcastResult summarizes a multi-phase broadcast execution.
type BroadcastResult struct {
	// Completed reports whether all-to-all dissemination finished.
	Completed bool
	// Rounds is the total simulated time across phases.
	Rounds int
	// Exchanges is the total number of exchanges across phases.
	Exchanges int64
	// Dropped / Delivered total the exchanges lost to the failure model
	// and the exchanges whose payload arrived, across phases.
	Dropped   int64
	Delivered int64
	// RumorPayload is the total rumor-units bandwidth across phases.
	RumorPayload int64
	// Phases itemizes the run.
	Phases []Phase
	// FinalGuess is the diameter guess in force when the run ended
	// (equal to the supplied D when it was known).
	FinalGuess int
	// SpannerEdges and SpannerMaxOut describe the last spanner built.
	SpannerEdges, SpannerMaxOut int
}

func (r *BroadcastResult) addPhase(name string, res sim.Result) {
	r.Phases = append(r.Phases, Phase{Name: name, Rounds: res.Rounds, Exchanges: res.Exchanges, Payload: res.RumorPayload})
	r.Rounds += res.Rounds
	r.Exchanges += res.Exchanges
	r.Dropped += res.Dropped
	r.Delivered += res.Delivered
	r.RumorPayload += res.RumorPayload
}

// SpannerOptions configures SpannerBroadcast.
type SpannerOptions struct {
	// D is the known weighted diameter; 0 means unknown, engaging the
	// guess-and-double wrapper of Section 4.1.4.
	D int
	// KnownLatencies selects the Section 4 model. When false, every
	// guess is preceded by a latency-discovery phase (Section 5.2's
	// "tweaked" variant) whose budget is Δ + guess.
	KnownLatencies bool
	Seed           uint64
	// MaxPhaseRounds caps each phase (default sim.DefaultMaxRounds).
	MaxPhaseRounds int
	// SkipCheck drops the Termination_Check accounting phase; useful for
	// measuring the bare pipeline when D is known.
	SkipCheck bool
	// UseSuperstep swaps the DTG neighborhood-gathering phases for the
	// randomized Superstep primitive (Censor-Hillel et al. style); with
	// LBTimeout > 0 the primitive abandons stalled exchanges, making the
	// pipeline crash-tolerant (this repository's Section 7 extension).
	UseSuperstep bool
	LBTimeout    int
	// CrashAt injects fail-stop crashes at absolute rounds (measured
	// against the pipeline's cumulative round count; each phase receives
	// the schedule shifted by the rounds already consumed). Completion
	// is judged over surviving nodes. The pipeline has no recovery
	// mechanism — Section 6 calls out exactly this fragility versus
	// push-pull: DTG stalls forever on a dead peer.
	CrashAt []int
	// Adversity attaches a declarative fault schedule (see package
	// adversity). Rounds are absolute against the pipeline's cumulative
	// count; each phase receives the spec rebased by the rounds already
	// consumed, exactly like CrashAt. Completion is judged over nodes
	// that are not permanently gone.
	// consumed, exactly like CrashAt; Workers shards intra-round
	// simulation in every phase with bit-identical results. Both ride on
	// the embedded ExecOptions.
	ExecOptions
}

// shiftCrashes rebases an absolute crash schedule to a phase that starts
// after offset rounds have already elapsed.
func shiftCrashes(crashAt []int, offset int) []int {
	if crashAt == nil {
		return nil
	}
	out := make([]int, len(crashAt))
	for i, r := range crashAt {
		switch {
		case r < 0:
			out[i] = -1
		case r <= offset:
			out[i] = 0
		default:
			out[i] = r - offset
		}
	}
	return out
}

// SpannerBroadcast runs Algorithm 2 (known D) or Algorithm 4 (unknown D):
// ceil(log2 n) repetitions of D-DTG to collect the log n-hop
// neighborhood, a local oriented Baswana-Sen spanner construction on G_D,
// and RR Broadcast with parameter O(D log n) — plus Termination_Check
// and diameter doubling when D is unknown. The Termination_Check decision
// (Algorithm 3: equal rumor sets and no raised flags everywhere) is
// evaluated from global state; Lemma 24 proves the distributed predicate
// agrees with it, and its communication cost is charged as one extra RR
// phase.
func SpannerBroadcast(g *graph.Graph, opts SpannerOptions) (BroadcastResult, error) {
	var out BroadcastResult
	if err := g.Validate(); err != nil {
		return out, fmt.Errorf("gossip: spanner broadcast: %w", err)
	}
	known := opts.D > 0
	guess := opts.D
	if !known {
		guess = 1
	}
	// Diameter never exceeds (n-1)·ℓmax; one more doubling detects it.
	cap64 := int64(g.N()) * int64(g.MaxLatency()) * 2
	var rumors []*bitset.Set
	for {
		res, err := spannerPipeline(g, guess, opts, &out, rumors)
		if err != nil {
			return out, err
		}
		rumors = res
		done := rumorsFullAlive(rumors, opts.CrashAt, opts.Adversity)
		if !opts.SkipCheck || !known {
			// Termination_Check: one more RR-style broadcast pass.
			check, sp, err := runRRPhase(g, guess, opts, rumors, out.Rounds, fmt.Sprintf("check(k=%d)", guess))
			if err != nil {
				return out, err
			}
			out.addPhase(check.name, check.res)
			out.SpannerEdges, out.SpannerMaxOut = sp.NumEdges(), sp.MaxOutDegree()
			rumors = check.res.FinalRumors()
			done = rumorsFullAlive(rumors, opts.CrashAt, opts.Adversity)
		}
		out.FinalGuess = guess
		if done {
			out.Completed = true
			return out, nil
		}
		if known {
			return out, nil // a known correct D that fails is a bug upstream
		}
		guess *= 2
		if int64(guess) > cap64 {
			return out, nil
		}
	}
}

// spannerPipeline runs the DTG repetitions and the RR broadcast for one
// diameter guess, returning the carried rumor sets.
func spannerPipeline(g *graph.Graph, guess int, opts SpannerOptions, out *BroadcastResult, rumors []*bitset.Set) ([]*bitset.Set, error) {
	maxRounds := opts.MaxPhaseRounds
	if maxRounds <= 0 {
		maxRounds = sim.DefaultMaxRounds
	}
	if !opts.KnownLatencies {
		budget := g.MaxDegree() + guess
		res, err := runDiscovery(g, budget, opts.Seed, rumors, opts.Adversity.Shift(out.Rounds), opts.Workers)
		if err != nil {
			return nil, err
		}
		out.addPhase(fmt.Sprintf("discover(k=%d)", guess), res)
		rumors = res.FinalRumors()
	}
	reps := log2CeilInt(g.N())
	if reps < 1 {
		reps = 1
	}
	for rep := 0; rep < reps; rep++ {
		var res sim.Result
		var err error
		name := fmt.Sprintf("dtg(ℓ=%d,#%d)", guess, rep+1)
		if opts.UseSuperstep {
			name = fmt.Sprintf("superstep(ℓ=%d,#%d)", guess, rep+1)
			res, err = RunSuperstep(g, SuperstepOptions{
				Ell:           guess,
				Timeout:       opts.LBTimeout,
				Seed:          opts.Seed + uint64(rep) + 1,
				MaxRounds:     maxRounds,
				InitialRumors: rumors,
				CrashAt:       shiftCrashes(opts.CrashAt, out.Rounds),
				ExecOptions: ExecOptions{
					Adversity: opts.Adversity.Shift(out.Rounds),
					Workers:   opts.Workers,
				},
			})
		} else {
			res, err = RunDTG(g, DTGOptions{
				Ell:           guess,
				Seed:          opts.Seed + uint64(rep) + 1,
				MaxRounds:     maxRounds,
				InitialRumors: rumors,
				CrashAt:       shiftCrashes(opts.CrashAt, out.Rounds),
				ExecOptions: ExecOptions{
					Adversity: opts.Adversity.Shift(out.Rounds),
					Workers:   opts.Workers,
				},
			})
		}
		if err != nil {
			return nil, err
		}
		out.addPhase(name, res)
		rumors = res.FinalRumors()
	}
	rr, sp, err := runRRPhase(g, guess, opts, rumors, out.Rounds, fmt.Sprintf("rr(k=%d)", guess))
	if err != nil {
		return nil, err
	}
	out.addPhase(rr.name, rr.res)
	out.SpannerEdges, out.SpannerMaxOut = sp.NumEdges(), sp.MaxOutDegree()
	return rr.res.FinalRumors(), nil
}

type phaseRun struct {
	name string
	res  sim.Result
}

// runRRPhase builds the spanner for G_guess and runs one RR Broadcast
// with parameter k = guess·(2·ceil(log2 n) - 1): the spanner stretch bound
// applied to the diameter guess. offset is the pipeline's cumulative
// round count, used to rebase the crash schedule.
func runRRPhase(g *graph.Graph, guess int, opts SpannerOptions, rumors []*bitset.Set, offset int, name string) (phaseRun, *spanner.Spanner, error) {
	kCluster := log2CeilInt(g.N())
	if kCluster < 1 {
		kCluster = 1
	}
	sp, err := spanner.Build(g, spanner.Options{
		K:          kCluster,
		Seed:       opts.Seed ^ 0x5bd1e995,
		MaxLatency: guess,
	})
	if err != nil {
		return phaseRun{}, nil, err
	}
	kRR := guess * (2*kCluster - 1)
	maxRounds := opts.MaxPhaseRounds
	if maxRounds <= 0 {
		maxRounds = sim.DefaultMaxRounds
	}
	phaseCrash := shiftCrashes(opts.CrashAt, offset)
	stop := sim.StopAllHaveAll()
	if phaseCrash != nil || opts.Adversity.HasFailures() {
		stop = stopAliveHaveAlive(phaseCrash, opts.Adversity)
	}
	res, err := RunRR(g, RROptions{
		Spanner:       sp,
		K:             kRR,
		Seed:          opts.Seed ^ 0x27d4eb2f,
		MaxRounds:     maxRounds,
		InitialRumors: rumors,
		Stop:          stop,
		CrashAt:       phaseCrash,
		ExecOptions: ExecOptions{
			Adversity: opts.Adversity.Shift(offset),
			Workers:   opts.Workers,
		},
	})
	if err != nil {
		return phaseRun{}, nil, err
	}
	return phaseRun{name: name, res: res}, sp, nil
}

// rumorsFull reports whether every node holds all n rumors.
func rumorsFull(rumors []*bitset.Set, n int) bool {
	if rumors == nil {
		return false
	}
	for _, r := range rumors {
		if r.Count() != n {
			return false
		}
	}
	return true
}

// goneForever reports whether node u is permanently removed by the
// failure model: crashed per the legacy vector, or never returning per
// the adversity spec. Temporarily-churned nodes are NOT gone — they
// rejoin and must still be informed.
func goneForever(crashAt []int, spec *adversity.Spec, u int) bool {
	if crashAt != nil && crashAt[u] >= 0 {
		return true
	}
	return spec.NeverReturns(u)
}

// rumorsFullAlive reports whether every surviving node holds every
// surviving node's rumor; with no failure model it is rumorsFull.
func rumorsFullAlive(rumors []*bitset.Set, crashAt []int, spec *adversity.Spec) bool {
	if rumors == nil {
		return false
	}
	if crashAt == nil && !spec.HasFailures() {
		return rumorsFull(rumors, len(rumors))
	}
	for u, r := range rumors {
		if goneForever(crashAt, spec, u) {
			continue
		}
		for v := range rumors {
			if !goneForever(crashAt, spec, v) && !r.Contains(v) {
				return false
			}
		}
	}
	return true
}

// stopAliveHaveAlive stops when every surviving node holds every
// surviving node's rumor.
func stopAliveHaveAlive(crashAt []int, spec *adversity.Spec) sim.StopFunc {
	return func(w *sim.World) bool {
		for u, nv := range w.Views {
			if goneForever(crashAt, spec, u) {
				continue
			}
			for v := range w.Views {
				if !goneForever(crashAt, spec, v) && !nv.Knows(v) {
					return false
				}
			}
		}
		return true
	}
}

func log2CeilInt(x int) int {
	k, v := 0, 1
	for v < x {
		v <<= 1
		k++
	}
	return k
}
