package gossip

import (
	"errors"
	"fmt"

	"gossip/internal/graph"
	"gossip/internal/sim"
)

// ErrNoWarmStart marks drivers without a Prepare hook: the multi-phase
// pipelines (spanner, pattern, auto) chain many simulations and have no
// single engine to freeze. Callers that want a comparable baseline fall
// back to a cold re-run, which the engine guarantees is bit-identical.
var ErrNoWarmStart = errors.New("gossip: driver does not support warm-start forking")

// WarmPrefix is a driver run frozen at a round barrier. One prefix can
// be resumed any number of times, concurrently, each resume continuing
// the shared prefix under its own (possibly diverged) options — the
// primitive behind POST /v1/sweeps.
type WarmPrefix struct {
	d    *Driver
	g    *graph.Graph
	snap *sim.Snapshot
}

// Fork runs the named driver under base until the first processed round
// >= atRound and freezes it there. If the run finishes earlier the
// prefix is Done and every Resume returns the finished result.
func Fork(name string, g *graph.Graph, base DriverOptions, atRound int) (*WarmPrefix, error) {
	d, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("gossip: unknown driver %q", name)
	}
	if !d.WarmStart() {
		return nil, fmt.Errorf("%w (%q is a multi-phase pipeline)", ErrNoWarmStart, d.Name)
	}
	if g == nil && base.CSR == nil {
		return nil, fmt.Errorf("gossip: driver %q needs a graph or a CSR topology", name)
	}
	cfg, factory, stop, err := d.Prepare(g, base)
	if err != nil {
		return nil, err
	}
	snap, err := sim.CaptureAt(cfg, factory, stop, atRound)
	if err != nil {
		return nil, err
	}
	return &WarmPrefix{d: d, g: g, snap: snap}, nil
}

// Round is the barrier round actually captured (>= the requested round
// when the event loop jumped over it), or the final round when Done.
func (w *WarmPrefix) Round() int { return w.snap.Round() }

// Done reports that the base run finished before the fork round.
func (w *WarmPrefix) Done() bool { return w.snap.Done() }

// Resume continues the prefix under variant. The variant must agree
// with the base options on everything that shaped the prefix — same
// topology values, Seed, Source/Sources, objective, protocol parameters
// — and may diverge on Workers, MaxRounds, MaxInPerRound and Adversity
// (see sim.Snapshot.Resume for the divergence semantics). An identical
// variant reproduces the cold run bit-for-bit.
func (w *WarmPrefix) Resume(variant DriverOptions) (DriverResult, error) {
	cfg, factory, stop, err := w.d.Prepare(w.g, variant)
	if err != nil {
		return DriverResult{}, err
	}
	return fromSimResult(w.snap.Resume(cfg, factory, stop))
}
