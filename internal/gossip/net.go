package gossip

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gossip/internal/graph"
	"gossip/internal/sim"
	"gossip/internal/transport"
)

// This file is the real-transport execution mode: the same protocol
// structs the calendar engine drives (PushPull, Flood — anything whose
// driver has a Prepare) run here on one goroutine per node, exchanging
// real messages through a transport.Mesh on real clocks. Nothing about
// the protocol changes — Activate still picks a neighbor index,
// OnDeliver still observes exchanges — only the fabric underneath does,
// which is exactly the claim a real-network mode exists to test.
//
// The wire exchange mirrors the paper's combined push-pull primitive:
// an initiation is a SYN carrying the sender's rumor journal, the
// responder merges and answers with an ACK carrying its own pre-merge
// journal, and the initiator merges that. A single exchange therefore
// moves rumors in both directions, just as one simulated exchange does.
// Real fabrics drop (bounded inboxes, torn-down sockets), so a blocking
// protocol waiting on its ACK is unstuck by an ack timeout that
// synthesizes the clearing OnDeliver — the delivery never happened, the
// protocol just stops waiting for it.

// Wire message kinds inside mesh payloads.
const (
	netSyn byte = 1 // initiator's journal snapshot
	netAck byte = 2 // responder's pre-merge journal snapshot
)

// NetConfig configures one real-transport run.
type NetConfig struct {
	// Mesh moves the bytes: a ChanMesh (single process, all nodes local)
	// or one process's TCPMesh half (contiguous node range local).
	Mesh transport.Mesh
	// CSR is the topology; every process of a multi-process run must
	// build the identical CSR.
	CSR *graph.CSR
	// Driver names a registered driver with a Prepare (push-pull, flood).
	Driver string
	// Opts selects source, seed, variant, known-latencies — the same
	// option surface a simulated run takes. Execution knobs (Workers) are
	// ignored: concurrency here is one goroutine per node, for real.
	Opts DriverOptions
	// Round is the wall-clock tick length (default 2ms). Every node
	// activates once per tick, mirroring the synchronous round model.
	Round time.Duration
	// MaxRounds is the horizon (default 10·n): multi-process runs cannot
	// observe global completion locally, so the horizon is the only
	// guaranteed stop.
	MaxRounds int
	// AckTimeout is how many rounds an initiator waits for an ACK before
	// the exchange is written off (default 4).
	AckTimeout int
}

// NetResult is the outcome of one real-transport run, shaped like the
// sim result so the ICC machinery consumes either.
type NetResult struct {
	// Rounds is the last tick at which a locally hosted node was
	// informed (or the horizon, when incomplete).
	Rounds int
	// Completed reports whether every locally hosted node was informed.
	// Multi-process runs AND this over processes.
	Completed bool
	// InformedAt[u] is the tick node u first held the watched rumor, -1
	// for never and for nodes this process does not host.
	InformedAt []int
	// Messages counts SYNs and ACKs sent by local nodes.
	Messages int64
	// Drops is the mesh's dropped-packet count at the end of the run.
	Drops int64
}

// netNode is one node's real-execution state, owned by its goroutine.
type netNode struct {
	nv      *sim.NodeView
	proto   sim.Protocol
	pending []int // initiation rounds of SYNs still awaiting an ACK
}

// RunNet executes the named driver's protocol over cfg.Mesh. It blocks
// until every locally hosted node is informed (when the mesh hosts the
// whole topology) or the horizon passes. The run is nondeterministic by
// nature — validate results statistically (package envelope), not by
// golden outputs.
func RunNet(cfg NetConfig) (NetResult, error) {
	if cfg.Mesh == nil || cfg.CSR == nil {
		return NetResult{}, fmt.Errorf("gossip: RunNet needs a mesh and a CSR topology")
	}
	d, ok := Lookup(cfg.Driver)
	if !ok {
		return NetResult{}, fmt.Errorf("gossip: unknown driver %q", cfg.Driver)
	}
	if d.Prepare == nil {
		return NetResult{}, fmt.Errorf("gossip: driver %q is multi-phase and has no real-transport mode", cfg.Driver)
	}
	n := cfg.CSR.N()
	opts := cfg.Opts
	opts.CSR = cfg.CSR
	// Prepare is reused solely for its factory: the one driver-owned
	// definition of "this protocol's per-node instance". The returned
	// sim.Config and stop condition belong to the calendar engine and are
	// discarded.
	_, factory, _, err := d.Prepare(nil, opts)
	if err != nil {
		return NetResult{}, err
	}
	if opts.Source < 0 || opts.Source >= n {
		return NetResult{}, fmt.Errorf("gossip: source %d outside [0, %d)", opts.Source, n)
	}
	roundDur := cfg.Round
	if roundDur <= 0 {
		roundDur = 2 * time.Millisecond
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 10 * n
	}
	ackTimeout := cfg.AckTimeout
	if ackTimeout <= 0 {
		ackTimeout = 4
	}

	local := cfg.Mesh.Local()
	fullyLocal := len(local) == n

	informedAt := make([]int, n)
	for i := range informedAt {
		informedAt[i] = -1
	}
	var informed atomic.Int64
	var messages atomic.Int64
	done := make(chan struct{})
	var doneOnce sync.Once
	target := int64(len(local))

	nodes := make(map[int]*netNode, len(local))
	for _, u := range local {
		nv := sim.NewNetView(cfg.CSR, u, opts.Seed, opts.KnownLatencies)
		nodes[u] = &netNode{nv: nv, proto: factory(nv)}
		if u == int(opts.Source) {
			nv.Gain(u)
			informedAt[u] = 0
			if informed.Add(1) == target && fullyLocal {
				doneOnce.Do(func() { close(done) })
			}
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for _, u := range local {
		nd := nodes[u]
		u := u
		wg.Add(1)
		go func() {
			defer wg.Done()
			inbox := cfg.Mesh.Inbox(u)
			timer := time.NewTimer(roundDur)
			defer timer.Stop()
			send := func(kind byte, to int, journal []int32) {
				if err := cfg.Mesh.Send(u, to, encodeNetMsg(kind, journal)); err == nil {
					messages.Add(1)
				}
			}
			// gain merges one received journal into the node, recording
			// the informed tick and advancing the completion counter when
			// the watched rumor arrives.
			gain := func(rumors []int32, round int) int {
				fresh := 0
				for _, r := range rumors {
					if nd.nv.Gain(int(r)) {
						fresh++
						if int(r) == int(opts.Source) {
							informedAt[u] = round
							if informed.Add(1) == target && fullyLocal {
								doneOnce.Do(func() { close(done) })
							}
						}
					}
				}
				return fresh
			}
			for round := 1; round <= maxRounds; round++ {
				if !timer.Stop() {
					select {
					case <-timer.C:
					default:
					}
				}
				timer.Reset(time.Until(start.Add(time.Duration(round) * roundDur)))
			drain:
				for {
					select {
					case p, open := <-inbox:
						if !open {
							return
						}
						kind, rumors, derr := decodeNetMsg(p.Payload)
						if derr != nil {
							continue
						}
						switch kind {
						case netSyn:
							// Answer with the pre-merge journal so the
							// exchange pulls as well as pushes, exactly
							// like one simulated exchange.
							snap := append([]int32(nil), nd.nv.Journal()...)
							fresh := gain(rumors, round)
							send(netAck, p.From, snap)
							nd.proto.OnDeliver(sim.Delivery{
								Round:         round,
								Peer:          p.From,
								NeighborIndex: nd.nv.NeighborIndex(p.From),
								Initiator:     false,
								NewRumors:     fresh,
							})
						case netAck:
							fresh := gain(rumors, round)
							if len(nd.pending) > 0 {
								nd.pending = nd.pending[1:]
							}
							nd.proto.OnDeliver(sim.Delivery{
								Round:         round,
								Peer:          p.From,
								NeighborIndex: nd.nv.NeighborIndex(p.From),
								Initiator:     true,
								NewRumors:     fresh,
							})
						}
					case <-done:
						return
					case <-timer.C:
						break drain
					}
				}
				// Write off exchanges whose ACK is overdue — the real-world
				// replacement for the calendar's guaranteed delivery. The
				// synthesized delivery only tells the protocol to stop
				// waiting; no rumors move.
				for len(nd.pending) > 0 && round-nd.pending[0] > ackTimeout {
					nd.pending = nd.pending[1:]
					nd.proto.OnDeliver(sim.Delivery{Round: round, Initiator: true})
				}
				if idx, ok := nd.proto.Activate(round); ok {
					nd.pending = append(nd.pending, round)
					send(netSyn, nd.nv.NeighborID(idx), nd.nv.Journal())
				}
			}
		}()
	}
	wg.Wait()

	res := NetResult{
		InformedAt: informedAt,
		Completed:  true,
		Messages:   messages.Load(),
		Drops:      cfg.Mesh.Drops(),
	}
	for _, u := range local {
		if informedAt[u] < 0 {
			res.Completed = false
		} else if informedAt[u] > res.Rounds {
			res.Rounds = informedAt[u]
		}
	}
	if !res.Completed {
		res.Rounds = maxRounds
	}
	return res, nil
}

// encodeNetMsg frames one SYN/ACK: kind byte, rumor count, rumor ids
// (all varint). The journal is snapshotted into the payload — ownership
// transfers to the mesh.
func encodeNetMsg(kind byte, journal []int32) []byte {
	buf := make([]byte, 1, 1+(len(journal)+1)*binary.MaxVarintLen32)
	buf[0] = kind
	buf = binary.AppendUvarint(buf, uint64(len(journal)))
	for _, r := range journal {
		buf = binary.AppendUvarint(buf, uint64(r))
	}
	return buf
}

func decodeNetMsg(p []byte) (kind byte, rumors []int32, err error) {
	if len(p) < 1 {
		return 0, nil, fmt.Errorf("gossip: empty net message")
	}
	kind = p[0]
	rest := p[1:]
	count, m := binary.Uvarint(rest)
	if m <= 0 {
		return 0, nil, fmt.Errorf("gossip: truncated net message")
	}
	rest = rest[m:]
	rumors = make([]int32, 0, count)
	for i := uint64(0); i < count; i++ {
		v, m := binary.Uvarint(rest)
		if m <= 0 {
			return 0, nil, fmt.Errorf("gossip: truncated net message")
		}
		rest = rest[m:]
		rumors = append(rumors, int32(v))
	}
	return kind, rumors, nil
}
