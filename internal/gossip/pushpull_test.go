package gossip

import (
	"math"
	"testing"

	"gossip/internal/conductance"
	"gossip/internal/graph"
	"gossip/internal/graphgen"
	"gossip/internal/stats"
)

// condExact is a test shorthand for exact conductance computation.
func condExact(g *graph.Graph) (conductance.Result, error) { return conductance.Exact(g) }

func TestPushPullCompletesOnClique(t *testing.T) {
	g := graphgen.Clique(32, 1)
	res, err := RunPushPull(g, 0, 1, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("push-pull incomplete on clique")
	}
	// Karp et al.: O(log n) rounds on the clique — generous constant.
	if res.Rounds > 10*int(math.Log2(32)) {
		t.Fatalf("clique push-pull took %d rounds", res.Rounds)
	}
	for u, at := range res.InformedAt {
		if at < 0 {
			t.Fatalf("node %d never informed", u)
		}
	}
}

func TestPushPullCompletesOnWeightedGraphs(t *testing.T) {
	rng := graphgen.NewRand(7)
	er, err := graphgen.ErdosRenyi(40, 0.2, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	graphgen.AssignRandomLatencies(er, 1, 10, rng)
	grid := graphgen.Grid(6, 6, 3)
	for name, g := range map[string]*graph.Graph{"er": er, "grid": grid} {
		res, err := RunPushPull(g, 3, 5, 100000)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Completed {
			t.Fatalf("%s: push-pull incomplete", name)
		}
	}
}

func TestPushPullStarPullEffect(t *testing.T) {
	// Star: push-pull finishes in O(log n)-ish expected rounds per leaf
	// contact round... every leaf contacts the center every round, so 2
	// rounds suffice with unit latencies.
	g := graphgen.Star(50, 1)
	res, err := RunPushPull(g, 0, 9, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Rounds > 3 {
		t.Fatalf("star push-pull: %+v", res)
	}
}

func TestPushPullDumbbellWaitsForBridge(t *testing.T) {
	bridge := 64
	g := graphgen.Dumbbell(8, bridge)
	res, err := RunPushPull(g, 0, 11, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("incomplete")
	}
	if res.Rounds < bridge {
		t.Fatalf("rounds %d below bridge latency %d", res.Rounds, bridge)
	}
}

func TestPushPullTheorem29Bound(t *testing.T) {
	// Measured rounds should sit below c·(ℓ*/φ*)·ln n for a modest c
	// across trials on structured graphs.
	g := graphgen.Dumbbell(10, 16)
	// Exact conductance is infeasible at n=20? MaxExactN=22, fine.
	resC, err := condExact(g)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := PushPullBound(resC.PhiStar, resC.EllStar, g.N())
	if err != nil {
		t.Fatal(err)
	}
	var rounds []float64
	for seed := uint64(0); seed < 10; seed++ {
		res, err := RunPushPull(g, 0, seed, 1000000)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatal("incomplete")
		}
		rounds = append(rounds, float64(res.Rounds))
	}
	if mean := stats.Mean(rounds); mean > 10*bound {
		t.Fatalf("mean rounds %v far above Theorem 29 bound %v", mean, bound)
	}
}

func TestPushPullBoundErrors(t *testing.T) {
	if _, err := PushPullBound(0, 1, 10); err == nil {
		t.Fatal("φ*=0 should error")
	}
}

func TestPushPullLocalBroadcast(t *testing.T) {
	g := graphgen.Clique(16, 1)
	res, err := RunPushPullLocalBroadcast(g, 3, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("local broadcast incomplete")
	}
}

func TestPushPullAllToAll(t *testing.T) {
	g := graphgen.Cycle(12, 2)
	res, err := RunPushPullAllToAll(g, 5, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("all-to-all incomplete")
	}
	// All-to-all on a cycle needs at least diameter time.
	if int64(res.Rounds) < g.WeightedDiameter() {
		t.Fatalf("rounds %d below diameter %d", res.Rounds, g.WeightedDiameter())
	}
}

func TestPushPullDeterministicBySeed(t *testing.T) {
	g := graphgen.Grid(5, 5, 2)
	a, err := RunPushPull(g, 0, 42, 100000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPushPull(g, 0, 42, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds != b.Rounds || a.Exchanges != b.Exchanges {
		t.Fatal("same seed, different outcome")
	}
	c, err := RunPushPull(g, 0, 43, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds == c.Rounds && a.Exchanges == c.Exchanges {
		t.Log("different seeds coincided (possible but unusual)")
	}
}
