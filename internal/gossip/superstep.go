package gossip

import (
	"gossip/internal/bitset"
	"gossip/internal/graph"
	"gossip/internal/sim"
)

// Superstep is the randomized local broadcast primitive in the style of
// Censor-Hillel et al. [5] (the alternative to DTG that the paper's
// Section 4.1.1 mentions): in every step each node with unheard G_ℓ
// neighbors initiates an exchange with one of them chosen uniformly at
// random, blocking until it completes. Like DTG it maintains a
// phase-local heard set carried on exchange metadata, so repeated phases
// re-pay their schedule.
//
// The Timeout field is this repository's fault-tolerance extension (the
// paper's Section 7 future work): when positive, a node abandons an
// exchange that has not completed within Timeout rounds and moves on,
// treating the peer as unreachable. This bounds the damage of fail-stop
// crashes that stall the plain (timeout-free) primitive forever.
type Superstep struct {
	nv       *sim.NodeView
	ell      int
	timeout  int
	eligible []int
	heard    heardSet
	// abandoned marks neighbors given up on after a timeout.
	abandoned map[int]bool
	pending   int
	pendingAt int
	done      bool
}

var (
	_ sim.Protocol       = (*Superstep)(nil)
	_ sim.MetaProducer   = (*Superstep)(nil)
	_ sim.DoneReporter   = (*Superstep)(nil)
	_ sim.Waiter         = (*Superstep)(nil)
	_ sim.Sleeper        = (*Superstep)(nil)
	_ sim.AmnesiaReseter = (*Superstep)(nil)
	_ sim.StateCloner    = (*Superstep)(nil)
)

// CloneStateFrom deep-copies the state machine (heard set, abandonment
// marks, in-flight marker and its start round) from a frozen snapshot
// instance; eligible was rebuilt identically by the factory.
func (s *Superstep) CloneStateFrom(src sim.Protocol) {
	o := src.(*Superstep)
	s.heard.cloneFrom(&o.heard)
	s.abandoned = make(map[int]bool, len(o.abandoned))
	for k, v := range o.abandoned {
		s.abandoned[k] = v
	}
	s.pending = o.pending
	s.pendingAt = o.pendingAt
	s.done = o.done
}

// NextWake parks a finished node; a node blocked on an exchange sleeps
// until either the delivery or — with the fault-tolerance extension — the
// round its abandonment timer fires, so crashes cost O(1) events instead
// of O(timeout) no-op scans.
func (s *Superstep) NextWake(round int) int {
	if s.done {
		return sim.WakeOnDelivery
	}
	if s.pending >= 0 {
		if s.timeout > 0 {
			return s.pendingAt + s.timeout
		}
		return sim.WakeOnDelivery
	}
	return round + 1
}

// Waiting keeps the simulator alive while a timeout is pending so the
// abandonment timer can fire even when every other node is silent.
func (s *Superstep) Waiting() bool {
	return !s.done && s.timeout > 0 && s.pending >= 0
}

// NewSuperstep returns the randomized local broadcast protocol for one
// node. ell <= 0 disables the latency filter; timeout <= 0 disables
// abandonment.
func NewSuperstep(nv *sim.NodeView, ell, timeout int) *Superstep {
	s := &Superstep{
		nv:        nv,
		ell:       ell,
		timeout:   timeout,
		abandoned: make(map[int]bool),
		pending:   -1,
	}
	s.heard.Add(nv.ID())
	for i := 0; i < nv.Degree(); i++ {
		lat, known := nv.Latency(i)
		if !known {
			continue
		}
		if ell <= 0 || lat <= ell {
			s.eligible = append(s.eligible, i)
		}
	}
	return s
}

// Meta snapshots the phase-local heard set (cached immutable sorted id
// slice, shared until the set next changes).
func (s *Superstep) Meta() any { return s.heard.Snapshot() }

// Done reports local termination (all eligible neighbors heard or
// abandoned).
func (s *Superstep) Done() bool { return s.done }

// Activate initiates an exchange with a random unheard neighbor.
func (s *Superstep) Activate(round int) (int, bool) {
	if s.done {
		return 0, false
	}
	if s.pending >= 0 {
		if s.timeout > 0 && round-s.pendingAt >= s.timeout {
			// Fault-tolerance extension: give up on the stalled peer.
			s.abandoned[s.pending] = true
			s.pending = -1
		} else {
			return 0, false
		}
	}
	var fresh []int
	for _, i := range s.eligible {
		if !s.abandoned[i] && !s.heard.Contains(s.nv.NeighborID(i)) {
			fresh = append(fresh, i)
		}
	}
	if len(fresh) == 0 {
		s.done = true
		return 0, false
	}
	idx := fresh[s.nv.RNG().IntN(len(fresh))]
	s.pending = idx
	s.pendingAt = round
	return idx, true
}

// OnAmnesia restarts the protocol from its initial state alongside the
// engine's rumor reset: heard and abandoned sets clear, any in-flight
// marker drops (the exchange was lost with the down interval).
func (s *Superstep) OnAmnesia() {
	s.heard = heardSet{}
	s.heard.Add(s.nv.ID())
	s.abandoned = make(map[int]bool)
	s.pending = -1
	s.done = false
}

// OnDeliver merges the peer's heard set and unblocks the node.
func (s *Superstep) OnDeliver(dv sim.Delivery) {
	if peer, ok := dv.PeerMeta.([]int32); ok {
		s.heard.Union(peer)
	}
	s.heard.Add(dv.Peer)
	if dv.Initiator && dv.NeighborIndex == s.pending {
		s.pending = -1
	}
}

// SuperstepOptions configures one randomized local-broadcast phase.
type SuperstepOptions struct {
	Ell           int
	Timeout       int
	Seed          uint64
	MaxRounds     int
	InitialRumors []*bitset.Set
	CrashAt       []int
	// With Timeout > 0 the primitive abandons exchanges the embedded
	// ExecOptions fault schedule loses, so it degrades gracefully where
	// DTG stalls.
	ExecOptions
}

// RunSuperstep runs one randomized local-broadcast phase to quiescence.
func RunSuperstep(g *graph.Graph, opts SuperstepOptions) (sim.Result, error) {
	return dispatchSim("superstep", g, DriverOptions{
		Ell:           opts.Ell,
		LBTimeout:     opts.Timeout,
		Seed:          opts.Seed,
		MaxRounds:     opts.MaxRounds,
		InitialRumors: opts.InitialRumors,
		CrashAt:       opts.CrashAt,
		ExecOptions:   opts.ExecOptions,
	})
}
