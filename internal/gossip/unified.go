package gossip

import (
	"fmt"

	"gossip/internal/graph"
	"gossip/internal/sim"
)

// UnifiedResult reports both arms of the Theorem 31 algorithm.
type UnifiedResult struct {
	// Rounds is min(push-pull, spanner path): the paper runs both in
	// parallel, which costs at most twice the faster arm; we report the
	// faster arm's completion time.
	Rounds int
	// Winner names the faster arm: "push-pull" or "spanner".
	Winner string
	// PushPull is the push-pull arm's result.
	PushPull sim.Result
	// Spanner is the spanner-broadcast arm's result.
	Spanner BroadcastResult
}

// UnifiedOptions configures Unified.
type UnifiedOptions struct {
	Source graph.NodeID
	// KnownLatencies selects the Section 4 model for the spanner arm.
	KnownLatencies bool
	// D, when positive and latencies are known, skips guess-and-double.
	D         int
	Seed      uint64
	MaxRounds int
	// Adversity attaches a fault schedule to both arms (the paper's
	// side-by-side execution faces one network, so both arms see the
	// same schedule).
	// Workers shards intra-round simulation in both arms with
	// bit-identical results. Both ride on the embedded ExecOptions.
	ExecOptions
}

// Unified runs the Theorem 31 algorithm: push-pull and the spanner-based
// broadcast in parallel, taking whichever finishes first. With unknown
// latencies the spanner arm prepends latency discovery (Section 5.2),
// achieving O(min((D+Δ)·log³n, (ℓ*/φ*)·log n)).
func Unified(g *graph.Graph, opts UnifiedOptions) (UnifiedResult, error) {
	var out UnifiedResult
	pp, err := dispatchSim("push-pull", g, DriverOptions{
		Source: opts.Source, Seed: opts.Seed, MaxRounds: opts.MaxRounds,
		ExecOptions: opts.ExecOptions,
	})
	if err != nil {
		return out, fmt.Errorf("gossip: unified push-pull arm: %w", err)
	}
	out.PushPull = pp
	sb, err := SpannerBroadcast(g, SpannerOptions{
		D:              opts.D,
		KnownLatencies: opts.KnownLatencies,
		Seed:           opts.Seed + 1,
		MaxPhaseRounds: opts.MaxRounds,
		ExecOptions:    opts.ExecOptions,
	})
	if err != nil {
		return out, fmt.Errorf("gossip: unified spanner arm: %w", err)
	}
	out.Spanner = sb
	ppRounds := pp.Rounds
	if !pp.Completed {
		ppRounds = int(^uint(0) >> 2)
	}
	sbRounds := sb.Rounds
	if !sb.Completed {
		sbRounds = int(^uint(0) >> 2)
	}
	if ppRounds <= sbRounds {
		out.Rounds = ppRounds
		out.Winner = "push-pull"
	} else {
		out.Rounds = sbRounds
		out.Winner = "spanner"
	}
	if !pp.Completed && !sb.Completed {
		out.Rounds = -1
		out.Winner = "none"
	}
	return out, nil
}
