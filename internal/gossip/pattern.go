package gossip

import (
	"fmt"

	"gossip/internal/bitset"
	"gossip/internal/graph"
	"gossip/internal/sim"
)

// PatternSequence returns the ℓ-parameters of the recursive schedule T(k)
// of Section 4.2 (k must be a power of two):
//
//	T(1) = [1]
//	T(k) = T(k/2) · k · T(k/2)
//
// e.g. T(8) = 1,2,1,4,1,2,1,8,1,2,1,4,1,2,1.
func PatternSequence(k int) ([]int, error) {
	if k < 1 || k&(k-1) != 0 {
		return nil, fmt.Errorf("gossip: pattern parameter %d is not a power of two", k)
	}
	if k == 1 {
		return []int{1}, nil
	}
	half, err := PatternSequence(k / 2)
	if err != nil {
		return nil, err
	}
	out := make([]int, 0, 2*len(half)+1)
	out = append(out, half...)
	out = append(out, k)
	out = append(out, half...)
	return out, nil
}

// PatternOptions configures PatternBroadcast.
type PatternOptions struct {
	// D is the known weighted diameter; 0 engages guess-and-double.
	D    int
	Seed uint64
	// MaxPhaseRounds caps each ℓ-DTG phase.
	MaxPhaseRounds int
	// SkipCheck drops the Termination_Check pass for known D.
	SkipCheck bool
	// Adversity attaches a declarative fault schedule with rounds
	// absolute against the schedule's cumulative count; each ℓ-DTG
	// invocation receives it rebased by the rounds already consumed.
	// Completion is judged over nodes that are not permanently gone.
	// Workers shards intra-round simulation in every phase with
	// bit-identical results. Both ride on the embedded ExecOptions.
	ExecOptions
}

// PatternBroadcast runs Algorithm 5: execute the schedule T(k) of ℓ-DTG
// invocations (Lemma 26 guarantees all pairs within distance k have
// exchanged rumors afterwards), doubling k with a Termination_Check pass
// (one more T(k) execution, the broadcast the check prescribes) until
// dissemination completes. Unlike Spanner Broadcast it is deterministic
// and needs no bound on n.
func PatternBroadcast(g *graph.Graph, opts PatternOptions) (BroadcastResult, error) {
	var out BroadcastResult
	if err := g.Validate(); err != nil {
		return out, fmt.Errorf("gossip: pattern broadcast: %w", err)
	}
	known := opts.D > 0
	guess := 1
	if known {
		guess = nextPow2(opts.D)
	}
	cap64 := int64(g.N()) * int64(g.MaxLatency()) * 4
	var rumors []*bitset.Set
	for {
		var err error
		rumors, err = runPattern(g, guess, opts, &out, rumors, "t")
		if err != nil {
			return out, err
		}
		done := rumorsFullAlive(rumors, nil, opts.Adversity)
		if !opts.SkipCheck || !known {
			rumors, err = runPattern(g, guess, opts, &out, rumors, "check")
			if err != nil {
				return out, err
			}
			done = rumorsFullAlive(rumors, nil, opts.Adversity)
		}
		out.FinalGuess = guess
		if done {
			out.Completed = true
			return out, nil
		}
		if known {
			return out, nil
		}
		guess *= 2
		if int64(guess) > cap64 {
			return out, nil
		}
	}
}

// runPattern executes one full T(guess) schedule.
func runPattern(g *graph.Graph, guess int, opts PatternOptions, out *BroadcastResult, rumors []*bitset.Set, tag string) ([]*bitset.Set, error) {
	seqEll, err := PatternSequence(guess)
	if err != nil {
		return nil, err
	}
	maxRounds := opts.MaxPhaseRounds
	if maxRounds <= 0 {
		maxRounds = sim.DefaultMaxRounds
	}
	total := 0
	exch := int64(0)
	payload := int64(0)
	dropped, delivered := int64(0), int64(0)
	for i, ell := range seqEll {
		res, err := RunDTG(g, DTGOptions{
			Ell:           ell,
			Seed:          opts.Seed + uint64(i)*31 + 7,
			MaxRounds:     maxRounds,
			InitialRumors: rumors,
			ExecOptions: ExecOptions{
				Adversity: opts.Adversity.Shift(out.Rounds + total),
				Workers:   opts.Workers,
			},
		})
		if err != nil {
			return nil, err
		}
		total += res.Rounds
		exch += res.Exchanges
		payload += res.RumorPayload
		dropped += res.Dropped
		delivered += res.Delivered
		rumors = res.FinalRumors()
	}
	out.Phases = append(out.Phases, Phase{Name: fmt.Sprintf("%s(k=%d)", tag, guess), Rounds: total, Exchanges: exch, Payload: payload})
	out.Rounds += total
	out.Exchanges += exch
	out.Dropped += dropped
	out.Delivered += delivered
	out.RumorPayload += payload
	return rumors, nil
}

func nextPow2(x int) int {
	v := 1
	for v < x {
		v <<= 1
	}
	return v
}
