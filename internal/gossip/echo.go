package gossip

import (
	"gossip/internal/graph"
	"gossip/internal/sim"
)

// Echo is the echo/convergecast wave on the gossip transport: the root
// floods a wave token outward, and acknowledgements converge back until
// the root has heard the entire survivor set. Runs use AllToAll seeding
// so every node's own rumor doubles as its ack — a node joins the wave
// only once it holds the root's token, and from then on every piece of
// new information (a deeper node's ack included) re-arms a full
// round-robin sweep over its neighbors, pushing the union of what it
// knows both down and up the wave. Completion (sim.StopRootAcked) is
// exactly "the root's rumor set contains every survivor's rumor".
//
// Echo keeps no per-exchange bookkeeping beyond the sweep cursor, so a
// lost exchange is repaired only if some later delivery re-arms the
// sweep; under heavy loss a wave can quiesce incomplete, which is the
// trade-off experiment E31 measures.
type Echo struct {
	nv   *sim.NodeView
	root graph.NodeID
	// next is the round-robin neighbor cursor; sweepLeft counts the
	// contacts remaining in the current sweep.
	next      int
	sweepLeft int
	// lastCount is the rumor-set size at the last re-arm; any change —
	// including the drop after amnesia — restarts a full sweep.
	lastCount int
}

var (
	_ sim.Protocol       = (*Echo)(nil)
	_ sim.Sleeper        = (*Echo)(nil)
	_ sim.AmnesiaReseter = (*Echo)(nil)
	_ sim.StateCloner    = (*Echo)(nil)
)

// NewEcho returns the echo protocol for one node of the wave rooted at
// root.
func NewEcho(nv *sim.NodeView, root graph.NodeID) *Echo {
	return &Echo{nv: nv, root: root}
}

// CloneStateFrom copies the sweep state from a frozen snapshot instance.
func (e *Echo) CloneStateFrom(src sim.Protocol) {
	s := src.(*Echo)
	e.next = s.next
	e.sweepLeft = s.sweepLeft
	e.lastCount = s.lastCount
}

// Activate joins the wave once the root's token has arrived and works
// through the current sweep one neighbor per round, re-arming a full
// sweep whenever the node's rumor set changed since the last one.
func (e *Echo) Activate(round int) (int, bool) {
	if e.nv.Degree() == 0 || !e.nv.Knows(e.root) {
		return 0, false
	}
	if c := e.nv.RumorCount(); c != e.lastCount {
		e.lastCount = c
		e.sweepLeft = e.nv.Degree()
	}
	if e.sweepLeft == 0 {
		return 0, false
	}
	idx := e.next % e.nv.Degree()
	e.next++
	e.sweepLeft--
	return idx, true
}

// OnDeliver is a no-op: deliveries change the rumor set, and Activate
// detects that through RumorCount — arriving information re-wakes a
// parked node on its own.
func (e *Echo) OnDeliver(sim.Delivery) {}

// NextWake parks the node until the next delivery when it has nothing
// to do — before the token arrives, or between sweeps. The Sleeper
// contract holds because only a delivery can change the rumor set, and
// a delivery re-wakes the node.
func (e *Echo) NextWake(round int) int {
	if e.nv.Degree() == 0 || !e.nv.Knows(e.root) {
		return sim.WakeOnDelivery
	}
	if e.sweepLeft == 0 && e.nv.RumorCount() == e.lastCount {
		return sim.WakeOnDelivery
	}
	return round + 1
}

// OnAmnesia resets the sweep; the engine re-seeds the node's own rumor,
// so the next Activate sees a count change and re-arms once the token
// is heard again.
func (e *Echo) OnAmnesia() {
	e.next = 0
	e.sweepLeft = 0
	e.lastCount = 0
}

func init() {
	Register(&Driver{
		Name:        "echo",
		Aliases:     []string{"convergecast"},
		Description: "echo/convergecast wave: the root floods a token and acks converge back until the root heard every survivor",
		Options: []OptionDoc{
			{"Source", "wave root collecting the acks", []string{"source"}},
			{"CrashAt", "fail-stop schedule; completion judged over survivors", nil},
			{"Adversity", "fault schedule: loss, churn, flaps, crash batches", []string{"fault_spec"}},
			{"Seed/MaxRounds", "determinism and horizon", nil},
		},
		Prepare: func(g *graph.Graph, opts DriverOptions) (sim.Config, sim.Factory, sim.StopFunc, error) {
			n := topologyN(g, opts)
			slab := make([]Echo, n)
			factory := func(nv *sim.NodeView) sim.Protocol {
				p := &slab[nv.ID()]
				*p = Echo{nv: nv, root: opts.Source}
				return p
			}
			return sim.Config{
				Graph:     g,
				CSR:       opts.CSR,
				Workers:   opts.Workers,
				Seed:      opts.Seed,
				MaxRounds: opts.MaxRounds,
				Mode:      sim.AllToAll,
				Source:    opts.Source,
				CrashAt:   opts.CrashAt,
				Adversity: opts.Adversity,
			}, factory, sim.StopRootAcked(opts.Source, opts.CrashAt, opts.Adversity), nil
		},
	})
}
