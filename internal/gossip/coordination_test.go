package gossip

import (
	"testing"

	"gossip/internal/adversity"
	"gossip/internal/graph"
	"gossip/internal/graphgen"
	"gossip/internal/sim"
)

// electionLeaders extracts every node's (leader, decided) report from a
// finished run's protocol instances.
func electionLeaders(t *testing.T, res DriverResult) []int {
	t.Helper()
	if res.Sim == nil {
		t.Fatal("election result carries no Sim detail")
	}
	out := make([]int, len(res.Sim.World.Protos))
	for u, p := range res.Sim.World.Protos {
		lr, ok := p.(sim.LeaderReporter)
		if !ok {
			t.Fatalf("node %d protocol has no LeaderReporter facet", u)
		}
		l, decided := lr.Leader()
		if !decided {
			l = -1
		}
		out[u] = l
	}
	return out
}

func TestElectionBenignElectsMaxID(t *testing.T) {
	g := graphgen.Dumbbell(6, 8)
	res, err := Dispatch("election", g, DriverOptions{Seed: 7, MaxRounds: 1 << 13})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("election did not stabilize: %+v", res)
	}
	want := g.N() - 1
	for u, l := range electionLeaders(t, res) {
		if l != want {
			t.Fatalf("node %d decided on leader %d, want %d", u, l, want)
		}
	}
}

// TestElectionReelectsAfterLeaderCrash is the re-election contract: the
// highest ID crashes mid-run, its stale candidacy must time out
// everywhere, and the surviving maximum must win the second wave.
func TestElectionReelectsAfterLeaderCrash(t *testing.T) {
	g := graphgen.Clique(10, 1)
	crashAt := make([]int, g.N())
	for i := range crashAt {
		crashAt[i] = -1
	}
	crashAt[g.N()-1] = 30 // beyond first convergence start, before settling
	res, err := Dispatch("election", g, DriverOptions{Seed: 3, MaxRounds: 1 << 13, CrashAt: crashAt})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("election did not re-stabilize after leader crash: %+v", res)
	}
	want := g.N() - 2
	for u, l := range electionLeaders(t, res) {
		if u == g.N()-1 {
			continue // the crashed ex-leader's state is frozen, not judged
		}
		if l != want {
			t.Fatalf("node %d decided on leader %d, want %d", u, l, want)
		}
	}
}

// TestElectionSurvivesChurnOfLeader churns the max-ID node out with
// amnesia: survivors must re-elect while it is away, and after it
// rejoins (with wiped state) everyone — the rejoiner included — must
// re-converge on it.
func TestElectionSurvivesChurnOfLeader(t *testing.T) {
	g := graphgen.Clique(8, 1)
	spec := &adversity.Spec{Churn: []adversity.Churn{
		{Node: g.N() - 1, Leave: 10, Rejoin: 200, Amnesia: true},
	}}
	res, err := Dispatch("election", g, DriverOptions{
		Seed: 5, MaxRounds: 1 << 13,
		ExecOptions: ExecOptions{Adversity: spec},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("election did not stabilize across churn: %+v", res)
	}
	want := g.N() - 1
	for u, l := range electionLeaders(t, res) {
		if l != want {
			t.Fatalf("node %d decided on leader %d, want %d", u, l, want)
		}
	}
}

func TestElectionTimerOverrides(t *testing.T) {
	g := graphgen.Clique(6, 1)
	base, err := Dispatch("election", g, DriverOptions{Seed: 2, MaxRounds: 1 << 13})
	if err != nil {
		t.Fatal(err)
	}
	quick, err := Dispatch("election", g, DriverOptions{
		Seed: 2, MaxRounds: 1 << 13, SuspectAfter: 40, StableRounds: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !quick.Completed || quick.Rounds >= base.Rounds {
		t.Fatalf("StableRounds=4 run (%d rounds, completed=%v) not faster than default (%d rounds)",
			quick.Rounds, quick.Completed, base.Rounds)
	}
}

func TestEchoCompletesAndRootHearsAll(t *testing.T) {
	g := graphgen.Dumbbell(6, 8)
	res, err := Dispatch("echo", g, DriverOptions{Source: 3, Seed: 9, MaxRounds: 1 << 13})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("echo wave incomplete: %+v", res)
	}
	root := res.Sim.World.Views[3]
	for u := 0; u < g.N(); u++ {
		if !root.Knows(graph.NodeID(u)) {
			t.Fatalf("root missing ack of node %d", u)
		}
	}
}

// TestEchoCompletesOverSurvivorsUnderCrash crashes one non-root node at
// round 0: the wave must still complete, judged over survivors only.
func TestEchoCompletesOverSurvivorsUnderCrash(t *testing.T) {
	g := graphgen.Clique(8, 1)
	crashAt := make([]int, g.N())
	for i := range crashAt {
		crashAt[i] = -1
	}
	crashAt[5] = 0
	res, err := Dispatch("echo", g, DriverOptions{Seed: 4, MaxRounds: 1 << 13, CrashAt: crashAt})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("echo wave incomplete under crash: %+v", res)
	}
	root := res.Sim.World.Views[0]
	for u := 0; u < g.N(); u++ {
		if u != 5 && !root.Knows(graph.NodeID(u)) {
			t.Fatalf("root missing ack of survivor %d", u)
		}
	}
}

// TestCoordinationWorkerInvariance pins the tentpole determinism
// contract at the driver level: serial, 8-worker and sharded runs of
// both coordination drivers are the same run bit for bit, benign and
// under a fault schedule.
func TestCoordinationWorkerInvariance(t *testing.T) {
	g := graphgen.Dumbbell(8, 6)
	spec, err := adversity.ParseSpec("loss=0.05;churn=1:6-40:amnesia")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"election", "echo"} {
		for _, adv := range []*adversity.Spec{nil, spec} {
			opts := DriverOptions{Source: 2, Seed: 21, MaxRounds: 1 << 13}
			opts.Adversity = adv
			serial, err := Dispatch(name, g, opts)
			if err != nil {
				t.Fatalf("%s serial: %v", name, err)
			}
			par := opts
			par.Workers = 8
			parallel, err := Dispatch(name, g, par)
			if err != nil {
				t.Fatalf("%s workers=8: %v", name, err)
			}
			if serial.Rounds != parallel.Rounds || serial.Completed != parallel.Completed ||
				serial.Exchanges != parallel.Exchanges || serial.Delivered != parallel.Delivered ||
				serial.Dropped != parallel.Dropped {
				t.Fatalf("%s adv=%v: workers=8 diverges: %+v vs %+v", name, adv != nil, parallel, serial)
			}
			sharded, _, err := DispatchLocalSharded(name, g, opts, 3)
			if err != nil {
				t.Fatalf("%s sharded: %v", name, err)
			}
			if serial.Rounds != sharded.Rounds || serial.Completed != sharded.Completed ||
				serial.Exchanges != sharded.Exchanges || serial.Delivered != sharded.Delivered ||
				serial.Dropped != sharded.Dropped {
				t.Fatalf("%s adv=%v: sharded diverges: %+v vs %+v", name, adv != nil, sharded, serial)
			}
		}
	}
}

// TestStopLeaderStableNoFacet pins that leader-quantified stops treat
// protocols without the LeaderReporter facet as undecided forever: a
// push-pull run under StopLeaderStable must hit the horizon.
func TestStopLeaderStableNoFacet(t *testing.T) {
	g := graphgen.Clique(4, 1)
	d, ok := Lookup("push-pull")
	if !ok {
		t.Fatal("push-pull not registered")
	}
	cfg, factory, _, err := d.Prepare(g, DriverOptions{Seed: 1, MaxRounds: 64})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(cfg, factory, sim.StopLeaderStable(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("StopLeaderStable completed without any LeaderReporter facet")
	}
}
