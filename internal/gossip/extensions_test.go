package gossip

import (
	"testing"

	"gossip/internal/adversity"
	"gossip/internal/graph"
	"gossip/internal/graphgen"
)

func TestPushPullBlockingSlower(t *testing.T) {
	// On a slow-edged clique the blocking variant cannot pipeline, so it
	// should need at least as many rounds on average.
	g := graphgen.Clique(16, 8)
	sumNB, sumB := 0, 0
	for seed := uint64(0); seed < 5; seed++ {
		nb, err := RunPushPull(g, 0, seed, 1<<18)
		if err != nil {
			t.Fatal(err)
		}
		bl, err := RunPushPullBlocking(g, 0, seed, 1<<18)
		if err != nil {
			t.Fatal(err)
		}
		if !nb.Completed || !bl.Completed {
			t.Fatal("incomplete")
		}
		sumNB += nb.Rounds
		sumB += bl.Rounds
	}
	if sumB < sumNB {
		t.Fatalf("blocking (%d) beat non-blocking (%d) overall; expected the opposite", sumB, sumNB)
	}
}

func TestPushPullMultiSource(t *testing.T) {
	g := graphgen.Cycle(16, 2)
	single, err := RunPushPull(g, 0, 3, 1<<18)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := RunPushPullMultiSource(g, []graph.NodeID{0, 8}, 3, 1<<18)
	if err != nil {
		t.Fatal(err)
	}
	if !multi.Completed {
		t.Fatal("multi-source incomplete")
	}
	// Two antipodal sources should not be slower than one (they cover
	// half the ring each, though the all-sources criterion adds work).
	if multi.Rounds > 2*single.Rounds+4 {
		t.Fatalf("multi-source %d much slower than single %d", multi.Rounds, single.Rounds)
	}
}

func TestPushPullWithCrashesInformsSurvivors(t *testing.T) {
	g := graphgen.Clique(16, 1)
	crashAt := make([]int, 16)
	for i := range crashAt {
		crashAt[i] = -1
	}
	crashAt[5], crashAt[6] = 2, 2
	res, err := RunPushPullWithCrashes(g, 0, crashAt, 7, 1<<18)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("survivors not informed")
	}
}

func TestPushPullBoundedInDegreeStar(t *testing.T) {
	// Cap 1 on a star serializes the center: Θ(n) rounds.
	n := 17
	g := graphgen.Star(n, 1)
	capped, err := RunPushPullBoundedInDegree(g, 0, 1, 5, 1<<18)
	if err != nil {
		t.Fatal(err)
	}
	free, err := RunPushPullBoundedInDegree(g, 0, 0, 5, 1<<18)
	if err != nil {
		t.Fatal(err)
	}
	if !capped.Completed || !free.Completed {
		t.Fatal("incomplete")
	}
	if capped.Rounds < (n-1)/2 {
		t.Fatalf("capped rounds = %d, expected Θ(n)", capped.Rounds)
	}
	if free.Rounds > 4 {
		t.Fatalf("uncapped rounds = %d on a star", free.Rounds)
	}
	if capped.Dropped == 0 {
		t.Fatal("no drops recorded under cap")
	}
}

func TestSpannerBroadcastWithMidRunCrashes(t *testing.T) {
	g := graphgen.Clique(16, 2)
	crashAt := make([]int, 16)
	for i := range crashAt {
		crashAt[i] = -1
	}
	crashAt[1] = 5
	res, err := SpannerBroadcast(g, SpannerOptions{
		KnownLatencies: true, Seed: 3, MaxPhaseRounds: 4096, CrashAt: crashAt,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Survivors must end up complete on a redundant clique spanner, at
	// some round-count inflation versus the crash-free run.
	if !res.Completed {
		t.Fatalf("survivor dissemination incomplete: %+v", res)
	}
}

func TestShiftCrashes(t *testing.T) {
	in := []int{-1, 0, 5, 10}
	out := shiftCrashes(in, 5)
	want := []int{-1, 0, 0, 5}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("shiftCrashes = %v, want %v", out, want)
		}
	}
	if shiftCrashes(nil, 3) != nil {
		t.Fatal("nil schedule must stay nil")
	}
}

func TestRumorsFullAlive(t *testing.T) {
	g := graphgen.Clique(4, 1)
	_ = g
	res, err := RunDTG(graphgen.Clique(4, 1), DTGOptions{Ell: 1, Seed: 1, MaxRounds: 1000})
	if err != nil {
		t.Fatal(err)
	}
	rumors := res.FinalRumors()
	if !rumorsFullAlive(rumors, nil, nil) {
		t.Fatal("complete run not full")
	}
	// Mark node 3 dead: fullness over survivors must ignore it.
	rumors[3].Clear()
	if rumorsFullAlive(rumors, []int{-1, -1, -1, 0}, nil) != true {
		t.Fatal("alive-fullness should ignore the crashed node")
	}
	rumors[0].Remove(1)
	if rumorsFullAlive(rumors, []int{-1, -1, -1, 0}, nil) {
		t.Fatal("missing survivor rumor not detected")
	}
}

func TestSpreadCurveFromPushPull(t *testing.T) {
	g := graphgen.Clique(32, 1)
	res, err := RunPushPull(g, 0, 9, 1<<18)
	if err != nil {
		t.Fatal(err)
	}
	curve := res.SpreadCurve()
	if len(curve) != res.Rounds+1 {
		t.Fatalf("curve length %d for %d rounds", len(curve), res.Rounds)
	}
	if curve[0] < 1 || curve[len(curve)-1] != 32 {
		t.Fatalf("curve endpoints wrong: %v", curve)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1] {
			t.Fatal("curve not monotone")
		}
	}
	// Epidemic S-shape: the half-time is before the final round on a
	// clique (exponential growth phase then stragglers).
	if ht := res.HalfTime(); ht < 0 || ht > res.Rounds {
		t.Fatalf("HalfTime = %d", ht)
	}
}

// TestSuperstepAmnesiaRestartsProtocol pins the AmnesiaReseter wiring:
// a local-broadcast protocol's heard set and done flag reflect knowledge
// the engine's amnesia reset discards, so the protocol must restart with
// it. Node 2 hears peers before leaving, rejoins amnesic, and must end
// holding every neighbor's rumor again — with only its node-local
// restart (not stale heard entries) making that possible. Timeouts let
// the peers whose exchanges died with the down interval move on.
func TestSuperstepAmnesiaRestartsProtocol(t *testing.T) {
	g := graphgen.Clique(6, 1)
	res, err := RunSuperstep(g, SuperstepOptions{
		Timeout:   4,
		Seed:      3,
		MaxRounds: 1 << 12,
		ExecOptions: ExecOptions{
			Adversity: adversity.MustParseSpec("churn=2:4-12:amnesia"),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("superstep under amnesic churn incomplete: %+v", res)
	}
	// The amnesic node lost everything at round 12; quiescence after a
	// protocol restart means it re-gathered its full neighborhood.
	for v := 0; v < g.N(); v++ {
		if !res.World.Views[2].Knows(v) {
			t.Fatalf("amnesic node 2 completed without re-learning rumor %d (heard set survived the reset?)", v)
		}
	}
}

// TestAmnesiaRestartAcrossDrivers drives every single-phase driver
// through an amnesic churn schedule: the run must execute without
// error (each protocol's OnAmnesia restart included) and stay
// bit-identical between workers 1 and 8.
func TestAmnesiaRestartAcrossDrivers(t *testing.T) {
	g := graphgen.Clique(6, 1)
	spec := adversity.MustParseSpec("churn=1:2-8:amnesia")
	for _, driver := range []string{"push-pull", "flood", "dtg", "superstep", "rr"} {
		t.Run(driver, func(t *testing.T) {
			run := func(workers int) DriverResult {
				res, err := Dispatch(driver, g, DriverOptions{
					Source: 0, Seed: 5, MaxRounds: 1 << 12,
					ExecOptions: ExecOptions{Adversity: spec, Workers: workers},
				})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			w1, w8 := run(1), run(8)
			if w1.Rounds != w8.Rounds || w1.Exchanges != w8.Exchanges ||
				w1.Dropped != w8.Dropped || w1.Delivered != w8.Delivered {
				t.Fatalf("workers diverge under amnesic churn:\n w1 %+v\n w8 %+v", w1, w8)
			}
		})
	}
}

// TestChurnedNodeMustBeInformedAfterRejoin pins the survivor-completion
// semantics: a broadcast under churn may not declare completion while a
// temporarily-down node is away — the node rejoins and must be informed
// first, exactly as the multi-phase pipelines' goneForever rule judges
// the same spec. (A never-returning churn, by contrast, is exempt.)
func TestChurnedNodeMustBeInformedAfterRejoin(t *testing.T) {
	g := graphgen.Clique(12, 1)
	res, err := Dispatch("push-pull", g, DriverOptions{
		Source: 0, Seed: 3, MaxRounds: 1 << 14,
		ExecOptions: ExecOptions{Adversity: adversity.MustParseSpec("churn=1:1-300")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("incomplete: %+v", res)
	}
	if res.Rounds < 300 {
		t.Fatalf("completed at round %d while node 1 was still churned out (rejoin at 300)", res.Rounds)
	}
	if res.InformedAt[1] < 300 {
		t.Fatalf("node 1 informed at %d, before its rejoin", res.InformedAt[1])
	}
	// A permanent leave is a survivor-set exemption: completion no
	// longer waits for the node.
	gone, err := Dispatch("push-pull", g, DriverOptions{
		Source: 0, Seed: 3, MaxRounds: 1 << 14,
		ExecOptions: ExecOptions{Adversity: adversity.MustParseSpec("churn=1:1-inf")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !gone.Completed || gone.Rounds >= 300 {
		t.Fatalf("permanent leave should not delay completion: %+v", gone)
	}
}
