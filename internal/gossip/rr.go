package gossip

import (
	"gossip/internal/bitset"
	"gossip/internal/graph"
	"gossip/internal/sim"
	"gossip/internal/spanner"
)

// RR is the round-robin broadcast of Algorithm 1: each node cycles through
// its directed-spanner out-edges of latency <= k, initiating one exchange
// per round, for budget rounds in total. Lemma 21 shows k·Δout + k rounds
// suffice to exchange rumors between any two nodes within distance k.
type RR struct {
	out    []int // adjacency indices of usable out-edges
	budget int
	steps  int
}

var (
	_ sim.Protocol       = (*RR)(nil)
	_ sim.DoneReporter   = (*RR)(nil)
	_ sim.Sleeper        = (*RR)(nil)
	_ sim.AmnesiaReseter = (*RR)(nil)
	_ sim.StateCloner    = (*RR)(nil)
)

// CloneStateFrom copies the schedule position from a frozen snapshot
// instance; out-edges and budget come from construction.
func (r *RR) CloneStateFrom(src sim.Protocol) {
	r.steps = src.(*RR).steps
}

// NewRR returns the RR protocol for one node. outIdx are the node's
// spanner out-edge adjacency indices (already filtered to latency <= k).
func NewRR(outIdx []int, budget int) *RR {
	return &RR{out: outIdx, budget: budget}
}

// Activate cycles through out-edges until the budget is exhausted.
func (r *RR) Activate(int) (int, bool) {
	if r.steps >= r.budget || len(r.out) == 0 {
		return 0, false
	}
	idx := r.out[r.steps%len(r.out)]
	r.steps++
	return idx, true
}

// OnDeliver is a no-op; the simulator merges rumors.
func (r *RR) OnDeliver(sim.Delivery) {}

// Done reports budget exhaustion.
func (r *RR) Done() bool { return r.steps >= r.budget || len(r.out) == 0 }

// OnAmnesia restarts the round-robin schedule: a node that lost its
// state re-pays its full budget so its (rebuilt) rumors still traverse
// every out-edge.
func (r *RR) OnAmnesia() { r.steps = 0 }

// NextWake parks the node once its budget is exhausted; until then it
// acts every round.
func (r *RR) NextWake(round int) int {
	if r.Done() {
		return sim.WakeOnDelivery
	}
	return round + 1
}

// RROptions configures one RR Broadcast phase.
type RROptions struct {
	// Spanner supplies the out-edge orientation.
	Spanner *spanner.Spanner
	// K is the Algorithm 1 parameter: only out-edges with latency <= K
	// are used and the budget is K·Δout + K (Δout measured over usable
	// edges) unless Budget overrides it.
	K int
	// Budget overrides the Lemma 21 budget when positive.
	Budget        int
	Seed          uint64
	MaxRounds     int
	InitialRumors []*bitset.Set
	// Stop ends the phase early (defaults to budget exhaustion).
	Stop sim.StopFunc
	// CrashAt injects fail-stop crashes (see sim.Config.CrashAt).
	CrashAt []int
	ExecOptions
}

// RunRR runs one RR Broadcast phase. It is sugar for the "rr" driver
// with an explicit spanner.
func RunRR(g *graph.Graph, opts RROptions) (sim.Result, error) {
	return runRR(g, opts.Spanner, opts)
}

// runRR is the "rr" driver body: spanner-oriented round-robin broadcast.
func runRR(g *graph.Graph, sp *spanner.Spanner, opts RROptions) (sim.Result, error) {
	cfg, factory, stop, err := prepareRR(g, sp, opts)
	if err != nil {
		return sim.Result{}, err
	}
	return sim.Run(cfg, factory, stop)
}

// prepareRR expands one RR phase into its sim.Run invocation without
// executing it; the "rr" driver's Prepare hook (and thus warm-start
// forking) goes through here. The out-edge orientation is rebuilt
// deterministically from the spanner, so re-preparing a variant against
// a frozen snapshot reproduces the schedule bit-identically.
func prepareRR(g *graph.Graph, sp *spanner.Spanner, opts RROptions) (sim.Config, sim.Factory, sim.StopFunc, error) {
	outIdx := make([][]int, g.N())
	maxOut := 0
	for u := 0; u < g.N(); u++ {
		nbrs := g.Neighbors(u)
		pos := make(map[graph.NodeID]int, len(nbrs))
		for i, nb := range nbrs {
			pos[nb.ID] = i
		}
		for _, e := range sp.Out[u] {
			if opts.K > 0 && e.Latency > opts.K {
				continue
			}
			outIdx[u] = append(outIdx[u], pos[e.ID])
		}
		if len(outIdx[u]) > maxOut {
			maxOut = len(outIdx[u])
		}
	}
	budget := opts.Budget
	if budget <= 0 {
		budget = opts.K*maxOut + opts.K
	}
	stop := opts.Stop
	if stop == nil {
		stop = sim.StopAllDone()
	} else {
		stop = sim.StopOr(stop, sim.StopAllDone())
	}
	return sim.Config{
		Graph:          g,
		Workers:        opts.Workers,
		Seed:           opts.Seed,
		KnownLatencies: true,
		MaxRounds:      opts.MaxRounds,
		Mode:           sim.AllToAll,
		InitialRumors:  opts.InitialRumors,
		CrashAt:        opts.CrashAt,
		Adversity:      opts.Adversity,
	}, func(nv *sim.NodeView) sim.Protocol { return NewRR(outIdx[nv.ID()], budget) }, stop, nil
}
