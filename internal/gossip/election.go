package gossip

import (
	"gossip/internal/graph"
	"gossip/internal/sim"
)

// Election is highest-surviving-ID leader election by candidacy gossip:
// every node continuously advertises the best (leader, evidence-round)
// pair it knows on exchange metadata while contacting neighbors
// round-robin. A node adopts any advertised leader with a higher ID than
// its current choice, refreshes evidence when peers confirm the leader
// is alive, and falls back to self-candidacy when the evidence goes
// stale for SuspectAfter rounds — which is how the protocol re-elects
// after the leader crashes or churns out: stale copies of the dead
// leader's candidacy time out everywhere, and the highest surviving ID
// wins the next wave. A choice that survives unchanged for StableRounds
// counts as decided (the LeaderReporter facet), and the run completes
// when every survivor has decided on the same surviving leader
// (sim.StopLeaderStable).
//
// All state changes happen in OnDeliver and Activate on owner-side
// state, and the advertisement is sampled at round barriers as exchange
// metadata, so runs are bit-identical across worker counts and shards.
type Election struct {
	nv           *sim.NodeView
	suspectAfter int
	stableRounds int
	// leader/evid are the best candidacy this node knows: the candidate
	// and the latest round at which someone had evidence of it alive.
	leader int32
	evid   int32
	// lastChange is the round leader last changed (-1 = re-anchor at the
	// next Activate, the post-amnesia state); settled is the decision
	// flag derived from it, refreshed every Activate.
	lastChange int
	settled    bool
	// next is the round-robin neighbor cursor.
	next int
	// metaCache is the immutable advertised pair; receivers of a Meta()
	// slice may hold it across barriers, so it is reallocated — never
	// mutated — when the values change.
	metaCache []int32
}

var (
	_ sim.Protocol       = (*Election)(nil)
	_ sim.MetaProducer   = (*Election)(nil)
	_ sim.LeaderReporter = (*Election)(nil)
	_ sim.Waiter         = (*Election)(nil)
	_ sim.AmnesiaReseter = (*Election)(nil)
	_ sim.StateCloner    = (*Election)(nil)
)

// NewElection returns the election protocol for one node: initially its
// own candidate, with fresh evidence.
func NewElection(nv *sim.NodeView, suspectAfter, stableRounds int) *Election {
	return &Election{
		nv:           nv,
		suspectAfter: suspectAfter,
		stableRounds: stableRounds,
		leader:       int32(nv.ID()),
	}
}

// CloneStateFrom copies the candidacy state from a frozen snapshot
// instance; the metadata cache restarts empty (it is rebuilt with
// identical values on first use).
func (el *Election) CloneStateFrom(src sim.Protocol) {
	s := src.(*Election)
	el.leader = s.leader
	el.evid = s.evid
	el.lastChange = s.lastChange
	el.settled = s.settled
	el.next = s.next
	el.metaCache = nil
}

// Leader reports the node's current choice and whether it has been
// stable for StableRounds (the decision criterion StopLeaderStable and
// the invariant harness read).
func (el *Election) Leader() (int, bool) { return int(el.leader), el.settled }

// Waiting keeps the engine from declaring quiescence before the node has
// decided: a node with no (live) neighbors still needs Activate calls to
// run its staleness timer and settle on itself.
func (el *Election) Waiting() bool { return !el.settled }

// Meta advertises the node's best candidacy to exchange peers as an
// immutable {leader, evidence-round} pair.
func (el *Election) Meta() any {
	if el.metaCache == nil || el.metaCache[0] != el.leader || el.metaCache[1] != el.evid {
		el.metaCache = []int32{el.leader, el.evid}
	}
	return el.metaCache
}

// consider applies one candidacy observation: a candidate c with
// evidence of life at round ev, observed at round now. Already-stale
// evidence never installs a new leader (it would be suspected at the
// next Activate anyway — skipping it keeps dead leaders' copies from
// ping-ponging during re-election).
func (el *Election) consider(c, ev int32, now int) {
	switch {
	case c == el.leader:
		if ev > el.evid {
			el.evid = ev
		}
	case c > el.leader:
		if now-int(ev) > el.suspectAfter {
			return
		}
		el.leader = c
		el.evid = ev
		el.lastChange = now
		el.settled = false
	}
}

// OnDeliver folds in the peer's advertised candidacy — and the peer
// itself: a delivered exchange proves the peer was alive through the
// transit window, so it is a candidate with evidence at this round.
func (el *Election) OnDeliver(dv sim.Delivery) {
	if pm, ok := dv.PeerMeta.([]int32); ok && len(pm) == 2 {
		el.consider(pm[0], pm[1], dv.Round)
	}
	el.consider(int32(dv.Peer), int32(dv.Round), dv.Round)
}

// Activate runs the staleness timer and contacts the next neighbor in
// round-robin order. A node that is its own leader refreshes its
// evidence every round — that refresh, gossiped outward, is the leader's
// heartbeat.
func (el *Election) Activate(round int) (int, bool) {
	if el.lastChange < 0 {
		el.lastChange = round
	}
	self := int32(el.nv.ID())
	if el.leader == self {
		el.evid = int32(round)
	} else if round-int(el.evid) > el.suspectAfter {
		el.leader = self
		el.evid = int32(round)
		el.lastChange = round
		el.settled = false
	}
	if !el.settled && round-el.lastChange >= el.stableRounds {
		el.settled = true
	}
	if el.nv.Degree() == 0 {
		return 0, false
	}
	idx := el.next % el.nv.Degree()
	el.next++
	return idx, true
}

// OnAmnesia restarts the node as a fresh self-candidate; lastChange
// re-anchors at the rejoin round's Activate (the engine wakes a
// rejoining node immediately).
func (el *Election) OnAmnesia() {
	el.leader = int32(el.nv.ID())
	el.evid = 0
	el.lastChange = -1
	el.settled = false
	el.next = 0
	el.metaCache = nil
}

// electionDefaults derives generous graph-aware timers: evidence must
// travel leader→node through round-robin sweeps (≤ degree rounds per
// hop) plus edge latencies, so the suspicion window scales with the
// network size and the slowest edge, and the stability window with the
// refresh lag alone. Values are deliberately loose — liveness timers
// trade re-election speed for stability, and the defaults favor never
// suspecting a live leader.
func electionDefaults(n, maxLat int) (suspectAfter, stableRounds int) {
	return 64 + 4*n + 8*maxLat, 32 + 2*maxLat
}

func init() {
	Register(&Driver{
		Name:        "election",
		Aliases:     []string{"leader"},
		Description: "highest-surviving-ID leader election via candidacy gossip; re-elects after crashes and churn",
		Options: []OptionDoc{
			{"SuspectAfter", "rounds without evidence of the leader before a node suspects it and reverts to self-candidacy (0 = graph-derived default)", []string{"suspect_after"}},
			{"StableRounds", "rounds a node's choice must survive unchanged to count as decided (0 = graph-derived default)", []string{"stable_rounds"}},
			{"CrashAt", "fail-stop schedule; stability is judged over survivors", nil},
			{"Adversity", "fault schedule: loss, churn, flaps, crash batches", []string{"fault_spec"}},
			{"Seed/MaxRounds", "determinism and horizon", nil},
		},
		Prepare: func(g *graph.Graph, opts DriverOptions) (sim.Config, sim.Factory, sim.StopFunc, error) {
			n := topologyN(g, opts)
			maxLat := 0
			switch {
			case g != nil:
				maxLat = g.MaxLatency()
			case opts.CSR != nil:
				maxLat = opts.CSR.MaxLatency()
			}
			suspectAfter, stableRounds := electionDefaults(n, maxLat)
			if opts.SuspectAfter > 0 {
				suspectAfter = opts.SuspectAfter
			}
			if opts.StableRounds > 0 {
				stableRounds = opts.StableRounds
			}
			slab := make([]Election, n)
			factory := func(nv *sim.NodeView) sim.Protocol {
				p := &slab[nv.ID()]
				*p = *NewElection(nv, suspectAfter, stableRounds)
				return p
			}
			return sim.Config{
				Graph:     g,
				CSR:       opts.CSR,
				Workers:   opts.Workers,
				Seed:      opts.Seed,
				MaxRounds: opts.MaxRounds,
				Mode:      sim.OneToAll,
				Source:    0,
				CrashAt:   opts.CrashAt,
				Adversity: opts.Adversity,
			}, factory, sim.StopLeaderStable(opts.CrashAt, opts.Adversity), nil
		},
	})
}
