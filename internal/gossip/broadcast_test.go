package gossip

import (
	"testing"

	"gossip/internal/graph"
	"gossip/internal/graphgen"
	"gossip/internal/sim"
	"gossip/internal/spanner"
)

func TestFloodStarCostsNTimesD(t *testing.T) {
	// Footnote 3: without pull, a star with latency-D edges costs Ω(nD)
	// in the blocking regime; push-pull needs ~D.
	n, lat := 12, 8
	g := graphgen.Star(n, lat)
	flood, err := RunFlood(g, 0, true, 1, 1000000)
	if err != nil {
		t.Fatal(err)
	}
	if !flood.Completed {
		t.Fatal("flood incomplete")
	}
	if flood.Rounds < (n-1)*lat {
		t.Fatalf("blocking flood took %d rounds, expected >= %d", flood.Rounds, (n-1)*lat)
	}
	pp, err := RunPushPull(g, 0, 1, 1000000)
	if err != nil {
		t.Fatal(err)
	}
	if pp.Rounds*4 > flood.Rounds {
		t.Fatalf("push-pull (%d) not clearly faster than blocking flood (%d)", pp.Rounds, flood.Rounds)
	}
}

func TestFloodNonBlocking(t *testing.T) {
	g := graphgen.Star(12, 8)
	res, err := RunFlood(g, 0, false, 2, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("non-blocking flood incomplete")
	}
	// Non-blocking pipelines: n-1 initiations + latency.
	if res.Rounds > 12+8+2 {
		t.Fatalf("non-blocking flood took %d rounds", res.Rounds)
	}
}

func TestFloodFromLeaf(t *testing.T) {
	g := graphgen.Star(8, 3)
	res, err := RunFlood(g, 5, true, 3, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("flood from leaf incomplete")
	}
}

func TestRRBroadcastDeliversWithinLemma21Budget(t *testing.T) {
	// Build a spanner on a weighted grid and RR-broadcast on it: all
	// rumors must spread within k·Δout + k where k covers the spanner
	// diameter.
	g := graphgen.Grid(5, 5, 2)
	sp, err := spanner.Build(g, spanner.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	k := int(g.WeightedDiameter()) * (2*sp.K - 1)
	res, err := RunRR(g, RROptions{Spanner: sp, K: k, Seed: 4, MaxRounds: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	rumors := res.FinalRumors()
	for u := 0; u < g.N(); u++ {
		if !rumors[u].Full() {
			t.Fatalf("node %d missing rumors after RR budget", u)
		}
	}
}

func TestRRStopsEarlyWithStopFunc(t *testing.T) {
	g := graphgen.Clique(10, 1)
	sp, err := spanner.Build(g, spanner.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunRR(g, RROptions{
		Spanner: sp, K: 100, Seed: 6, MaxRounds: 1 << 20,
		Stop: sim.StopAllHaveAll(),
	})
	if err != nil {
		t.Fatal(err)
	}
	budget := 100*sp.MaxOutDegree() + 100
	if res.Rounds >= budget {
		t.Fatalf("RR did not stop early: %d rounds", res.Rounds)
	}
}

func TestRRLatencyFilter(t *testing.T) {
	// Spanner containing the slow bridge, but K below bridge latency:
	// the bridge must not be used, so the far side stays uninformed.
	g := graphgen.Dumbbell(5, 50)
	sp, err := spanner.Build(g, spanner.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunRR(g, RROptions{Spanner: sp, K: 10, Seed: 8, MaxRounds: 1 << 18})
	if err != nil {
		t.Fatal(err)
	}
	rumors := res.FinalRumors()
	if rumors[0].Contains(7) {
		t.Fatal("rumor crossed an edge above the K filter")
	}
}

func TestSpannerBroadcastKnownD(t *testing.T) {
	g := graphgen.Grid(4, 4, 2)
	d := int(g.WeightedDiameter())
	res, err := SpannerBroadcast(g, SpannerOptions{D: d, KnownLatencies: true, Seed: 1, SkipCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("spanner broadcast incomplete: %+v", res)
	}
	if res.FinalGuess != d {
		t.Fatalf("final guess %d, want %d", res.FinalGuess, d)
	}
	if len(res.Phases) == 0 || res.Rounds <= 0 {
		t.Fatalf("phase accounting missing: %+v", res)
	}
}

func TestSpannerBroadcastUnknownD(t *testing.T) {
	g := graphgen.Grid(4, 4, 2)
	res, err := SpannerBroadcast(g, SpannerOptions{KnownLatencies: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("guess-and-double incomplete: %+v", res)
	}
	// The loop may stop below the true diameter when the termination
	// check already passes (Lemma 24 forbids only *incorrect* early
	// termination), and overshoots at most one doubling past D.
	d := int(g.WeightedDiameter())
	if res.FinalGuess >= 4*d {
		t.Fatalf("final guess %d too large for diameter %d", res.FinalGuess, d)
	}
	if res.FinalGuess < 1 {
		t.Fatalf("final guess %d", res.FinalGuess)
	}
}

func TestSpannerBroadcastUnknownLatencies(t *testing.T) {
	rng := graphgen.NewRand(3)
	g, err := graphgen.ErdosRenyi(20, 0.3, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	graphgen.AssignRandomLatencies(g, 1, 6, rng)
	res, err := SpannerBroadcast(g, SpannerOptions{KnownLatencies: false, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("unknown-latency spanner broadcast incomplete: %+v", res)
	}
	// Must contain discovery phases.
	foundDiscover := false
	for _, p := range res.Phases {
		if len(p.Name) >= 8 && p.Name[:8] == "discover" {
			foundDiscover = true
		}
	}
	if !foundDiscover {
		t.Fatal("no discovery phase recorded")
	}
}

func TestSpannerBroadcastAvoidsSlowEdges(t *testing.T) {
	// Dumbbell where the direct bridge is slow but D is small... here D
	// includes the bridge; spanner broadcast must still complete.
	g := graphgen.Dumbbell(6, 9)
	res, err := SpannerBroadcast(g, SpannerOptions{KnownLatencies: true, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("incomplete")
	}
}

func TestPatternSequence(t *testing.T) {
	seq, err := PatternSequence(8)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 1, 4, 1, 2, 1, 8, 1, 2, 1, 4, 1, 2, 1}
	if len(seq) != len(want) {
		t.Fatalf("T(8) = %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("T(8) = %v, want %v", seq, want)
		}
	}
	if _, err := PatternSequence(6); err == nil {
		t.Fatal("non power of two should error")
	}
	one, err := PatternSequence(1)
	if err != nil || len(one) != 1 || one[0] != 1 {
		t.Fatalf("T(1) = %v, %v", one, err)
	}
}

func TestPatternBroadcastKnownD(t *testing.T) {
	g := graphgen.Grid(3, 4, 2)
	d := int(g.WeightedDiameter())
	res, err := PatternBroadcast(g, PatternOptions{D: d, Seed: 5, SkipCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("pattern broadcast incomplete: %+v", res)
	}
}

func TestPatternBroadcastUnknownD(t *testing.T) {
	g := graphgen.Cycle(10, 3)
	res, err := PatternBroadcast(g, PatternOptions{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("pattern guess-and-double incomplete: %+v", res)
	}
}

// Lemma 26: after T(k), nodes within weighted distance k have exchanged
// rumors. Check on a path with mixed latencies.
func TestPatternReachesDistanceK(t *testing.T) {
	g := graph.New(5)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 2)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(3, 4, 4)
	// T(4): nodes within distance 4 must know each other afterwards.
	var out BroadcastResult
	rumors, err := runPattern(g, 4, PatternOptions{Seed: 7}, &out, nil, "t")
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		du := g.Distances(u)
		for v := 0; v < g.N(); v++ {
			if du[v] <= 4 && !rumors[u].Contains(v) {
				t.Fatalf("after T(4), node %d missing rumor of node %d at distance %d", u, v, du[v])
			}
		}
	}
}

func TestDiscovery(t *testing.T) {
	g := graphgen.Dumbbell(4, 20)
	res, err := RunDiscovery(g, g.MaxDegree()+25, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != g.MaxDegree()+25 {
		t.Fatalf("discovery rounds = %d, want full budget %d", res.Rounds, g.MaxDegree()+25)
	}
}

func TestUnifiedPicksWinner(t *testing.T) {
	// Well-connected clique: push-pull should win (log n rounds vs the
	// spanner pipeline's polylog overhead).
	g := graphgen.Clique(24, 1)
	res, err := Unified(g, UnifiedOptions{Source: 0, KnownLatencies: true, Seed: 1, MaxRounds: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner != "push-pull" {
		t.Fatalf("winner = %s on a clique, want push-pull (pp=%d, sp=%d)",
			res.Winner, res.PushPull.Rounds, res.Spanner.Rounds)
	}
	if res.Rounds != res.PushPull.Rounds {
		t.Fatalf("rounds %d != winner rounds %d", res.Rounds, res.PushPull.Rounds)
	}
}

func TestUnifiedSpannerWinsOnBadConductance(t *testing.T) {
	// Long path: ℓ*/φ* is huge (φ ~ 1/n) while D log³n is comparable;
	// with a high-latency star attached... simplest: path of slow edges
	// has pushpull ~ D anyway. Use a graph where push-pull is slow:
	// dumbbell with huge bridge latency and large cliques — push-pull
	// rarely picks the bridge (probability 1/deg per round), while the
	// spanner algorithm uses it deterministically.
	g := graphgen.Dumbbell(16, 4)
	res, err := Unified(g, UnifiedOptions{Source: 0, KnownLatencies: true, Seed: 2, MaxRounds: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if !res.PushPull.Completed || !res.Spanner.Completed {
		t.Fatalf("arm incomplete: %+v", res)
	}
	// Not asserting the winner here (both are fast); assert agreement.
	if res.Rounds > res.PushPull.Rounds && res.Rounds > res.Spanner.Rounds {
		t.Fatal("unified rounds exceed both arms")
	}
}

func TestRumorsFullHelper(t *testing.T) {
	if rumorsFull(nil, 3) {
		t.Fatal("nil rumors reported full")
	}
}
