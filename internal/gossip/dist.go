package gossip

import (
	"fmt"

	"gossip/internal/graph"
	"gossip/internal/sim"
)

// distributable names the drivers whose runs may be sharded across
// processes: single-phase (one Prepare, no pipeline state hand-off),
// with stop conditions evaluable from replicated data and exchange
// metadata limited to []int32 — the shape the shard wire format ships.
// The canonical driver name is the key; aliases resolve through Lookup.
var distributable = map[string]bool{
	"push-pull": true,
	"flood":     true,
	"dtg":       true,
	"superstep": true,
	"election":  true,
	"echo":      true,
}

// Distributable reports whether the named driver supports distributed
// (multi-process sharded) execution.
func Distributable(name string) bool {
	d, ok := Lookup(name)
	return ok && distributable[d.Name]
}

// PrepareDist expands a distributed-eligible driver invocation into the
// single sim run it amounts to, enforcing the distributed gates that are
// about the request rather than the engine (RunDist re-checks the engine
// ones). Every shard worker and the coordinator call this with identical
// options, so each derives the identical sim.Config.
func PrepareDist(name string, g *graph.Graph, opts DriverOptions) (sim.Config, sim.Factory, sim.StopFunc, error) {
	d, ok := Lookup(name)
	if !ok {
		return sim.Config{}, nil, nil, fmt.Errorf("gossip: unknown driver %q", name)
	}
	if !distributable[d.Name] {
		return sim.Config{}, nil, nil, fmt.Errorf("gossip: driver %q does not support distributed execution (distributable: push-pull, flood, dtg, superstep, election, echo)", d.Name)
	}
	if opts.Stop != nil {
		// A caller-supplied closure cannot be shipped to workers, and a
		// stop that reads non-replicated state would silently diverge.
		return sim.Config{}, nil, nil, fmt.Errorf("gossip: distributed execution does not accept a custom Stop condition")
	}
	if opts.MaxInPerRound > 0 {
		return sim.Config{}, nil, nil, fmt.Errorf("gossip: distributed execution does not support the bounded in-degree model (max_in_per_round)")
	}
	return d.Prepare(g, opts)
}

// DispatchLocalSharded runs the named driver sharded across goroutines
// through the full distributed path — shard-restricted engines, frame
// barriers, node-order merge — instead of the in-process worker pool.
// It produces the same DriverResult as Dispatch, plus per-shard
// execution stats. This is the distributed path's in-process harness:
// the invariant suite and experiments assert bit-identity through it
// without paying for process fan-out.
func DispatchLocalSharded(name string, g *graph.Graph, opts DriverOptions, shards int) (DriverResult, []sim.DistStats, error) {
	cfg, factory, stop, err := PrepareDist(name, g, opts)
	if err != nil {
		return DriverResult{}, nil, err
	}
	res, stats, err := sim.RunDistLocal(cfg, shards, factory, stop)
	if err != nil {
		return DriverResult{}, nil, err
	}
	out, err := fromSimResult(res, nil)
	return out, stats, err
}
