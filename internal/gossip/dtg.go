package gossip

import (
	"gossip/internal/bitset"
	"gossip/internal/graph"
	"gossip/internal/sim"
)

// DTG is the ℓ-DTG local broadcast protocol (Appendix A.1, Algorithm 6):
// Haeupler's Deterministic Tree Gossip run on the subgraph G_ℓ of edges
// with latency <= ℓ, with every send followed by a wait for the edge's
// round trip.
//
// Per node: while some G_ℓ-neighbor's rumor is missing, link to one such
// new neighbor u_i and run the pipelined sequence
// PUSH(u_i..u_1) · PULL(u_1..u_i) · PULL(u_1..u_i) · PUSH(u_i..u_1),
// blocking on each exchange. Iteration counts are O(log n) because i-trees
// grow exponentially, giving O(ℓ log² n) total time.
//
// The protocol keeps a phase-local heard set L (reset each invocation) so
// repeated DTG phases of Spanner/Pattern Broadcast each pay their full
// schedule, exactly as the real algorithm re-disseminates fresh
// neighborhood data every repetition. L rides on exchange metadata as a
// sorted sparse id slice (see heardSet) — O(neighborhood) per node, not
// n bits, which is what lets DTG run at n=10⁶.
type DTG struct {
	nv  *sim.NodeView
	ell int
	// eligible holds the adjacency indices of G_ℓ neighbors.
	eligible []int
	// heard is the phase-local knowledge set L.
	heard heardSet
	// contacted are the linked neighbors u_1..u_i (adjacency indices).
	contacted []int
	// seq is the remaining send sequence of the current iteration.
	seq []int
	// pending is the adjacency index of the in-flight exchange, or -1.
	pending int
	done    bool
}

var (
	_ sim.Protocol       = (*DTG)(nil)
	_ sim.MetaProducer   = (*DTG)(nil)
	_ sim.DoneReporter   = (*DTG)(nil)
	_ sim.Sleeper        = (*DTG)(nil)
	_ sim.AmnesiaReseter = (*DTG)(nil)
	_ sim.StateCloner    = (*DTG)(nil)
)

// CloneStateFrom deep-copies the state machine (heard set, linked
// neighbors, remaining send schedule, in-flight marker) from a frozen
// snapshot instance; eligible was rebuilt identically by the factory.
func (d *DTG) CloneStateFrom(src sim.Protocol) {
	s := src.(*DTG)
	d.heard.cloneFrom(&s.heard)
	d.contacted = append(d.contacted[:0], s.contacted...)
	d.seq = append([]int(nil), s.seq...)
	d.pending = s.pending
	d.done = s.done
}

// NewDTG returns the ℓ-DTG protocol for one node. ell <= 0 means no
// latency filter. Latencies must be known (Section 4 model) or already
// discovered; edges of unknown latency are treated as outside G_ℓ.
func NewDTG(nv *sim.NodeView, ell int) *DTG {
	d := &DTG{nv: nv, ell: ell, pending: -1}
	d.heard.Add(nv.ID())
	for i := 0; i < nv.Degree(); i++ {
		lat, known := nv.Latency(i)
		if !known {
			continue
		}
		if ell <= 0 || lat <= ell {
			d.eligible = append(d.eligible, i)
		}
	}
	return d
}

// Meta snapshots the node's phase-local heard set for the peer: a cached
// immutable sorted id slice (shared until the set next changes).
func (d *DTG) Meta() any { return d.heard.Snapshot() }

// Done reports local termination: every G_ℓ neighbor has been heard.
func (d *DTG) Done() bool { return d.done }

// Activate drives the blocking send schedule.
func (d *DTG) Activate(int) (int, bool) {
	if d.done || d.pending >= 0 {
		return 0, false
	}
	if len(d.seq) == 0 && !d.startIteration() {
		return 0, false
	}
	idx := d.seq[0]
	d.seq = d.seq[1:]
	d.pending = idx
	return idx, true
}

// startIteration links one new neighbor and lays out the iteration's
// PUSH/PULL/PULL/PUSH schedule; it reports false when the node is done.
func (d *DTG) startIteration() bool {
	newIdx := -1
	for _, i := range d.eligible {
		if !d.heard.Contains(d.nv.NeighborID(i)) {
			newIdx = i
			break
		}
	}
	if newIdx < 0 {
		d.done = true
		return false
	}
	d.contacted = append(d.contacted, newIdx)
	i := len(d.contacted)
	seq := make([]int, 0, 4*i)
	for j := i - 1; j >= 0; j-- { // PUSH: u_i .. u_1
		seq = append(seq, d.contacted[j])
	}
	for j := 0; j < i; j++ { // PULL: u_1 .. u_i
		seq = append(seq, d.contacted[j])
	}
	for j := 0; j < i; j++ { // second PULL
		seq = append(seq, d.contacted[j])
	}
	for j := i - 1; j >= 0; j-- { // second PUSH
		seq = append(seq, d.contacted[j])
	}
	d.seq = seq
	return true
}

// NextWake parks a finished node forever and a blocked node until its
// in-flight exchange returns; this is where DTG's wait-Θ(ℓ)-per-send
// schedule stops costing engine time on slow links.
func (d *DTG) NextWake(round int) int {
	if d.done || d.pending >= 0 {
		return sim.WakeOnDelivery
	}
	return round + 1
}

// OnAmnesia restarts the protocol from its initial state: the heard
// set, linked-neighbor list and send schedule reflect knowledge the
// engine's rumor reset just discarded, so they restart with it (the
// eligible list is kept — link latencies are measured, not gossiped).
func (d *DTG) OnAmnesia() {
	d.heard = heardSet{}
	d.heard.Add(d.nv.ID())
	d.contacted = nil
	d.seq = nil
	d.pending = -1
	d.done = false
}

// OnDeliver merges the peer's heard set and unblocks the state machine.
func (d *DTG) OnDeliver(dv sim.Delivery) {
	if peer, ok := dv.PeerMeta.([]int32); ok {
		d.heard.Union(peer)
	}
	d.heard.Add(dv.Peer)
	if dv.Initiator && dv.NeighborIndex == d.pending {
		d.pending = -1
	}
}

// DTGOptions configures one ℓ-DTG phase run.
type DTGOptions struct {
	Ell       int
	Seed      uint64
	MaxRounds int
	// InitialRumors carries state from a previous phase (nil seeds
	// AllToAll).
	InitialRumors []*bitset.Set
	// CrashAt injects fail-stop crashes (see sim.Config.CrashAt). DTG
	// has no timeout mechanism, so a node waiting on a crashed peer
	// stalls — the fragility the paper's Section 6 notes; the embedded
	// ExecOptions fault schedule stalls it the same way.
	CrashAt []int
	ExecOptions
}

// RunDTG runs one ℓ-DTG phase to quiescence (every node's local
// broadcast complete) and returns the simulation result.
func RunDTG(g *graph.Graph, opts DTGOptions) (sim.Result, error) {
	return dispatchSim("dtg", g, DriverOptions{
		Ell:           opts.Ell,
		Seed:          opts.Seed,
		MaxRounds:     opts.MaxRounds,
		InitialRumors: opts.InitialRumors,
		CrashAt:       opts.CrashAt,
		ExecOptions:   opts.ExecOptions,
	})
}
