package gossip

import (
	"math"
	"testing"

	"gossip/internal/graph"
	"gossip/internal/graphgen"
	"gossip/internal/sim"
)

// verifyLocalBroadcast checks every node ended up with the rumor of each
// G_ℓ neighbor.
func verifyLocalBroadcast(t *testing.T, g *graph.Graph, res sim.Result, ell int) {
	t.Helper()
	rumors := res.FinalRumors()
	for u := 0; u < g.N(); u++ {
		for _, nb := range g.Neighbors(u) {
			if ell > 0 && nb.Latency > ell {
				continue
			}
			if !rumors[u].Contains(nb.ID) {
				t.Fatalf("node %d missing rumor of %d-neighbor %d", u, ell, nb.ID)
			}
		}
	}
}

func TestDTGSolvesLocalBroadcastClique(t *testing.T) {
	g := graphgen.Clique(16, 1)
	res, err := RunDTG(g, DTGOptions{Ell: 1, Seed: 1, MaxRounds: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("DTG incomplete")
	}
	verifyLocalBroadcast(t, g, res, 1)
	// Haeupler: O(log² n) rounds; generous constant.
	logn := math.Log2(16)
	if float64(res.Rounds) > 30*logn*logn {
		t.Fatalf("DTG on K16 took %d rounds", res.Rounds)
	}
}

func TestDTGSolvesLocalBroadcastStar(t *testing.T) {
	// Star is the hard case for local broadcast: the center must hear
	// from all n-1 leaves, but DTG pipelines this in O(log² n)... no:
	// a star center has n-1 neighbors and must exchange with each (its
	// i-trees are vertex disjoint), still the schedule completes.
	g := graphgen.Star(16, 1)
	res, err := RunDTG(g, DTGOptions{Ell: 1, Seed: 2, MaxRounds: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("DTG incomplete on star")
	}
	verifyLocalBroadcast(t, g, res, 1)
}

func TestDTGRespectsLatencyFilter(t *testing.T) {
	// Dumbbell with slow bridge: 1-DTG must complete local broadcast
	// within each clique and never wait on the bridge.
	g := graphgen.Dumbbell(6, 100)
	res, err := RunDTG(g, DTGOptions{Ell: 1, Seed: 3, MaxRounds: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("1-DTG incomplete")
	}
	verifyLocalBroadcast(t, g, res, 1)
	if res.Rounds >= 100 {
		t.Fatalf("1-DTG used the slow bridge: %d rounds", res.Rounds)
	}
	// Node 0 must not have node 6..11's rumors... except via its clique?
	// The bridge endpoints only exchange across the bridge, which is
	// filtered, so side A cannot know side B.
	rumors := res.FinalRumors()
	if rumors[1].Contains(7) {
		t.Fatal("rumor crossed the filtered bridge")
	}
}

func TestDTGCostScalesWithEll(t *testing.T) {
	// ℓ-DTG on a uniform-latency clique: cost should scale roughly
	// linearly with the edge latency (every wait is ℓ).
	rounds := func(lat int) int {
		g := graphgen.Clique(8, lat)
		res, err := RunDTG(g, DTGOptions{Ell: lat, Seed: 4, MaxRounds: 1000000})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatal("incomplete")
		}
		return res.Rounds
	}
	r1, r8 := rounds(1), rounds(8)
	ratio := float64(r8) / float64(r1)
	if ratio < 4 || ratio > 16 {
		t.Fatalf("8x latency gave %vx rounds (r1=%d r8=%d); want ~8x", ratio, r1, r8)
	}
}

func TestDTGWeightedGraph(t *testing.T) {
	rng := graphgen.NewRand(5)
	g, err := graphgen.ErdosRenyi(24, 0.3, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	graphgen.AssignRandomLatencies(g, 1, 8, rng)
	res, err := RunDTG(g, DTGOptions{Ell: 8, Seed: 6, MaxRounds: 1000000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("incomplete")
	}
	verifyLocalBroadcast(t, g, res, 8)
}

func TestDTGCarriesInitialRumors(t *testing.T) {
	g := graphgen.Clique(6, 1)
	first, err := RunDTG(g, DTGOptions{Ell: 1, Seed: 7, MaxRounds: 10000})
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunDTG(g, DTGOptions{Ell: 1, Seed: 8, MaxRounds: 10000, InitialRumors: first.FinalRumors()})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Completed {
		t.Fatal("second phase incomplete")
	}
	// Crucially the second phase still pays its schedule (phase-local
	// heard sets reset), it does not exit at round 0.
	if second.Rounds == 0 {
		t.Fatal("repeated DTG phase was free; repetitions must re-pay their schedule")
	}
}

func TestDTGPathPipelining(t *testing.T) {
	// On a path, each internal node has 2 neighbors; DTG completes in
	// O(log² n) rounds, independent of path length.
	short := graphgen.Path(8, 1)
	long := graphgen.Path(64, 1)
	rs, err := RunDTG(short, DTGOptions{Ell: 1, Seed: 9, MaxRounds: 100000})
	if err != nil {
		t.Fatal(err)
	}
	rl, err := RunDTG(long, DTGOptions{Ell: 1, Seed: 9, MaxRounds: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Completed || !rl.Completed {
		t.Fatal("incomplete")
	}
	// Local broadcast on a path is constant-ish work per node: an 8x
	// longer path must not cost 8x the rounds.
	if rl.Rounds > 4*rs.Rounds+8 {
		t.Fatalf("path DTG not local: %d vs %d rounds", rl.Rounds, rs.Rounds)
	}
}
