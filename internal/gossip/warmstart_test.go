package gossip

import (
	"errors"
	"reflect"
	"testing"

	"gossip/internal/adversity"
	"gossip/internal/graphgen"
)

// warmFingerprint is everything a DriverResult pins down; two runs with
// equal fingerprints took the same trajectory.
type warmFingerprint struct {
	Rounds       int
	Completed    bool
	Exchanges    int64
	Messages     int64
	Dropped      int64
	Delivered    int64
	RumorPayload int64
	InformedAt   []int
}

func fingerprint(r DriverResult) warmFingerprint {
	return warmFingerprint{r.Rounds, r.Completed, r.Exchanges, r.Messages, r.Dropped, r.Delivered, r.RumorPayload, r.InformedAt}
}

// TestWarmStartBitIdentical is the fork-equivalence gate at the driver
// layer: for every single-phase driver under benign, lossy and churny
// schedules, a cold run must equal capture-at-half/resume — in every
// cross combination of capture and resume worker counts.
func TestWarmStartBitIdentical(t *testing.T) {
	g := graphgen.Grid(6, 6, 2)
	specs := map[string]string{
		"benign": "",
		"lossy":  "loss=0.2",
		"churny": "churn=2:3-9:amnesia;churn=5:4-12",
	}
	for _, driver := range []string{"push-pull", "flood", "dtg", "superstep", "rr"} {
		for specName, spec := range specs {
			t.Run(driver+"/"+specName, func(t *testing.T) {
				opts := DriverOptions{Source: 0, Seed: 11, MaxRounds: 1 << 14}
				if spec != "" {
					opts.Adversity = adversity.MustParseSpec(spec)
				}
				if driver == "superstep" {
					opts.LBTimeout = 8
				}
				cold, err := Dispatch(driver, g, opts)
				if err != nil {
					t.Fatal(err)
				}
				fork := cold.Rounds / 2
				for _, cw := range []int{1, 8} {
					base := opts
					base.Workers = cw
					w, err := Fork(driver, g, base, fork)
					if err != nil {
						t.Fatal(err)
					}
					for _, rw := range []int{1, 8} {
						variant := opts
						variant.Workers = rw
						warm, err := w.Resume(variant)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(fingerprint(warm), fingerprint(cold)) {
							t.Fatalf("capture@w%d/resume@w%d diverges from cold:\n warm %+v\n cold %+v",
								cw, rw, fingerprint(warm), fingerprint(cold))
						}
					}
				}
			})
		}
	}
}

// TestWarmStartDivergedFaultSpec pins the sweep use case: many resumes
// of one prefix under different fault schedules are (a) deterministic —
// identical overlays agree — and (b) actually diverge from the base
// trajectory when the overlay bites.
func TestWarmStartDivergedFaultSpec(t *testing.T) {
	g := graphgen.Grid(6, 6, 2)
	opts := DriverOptions{Source: 0, Seed: 7, MaxRounds: 1 << 14}
	cold, err := Dispatch("push-pull", g, opts)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Fork("push-pull", g, opts, cold.Rounds/2)
	if err != nil {
		t.Fatal(err)
	}
	lossy := opts
	lossy.Adversity = adversity.MustParseSpec("loss=0.5")
	a, err := w.Resume(lossy)
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.Resume(lossy)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fingerprint(a), fingerprint(b)) {
		t.Fatalf("identical diverged resumes disagree:\n %+v\n %+v", fingerprint(a), fingerprint(b))
	}
	if a.Dropped == 0 {
		t.Fatal("loss=0.5 overlay applied from the fork round dropped nothing")
	}
	same, err := w.Resume(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fingerprint(same), fingerprint(cold)) {
		t.Fatalf("undiverged resume after diverged ones no longer matches cold:\n %+v\n %+v",
			fingerprint(same), fingerprint(cold))
	}
}

// TestWarmStartErrors walks the refusal surface: unknown drivers,
// pipelines without a Prepare hook, and variants that disagree with the
// prefix on a frozen knob.
func TestWarmStartErrors(t *testing.T) {
	g := graphgen.Clique(8, 1)
	opts := DriverOptions{Source: 0, Seed: 3, MaxRounds: 1 << 12}
	if _, err := Fork("no-such-driver", g, opts, 4); err == nil {
		t.Fatal("unknown driver forked")
	}
	for _, pipeline := range []string{"spanner", "pattern", "auto"} {
		if _, err := Fork(pipeline, g, opts, 4); !errors.Is(err, ErrNoWarmStart) {
			t.Fatalf("%s: want ErrNoWarmStart, got %v", pipeline, err)
		}
		if d, _ := Lookup(pipeline); d.WarmStart() {
			t.Fatalf("%s claims warm-start support", pipeline)
		}
	}
	w, err := Fork("push-pull", g, opts, 2)
	if err != nil {
		t.Fatal(err)
	}
	reseeded := opts
	reseeded.Seed = 4
	if _, err := w.Resume(reseeded); err == nil {
		t.Fatal("reseeded variant resumed")
	}
	short := opts
	short.MaxRounds = 1
	if _, err := w.Resume(short); err == nil {
		t.Fatal("variant with horizon before the fork round resumed")
	}
}

// TestWarmStartDoneFork: a fork past the end of the run degenerates to
// the run itself, for every variant.
func TestWarmStartDoneFork(t *testing.T) {
	g := graphgen.Clique(8, 1)
	opts := DriverOptions{Source: 0, Seed: 3, MaxRounds: 1 << 12}
	cold, err := Dispatch("push-pull", g, opts)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Fork("push-pull", g, opts, cold.Rounds+50)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Done() || w.Round() != cold.Rounds {
		t.Fatalf("want done prefix at round %d, got done=%v round=%d", cold.Rounds, w.Done(), w.Round())
	}
	res, err := w.Resume(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fingerprint(res), fingerprint(cold)) {
		t.Fatalf("done resume differs from the finished run")
	}
}
