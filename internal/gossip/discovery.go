package gossip

import (
	"gossip/internal/adversity"
	"gossip/internal/bitset"
	"gossip/internal/graph"
	"gossip/internal/sim"
)

// Discover is the latency-discovery protocol of Section 5.2: each node
// contacts its neighbors one per round (Δ activations) and then waits for
// responses. Responses arriving within the phase budget reveal the edge's
// latency; edges that stay silent are slower than the budget and are
// exactly the edges the subsequent phases ignore.
type Discover struct {
	nv   *sim.NodeView
	next int
}

var (
	_ sim.Protocol       = (*Discover)(nil)
	_ sim.DoneReporter   = (*Discover)(nil)
	_ sim.Sleeper        = (*Discover)(nil)
	_ sim.AmnesiaReseter = (*Discover)(nil)
)

// NewDiscover returns the discovery protocol for one node.
func NewDiscover(nv *sim.NodeView) *Discover { return &Discover{nv: nv} }

// Activate probes the next neighbor.
func (d *Discover) Activate(int) (int, bool) {
	if d.next >= d.nv.Degree() {
		return 0, false
	}
	idx := d.next
	d.next++
	return idx, true
}

// OnDeliver is a no-op; the simulator records discovered latencies.
func (d *Discover) OnDeliver(sim.Delivery) {}

// OnAmnesia restarts the probe cursor (discovered latencies themselves
// are engine state and survive — they are measured, not gossiped).
func (d *Discover) OnAmnesia() { d.next = 0 }

// Done reports that all probes have been sent (responses may still be in
// flight; the phase budget bounds how long we wait for them).
func (d *Discover) Done() bool { return d.next >= d.nv.Degree() }

// NextWake parks the node once every neighbor has been probed.
func (d *Discover) NextWake(round int) int {
	if d.Done() {
		return sim.WakeOnDelivery
	}
	return round + 1
}

// RunDiscovery runs a discovery phase with the given round budget
// (typically Δ + current diameter guess). The returned result's Rounds is
// always the budget: discovery cost is paid in full.
func RunDiscovery(g *graph.Graph, budget int, seed uint64, initial []*bitset.Set) (sim.Result, error) {
	return runDiscovery(g, budget, seed, initial, nil, 0)
}

// runDiscovery is RunDiscovery with an explicit fault schedule and
// intra-round worker count.
func runDiscovery(g *graph.Graph, budget int, seed uint64, initial []*bitset.Set, adv *adversity.Spec, workers int) (sim.Result, error) {
	res, err := sim.Run(sim.Config{
		Graph:         g,
		Workers:       workers,
		Seed:          seed,
		MaxRounds:     budget,
		Mode:          sim.AllToAll,
		InitialRumors: initial,
		Adversity:     adv,
	}, func(nv *sim.NodeView) sim.Protocol { return NewDiscover(nv) }, sim.StopNever())
	if err != nil {
		return res, err
	}
	res.Rounds = budget
	res.Completed = true
	return res, nil
}
