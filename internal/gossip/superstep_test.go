package gossip

import (
	"testing"

	"gossip/internal/graphgen"
)

func TestSuperstepSolvesLocalBroadcast(t *testing.T) {
	for _, tc := range []struct {
		name string
		ell  int
	}{
		{"clique", 1},
		{"weighted", 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := graphgen.Clique(16, tc.ell)
			res, err := RunSuperstep(g, SuperstepOptions{Ell: tc.ell, Seed: 1, MaxRounds: 1 << 18})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Completed {
				t.Fatal("incomplete")
			}
			rumors := res.FinalRumors()
			for u := 0; u < g.N(); u++ {
				for _, nb := range g.Neighbors(u) {
					if nb.Latency <= tc.ell && !rumors[u].Contains(nb.ID) {
						t.Fatalf("node %d missing neighbor %d", u, nb.ID)
					}
				}
			}
		})
	}
}

func TestSuperstepRespectsFilter(t *testing.T) {
	g := graphgen.Dumbbell(6, 100)
	res, err := RunSuperstep(g, SuperstepOptions{Ell: 1, Seed: 2, MaxRounds: 1 << 18})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("incomplete")
	}
	if res.Rounds >= 100 {
		t.Fatalf("used the slow bridge: %d rounds", res.Rounds)
	}
}

func TestSuperstepStallsOnCrashWithoutTimeout(t *testing.T) {
	g := graphgen.Clique(8, 2)
	crashAt := []int{-1, 1, -1, -1, -1, -1, -1, -1}
	res, err := RunSuperstep(g, SuperstepOptions{Ell: 2, Seed: 3, MaxRounds: 2000, CrashAt: crashAt})
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 dies at round 1; without a timeout, any survivor whose
	// in-flight exchange with node 1 was dropped stalls forever, so the
	// phase cannot reach all-done.
	if res.Completed {
		t.Fatal("expected a stalled (incomplete) phase without timeout")
	}
}

func TestSuperstepTimeoutRecovers(t *testing.T) {
	g := graphgen.Clique(8, 2)
	crashAt := []int{-1, 1, -1, -1, -1, -1, -1, -1}
	res, err := RunSuperstep(g, SuperstepOptions{
		Ell: 2, Timeout: 6, Seed: 3, MaxRounds: 2000, CrashAt: crashAt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("timeout variant did not recover from the crash")
	}
	// Survivors must have completed local broadcast among themselves.
	rumors := res.FinalRumors()
	for u := 0; u < g.N(); u++ {
		if u == 1 {
			continue
		}
		for _, nb := range g.Neighbors(u) {
			if nb.ID == 1 {
				continue
			}
			if !rumors[u].Contains(nb.ID) {
				t.Fatalf("survivor %d missing survivor %d", u, nb.ID)
			}
		}
	}
}

func TestSuperstepComparableToDTG(t *testing.T) {
	// Both primitives solve the same problem; neither should be more
	// than ~10x the other on a clique.
	g := graphgen.Clique(32, 4)
	dtg, err := RunDTG(g, DTGOptions{Ell: 4, Seed: 5, MaxRounds: 1 << 18})
	if err != nil {
		t.Fatal(err)
	}
	ss, err := RunSuperstep(g, SuperstepOptions{Ell: 4, Seed: 5, MaxRounds: 1 << 18})
	if err != nil {
		t.Fatal(err)
	}
	if !dtg.Completed || !ss.Completed {
		t.Fatal("incomplete")
	}
	if ss.Rounds > 10*dtg.Rounds+20 || dtg.Rounds > 10*ss.Rounds+20 {
		t.Fatalf("primitives diverge: dtg=%d superstep=%d", dtg.Rounds, ss.Rounds)
	}
}

func TestSpannerBroadcastWithSuperstep(t *testing.T) {
	g := graphgen.Grid(4, 4, 2)
	res, err := SpannerBroadcast(g, SpannerOptions{
		KnownLatencies: true, Seed: 7, UseSuperstep: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("superstep pipeline incomplete: %+v", res)
	}
	foundSS := false
	for _, p := range res.Phases {
		if len(p.Name) >= 9 && p.Name[:9] == "superstep" {
			foundSS = true
		}
	}
	if !foundSS {
		t.Fatal("no superstep phase recorded")
	}
}

func TestSpannerBroadcastTimeoutSurvivesCrashes(t *testing.T) {
	g := graphgen.Clique(16, 2)
	crashAt := make([]int, 16)
	for i := range crashAt {
		crashAt[i] = -1
	}
	crashAt[1], crashAt[2] = 5, 5
	res, err := SpannerBroadcast(g, SpannerOptions{
		KnownLatencies: true, Seed: 9, UseSuperstep: true, LBTimeout: 8,
		MaxPhaseRounds: 4096, CrashAt: crashAt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("fault-tolerant pipeline incomplete: %+v", res)
	}
}
