package gossip

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"gossip/internal/graphgen"
	"gossip/internal/transport"
)

// netTestRound is deliberately tiny: these tests verify plumbing, not
// timing statistics, and the protocols only need ticks to happen.
const netTestRound = 500 * time.Microsecond

func TestRunNetPushPullChanMesh(t *testing.T) {
	csr := graphgen.Clique(16, 1).CSR()
	mesh := transport.NewChanMesh(csr.N(), 0)
	defer mesh.Close()
	res, err := RunNet(NetConfig{
		Mesh:   mesh,
		CSR:    csr,
		Driver: "push-pull",
		Opts:   DriverOptions{Seed: 1},
		Round:  netTestRound,
	})
	if err != nil {
		t.Fatalf("RunNet: %v", err)
	}
	if !res.Completed {
		t.Fatalf("push-pull did not complete: %+v", res)
	}
	if res.InformedAt[0] != 0 {
		t.Fatalf("source informedAt = %d, want 0", res.InformedAt[0])
	}
	for u, at := range res.InformedAt {
		if at < 0 {
			t.Fatalf("node %d never informed", u)
		}
	}
	if res.Messages == 0 {
		t.Fatal("no messages sent")
	}
}

func TestRunNetFloodBlockingChanMesh(t *testing.T) {
	csr := graphgen.Grid(4, 4, 1).CSR()
	mesh := transport.NewChanMesh(csr.N(), 0)
	defer mesh.Close()
	res, err := RunNet(NetConfig{
		Mesh:   mesh,
		CSR:    csr,
		Driver: "flood",
		Opts:   DriverOptions{Seed: 7},
		Round:  netTestRound,
	})
	if err != nil {
		t.Fatalf("RunNet: %v", err)
	}
	if !res.Completed {
		t.Fatalf("flood did not complete: %+v", res)
	}
}

// TestRunNetTCPTwoProcesses runs the same topology split over two TCP
// mesh halves inside one test binary — the in-process stand-in for the
// gossipnode multi-process path.
func TestRunNetTCPTwoProcesses(t *testing.T) {
	csr := graphgen.Clique(12, 1).CSR()
	addrs := make([]string, 2)
	lns := make([]net.Listener, 2)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	meshes := make([]*transport.TCPMesh, 2)
	for i := range meshes {
		m, err := transport.NewTCPMesh(i, addrs, csr.N(), 0)
		if err != nil {
			t.Fatal(err)
		}
		meshes[i] = m
		defer m.Close()
	}
	var startWG sync.WaitGroup
	startErrs := make([]error, 2)
	for i, m := range meshes {
		startWG.Add(1)
		go func(i int, m *transport.TCPMesh) {
			defer startWG.Done()
			startErrs[i] = m.Start(ctx)
		}(i, m)
	}
	startWG.Wait()
	for i, err := range startErrs {
		if err != nil {
			t.Fatalf("Start(%d): %v", i, err)
		}
	}

	results := make([]NetResult, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i, m := range meshes {
		wg.Add(1)
		go func(i int, m *transport.TCPMesh) {
			defer wg.Done()
			results[i], errs[i] = RunNet(NetConfig{
				Mesh:      m,
				CSR:       csr,
				Driver:    "push-pull",
				Opts:      DriverOptions{Seed: 3},
				Round:     2 * time.Millisecond,
				MaxRounds: 400,
			})
		}(i, m)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("RunNet(%d): %v", i, err)
		}
	}
	// Merge the two halves: every node must be informed in exactly one.
	for u := 0; u < csr.N(); u++ {
		proc := 0
		if lo, _ := transport.NodeRange(csr.N(), 2, 0); u >= lo+len(meshes[0].Local()) {
			proc = 1
		}
		if results[proc].InformedAt[u] < 0 {
			t.Fatalf("node %d (proc %d) never informed: %+v %+v", u, proc, results[0], results[1])
		}
	}
	if !results[0].Completed || !results[1].Completed {
		t.Fatalf("incomplete halves: %+v %+v", results[0], results[1])
	}
}

func TestRunNetValidation(t *testing.T) {
	csr := graphgen.Clique(4, 1).CSR()
	mesh := transport.NewChanMesh(csr.N(), 0)
	defer mesh.Close()
	if _, err := RunNet(NetConfig{CSR: csr, Driver: "push-pull"}); err == nil {
		t.Fatal("nil mesh accepted")
	}
	if _, err := RunNet(NetConfig{Mesh: mesh, CSR: csr, Driver: "no-such"}); err == nil {
		t.Fatal("unknown driver accepted")
	}
	if _, err := RunNet(NetConfig{Mesh: mesh, CSR: csr, Driver: "spanner"}); err == nil {
		t.Fatal("multi-phase driver accepted")
	}
	if _, err := RunNet(NetConfig{Mesh: mesh, CSR: csr, Driver: "push-pull", Opts: DriverOptions{Source: 99}}); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}
