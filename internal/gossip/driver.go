package gossip

import (
	"fmt"
	"sort"
	"strings"

	"gossip/internal/adversity"
	"gossip/internal/bitset"
	"gossip/internal/graph"
	"gossip/internal/sim"
	"gossip/internal/spanner"
)

// Objective selects what a dissemination run must achieve before it may
// stop.
type Objective int

const (
	// Broadcast is one-to-all: every node (or every survivor, under a
	// crash schedule) holds the source rumor. The default.
	Broadcast Objective = iota
	// AllToAll: every node holds every rumor.
	AllToAll
	// LocalBroadcast: every node holds each graph neighbor's rumor.
	LocalBroadcast
)

// Variant names a driver-specific protocol ablation. The empty string is
// always the driver's canonical form.
const (
	// VariantBlocking makes push-pull wait for each exchange to complete
	// before the next initiation (the footnote-3 ablation).
	VariantBlocking = "blocking"
	// VariantNonBlocking makes flood initiate every round instead of
	// store-and-forward waiting on each exchange.
	VariantNonBlocking = "nonblocking"
)

// ExecOptions is the execution surface shared by every option struct in
// this package — engine knobs orthogonal to any protocol choice. It is
// embedded in DriverOptions and in each phase-level option struct
// (RROptions, DTGOptions, SuperstepOptions, SpannerOptions,
// PatternOptions, UnifiedOptions), so the knobs are declared and
// documented once; Go field promotion keeps opts.Workers / opts.Adversity
// / opts.CSR reads working everywhere.
type ExecOptions struct {
	// Workers shards intra-round simulation across goroutines (see
	// sim.Config.Workers); results are bit-identical for any value.
	Workers int
	// Adversity attaches a declarative fault schedule — message loss,
	// churn, link flaps, crash batches (see package adversity and
	// sim.Config.Adversity). Every registered driver accepts it; the
	// multi-phase pipelines rebase it between phases by the rounds
	// already consumed, exactly as they shift CrashAt. When the schedule
	// takes nodes down, completion is judged over survivors: nodes it
	// never permanently removes, including temporarily-churned nodes,
	// which must be informed after rejoining.
	Adversity *adversity.Spec
	// CSR supplies the topology in compressed sparse row form. The
	// single-phase drivers (push-pull, flood, dtg, superstep) accept it
	// with a nil *graph.Graph — the million-node path, where the
	// adjacency-map representation is never materialized. The pipeline
	// drivers (rr, spanner, pattern, auto) and the phase option structs
	// of graph-requiring pipelines still need the legacy graph and
	// ignore CSR.
	CSR *graph.CSR
}

// DriverOptions is the one option surface shared by every registered
// driver. Each driver documents (Driver.Options) which fields it reads;
// the rest are ignored. The zero value is a valid configuration for every
// driver: one-to-all from node 0 with defaulted horizons.
type DriverOptions struct {
	ExecOptions
	// Source is the rumor source for Broadcast objectives.
	Source graph.NodeID
	// Sources seeds several simultaneous sources (Broadcast objective
	// only); completion is judged against all of them.
	Sources []graph.NodeID
	// Objective selects the completion criterion (single-phase drivers).
	Objective Objective
	// Variant selects a protocol ablation; see the Variant* constants.
	Variant string
	// Seed drives all per-node randomness.
	Seed uint64
	// MaxRounds is the horizon (multi-phase pipelines: per phase).
	MaxRounds int
	// KnownLatencies selects the Section 4 model.
	KnownLatencies bool
	// D is the known weighted diameter; 0 engages guess-and-double in
	// the spanner/pattern pipelines.
	D int
	// Ell is the latency filter for dtg/superstep (0 = no filter).
	Ell int
	// K is the rr edge filter and budget parameter (0 = driver default).
	K int
	// Budget overrides the rr round budget when positive.
	Budget int
	// Spanner supplies rr's out-edge orientation; nil builds a default
	// Baswana-Sen spanner from Seed.
	Spanner *spanner.Spanner
	// InitialRumors carries state from a previous phase.
	InitialRumors []*bitset.Set
	// CrashAt injects fail-stop crashes (see sim.Config.CrashAt).
	CrashAt []int
	// MaxInPerRound caps accepted incoming initiations per node per
	// round (0 = unbounded).
	MaxInPerRound int
	// FaultTolerant switches the spanner pipeline to the Superstep
	// primitive with timeouts.
	FaultTolerant bool
	// LBTimeout is the superstep abandonment timer (0 = driver default
	// where fault tolerance demands one, else disabled).
	LBTimeout int
	// SkipCheck drops the Termination_Check accounting phase of the
	// spanner/pattern pipelines when D is known.
	SkipCheck bool
	// SuspectAfter is the election staleness window: rounds without
	// evidence of the leader before a node suspects it (0 = graph-derived
	// default).
	SuspectAfter int
	// StableRounds is the election decision window: rounds a node's
	// leader choice must survive unchanged to count as decided (0 =
	// graph-derived default).
	StableRounds int
	// Stop, when non-nil, additionally ends single-phase runs early.
	Stop sim.StopFunc
}

// DriverResult is the normalized outcome every driver reports: the
// union of sim.Result and BroadcastResult surfaced through one shape.
type DriverResult struct {
	// Rounds until the driver's completion criterion held.
	Rounds int
	// Completed is false when a horizon was hit first.
	Completed bool
	// Exchanges / Messages / Dropped / Delivered / RumorPayload are the
	// transport totals (multi-phase pipelines report Exchanges,
	// Dropped, Delivered and RumorPayload summed across phases;
	// Messages only where tracked).
	Exchanges    int64
	Messages     int64
	Dropped      int64
	Delivered    int64
	RumorPayload int64
	// InformedAt[u] is the first round u held the watched rumor, or -1;
	// nil for multi-phase pipelines, which have no single watched rumor.
	InformedAt []int
	// Winner names the faster arm of the auto/unified driver.
	Winner string
	// Sim is the underlying single-phase result, when there is one.
	Sim *sim.Result
	// Broadcast is the underlying multi-phase result, when there is one.
	Broadcast *BroadcastResult
}

// OptionDoc documents one DriverOptions field a driver consumes — the
// driver's options schema, rendered by CLI help and exposed as
// machine-readable request keys by gossipd.
type OptionDoc struct {
	Name string
	Doc  string
	// Keys are the machine-readable request-field names (snake_case, as
	// they appear in gossipd simulation requests) this option answers to.
	// Register validates them against RequestKeyVocabulary; an option
	// with no Keys is internal-only (e.g. InitialRumors) and cannot be
	// set through a request.
	Keys []string
}

// RequestKeyVocabulary is every machine-readable option key a driver may
// declare — the closed request-field namespace gossipd validates against.
// Keys here name DriverOptions fields one-to-one; "seed", "max_rounds"
// and "workers" are additionally accepted by every driver (the universal
// execution surface) and need not be re-declared.
func RequestKeyVocabulary() []string {
	out := make([]string, 0, len(requestKeyVocab))
	for k := range requestKeyVocab {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

var requestKeyVocab = map[string]bool{
	"source":           true,
	"sources":          true,
	"objective":        true,
	"variant":          true,
	"ell":              true,
	"k":                true,
	"d":                true,
	"budget":           true,
	"known_latencies":  true,
	"fault_spec":       true,
	"max_in_per_round": true,
	"fault_tolerant":   true,
	"lb_timeout":       true,
	"skip_check":       true,
	"suspect_after":    true,
	"stable_rounds":    true,
	"seed":             true,
	"max_rounds":       true,
	"workers":          true,
}

// universalRequestKeys are accepted by every driver without declaration:
// the execution knobs the engine itself consumes.
var universalRequestKeys = map[string]bool{
	"seed":       true,
	"max_rounds": true,
	"workers":    true,
}

// RequestKeys returns the sorted machine-readable request keys this
// driver accepts, including the universal execution keys.
func (d *Driver) RequestKeys() []string {
	set := map[string]bool{}
	for k := range universalRequestKeys {
		set[k] = true
	}
	for _, o := range d.Options {
		for _, k := range o.Keys {
			set[k] = true
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// AcceptsKey reports whether the driver consumes the machine-readable
// request key — the request-validation question gossipd asks before
// forwarding a field into DriverOptions.
func (d *Driver) AcceptsKey(key string) bool {
	if universalRequestKeys[key] {
		return true
	}
	for _, o := range d.Options {
		for _, k := range o.Keys {
			if k == key {
				return true
			}
		}
	}
	return false
}

// Driver is one named dissemination protocol: a factory for its per-node
// protocol instances, its stop condition, and its options schema, behind
// a uniform Run. core.Disseminate, internal/experiments and the CLIs all
// select protocols through this registry.
type Driver struct {
	// Name is the canonical registry key.
	Name string
	// Aliases are accepted alternate spellings.
	Aliases []string
	// Description is a one-line summary for CLI help.
	Description string
	// Options is the schema: the DriverOptions fields this driver reads.
	Options []OptionDoc
	// Run executes the protocol on g. Drivers that supply Prepare may
	// leave Run nil; Register derives it.
	Run func(g *graph.Graph, opts DriverOptions) (DriverResult, error)
	// Prepare expands the options into the single sim.Run invocation the
	// driver amounts to, without executing it. Only single-phase drivers
	// have one; multi-phase pipelines (spanner, pattern, auto) leave it
	// nil. A non-nil Prepare is what makes a driver warm-startable: Fork
	// captures an engine snapshot from the prepared run and Resume
	// re-prepares a variant's factory/stop against the frozen state.
	Prepare func(g *graph.Graph, opts DriverOptions) (sim.Config, sim.Factory, sim.StopFunc, error)
}

// WarmStart reports whether the driver supports snapshot forking
// (Fork/Resume); equivalently, whether it is a single sim.Run.
func (d *Driver) WarmStart() bool { return d.Prepare != nil }

var drivers = map[string]*Driver{}

// Register adds d under its name and aliases; duplicate names and option
// keys outside RequestKeyVocabulary panic (registration is an init-time
// programming error, not a runtime state).
func Register(d *Driver) {
	for _, o := range d.Options {
		for _, k := range o.Keys {
			if !requestKeyVocab[k] {
				panic(fmt.Sprintf("gossip: driver %q option %q declares key %q outside the request vocabulary", d.Name, o.Name, k))
			}
		}
	}
	if d.Run == nil && d.Prepare != nil {
		d.Run = func(g *graph.Graph, opts DriverOptions) (DriverResult, error) {
			cfg, factory, stop, err := d.Prepare(g, opts)
			if err != nil {
				return DriverResult{}, err
			}
			return fromSimResult(sim.Run(cfg, factory, stop))
		}
	}
	for _, name := range append([]string{d.Name}, d.Aliases...) {
		key := strings.ToLower(name)
		if _, dup := drivers[key]; dup {
			panic(fmt.Sprintf("gossip: duplicate driver %q", key))
		}
		drivers[key] = d
	}
}

// Lookup resolves a driver by name or alias (case-insensitive).
func Lookup(name string) (*Driver, bool) {
	d, ok := drivers[strings.ToLower(strings.TrimSpace(name))]
	return d, ok
}

// Names returns the sorted canonical driver names.
func Names() []string {
	seen := map[string]bool{}
	out := make([]string, 0, len(drivers))
	for _, d := range drivers {
		if !seen[d.Name] {
			seen[d.Name] = true
			out = append(out, d.Name)
		}
	}
	sort.Strings(out)
	return out
}

// Dispatch runs the named driver on g (or on opts.CSR when g is nil and
// the driver supports CSR-only topologies).
func Dispatch(name string, g *graph.Graph, opts DriverOptions) (DriverResult, error) {
	d, ok := Lookup(name)
	if !ok {
		return DriverResult{}, fmt.Errorf("gossip: unknown driver %q (have %s)", name, strings.Join(Names(), ", "))
	}
	if g == nil && opts.CSR == nil {
		return DriverResult{}, fmt.Errorf("gossip: driver %q needs a graph or a CSR topology", name)
	}
	return d.Run(g, opts)
}

// topologyN returns the node count of whichever topology representation
// the caller supplied.
func topologyN(g *graph.Graph, opts DriverOptions) int {
	if g != nil {
		return g.N()
	}
	return opts.CSR.N()
}

// needGraph guards the pipeline drivers that require the adjacency-map
// representation (spanner construction, latency filters over g).
func needGraph(name string, g *graph.Graph) error {
	if g == nil {
		return fmt.Errorf("gossip: driver %q requires an adjacency-map graph (CSR-only topologies are supported by push-pull, flood, dtg and superstep)", name)
	}
	return nil
}

// fromSimResult normalizes a single-phase simulation outcome.
func fromSimResult(res sim.Result, err error) (DriverResult, error) {
	if err != nil {
		return DriverResult{}, err
	}
	return DriverResult{
		Rounds:       res.Rounds,
		Completed:    res.Completed,
		Exchanges:    res.Exchanges,
		Messages:     res.Messages,
		Dropped:      res.Dropped,
		Delivered:    res.Delivered,
		RumorPayload: res.RumorPayload,
		InformedAt:   res.InformedAt,
		Sim:          &res,
	}, nil
}

// fromBroadcastResult normalizes a multi-phase pipeline outcome.
func fromBroadcastResult(res BroadcastResult, err error) (DriverResult, error) {
	if err != nil {
		return DriverResult{}, err
	}
	return DriverResult{
		Rounds:       res.Rounds,
		Completed:    res.Completed,
		Exchanges:    res.Exchanges,
		Dropped:      res.Dropped,
		Delivered:    res.Delivered,
		RumorPayload: res.RumorPayload,
		Broadcast:    &res,
	}, nil
}

// broadcastStop picks the stop condition for a Broadcast-objective run.
// Under a failure model completion is judged over survivors: with a
// crash-only schedule "survivor" and "currently alive" coincide
// (crashes are permanent), but churn intervals can end, so under an
// adversity schedule the run must also inform every node that will
// rejoin — the same goneForever semantics the multi-phase pipelines
// use, keeping identical fault schedules comparable across drivers.
func broadcastStop(opts DriverOptions) sim.StopFunc {
	stopFor := func(s graph.NodeID) sim.StopFunc {
		switch {
		case opts.Adversity.HasFailures():
			return sim.StopAllSurvivorsInformed(s, opts.CrashAt, opts.Adversity)
		case opts.CrashAt != nil:
			return sim.StopAllAliveInformed(s)
		default:
			return sim.StopAllInformed(s)
		}
	}
	if len(opts.Sources) > 0 {
		stops := make([]sim.StopFunc, len(opts.Sources))
		for i, s := range opts.Sources {
			stops[i] = stopFor(s)
		}
		return sim.StopAnd(stops...)
	}
	return stopFor(opts.Source)
}

// objectiveStop maps an Objective to its stop condition, composing any
// caller-supplied early stop.
func objectiveStop(opts DriverOptions) sim.StopFunc {
	var stop sim.StopFunc
	switch opts.Objective {
	case AllToAll:
		stop = sim.StopAllHaveAll()
	case LocalBroadcast:
		stop = sim.StopLocalBroadcast()
	default:
		stop = broadcastStop(opts)
	}
	if opts.Stop != nil {
		stop = sim.StopOr(opts.Stop, stop)
	}
	return stop
}

// objectiveMode maps an Objective to the rumor seeding mode.
func objectiveMode(opts DriverOptions) sim.RumorMode {
	if opts.Objective == Broadcast {
		return sim.OneToAll
	}
	return sim.AllToAll
}

func init() {
	Register(&Driver{
		Name:        "push-pull",
		Aliases:     []string{"pushpull"},
		Description: "random phone-call gossip: exchange with a uniform random neighbor every round (Theorem 29)",
		Options: []OptionDoc{
			{"Source/Sources", "watched rumor origin(s) for the Broadcast objective", []string{"source", "sources"}},
			{"Objective", "Broadcast (default), AllToAll or LocalBroadcast", []string{"objective"}},
			{"Variant", "\"blocking\" waits out each exchange before the next", []string{"variant"}},
			{"CrashAt", "fail-stop schedule; completion judged over survivors", nil},
			{"Adversity", "fault schedule: loss, churn, flaps, crash batches", []string{"fault_spec"}},
			{"MaxInPerRound", "bounded in-degree model of Daum et al.", []string{"max_in_per_round"}},
			{"Seed/MaxRounds", "determinism and horizon", nil},
		},
		Prepare: func(g *graph.Graph, opts DriverOptions) (sim.Config, sim.Factory, sim.StopFunc, error) {
			// Slab-allocate the per-node protocol structs: one allocation
			// for the whole run instead of n — measurable at n=10⁶.
			n := topologyN(g, opts)
			slab := make([]PushPull, n)
			factory := func(nv *sim.NodeView) sim.Protocol {
				p := &slab[nv.ID()]
				*p = PushPull{nv: nv}
				return p
			}
			if opts.Variant == VariantBlocking {
				factory = func(nv *sim.NodeView) sim.Protocol {
					p := &slab[nv.ID()]
					*p = PushPull{nv: nv, blocking: true}
					return p
				}
			}
			return sim.Config{
				Graph:         g,
				CSR:           opts.CSR,
				Workers:       opts.Workers,
				Seed:          opts.Seed,
				MaxRounds:     opts.MaxRounds,
				Mode:          objectiveMode(opts),
				Source:        opts.Source,
				Sources:       opts.Sources,
				CrashAt:       opts.CrashAt,
				Adversity:     opts.Adversity,
				MaxInPerRound: opts.MaxInPerRound,
			}, factory, objectiveStop(opts), nil
		},
	})
	Register(&Driver{
		Name:        "flood",
		Description: "push-only store-and-forward baseline of footnote 3 (blocking unless Variant=\"nonblocking\")",
		Options: []OptionDoc{
			{"Source", "rumor origin; only informed nodes act", []string{"source"}},
			{"Variant", "\"nonblocking\" initiates every round", []string{"variant"}},
			{"CrashAt", "fail-stop schedule; completion judged over survivors", nil},
			{"Adversity", "fault schedule: loss, churn, flaps, crash batches", []string{"fault_spec"}},
			{"Seed/MaxRounds", "determinism and horizon", nil},
		},
		Prepare: func(g *graph.Graph, opts DriverOptions) (sim.Config, sim.Factory, sim.StopFunc, error) {
			blocking := opts.Variant != VariantNonBlocking
			return sim.Config{
					Graph:     g,
					CSR:       opts.CSR,
					Workers:   opts.Workers,
					Seed:      opts.Seed,
					MaxRounds: opts.MaxRounds,
					Mode:      sim.OneToAll,
					Source:    opts.Source,
					CrashAt:   opts.CrashAt,
					Adversity: opts.Adversity,
				}, func(nv *sim.NodeView) sim.Protocol {
					return NewFlood(nv, opts.Source, blocking)
				}, broadcastStop(opts), nil
		},
	})
	Register(&Driver{
		Name:        "dtg",
		Description: "ℓ-DTG deterministic tree gossip local broadcast (Algorithm 6), run to quiescence",
		Options: []OptionDoc{
			{"Ell", "latency filter defining G_ℓ (0 = all edges)", []string{"ell"}},
			{"InitialRumors", "state carried from a previous phase", nil},
			{"CrashAt", "fail-stop schedule (DTG stalls on dead peers)", nil},
			{"Adversity", "fault schedule (DTG stalls on lost exchanges)", []string{"fault_spec"}},
			{"Seed/MaxRounds", "determinism and horizon", nil},
		},
		Prepare: func(g *graph.Graph, opts DriverOptions) (sim.Config, sim.Factory, sim.StopFunc, error) {
			return sim.Config{
					Graph:          g,
					CSR:            opts.CSR,
					Workers:        opts.Workers,
					Seed:           opts.Seed,
					KnownLatencies: true,
					MaxRounds:      opts.MaxRounds,
					Mode:           sim.AllToAll,
					InitialRumors:  opts.InitialRumors,
					CrashAt:        opts.CrashAt,
					Adversity:      opts.Adversity,
				}, func(nv *sim.NodeView) sim.Protocol {
					return NewDTG(nv, opts.Ell)
				}, sim.StopAllDone(), nil
		},
	})
	Register(&Driver{
		Name:        "superstep",
		Description: "randomized local broadcast primitive, optionally timeout-hardened (Section 7 extension)",
		Options: []OptionDoc{
			{"Ell", "latency filter defining G_ℓ (0 = all edges)", []string{"ell"}},
			{"LBTimeout", "abandon stalled exchanges after this many rounds", []string{"lb_timeout"}},
			{"InitialRumors", "state carried from a previous phase", nil},
			{"CrashAt", "fail-stop schedule", nil},
			{"Adversity", "fault schedule; timeouts recover from losses", []string{"fault_spec"}},
			{"Seed/MaxRounds", "determinism and horizon", nil},
		},
		Prepare: func(g *graph.Graph, opts DriverOptions) (sim.Config, sim.Factory, sim.StopFunc, error) {
			return sim.Config{
					Graph:          g,
					CSR:            opts.CSR,
					Workers:        opts.Workers,
					Seed:           opts.Seed,
					KnownLatencies: true,
					MaxRounds:      opts.MaxRounds,
					Mode:           sim.AllToAll,
					InitialRumors:  opts.InitialRumors,
					CrashAt:        opts.CrashAt,
					Adversity:      opts.Adversity,
				}, func(nv *sim.NodeView) sim.Protocol {
					return NewSuperstep(nv, opts.Ell, opts.LBTimeout)
				}, sim.StopAllDone(), nil
		},
	})
	Register(&Driver{
		Name:        "rr",
		Description: "round-robin broadcast over directed spanner out-edges (Algorithm 1 / Lemma 21)",
		Options: []OptionDoc{
			{"Spanner", "out-edge orientation (nil = build Baswana-Sen from Seed)", nil},
			{"K", "latency filter on out-edges; drives the Lemma 21 budget", []string{"k"}},
			{"Budget", "override the K·Δout + K budget", []string{"budget"}},
			{"InitialRumors/CrashAt/Adversity/Stop", "phase state, failures, early stop", []string{"fault_spec"}},
			{"Seed/MaxRounds", "determinism and horizon", nil},
		},
		Prepare: func(g *graph.Graph, opts DriverOptions) (sim.Config, sim.Factory, sim.StopFunc, error) {
			if err := needGraph("rr", g); err != nil {
				return sim.Config{}, nil, nil, err
			}
			sp := opts.Spanner
			if sp == nil {
				k := log2CeilInt(g.N())
				if k < 1 {
					k = 1
				}
				var err error
				sp, err = spanner.Build(g, spanner.Options{K: k, Seed: opts.Seed ^ 0x5bd1e995})
				if err != nil {
					return sim.Config{}, nil, nil, err
				}
			}
			k := opts.K
			if k <= 0 {
				k = g.MaxLatency()
			}
			return prepareRR(g, sp, RROptions{
				K:             k,
				Budget:        opts.Budget,
				Seed:          opts.Seed,
				MaxRounds:     opts.MaxRounds,
				InitialRumors: opts.InitialRumors,
				Stop:          opts.Stop,
				CrashAt:       opts.CrashAt,
				ExecOptions:   opts.ExecOptions,
			})
		},
	})
	Register(&Driver{
		Name:        "spanner",
		Description: "DTG + Baswana-Sen spanner + RR pipeline (Theorem 25), guess-and-double when D unknown",
		Options: []OptionDoc{
			{"D", "known weighted diameter (0 = guess-and-double)", []string{"d"}},
			{"KnownLatencies", "Section 4 model; else discovery phases are prepended", []string{"known_latencies"}},
			{"FaultTolerant/LBTimeout", "swap DTG for timeout-hardened Superstep", []string{"fault_tolerant", "lb_timeout"}},
			{"SkipCheck", "drop the Termination_Check phase for known D", []string{"skip_check"}},
			{"CrashAt", "fail-stop schedule; completion judged over survivors", nil},
			{"Adversity", "fault schedule, rebased per phase", []string{"fault_spec"}},
			{"Seed/MaxRounds", "determinism and per-phase horizon", nil},
		},
		Run: func(g *graph.Graph, opts DriverOptions) (DriverResult, error) {
			if err := needGraph("spanner", g); err != nil {
				return DriverResult{}, err
			}
			spOpts := SpannerOptions{
				D:              opts.D,
				KnownLatencies: opts.KnownLatencies,
				Seed:           opts.Seed,
				MaxPhaseRounds: opts.MaxRounds,
				SkipCheck:      opts.SkipCheck,
				CrashAt:        opts.CrashAt,
				ExecOptions:    opts.ExecOptions,
			}
			if opts.FaultTolerant {
				spOpts.UseSuperstep = true
				spOpts.LBTimeout = opts.LBTimeout
				if spOpts.LBTimeout <= 0 {
					// Safely above any single round trip.
					spOpts.LBTimeout = 2*g.MaxLatency() + 4
				}
			}
			return fromBroadcastResult(SpannerBroadcast(g, spOpts))
		},
	})
	Register(&Driver{
		Name:        "pattern",
		Description: "deterministic T(k) schedule of ℓ-DTG phases (Algorithm 5 / Lemma 28)",
		Options: []OptionDoc{
			{"D", "known weighted diameter (0 = guess-and-double)", []string{"d"}},
			{"SkipCheck", "drop the Termination_Check pass for known D", []string{"skip_check"}},
			{"Adversity", "fault schedule, rebased per phase", []string{"fault_spec"}},
			{"Seed/MaxRounds", "determinism and per-phase horizon", nil},
		},
		Run: func(g *graph.Graph, opts DriverOptions) (DriverResult, error) {
			if err := needGraph("pattern", g); err != nil {
				return DriverResult{}, err
			}
			return fromBroadcastResult(PatternBroadcast(g, PatternOptions{
				D:              opts.D,
				Seed:           opts.Seed,
				MaxPhaseRounds: opts.MaxRounds,
				SkipCheck:      opts.SkipCheck,
				ExecOptions:    opts.ExecOptions,
			}))
		},
	})
	Register(&Driver{
		Name:        "auto",
		Aliases:     []string{"unified"},
		Description: "Theorem 31 combination: push-pull and the spanner pipeline side by side, faster arm wins",
		Options: []OptionDoc{
			{"Source", "rumor origin of the push-pull arm", []string{"source"}},
			{"D/KnownLatencies", "spanner arm model selection", []string{"d", "known_latencies"}},
			{"Adversity", "fault schedule applied to both arms", []string{"fault_spec"}},
			{"Seed/MaxRounds", "determinism and horizon", nil},
		},
		Run: func(g *graph.Graph, opts DriverOptions) (DriverResult, error) {
			if err := needGraph("auto", g); err != nil {
				return DriverResult{}, err
			}
			res, err := Unified(g, UnifiedOptions{
				Source:         opts.Source,
				KnownLatencies: opts.KnownLatencies,
				D:              opts.D,
				Seed:           opts.Seed,
				MaxRounds:      opts.MaxRounds,
				ExecOptions:    opts.ExecOptions,
			})
			if err != nil {
				return DriverResult{}, err
			}
			return DriverResult{
				Rounds:       res.Rounds,
				Completed:    res.Rounds >= 0,
				Exchanges:    res.PushPull.Exchanges + res.Spanner.Exchanges,
				Dropped:      res.PushPull.Dropped + res.Spanner.Dropped,
				Delivered:    res.PushPull.Delivered + res.Spanner.Delivered,
				RumorPayload: res.PushPull.RumorPayload + res.Spanner.RumorPayload,
				Winner:       res.Winner,
			}, nil
		},
	})
}
