package gossip

import (
	"gossip/internal/graph"
	"gossip/internal/sim"
)

// Flood is the push-only baseline of footnote 3: an informed node offers
// the rumor to its neighbors one by one; uninformed nodes never initiate,
// so there is no pull. In Blocking mode a node waits for each exchange to
// complete before starting the next (classical store-and-forward
// flooding); this is the regime where a star with slow edges costs Ω(nD).
type Flood struct {
	nv       *sim.NodeView
	source   graph.NodeID
	blocking bool
	next     int // next adjacency index to contact
	inflight bool
}

var (
	_ sim.Protocol       = (*Flood)(nil)
	_ sim.Sleeper        = (*Flood)(nil)
	_ sim.AmnesiaReseter = (*Flood)(nil)
	_ sim.StateCloner    = (*Flood)(nil)
)

// CloneStateFrom copies the round-robin cursor and blocking window from
// a frozen snapshot instance.
func (f *Flood) CloneStateFrom(src sim.Protocol) {
	s := src.(*Flood)
	f.next = s.next
	f.inflight = s.inflight
}

// NewFlood returns the flooding protocol. Nodes activate only once they
// hold source's rumor.
func NewFlood(nv *sim.NodeView, source graph.NodeID, blocking bool) *Flood {
	return &Flood{nv: nv, source: source, blocking: blocking}
}

// Activate contacts the next neighbor in round-robin order while informed.
func (f *Flood) Activate(int) (int, bool) {
	if !f.nv.Knows(f.source) || f.nv.Degree() == 0 {
		return 0, false
	}
	if f.blocking && f.inflight {
		return 0, false
	}
	idx := f.next % f.nv.Degree()
	f.next++
	f.inflight = true
	return idx, true
}

// OnDeliver clears the blocking window when our own exchange returns.
func (f *Flood) OnDeliver(d sim.Delivery) {
	if d.Initiator {
		f.inflight = false
	}
}

// OnAmnesia restarts the node's round-robin cursor and blocking window
// alongside the engine's rumor-state reset.
func (f *Flood) OnAmnesia() {
	f.next = 0
	f.inflight = false
}

// NextWake parks the node until a delivery can change anything: an
// uninformed node only acts after the rumor arrives, and a blocking node
// only after its in-flight exchange returns.
func (f *Flood) NextWake(round int) int {
	if !f.nv.Knows(f.source) || f.nv.Degree() == 0 || (f.blocking && f.inflight) {
		return sim.WakeOnDelivery
	}
	return round + 1
}

// RunFlood runs one-to-all flooding from source.
func RunFlood(g *graph.Graph, source graph.NodeID, blocking bool, seed uint64, maxRounds int) (sim.Result, error) {
	variant := ""
	if !blocking {
		variant = VariantNonBlocking
	}
	return dispatchSim("flood", g, DriverOptions{
		Source: source, Variant: variant, Seed: seed, MaxRounds: maxRounds,
	})
}
