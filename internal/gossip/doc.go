// Package gossip implements every dissemination algorithm in the paper:
//
//   - PushPull — the classical random phone-call protocol (Theorem 29):
//     each node contacts a uniformly random neighbor every round.
//   - Flood — the push-only baseline of footnote 3, used to demonstrate
//     the Ω(nD) star lower bound without pull.
//   - DTG — Haeupler's deterministic tree gossip adapted to latencies
//     (the ℓ-DTG protocol of Section 4.1.1 / Appendix A.1), implemented
//     as a per-node blocking state machine.
//   - RR Broadcast — round-robin propagation over the out-edges of a
//     directed spanner (Algorithm 1, Lemma 21).
//   - Spanner Broadcast — ℓ-DTG neighborhood discovery, oriented
//     Baswana-Sen spanner, then RR Broadcast (Algorithm 2, Theorem 25),
//     with the guess-and-double wrapper and Termination_Check
//     (Algorithms 3-4) for unknown diameter.
//   - Pattern Broadcast — the deterministic T(k) schedule of ℓ-DTG
//     invocations (Algorithm 5, Lemmas 26-28).
//   - Latency discovery and the unified algorithm (Section 5.2,
//     Theorem 31).
//
// Single-phase protocols implement sim.Protocol directly. Multi-phase
// algorithms are procedures composing sequential sim.Run phases that
// carry rumor state forward; the phase boundary stands in for the fixed
// per-phase round budgets of the real algorithms (quiescence never
// exceeds the analytic budget, and both numbers are reported).
package gossip
