package gossip

import (
	"fmt"
	"math"

	"gossip/internal/graph"
	"gossip/internal/sim"
)

// PushPull is the classical random phone-call protocol: in every round the
// node initiates an exchange with a uniformly random neighbor. In the
// paper's combined model a single exchange both pushes and pulls.
//
// The model is non-blocking (footnote: "each node can initiate a new
// exchange in every round, even if previous messages have not yet been
// delivered"); the Blocking variant waits for each exchange to complete
// before the next initiation, an ablation of exactly that footnote.
type PushPull struct {
	nv       *sim.NodeView
	blocking bool
	inflight bool
}

var (
	_ sim.Protocol       = (*PushPull)(nil)
	_ sim.Sleeper        = (*PushPull)(nil)
	_ sim.AmnesiaReseter = (*PushPull)(nil)
	_ sim.StateCloner    = (*PushPull)(nil)
)

// CloneStateFrom copies the mutable protocol state (the blocking window)
// from a frozen snapshot instance; nv and the variant flag come from
// construction.
func (p *PushPull) CloneStateFrom(src sim.Protocol) {
	p.inflight = src.(*PushPull).inflight
}

// NewPushPull returns the non-blocking push-pull protocol for one node.
func NewPushPull(nv *sim.NodeView) *PushPull { return &PushPull{nv: nv} }

// NewPushPullBlocking returns the blocking variant: at most one exchange
// in flight per node.
func NewPushPullBlocking(nv *sim.NodeView) *PushPull {
	return &PushPull{nv: nv, blocking: true}
}

// Activate picks a uniformly random neighbor.
func (p *PushPull) Activate(int) (int, bool) {
	d := p.nv.Degree()
	if d == 0 || (p.blocking && p.inflight) {
		return 0, false
	}
	p.inflight = true
	return p.nv.RNG().IntN(d), true
}

// OnDeliver clears the blocking window when our own exchange returns.
func (p *PushPull) OnDeliver(d sim.Delivery) {
	if d.Initiator {
		p.inflight = false
	}
}

// OnAmnesia restarts the node: an exchange that was in flight across
// the down interval is lost, so the blocking window reopens.
func (p *PushPull) OnAmnesia() { p.inflight = false }

// NextWake keeps the classical every-round schedule except while the
// blocking variant has an exchange in flight (no RNG is drawn then, so
// skipping those rounds leaves the random choice sequence unchanged).
func (p *PushPull) NextWake(round int) int {
	if p.nv.Degree() == 0 || (p.blocking && p.inflight) {
		return sim.WakeOnDelivery
	}
	return round + 1
}

// dispatchSim routes a wrapper through the driver registry and unwraps
// the single-phase result: every Run* helper below is sugar over the one
// driver code path.
func dispatchSim(name string, g *graph.Graph, opts DriverOptions) (sim.Result, error) {
	dr, err := Dispatch(name, g, opts)
	if err != nil {
		return sim.Result{}, err
	}
	return *dr.Sim, nil
}

// RunPushPull runs one-to-all push-pull from source and returns the
// simulation result.
func RunPushPull(g *graph.Graph, source graph.NodeID, seed uint64, maxRounds int) (sim.Result, error) {
	return dispatchSim("push-pull", g, DriverOptions{Source: source, Seed: seed, MaxRounds: maxRounds})
}

// RunPushPullLocalBroadcast runs push-pull in all-to-all mode until every
// node holds every graph neighbor's rumor (local broadcast), returning
// the rounds used.
func RunPushPullLocalBroadcast(g *graph.Graph, seed uint64, maxRounds int) (sim.Result, error) {
	return dispatchSim("push-pull", g, DriverOptions{Objective: LocalBroadcast, Seed: seed, MaxRounds: maxRounds})
}

// RunPushPullBlocking runs the blocking ablation of one-to-all push-pull.
func RunPushPullBlocking(g *graph.Graph, source graph.NodeID, seed uint64, maxRounds int) (sim.Result, error) {
	return dispatchSim("push-pull", g, DriverOptions{
		Source: source, Variant: VariantBlocking, Seed: seed, MaxRounds: maxRounds,
	})
}

// RunPushPullMultiSource runs push-pull with several simultaneous sources
// until every node holds every source's rumor.
func RunPushPullMultiSource(g *graph.Graph, sources []graph.NodeID, seed uint64, maxRounds int) (sim.Result, error) {
	return dispatchSim("push-pull", g, DriverOptions{Sources: sources, Seed: seed, MaxRounds: maxRounds})
}

// RunPushPullWithCrashes runs one-to-all push-pull under fail-stop
// crashes (crashAt[u] is the round node u dies; negative = never) until
// every surviving node is informed.
func RunPushPullWithCrashes(g *graph.Graph, source graph.NodeID, crashAt []int, seed uint64, maxRounds int) (sim.Result, error) {
	return dispatchSim("push-pull", g, DriverOptions{
		Source: source, CrashAt: crashAt, Seed: seed, MaxRounds: maxRounds,
	})
}

// RunPushPullBoundedInDegree runs one-to-all push-pull where each node
// accepts at most maxIn incoming connections per round (the restricted
// model of Daum et al. raised in the paper's conclusion).
func RunPushPullBoundedInDegree(g *graph.Graph, source graph.NodeID, maxIn int, seed uint64, maxRounds int) (sim.Result, error) {
	return dispatchSim("push-pull", g, DriverOptions{
		Source: source, MaxInPerRound: maxIn, Seed: seed, MaxRounds: maxRounds,
	})
}

// RunPushPullAllToAll runs push-pull until every node holds every rumor.
func RunPushPullAllToAll(g *graph.Graph, seed uint64, maxRounds int) (sim.Result, error) {
	return dispatchSim("push-pull", g, DriverOptions{Objective: AllToAll, Seed: seed, MaxRounds: maxRounds})
}

// PushPullBound returns the Theorem 29 upper bound (ℓ*/φ*)·ln n given the
// graph's critical conductance quantities.
func PushPullBound(phiStar float64, ellStar, n int) (float64, error) {
	if phiStar <= 0 {
		return 0, fmt.Errorf("gossip: non-positive φ* %v", phiStar)
	}
	return float64(ellStar) / phiStar * math.Log(float64(n)), nil
}
