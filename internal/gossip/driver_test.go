package gossip

import (
	"testing"

	"gossip/internal/graphgen"
)

func TestDriverRegistryNames(t *testing.T) {
	want := []string{"auto", "dtg", "echo", "election", "flood", "pattern", "push-pull", "rr", "spanner", "superstep"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
}

func TestDriverLookupAliases(t *testing.T) {
	for alias, canonical := range map[string]string{
		"pushpull": "push-pull", "PUSH-PULL": "push-pull",
		"unified": "auto", " auto ": "auto",
	} {
		d, ok := Lookup(alias)
		if !ok || d.Name != canonical {
			t.Fatalf("Lookup(%q) = %v,%v, want driver %q", alias, d, ok, canonical)
		}
	}
	if _, ok := Lookup("bogus"); ok {
		t.Fatal("Lookup accepted an unregistered name")
	}
}

func TestDispatchUnknownDriver(t *testing.T) {
	if _, err := Dispatch("bogus", graphgen.Clique(4, 1), DriverOptions{}); err == nil {
		t.Fatal("expected error")
	}
}

// TestDispatchAllDriversComplete smoke-runs every registered driver with
// zero-value options on one topology: the registry contract is that the
// zero DriverOptions is valid everywhere.
func TestDispatchAllDriversComplete(t *testing.T) {
	g := graphgen.Grid(3, 3, 2)
	for _, name := range Names() {
		res, err := Dispatch(name, g, DriverOptions{Seed: 1, KnownLatencies: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Completed {
			t.Fatalf("%s: incomplete: %+v", name, res)
		}
		if res.Rounds <= 0 {
			t.Fatalf("%s: rounds = %d", name, res.Rounds)
		}
		if (res.Sim == nil) == (res.Broadcast == nil) && res.Winner == "" {
			t.Fatalf("%s: result carries neither Sim nor Broadcast detail", name)
		}
	}
}

// TestDispatchMatchesWrapper pins the wrapper sugar to the driver path:
// both spellings must be the same run bit for bit.
func TestDispatchMatchesWrapper(t *testing.T) {
	g := graphgen.Dumbbell(6, 16)
	wrap, err := RunPushPull(g, 0, 42, 1<<18)
	if err != nil {
		t.Fatal(err)
	}
	drv, err := Dispatch("push-pull", g, DriverOptions{Source: 0, Seed: 42, MaxRounds: 1 << 18})
	if err != nil {
		t.Fatal(err)
	}
	if wrap.Rounds != drv.Rounds || wrap.Exchanges != drv.Exchanges || wrap.Messages != drv.Messages {
		t.Fatalf("wrapper %+v != driver %+v", wrap, drv)
	}
}

func TestSpannerDriverDefaultsLBTimeout(t *testing.T) {
	// FaultTolerant with LBTimeout 0 must pick a timeout above any round
	// trip (2·ℓmax + slack) rather than disabling abandonment.
	g := graphgen.Clique(8, 4)
	crashAt := make([]int, 8)
	for i := range crashAt {
		crashAt[i] = -1
	}
	crashAt[3] = 2
	res, err := Dispatch("spanner", g, DriverOptions{
		KnownLatencies: true, Seed: 3, MaxRounds: 1 << 14,
		FaultTolerant: true, CrashAt: crashAt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("fault-tolerant spanner did not survive the crash: %+v", res)
	}
}

// TestDriverRequestKeys pins the machine-readable options schema every
// registered driver exposes: keys are drawn from the closed vocabulary,
// the universal execution keys are always present, and the per-driver
// sets match what the driver actually reads — the contract gossipd's
// request validation is built on.
func TestDriverRequestKeys(t *testing.T) {
	vocab := map[string]bool{}
	for _, k := range RequestKeyVocabulary() {
		vocab[k] = true
	}
	want := map[string][]string{
		"push-pull": {"fault_spec", "max_in_per_round", "max_rounds", "objective", "seed", "source", "sources", "variant", "workers"},
		"flood":     {"fault_spec", "max_rounds", "seed", "source", "variant", "workers"},
		"dtg":       {"ell", "fault_spec", "max_rounds", "seed", "workers"},
		"superstep": {"ell", "fault_spec", "lb_timeout", "max_rounds", "seed", "workers"},
		"rr":        {"budget", "fault_spec", "k", "max_rounds", "seed", "workers"},
		"spanner":   {"d", "fault_spec", "fault_tolerant", "known_latencies", "lb_timeout", "max_rounds", "seed", "skip_check", "workers"},
		"pattern":   {"d", "fault_spec", "max_rounds", "seed", "skip_check", "workers"},
		"auto":      {"d", "fault_spec", "known_latencies", "max_rounds", "seed", "source", "workers"},
		"election":  {"fault_spec", "max_rounds", "seed", "stable_rounds", "suspect_after", "workers"},
		"echo":      {"fault_spec", "max_rounds", "seed", "source", "workers"},
	}
	for _, name := range Names() {
		d, _ := Lookup(name)
		keys := d.RequestKeys()
		for _, k := range keys {
			if !vocab[k] {
				t.Errorf("%s: key %q outside RequestKeyVocabulary", name, k)
			}
			if !d.AcceptsKey(k) {
				t.Errorf("%s: AcceptsKey(%q) = false for a declared key", name, k)
			}
		}
		if d.AcceptsKey("nonsense") {
			t.Errorf("%s: AcceptsKey accepted an undeclared key", name)
		}
		w, ok := want[name]
		if !ok {
			t.Errorf("new driver %q: add its expected request keys to this test", name)
			continue
		}
		if len(keys) != len(w) {
			t.Errorf("%s: RequestKeys() = %v, want %v", name, keys, w)
			continue
		}
		for i := range w {
			if keys[i] != w[i] {
				t.Errorf("%s: RequestKeys() = %v, want %v", name, keys, w)
				break
			}
		}
	}
}

// TestRegisterRejectsUnknownKey pins that a typo'd option key is caught
// at registration time.
func TestRegisterRejectsUnknownKey(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Register accepted an option key outside the vocabulary")
		}
	}()
	Register(&Driver{
		Name:    "bad-key-driver",
		Options: []OptionDoc{{Name: "X", Doc: "x", Keys: []string{"not_a_key"}}},
	})
}
