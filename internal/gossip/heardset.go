package gossip

import "slices"

// heardSet is the phase-local "heard" bookkeeping of the local-broadcast
// primitives (DTG, Superstep): a sorted sparse set of node ids. On
// sparse graphs it holds O(degree²) entries — the node's neighborhood
// plus what peers relayed — instead of the n-bit dense set the pre-CSR
// implementation kept per node, which alone was an O(n²)-bit wall at
// n=10⁶. Snapshots are cached immutable slices so exchange metadata
// between two state changes shares one allocation.
type heardSet struct {
	ids  []int32 // sorted ascending
	snap []int32 // cached immutable snapshot; nil when stale
	buf  []int32 // merge scratch, swapped with ids on union
}

// Contains reports membership.
func (h *heardSet) Contains(v int) bool {
	_, found := slices.BinarySearch(h.ids, int32(v))
	return found
}

// Add inserts v if absent.
func (h *heardSet) Add(v int) {
	i, found := slices.BinarySearch(h.ids, int32(v))
	if found {
		return
	}
	h.ids = slices.Insert(h.ids, i, int32(v))
	h.snap = nil
}

// Union merges a sorted peer snapshot into the set.
func (h *heardSet) Union(peer []int32) {
	if len(peer) == 0 {
		return
	}
	out := h.buf[:0]
	i, j := 0, 0
	changed := false
	for i < len(h.ids) && j < len(peer) {
		switch {
		case h.ids[i] < peer[j]:
			out = append(out, h.ids[i])
			i++
		case h.ids[i] > peer[j]:
			out = append(out, peer[j])
			j++
			changed = true
		default:
			out = append(out, h.ids[i])
			i++
			j++
		}
	}
	out = append(out, h.ids[i:]...)
	if j < len(peer) {
		out = append(out, peer[j:]...)
		changed = true
	}
	if !changed {
		return
	}
	h.buf = h.ids[:0]
	h.ids = out
	h.snap = nil
}

// cloneFrom replaces h with a deep copy of src's membership. The
// snapshot cache restarts empty rather than being shared: src belongs to
// a frozen engine read concurrently by parallel restores, and Snapshot()
// mutates the cache. The rebuilt snapshot is element-identical.
func (h *heardSet) cloneFrom(src *heardSet) {
	h.ids = append(h.ids[:0], src.ids...)
	h.snap = nil
	h.buf = nil
}

// Snapshot returns the current membership as an immutable sorted slice.
// The same slice is handed out until the set next changes; receivers
// must treat it as read-only (the exchange-metadata contract).
func (h *heardSet) Snapshot() []int32 {
	if h.snap == nil {
		h.snap = slices.Clone(h.ids)
	}
	return h.snap
}
