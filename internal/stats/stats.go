// Package stats provides the small statistical toolkit used by the
// experiment harness: summaries over repeated trials, percentiles, and
// least-squares fits (including log-log fits for scaling exponents).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics for a sample.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	Min    float64
	Max    float64
	Stddev float64
	P10    float64
	P90    float64
}

// Summarize computes a Summary for xs. It panics on an empty sample:
// every call site controls its trial count, so an empty sample is a bug.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s := Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Median: Percentile(sorted, 0.5),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		P10:    Percentile(sorted, 0.10),
		P90:    Percentile(sorted, 0.90),
	}
	s.Stddev = Stddev(xs)
	return s
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Stddev returns the sample standard deviation of xs (0 when len < 2).
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Percentile returns the p-quantile (p in [0,1]) of an ascending-sorted
// sample using linear interpolation between order statistics.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("stats: percentile of empty sample")
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Fit holds a least-squares line y = Slope*x + Intercept and its R².
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// LinearFit computes the ordinary least-squares fit of ys on xs.
func LinearFit(xs, ys []float64) (Fit, error) {
	if len(xs) != len(ys) {
		return Fit{}, fmt.Errorf("stats: mismatched lengths %d and %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return Fit{}, fmt.Errorf("stats: need at least 2 points, got %d", len(xs))
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{}, fmt.Errorf("stats: degenerate fit, all x equal")
	}
	slope := sxy / sxx
	fit := Fit{Slope: slope, Intercept: my - slope*mx}
	if syy == 0 {
		fit.R2 = 1
	} else {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	}
	return fit, nil
}

// PowerLawFit fits y = c * x^e by least squares in log-log space and
// returns the exponent e, the constant c, and the log-space R².
// All xs and ys must be strictly positive.
func PowerLawFit(xs, ys []float64) (exponent, constant, r2 float64, err error) {
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || i >= len(ys) || ys[i] <= 0 {
			return 0, 0, 0, fmt.Errorf("stats: power-law fit needs positive data (x=%v)", xs[i])
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	fit, err := LinearFit(lx, ly)
	if err != nil {
		return 0, 0, 0, err
	}
	return fit.Slope, math.Exp(fit.Intercept), fit.R2, nil
}

// Harmonic returns the n-th harmonic number H_n = 1 + 1/2 + ... + 1/n.
func Harmonic(n int) float64 {
	h := 0.0
	for i := 1; i <= n; i++ {
		h += 1 / float64(i)
	}
	return h
}

// Log2Ceil returns ceil(log2(x)) for x >= 1, and 0 for x <= 1.
func Log2Ceil(x int) int {
	if x <= 1 {
		return 0
	}
	k := 0
	v := 1
	for v < x {
		v <<= 1
		k++
	}
	return k
}

// MeanInts converts and averages an integer sample.
func MeanInts(xs []int) float64 {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Mean(fs)
}

// Floats converts an integer sample to float64s.
func Floats(xs []int) []float64 {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return fs
}
