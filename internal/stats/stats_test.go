package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 5},
		{"pair", []float64{1, 3}, 2},
		{"negative", []float64{-2, 2}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.xs); !almostEqual(got, tt.want, 1e-12) {
				t.Fatalf("Mean(%v) = %v, want %v", tt.xs, got, tt.want)
			}
		})
	}
}

func TestStddev(t *testing.T) {
	if got := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almostEqual(got, 2.13809, 1e-4) {
		t.Fatalf("Stddev = %v, want ~2.138", got)
	}
	if Stddev([]float64{1}) != 0 {
		t.Fatal("Stddev of single sample should be 0")
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.125, 1.5},
	}
	for _, tt := range tests {
		if got := Percentile(sorted, tt.p); !almostEqual(got, tt.want, 1e-12) {
			t.Fatalf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("Summarize basics wrong: %+v", s)
	}
	if !almostEqual(s.Mean, 2.5, 1e-12) || !almostEqual(s.Median, 2.5, 1e-12) {
		t.Fatalf("Summarize central tendency wrong: %+v", s)
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Summarize(nil)
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 2x+1
	fit, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 2, 1e-9) || !almostEqual(fit.Intercept, 1, 1e-9) {
		t.Fatalf("fit = %+v, want slope 2 intercept 1", fit)
	}
	if !almostEqual(fit.R2, 1, 1e-9) {
		t.Fatalf("R2 = %v, want 1", fit.R2)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Fatal("expected error for single point")
	}
	if _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("expected error for mismatched lengths")
	}
	if _, err := LinearFit([]float64{2, 2}, []float64{1, 5}); err == nil {
		t.Fatal("expected error for constant x")
	}
}

func TestPowerLawFit(t *testing.T) {
	// y = 3 x^2
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * x * x
	}
	e, c, r2, err := PowerLawFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(e, 2, 1e-9) || !almostEqual(c, 3, 1e-9) || !almostEqual(r2, 1, 1e-9) {
		t.Fatalf("PowerLawFit = (%v,%v,%v)", e, c, r2)
	}
	if _, _, _, err := PowerLawFit([]float64{0, 1}, []float64{1, 1}); err == nil {
		t.Fatal("expected error for non-positive x")
	}
}

func TestHarmonic(t *testing.T) {
	if !almostEqual(Harmonic(1), 1, 1e-12) {
		t.Fatal("H_1 != 1")
	}
	if !almostEqual(Harmonic(4), 1+0.5+1.0/3+0.25, 1e-12) {
		t.Fatal("H_4 wrong")
	}
	if Harmonic(0) != 0 {
		t.Fatal("H_0 != 0")
	}
}

func TestLog2Ceil(t *testing.T) {
	tests := []struct{ x, want int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10}, {1025, 11},
	}
	for _, tt := range tests {
		if got := Log2Ceil(tt.x); got != tt.want {
			t.Fatalf("Log2Ceil(%d) = %d, want %d", tt.x, got, tt.want)
		}
	}
}

func TestFloatsAndMeanInts(t *testing.T) {
	if got := MeanInts([]int{1, 2, 3}); !almostEqual(got, 2, 1e-12) {
		t.Fatalf("MeanInts = %v", got)
	}
	fs := Floats([]int{7, 8})
	if len(fs) != 2 || fs[0] != 7 || fs[1] != 8 {
		t.Fatalf("Floats = %v", fs)
	}
}

// Property: mean is within [min, max] and percentile is monotone in p.
func TestQuickSummaryInvariants(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		if s.Mean < s.Min-1e-9 || s.Mean > s.Max+1e-9 {
			return false
		}
		return s.P10 <= s.Median+1e-9 && s.Median <= s.P90+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
