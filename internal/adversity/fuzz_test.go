package adversity

import (
	"reflect"
	"testing"
)

// FuzzFaultSpec fuzzes the fault-schedule parser and compiler, in the
// conventions of graph.FuzzCSRBuilder: malformed probabilities,
// overlapping intervals and out-of-range node ids must surface as
// errors, never as panics; and anything that parses and compiles must
// survive a String round trip and a Shift re-compile.
func FuzzFaultSpec(f *testing.F) {
	f.Add("loss=0.1")
	f.Add("loss=0-1=0.5;loss=0.05")
	f.Add("churn=3:10-20:amnesia;churn=4:5-inf")
	f.Add("flap=0-2:5-9;crash=4:6,7")
	f.Add("loss=0.1;churn=3:10-20:amnesia;flap=0-1:5-9;crash=4:6,7")
	f.Add("loss=2.0")
	f.Add("churn=1:9-3")
	f.Add("crash=-1:0")
	f.Add(";;;=;loss=;churn=::::")
	f.Fuzz(func(t *testing.T, text string) {
		spec, err := ParseSpec(text)
		if err != nil {
			return
		}
		sched, err := spec.Compile(16)
		if err != nil {
			return
		}
		// A compiled schedule must answer queries without panicking,
		// whatever the fuzzer dreamed up.
		for u := 0; u < 16; u++ {
			sched.Down(u, 0)
			sched.DownDuring(u, 0, 1<<20)
			sched.LossProb(u, (u+1)%16)
			sched.LinkDownDuring(u, (u+1)%16, 5, 7)
		}
		prev := -1
		for _, ev := range sched.Events() {
			if ev.Round <= prev {
				t.Fatalf("events out of order: %d after %d", ev.Round, prev)
			}
			prev = ev.Round
		}
		// Round trip: the rendered DSL re-parses to the same spec.
		again, err := ParseSpec(spec.String())
		if err != nil {
			t.Fatalf("re-parse of %q: %v", spec.String(), err)
		}
		if !spec.Empty() && !reflect.DeepEqual(spec, again) {
			t.Fatalf("round trip changed %+v to %+v", spec, again)
		}
		// A shifted valid spec stays valid (clamping cannot invert or
		// overlap intervals that were disjoint).
		if _, err := spec.Shift(3).Compile(16); err != nil {
			t.Fatalf("shifted spec no longer compiles: %v", err)
		}
	})
}
