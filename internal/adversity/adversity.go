// Package adversity declares deterministic fault schedules for the
// simulator: per-edge message loss, node churn (leave/rejoin with rumor
// retention or amnesia), link up/down flaps, and fail-stop crash batches.
//
// A Spec is declarative and seed-free: every round number is absolute
// simulation time and every probability is drawn inside the engine from
// per-node PCG streams, so the same (topology, seed, spec) triple yields
// bit-identical runs at any intra-round worker count. Compile validates a
// Spec against a node count and produces the engine-ready Schedule —
// per-node down intervals, per-edge loss/flap lookups, and the sorted
// calendar of leave/rejoin events the engine interleaves with deliveries.
package adversity

import (
	"fmt"
	"math"
	"sort"

	"gossip/internal/graph"
)

// Forever marks a churn interval whose node never rejoins (equivalent to
// a fail-stop crash at the leave round).
const Forever = -1

// Spec is a declarative fault schedule. The zero value (and nil) is the
// benign network. All rounds are absolute simulation rounds; multi-phase
// pipelines rebase a Spec between phases with Shift.
type Spec struct {
	// Loss is the default per-exchange loss probability in [0,1] applied
	// to every edge: a lost exchange is initiated (and counted) but
	// delivers nothing to either endpoint, like the collapsed round-trip
	// message vanishing in transit.
	Loss float64
	// EdgeLoss overrides Loss on specific edges.
	EdgeLoss []EdgeLoss
	// Churn lists node leave/rejoin intervals.
	Churn []Churn
	// Flaps lists link down intervals.
	Flaps []Flap
	// Crashes lists fail-stop crash batches (permanent leaves).
	Crashes []Crash
}

// EdgeLoss sets the loss probability of one undirected edge.
type EdgeLoss struct {
	U, V graph.NodeID
	// P is the per-exchange loss probability in [0,1].
	P float64
}

// Churn takes a node down during [Leave, Rejoin). While down the node
// does not initiate, and any exchange involving it in flight during the
// interval is lost. Rejoin == Forever means the node never returns.
type Churn struct {
	Node graph.NodeID
	// Leave is the first down round; Rejoin the first round back up.
	Leave, Rejoin int
	// Amnesia discards the node's state at rejoin: the rumor set
	// restarts from the run's initial assignment (own rumor in
	// all-to-all mode, the source rumor if it is a source; in a
	// multi-phase pipeline, the state the node entered the current
	// phase with — the restart cannot reach behind the phase boundary)
	// and the protocol restarts too when it implements
	// sim.AmnesiaReseter. Without Amnesia the node retains everything.
	Amnesia bool
}

// Flap takes the link {U,V} down during [From, To): exchanges traversing
// the edge at any point in the interval are lost. Nodes are unaffected.
type Flap struct {
	U, V     graph.NodeID
	From, To int
}

// Crash fail-stops Nodes at Round (a batch of the classical crash
// schedule; sim.Config.CrashAt expresses the same thing as a per-node
// vector).
type Crash struct {
	Round int
	Nodes []graph.NodeID
}

// Empty reports whether s declares no faults at all (nil-safe).
func (s *Spec) Empty() bool {
	return s == nil || (s.Loss == 0 && len(s.EdgeLoss) == 0 &&
		len(s.Churn) == 0 && len(s.Flaps) == 0 && len(s.Crashes) == 0)
}

// HasFailures reports whether s takes any node down (churn or crashes),
// i.e. whether completion must be judged over alive nodes (nil-safe).
func (s *Spec) HasFailures() bool {
	return s != nil && (len(s.Churn) > 0 || len(s.Crashes) > 0)
}

// HasAmnesia reports whether any churn interval discards state
// (nil-safe). Informed-set growth is monotonic exactly when this is
// false.
func (s *Spec) HasAmnesia() bool {
	if s == nil {
		return false
	}
	for _, c := range s.Churn {
		if c.Amnesia && c.Rejoin != Forever {
			return true
		}
	}
	return false
}

// Fails reports whether the spec ever takes node u down — by churn or
// by a crash batch (nil-safe). Callers layering a legacy crash vector
// on top of a spec use it to reject double-specified nodes.
func (s *Spec) Fails(u graph.NodeID) bool {
	if s == nil {
		return false
	}
	for _, c := range s.Churn {
		if c.Node == u {
			return true
		}
	}
	for _, b := range s.Crashes {
		for _, v := range b.Nodes {
			if v == u {
				return true
			}
		}
	}
	return false
}

// NeverReturns reports whether node u is permanently gone by the end of
// the schedule: crashed, or churned out without a rejoin (nil-safe).
func (s *Spec) NeverReturns(u graph.NodeID) bool {
	if s == nil {
		return false
	}
	for _, c := range s.Churn {
		if c.Node == u && c.Rejoin == Forever {
			return true
		}
	}
	for _, b := range s.Crashes {
		for _, v := range b.Nodes {
			if v == u {
				return true
			}
		}
	}
	return false
}

// Shift rebases every absolute round by -offset, for a phase that starts
// after offset rounds have already elapsed: intervals entirely in the
// past are dropped (their effect is already baked into the rumor state
// carried between phases), straddling intervals are clamped to start at
// round 0, and loss probabilities are untouched. Mirrors the crash-vector
// shifting the multi-phase pipelines have always done. Nil-safe.
func (s *Spec) Shift(offset int) *Spec {
	if s == nil {
		return nil
	}
	if offset <= 0 {
		return s
	}
	out := &Spec{Loss: s.Loss, EdgeLoss: s.EdgeLoss}
	for _, c := range s.Churn {
		if c.Rejoin != Forever && c.Rejoin-offset <= 0 {
			continue // fully elapsed: retention is a no-op, amnesia already applied
		}
		nc := c
		nc.Leave = max(0, c.Leave-offset)
		if c.Rejoin != Forever {
			nc.Rejoin = c.Rejoin - offset
		}
		out.Churn = append(out.Churn, nc)
	}
	for _, f := range s.Flaps {
		if f.To-offset <= 0 {
			continue
		}
		nf := f
		nf.From = max(0, f.From-offset)
		nf.To = f.To - offset
		out.Flaps = append(out.Flaps, nf)
	}
	for _, b := range s.Crashes {
		nb := b
		nb.Round = max(0, b.Round-offset)
		out.Crashes = append(out.Crashes, nb)
	}
	return out
}

// CrashAtVector flattens crash batches into the per-node crash-round
// vector form of sim.Config.CrashAt (-1 = never). A node named in two
// batches is an error.
func CrashAtVector(n int, crashes []Crash) ([]int, error) {
	if len(crashes) == 0 {
		return nil, nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = -1
	}
	for _, b := range crashes {
		if b.Round < 0 {
			return nil, fmt.Errorf("adversity: crash round %d negative", b.Round)
		}
		for _, u := range b.Nodes {
			if u < 0 || u >= n {
				return nil, fmt.Errorf("adversity: crash node %d out of range [0,%d)", u, n)
			}
			if out[u] >= 0 {
				return nil, fmt.Errorf("adversity: node %d crashes twice (rounds %d and %d)", u, out[u], b.Round)
			}
			out[u] = b.Round
		}
	}
	return out, nil
}

// span is one compiled down interval: [from, to), to == forever for ∞.
type span struct {
	from, to int
	amnesia  bool
}

const forever = math.MaxInt

// Rejoin is one node returning at an Event.
type Rejoin struct {
	Node graph.NodeID
	// Amnesia discards the node's rumor state on return.
	Amnesia bool
}

// Event is one round's worth of alive-set transitions, in the sorted
// calendar the engine walks alongside deliveries and activations.
type Event struct {
	Round  int
	Leave  []graph.NodeID
	Rejoin []Rejoin
}

// Schedule is the compiled, engine-ready form of a Spec.
type Schedule struct {
	n        int
	loss     float64
	edgeLoss map[uint64]float64
	// down[u] is node u's sorted, disjoint down intervals (nil for the
	// vast majority of nodes, the constant-time fast path).
	down  [][]span
	flaps map[uint64][]span
	// events is the leave/rejoin calendar, sorted by round.
	events  []Event
	hasLoss bool
	hasDown bool
	// edgeRefs lists every edge named by EdgeLoss/Flaps so the engine
	// can validate them against the topology.
	edgeRefs [][2]graph.NodeID
}

func edgeKey(u, v graph.NodeID) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

func validProb(p float64) bool {
	return p >= 0 && p <= 1 // the negated form would also catch NaN; this rejects it too
}

// Compile validates s against an n-node network and returns the
// engine-ready schedule. Malformed probabilities, out-of-range node ids,
// inverted or overlapping intervals all error; Compile never panics.
func (s *Spec) Compile(n int) (*Schedule, error) {
	if n <= 0 {
		return nil, fmt.Errorf("adversity: node count %d", n)
	}
	c := &Schedule{n: n, down: make([][]span, n)}
	if s == nil {
		return c, nil
	}
	if !validProb(s.Loss) {
		return nil, fmt.Errorf("adversity: loss probability %v outside [0,1]", s.Loss)
	}
	c.loss = s.Loss
	c.hasLoss = s.Loss > 0
	for _, el := range s.EdgeLoss {
		if err := checkEdge(el.U, el.V, n); err != nil {
			return nil, fmt.Errorf("adversity: edge loss: %w", err)
		}
		if !validProb(el.P) {
			return nil, fmt.Errorf("adversity: edge (%d,%d) loss probability %v outside [0,1]", el.U, el.V, el.P)
		}
		if c.edgeLoss == nil {
			c.edgeLoss = map[uint64]float64{}
		}
		k := edgeKey(el.U, el.V)
		if _, dup := c.edgeLoss[k]; dup {
			return nil, fmt.Errorf("adversity: duplicate edge loss for (%d,%d)", el.U, el.V)
		}
		c.edgeLoss[k] = el.P
		if el.P > 0 {
			c.hasLoss = true
		}
		c.edgeRefs = append(c.edgeRefs, [2]graph.NodeID{el.U, el.V})
	}
	for _, ch := range s.Churn {
		if ch.Node < 0 || ch.Node >= n {
			return nil, fmt.Errorf("adversity: churn node %d out of range [0,%d)", ch.Node, n)
		}
		if ch.Leave < 0 {
			return nil, fmt.Errorf("adversity: churn node %d leave round %d negative", ch.Node, ch.Leave)
		}
		to := ch.Rejoin
		if to == Forever {
			to = forever
		} else if to <= ch.Leave {
			return nil, fmt.Errorf("adversity: churn node %d interval [%d,%d) empty or inverted", ch.Node, ch.Leave, ch.Rejoin)
		}
		c.down[ch.Node] = append(c.down[ch.Node], span{from: ch.Leave, to: to, amnesia: ch.Amnesia})
	}
	crashAt, err := CrashAtVector(n, s.Crashes)
	if err != nil {
		return nil, err
	}
	for u, r := range crashAt {
		if r >= 0 {
			c.down[u] = append(c.down[u], span{from: r, to: forever})
		}
	}
	for u := range c.down {
		if len(c.down[u]) == 0 {
			continue
		}
		c.hasDown = true
		sort.Slice(c.down[u], func(i, j int) bool { return c.down[u][i].from < c.down[u][j].from })
		for i := 1; i < len(c.down[u]); i++ {
			if c.down[u][i-1].to >= c.down[u][i].from {
				return nil, fmt.Errorf("adversity: node %d has overlapping or touching down intervals", u)
			}
		}
	}
	for _, f := range s.Flaps {
		if err := checkEdge(f.U, f.V, n); err != nil {
			return nil, fmt.Errorf("adversity: flap: %w", err)
		}
		if f.From < 0 || f.To <= f.From {
			return nil, fmt.Errorf("adversity: flap (%d,%d) interval [%d,%d) empty or inverted", f.U, f.V, f.From, f.To)
		}
		if c.flaps == nil {
			c.flaps = map[uint64][]span{}
		}
		k := edgeKey(f.U, f.V)
		c.flaps[k] = append(c.flaps[k], span{from: f.From, to: f.To})
		c.edgeRefs = append(c.edgeRefs, [2]graph.NodeID{f.U, f.V})
	}
	for k := range c.flaps {
		fs := c.flaps[k]
		sort.Slice(fs, func(i, j int) bool { return fs[i].from < fs[j].from })
		for i := 1; i < len(fs); i++ {
			if fs[i-1].to > fs[i].from {
				return nil, fmt.Errorf("adversity: overlapping flap intervals on edge (%d,%d)", int(k>>32), int(uint32(k)))
			}
		}
	}
	c.buildEvents()
	return c, nil
}

func checkEdge(u, v graph.NodeID, n int) error {
	if u < 0 || u >= n || v < 0 || v >= n {
		return fmt.Errorf("edge (%d,%d) out of range [0,%d)", u, v, n)
	}
	if u == v {
		return fmt.Errorf("edge (%d,%d) is a self-loop", u, v)
	}
	return nil
}

// buildEvents flattens the per-node down intervals into the sorted
// leave/rejoin calendar, nodes in id order within each round so event
// application is deterministic.
func (c *Schedule) buildEvents() {
	byRound := map[int]*Event{}
	at := func(r int) *Event {
		ev := byRound[r]
		if ev == nil {
			ev = &Event{Round: r}
			byRound[r] = ev
		}
		return ev
	}
	for u := range c.down {
		for _, sp := range c.down[u] {
			at(sp.from).Leave = append(at(sp.from).Leave, u)
			if sp.to != forever {
				at(sp.to).Rejoin = append(at(sp.to).Rejoin, Rejoin{Node: u, Amnesia: sp.amnesia})
			}
		}
	}
	for _, ev := range byRound {
		sort.Ints(ev.Leave)
		sort.Slice(ev.Rejoin, func(i, j int) bool { return ev.Rejoin[i].Node < ev.Rejoin[j].Node })
		c.events = append(c.events, *ev)
	}
	sort.Slice(c.events, func(i, j int) bool { return c.events[i].Round < c.events[j].Round })
}

// N returns the node count the schedule was compiled for.
func (c *Schedule) N() int { return c.n }

// HasLoss reports whether any edge can lose exchanges (the engine only
// allocates per-node loss streams when true).
func (c *Schedule) HasLoss() bool { return c.hasLoss }

// HasDown reports whether any node is ever down (the engine only tracks
// an alive set when true).
func (c *Schedule) HasDown() bool { return c.hasDown }

// HasFlaps reports whether any link ever flaps.
func (c *Schedule) HasFlaps() bool { return len(c.flaps) > 0 }

// LossProb returns the loss probability of edge {u,v}.
func (c *Schedule) LossProb(u, v graph.NodeID) float64 {
	if c.edgeLoss != nil {
		if p, ok := c.edgeLoss[edgeKey(u, v)]; ok {
			return p
		}
	}
	return c.loss
}

// Down reports whether node u is down at round r.
func (c *Schedule) Down(u graph.NodeID, r int) bool {
	spans := c.down[u]
	if len(spans) == 0 {
		return false
	}
	for _, sp := range spans {
		if sp.from > r {
			return false
		}
		if r < sp.to {
			return true
		}
	}
	return false
}

// DownDuring reports whether node u is down at any round in [from, to]
// (the transit window of an exchange: if so, the exchange is lost).
func (c *Schedule) DownDuring(u graph.NodeID, from, to int) bool {
	spans := c.down[u]
	if len(spans) == 0 {
		return false
	}
	for _, sp := range spans {
		if sp.from > to {
			return false
		}
		if sp.to > from {
			return true
		}
	}
	return false
}

// LinkDownDuring reports whether edge {u,v} flaps down at any round in
// [from, to].
func (c *Schedule) LinkDownDuring(u, v graph.NodeID, from, to int) bool {
	if c.flaps == nil {
		return false
	}
	for _, sp := range c.flaps[edgeKey(u, v)] {
		if sp.from > to {
			return false
		}
		if sp.to > from {
			return true
		}
	}
	return false
}

// Events returns the sorted leave/rejoin calendar.
func (c *Schedule) Events() []Event { return c.events }

// EdgeRefs returns every edge named by the spec (loss overrides and
// flaps) so callers can validate them against the topology.
func (c *Schedule) EdgeRefs() [][2]graph.NodeID { return c.edgeRefs }
