package adversity

import (
	"reflect"
	"testing"
)

func TestParseSpecFull(t *testing.T) {
	spec, err := ParseSpec("loss=0.1; loss=0-1=0.5; churn=3:10-20:amnesia; churn=4:5-inf; flap=0-2:5-9; crash=4:6,7")
	if err != nil {
		t.Fatal(err)
	}
	want := &Spec{
		Loss:     0.1,
		EdgeLoss: []EdgeLoss{{U: 0, V: 1, P: 0.5}},
		Churn: []Churn{
			{Node: 3, Leave: 10, Rejoin: 20, Amnesia: true},
			{Node: 4, Leave: 5, Rejoin: Forever},
		},
		Flaps:   []Flap{{U: 0, V: 2, From: 5, To: 9}},
		Crashes: []Crash{{Round: 4, Nodes: []int{6, 7}}},
	}
	if !reflect.DeepEqual(spec, want) {
		t.Fatalf("parsed %+v, want %+v", spec, want)
	}
}

// TestParseSpecRoundTrip pins the DSL renderer: String must re-parse to
// the same spec.
func TestParseSpecRoundTrip(t *testing.T) {
	for _, text := range []string{
		"loss=0.25",
		"loss=1-2=0.75",
		"churn=0:1-2",
		"churn=9:3-inf:amnesia",
		"flap=4-5:0-100",
		"crash=12:0,1,2",
		"loss=0.1;loss=0-1=0.5;churn=3:10-20:amnesia;flap=0-2:5-9;crash=4:6,7",
	} {
		spec, err := ParseSpec(text)
		if err != nil {
			t.Fatalf("%q: %v", text, err)
		}
		again, err := ParseSpec(spec.String())
		if err != nil {
			t.Fatalf("%q: re-parse of %q: %v", text, spec.String(), err)
		}
		if !reflect.DeepEqual(spec, again) {
			t.Fatalf("%q: round trip changed %+v to %+v", text, spec, again)
		}
	}
	if got := (&Spec{}).String(); got != "" {
		t.Fatalf("empty spec renders %q", got)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, text := range []string{
		"bogus",
		"frob=1",
		"loss=",
		"loss=nope",
		"loss=1.5",
		"loss=-0.1",
		"loss=NaN",
		"loss=0.1;loss=0.2", // duplicate uniform loss
		"loss=0-1",          // missing probability? parses as edge "0-1" missing '='... wants float
		"churn=3",
		"churn=3:10",
		"churn=3:10-5:retain",
		"churn=3:10--1", // negative TO must not alias the Forever sentinel
		"churn=x:1-2",
		"flap=0-1:2--3",
		"flap=0:5-9",
		"flap=0-1:9",
		"crash=4",
		"crash=4:",
		"crash=x:1",
	} {
		if spec, err := ParseSpec(text); err == nil {
			t.Errorf("%q: parsed without error into %+v", text, spec)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	for name, spec := range map[string]*Spec{
		"loss-high":      {Loss: 1.01},
		"loss-negative":  {Loss: -0.5},
		"edge-range":     {EdgeLoss: []EdgeLoss{{U: 0, V: 64, P: 0.5}}},
		"edge-self":      {EdgeLoss: []EdgeLoss{{U: 3, V: 3, P: 0.5}}},
		"edge-dup":       {EdgeLoss: []EdgeLoss{{U: 0, V: 1, P: 0.5}, {U: 1, V: 0, P: 0.2}}},
		"edge-bad-prob":  {EdgeLoss: []EdgeLoss{{U: 0, V: 1, P: 2}}},
		"churn-range":    {Churn: []Churn{{Node: -1, Leave: 0, Rejoin: 5}}},
		"churn-inverted": {Churn: []Churn{{Node: 1, Leave: 5, Rejoin: 5}}},
		"churn-negative": {Churn: []Churn{{Node: 1, Leave: -3, Rejoin: 5}}},
		"churn-overlap":  {Churn: []Churn{{Node: 1, Leave: 0, Rejoin: 5}, {Node: 1, Leave: 4, Rejoin: 9}}},
		"churn-vs-crash": {Churn: []Churn{{Node: 1, Leave: 8, Rejoin: 12}}, Crashes: []Crash{{Round: 3, Nodes: []int{1}}}},
		"flap-range":     {Flaps: []Flap{{U: 0, V: 99, From: 0, To: 5}}},
		"flap-inverted":  {Flaps: []Flap{{U: 0, V: 1, From: 5, To: 5}}},
		"flap-overlap":   {Flaps: []Flap{{U: 0, V: 1, From: 0, To: 5}, {U: 1, V: 0, From: 3, To: 8}}},
		"crash-range":    {Crashes: []Crash{{Round: 0, Nodes: []int{64}}}},
		"crash-negative": {Crashes: []Crash{{Round: -1, Nodes: []int{0}}}},
		"crash-twice":    {Crashes: []Crash{{Round: 1, Nodes: []int{2}}, {Round: 5, Nodes: []int{2}}}},
	} {
		if sched, err := spec.Compile(64); err == nil {
			t.Errorf("%s: compiled without error into %+v", name, sched)
		}
	}
	if _, err := (&Spec{}).Compile(0); err == nil {
		t.Error("compile with zero nodes should error")
	}
}

func TestScheduleQueries(t *testing.T) {
	spec := MustParseSpec("loss=0.1;loss=0-1=0.6;churn=2:5-10:amnesia;flap=3-4:7-9;crash=12:5")
	c, err := spec.Compile(8)
	if err != nil {
		t.Fatal(err)
	}
	if !c.HasLoss() || !c.HasDown() || !c.HasFlaps() {
		t.Fatalf("predicates: loss=%v down=%v flaps=%v", c.HasLoss(), c.HasDown(), c.HasFlaps())
	}
	if p := c.LossProb(1, 0); p != 0.6 {
		t.Fatalf("edge override (either orientation) = %v, want 0.6", p)
	}
	if p := c.LossProb(6, 7); p != 0.1 {
		t.Fatalf("default loss = %v, want 0.1", p)
	}
	for r, want := range map[int]bool{4: false, 5: true, 9: true, 10: false} {
		if got := c.Down(2, r); got != want {
			t.Errorf("Down(2,%d) = %v, want %v", r, got, want)
		}
	}
	if !c.Down(5, 100) || c.Down(5, 11) {
		t.Error("crash interval should run from round 12 forever")
	}
	// Transit windows: [3,4] misses [5,10); [3,5] and [9,20] touch it.
	if c.DownDuring(2, 3, 4) || !c.DownDuring(2, 3, 5) || !c.DownDuring(2, 9, 20) || c.DownDuring(2, 10, 20) {
		t.Error("DownDuring window overlap wrong")
	}
	if c.LinkDownDuring(3, 4, 0, 6) || !c.LinkDownDuring(4, 3, 6, 7) || c.LinkDownDuring(3, 4, 9, 12) {
		t.Error("LinkDownDuring window overlap wrong")
	}
	events := c.Events()
	var rounds []int
	for _, ev := range events {
		rounds = append(rounds, ev.Round)
	}
	if !reflect.DeepEqual(rounds, []int{5, 10, 12}) {
		t.Fatalf("event rounds %v, want [5 10 12]", rounds)
	}
	if len(events[1].Rejoin) != 1 || events[1].Rejoin[0] != (Rejoin{Node: 2, Amnesia: true}) {
		t.Fatalf("round-10 event %+v lacks the amnesia rejoin", events[1])
	}
}

func TestShift(t *testing.T) {
	spec := MustParseSpec("loss=0.2;churn=1:5-10:amnesia;churn=2:3-inf;flap=0-1:4-8;crash=6:3")
	s := spec.Shift(6)
	want := &Spec{
		Loss: 0.2,
		Churn: []Churn{
			{Node: 1, Leave: 0, Rejoin: 4, Amnesia: true},
			{Node: 2, Leave: 0, Rejoin: Forever},
		},
		Flaps:   []Flap{{U: 0, V: 1, From: 0, To: 2}},
		Crashes: []Crash{{Round: 0, Nodes: []int{3}}},
	}
	if !reflect.DeepEqual(s, want) {
		t.Fatalf("shift(6) = %+v, want %+v", s, want)
	}
	// Fully elapsed intervals drop out.
	if got := spec.Shift(10); len(got.Churn) != 1 || got.Churn[0].Node != 2 || len(got.Flaps) != 0 {
		t.Fatalf("shift(10) = %+v", got)
	}
	if spec.Shift(0) != spec {
		t.Fatal("shift(0) should be the identity")
	}
	var nilSpec *Spec
	if nilSpec.Shift(5) != nil {
		t.Fatal("nil shift should stay nil")
	}
}

func TestSpecPredicates(t *testing.T) {
	var nilSpec *Spec
	if !nilSpec.Empty() || nilSpec.HasFailures() || nilSpec.HasAmnesia() || nilSpec.NeverReturns(0) {
		t.Fatal("nil spec predicates wrong")
	}
	spec := MustParseSpec("churn=1:5-10;churn=2:3-inf;crash=6:3")
	if spec.Empty() || !spec.HasFailures() || spec.HasAmnesia() {
		t.Fatal("spec predicates wrong")
	}
	for u, want := range map[int]bool{1: false, 2: true, 3: true, 4: false} {
		if got := spec.NeverReturns(u); got != want {
			t.Errorf("NeverReturns(%d) = %v, want %v", u, got, want)
		}
	}
	if !MustParseSpec("churn=1:5-10:amnesia").HasAmnesia() {
		t.Fatal("amnesia not detected")
	}
}

func TestCrashAtVector(t *testing.T) {
	v, err := CrashAtVector(4, []Crash{{Round: 3, Nodes: []int{1}}, {Round: 7, Nodes: []int{3}}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v, []int{-1, 3, -1, 7}) {
		t.Fatalf("vector %v", v)
	}
	if v, err := CrashAtVector(4, nil); v != nil || err != nil {
		t.Fatalf("empty schedule: %v, %v", v, err)
	}
	if _, err := CrashAtVector(2, []Crash{{Round: 1, Nodes: []int{5}}}); err == nil {
		t.Fatal("out-of-range node accepted")
	}
}
