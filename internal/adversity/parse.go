package adversity

import (
	"fmt"
	"strconv"
	"strings"

	"gossip/internal/graph"
)

// ParseSpec parses the textual fault-schedule DSL used by the CLIs
// (gossipsim -fault-spec). Items are separated by ';':
//
//	loss=P               uniform per-exchange loss probability
//	loss=U-V=P           loss probability override for edge {U,V}
//	churn=N:FROM-TO      node N down during [FROM,TO); TO may be "inf"
//	churn=N:FROM-TO:amnesia   …rejoining with its rumor state discarded
//	flap=U-V:FROM-TO     link {U,V} down during [FROM,TO)
//	crash=R:N1,N2,...    nodes N1,N2,… fail-stop at round R
//
// e.g. "loss=0.1;churn=3:10-20:amnesia;flap=0-1:5-9;crash=4:6,7".
// ParseSpec only checks shape; Compile validates ranges against a node
// count. Malformed input errors, never panics.
func ParseSpec(text string) (*Spec, error) {
	s := &Spec{}
	lossSet := false
	for _, item := range strings.Split(text, ";") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		key, val, ok := strings.Cut(item, "=")
		if !ok {
			return nil, fmt.Errorf("adversity: item %q is not key=value", item)
		}
		var err error
		switch key {
		case "loss":
			err = s.parseLoss(val, &lossSet)
		case "churn":
			err = s.parseChurn(val)
		case "flap":
			err = s.parseFlap(val)
		case "crash":
			err = s.parseCrash(val)
		default:
			err = fmt.Errorf("adversity: unknown item %q (have loss, churn, flap, crash)", key)
		}
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

// MustParseSpec is ParseSpec for literals in tests and examples.
func MustParseSpec(text string) *Spec {
	s, err := ParseSpec(text)
	if err != nil {
		panic(err)
	}
	return s
}

func (s *Spec) parseLoss(val string, lossSet *bool) error {
	if edge, p, ok := strings.Cut(val, "="); ok {
		u, v, err := parseEdge(edge)
		if err != nil {
			return fmt.Errorf("adversity: loss %q: %w", val, err)
		}
		prob, err := parseProb(p)
		if err != nil {
			return fmt.Errorf("adversity: loss %q: %w", val, err)
		}
		s.EdgeLoss = append(s.EdgeLoss, EdgeLoss{U: u, V: v, P: prob})
		return nil
	}
	prob, err := parseProb(val)
	if err != nil {
		return fmt.Errorf("adversity: loss %q: %w", val, err)
	}
	if *lossSet {
		return fmt.Errorf("adversity: duplicate uniform loss %q", val)
	}
	*lossSet = true
	s.Loss = prob
	return nil
}

func (s *Spec) parseChurn(val string) error {
	parts := strings.Split(val, ":")
	if len(parts) != 2 && len(parts) != 3 {
		return fmt.Errorf("adversity: churn %q wants NODE:FROM-TO[:amnesia]", val)
	}
	node, err := parseInt(parts[0])
	if err != nil {
		return fmt.Errorf("adversity: churn %q: %w", val, err)
	}
	from, to, err := parseInterval(parts[1], true)
	if err != nil {
		return fmt.Errorf("adversity: churn %q: %w", val, err)
	}
	ch := Churn{Node: node, Leave: from, Rejoin: to}
	if len(parts) == 3 {
		if parts[2] != "amnesia" {
			return fmt.Errorf("adversity: churn %q: unknown modifier %q", val, parts[2])
		}
		ch.Amnesia = true
	}
	s.Churn = append(s.Churn, ch)
	return nil
}

func (s *Spec) parseFlap(val string) error {
	edge, ival, ok := strings.Cut(val, ":")
	if !ok {
		return fmt.Errorf("adversity: flap %q wants U-V:FROM-TO", val)
	}
	u, v, err := parseEdge(edge)
	if err != nil {
		return fmt.Errorf("adversity: flap %q: %w", val, err)
	}
	from, to, err := parseInterval(ival, false)
	if err != nil {
		return fmt.Errorf("adversity: flap %q: %w", val, err)
	}
	s.Flaps = append(s.Flaps, Flap{U: u, V: v, From: from, To: to})
	return nil
}

func (s *Spec) parseCrash(val string) error {
	round, nodes, ok := strings.Cut(val, ":")
	if !ok {
		return fmt.Errorf("adversity: crash %q wants ROUND:N1,N2,...", val)
	}
	r, err := parseInt(round)
	if err != nil {
		return fmt.Errorf("adversity: crash %q: %w", val, err)
	}
	batch := Crash{Round: r}
	for _, f := range strings.Split(nodes, ",") {
		u, err := parseInt(f)
		if err != nil {
			return fmt.Errorf("adversity: crash %q: %w", val, err)
		}
		batch.Nodes = append(batch.Nodes, u)
	}
	if len(batch.Nodes) == 0 {
		return fmt.Errorf("adversity: crash %q names no nodes", val)
	}
	s.Crashes = append(s.Crashes, batch)
	return nil
}

func parseEdge(text string) (graph.NodeID, graph.NodeID, error) {
	us, vs, ok := strings.Cut(text, "-")
	if !ok {
		return 0, 0, fmt.Errorf("edge %q wants U-V", text)
	}
	u, err := parseInt(us)
	if err != nil {
		return 0, 0, err
	}
	v, err := parseInt(vs)
	if err != nil {
		return 0, 0, err
	}
	return u, v, nil
}

// parseInterval parses "FROM-TO"; with allowInf, TO may be "inf" (or
// "never"), yielding Forever.
func parseInterval(text string, allowInf bool) (int, int, error) {
	fs, ts, ok := strings.Cut(text, "-")
	if !ok {
		return 0, 0, fmt.Errorf("interval %q wants FROM-TO", text)
	}
	from, err := parseInt(fs)
	if err != nil {
		return 0, 0, err
	}
	if allowInf && (ts == "inf" || ts == "never") {
		return from, Forever, nil
	}
	to, err := parseInt(ts)
	if err != nil {
		return 0, 0, err
	}
	if to < 0 {
		// In the DSL "forever" is spelled "inf"; a negative TO is a typo
		// and must not silently alias the Forever sentinel (-1).
		return 0, 0, fmt.Errorf("interval %q has negative end %d (use \"inf\" for a permanent leave)", text, to)
	}
	return from, to, nil
}

func parseInt(text string) (int, error) {
	v, err := strconv.Atoi(strings.TrimSpace(text))
	if err != nil {
		return 0, fmt.Errorf("bad integer %q", text)
	}
	return v, nil
}

func parseProb(text string) (float64, error) {
	p, err := strconv.ParseFloat(strings.TrimSpace(text), 64)
	if err != nil {
		return 0, fmt.Errorf("bad probability %q", text)
	}
	if !validProb(p) {
		return 0, fmt.Errorf("probability %v outside [0,1]", p)
	}
	return p, nil
}

// String renders s back in the DSL (parseable by ParseSpec).
func (s *Spec) String() string {
	if s.Empty() {
		return ""
	}
	var items []string
	if s.Loss > 0 {
		items = append(items, fmt.Sprintf("loss=%g", s.Loss))
	}
	for _, el := range s.EdgeLoss {
		items = append(items, fmt.Sprintf("loss=%d-%d=%g", el.U, el.V, el.P))
	}
	for _, c := range s.Churn {
		to := "inf"
		if c.Rejoin != Forever {
			to = strconv.Itoa(c.Rejoin)
		}
		item := fmt.Sprintf("churn=%d:%d-%s", c.Node, c.Leave, to)
		if c.Amnesia {
			item += ":amnesia"
		}
		items = append(items, item)
	}
	for _, f := range s.Flaps {
		items = append(items, fmt.Sprintf("flap=%d-%d:%d-%d", f.U, f.V, f.From, f.To))
	}
	for _, b := range s.Crashes {
		nodes := make([]string, len(b.Nodes))
		for i, u := range b.Nodes {
			nodes[i] = strconv.Itoa(u)
		}
		items = append(items, fmt.Sprintf("crash=%d:%s", b.Round, strings.Join(nodes, ",")))
	}
	return strings.Join(items, ";")
}
