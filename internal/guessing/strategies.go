package guessing

import "math/rand/v2"

// RandomStrategy mirrors the push-pull protocol (Lemma 8b): each round it
// guesses, for every a in A, a uniformly random partner b, and for every
// b in B, a uniformly random partner a — 2m oblivious guesses.
type RandomStrategy struct {
	m   int
	rng *rand.Rand
}

var _ Strategy = (*RandomStrategy)(nil)

// NewRandomStrategy returns the push-pull-analogue strategy.
func NewRandomStrategy(m int, rng *rand.Rand) *RandomStrategy {
	return &RandomStrategy{m: m, rng: rng}
}

// Guesses draws one random partner per endpoint.
func (s *RandomStrategy) Guesses() []Pair {
	out := make([]Pair, 0, 2*s.m)
	for a := 0; a < s.m; a++ {
		out = append(out, Pair{A: a, B: s.rng.IntN(s.m)})
	}
	for b := 0; b < s.m; b++ {
		out = append(out, Pair{A: s.rng.IntN(s.m), B: b})
	}
	return out
}

// Feedback is ignored: the strategy is oblivious.
func (s *RandomStrategy) Feedback([]Pair) {}

// FreshStrategy is the near-optimal general protocol used in the Lemma 7
// and Lemma 8a analyses: it never repeats a guess and stops probing a
// B-endpoint once it has been hit (its remaining target pairs are gone by
// update rule (3)). Guesses rotate round-robin over the still-live
// B-endpoints so all are probed evenly.
type FreshStrategy struct {
	m int
	// nextA[b] is the next untried A-partner slot for endpoint b.
	nextA []int
	// offset[b] randomizes endpoint b's probe order across trials.
	offset []int
	// done[b] marks endpoints hit (or exhausted).
	done []bool
	// cursor rotates over B-endpoints across rounds.
	cursor int
}

var _ Strategy = (*FreshStrategy)(nil)

// NewFreshStrategy returns the fresh-pair strategy. The rng shuffles each
// endpoint's probe order so runs differ across trials.
func NewFreshStrategy(m int, rng *rand.Rand) *FreshStrategy {
	s := &FreshStrategy{m: m, nextA: make([]int, m), offset: make([]int, m), done: make([]bool, m)}
	for b := range s.offset {
		s.offset[b] = rng.IntN(m)
	}
	return s
}

// Guesses emits up to 2m fresh pairs. Capacity is spread round-robin over
// the live endpoints in repeated passes, so as endpoints finish, the
// remaining stragglers absorb the freed guessing capacity — this
// adaptivity is what separates the Θ(1/p) general bound from the random
// strategy's Θ(log m / p).
func (s *FreshStrategy) Guesses() []Pair {
	out := make([]Pair, 0, 2*s.m)
	for len(out) < 2*s.m {
		progress := false
		for scanned := 0; scanned < s.m && len(out) < 2*s.m; scanned++ {
			b := (s.cursor + scanned) % s.m
			if s.done[b] || s.nextA[b] >= s.m {
				continue
			}
			// The offset varies which A partners each endpoint tries
			// first, without ever repeating a pair for that endpoint.
			a := (s.nextA[b] + s.offset[b]) % s.m
			s.nextA[b]++
			out = append(out, Pair{A: a, B: b})
			progress = true
		}
		if !progress {
			break
		}
	}
	s.cursor = (s.cursor + 1) % s.m
	return out
}

// Feedback retires every hit B-endpoint.
func (s *FreshStrategy) Feedback(hits []Pair) {
	for _, p := range hits {
		s.done[p.B] = true
	}
}
