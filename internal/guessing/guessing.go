// Package guessing implements the combinatorial guessing game of Section
// 3.1: Alice submits up to 2m bipartite pairs per round; the oracle
// reveals the target pairs she hit and removes every target pair sharing
// the B-endpoint of a hit (update rule (3)). The game ends when the
// target set is empty.
//
// Lemma 7: a singleton target forces Ω(m) rounds. Lemma 8: a Random_p
// target forces Ω(1/p) rounds for any protocol and Ω(log m / p) for the
// random strategy that mirrors push-pull.
package guessing

import (
	"fmt"
	"math/rand/v2"
)

// Pair is an element of A x B, by side-local indices in [0, m).
type Pair struct {
	A, B int
}

// Game holds the oracle's state for Guessing(2m, P).
type Game struct {
	m      int
	target map[Pair]bool
	// bLive[b] counts remaining target pairs with B-component b.
	bLive  map[int]int
	rounds int
	// guesses counts individual submitted pairs.
	guesses int64
}

// NewGame starts a game with the given target set.
func NewGame(m int, target map[Pair]bool) (*Game, error) {
	if m < 1 {
		return nil, fmt.Errorf("guessing: m=%d < 1", m)
	}
	g := &Game{m: m, target: make(map[Pair]bool, len(target)), bLive: make(map[int]int)}
	for p := range target {
		if p.A < 0 || p.A >= m || p.B < 0 || p.B >= m {
			return nil, fmt.Errorf("guessing: target pair %v out of range [0,%d)", p, m)
		}
		g.target[p] = true
		g.bLive[p.B]++
	}
	return g, nil
}

// M returns the side size m.
func (g *Game) M() int { return g.m }

// Remaining returns the current target set size.
func (g *Game) Remaining() int { return len(g.target) }

// Solved reports an empty target set.
func (g *Game) Solved() bool { return len(g.target) == 0 }

// Rounds returns the number of rounds played so far.
func (g *Game) Rounds() int { return g.rounds }

// Guesses returns the total number of submitted pairs.
func (g *Game) Guesses() int64 { return g.guesses }

// Submit plays one round with Alice's guesses (at most 2m pairs) and
// returns the hits X_r ∩ T_r. Per update rule (3), every target pair
// whose B-component was hit is removed.
func (g *Game) Submit(guesses []Pair) ([]Pair, error) {
	if len(guesses) > 2*g.m {
		return nil, fmt.Errorf("guessing: %d guesses exceed the per-round cap %d", len(guesses), 2*g.m)
	}
	g.rounds++
	g.guesses += int64(len(guesses))
	var hits []Pair
	hitB := make(map[int]bool)
	for _, p := range guesses {
		if g.target[p] {
			hits = append(hits, p)
			hitB[p.B] = true
		}
	}
	if len(hitB) > 0 {
		for p := range g.target {
			if hitB[p.B] {
				delete(g.target, p)
				g.bLive[p.B]--
				if g.bLive[p.B] == 0 {
					delete(g.bLive, p.B)
				}
			}
		}
	}
	return hits, nil
}

// SingletonTarget returns a uniformly random one-pair target set.
func SingletonTarget(m int, rng *rand.Rand) map[Pair]bool {
	return map[Pair]bool{{A: rng.IntN(m), B: rng.IntN(m)}: true}
}

// RandomTarget is the predicate Random_p: each pair joins independently
// with probability p.
func RandomTarget(m int, p float64, rng *rand.Rand) map[Pair]bool {
	t := make(map[Pair]bool)
	for a := 0; a < m; a++ {
		for b := 0; b < m; b++ {
			if rng.Float64() < p {
				t[Pair{A: a, B: b}] = true
			}
		}
	}
	return t
}

// Strategy generates Alice's guesses; Feedback reports the oracle's
// answer for the round.
type Strategy interface {
	// Guesses returns at most 2m pairs for the current round.
	Guesses() []Pair
	// Feedback receives the hits from the previous Guesses call.
	Feedback(hits []Pair)
}

// Play runs strategy s against the game until solved or maxRounds,
// returning the rounds used and whether the game was solved.
func Play(g *Game, s Strategy, maxRounds int) (int, bool, error) {
	for r := 0; r < maxRounds; r++ {
		if g.Solved() {
			return g.Rounds(), true, nil
		}
		hits, err := g.Submit(s.Guesses())
		if err != nil {
			return g.Rounds(), false, err
		}
		s.Feedback(hits)
	}
	return g.Rounds(), g.Solved(), nil
}
