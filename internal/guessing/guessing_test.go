package guessing

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func newRng(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, seed+1)) }

func TestGameBasics(t *testing.T) {
	target := map[Pair]bool{{A: 1, B: 2}: true}
	g, err := NewGame(4, target)
	if err != nil {
		t.Fatal(err)
	}
	if g.Solved() {
		t.Fatal("fresh game solved")
	}
	hits, err := g.Submit([]Pair{{A: 0, B: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 0 || g.Solved() {
		t.Fatal("miss should not solve")
	}
	hits, err = g.Submit([]Pair{{A: 1, B: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || !g.Solved() {
		t.Fatal("hit should solve singleton game")
	}
	if g.Rounds() != 2 || g.Guesses() != 2 {
		t.Fatalf("rounds/guesses = %d/%d", g.Rounds(), g.Guesses())
	}
}

// Update rule (3): hitting (a,b) removes every target pair with the same
// B-component, but not pairs with other B-components.
func TestOracleUpdateRule(t *testing.T) {
	target := map[Pair]bool{
		{A: 0, B: 0}: true,
		{A: 1, B: 0}: true,
		{A: 2, B: 0}: true,
		{A: 0, B: 1}: true,
	}
	g, err := NewGame(3, target)
	if err != nil {
		t.Fatal(err)
	}
	hits, err := g.Submit([]Pair{{A: 1, B: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Fatalf("hits = %v", hits)
	}
	if g.Remaining() != 1 {
		t.Fatalf("remaining = %d, want only (0,1)", g.Remaining())
	}
	// The remaining pair has B=1; hitting B=0 again changes nothing.
	if _, err := g.Submit([]Pair{{A: 0, B: 0}}); err != nil {
		t.Fatal(err)
	}
	if g.Remaining() != 1 {
		t.Fatal("already-cleared endpoint removed more pairs")
	}
}

func TestSubmitCapEnforced(t *testing.T) {
	g, err := NewGame(2, map[Pair]bool{})
	if err != nil {
		t.Fatal(err)
	}
	guesses := make([]Pair, 5) // cap is 2m = 4
	if _, err := g.Submit(guesses); err == nil {
		t.Fatal("expected cap error")
	}
}

func TestNewGameValidation(t *testing.T) {
	if _, err := NewGame(0, nil); err == nil {
		t.Fatal("m=0 should error")
	}
	if _, err := NewGame(2, map[Pair]bool{{A: 5, B: 0}: true}); err == nil {
		t.Fatal("out-of-range target should error")
	}
}

func TestTargetGenerators(t *testing.T) {
	rng := newRng(1)
	st := SingletonTarget(10, rng)
	if len(st) != 1 {
		t.Fatalf("singleton size %d", len(st))
	}
	rt := RandomTarget(40, 0.25, rng)
	if len(rt) < 200 || len(rt) > 600 {
		t.Fatalf("Random_0.25 on 40x40 gave %d, expected ~400", len(rt))
	}
}

func TestFreshSolvesSingleton(t *testing.T) {
	rng := newRng(2)
	m := 16
	game, err := NewGame(m, SingletonTarget(m, rng))
	if err != nil {
		t.Fatal(err)
	}
	s := NewFreshStrategy(m, rng)
	rounds, solved, err := Play(game, s, 10*m)
	if err != nil {
		t.Fatal(err)
	}
	if !solved {
		t.Fatal("fresh strategy failed to solve singleton game")
	}
	// Fresh pairs at 2m per round over m² pairs: at most m/2 rounds.
	if rounds > m/2+1 {
		t.Fatalf("rounds = %d, exceeds worst case %d", rounds, m/2+1)
	}
}

func TestRandomSolvesSingletonEventually(t *testing.T) {
	rng := newRng(3)
	m := 8
	game, err := NewGame(m, SingletonTarget(m, rng))
	if err != nil {
		t.Fatal(err)
	}
	s := NewRandomStrategy(m, rng)
	_, solved, err := Play(game, s, 100*m)
	if err != nil {
		t.Fatal(err)
	}
	if !solved {
		t.Fatal("random strategy failed within generous horizon")
	}
}

// Lemma 7 shape: fresh-strategy solve time for singleton targets grows
// linearly in m.
func TestSingletonRoundsGrowLinearly(t *testing.T) {
	mean := func(m int) float64 {
		total := 0
		const trials = 40
		for i := 0; i < trials; i++ {
			rng := newRng(uint64(1000*m + i))
			game, err := NewGame(m, SingletonTarget(m, rng))
			if err != nil {
				t.Fatal(err)
			}
			rounds, solved, err := Play(game, NewFreshStrategy(m, rng), 10*m)
			if err != nil || !solved {
				t.Fatalf("play failed: %v", err)
			}
			total += rounds
		}
		return float64(total) / trials
	}
	small, large := mean(8), mean(32)
	ratio := large / small
	if ratio < 2 || ratio > 8 {
		t.Fatalf("4x m gave %vx rounds; want ~4x (linear)", ratio)
	}
}

// Lemma 8 shape: for Random_p targets the random strategy needs more
// rounds than the fresh strategy (the log m gap).
func TestRandomSlowerThanFresh(t *testing.T) {
	m := 48
	p := 4.0 / float64(m)
	meanRounds := func(mk func(*rand.Rand) Strategy) float64 {
		total := 0
		const trials = 20
		for i := 0; i < trials; i++ {
			rng := newRng(uint64(7000 + i))
			game, err := NewGame(m, RandomTarget(m, p, rng))
			if err != nil {
				t.Fatal(err)
			}
			rounds, solved, err := Play(game, mk(rng), 200*m)
			if err != nil || !solved {
				t.Fatalf("play failed: solved=%v err=%v", solved, err)
			}
			total += rounds
		}
		return float64(total) / trials
	}
	fresh := meanRounds(func(r *rand.Rand) Strategy { return NewFreshStrategy(m, r) })
	random := meanRounds(func(r *rand.Rand) Strategy { return NewRandomStrategy(m, r) })
	if random <= fresh {
		t.Fatalf("random (%v) should be slower than fresh (%v)", random, fresh)
	}
}

func TestPlayHorizon(t *testing.T) {
	rng := newRng(5)
	m := 64
	game, err := NewGame(m, SingletonTarget(m, rng))
	if err != nil {
		t.Fatal(err)
	}
	_, solved, err := Play(game, NewRandomStrategy(m, rng), 1)
	if err != nil {
		t.Fatal(err)
	}
	if solved {
		t.Skip("lucky first-round hit; acceptable")
	}
}

// Property: the target set size never increases and every hit's
// B-endpoint disappears from the live set.
func TestQuickTargetMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		rng := newRng(seed)
		m := 6 + int(seed%6)
		game, err := NewGame(m, RandomTarget(m, 0.3, rng))
		if err != nil {
			return false
		}
		prev := game.Remaining()
		s := NewRandomStrategy(m, rng)
		for r := 0; r < 50 && !game.Solved(); r++ {
			hits, err := game.Submit(s.Guesses())
			if err != nil {
				return false
			}
			if game.Remaining() > prev {
				return false
			}
			prev = game.Remaining()
			s.Feedback(hits)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// FreshStrategy must never repeat a guess.
func TestFreshNeverRepeats(t *testing.T) {
	m := 12
	s := NewFreshStrategy(m, newRng(9))
	seen := map[Pair]bool{}
	for r := 0; r < m; r++ {
		for _, p := range s.Guesses() {
			if seen[p] {
				t.Fatalf("repeated guess %v in round %d", p, r)
			}
			seen[p] = true
		}
		s.Feedback(nil)
	}
	if len(seen) != m*m {
		t.Fatalf("covered %d pairs, want %d", len(seen), m*m)
	}
}
