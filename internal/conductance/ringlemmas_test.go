package conductance

import (
	"math"
	"testing"

	"gossip/internal/graph"
	"gossip/internal/graphgen"
)

// The Theorem 13 ring construction comes with exact analytic claims
// (Observation 14, Lemmas 15-17, Corollary 18). Small instances fit
// inside the exact cut enumeration, so we can check them directly.

// halfRingCut builds the cut of Lemma 15: the ring split into two equal
// halves of consecutive layers, no intra-clique edges cut.
func halfRingCut(r *graphgen.RingNetwork) Cut {
	var side []graph.NodeID
	for layer := 0; layer < r.Layers/2; layer++ {
		for j := 0; j < r.Size; j++ {
			side = append(side, r.Node(layer, j))
		}
	}
	return NewCut(r.Graph.N(), side)
}

// Lemma 15: φℓ(C) = α for the half-ring cut, with
// α = 2s² / ((k/2)·s·(3s-1)).
func TestLemma15HalfRingCut(t *testing.T) {
	rng := graphgen.NewRand(3)
	for _, tc := range []struct{ k, s, ell int }{
		{4, 2, 9}, {4, 3, 16}, {6, 3, 25},
	} {
		r, err := graphgen.NewRingNetwork(tc.k, tc.s, tc.ell, rng)
		if err != nil {
			t.Fatal(err)
		}
		cut := halfRingCut(r)
		got := WeightLCutConductance(r.Graph, cut, tc.ell)
		want := r.Alpha()
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("k=%d s=%d: φℓ(C) = %v, want α = %v", tc.k, tc.s, got, want)
		}
	}
}

// Observation 14 + Lemma 16: the exact φℓ of the whole ring is Θ(α); the
// half-ring cut is in fact the minimizer for these small instances.
func TestLemma16ExactRingConductance(t *testing.T) {
	rng := graphgen.NewRand(5)
	r, err := graphgen.NewRingNetwork(4, 2, 9, rng) // 8 nodes: exact is cheap
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exact(r.Graph)
	if err != nil {
		t.Fatal(err)
	}
	alpha := r.Alpha()
	phi := res.PhiL[9]
	if phi > alpha+1e-9 {
		t.Fatalf("exact φℓ = %v exceeds the half-ring cut value α = %v", phi, alpha)
	}
	if phi < alpha/8 {
		t.Fatalf("exact φℓ = %v far below Θ(α) = %v", phi, alpha)
	}
}

// Lemma 17: for ℓ = O((cnα)²) the critical latency is ℓ itself (the
// slow-edge class is the critical one).
func TestLemma17CriticalLatency(t *testing.T) {
	rng := graphgen.NewRand(7)
	// s=3 → s² = 9; pick ℓ < ~9·constant.
	r, err := graphgen.NewRingNetwork(6, 3, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exact(r.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if res.EllStar != 8 {
		t.Fatalf("ℓ* = %d, want the slow latency 8 (Lemma 17)", res.EllStar)
	}
}

// The flip side of Lemma 17: when ℓ is far beyond the O((cnα)²) range,
// the fast class wins the φℓ/ℓ maximization and ℓ* = 1.
func TestLemma17BreaksForHugeEll(t *testing.T) {
	rng := graphgen.NewRand(9)
	r, err := graphgen.NewRingNetwork(6, 3, 4096, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exact(r.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if res.EllStar != 1 {
		t.Fatalf("ℓ* = %d, want 1 when the slow class is hopeless", res.EllStar)
	}
}

// Corollary 18: with exactly two non-empty latency classes,
// φavg = Θ(φ*/ℓ*) — the Theorem 5 sandwich collapses to a factor 4.
func TestCorollary18TwoClasses(t *testing.T) {
	rng := graphgen.NewRand(11)
	r, err := graphgen.NewRingNetwork(4, 3, 16, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exact(r.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if res.NonEmptyClasses != 2 {
		t.Fatalf("L = %d, want 2", res.NonEmptyClasses)
	}
	ratio := res.PhiAvg / (res.PhiStar / float64(res.EllStar))
	if ratio < 0.5-1e-9 || ratio > 2+1e-9 {
		t.Fatalf("φavg/(φ*/ℓ*) = %v, want within [1/2, 2] (Corollary 18)", ratio)
	}
}

// The guessing-game gadget of Theorem 10 (Figure 1a) was designed to have
// φℓ = Θ(φ) at the fast latency: verify exactly on a tiny instance.
func TestTheorem10GadgetExact(t *testing.T) {
	rng := graphgen.NewRand(13)
	net, err := graphgen.NewTheorem10Network(8, 2, 4096, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exact(net.Graph)
	if err != nil {
		t.Fatal(err)
	}
	phi := res.PhiL[2]
	if phi < 0.5/8 || phi > 0.5*2 {
		t.Fatalf("gadget exact φ_2 = %v, designed Θ(0.5)", phi)
	}
	if err := res.CheckTheorem5(); err != nil {
		t.Fatal(err)
	}
}
