package conductance

import (
	"math"
	"testing"
	"testing/quick"

	"gossip/internal/graph"
	"gossip/internal/graphgen"
)

func TestLatencyClass(t *testing.T) {
	tests := []struct{ lat, want int }{
		{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {16, 4}, {17, 5}, {1024, 10},
	}
	for _, tt := range tests {
		if got := LatencyClass(tt.lat); got != tt.want {
			t.Fatalf("LatencyClass(%d) = %d, want %d", tt.lat, got, tt.want)
		}
	}
}

func TestLatencyClassPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LatencyClass(0)
}

// Unit-latency clique: φ* must equal the classical conductance and ℓ*=1.
// For K_n (n even), the minimum cut conductance is the half split:
// (n/2)² / (n/2·(n-1)).
func TestCliqueUnitLatency(t *testing.T) {
	g := graphgen.Clique(8, 1)
	res, err := Exact(g)
	if err != nil {
		t.Fatal(err)
	}
	want := 16.0 / (4 * 7)
	if math.Abs(res.PhiStar-want) > 1e-9 {
		t.Fatalf("φ* = %v, want %v", res.PhiStar, want)
	}
	if res.EllStar != 1 {
		t.Fatalf("ℓ* = %d, want 1", res.EllStar)
	}
	// Definition 4 remark: with unit latencies φavg is exactly half of
	// the classical conductance.
	if math.Abs(res.PhiAvg-want/2) > 1e-9 {
		t.Fatalf("φavg = %v, want %v", res.PhiAvg, want/2)
	}
	if res.NonEmptyClasses != 1 {
		t.Fatalf("L = %d, want 1", res.NonEmptyClasses)
	}
	if err := res.CheckTheorem5(); err != nil {
		t.Fatal(err)
	}
}

// Dumbbell: the bottleneck cut is the bridge. φ_ℓ for ℓ >= bridge latency
// is 1/Vol(half) and φ_1 = 0 (no latency-1 edge crosses the middle...
// actually φ_1 counts only the latency<=1 cut edges on every cut; the
// bridge cut has none).
func TestDumbbellConductance(t *testing.T) {
	g := graphgen.Dumbbell(4, 16)
	res, err := Exact(g)
	if err != nil {
		t.Fatal(err)
	}
	// Bridge cut: one side = clique of 4 with vol 4*3+1 = 13.
	wantPhi16 := 1.0 / 13.0
	if math.Abs(res.PhiL[16]-wantPhi16) > 1e-9 {
		t.Fatalf("φ_16 = %v, want %v", res.PhiL[16], wantPhi16)
	}
	if res.PhiL[1] != 0 {
		t.Fatalf("φ_1 = %v, want 0 (bridge cut has no fast edge)", res.PhiL[1])
	}
	// φ*/ℓ* maximization: φ_16/16 vs φ_1/1=0 → ℓ*=16.
	if res.EllStar != 16 {
		t.Fatalf("ℓ* = %d, want 16", res.EllStar)
	}
	if err := res.CheckTheorem5(); err != nil {
		t.Fatal(err)
	}
}

func TestWeightLCutConductance(t *testing.T) {
	g := graphgen.Dumbbell(3, 10)
	cut := NewCut(g.N(), []graph.NodeID{0, 1, 2})
	// One cut edge (the bridge, latency 10); min volume = 3*2+1 = 7.
	if got := WeightLCutConductance(g, cut, 10); math.Abs(got-1.0/7) > 1e-9 {
		t.Fatalf("φ_10(C) = %v, want 1/7", got)
	}
	if got := WeightLCutConductance(g, cut, 9); got != 0 {
		t.Fatalf("φ_9(C) = %v, want 0", got)
	}
}

func TestAvgCutConductance(t *testing.T) {
	g := graphgen.Dumbbell(3, 10)
	cut := NewCut(g.N(), []graph.NodeID{0, 1, 2})
	// Bridge latency 10 is in class 4 (2^3 < 10 <= 2^4): weight 1/16.
	want := (1.0 / 16) / 7
	if got := AvgCutConductance(g, cut); math.Abs(got-want) > 1e-12 {
		t.Fatalf("φavg(C) = %v, want %v", got, want)
	}
}

func TestCutPanicsOnEmptySide(t *testing.T) {
	g := graphgen.Clique(3, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	WeightLCutConductance(g, NewCut(3, nil), 1)
}

func TestExactErrors(t *testing.T) {
	big := graphgen.Path(MaxExactN+1, 1)
	if _, err := Exact(big); err == nil {
		t.Fatal("oversized graph should error")
	}
}

// φℓ must be monotone non-decreasing in ℓ.
func TestPhiLMonotone(t *testing.T) {
	rng := graphgen.NewRand(31)
	g, err := graphgen.ErdosRenyi(12, 0.4, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	graphgen.AssignRandomLatencies(g, 1, 12, rng)
	res, err := Exact(g)
	if err != nil {
		t.Fatal(err)
	}
	lats := g.DistinctLatencies()
	for i := 1; i < len(lats); i++ {
		if res.PhiL[lats[i]] < res.PhiL[lats[i-1]]-1e-12 {
			t.Fatalf("φ_%d = %v < φ_%d = %v", lats[i], res.PhiL[lats[i]], lats[i-1], res.PhiL[lats[i-1]])
		}
	}
}

// Theorem 5 must hold on random weighted graphs (property-based).
func TestQuickTheorem5(t *testing.T) {
	f := func(seed uint64) bool {
		rng := graphgen.NewRand(seed)
		n := 6 + int(seed%7)
		g, err := graphgen.ErdosRenyi(n, 0.5, 1, rng)
		if err != nil {
			return true // resampling failed; skip
		}
		graphgen.AssignRandomLatencies(g, 1, 40, rng)
		res, err := Exact(g)
		if err != nil {
			return false
		}
		return res.CheckTheorem5() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Scaling all latencies by a constant must leave φ* unchanged while
// scaling ℓ* (conductance is a structural quantity; the critical ratio
// φ*/ℓ* scales inversely).
func TestCriticalScaling(t *testing.T) {
	rng := graphgen.NewRand(77)
	g, err := graphgen.ErdosRenyi(10, 0.5, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	graphgen.AssignRandomLatencies(g, 1, 6, rng)
	res1, err := Exact(g)
	if err != nil {
		t.Fatal(err)
	}
	scaled := g.Clone()
	for _, e := range g.Edges() {
		if err := scaled.SetLatency(e.U, e.V, e.Latency*3); err != nil {
			t.Fatal(err)
		}
	}
	res3, err := Exact(scaled)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res1.PhiStar-res3.PhiStar) > 1e-9 {
		t.Fatalf("φ* changed under scaling: %v -> %v", res1.PhiStar, res3.PhiStar)
	}
	if res3.EllStar != 3*res1.EllStar {
		t.Fatalf("ℓ* = %d after scaling, want %d", res3.EllStar, 3*res1.EllStar)
	}
}

func TestResultClasses(t *testing.T) {
	r := Result{MaxLatency: 10}
	if r.Classes() != 4 {
		t.Fatalf("Classes() = %d, want 4", r.Classes())
	}
	r.MaxLatency = 2
	if r.Classes() != 1 {
		t.Fatalf("Classes() = %d, want 1", r.Classes())
	}
}
