package conductance

import (
	"fmt"
	"math"

	"gossip/internal/graph"
)

// MaxExactN bounds full cut enumeration: 2^(MaxExactN-1) cuts.
const MaxExactN = 22

// Exact computes every conductance quantity by enumerating all 2^(n-1)-1
// cuts. It errors for graphs larger than MaxExactN nodes.
func Exact(g *graph.Graph) (Result, error) {
	n := g.N()
	if n > MaxExactN {
		return Result{}, fmt.Errorf("conductance: exact enumeration limited to %d nodes, got %d", MaxExactN, n)
	}
	if n < 2 {
		return Result{}, fmt.Errorf("conductance: need at least 2 nodes")
	}
	lats := g.DistinctLatencies()
	if len(lats) == 0 {
		return Result{}, fmt.Errorf("conductance: graph has no edges")
	}
	latIndex := make(map[int]int, len(lats))
	for i, l := range lats {
		latIndex[l] = i
	}
	edges := g.Edges()
	deg := make([]int, n)
	for u := 0; u < n; u++ {
		deg[u] = g.Degree(u)
	}
	totalVol := 2 * g.M()

	minPhiL := make([]float64, len(lats))
	argMask := make([]uint64, len(lats))
	for i := range minPhiL {
		minPhiL[i] = math.Inf(1)
	}
	minAvg := math.Inf(1)
	avgMask := uint64(0)

	// Enumerate subsets of {0..n-2}; node n-1 stays outside U so each
	// unordered cut is visited exactly once.
	numMasks := uint64(1) << uint(n-1)
	latCount := make([]int, len(lats))
	for mask := uint64(1); mask < numMasks; mask++ {
		for i := range latCount {
			latCount[i] = 0
		}
		volU := 0
		for u := 0; u < n-1; u++ {
			if mask&(1<<uint(u)) != 0 {
				volU += deg[u]
			}
		}
		avgSum := 0.0
		for _, e := range edges {
			inU := mask&(1<<uint(e.U)) != 0
			inV := e.V < n-1 && mask&(1<<uint(e.V)) != 0
			if inU != inV {
				latCount[latIndex[e.Latency]]++
				avgSum += 1 / math.Pow(2, float64(LatencyClass(e.Latency)))
			}
		}
		s := float64(min(volU, totalVol-volU))
		if s == 0 {
			// A side with isolated nodes only; conductance is defined
			// via volumes, and a zero-volume side yields an undefined
			// ratio — skip, matching the convention that such cuts are
			// not bottlenecks (they carry no edges at all).
			continue
		}
		prefix := 0
		for i := range lats {
			prefix += latCount[i]
			phi := float64(prefix) / s
			if phi < minPhiL[i] {
				minPhiL[i] = phi
				argMask[i] = mask
			}
		}
		if avg := avgSum / s; avg < minAvg {
			minAvg = avg
			avgMask = mask
		}
	}

	phiL := make(map[int]float64, len(lats))
	for i, l := range lats {
		phiL[l] = minPhiL[i]
	}
	phiStar, ellStar := criticalFromPhiL(phiL)
	maskToCut := func(mask uint64) []bool {
		cut := make([]bool, n)
		for u := 0; u < n-1; u++ {
			cut[u] = mask&(1<<uint(u)) != 0
		}
		return cut
	}
	res := Result{
		PhiStar:         phiStar,
		EllStar:         ellStar,
		PhiAvg:          minAvg,
		PhiL:            phiL,
		NonEmptyClasses: countNonEmptyClasses(g),
		MaxLatency:      g.MaxLatency(),
		Exact:           true,
		AvgCut:          maskToCut(avgMask),
	}
	res.CriticalCut = maskToCut(argMask[latIndex[ellStar]])
	return res, nil
}
