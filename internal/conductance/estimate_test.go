package conductance

import (
	"math"
	"testing"

	"gossip/internal/graph"
	"gossip/internal/graphgen"
)

// The estimator's candidate family must find the true bottleneck on
// structured graphs; compare against exhaustive enumeration on small
// instances.
func TestEstimateMatchesExactOnSmallGraphs(t *testing.T) {
	rng := graphgen.NewRand(3)
	er, err := graphgen.ErdosRenyi(14, 0.5, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	graphgen.AssignRandomLatencies(er, 1, 16, rng)
	graphs := map[string]*graph.Graph{
		"dumbbell": graphgen.Dumbbell(5, 20),
		"clique":   graphgen.Clique(10, 3),
		"cycle":    graphgen.Cycle(12, 2),
		"er":       er,
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			exact, err := Exact(g)
			if err != nil {
				t.Fatal(err)
			}
			est, err := Estimate(g, EstimateOptions{Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			// Estimates are min-over-candidate-cuts: they can only
			// overestimate φ. They must be within 3x here (spectral
			// sweeps find these bottlenecks).
			for l, exPhi := range exact.PhiL {
				esPhi := est.PhiL[l]
				if esPhi+1e-12 < exPhi {
					t.Fatalf("φ_%d estimate %v below exact %v", l, esPhi, exPhi)
				}
				if exPhi > 0 && esPhi > 3*exPhi+1e-9 {
					t.Fatalf("φ_%d estimate %v too far above exact %v", l, esPhi, exPhi)
				}
			}
			if est.PhiAvg+1e-12 < exact.PhiAvg {
				t.Fatalf("φavg estimate %v below exact %v", est.PhiAvg, exact.PhiAvg)
			}
		})
	}
}

func TestEstimateDetectsDisconnectedGL(t *testing.T) {
	// Dumbbell: G_1 (bridge removed) is disconnected, so φ_1 = 0 exactly.
	g := graphgen.Dumbbell(6, 30)
	est, err := Estimate(g, EstimateOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if est.PhiL[1] != 0 {
		t.Fatalf("φ_1 = %v, want 0", est.PhiL[1])
	}
	if est.EllStar != 30 {
		t.Fatalf("ℓ* = %d, want 30", est.EllStar)
	}
}

func TestComputeSwitchesToExact(t *testing.T) {
	small := graphgen.Clique(6, 1)
	res, err := Compute(small)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatal("small graph should use exact enumeration")
	}
	big := graphgen.Clique(MaxExactN+10, 1)
	res, err = Compute(big)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Fatal("large graph should use estimation")
	}
	// Clique of unit latencies: φ ≈ 1/2 at the half cut.
	if res.PhiStar < 0.3 || res.PhiStar > 0.7 {
		t.Fatalf("K32 φ* estimate = %v, want ~0.5", res.PhiStar)
	}
}

// The Theorem 10 gadget is designed to have φℓ = Θ(φ); the estimator
// should land within a constant factor.
func TestEstimateTheorem10Gadget(t *testing.T) {
	rng := graphgen.NewRand(21)
	net, err := graphgen.NewTheorem10Network(40, 1, 1600, 0.25, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Estimate(net.Graph, EstimateOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	phi := res.PhiL[1]
	if phi < 0.25/8 || phi > 0.25*4 {
		t.Fatalf("gadget φ_1 estimate = %v, designed Θ(0.25)", phi)
	}
}

// Ring network: estimator should find φℓ within a constant factor of the
// designed α (Lemma 16: φℓ = Θ(α)).
func TestEstimateRingAlpha(t *testing.T) {
	rng := graphgen.NewRand(41)
	r, err := graphgen.NewRingNetwork(8, 4, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Estimate(r.Graph, EstimateOptions{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	alpha := r.Alpha()
	phi := res.PhiL[50]
	if phi < alpha/8 || phi > alpha*8 {
		t.Fatalf("ring φ_ℓ estimate = %v, designed α = %v", phi, alpha)
	}
	if err := res.CheckTheorem5(); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateErrors(t *testing.T) {
	if _, err := Estimate(graphgen.Clique(1, 1), EstimateOptions{}); err == nil {
		// Clique(1) has no edges; either the constructor or Estimate
		// must reject it.
		t.Skip("single node clique trivially rejected elsewhere")
	}
}

func TestSpreadThresholds(t *testing.T) {
	lats := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	got := spreadThresholds(lats, 4)
	if len(got) > 4 {
		t.Fatalf("spreadThresholds returned %d values", len(got))
	}
	if got[0] != 1 || got[len(got)-1] != 10 {
		t.Fatalf("spread must include extremes, got %v", got)
	}
	small := spreadThresholds([]int{3, 5}, 8)
	if len(small) != 2 {
		t.Fatalf("small spread = %v", small)
	}
}

func TestEstimateTheorem5Holds(t *testing.T) {
	rng := graphgen.NewRand(55)
	g, err := graphgen.ErdosRenyi(40, 0.2, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	graphgen.AssignRandomLatencies(g, 1, 64, rng)
	res, err := Estimate(g, EstimateOptions{Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	// Estimated quantities still relate sanely (both sides are min over
	// the same candidate family, so Theorem 5 holds for the family too).
	if err := res.CheckTheorem5(); err != nil {
		t.Fatal(err)
	}
	if math.IsInf(res.PhiAvg, 1) {
		t.Fatal("φavg estimate infinite")
	}
}
