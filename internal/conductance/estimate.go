package conductance

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"gossip/internal/graph"
)

// EstimateOptions tunes the candidate-cut search.
type EstimateOptions struct {
	// Seed drives the spectral power iteration start vectors.
	Seed uint64
	// PowerIterations for the Fiedler-vector approximation (default 150).
	PowerIterations int
	// MaxSpectralLatencies caps how many distinct latency thresholds get
	// their own spectral sweep (default 8; thresholds are spread evenly
	// over the distinct latencies).
	MaxSpectralLatencies int
	// BallSeeds is the number of Dijkstra-ball sweep sources (default 4).
	BallSeeds int
}

func (o EstimateOptions) withDefaults() EstimateOptions {
	if o.PowerIterations == 0 {
		o.PowerIterations = 150
	}
	if o.MaxSpectralLatencies == 0 {
		o.MaxSpectralLatencies = 8
	}
	if o.BallSeeds == 0 {
		o.BallSeeds = 4
	}
	return o
}

// Compute returns exact values for small graphs and candidate-cut upper
// bounds for larger ones.
func Compute(g *graph.Graph) (Result, error) {
	if g.N() <= MaxExactN {
		return Exact(g)
	}
	return Estimate(g, EstimateOptions{Seed: 1})
}

// Estimate evaluates a polynomial family of candidate cuts — spectral
// sweep cuts on each latency-filtered subgraph G_ℓ, Dijkstra-ball sweeps,
// and singletons — and reports the minimum over that family. The results
// are upper bounds on the true φℓ and φavg (the family usually contains
// the bottleneck cut for structured graphs).
func Estimate(g *graph.Graph, opts EstimateOptions) (Result, error) {
	n := g.N()
	if n < 2 {
		return Result{}, fmt.Errorf("conductance: need at least 2 nodes")
	}
	lats := g.DistinctLatencies()
	if len(lats) == 0 {
		return Result{}, fmt.Errorf("conductance: graph has no edges")
	}
	opts = opts.withDefaults()
	rng := rand.New(rand.NewPCG(opts.Seed, opts.Seed*2654435761+1))

	est := newEvaluator(g, lats)

	// Disconnected G_ℓ means φℓ = 0 exactly (a component boundary has no
	// latency-<=ℓ edges crossing it).
	for i, l := range lats {
		comp := componentOf(g.SubgraphMaxLatency(l))
		if !isSingleComponent(comp, n) {
			est.minPhiL[i] = 0
			// That same component cut is also a candidate for φavg and
			// for higher thresholds, and is the witness for φℓ = 0.
			cut := make([]bool, n)
			for u, c := range comp {
				cut[u] = c == comp[0]
			}
			est.argCut[i] = cut
			est.evalCut(cut)
		}
	}

	// Spectral sweeps on a spread of thresholds.
	thresholds := spreadThresholds(lats, opts.MaxSpectralLatencies)
	for _, l := range thresholds {
		sub := g.SubgraphMaxLatency(l)
		order := spectralOrder(sub, opts.PowerIterations, rng)
		est.evalSweep(order)
	}
	// Full-graph spectral sweep (weights ignored) for good measure.
	est.evalSweep(spectralOrder(g, opts.PowerIterations, rng))

	// Dijkstra ball sweeps from random seeds.
	for i := 0; i < opts.BallSeeds; i++ {
		src := rng.IntN(n)
		dist := g.Distances(src)
		order := make([]int, n)
		for u := range order {
			order[u] = u
		}
		sort.Slice(order, func(a, b int) bool { return dist[order[a]] < dist[order[b]] })
		est.evalSweep(order)
	}

	// Singleton cuts.
	single := make([]bool, n)
	for u := 0; u < n; u++ {
		single[u] = true
		est.evalCut(single)
		single[u] = false
	}

	phiL := make(map[int]float64, len(lats))
	for i, l := range lats {
		phiL[l] = est.minPhiL[i]
	}
	phiStar, ellStar := criticalFromPhiL(phiL)
	res := Result{
		PhiStar:         phiStar,
		EllStar:         ellStar,
		PhiAvg:          est.minAvg,
		PhiL:            phiL,
		NonEmptyClasses: countNonEmptyClasses(g),
		MaxLatency:      g.MaxLatency(),
		Exact:           false,
		AvgCut:          est.avgCut,
	}
	res.CriticalCut = est.argCut[est.latIndex[ellStar]]
	return res, nil
}

// evaluator accumulates the running minima over candidate cuts.
type evaluator struct {
	g        *graph.Graph
	lats     []int
	latIndex map[int]int
	deg      []int
	totalVol int
	minPhiL  []float64
	minAvg   float64
	// argCut[i] is a copy of the best cut seen for latency index i;
	// avgCut the best for φavg.
	argCut [][]bool
	avgCut []bool
}

func newEvaluator(g *graph.Graph, lats []int) *evaluator {
	e := &evaluator{
		g:        g,
		lats:     lats,
		latIndex: make(map[int]int, len(lats)),
		deg:      make([]int, g.N()),
		totalVol: 2 * g.M(),
		minPhiL:  make([]float64, len(lats)),
		minAvg:   math.Inf(1),
	}
	for i, l := range lats {
		e.latIndex[l] = i
	}
	for u := 0; u < g.N(); u++ {
		e.deg[u] = g.Degree(u)
	}
	for i := range e.minPhiL {
		e.minPhiL[i] = math.Inf(1)
	}
	e.argCut = make([][]bool, len(lats))
	return e
}

// evalCut scores a single cut (O(m)).
func (e *evaluator) evalCut(inU []bool) {
	volU := 0
	for u, in := range inU {
		if in {
			volU += e.deg[u]
		}
	}
	if volU == 0 || volU == e.totalVol {
		return
	}
	latCount := make([]int, len(e.lats))
	avgSum := 0.0
	e.g.ForEachEdge(func(ed graph.Edge) {
		if inU[ed.U] != inU[ed.V] {
			latCount[e.latIndex[ed.Latency]]++
			avgSum += 1 / math.Pow(2, float64(LatencyClass(ed.Latency)))
		}
	})
	e.apply(latCount, avgSum, volU, inU)
}

// evalSweep scores all n-1 prefix cuts of an ordering incrementally
// (O(m + n·|lats|) total).
func (e *evaluator) evalSweep(order []int) {
	n := e.g.N()
	inU := make([]bool, n)
	latCount := make([]int, len(e.lats))
	classSum := 0.0
	volU := 0
	for k := 0; k < n-1; k++ {
		v := order[k]
		inU[v] = true
		volU += e.deg[v]
		for _, nb := range e.g.Neighbors(v) {
			idx := e.latIndex[nb.Latency]
			delta := 1
			if inU[nb.ID] {
				delta = -1 // edge no longer crosses the cut
			}
			latCount[idx] += delta
			classSum += float64(delta) / math.Pow(2, float64(LatencyClass(nb.Latency)))
		}
		e.apply(latCount, classSum, volU, inU)
	}
}

func (e *evaluator) apply(latCount []int, avgSum float64, volU int, inU []bool) {
	s := float64(min(volU, e.totalVol-volU))
	if s <= 0 {
		return
	}
	var snapshot []bool
	snap := func() []bool {
		if snapshot == nil {
			snapshot = append([]bool(nil), inU...)
		}
		return snapshot
	}
	prefix := 0
	for i := range e.lats {
		prefix += latCount[i]
		if phi := float64(prefix) / s; phi < e.minPhiL[i] {
			e.minPhiL[i] = phi
			e.argCut[i] = snap()
		}
	}
	// Guard tiny negative drift from incremental float updates.
	if avgSum < 0 {
		avgSum = 0
	}
	if avg := avgSum / s; avg < e.minAvg {
		e.minAvg = avg
		e.avgCut = snap()
	}
}

// spectralOrder approximates the Fiedler ordering of g: the coordinates of
// the second eigenvector of the lazy random walk matrix, obtained by power
// iteration with deflation of the stationary component.
func spectralOrder(g *graph.Graph, iters int, rng *rand.Rand) []int {
	n := g.N()
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64() - 0.5
	}
	deg := make([]float64, n)
	totalDeg := 0.0
	for u := 0; u < n; u++ {
		deg[u] = float64(g.Degree(u))
		totalDeg += deg[u]
	}
	next := make([]float64, n)
	for it := 0; it < iters; it++ {
		// Deflate the stationary (degree-weighted constant) direction.
		if totalDeg > 0 {
			dot := 0.0
			for u := 0; u < n; u++ {
				dot += x[u] * deg[u]
			}
			shift := dot / totalDeg
			for u := 0; u < n; u++ {
				x[u] -= shift
			}
		}
		// One lazy walk step: x' = x/2 + (D^-1 A x)/2.
		for u := 0; u < n; u++ {
			sum := 0.0
			for _, nb := range g.Neighbors(u) {
				sum += x[nb.ID]
			}
			if deg[u] > 0 {
				next[u] = x[u]/2 + sum/(2*deg[u])
			} else {
				next[u] = x[u]
			}
		}
		// Normalize to keep magnitudes sane.
		norm := 0.0
		for _, v := range next {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			break
		}
		for u := range next {
			x[u] = next[u] / norm
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return x[order[a]] < x[order[b]] })
	return order
}

// spreadThresholds picks up to k thresholds spread over the distinct
// latencies, always including the smallest and largest.
func spreadThresholds(lats []int, k int) []int {
	if len(lats) <= k {
		return lats
	}
	out := make([]int, 0, k)
	for i := 0; i < k; i++ {
		idx := i * (len(lats) - 1) / (k - 1)
		out = append(out, lats[idx])
	}
	// Dedup (possible with integer division).
	seen := make(map[int]bool)
	uniq := out[:0]
	for _, l := range out {
		if !seen[l] {
			seen[l] = true
			uniq = append(uniq, l)
		}
	}
	return uniq
}

// componentOf labels each node with a component representative.
func componentOf(g *graph.Graph) []int {
	n := g.N()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	for start := 0; start < n; start++ {
		if comp[start] >= 0 {
			continue
		}
		stack := []int{start}
		comp[start] = start
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, nb := range g.Neighbors(u) {
				if comp[nb.ID] < 0 {
					comp[nb.ID] = start
					stack = append(stack, nb.ID)
				}
			}
		}
	}
	return comp
}

func isSingleComponent(comp []int, n int) bool {
	for _, c := range comp {
		if c != comp[0] {
			return false
		}
	}
	return n > 0
}
