// Package conductance implements the paper's weighted-conductance
// machinery: the weight-ℓ conductance φℓ (Definition 1), the critical
// weighted conductance φ* and critical latency ℓ* (Definition 2), the
// latency classes and average weighted conductance φavg (Definitions 3-4),
// and the Theorem 5 relation between them.
//
// Exact values enumerate all cuts and are exponential in n; Estimate
// evaluates a polynomial family of candidate cuts (spectral sweeps, ball
// sweeps, singletons) and returns upper bounds that are exact on the
// structured families used in the experiments.
package conductance

import (
	"fmt"
	"math"
	"sort"

	"gossip/internal/graph"
)

// Result bundles every conductance quantity for one graph.
type Result struct {
	// PhiStar is the critical weighted conductance φ* and EllStar the
	// critical latency ℓ* (Definition 2): φℓ/ℓ is maximal at ℓ = ℓ*.
	PhiStar float64
	EllStar int
	// PhiAvg is the average weighted conductance (Definition 4).
	PhiAvg float64
	// PhiL maps each distinct edge latency ℓ to the weight-ℓ
	// conductance φℓ(G).
	PhiL map[int]float64
	// NonEmptyClasses is L: the number of non-empty latency classes.
	NonEmptyClasses int
	// MaxLatency is ℓmax.
	MaxLatency int
	// Exact records whether the values came from full cut enumeration.
	Exact bool
	// CriticalCut is one side (by membership) of a cut achieving
	// φ_{ℓ*}(G) — the bottleneck the critical conductance describes.
	CriticalCut []bool
	// AvgCut is one side of a cut achieving φavg(G).
	AvgCut []bool
}

// Classes returns ceil(log2(ℓmax)), the number of possible latency classes.
func (r Result) Classes() int { return numClasses(r.MaxLatency) }

// CheckTheorem5 returns an error unless φ*/2ℓ* <= φavg <= L·φ*/ℓ*
// (Theorem 5) holds up to floating-point slack.
func (r Result) CheckTheorem5() error {
	const eps = 1e-9
	lower := r.PhiStar / (2 * float64(r.EllStar))
	upper := float64(r.NonEmptyClasses) * r.PhiStar / float64(r.EllStar)
	if r.PhiAvg < lower-eps {
		return fmt.Errorf("conductance: φavg=%.6g < φ*/2ℓ*=%.6g", r.PhiAvg, lower)
	}
	if r.PhiAvg > upper+eps {
		return fmt.Errorf("conductance: φavg=%.6g > Lφ*/ℓ*=%.6g", r.PhiAvg, upper)
	}
	return nil
}

// LatencyClass returns the 1-based latency class of an edge latency
// (Definition 3): class 1 holds latencies <= 2, class i holds latencies in
// (2^(i-1), 2^i].
func LatencyClass(latency int) int {
	if latency < 1 {
		panic(fmt.Sprintf("conductance: latency %d < 1", latency))
	}
	if latency <= 2 {
		return 1
	}
	c := 1
	bound := 2
	for bound < latency {
		bound *= 2
		c++
	}
	return c
}

// numClasses returns ceil(log2(ℓmax)) with a minimum of 1, matching the
// paper's dlog(ℓmax)e count of possible classes.
func numClasses(maxLatency int) int {
	if maxLatency <= 2 {
		return 1
	}
	return LatencyClass(maxLatency)
}

// Cut describes a 2-partition of the node set by membership of side U.
type Cut struct {
	InU []bool
}

// NewCut builds a cut from the node IDs in U.
func NewCut(n int, u []graph.NodeID) Cut {
	in := make([]bool, n)
	for _, id := range u {
		in[id] = true
	}
	return Cut{InU: in}
}

// valid reports whether both sides are non-empty.
func (c Cut) valid(n int) bool {
	count := 0
	for _, b := range c.InU {
		if b {
			count++
		}
	}
	return count > 0 && count < n
}

// WeightLCutConductance returns φℓ(C) = |Eℓ(C)| / min(Vol(U), Vol(V\U))
// (Definition 1) for a specific cut.
func WeightLCutConductance(g *graph.Graph, c Cut, l int) float64 {
	if !c.valid(g.N()) {
		panic("conductance: cut has an empty side")
	}
	cutEdges := 0
	g.ForEachEdge(func(e graph.Edge) {
		if c.InU[e.U] != c.InU[e.V] && e.Latency <= l {
			cutEdges++
		}
	})
	volU := g.Volume(c.InU)
	volRest := 2*g.M() - volU
	return float64(cutEdges) / float64(min(volU, volRest))
}

// AvgCutConductance returns φavg(C) (Definition 3): the class-weighted
// count of cut edges divided by the smaller volume.
func AvgCutConductance(g *graph.Graph, c Cut) float64 {
	if !c.valid(g.N()) {
		panic("conductance: cut has an empty side")
	}
	sum := 0.0
	g.ForEachEdge(func(e graph.Edge) {
		if c.InU[e.U] != c.InU[e.V] {
			sum += 1 / math.Pow(2, float64(LatencyClass(e.Latency)))
		}
	})
	volU := g.Volume(c.InU)
	volRest := 2*g.M() - volU
	return sum / float64(min(volU, volRest))
}

// criticalFromPhiL picks φ* and ℓ* from the per-latency map by maximizing
// φℓ/ℓ. Sweeping only the distinct edge latencies is lossless: φℓ is a
// step function that changes only at edge latency values, and between
// steps φℓ/ℓ decreases in ℓ, so the maximum is attained at a distinct
// latency value.
func criticalFromPhiL(phiL map[int]float64) (float64, int) {
	bestRatio := math.Inf(-1)
	bestPhi, bestEll := 0.0, 1
	lats := make([]int, 0, len(phiL))
	for l := range phiL {
		lats = append(lats, l)
	}
	sort.Ints(lats)
	for _, l := range lats {
		ratio := phiL[l] / float64(l)
		if ratio > bestRatio {
			bestRatio = ratio
			bestPhi = phiL[l]
			bestEll = l
		}
	}
	return bestPhi, bestEll
}

// countNonEmptyClasses returns L for the graph: the number of latency
// classes containing at least one edge.
func countNonEmptyClasses(g *graph.Graph) int {
	seen := make(map[int]bool)
	g.ForEachEdge(func(e graph.Edge) { seen[LatencyClass(e.Latency)] = true })
	return len(seen)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
