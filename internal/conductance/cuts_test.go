package conductance

import (
	"testing"

	"gossip/internal/graphgen"
)

// The dumbbell's critical cut must separate the two cliques.
func TestExactCriticalCutIsBridgeCut(t *testing.T) {
	g := graphgen.Dumbbell(5, 20)
	res, err := Exact(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.CriticalCut == nil {
		t.Fatal("no critical cut recorded")
	}
	// Verify the recorded cut actually attains φ_{ℓ*}.
	got := WeightLCutConductance(g, Cut{InU: res.CriticalCut}, res.EllStar)
	if diff := got - res.PhiL[res.EllStar]; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("recorded cut has φ = %v, want %v", got, res.PhiL[res.EllStar])
	}
	// All of clique A on one side, clique B on the other.
	side0 := res.CriticalCut[0]
	for u := 1; u < 5; u++ {
		if res.CriticalCut[u] != side0 {
			t.Fatalf("clique A split by critical cut: %v", res.CriticalCut)
		}
	}
	for u := 5; u < 10; u++ {
		if res.CriticalCut[u] == side0 {
			t.Fatalf("clique B not separated: %v", res.CriticalCut)
		}
	}
}

func TestExactAvgCutAttainsPhiAvg(t *testing.T) {
	rng := graphgen.NewRand(19)
	g, err := graphgen.ErdosRenyi(12, 0.5, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	graphgen.AssignRandomLatencies(g, 1, 20, rng)
	res, err := Exact(g)
	if err != nil {
		t.Fatal(err)
	}
	got := AvgCutConductance(g, Cut{InU: res.AvgCut})
	if diff := got - res.PhiAvg; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("recorded avg cut has φavg = %v, want %v", got, res.PhiAvg)
	}
}

// The estimator's recorded cuts must attain its reported values too.
func TestEstimateCutsConsistent(t *testing.T) {
	g := graphgen.Dumbbell(14, 40) // 28 nodes: estimation path
	res, err := Estimate(g, EstimateOptions{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if res.CriticalCut != nil {
		got := WeightLCutConductance(g, Cut{InU: res.CriticalCut}, res.EllStar)
		if diff := got - res.PhiL[res.EllStar]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("estimator critical cut φ = %v, reported %v", got, res.PhiL[res.EllStar])
		}
	}
	if res.AvgCut != nil {
		got := AvgCutConductance(g, Cut{InU: res.AvgCut})
		if diff := got - res.PhiAvg; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("estimator avg cut φavg = %v, reported %v", got, res.PhiAvg)
		}
	}
}

func TestEstimateDisconnectedWitness(t *testing.T) {
	g := graphgen.Dumbbell(13, 50) // estimation path; G_1 disconnected
	res, err := Estimate(g, EstimateOptions{Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if res.PhiL[1] != 0 {
		t.Fatalf("φ_1 = %v", res.PhiL[1])
	}
	if res.EllStar == 1 {
		t.Fatal("ℓ* should not be the zero-conductance class")
	}
}
