// Package spanner implements the directed (2k-1)-spanner construction of
// Section 4.1.2: Baswana-Sen clustering adapted so that every edge added
// to the spanner is oriented away from the node that added it, which keeps
// the maximum out-degree at O(n^(1/k) log n) w.h.p. (Lemma 19) — O(log n)
// for k = ceil(log2 n).
//
// The construction is centralized. The paper runs it as a local
// computation at every node after the ℓ-DTG phases have collected the
// (k+1)-hop neighborhood (Theorem 20); cluster-center coin flips are a
// deterministic function of (iteration, centerID) under a shared seed,
// which is equivalent to each center flipping one coin and broadcasting it
// within the collected neighborhood.
package spanner

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"gossip/internal/graph"
)

// Spanner is the oriented spanner: Out[v] lists v's outgoing spanner
// edges. The undirected spanner is the union of all oriented edges.
type Spanner struct {
	// K is the clustering depth; the undirected stretch is 2K-1.
	K int
	// Out[v] holds v's out-edges with their latencies.
	Out [][]graph.Neighbor
	n   int
}

// Options configures Build.
type Options struct {
	// K is the number of clustering iterations (stretch 2K-1).
	// Default ceil(log2 n).
	K int
	// NHat is the network-size estimate nˆ used for the sampling
	// probability nˆ^(-1/k); the paper only needs n <= nˆ <= poly(n).
	// Default n.
	NHat int
	// Seed drives the shared cluster-sampling coins.
	Seed uint64
	// MaxLatency, when positive, restricts the construction to edges of
	// latency <= MaxLatency (the G_k subgraph used by RR Broadcast).
	MaxLatency int
}

// edgeKey orders edges by (latency, endpoints) — the distinct-weight
// tie-break the paper prescribes ("use the unique node IDs to break ties").
type edgeKey struct {
	lat  int
	u, v graph.NodeID
}

func keyOf(u, v graph.NodeID, lat int) edgeKey {
	if u > v {
		u, v = v, u
	}
	return edgeKey{lat: lat, u: u, v: v}
}

func (a edgeKey) less(b edgeKey) bool {
	if a.lat != b.lat {
		return a.lat < b.lat
	}
	if a.u != b.u {
		return a.u < b.u
	}
	return a.v < b.v
}

// Build runs the oriented Baswana-Sen construction on g.
func Build(g *graph.Graph, opts Options) (*Spanner, error) {
	n := g.N()
	if n < 1 {
		return nil, fmt.Errorf("spanner: empty graph")
	}
	k := opts.K
	if k <= 0 {
		k = log2Ceil(n)
		if k < 1 {
			k = 1
		}
	}
	nHat := opts.NHat
	if nHat <= 0 {
		nHat = n
	}
	if nHat < n {
		return nil, fmt.Errorf("spanner: nHat=%d below n=%d", nHat, n)
	}
	rng := rand.New(rand.NewPCG(opts.Seed, opts.Seed^0xabcdef1234567891))
	sampleP := math.Pow(float64(nHat), -1.0/float64(k))

	sp := &Spanner{K: k, Out: make([][]graph.Neighbor, n), n: n}
	addOut := func(from, to graph.NodeID, lat int) {
		for _, e := range sp.Out[from] {
			if e.ID == to {
				return
			}
		}
		sp.Out[from] = append(sp.Out[from], graph.Neighbor{ID: to, Latency: lat})
	}

	// alive[u] maps neighbor -> latency for edges still under
	// consideration; both endpoint entries are removed together.
	alive := make([]map[graph.NodeID]int, n)
	for u := 0; u < n; u++ {
		alive[u] = make(map[graph.NodeID]int)
	}
	g.ForEachEdge(func(e graph.Edge) {
		if opts.MaxLatency > 0 && e.Latency > opts.MaxLatency {
			return
		}
		alive[e.U][e.V] = e.Latency
		alive[e.V][e.U] = e.Latency
	})
	// cluster[v] is the center of v's current cluster, or -1 once v has
	// fallen out of the clustering (Rule 1 fired for v).
	cluster := make([]graph.NodeID, n)
	for v := range cluster {
		cluster[v] = v // iteration 0: every node is its own center
	}

	for it := 1; it < k; it++ {
		// Sample the surviving centers. A deterministic pass in center
		// order keeps runs reproducible.
		sampled := make(map[graph.NodeID]bool)
		centers := activeCenters(cluster)
		for _, c := range centers {
			if rng.Float64() < sampleP {
				sampled[c] = true
			}
		}
		next := make([]graph.NodeID, n)
		for v := range next {
			next[v] = -1
		}
		// Members of sampled clusters stay put.
		for v := 0; v < n; v++ {
			if cluster[v] >= 0 && sampled[cluster[v]] {
				next[v] = cluster[v]
			}
		}
		for v := 0; v < n; v++ {
			if cluster[v] < 0 || next[v] >= 0 {
				continue // out of the clustering, or in a sampled cluster
			}
			// Group v's alive edges by the neighbor's current cluster.
			best := bestEdgePerCluster(v, alive[v], cluster)
			// Q: adjacent *sampled* clusters.
			var bestSampled *clusterEdge
			for i := range best {
				ce := &best[i]
				if sampled[ce.center] {
					if bestSampled == nil || ce.key.less(bestSampled.key) {
						bestSampled = ce
					}
				}
			}
			if bestSampled == nil {
				// Rule 1: no adjacent sampled cluster. Keep the least
				// weight edge to every adjacent cluster, discard the
				// rest, and leave the clustering.
				for _, ce := range best {
					addOut(v, ce.to, ce.lat)
					discardClusterEdges(v, alive, cluster, ce.center)
				}
				next[v] = -1
			} else {
				// Rule 2: join the closest sampled cluster via e_v, and
				// keep one edge to every adjacent cluster strictly
				// cheaper than e_v; discard all edges into the
				// processed clusters.
				addOut(v, bestSampled.to, bestSampled.lat)
				next[v] = bestSampled.center
				for _, ce := range best {
					if ce.center == bestSampled.center {
						continue
					}
					if ce.key.less(bestSampled.key) {
						addOut(v, ce.to, ce.lat)
						discardClusterEdges(v, alive, cluster, ce.center)
					}
				}
				// All edges into the joined cluster leave consideration:
				// e_v is already in the spanner and future iterations
				// only look at inter-cluster edges.
				discardClusterEdges(v, alive, cluster, bestSampled.center)
			}
		}
		cluster = next
	}

	// Final iteration: every node keeps its least weight edge to each
	// adjacent surviving cluster.
	for v := 0; v < n; v++ {
		for _, ce := range bestEdgePerCluster(v, alive[v], cluster) {
			addOut(v, ce.to, ce.lat)
		}
	}
	for v := range sp.Out {
		sort.Slice(sp.Out[v], func(i, j int) bool { return sp.Out[v][i].ID < sp.Out[v][j].ID })
	}
	return sp, nil
}

// clusterEdge is the cheapest alive edge from a node into one cluster.
type clusterEdge struct {
	center graph.NodeID
	to     graph.NodeID
	lat    int
	key    edgeKey
}

// bestEdgePerCluster returns, for every cluster adjacent to v over alive
// edges, the minimum-key edge into it, in deterministic center order.
func bestEdgePerCluster(v graph.NodeID, adj map[graph.NodeID]int, cluster []graph.NodeID) []clusterEdge {
	best := make(map[graph.NodeID]clusterEdge)
	for u, lat := range adj {
		c := cluster[u]
		if c < 0 {
			continue // neighbor has left the clustering
		}
		k := keyOf(v, u, lat)
		if cur, ok := best[c]; !ok || k.less(cur.key) {
			best[c] = clusterEdge{center: c, to: u, lat: lat, key: k}
		}
	}
	out := make([]clusterEdge, 0, len(best))
	for _, ce := range best {
		out = append(out, ce)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].center < out[j].center })
	return out
}

// discardClusterEdges removes every alive edge from v into cluster c.
func discardClusterEdges(v graph.NodeID, alive []map[graph.NodeID]int, cluster []graph.NodeID, c graph.NodeID) {
	for u := range alive[v] {
		if cluster[u] == c {
			delete(alive[v], u)
			delete(alive[u], v)
		}
	}
}

// activeCenters returns the distinct non-negative cluster centers.
func activeCenters(cluster []graph.NodeID) []graph.NodeID {
	seen := make(map[graph.NodeID]bool)
	var out []graph.NodeID
	for _, c := range cluster {
		if c >= 0 && !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	sort.Ints(out)
	return out
}

// NumEdges returns the number of distinct undirected spanner edges.
func (s *Spanner) NumEdges() int {
	seen := make(map[[2]graph.NodeID]bool)
	for u, outs := range s.Out {
		for _, e := range outs {
			a, b := u, e.ID
			if a > b {
				a, b = b, a
			}
			seen[[2]graph.NodeID{a, b}] = true
		}
	}
	return len(seen)
}

// MaxOutDegree returns the maximum out-degree over all nodes.
func (s *Spanner) MaxOutDegree() int {
	max := 0
	for _, outs := range s.Out {
		if len(outs) > max {
			max = len(outs)
		}
	}
	return max
}

// AsGraph returns the undirected spanner as a graph on the same node set.
func (s *Spanner) AsGraph() *graph.Graph {
	g := graph.New(s.n)
	for u, outs := range s.Out {
		for _, e := range outs {
			if !g.HasEdge(u, e.ID) {
				g.MustAddEdge(u, e.ID, e.Latency)
			}
		}
	}
	return g
}

// Stretch samples up to pairs node pairs and returns the maximum observed
// ratio spanner-distance / graph-distance (both weighted). A correct
// (2k-1)-spanner never exceeds 2K-1.
func (s *Spanner) Stretch(g *graph.Graph, pairs int, rng *rand.Rand) float64 {
	sg := s.AsGraph()
	worst := 1.0
	for i := 0; i < pairs; i++ {
		u := rng.IntN(g.N())
		dg := g.Distances(u)
		ds := sg.Distances(u)
		for v := 0; v < g.N(); v++ {
			if v == u || dg[v] <= 0 || dg[v] >= graph.Infinity {
				continue
			}
			if ds[v] >= graph.Infinity {
				return math.Inf(1)
			}
			if r := float64(ds[v]) / float64(dg[v]); r > worst {
				worst = r
			}
		}
	}
	return worst
}

func log2Ceil(x int) int {
	k, v := 0, 1
	for v < x {
		v <<= 1
		k++
	}
	return k
}
