package spanner

import (
	"math"
	"testing"

	"gossip/internal/graph"
	"gossip/internal/graphgen"
)

func TestBuildSmallClique(t *testing.T) {
	g := graphgen.Clique(8, 1)
	sp, err := Build(g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sp.K != 3 {
		t.Fatalf("K = %d, want ceil(log2 8) = 3", sp.K)
	}
	if !sp.AsGraph().Connected() {
		t.Fatal("spanner disconnected")
	}
}

func TestStretchBoundHolds(t *testing.T) {
	rng := graphgen.NewRand(5)
	cases := map[string]*graph.Graph{
		"clique": graphgen.Clique(32, 2),
		"grid":   graphgen.Grid(6, 6, 1),
		"cycle":  graphgen.Cycle(40, 3),
		"star":   graphgen.Star(30, 2),
		"weighted": func() *graph.Graph {
			g, err := graphgen.ErdosRenyi(40, 0.25, 1, rng)
			if err != nil {
				t.Fatal(err)
			}
			graphgen.AssignRandomLatencies(g, 1, 20, rng)
			return g
		}(),
	}
	for name, g := range cases {
		t.Run(name, func(t *testing.T) {
			sp, err := Build(g, Options{Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			bound := float64(2*sp.K - 1)
			got := sp.Stretch(g, 10, graphgen.NewRand(9))
			if math.IsInf(got, 1) {
				t.Fatal("spanner disconnected")
			}
			if got > bound+1e-9 {
				t.Fatalf("stretch %v exceeds 2k-1 = %v", got, bound)
			}
		})
	}
}

func TestK1SpannerIsWholeGraph(t *testing.T) {
	g := graphgen.Clique(6, 1)
	sp, err := Build(g, Options{K: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sp.NumEdges() != g.M() {
		t.Fatalf("k=1 spanner has %d edges, want all %d", sp.NumEdges(), g.M())
	}
	if got := sp.Stretch(g, 5, graphgen.NewRand(1)); got != 1 {
		t.Fatalf("k=1 stretch = %v, want 1", got)
	}
}

func TestSpannerSizeSubquadratic(t *testing.T) {
	n := 64
	g := graphgen.Clique(n, 1)
	sp, err := Build(g, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	full := g.M()
	if sp.NumEdges() >= full/2 {
		t.Fatalf("spanner kept %d of %d clique edges; expected strong sparsification", sp.NumEdges(), full)
	}
	// Lemma 19: out-degree O(n^(1/k) log n) — generous constant check.
	if sp.MaxOutDegree() > 8*int(math.Log2(float64(n)))+16 {
		t.Fatalf("max out-degree %d too large", sp.MaxOutDegree())
	}
}

func TestMaxLatencyFilter(t *testing.T) {
	// Dumbbell with a slow bridge: building with MaxLatency below the
	// bridge must exclude it (yielding a disconnected spanner — exactly
	// the subgraph semantics RR Broadcast wants).
	g := graphgen.Dumbbell(5, 100)
	sp, err := Build(g, Options{Seed: 13, MaxLatency: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range sp.Out[0] {
		if e.ID == 5 {
			t.Fatal("filtered bridge edge present in spanner")
		}
	}
	if sp.AsGraph().Connected() {
		t.Fatal("spanner connected despite bridge exclusion")
	}
}

func TestBuildErrors(t *testing.T) {
	g := graphgen.Clique(4, 1)
	if _, err := Build(g, Options{NHat: 2}); err == nil {
		t.Fatal("nHat < n should error")
	}
}

func TestNHatEstimate(t *testing.T) {
	g := graphgen.Clique(16, 1)
	sp, err := Build(g, Options{NHat: 256, Seed: 17}) // nˆ = n²
	if err != nil {
		t.Fatal(err)
	}
	bound := float64(2*sp.K - 1)
	if got := sp.Stretch(g, 8, graphgen.NewRand(3)); got > bound {
		t.Fatalf("stretch %v exceeds bound %v with nˆ=n²", got, bound)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	g := graphgen.Grid(5, 5, 1)
	a, err := Build(g, Options{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(g, Options{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() || a.MaxOutDegree() != b.MaxOutDegree() {
		t.Fatal("same-seed builds differ")
	}
	for v := range a.Out {
		if len(a.Out[v]) != len(b.Out[v]) {
			t.Fatalf("node %d out-degree differs", v)
		}
	}
}

func TestOrientationCoversAllEdges(t *testing.T) {
	g := graphgen.Grid(4, 4, 1)
	sp, err := Build(g, Options{Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	// Every oriented edge must exist in the original graph with the
	// same latency.
	for u, outs := range sp.Out {
		for _, e := range outs {
			l, ok := g.Latency(u, e.ID)
			if !ok {
				t.Fatalf("spanner edge (%d,%d) not in graph", u, e.ID)
			}
			if l != e.Latency {
				t.Fatalf("spanner edge (%d,%d) latency %d, graph has %d", u, e.ID, e.Latency, l)
			}
		}
	}
}
