package server

import (
	"fmt"
	"io"
	"sync/atomic"
)

// metrics are the service counters exposed at /metrics in the Prometheus
// text exposition format (hand-rendered; the repo takes no dependencies).
type metrics struct {
	inflight  atomic.Int64 // requests between accept and last byte
	queued    atomic.Int64 // jobs waiting for an execution slot
	running   atomic.Int64 // jobs holding a slot
	completed atomic.Int64
	failed    atomic.Int64 // timeouts and deterministic job errors
	hits      atomic.Int64 // cache + coalesced replays
	misses    atomic.Int64 // executions
	storeHits atomic.Int64 // lookups served by promoting a disk-store body
	sweeps    atomic.Int64 // sweep requests that executed (sweep-level misses)
	estimates atomic.Int64 // estimate requests that executed (estimate-level misses)
	rounds    atomic.Int64 // simulated rounds, summed over completed jobs

	shardJobs     atomic.Int64 // sharded jobs this process coordinated
	shardSessions atomic.Int64 // worker shard sessions this process served
	shardFailures atomic.Int64 // shard sessions or coordinated jobs that failed
	forwarded     atomic.Int64 // requests forwarded to their cache-key owner
	forwardServed atomic.Int64 // forwarded requests this owner served
	forwardFailed atomic.Int64 // forwards that fell back to local execution
}

// Snapshot is a point-in-time copy of the service counters, used by
// tests and the self-check report.
type Snapshot struct {
	InFlight, Queued, Running int64
	Completed, Failed         int64
	CacheHits, CacheMisses    int64
	StoreHits                 int64
	SweepsExecuted            int64
	EstimatesExecuted         int64
	RoundsSimulated           int64
	ShardJobs                 int64
	ShardSessions             int64
	ShardFailures             int64
	Forwarded                 int64
	ForwardServed             int64
	ForwardFailed             int64
	CacheEntries              int
	PoolSize                  int
}

// Metrics returns a consistent-enough snapshot (each counter is
// individually atomic).
func (s *Server) Metrics() Snapshot {
	return Snapshot{
		InFlight:          s.met.inflight.Load(),
		Queued:            s.met.queued.Load(),
		Running:           s.met.running.Load(),
		Completed:         s.met.completed.Load(),
		Failed:            s.met.failed.Load(),
		CacheHits:         s.met.hits.Load(),
		CacheMisses:       s.met.misses.Load(),
		StoreHits:         s.met.storeHits.Load(),
		SweepsExecuted:    s.met.sweeps.Load(),
		EstimatesExecuted: s.met.estimates.Load(),
		RoundsSimulated:   s.met.rounds.Load(),
		ShardJobs:         s.met.shardJobs.Load(),
		ShardSessions:     s.met.shardSessions.Load(),
		ShardFailures:     s.met.shardFailures.Load(),
		Forwarded:         s.met.forwarded.Load(),
		ForwardServed:     s.met.forwardServed.Load(),
		ForwardFailed:     s.met.forwardFailed.Load(),
		CacheEntries:      s.cache.len(),
		PoolSize:          s.pool.Size(),
	}
}

func (m *metrics) render(w io.Writer, cacheEntries, poolSize int) {
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge("gossipd_requests_inflight", "simulation requests currently being served", m.inflight.Load())
	gauge("gossipd_jobs_queued", "jobs waiting for an execution slot", m.queued.Load())
	gauge("gossipd_jobs_running", "jobs holding an execution slot", m.running.Load())
	counter("gossipd_jobs_completed_total", "jobs that produced a result event", m.completed.Load())
	counter("gossipd_jobs_failed_total", "jobs that produced an error event", m.failed.Load())
	counter("gossipd_cache_hits_total", "responses replayed from the request cache or a coalesced flight", m.hits.Load())
	counter("gossipd_cache_misses_total", "responses computed by executing the job", m.misses.Load())
	counter("gossipd_store_hits_total", "lookups served from the disk result store", m.storeHits.Load())
	counter("gossipd_sweeps_executed_total", "sweep requests executed rather than replayed", m.sweeps.Load())
	counter("gossipd_estimates_executed_total", "estimate requests executed rather than replayed", m.estimates.Load())
	counter("gossipd_rounds_simulated_total", "simulated rounds summed over completed jobs", m.rounds.Load())
	counter("gossipd_shard_jobs_total", "sharded jobs coordinated by this process", m.shardJobs.Load())
	counter("gossipd_shard_sessions_total", "worker shard sessions served by this process", m.shardSessions.Load())
	counter("gossipd_shard_failures_total", "failed shard sessions and coordinated jobs", m.shardFailures.Load())
	counter("gossipd_cache_forwarded_total", "requests forwarded to their cache-key owner", m.forwarded.Load())
	counter("gossipd_cache_forward_served_total", "forwarded requests served by this owner", m.forwardServed.Load())
	counter("gossipd_cache_forward_failures_total", "forwards that fell back to local execution", m.forwardFailed.Load())
	gauge("gossipd_cache_entries", "request cache occupancy", int64(cacheEntries))
	gauge("gossipd_pool_slots", "execution pool size", int64(poolSize))
}
