package server

import (
	"fmt"
	"io"
	"sync/atomic"
)

// metrics are the service counters exposed at /metrics in the Prometheus
// text exposition format (hand-rendered; the repo takes no dependencies).
type metrics struct {
	inflight  atomic.Int64 // requests between accept and last byte
	queued    atomic.Int64 // jobs waiting for an execution slot
	running   atomic.Int64 // jobs holding a slot
	completed atomic.Int64
	failed    atomic.Int64 // timeouts and deterministic job errors
	hits      atomic.Int64 // cache + coalesced replays
	misses    atomic.Int64 // executions
	storeHits atomic.Int64 // lookups served by promoting a disk-store body
	sweeps    atomic.Int64 // sweep requests that executed (sweep-level misses)
	rounds    atomic.Int64 // simulated rounds, summed over completed jobs
}

// Snapshot is a point-in-time copy of the service counters, used by
// tests and the self-check report.
type Snapshot struct {
	InFlight, Queued, Running int64
	Completed, Failed         int64
	CacheHits, CacheMisses    int64
	StoreHits                 int64
	SweepsExecuted            int64
	RoundsSimulated           int64
	CacheEntries              int
	PoolSize                  int
}

// Metrics returns a consistent-enough snapshot (each counter is
// individually atomic).
func (s *Server) Metrics() Snapshot {
	return Snapshot{
		InFlight:        s.met.inflight.Load(),
		Queued:          s.met.queued.Load(),
		Running:         s.met.running.Load(),
		Completed:       s.met.completed.Load(),
		Failed:          s.met.failed.Load(),
		CacheHits:       s.met.hits.Load(),
		CacheMisses:     s.met.misses.Load(),
		StoreHits:       s.met.storeHits.Load(),
		SweepsExecuted:  s.met.sweeps.Load(),
		RoundsSimulated: s.met.rounds.Load(),
		CacheEntries:    s.cache.len(),
		PoolSize:        s.pool.Size(),
	}
}

func (m *metrics) render(w io.Writer, cacheEntries, poolSize int) {
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge("gossipd_requests_inflight", "simulation requests currently being served", m.inflight.Load())
	gauge("gossipd_jobs_queued", "jobs waiting for an execution slot", m.queued.Load())
	gauge("gossipd_jobs_running", "jobs holding an execution slot", m.running.Load())
	counter("gossipd_jobs_completed_total", "jobs that produced a result event", m.completed.Load())
	counter("gossipd_jobs_failed_total", "jobs that produced an error event", m.failed.Load())
	counter("gossipd_cache_hits_total", "responses replayed from the request cache or a coalesced flight", m.hits.Load())
	counter("gossipd_cache_misses_total", "responses computed by executing the job", m.misses.Load())
	counter("gossipd_store_hits_total", "lookups served from the disk result store", m.storeHits.Load())
	counter("gossipd_sweeps_executed_total", "sweep requests executed rather than replayed", m.sweeps.Load())
	counter("gossipd_rounds_simulated_total", "simulated rounds summed over completed jobs", m.rounds.Load())
	gauge("gossipd_cache_entries", "request cache occupancy", int64(cacheEntries))
	gauge("gossipd_pool_slots", "execution pool size", int64(poolSize))
}
