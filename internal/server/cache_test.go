package server

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"gossip/internal/gossip"
	"gossip/internal/server/api"
)

func TestLRUEvictsColdEnd(t *testing.T) {
	c := newLRU(2)
	c.put("a", []byte("A"))
	c.put("b", []byte("B"))
	if _, ok := c.get("a"); !ok { // refresh a: b is now coldest
		t.Fatal("a missing")
	}
	c.put("c", []byte("C"))
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted (coldest)")
	}
	if v, ok := c.get("a"); !ok || !bytes.Equal(v, []byte("A")) {
		t.Fatal("a lost")
	}
	if v, ok := c.get("c"); !ok || !bytes.Equal(v, []byte("C")) {
		t.Fatal("c lost")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

func TestLRUPutRefreshesExisting(t *testing.T) {
	c := newLRU(8)
	c.put("k", []byte("v1"))
	c.put("k", []byte("v2"))
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1", c.len())
	}
	if v, _ := c.get("k"); !bytes.Equal(v, []byte("v2")) {
		t.Fatalf("get = %q, want v2", v)
	}
}

func TestLRUZeroCapacityStoresNothing(t *testing.T) {
	c := newLRU(0)
	c.put("k", []byte("v"))
	if _, ok := c.get("k"); ok || c.len() != 0 {
		t.Fatal("zero-capacity cache stored an entry")
	}
}

// bodyProgress parses every progress event out of a rendered NDJSON
// body, failing the test on anything malformed.
func bodyProgress(t *testing.T, body []byte) []api.Progress {
	t.Helper()
	var pts []api.Progress
	for _, line := range bytes.Split(body, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var ev api.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("unmarshal %q: %v", line, err)
		}
		if ev.Event != "progress" {
			continue
		}
		if ev.SchemaVersion != SchemaVersion {
			t.Fatalf("progress line badly stamped: %s", line)
		}
		pts = append(pts, api.Progress{SchemaVersion: ev.SchemaVersion, Event: ev.Event, Round: ev.Round, Informed: ev.Informed})
	}
	return pts
}

// TestResultLinesCurve pins the informed-curve derivation in a rendered
// body: cumulative counts, change-points only, full resolution.
func TestResultLinesCurve(t *testing.T) {
	res := gossip.DriverResult{
		// rounds: node0@0, node1@2, node2@2, node3@5, node4 never
		InformedAt: []int{0, 2, 2, 5, -1},
	}
	pts := bodyProgress(t, resultLines(res))
	want := []struct{ round, informed int }{{0, 1}, {2, 3}, {5, 4}}
	if len(pts) != len(want) {
		t.Fatalf("points = %+v, want %d entries", pts, len(want))
	}
	for i, w := range want {
		if pts[i].Round != w.round || pts[i].Informed != w.informed {
			t.Fatalf("point %d = %+v, want %+v", i, pts[i], w)
		}
	}
}

// TestSampleStreamCurve pins serve-time sampling: a full-resolution
// body is evenly sampled to progress_points lines with the first and
// last change points always kept, and non-progress lines untouched.
func TestSampleStreamCurve(t *testing.T) {
	informedAt := make([]int, 500)
	for i := range informedAt {
		informedAt[i] = i // a change point every round
	}
	body := resultLines(gossip.DriverResult{InformedAt: informedAt})
	if got := len(bodyProgress(t, body)); got != 500 {
		t.Fatalf("full-resolution body has %d points, want 500", got)
	}
	pts := bodyProgress(t, sampleStream(body, 32))
	if len(pts) != 32 {
		t.Fatalf("sampled to %d points, want 32", len(pts))
	}
	if pts[0].Round != 0 || pts[0].Informed != 1 {
		t.Fatalf("first point %+v, want round 0 informed 1", pts[0])
	}
	last := pts[len(pts)-1]
	if last.Round != 499 || last.Informed != 500 {
		t.Fatalf("last point %+v, want round 499 informed 500", last)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Round <= pts[i-1].Round || pts[i].Informed < pts[i-1].Informed {
			t.Fatalf("sampled curve not monotone at %d: %+v -> %+v", i, pts[i-1], pts[i])
		}
	}
	// The result terminator survives sampling.
	var lastEv api.Event
	lines := bytes.Split(bytes.TrimSuffix(sampleStream(body, 32), []byte("\n")), []byte("\n"))
	if err := json.Unmarshal(lines[len(lines)-1], &lastEv); err != nil || lastEv.Event != "result" {
		t.Fatalf("sampled body terminator: %v / %+v", err, lastEv)
	}
	// A body that already fits is returned unchanged — the same backing
	// array, not a copy.
	if small := sampleStream(body, 4096); &small[0] != &body[0] {
		t.Fatal("sampleStream copied a body that needed no sampling")
	}
}

func TestResultLinesEmptyCurve(t *testing.T) {
	if pts := bodyProgress(t, resultLines(gossip.DriverResult{})); pts != nil {
		t.Fatalf("nil InformedAt should derive no curve, got %+v", pts)
	}
	if pts := bodyProgress(t, resultLines(gossip.DriverResult{InformedAt: []int{-1, -1}})); pts != nil {
		t.Fatalf("never-informed curve should be empty, got %+v", pts)
	}
}

// TestFlightCoalesce exercises the join/resolve protocol directly: one
// leader, many followers, everyone observes the published body.
func TestFlightCoalesce(t *testing.T) {
	s := New(Config{})
	f, leader := s.join("k")
	if !leader {
		t.Fatal("first join must lead")
	}
	for i := 0; i < 3; i++ {
		if _, again := s.join("k"); again {
			t.Fatal("second join must follow")
		}
	}
	s.resolve("k", f, []byte("body"))
	<-f.done
	if !bytes.Equal(f.body, []byte("body")) {
		t.Fatalf("follower saw %q", f.body)
	}
	// the key is free again after resolve
	f2, leader := s.join("k")
	if !leader {
		t.Fatal("post-resolve join must lead")
	}
	s.resolve("k", f2, nil)
}

// TestRequestKeyStability pins the request-key derivation: documented in
// the README as stable across releases within a schema version.
func TestRequestKeyStability(t *testing.T) {
	can := canonical{Driver: "push-pull", Graph: GraphSpec{Family: "dumbbell", N: 8, Latency: 12}, Seed: 3}
	k1, k2 := requestKey(can), requestKey(can)
	if k1 != k2 || len(k1) != 32 {
		t.Fatalf("keys %q / %q", k1, k2)
	}
	can.Seed = 4
	if requestKey(can) == k1 {
		t.Fatal("seed change did not change the key")
	}
}

// TestLRUEvictionOrderUnderCoalescingAtCapacity: with the cache at
// capacity and a flight in progress on a new key, follower traffic that
// replays an old entry keeps it hot — so when the flight publishes, the
// eviction lands on the true cold end, not on the refreshed entry. This
// is the cross-layer interaction (flight table × LRU × publish order)
// that the single-layer tests above cannot see.
func TestLRUEvictionOrderUnderCoalescingAtCapacity(t *testing.T) {
	s := New(Config{CacheSize: 2})
	// Fill to capacity through the leader path — publish then resolve,
	// the exact runLeader order. Recency after this: [b, a].
	for _, k := range []string{"a", "b"} {
		f, leader := s.join(k)
		if !leader {
			t.Fatalf("first join of %q must lead", k)
		}
		s.publish(k, []byte(k))
		s.resolve(k, f, []byte(k))
	}

	fc, leader := s.join("c")
	if !leader {
		t.Fatal("join of in-flight key c must lead")
	}
	const followers = 8
	var joined, done sync.WaitGroup
	joined.Add(followers)
	done.Add(followers)
	for i := 0; i < followers; i++ {
		go func() {
			defer done.Done()
			// Each follower replays the cold entry "a" (refreshing its
			// recency) and then coalesces onto the live flight for "c".
			if body, ok := s.lookup("a"); !ok || !bytes.Equal(body, []byte("a")) {
				t.Errorf("entry a unavailable mid-flight: ok=%v body=%q", ok, body)
			}
			f, lead := s.join("c")
			joined.Done()
			if lead {
				t.Error("follower led a live flight")
				return
			}
			<-f.done
			if !bytes.Equal(f.body, []byte("c")) {
				t.Errorf("follower saw %q, want c's body", f.body)
			}
		}()
	}
	joined.Wait() // every follower refreshed "a" and holds the flight
	s.publish("c", []byte("c"))
	s.resolve("c", fc, []byte("c"))
	done.Wait()

	// "a" was refreshed by the followers while "c" was in flight, so the
	// publish must have evicted "b" — the cold end at publish time, not
	// at fill time.
	if _, ok := s.cache.get("b"); ok {
		t.Fatal("b survived eviction despite being the cold end")
	}
	for _, k := range []string{"a", "c"} {
		if body, ok := s.cache.get(k); !ok || !bytes.Equal(body, []byte(k)) {
			t.Fatalf("entry %q lost after eviction: ok=%v body=%q", k, ok, body)
		}
	}
	if s.cache.len() != 2 {
		t.Fatalf("len = %d, want capacity 2", s.cache.len())
	}
	s.mu.Lock()
	live := len(s.inflight)
	s.mu.Unlock()
	if live != 0 {
		t.Fatalf("%d flights leaked", live)
	}

	// Stress the same interaction: joins, resolves, evictions and
	// replays racing over more keys than capacity must never tear a body
	// or overflow the cache (run under -race in CI).
	keys := []string{"k0", "k1", "k2", "k3", "k4"}
	var sg sync.WaitGroup
	for w := 0; w < 4; w++ {
		sg.Add(1)
		go func(w int) {
			defer sg.Done()
			for i := 0; i < 200; i++ {
				k := keys[(i+w)%len(keys)]
				if body, ok := s.lookup(k); ok {
					if !bytes.Equal(body, []byte(k)) {
						t.Errorf("torn body for %q: %q", k, body)
					}
					continue
				}
				f, lead := s.join(k)
				if lead {
					s.publish(k, []byte(k))
					s.resolve(k, f, []byte(k))
					continue
				}
				<-f.done
				if f.body != nil && !bytes.Equal(f.body, []byte(k)) {
					t.Errorf("coalesced body for %q: %q", k, f.body)
				}
			}
		}(w)
	}
	sg.Wait()
	if s.cache.len() > 2 {
		t.Fatalf("cache over capacity: %d", s.cache.len())
	}
}
