// Package server is gossipd's HTTP service layer: it turns the one-shot
// simulation substrate (driver registry + engine + adversity) into a
// long-running service that accepts parameterized simulation jobs,
// executes them on a bounded worker pool (runner.Pool), streams results
// back as NDJSON, and memoizes completed deterministic jobs in a
// request-keyed LRU cache.
//
// Determinism is the contract: a request's canonical form (driver, graph
// spec, seed, horizon, fault schedule, driver options — not workers, not
// timeout) fully determines the response body, byte for byte, whether
// the job is computed cold, replayed from cache, coalesced onto a
// concurrent identical request, or executed by a server with a different
// pool size. Cache status travels in the X-Gossipd-Cache header, never
// in the body.
//
// Lifecycle: Drain() stops admission (new and queued jobs get 503) while
// jobs already holding an execution slot run to completion — the
// graceful-shutdown half that pairs with http.Server.Shutdown.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"gossip/internal/cluster"
	"gossip/internal/gossip"
	"gossip/internal/graph"
	"gossip/internal/graphgen"
	"gossip/internal/runner"
	"gossip/internal/server/api"
	"gossip/internal/transport"
)

// Config tunes one Server. The zero value is production-serviceable.
type Config struct {
	// Pool is the number of jobs executed concurrently (<=0: GOMAXPROCS).
	// Queued jobs wait; they are rejected only by drain or client
	// cancellation, never by queue depth.
	Pool int
	// CacheSize is the completed-job LRU capacity in entries
	// (0: 1024; negative: caching disabled — every request executes).
	CacheSize int
	// StoreDir, when set, adds a persistent tier under the LRU: completed
	// bodies are written through to a content-addressed directory
	// (<dir>/<key[:2]>/<key>.ndjson) and survive restarts; LRU misses
	// fall through to disk and promote. Disabling the cache (negative
	// CacheSize) disables the disk tier too. The directory should exist
	// and be writable; open failures degrade to no persistent tier.
	StoreDir string
	// MaxN caps the graph size (<=0: 1<<17) — checked against the node
	// count the family builds (dumbbell 2n, ring layers·n, grid side²),
	// not just the raw n parameter.
	MaxN int
	// MaxWorkers caps the per-job intra-round shard count (<=0: 64).
	MaxWorkers int
	// MaxRoundsCap caps the requested horizon (<=0: 1<<22).
	MaxRoundsCap int
	// DefaultTimeout bounds job execution when the request does not
	// (<=0: 60s); MaxTimeout clamps what a request may ask for
	// (<=0: 5m). Queue wait is not counted.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration

	// Peers is the full fleet membership (host:port, this process
	// included) and Advertise is this process's own entry. Setting both
	// (with at least 2 peers) enables the fleet features: the
	// consistent-hash partitioned cache (requests are forwarded to their
	// key's owner) and distributed execution (this process can
	// coordinate sharded jobs across the other peers and serve worker
	// shard sessions itself). Every fleet member must be started with
	// the identical Peers list.
	Peers     []string
	Advertise string

	// gate, when set (tests only), is called on the execution goroutine
	// before the job runs — a seam for holding a job mid-flight to
	// exercise drain and timeout behavior deterministically.
	gate func(key string)
}

func (c Config) withDefaults() Config {
	if c.Pool <= 0 {
		c.Pool = runtime.GOMAXPROCS(0)
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.MaxN <= 0 {
		c.MaxN = 1 << 17
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = 64
	}
	if c.MaxRoundsCap <= 0 {
		c.MaxRoundsCap = 1 << 22
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	return c
}

// Server is the gossipd service state. Create with New; serve via
// Handler.
type Server struct {
	cfg      Config
	pool     *runner.Pool
	cache    *lruCache
	store    *diskStore // nil: no persistent tier
	met      metrics
	mu       sync.Mutex
	inflight map[string]*flight

	// ring partitions the request-key space across Peers; nil outside a
	// fleet. fleet is the tuned intra-fleet HTTP client.
	ring  *cluster.Ring
	fleet *http.Client

	drainCtx context.Context
	drain    context.CancelFunc
}

// New builds a Server from cfg (zero value fine).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		pool:     runner.NewPool(cfg.Pool),
		cache:    newLRU(cfg.CacheSize),
		inflight: make(map[string]*flight),
		drainCtx: ctx,
		drain:    cancel,
	}
	if cfg.StoreDir != "" && cfg.CacheSize >= 0 {
		if st, err := newDiskStore(cfg.StoreDir); err == nil {
			s.store = st
		}
	}
	if len(cfg.Peers) >= 2 && cfg.Advertise != "" {
		if ring, err := cluster.NewRing(cfg.Peers); err == nil {
			s.ring = ring
			s.fleet = &http.Client{Transport: fleetTransport()}
		}
	}
	return s
}

// lookup consults the cache tiers in order — in-memory LRU, then the
// disk store — promoting disk hits into the LRU so hot keys stop
// paying the read.
func (s *Server) lookup(key string) ([]byte, bool) {
	if body, ok := s.cache.get(key); ok {
		return body, true
	}
	if s.store == nil {
		return nil, false
	}
	body, ok := s.store.get(key)
	if ok {
		s.met.storeHits.Add(1)
		s.cache.put(key, body)
	}
	return body, ok
}

// publish records a completed deterministic body in both tiers.
func (s *Server) publish(key string, body []byte) {
	s.cache.put(key, body)
	if s.store != nil {
		s.store.put(key, body)
	}
}

// Drain stops admission: subsequent and queued jobs get 503 while jobs
// already executing finish and stream their results. Idempotent. Callers
// shutting a process down pair it with http.Server.Shutdown, which waits
// for the in-flight handlers.
func (s *Server) Drain() { s.drain() }

// Draining reports whether Drain was called.
func (s *Server) Draining() bool { return s.drainCtx.Err() != nil }

// Handler returns the routed service: POST /v1/simulations,
// POST /v1/sweeps, POST /v1/estimates, GET /v1/drivers, GET /healthz,
// GET /metrics.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/simulations", s.handleSimulate)
	mux.HandleFunc("POST /v1/sweeps", s.handleSweep)
	mux.HandleFunc("POST /v1/estimates", s.handleEstimate)
	mux.HandleFunc("POST "+api.ShardPath, s.handleShard)
	mux.HandleFunc("GET /v1/drivers", s.handleDrivers)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// maxJoinAttempts bounds how often a follower whose leaders keep failing
// nondeterministically (timeouts) re-joins before executing uncoalesced.
const maxJoinAttempts = 4

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	s.met.inflight.Add(1)
	defer s.met.inflight.Add(-1)

	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		writeFieldError(w, fieldErrf("body", "decoding request: %v", err))
		return
	}
	jb, ferr := s.validate(req)
	if ferr != nil {
		writeFieldError(w, ferr)
		return
	}

	// ctx governs this request's waiting (queue slot, coalesced flight):
	// it dies with the client connection or with drain. Job execution
	// deliberately runs on its own context (see runLeader).
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(s.drainCtx, cancel)
	defer stop()

	// A real-transport job is nondeterministic: it must not replay a
	// memoized calendar body for the same canonical request, must not
	// coalesce with (or lead a flight for) deterministic requests, and
	// its own outcome is never memoized (runLeader sees it as a
	// transient success). It bypasses the cache machinery — lookup,
	// fleet routing, flights — and executes uncoalesced.
	if jb.transport != "" {
		if s.Draining() {
			writeUnavailable(w)
			return
		}
		s.runLeader(w, ctx, jb, nil)
		return
	}

	// Fleet cache routing: the key's ring owner holds the fleet's one
	// authoritative cache slot for this request, so a non-owner forwards
	// after missing locally — unless the request was already forwarded
	// once (the owner serves, never re-forwards: the loop guard) or the
	// owner is unreachable (degrade to local execution, never fail).
	if s.ring != nil && !s.cache.disabled() {
		if r.Header.Get(ForwardedHeader) != "" {
			s.met.forwardServed.Add(1)
		} else if owner := s.ring.Owner(jb.key); owner != s.cfg.Advertise {
			if body, ok := s.lookup(jb.key); ok {
				s.met.hits.Add(1)
				writeStream(w, sampleStream(body, jb.points), "hit")
				return
			}
			if s.forwardToOwner(ctx, w, owner, req) {
				s.met.forwarded.Add(1)
				return
			}
			s.met.forwardFailed.Add(1)
		}
	}

	s.serveJob(w, ctx, jb.key,
		func(body []byte) []byte { return sampleStream(body, jb.points) },
		func(w http.ResponseWriter, ctx context.Context, f *flight) { s.runLeader(w, ctx, jb, f) })
}

// serveJob is the cache/coalesce/leader loop every /v1 job endpoint
// shares: replay a memoized body, join a concurrent identical request's
// flight, or become the leader and execute via lead. render rewrites a
// replayed body for this request (serve-time progress sampling); nil
// serves bodies verbatim. Leaders write their own stream and publish
// the full-resolution body themselves.
func (s *Server) serveJob(w http.ResponseWriter, ctx context.Context, key string,
	render func([]byte) []byte, lead func(w http.ResponseWriter, ctx context.Context, f *flight)) {

	serve := func(body []byte) {
		if render != nil {
			body = render(body)
		}
		s.met.hits.Add(1)
		writeStream(w, body, "hit")
	}

	// Caching off means genuinely off: no memoization and no coalescing,
	// every request is its own execution.
	if s.cache.disabled() {
		if s.Draining() {
			writeUnavailable(w)
			return
		}
		lead(w, ctx, nil)
		return
	}

	for attempt := 0; ; attempt++ {
		if body, ok := s.lookup(key); ok {
			serve(body)
			return
		}
		if s.Draining() {
			writeUnavailable(w)
			return
		}
		if attempt >= maxJoinAttempts {
			lead(w, ctx, nil)
			return
		}
		f, leader := s.join(key)
		if leader {
			// Re-check the cache now that we hold leadership: a previous
			// leader may have published and resolved between our cache
			// miss above and the join — without this, the same key would
			// execute (and count a miss) twice, breaking the
			// misses-== -distinct-keys invariant the load-smoke gate
			// asserts.
			if body, ok := s.lookup(key); ok {
				s.resolve(key, f, body)
				serve(body)
				return
			}
			lead(w, ctx, f)
			return
		}
		select {
		case <-f.done:
			if f.body != nil {
				serve(f.body)
				return
			}
			// The leader failed nondeterministically; try again.
		case <-ctx.Done():
			if s.Draining() {
				writeUnavailable(w)
			}
			return
		}
	}
}

// runLeader queues jb for an execution slot, runs it, streams the NDJSON
// response and publishes the outcome to the cache and to f's followers
// (f may be nil for an uncoalesced fallback run).
func (s *Server) runLeader(w http.ResponseWriter, ctx context.Context, jb *job, f *flight) {
	s.met.queued.Add(1)
	err := s.pool.Acquire(ctx)
	s.met.queued.Add(-1)
	if err != nil {
		// Queued, never ran: drain rejects it, a vanished client just
		// goes away. Followers must not wait on a leader that gave up.
		if f != nil {
			s.resolve(jb.key, f, nil)
		}
		if s.Draining() {
			writeUnavailable(w)
		}
		return
	}

	accepted := acceptedLine(jb)
	s.met.misses.Add(1)
	w.Header().Set(CacheHeader, "miss")
	w.Header().Set("Content-Type", ContentType)
	w.WriteHeader(http.StatusOK)
	flushWrite(w, accepted)

	// The job runs on its own context: bounded by the per-job timeout
	// but not by the client connection, so a vanished client neither
	// kills a result that coalesced followers are waiting on nor stops
	// it reaching the cache. The slot is released when the computation
	// actually finishes — an abandoned (timed-out) job keeps its slot
	// until then, so the pool bound stays honest.
	type outcome struct {
		res gossip.DriverResult
		err error
		// transient marks errors that are not a function of the
		// canonical request (a worker died, a dial failed): streamed but
		// never cached, like timeouts.
		transient bool
	}
	out := make(chan outcome, 1)
	s.met.running.Add(1)
	go func() {
		defer s.pool.Release()
		defer s.met.running.Add(-1)
		if s.cfg.gate != nil {
			s.cfg.gate(jb.key)
		}
		if jb.shards > 0 {
			// Coordinator path: the workers rebuild the graph; this
			// process only relays barrier frames.
			res, err := s.coordinate(jb)
			out <- outcome{res: res, err: err, transient: err != nil}
			return
		}
		g, err := graphgen.Build(graphgen.Spec{
			Family:  jb.can.Graph.Family,
			N:       jb.can.Graph.N,
			Latency: jb.can.Graph.Latency,
			P:       jb.can.Graph.P,
			Layers:  jb.can.Graph.Layers,
			Seed:    jb.can.Seed,
		})
		if err != nil {
			out <- outcome{err: fmt.Errorf("building graph: %w", err)}
			return
		}
		if jb.transport != "" {
			// Real-transport execution: nondeterministic by nature, so
			// success and failure alike are transient — streamed, never
			// memoized.
			res, err := runChanTransport(jb, g)
			out <- outcome{res: res, err: err, transient: true}
			return
		}
		res, err := gossip.Dispatch(jb.can.Driver, g, jb.driverOptions())
		out <- outcome{res: res, err: err}
	}()

	timer := time.NewTimer(jb.timeout)
	defer timer.Stop()
	select {
	case o := <-out:
		if o.err != nil && o.transient {
			// Not a function of the canonical request (a peer died
			// mid-job): stream the error but never memoize it, and let
			// any coalesced followers retry rather than inherit it.
			if f != nil {
				s.resolve(jb.key, f, nil)
			}
			s.met.failed.Add(1)
			flushWrite(w, errorLine(o.err.Error()))
			return
		}
		if o.err != nil {
			// Driver and graph errors are pure functions of the
			// canonical request: cache them like results so identical
			// requests replay the identical error stream.
			body := append(append([]byte(nil), accepted...), errorLine(o.err.Error())...)
			s.publish(jb.key, body)
			if f != nil {
				s.resolve(jb.key, f, body)
			}
			s.met.failed.Add(1)
			flushWrite(w, body[len(accepted):])
			return
		}
		if o.transient {
			// A nondeterministic success (real-transport run): stream and
			// count it, but never memoize — an identical request must
			// execute again, and no follower may inherit this body.
			if f != nil {
				s.resolve(jb.key, f, nil)
			}
			s.met.completed.Add(1)
			s.met.rounds.Add(int64(o.res.Rounds))
			flushWrite(w, sampleStream(resultLines(o.res), jb.points))
			return
		}
		// Publish (and resolve followers with) the full-resolution body;
		// this request's own stream is sampled to its progress_points.
		tail := resultLines(o.res)
		body := append(append([]byte(nil), accepted...), tail...)
		s.publish(jb.key, body)
		if f != nil {
			s.resolve(jb.key, f, body)
		}
		s.met.completed.Add(1)
		s.met.rounds.Add(int64(o.res.Rounds))
		flushWrite(w, sampleStream(tail, jb.points))
	case <-timer.C:
		// Timeouts are wall-clock, not canonical: never cached.
		if f != nil {
			s.resolve(jb.key, f, nil)
		}
		s.met.failed.Add(1)
		flushWrite(w, errorLine(fmt.Sprintf("job exceeded its %v execution timeout", jb.timeout)))
	}
}

// runChanTransport executes jb for real on an in-process goroutine mesh
// — the server face of `gossipsim -mode net`'s execution half. The
// driver's own protocol structs run one goroutine per node on real
// clocks (gossip.RunNet); the result is nondeterministic and the caller
// marks the outcome transient so it is never memoized.
func runChanTransport(jb *job, g *graph.Graph) (gossip.DriverResult, error) {
	csr := g.CSR()
	mesh := transport.NewChanMesh(csr.N(), 0)
	defer mesh.Close()
	res, err := gossip.RunNet(gossip.NetConfig{
		Mesh:      mesh,
		CSR:       csr,
		Driver:    jb.can.Driver,
		Opts:      jb.driverOptions(),
		MaxRounds: jb.can.MaxRounds,
	})
	if err != nil {
		return gossip.DriverResult{}, err
	}
	return gossip.DriverResult{
		Rounds:     res.Rounds,
		Completed:  res.Completed,
		Messages:   res.Messages,
		Dropped:    res.Drops,
		InformedAt: res.InformedAt,
	}, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"draining"}`)
		return
	}
	fmt.Fprintln(w, `{"status":"ok"}`)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.met.render(w, s.cache.len(), s.pool.Size())
}

// driverInfo is one /v1/drivers entry: the machine-readable options
// schema clients validate against before submitting.
type driverInfo struct {
	Name        string      `json:"name"`
	Description string      `json:"description"`
	RequestKeys []string    `json:"request_keys"`
	Options     []optionDoc `json:"options"`
}

type optionDoc struct {
	Name string   `json:"name"`
	Doc  string   `json:"doc"`
	Keys []string `json:"keys,omitempty"`
}

func (s *Server) handleDrivers(w http.ResponseWriter, _ *http.Request) {
	out := make([]driverInfo, 0, 8)
	for _, name := range gossip.Names() {
		d, _ := gossip.Lookup(name)
		info := driverInfo{
			Name:        d.Name,
			Description: d.Description,
			RequestKeys: d.RequestKeys(),
		}
		for _, o := range d.Options {
			info.Options = append(info.Options, optionDoc{Name: o.Name, Doc: o.Doc, Keys: o.Keys})
		}
		out = append(out, info)
	}
	w.Header().Set("Content-Type", "application/json")
	// a write error means the client went away mid-response; nothing to do
	_ = json.NewEncoder(w).Encode(out)
}

func writeFieldError(w http.ResponseWriter, ferr *FieldError) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusBadRequest)
	_ = json.NewEncoder(w).Encode(map[string]*FieldError{"error": ferr})
}

func writeUnavailable(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	fmt.Fprintln(w, `{"error":{"message":"server is draining; job rejected"}}`)
}

// writeStream serves a complete memoized NDJSON body.
func writeStream(w http.ResponseWriter, body []byte, cacheStatus string) {
	w.Header().Set(CacheHeader, cacheStatus)
	w.Header().Set("Content-Type", ContentType)
	w.WriteHeader(http.StatusOK)
	flushWrite(w, body)
}

// flushWrite writes and flushes one chunk of the stream; write errors
// mean the client went away and are deliberately ignored (the job's
// outcome is published via cache/flight regardless).
func flushWrite(w http.ResponseWriter, b []byte) {
	if _, err := w.Write(b); err != nil {
		return
	}
	_ = http.NewResponseController(w).Flush()
}
