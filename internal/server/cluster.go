package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"gossip/internal/adversity"
	"gossip/internal/cluster"
	"gossip/internal/gossip"
	"gossip/internal/graphgen"
	"gossip/internal/server/api"
	"gossip/internal/sim"
)

// ForwardedHeader marks a fleet-forwarded request (see api.ForwardedHeader).
const ForwardedHeader = api.ForwardedHeader

// shardWorkers is the ordered worker pool for coordinated jobs: every
// fleet peer except this process, in sorted address order, so any
// coordinator assigns shard i to the same worker for the same fleet.
func (s *Server) shardWorkers() []string {
	if s.ring == nil {
		return nil
	}
	out := make([]string, 0, len(s.ring.Peers()))
	for _, p := range s.ring.Peers() {
		if p != s.cfg.Advertise {
			out = append(out, p)
		}
	}
	return out
}

// coordinate runs one sharded job as its coordinator: dial a shard
// session per worker, relay barrier frames, assemble the aggregate.
// The workers rebuild graph and engine state deterministically from the
// canonical request — only barrier frames cross the network — and the
// relay's shard-ordered bundles give every worker the identical merge
// the in-process engine performs, so the assembled result is
// bit-identical to a single-process run of the same canonical request.
//
// Every error out of here is transient from the cache's point of view
// (a peer died, a dial failed, replicas diverged): the caller streams it
// but must never memoize it, exactly like a timeout.
func (s *Server) coordinate(jb *job) (gossip.DriverResult, error) {
	workers := s.shardWorkers()
	if len(workers) < jb.shards {
		return gossip.DriverResult{}, fmt.Errorf("fleet has %d workers, job wants %d shards", len(workers), jb.shards)
	}
	canJSON, err := json.Marshal(jb.can)
	if err != nil {
		return gossip.DriverResult{}, err
	}
	s.met.shardJobs.Add(1)
	// The relay needs its own timeout: runLeader's timer only abandons
	// the stream, while cancelling this context tears the worker
	// sessions down so their compute actually stops.
	ctx, cancel := context.WithTimeout(context.Background(), jb.timeout+5*time.Second)
	defer cancel()
	conns := make([]*cluster.WorkerConn, 0, jb.shards)
	defer func() {
		for _, wc := range conns {
			wc.Close()
		}
	}()
	for i := 0; i < jb.shards; i++ {
		wc, err := cluster.DialShard(ctx, workers[i], api.ShardJob{
			SchemaVersion: api.SchemaVersion,
			Shard:         i,
			Shards:        jb.shards,
			RequestKey:    jb.key,
			TimeoutMS:     int(jb.timeout / time.Millisecond),
			Request:       canJSON,
		})
		if err != nil {
			s.met.shardFailures.Add(1)
			return gossip.DriverResult{}, err
		}
		conns = append(conns, wc)
	}
	agg, _, err := cluster.Relay(ctx, conns)
	if err != nil {
		s.met.shardFailures.Add(1)
		return gossip.DriverResult{}, err
	}
	return gossip.DriverResult{
		Rounds:       agg.Rounds,
		Completed:    agg.Completed,
		Exchanges:    agg.Exchanges,
		Messages:     agg.Messages,
		Dropped:      agg.Dropped,
		Delivered:    agg.Delivered,
		RumorPayload: agg.RumorPayload,
		InformedAt:   agg.InformedAt,
	}, nil
}

// handleShard serves the worker half of the shard RPC. The session
// deliberately bypasses the runner pool: a coordinator already holds an
// execution slot for the whole job, and a fleet of mutual coordinators
// could deadlock if worker shards also queued for slots. Drain rejects
// new sessions before the upgrade, like any other admission.
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	if !strings.EqualFold(r.Header.Get("Upgrade"), api.ShardProtocol) {
		writeFieldError(w, fieldErrf("upgrade", "shard sessions require Upgrade: %s", api.ShardProtocol))
		return
	}
	if s.Draining() {
		writeUnavailable(w)
		return
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		http.Error(w, "connection cannot be hijacked", http.StatusInternalServerError)
		return
	}
	conn, brw, err := hj.Hijack()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	defer conn.Close()
	s.met.shardSessions.Add(1)
	fmt.Fprintf(brw, "HTTP/1.1 101 Switching Protocols\r\nUpgrade: %s\r\nConnection: Upgrade\r\n\r\n", api.ShardProtocol)
	if err := brw.Flush(); err != nil {
		return
	}
	// The ceiling for one idle window: no coordinator may make this
	// worker wait longer than its own timeout policy allows. ServeShard
	// tightens the window to the job's carried timeout once it arrives,
	// and refreshes it at every barrier — an absolute session deadline
	// here used to kill healthy long runs mid-barrier.
	maxIdle := s.cfg.MaxTimeout + 30*time.Second
	if err := cluster.ServeShard(conn, brw, maxIdle, s.runShardJob); err != nil {
		s.met.shardFailures.Add(1)
	}
}

// runShardJob executes one worker shard: reconstruct the job from the
// coordinator's canonical request, rebuild the graph locally, run the
// shard-restricted engine against the connection's barrier exchanger.
func (s *Server) runShardJob(sj api.ShardJob, ex sim.Exchanger) (*api.ShardResult, error) {
	var can canonical
	if err := json.Unmarshal(sj.Request, &can); err != nil {
		return nil, fmt.Errorf("decoding canonical request: %w", err)
	}
	if key := requestKey(can); key != sj.RequestKey {
		// Same bytes, different key: the fleet is running mixed wire
		// schemas. Refusing here is what keeps "bit-identical" honest.
		return nil, fmt.Errorf("request key mismatch (%s here vs %s at coordinator) — mixed gossipd versions in fleet?", key, sj.RequestKey)
	}
	jb := &job{can: can}
	if can.FaultSpec != "" {
		spec, err := adversity.ParseSpec(can.FaultSpec)
		if err != nil {
			return nil, fmt.Errorf("parsing fault spec: %w", err)
		}
		jb.spec = spec
	}
	g, err := graphgen.Build(graphgen.Spec{
		Family:  can.Graph.Family,
		N:       can.Graph.N,
		Latency: can.Graph.Latency,
		P:       can.Graph.P,
		Layers:  can.Graph.Layers,
		Seed:    can.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("building graph: %w", err)
	}
	cfg, factory, stop, err := gossip.PrepareDist(can.Driver, g, jb.driverOptions())
	if err != nil {
		return nil, err
	}
	var stats sim.DistStats
	res, err := sim.RunDist(cfg, sim.DistConfig{Shard: sj.Shard, Shards: sj.Shards, Exchanger: ex, Stats: &stats}, factory, stop)
	if err != nil {
		return nil, err
	}
	out := &api.ShardResult{
		Rounds:       res.Rounds,
		Completed:    res.Completed,
		Exchanges:    res.Exchanges,
		Messages:     res.Messages,
		Dropped:      res.Dropped,
		Delivered:    res.Delivered,
		RumorPayload: res.RumorPayload,
		Hash:         api.InformedHash(res.Rounds, res.Completed, res.InformedAt),
		Stats:        stats,
	}
	if sj.Shard == 0 {
		// One copy of the O(n) array crosses the wire; the other shards
		// prove their replica matches through Hash.
		out.InformedAt = res.InformedAt
	}
	return out, nil
}

// forwardToOwner proxies the request to the cache key's ring owner and
// streams the response through. Returns false when the peer could not
// be reached (before any response byte was committed) so the caller
// falls back to serving locally — a dead peer degrades the fleet to
// per-node caching, it never fails requests.
func (s *Server) forwardToOwner(ctx context.Context, w http.ResponseWriter, owner string, req Request) bool {
	body, err := json.Marshal(req)
	if err != nil {
		return false
	}
	host := strings.TrimSuffix(strings.TrimPrefix(strings.TrimPrefix(owner, "http://"), "https://"), "/")
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+host+"/v1/simulations", bytes.NewReader(body))
	if err != nil {
		return false
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(api.ForwardedHeader, s.cfg.Advertise)
	resp, err := s.fleet.Do(hreq)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if v := resp.Header.Get(CacheHeader); v != "" {
		w.Header().Set(CacheHeader, v)
	}
	if v := resp.Header.Get("Content-Type"); v != "" {
		w.Header().Set("Content-Type", v)
	}
	w.WriteHeader(resp.StatusCode)
	buf := make([]byte, 32<<10)
	rc := http.NewResponseController(w)
	for {
		n, rerr := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return true // committed; the client went away
			}
			_ = rc.Flush()
		}
		if rerr != nil {
			return true
		}
	}
}

// fleetTransport tunes the intra-fleet HTTP client the same way the
// load generator tunes its client: keep-alives with enough idle
// connections per peer that forwarding measures the peer, not TCP
// setup.
func fleetTransport() *http.Transport {
	return &http.Transport{
		MaxIdleConns:        64,
		MaxIdleConnsPerHost: 16,
		IdleConnTimeout:     90 * time.Second,
	}
}
