package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"gossip/internal/adversity"
	"gossip/internal/gossip"
	"gossip/internal/graphgen"
	"gossip/internal/server/api"
)

// SweepRequest is the JSON body of POST /v1/sweeps; the struct lives in
// internal/server/api with the rest of the /v1 envelopes.
type SweepRequest = api.SweepRequest

// SweepVariant is one sweep divergence (see api.SweepVariant).
type SweepVariant = api.SweepVariant

// maxSweepVariants bounds the per-request fan-out; wider sweeps split
// into several requests (which share variant results through the
// content-addressed store anyway).
const maxSweepVariants = 32

// variantJob is one validated sweep variant: the diverged canonical
// form plus its content address.
type variantJob struct {
	can  canonical
	spec *adversity.Spec
	// key addresses the variant body: a hash of (base canonical,
	// fork_round, variant canonical). It deliberately does NOT collide
	// with the /v1/simulations key of the same parameters — a warm
	// continuation and a cold run are different computations with
	// different bodies (the warm one has no accepted line), and a later
	// sweep sharing this base, fork and overlay reuses it byte-for-byte.
	key string
}

// options maps the variant onto the driver option surface; workers is
// inherited from the base request (execution knob, not canonical).
func (v *variantJob) options(workers int) gossip.DriverOptions {
	j := job{can: v.can, workers: workers, spec: v.spec}
	return j.driverOptions()
}

// sweepJob is a validated, normalized sweep ready to execute.
type sweepJob struct {
	base      *job
	forkRound int
	vars      []*variantJob
	key       string // whole-stream cache key
}

// sweepCanonical and sweepVariantCanonical are the key material; struct
// field order makes the JSON — and so the keys — deterministic.
type sweepCanonical struct {
	Base      canonical   `json:"base"`
	ForkRound int         `json:"fork_round"`
	Variants  []canonical `json:"variants"`
}

type sweepVariantCanonical struct {
	Base      canonical `json:"base"`
	ForkRound int       `json:"fork_round"`
	Variant   canonical `json:"variant"`
}

func hashKey(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("server: canonical key marshal: %v", err))
	}
	sum := sha256.Sum256(append([]byte(bodyVersionSalt), b...))
	return hex.EncodeToString(sum[:16])
}

// validateSweep checks a sweep against the server limits, the base
// request rules and the warm-start divergence contract.
func (s *Server) validateSweep(req SweepRequest) (*sweepJob, *FieldError) {
	base, ferr := s.validate(req.Base)
	if ferr != nil {
		return nil, fieldErrf("base."+ferr.Field, "%s", ferr.Message)
	}
	d, _ := gossip.Lookup(base.can.Driver)
	if !d.WarmStart() {
		return nil, fieldErrf("base.driver",
			"driver %q is a multi-phase pipeline and cannot be warm-start forked (single-phase drivers only)", d.Name)
	}
	if req.ForkRound < 0 || req.ForkRound > s.cfg.MaxRoundsCap {
		return nil, fieldErrf("fork_round", "fork_round %d outside [0, %d]", req.ForkRound, s.cfg.MaxRoundsCap)
	}
	if len(req.Variants) == 0 {
		return nil, fieldErrf("variants", "a sweep needs at least one variant")
	}
	if len(req.Variants) > maxSweepVariants {
		return nil, fieldErrf("variants", "%d variants over the per-request cap %d", len(req.Variants), maxSweepVariants)
	}

	sj := &sweepJob{base: base, forkRound: req.ForkRound}
	cans := make([]canonical, 0, len(req.Variants))
	for i, v := range req.Variants {
		field := func(name string) string { return fmt.Sprintf("variants[%d].%s", i, name) }
		vcan := base.can
		vspec := base.spec
		if v.FaultSpec != nil {
			vcan.FaultSpec = ""
			vspec = nil
			if strings.TrimSpace(*v.FaultSpec) != "" {
				parsed, err := adversity.ParseSpec(*v.FaultSpec)
				if err != nil {
					return nil, fieldErrf(field("fault_spec"), "%v", err)
				}
				if !parsed.Empty() {
					vspec = parsed
					vcan.FaultSpec = parsed.String()
				}
			}
		}
		if v.MaxRounds != nil {
			if *v.MaxRounds < 0 || *v.MaxRounds > s.cfg.MaxRoundsCap {
				return nil, fieldErrf(field("max_rounds"), "max_rounds %d outside [0, %d]", *v.MaxRounds, s.cfg.MaxRoundsCap)
			}
			if *v.MaxRounds != 0 && *v.MaxRounds < req.ForkRound {
				return nil, fieldErrf(field("max_rounds"), "max_rounds %d lands before fork_round %d", *v.MaxRounds, req.ForkRound)
			}
			vcan.MaxRounds = *v.MaxRounds
		}
		if v.MaxInPerRound != nil {
			if !d.AcceptsKey("max_in_per_round") {
				return nil, fieldErrf(field("max_in_per_round"),
					"driver %q does not accept \"max_in_per_round\" (accepted keys: %s)", d.Name, strings.Join(d.RequestKeys(), ", "))
			}
			if *v.MaxInPerRound < 0 {
				return nil, fieldErrf(field("max_in_per_round"), "max_in_per_round %d must be >= 0", *v.MaxInPerRound)
			}
			vcan.MaxInPerRound = *v.MaxInPerRound
		}
		sj.vars = append(sj.vars, &variantJob{
			can:  vcan,
			spec: vspec,
			key:  hashKey(sweepVariantCanonical{Base: base.can, ForkRound: req.ForkRound, Variant: vcan}),
		})
		cans = append(cans, vcan)
	}
	sj.key = hashKey(sweepCanonical{Base: base.can, ForkRound: req.ForkRound, Variants: cans})
	return sj, nil
}

// handleSweep mirrors handleSimulate's cache/coalesce/leader loop on the
// sweep-level key: identical concurrent sweeps coalesce onto one
// execution, completed sweeps replay byte-identically from the cache
// tiers, and cache status travels in the X-Gossipd-Cache header only.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.met.inflight.Add(1)
	defer s.met.inflight.Add(-1)

	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var req SweepRequest
	if err := dec.Decode(&req); err != nil {
		writeFieldError(w, fieldErrf("body", "decoding sweep request: %v", err))
		return
	}
	sj, ferr := s.validateSweep(req)
	if ferr != nil {
		writeFieldError(w, ferr)
		return
	}

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(s.drainCtx, cancel)
	defer stop()

	s.serveJob(w, ctx, sj.key,
		func(body []byte) []byte { return sampleStream(body, sj.base.points) },
		func(w http.ResponseWriter, ctx context.Context, f *flight) { s.runSweepLeader(w, ctx, sj, f) })
}

// sweepChunk is one ordered piece of the sweep stream after the
// accepted line. nondet marks wall-clock content (drain aborts) that
// must keep the whole body out of the cache.
type sweepChunk struct {
	line   []byte
	nondet bool
	rounds int64 // terminal chunk only: rounds summed over completed variants
}

// runSweepLeader queues the shared prefix for an execution slot, streams
// the sweep and publishes the outcome like runLeader does for single
// jobs. The base request's timeout governs the whole sweep; a timeout
// terminates the stream with an error event and is never cached.
func (s *Server) runSweepLeader(w http.ResponseWriter, ctx context.Context, sj *sweepJob, f *flight) {
	s.met.queued.Add(1)
	err := s.pool.Acquire(ctx)
	s.met.queued.Add(-1)
	if err != nil {
		if f != nil {
			s.resolve(sj.key, f, nil)
		}
		if s.Draining() {
			writeUnavailable(w)
		}
		return
	}

	accepted := sweepAcceptedLine(sj)
	s.met.misses.Add(1)
	s.met.sweeps.Add(1)
	w.Header().Set(CacheHeader, "miss")
	w.Header().Set("Content-Type", ContentType)
	w.WriteHeader(http.StatusOK)
	flushWrite(w, accepted)

	// The producer owns the acquired slot and runs to completion on its
	// own schedule (like runLeader's execution goroutine): a vanished
	// client or a timed-out stream does not stop variant bodies from
	// reaching the content store. The channel is buffered for the whole
	// stream so an abandoned producer never blocks.
	out := make(chan sweepChunk, 2*len(sj.vars)+2)
	s.met.running.Add(1)
	go func() {
		defer s.met.running.Add(-1)
		s.produceSweep(sj, out)
	}()

	timer := time.NewTimer(sj.base.timeout)
	defer timer.Stop()
	body := append([]byte(nil), accepted...)
	cacheable := true
	var rounds int64
	for {
		select {
		case c, ok := <-out:
			if !ok {
				if cacheable {
					s.publish(sj.key, body)
					if f != nil {
						s.resolve(sj.key, f, body)
					}
					s.met.completed.Add(1)
					s.met.rounds.Add(rounds)
				} else {
					if f != nil {
						s.resolve(sj.key, f, nil)
					}
					s.met.failed.Add(1)
				}
				return
			}
			cacheable = cacheable && !c.nondet
			rounds += c.rounds
			// The accumulated (published) body keeps full resolution; the
			// live stream is sampled to the base's progress_points.
			body = append(body, c.line...)
			flushWrite(w, sampleStream(c.line, sj.base.points))
		case <-timer.C:
			// Wall-clock, not canonical: never cached. The producer keeps
			// going so the per-variant bodies still land in the store.
			if f != nil {
				s.resolve(sj.key, f, nil)
			}
			s.met.failed.Add(1)
			flushWrite(w, errorLine(fmt.Sprintf("sweep exceeded its %v execution timeout", sj.base.timeout)))
			return
		}
	}
}

// produceSweep computes the stream after the accepted line: fork the
// shared prefix (on the slot the caller acquired), resume every variant
// in parallel on its own pool slot, and emit the per-variant sections in
// index order followed by the sweep_result tally. Completed variant
// bodies are content-addressed into the cache tiers, so overlapping
// sweeps — and replays after an eviction or a restart — skip the resume.
func (s *Server) produceSweep(sj *sweepJob, out chan<- sweepChunk) {
	defer close(out)
	if s.cfg.gate != nil {
		s.cfg.gate(sj.key)
	}
	g, err := graphgen.Build(graphgen.Spec{
		Family:  sj.base.can.Graph.Family,
		N:       sj.base.can.Graph.N,
		Latency: sj.base.can.Graph.Latency,
		P:       sj.base.can.Graph.P,
		Layers:  sj.base.can.Graph.Layers,
		Seed:    sj.base.can.Seed,
	})
	if err != nil {
		s.pool.Release()
		out <- sweepChunk{line: errorLine(fmt.Sprintf("building graph: %v", err))}
		return
	}
	prefix, err := gossip.Fork(sj.base.can.Driver, g, sj.base.driverOptions(), sj.forkRound)
	s.pool.Release()
	if err != nil {
		// Deterministic (a pure function of the canonical sweep): the
		// stream, error included, is cached like any other body.
		out <- sweepChunk{line: errorLine(fmt.Sprintf("forking warm prefix: %v", err))}
		return
	}

	type vOut struct {
		tail   []byte
		nondet bool
	}
	results := make([]chan vOut, len(sj.vars))
	for i := range sj.vars {
		results[i] = make(chan vOut, 1)
		go func(i int, v *variantJob) {
			if tail, ok := s.lookup(v.key); ok {
				results[i] <- vOut{tail: tail}
				return
			}
			if err := s.pool.Acquire(s.drainCtx); err != nil {
				results[i] <- vOut{tail: errorLine("server is draining; variant aborted"), nondet: true}
				return
			}
			res, err := prefix.Resume(v.options(sj.base.workers))
			s.pool.Release()
			var tail []byte
			if err != nil {
				tail = errorLine(err.Error())
			} else {
				tail = resultLines(res)
			}
			s.publish(v.key, tail)
			results[i] <- vOut{tail: tail}
		}(i, sj.vars[i])
	}

	var totalRounds int64
	completed, errs := 0, 0
	for i, v := range sj.vars {
		out <- sweepChunk{line: variantLine(i, v.key)}
		r := <-results[i]
		rounds, isErr := tailSummary(r.tail)
		if isErr {
			errs++
		} else {
			completed++
			totalRounds += rounds
		}
		out <- sweepChunk{line: r.tail, nondet: r.nondet}
	}
	out <- sweepChunk{line: sweepResultLine(len(sj.vars), completed, errs, totalRounds), rounds: totalRounds}
}

func sweepAcceptedLine(sj *sweepJob) []byte {
	fr := sj.forkRound
	return mustLine(api.Accepted{
		SchemaVersion: SchemaVersion,
		Event:         "accepted",
		Driver:        sj.base.can.Driver,
		RequestKey:    sj.key,
		Variants:      len(sj.vars),
		ForkRound:     &fr,
	})
}

func variantLine(index int, key string) []byte {
	return mustLine(api.Variant{SchemaVersion: SchemaVersion, Event: "variant", Index: index, RequestKey: key})
}

func sweepResultLine(variants, completed, errs int, totalRounds int64) []byte {
	return mustLine(api.SweepResult{
		SchemaVersion: SchemaVersion,
		Event:         "sweep_result",
		Variants:      variants,
		Completed:     completed,
		Errors:        errs,
		TotalRounds:   totalRounds,
	})
}

// tailSummary classifies a stored variant tail by its terminal event —
// needed because a tail replayed from the content store arrives as
// opaque bytes.
func tailSummary(tail []byte) (rounds int64, isErr bool) {
	trimmed := bytes.TrimRight(tail, "\n")
	last := trimmed[bytes.LastIndexByte(trimmed, '\n')+1:]
	var ev api.Event
	if err := json.Unmarshal(last, &ev); err != nil {
		return 0, true
	}
	if ev.Event == "result" && ev.Result != nil {
		return int64(ev.Result.Rounds), false
	}
	return 0, true
}
