package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// chanReq is a small real-transport job: push-pull on a 5x5 grid over
// an in-process goroutine mesh.
func chanReq() Request {
	return Request{
		Driver:    "push-pull",
		Graph:     GraphSpec{Family: "grid", N: 5},
		Seed:      7,
		Transport: "chan",
	}
}

// TestSimulateChanTransport drives the execution half of the knob: a
// transport "chan" job streams the usual accepted/progress/result shape,
// completes, and is never cached — neither consuming a memoized sim body
// nor leaving one behind.
func TestSimulateChanTransport(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Warm the cache with the deterministic run of the same canonical
	// request, so a cache-key leak would serve the chan job from it.
	sim := chanReq()
	sim.Transport = ""
	if status, cache, _ := postJob(t, ts.URL, sim); status != http.StatusOK || cache != "miss" {
		t.Fatalf("sim warmup: status %d cache %q", status, cache)
	}

	status, cache, body := postJob(t, ts.URL, chanReq())
	if status != http.StatusOK || cache != "miss" {
		t.Fatalf("chan run: status %d cache %q, want 200 miss (never a cache hit)", status, cache)
	}
	events := decodeStream(t, body)
	if events[0]["event"] != "accepted" {
		t.Fatalf("bad first event: %+v", events[0])
	}
	last := events[len(events)-1]
	if last["event"] != "result" {
		t.Fatalf("last event %+v, want result", last)
	}
	res := last["result"].(map[string]any)
	if res["completed"] != true {
		t.Fatalf("real-transport run incomplete: %+v", res)
	}
	if res["messages"].(float64) <= 0 {
		t.Fatalf("real-transport run moved no messages: %+v", res)
	}

	// A second identical chan request executes again (miss), while the
	// deterministic body cached by the warmup is still served to sim
	// requests — the chan run neither replaced nor evicted it.
	if _, cache, _ := postJob(t, ts.URL, chanReq()); cache != "miss" {
		t.Fatalf("second chan run served from cache (%q)", cache)
	}
	if _, cache, _ := postJob(t, ts.URL, sim); cache != "hit" {
		t.Fatalf("sim replay after chan runs: cache %q, want hit", cache)
	}
	if m := srv.Metrics(); m.CacheMisses != 3 || m.CacheHits != 1 {
		t.Fatalf("metrics %+v, want 3 misses / 1 hit", m)
	}
}

// TestValidateTransport pins the knob's validation surface and that it
// stays out of the cache key.
func TestValidateTransport(t *testing.T) {
	s := testServer()

	simJob, ferr := s.validate(Request{Driver: "push-pull", Graph: okGraph(), Transport: "sim"})
	if ferr != nil || simJob.transport != "" {
		t.Fatalf("transport sim: %v, job %+v", ferr, simJob)
	}
	chanJob, ferr := s.validate(Request{Driver: "push-pull", Graph: okGraph(), Transport: "chan"})
	if ferr != nil || chanJob.transport != "chan" {
		t.Fatalf("transport chan: %v", ferr)
	}
	// Execution-only: the fabric must not split the cache key.
	if simJob.key != chanJob.key {
		t.Fatal("transport split the cache key")
	}

	rejected := []Request{
		{Driver: "push-pull", Graph: okGraph(), Transport: "tcp"},
		{Driver: "spanner", Graph: okGraph(), Transport: "chan"},
		{Driver: "push-pull", Graph: okGraph(), Transport: "chan", FaultSpec: "loss=0.1"},
		{Driver: "push-pull", Graph: okGraph(), Transport: "chan", MaxInPerRound: intp(2)},
		{Driver: "push-pull", Graph: okGraph(), Transport: "chan", Objective: strp("all-to-all")},
		{Driver: "push-pull", Graph: okGraph(), Transport: "chan", Shards: 2},
	}
	for _, req := range rejected {
		if _, ferr := s.validate(req); ferr == nil {
			t.Errorf("request %+v accepted, want a field error", req)
		}
	}
	if _, ferr := s.validate(rejected[0]); ferr == nil || ferr.Field != "transport" ||
		!strings.Contains(ferr.Message, "sim, chan") {
		t.Fatalf("unknown transport error: %v", ferr)
	}
}
