package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gossip/internal/gossip"
)

// postJob submits a request and returns status, cache header and body.
func postJob(t *testing.T, url string, req Request) (int, string, []byte) {
	t.Helper()
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/simulations", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get(CacheHeader), body
}

// decodeStream parses an NDJSON body into loosely-typed events.
func decodeStream(t *testing.T, body []byte) []map[string]any {
	t.Helper()
	var events []map[string]any
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if ev["schema_version"] != float64(SchemaVersion) {
			t.Fatalf("line without schema_version %d: %q", SchemaVersion, sc.Text())
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

func pushPullReq() Request {
	return Request{Driver: "push-pull", Graph: GraphSpec{Family: "dumbbell", N: 8, Latency: 12}, Seed: 3}
}

func TestSimulateStreamShape(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	status, cache, body := postJob(t, ts.URL, pushPullReq())
	if status != http.StatusOK || cache != "miss" {
		t.Fatalf("status %d cache %q, want 200 miss", status, cache)
	}
	events := decodeStream(t, body)
	if len(events) < 3 {
		t.Fatalf("stream too short: %d events", len(events))
	}
	if events[0]["event"] != "accepted" || events[0]["driver"] != "push-pull" || events[0]["request_key"] == "" {
		t.Fatalf("bad accepted event: %+v", events[0])
	}
	last := events[len(events)-1]
	if last["event"] != "result" {
		t.Fatalf("last event %+v, want result", last)
	}
	res := last["result"].(map[string]any)
	if res["completed"] != true || res["rounds"].(float64) <= 0 {
		t.Fatalf("bad result: %+v", res)
	}
	prevRound, prevInformed := -1.0, 0.0
	for _, ev := range events[1 : len(events)-1] {
		if ev["event"] != "progress" {
			t.Fatalf("mid-stream event %+v, want progress", ev)
		}
		r, in := ev["round"].(float64), ev["informed"].(float64)
		if r <= prevRound || in < prevInformed {
			t.Fatalf("progress not monotone: %+v after (%v,%v)", ev, prevRound, prevInformed)
		}
		prevRound, prevInformed = r, in
	}
	// 16 nodes, all informed by the end
	if prevInformed != 16 {
		t.Fatalf("final informed %v, want 16", prevInformed)
	}
}

// TestSimulateCacheHitIsByteIdentical is the memoization contract:
// identical request ⇒ hit ⇒ byte-identical body; different seed ⇒
// different key, miss.
func TestSimulateCacheHitIsByteIdentical(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, cache1, body1 := postJob(t, ts.URL, pushPullReq())
	_, cache2, body2 := postJob(t, ts.URL, pushPullReq())
	if cache1 != "miss" || cache2 != "hit" {
		t.Fatalf("cache %q then %q, want miss then hit", cache1, cache2)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("cached replay differs:\n%s\nvs\n%s", body1, body2)
	}

	other := pushPullReq()
	other.Seed = 99
	_, cache3, body3 := postJob(t, ts.URL, other)
	if cache3 != "miss" {
		t.Fatalf("different seed served from cache")
	}
	if bytes.Equal(body1, body3) {
		t.Fatal("different seeds produced identical bodies (suspicious)")
	}
	m := srv.Metrics()
	if m.CacheHits != 1 || m.CacheMisses != 2 || m.Completed != 2 {
		t.Fatalf("metrics %+v, want 1 hit / 2 misses / 2 completed", m)
	}
	if m.RoundsSimulated <= 0 {
		t.Fatalf("rounds not accumulated: %+v", m)
	}
}

// TestSimulateDeterministicAcrossPoolsAndWorkers is the acceptance
// criterion: the same job against servers with different pool sizes, and
// with different intra-round worker counts, returns byte-identical
// bodies.
func TestSimulateDeterministicAcrossPoolsAndWorkers(t *testing.T) {
	bodies := make([][]byte, 0, 4)
	for _, cfg := range []Config{{Pool: 1}, {Pool: 8}} {
		ts := httptest.NewServer(New(cfg).Handler())
		for _, workers := range []int{0, 8} {
			req := pushPullReq()
			req.Workers = workers
			status, _, body := postJob(t, ts.URL, req)
			if status != http.StatusOK {
				t.Fatalf("status %d", status)
			}
			bodies = append(bodies, body)
		}
		ts.Close()
	}
	for i := 1; i < len(bodies); i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("body %d differs from body 0:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
}

// TestSimulateFaultSpecJob runs a lossy/churny/flappy/crashy job through
// the full HTTP path and pins that it completes deterministically.
func TestSimulateFaultSpecJob(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	req := pushPullReq()
	req.FaultSpec = "loss=0.15;churn=2:6-14:amnesia;flap=0-1:3-8;crash=9:5"
	status, _, body1 := postJob(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body1)
	}
	events := decodeStream(t, body1)
	last := events[len(events)-1]
	if last["event"] != "result" {
		t.Fatalf("fault job ended with %+v", last)
	}
	res := last["result"].(map[string]any)
	if res["dropped"].(float64) <= 0 {
		t.Fatalf("lossy schedule dropped nothing: %+v", res)
	}
	_, cache, body2 := postJob(t, ts.URL, req)
	if cache != "hit" || !bytes.Equal(body1, body2) {
		t.Fatal("fault job not memoized bit-identically")
	}
}

// TestSimulateCoalescesConcurrentIdenticalRequests holds a job mid-
// flight while identical requests pile up: exactly one execution (miss),
// everyone else replays it (hit), all bodies identical.
func TestSimulateCoalescesConcurrentIdenticalRequests(t *testing.T) {
	release := make(chan struct{})
	started := make(chan string, 16)
	srv := New(Config{gate: func(key string) {
		started <- key
		<-release
	}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const followers = 8
	var wg sync.WaitGroup
	type reply struct {
		cache string
		body  []byte
	}
	replies := make(chan reply, followers+1)
	post := func() {
		defer wg.Done()
		_, cache, body := postJob(t, ts.URL, pushPullReq())
		replies <- reply{cache, body}
	}
	wg.Add(1)
	go post()
	<-started // leader is executing, holding the gate
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go post()
	}
	// Followers coalesce: no second execution may begin.
	select {
	case k := <-started:
		t.Fatalf("second execution started for %s despite coalescing", k)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	wg.Wait()
	close(replies)

	misses, hits := 0, 0
	var first []byte
	for r := range replies {
		switch r.cache {
		case "miss":
			misses++
		case "hit":
			hits++
		default:
			t.Fatalf("cache header %q", r.cache)
		}
		if first == nil {
			first = r.body
		} else if !bytes.Equal(first, r.body) {
			t.Fatalf("coalesced bodies differ:\n%s\nvs\n%s", first, r.body)
		}
	}
	if misses != 1 || hits != followers {
		t.Fatalf("misses=%d hits=%d, want 1/%d", misses, hits, followers)
	}
}

// TestDrain is the graceful-shutdown satellite: the in-flight job
// finishes and streams its result, the queued job gets 503, new
// submissions get 503, and /healthz flips to draining.
func TestDrain(t *testing.T) {
	release := make(chan struct{})
	started := make(chan string, 4)
	srv := New(Config{Pool: 1, gate: func(key string) {
		started <- key
		<-release
	}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	type reply struct {
		status int
		body   []byte
	}
	inflight := make(chan reply, 1)
	go func() {
		status, _, body := postJob(t, ts.URL, pushPullReq())
		inflight <- reply{status, body}
	}()
	<-started // job A holds the only slot

	queued := make(chan reply, 1)
	queuedReq := pushPullReq()
	queuedReq.Seed = 77 // distinct key: must queue, not coalesce
	go func() {
		status, _, body := postJob(t, ts.URL, queuedReq)
		queued <- reply{status, body}
	}()
	waitFor(t, func() bool { return srv.Metrics().Queued == 1 })

	srv.Drain()

	// The queued job is rejected without running.
	q := <-queued
	if q.status != http.StatusServiceUnavailable {
		t.Fatalf("queued job status %d (%s), want 503", q.status, q.body)
	}

	// New submissions are rejected outright.
	status, _, body := postJob(t, ts.URL, Request{Driver: "flood", Graph: okGraph()})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("new job during drain: %d (%s)", status, body)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(hb), "draining") {
		t.Fatalf("healthz during drain: %d %s", resp.StatusCode, hb)
	}

	// The in-flight job still finishes and streams its full result.
	close(release)
	a := <-inflight
	if a.status != http.StatusOK {
		t.Fatalf("in-flight job status %d", a.status)
	}
	events := decodeStream(t, a.body)
	if events[len(events)-1]["event"] != "result" {
		t.Fatalf("in-flight job did not complete: %+v", events[len(events)-1])
	}
	if srv.Metrics().Completed != 1 {
		t.Fatalf("metrics after drain: %+v", srv.Metrics())
	}
}

// TestJobTimeout pins the per-job budget: the stream ends with an error
// event, the outcome is not cached, and a later identical request
// executes fresh.
func TestJobTimeout(t *testing.T) {
	release := make(chan struct{})
	gated := true
	var mu sync.Mutex
	srv := New(Config{DefaultTimeout: 30 * time.Millisecond, gate: func(string) {
		mu.Lock()
		g := gated
		mu.Unlock()
		if g {
			<-release
		}
	}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, cache, body := postJob(t, ts.URL, pushPullReq())
	if status != http.StatusOK || cache != "miss" {
		t.Fatalf("status %d cache %q", status, cache)
	}
	events := decodeStream(t, body)
	last := events[len(events)-1]
	if last["event"] != "error" || !strings.Contains(last["error"].(map[string]any)["message"].(string), "timeout") {
		t.Fatalf("timed-out job ended with %+v", last)
	}
	if srv.Metrics().Failed != 1 {
		t.Fatalf("metrics: %+v", srv.Metrics())
	}

	mu.Lock()
	gated = false
	mu.Unlock()
	close(release) // let the abandoned goroutine finish and free its slot

	waitFor(t, func() bool { return srv.Metrics().Running == 0 })
	status, cache, body = postJob(t, ts.URL, pushPullReq())
	if status != http.StatusOK || cache != "miss" {
		t.Fatalf("retry status %d cache %q (timeouts must not be cached)", status, cache)
	}
	if ev := decodeStream(t, body); ev[len(ev)-1]["event"] != "result" {
		t.Fatalf("retry did not complete: %+v", ev[len(ev)-1])
	}
}

// TestSimulateDeterministicErrorIsCached: a job that fails as a pure
// function of its request (fault-spec ids out of range for the graph)
// streams a structured error event and replays identically from cache.
func TestSimulateDeterministicErrorIsCached(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	req := pushPullReq()
	req.FaultSpec = "churn=4000:2-5" // node 4000 does not exist on n=16
	status, cache1, body1 := postJob(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	events := decodeStream(t, body1)
	if events[len(events)-1]["event"] != "error" {
		t.Fatalf("expected error event, got %+v", events[len(events)-1])
	}
	_, cache2, body2 := postJob(t, ts.URL, req)
	if cache1 != "miss" || cache2 != "hit" || !bytes.Equal(body1, body2) {
		t.Fatalf("deterministic error not memoized: %q/%q", cache1, cache2)
	}
}

func TestBadRequestsNever500(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	for _, raw := range []string{
		``, `{`, `[]`, `{"driver":"push-pull","graph":{"family":"clique","n":8},"bogus_field":1}`,
		`{"driver":"nope","graph":{"family":"clique","n":8}}`,
		`{"driver":"push-pull","graph":{"family":"clique","n":8},"timeout_ms":0}`,
		`{"driver":"push-pull","graph":{"family":"clique","n":8},"fault_spec":"loss=2"}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/simulations", "application/json", strings.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("request %q: status %d (%s), want 400", raw, resp.StatusCode, body)
		}
		var fe struct {
			Error *FieldError `json:"error"`
		}
		if err := json.Unmarshal(body, &fe); err != nil || fe.Error == nil || fe.Error.Field == "" {
			t.Fatalf("request %q: unstructured 400 body %s", raw, body)
		}
	}
	// wrong method
	resp, err := http.Get(ts.URL + "/v1/simulations")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/simulations: %d, want 405", resp.StatusCode)
	}
}

func TestDriversEndpoint(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/drivers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var infos []driverInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	// The endpoint is the registry, verbatim: every registered driver,
	// in Names() order, each with a non-empty schema. A driver added to
	// the registry shows up here with no server change.
	names := gossip.Names()
	if len(infos) != len(names) {
		t.Fatalf("%d drivers listed, registry has %d (%v)", len(infos), len(names), names)
	}
	for i, info := range infos {
		if info.Name != names[i] {
			t.Fatalf("driver %d is %q, registry order says %q", i, info.Name, names[i])
		}
		if info.Description == "" {
			t.Fatalf("driver %q has no description", info.Name)
		}
		if len(info.RequestKeys) == 0 || len(info.Options) == 0 {
			t.Fatalf("driver %q missing schema: %+v", info.Name, info)
		}
		for _, o := range info.Options {
			if o.Name == "" || o.Doc == "" {
				t.Fatalf("driver %q option undocumented: %+v", info.Name, o)
			}
		}
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	postJob(t, ts.URL, pushPullReq())
	postJob(t, ts.URL, pushPullReq())
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"gossipd_jobs_completed_total 1",
		"gossipd_cache_hits_total 1",
		"gossipd_cache_misses_total 1",
		"gossipd_cache_entries 1",
		"gossipd_rounds_simulated_total",
		"gossipd_pool_slots",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

// waitFor polls cond for up to ~2s; used where a handler's bookkeeping
// trails the observable HTTP effect by a scheduler beat.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 400; i++ {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition never held")
}

// TestAllDriversServable smoke-runs every registered driver through the
// HTTP path on one topology: the service must expose the whole registry.
func TestAllDriversServable(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	for _, name := range []string{"auto", "dtg", "flood", "pattern", "push-pull", "rr", "spanner", "superstep"} {
		req := Request{Driver: name, Graph: GraphSpec{Family: "grid", N: 9, Latency: 2}, Seed: 1}
		if name == "spanner" || name == "auto" {
			req.KnownLatencies = boolp(true)
		}
		status, _, body := postJob(t, ts.URL, req)
		if status != http.StatusOK {
			t.Fatalf("%s: status %d (%s)", name, status, body)
		}
		events := decodeStream(t, body)
		last := events[len(events)-1]
		if last["event"] != "result" {
			t.Fatalf("%s: ended with %+v", name, last)
		}
		if res := last["result"].(map[string]any); res["completed"] != true {
			t.Fatalf("%s: incomplete: %+v", name, res)
		}
	}
}

// TestCacheDisabled pins the negative-CacheSize escape hatch: every
// identical sequential request re-executes (miss), still byte-identical.
func TestCacheDisabled(t *testing.T) {
	srv := New(Config{CacheSize: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	_, cache1, body1 := postJob(t, ts.URL, pushPullReq())
	_, cache2, body2 := postJob(t, ts.URL, pushPullReq())
	if cache1 != "miss" || cache2 != "miss" {
		t.Fatalf("cache %q/%q with caching disabled, want miss/miss", cache1, cache2)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("uncached re-execution diverged")
	}
	if m := srv.Metrics(); m.CacheEntries != 0 || m.CacheMisses != 2 {
		t.Fatalf("metrics %+v", m)
	}
	// Concurrent identical requests must not coalesce either: caching
	// off means every request is its own execution.
	var wg sync.WaitGroup
	results := make(chan string, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, cache, body := postJob(t, ts.URL, pushPullReq())
			if !bytes.Equal(body, body1) {
				t.Error("uncached concurrent execution diverged")
			}
			results <- cache
		}()
	}
	wg.Wait()
	close(results)
	for cache := range results {
		if cache != "miss" {
			t.Fatalf("concurrent request served %q with caching disabled, want miss", cache)
		}
	}
	if m := srv.Metrics(); m.CacheMisses != 6 || m.CacheHits != 0 {
		t.Fatalf("metrics after concurrent phase: %+v", m)
	}
}

// TestValidateCapsBuiltNodeCount: the MaxN cap applies to what the
// family builds, so a ring cannot multiply past it via layers.
func TestValidateCapsBuiltNodeCount(t *testing.T) {
	s := New(Config{MaxN: 1000})
	if _, ferr := s.validate(Request{Driver: "push-pull",
		Graph: GraphSpec{Family: "ring", N: 100, Latency: 1, Layers: 11}}); ferr == nil || ferr.Field != "graph.n" {
		t.Fatalf("ring 11x100=1100 nodes accepted past MaxN=1000: %v", ferr)
	}
	if _, ferr := s.validate(Request{Driver: "push-pull",
		Graph: GraphSpec{Family: "dumbbell", N: 501, Latency: 1}}); ferr == nil || ferr.Field != "graph.n" {
		t.Fatalf("dumbbell 2x501=1002 nodes accepted past MaxN=1000: %v", ferr)
	}
	if _, ferr := s.validate(Request{Driver: "push-pull",
		Graph: GraphSpec{Family: "dumbbell", N: 500, Latency: 1}}); ferr != nil {
		t.Fatalf("dumbbell 1000 nodes rejected at MaxN=1000: %v", ferr)
	}
}
