package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// postSweep submits a sweep and returns status, cache header and body.
func postSweep(t *testing.T, url string, req SweepRequest) (int, string, []byte) {
	t.Helper()
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/sweeps", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get(CacheHeader), body
}

func pushPullSweep() SweepRequest {
	return SweepRequest{
		Base:      pushPullReq(),
		ForkRound: 4,
		Variants: []SweepVariant{
			{}, // control: inherits everything, must equal the cold run
			{FaultSpec: strp("loss=0.4")},
			{MaxRounds: intp(6)},
		},
	}
}

// TestSweepStreamShape pins the sweep wire contract: accepted (with
// variants and fork_round), per-variant sections in index order, and a
// sweep_result tally — and the control variant's result equals the cold
// /v1/simulations run of the base request (warm ≡ cold).
func TestSweepStreamShape(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	status, cache, body := postSweep(t, ts.URL, pushPullSweep())
	if status != http.StatusOK || cache != "miss" {
		t.Fatalf("status %d cache %q, want 200 miss", status, cache)
	}
	events := decodeStream(t, body)
	acc := events[0]
	if acc["event"] != "accepted" || acc["driver"] != "push-pull" ||
		acc["variants"] != 3.0 || acc["fork_round"] != 4.0 || acc["request_key"] == "" {
		t.Fatalf("bad sweep accepted event: %+v", acc)
	}
	last := events[len(events)-1]
	if last["event"] != "sweep_result" || last["variants"] != 3.0 ||
		last["completed"] != 3.0 || last["errors"] != 0.0 || last["total_rounds"].(float64) <= 0 {
		t.Fatalf("bad sweep_result: %+v", last)
	}

	// Variant sections arrive in index order; each carries a distinct
	// content-address key and ends with a result event.
	var order []float64
	keys := map[string]bool{}
	var variantResults []map[string]any
	for i, ev := range events[1 : len(events)-1] {
		switch ev["event"] {
		case "variant":
			order = append(order, ev["index"].(float64))
			keys[ev["request_key"].(string)] = true
		case "result":
			variantResults = append(variantResults, ev["result"].(map[string]any))
		case "progress":
		default:
			t.Fatalf("unexpected mid-stream event %d: %+v", i, ev)
		}
	}
	if !reflect.DeepEqual(order, []float64{0, 1, 2}) || len(keys) != 3 || len(variantResults) != 3 {
		t.Fatalf("variant sections: order %v, %d keys, %d results", order, len(keys), len(variantResults))
	}

	// Control variant ≡ cold run (the sweep acceptance criterion at the
	// HTTP layer: the fork round is invisible in the results).
	_, _, coldBody := postJob(t, ts.URL, pushPullReq())
	coldEvents := decodeStream(t, coldBody)
	coldRes := coldEvents[len(coldEvents)-1]["result"].(map[string]any)
	if !reflect.DeepEqual(variantResults[0], coldRes) {
		t.Fatalf("control variant diverges from cold run:\n warm %+v\n cold %+v", variantResults[0], coldRes)
	}
	// The lossy overlay actually bit after the fork.
	if variantResults[1]["dropped"].(float64) == 0 {
		t.Fatalf("loss=0.4 variant dropped nothing: %+v", variantResults[1])
	}
	// The shortened-horizon variant stopped at its horizon.
	if r := variantResults[2]["rounds"].(float64); r > 6 {
		t.Fatalf("max_rounds=6 variant ran %v rounds", r)
	}
}

// TestSweepCacheAndVariantReuse: an identical sweep replays
// byte-identically from cache; a different sweep sharing (base,
// fork_round, overlay) advertises the same variant content address, so
// its section is served from the store without a resume.
func TestSweepCacheAndVariantReuse(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, cache1, body1 := postSweep(t, ts.URL, pushPullSweep())
	_, cache2, body2 := postSweep(t, ts.URL, pushPullSweep())
	if cache1 != "miss" || cache2 != "hit" || !bytes.Equal(body1, body2) {
		t.Fatalf("sweep not memoized: %q/%q, bodies equal=%v", cache1, cache2, bytes.Equal(body1, body2))
	}

	variantKeys := func(body []byte) []string {
		var out []string
		for _, ev := range decodeStream(t, body) {
			if ev["event"] == "variant" {
				out = append(out, ev["request_key"].(string))
			}
		}
		return out
	}
	// Same base and fork, lossy overlay only: new sweep key (miss) but
	// the variant key matches sweep 1's lossy section — content reuse.
	subset := pushPullSweep()
	subset.Variants = subset.Variants[1:2]
	_, cache3, body3 := postSweep(t, ts.URL, subset)
	if cache3 != "miss" {
		t.Fatalf("subset sweep cache %q, want miss (different variant set)", cache3)
	}
	if got, want := variantKeys(body3)[0], variantKeys(body1)[1]; got != want {
		t.Fatalf("shared overlay got different content address: %s vs %s", got, want)
	}
	// The reused tail still yields the tally (tailSummary parses stored
	// bytes, not live results).
	ev3 := decodeStream(t, body3)
	if ev3[len(ev3)-1]["total_rounds"].(float64) == 0 {
		t.Fatalf("subset sweep lost its reused variant tally: %+v", ev3[len(ev3)-1])
	}
	if srv.Metrics().SweepsExecuted != 2 {
		t.Fatalf("sweeps executed %d, want 2", srv.Metrics().SweepsExecuted)
	}
}

// TestSweepValidation walks the 400 surface.
func TestSweepValidation(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	cases := []struct {
		name  string
		mut   func(*SweepRequest)
		field string
	}{
		{"pipeline driver", func(r *SweepRequest) { r.Base.Driver = "spanner" }, "base.driver"},
		{"bad base", func(r *SweepRequest) { r.Base.Graph.N = 1 }, "base.graph.n"},
		{"negative fork", func(r *SweepRequest) { r.ForkRound = -1 }, "fork_round"},
		{"no variants", func(r *SweepRequest) { r.Variants = nil }, "variants"},
		{"too many variants", func(r *SweepRequest) {
			r.Variants = make([]SweepVariant, maxSweepVariants+1)
		}, "variants"},
		{"bad overlay fault spec", func(r *SweepRequest) {
			r.Variants[0].FaultSpec = strp("loss=2.0")
		}, "variants[0].fault_spec"},
		{"horizon before fork", func(r *SweepRequest) {
			r.Variants[1].MaxRounds = intp(2)
		}, "variants[1].max_rounds"},
		{"overlay key driver rejects", func(r *SweepRequest) {
			r.Base.Driver = "flood"
			r.Base.Variant = nil
			r.Variants[2].MaxInPerRound = intp(4)
		}, "variants[2].max_in_per_round"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := pushPullSweep()
			tc.mut(&req)
			status, _, body := postSweep(t, ts.URL, req)
			if status != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (body %s)", status, body)
			}
			var out map[string]*FieldError
			if err := json.Unmarshal(body, &out); err != nil || out["error"] == nil {
				t.Fatalf("bad 400 body %s: %v", body, err)
			}
			if out["error"].Field != tc.field {
				t.Fatalf("error field %q, want %q (%s)", out["error"].Field, tc.field, out["error"].Message)
			}
		})
	}
}

// TestSweepTimeoutNotCached: a sweep past its deadline terminates with
// an error event and the next identical sweep executes again.
func TestSweepTimeoutNotCached(t *testing.T) {
	release := make(chan struct{})
	gated := true
	var mu sync.Mutex
	srv := New(Config{DefaultTimeout: 30 * time.Millisecond, gate: func(string) {
		mu.Lock()
		g := gated
		mu.Unlock()
		if g {
			<-release
		}
	}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, cache, body := postSweep(t, ts.URL, pushPullSweep())
	if status != http.StatusOK || cache != "miss" {
		t.Fatalf("status %d cache %q", status, cache)
	}
	events := decodeStream(t, body)
	last := events[len(events)-1]
	if last["event"] != "error" || !strings.Contains(last["error"].(map[string]any)["message"].(string), "timeout") {
		t.Fatalf("timed-out sweep ended with %+v", last)
	}

	mu.Lock()
	gated = false
	mu.Unlock()
	close(release)
	waitFor(t, func() bool { return srv.Metrics().Running == 0 })

	status, cache, body = postSweep(t, ts.URL, pushPullSweep())
	if status != http.StatusOK || cache != "miss" {
		t.Fatalf("retry status %d cache %q (timeouts must not be cached)", status, cache)
	}
	if ev := decodeStream(t, body); ev[len(ev)-1]["event"] != "sweep_result" {
		t.Fatalf("retry did not complete: %+v", ev[len(ev)-1])
	}
}

// TestSweepCoalescesConcurrentIdentical: concurrent identical sweeps
// execute once; followers replay the leader's bytes.
func TestSweepCoalescesConcurrentIdentical(t *testing.T) {
	entered := make(chan string, 8)
	release := make(chan struct{})
	srv := New(Config{gate: func(key string) {
		entered <- key
		<-release
	}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const clients = 4
	type res struct {
		cache string
		body  []byte
	}
	out := make(chan res, clients)
	for i := 0; i < clients; i++ {
		go func() {
			_, cache, body := postSweep(t, ts.URL, pushPullSweep())
			out <- res{cache, body}
		}()
	}
	<-entered // exactly one leader reached execution
	close(release)

	first := <-out
	misses, hits := 0, 0
	if first.cache == "miss" {
		misses++
	} else {
		hits++
	}
	for i := 1; i < clients; i++ {
		r := <-out
		if !bytes.Equal(r.body, first.body) {
			t.Fatalf("coalesced bodies differ")
		}
		if r.cache == "miss" {
			misses++
		} else {
			hits++
		}
	}
	if misses != 1 || hits != clients-1 {
		t.Fatalf("misses %d hits %d, want 1/%d", misses, hits, clients-1)
	}
	select {
	case k := <-entered:
		t.Fatalf("second execution started for %s", k)
	default:
	}
}
