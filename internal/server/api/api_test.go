package api

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestErrorDetailBackCompat pins the schema-1 → schema-2 decoding
// contract: the error event's payload used to be a bare string; clients
// built against this package must still decode streams persisted under
// schema 1 (the disk result store outlives releases).
func TestErrorDetailBackCompat(t *testing.T) {
	var old Event
	if err := json.Unmarshal([]byte(
		`{"schema_version":1,"event":"error","error":"graph family \"x\" unknown"}`), &old); err != nil {
		t.Fatal(err)
	}
	if old.Error == nil || old.Error.Message != `graph family "x" unknown` || old.Error.Field != "" {
		t.Fatalf("schema-1 error decoded as %+v", old.Error)
	}

	var cur Event
	if err := json.Unmarshal([]byte(
		`{"schema_version":2,"event":"error","error":{"field":"graph.family","message":"unknown"}}`), &cur); err != nil {
		t.Fatal(err)
	}
	if cur.Error == nil || cur.Error.Field != "graph.family" || cur.Error.Message != "unknown" {
		t.Fatalf("schema-2 error decoded as %+v", cur.Error)
	}

	// The error stringer is stable (loadgen and the CLI print it).
	if got := cur.Error.Error(); got != "graph.family: unknown" {
		t.Fatalf("Error() = %q", got)
	}
	if got := old.Error.Error(); got != `graph family "x" unknown` {
		t.Fatalf("fieldless Error() = %q", got)
	}
}

// TestJobSpecBackCompat: request payloads written before the estimates
// release (no progress_points, no estimate envelope) decode unchanged,
// and progress_points stays out of the serialized form when unset so
// old clients' bytes round-trip.
func TestJobSpecBackCompat(t *testing.T) {
	old := `{"driver":"push-pull","graph":{"family":"dumbbell","n":8,"latency":12},"seed":3,"fault_spec":"loss=0.1","workers":4,"timeout_ms":500}`
	var spec JobSpec
	dec := json.NewDecoder(strings.NewReader(old))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		t.Fatalf("pre-estimates payload rejected: %v", err)
	}
	if spec.Driver != "push-pull" || spec.Graph.N != 8 || spec.FaultSpec != "loss=0.1" || spec.ProgressPoints != nil {
		t.Fatalf("decoded %+v", spec)
	}
	out, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var round map[string]any
	if err := json.Unmarshal(out, &round); err != nil {
		t.Fatal(err)
	}
	if _, leaked := round["progress_points"]; leaked {
		t.Fatalf("unset progress_points serialized: %s", out)
	}
}

// TestEventUnionCoversEstimate: the line-scanning union decodes every
// estimate event shape the server emits.
func TestEventUnionCoversEstimate(t *testing.T) {
	score := 0.25
	lines := []any{
		EstimateProgress{SchemaVersion: SchemaVersion, Event: "progress", Stage: "coarse",
			Candidate: EstimateCandidate{Loss: 0.2, Churn: 1, Scale: 2}, Score: &score, Evaluated: 3},
		Estimate{SchemaVersion: SchemaVersion, Event: "estimate",
			Best: EstimateCandidate{Loss: 0.2}, FaultSpec: "loss=0.2", Score: 0,
			Residual: EstimateResidual{RoundsDelta: -1}, Candidates: 12, CoarseScore: 0.5},
	}
	for _, src := range lines {
		raw, err := json.Marshal(src)
		if err != nil {
			t.Fatal(err)
		}
		var ev Event
		if err := json.Unmarshal(raw, &ev); err != nil {
			t.Fatalf("union rejected %s: %v", raw, err)
		}
		switch ev.Event {
		case "progress":
			if ev.Stage != "coarse" || ev.Candidate == nil || ev.Candidate.Scale != 2 || ev.Score == nil || *ev.Score != score {
				t.Fatalf("progress decoded as %+v", ev)
			}
		case "estimate":
			if ev.Best == nil || ev.Best.Loss != 0.2 || ev.FaultSpec != "loss=0.2" || ev.Residual == nil || ev.Residual.RoundsDelta != -1 {
				t.Fatalf("estimate decoded as %+v", ev)
			}
		}
	}
}
