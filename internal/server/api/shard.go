package api

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"gossip/internal/sim"
)

// Shard RPC wire format — the distributed-execution half of the schema.
//
// A coordinator drives each worker over one hijacked HTTP connection
// (POST ShardPath with an Upgrade handshake). After the 101 response the
// connection speaks length-prefixed binary frames, both directions:
//
//	[4-byte big-endian payload length][1-byte kind][payload]
//
// The coordinator opens with one FrameJob (JSON ShardJob). The worker
// then emits exactly one frame per round barrier — FrameRound, or
// FrameMeta for the metadata sub-barrier — and blocks until the
// coordinator relays the whole bundle back (Shards frames in shard
// order, the sender's own included). The session ends with one
// FrameResult from the worker, or FrameError from either side.
//
// Frame payloads are varint-packed (binary.AppendUvarint); the round
// frames are the hot path the distributed merge pays per barrier, so the
// encoding ships only what the remote merge cannot cheaply derive: the
// resolved neighbor, its reverse adjacency index and the latency ride
// along with each intent precisely so receivers never consult a CSR
// adjacency row during the merge.
const (
	// ShardPath is the worker-side endpoint of the shard RPC.
	ShardPath = "/v1/cluster/shard"
	// ShardProtocol is the Upgrade token of the handshake; it carries the
	// wire-format version. Version 2 added the per-shard leader summaries
	// (LeadPre/LeadPost) to the round frame; a mixed-version fleet fails
	// the handshake instead of mis-framing.
	ShardProtocol = "gossipd-shard/2"
	// ForwardedHeader marks a simulation request forwarded by a fleet
	// member to the cache key's owner; its value is the forwarder's
	// advertised address. A request carrying it is never re-forwarded.
	ForwardedHeader = "X-Gossipd-Forwarded"
)

// Frame kinds.
const (
	FrameJob    byte = 1 // coordinator → worker: JSON ShardJob
	FrameRound  byte = 2 // both directions: one round-barrier frame
	FrameMeta   byte = 3 // both directions: one meta-sub-barrier frame
	FrameResult byte = 4 // worker → coordinator: terminal shard result
	FrameError  byte = 5 // either direction: terminal error message
)

// MaxFramePayload bounds one frame (the largest legitimate frames are a
// shard-0 result carrying InformedAt at n=2²⁰, a few MiB varint-packed).
const MaxFramePayload = 1 << 28

// ShardJob is the FrameJob payload: the worker's assignment. Request is
// the coordinator's canonical request JSON; the worker re-derives its
// own request key from it and refuses on mismatch, so a version-skewed
// fleet fails loudly instead of diverging.
type ShardJob struct {
	SchemaVersion int    `json:"schema_version"`
	Shard         int    `json:"shard"`
	Shards        int    `json:"shards"`
	RequestKey    string `json:"request_key"`
	// TimeoutMS is the coordinator's effective per-job execution timeout.
	// The worker derives its session idle window from it (plus relay
	// slack, clamped to the worker's own ceiling): once the coordinator
	// has abandoned the job, a worker waiting longer only pins a dead
	// session. Zero (an older coordinator) means the worker's ceiling.
	TimeoutMS int             `json:"timeout_ms,omitempty"`
	Request   json.RawMessage `json:"request"`
}

// ShardResult is the decoded FrameResult payload: the worker's partial
// counters (owner-attributed, summed by the coordinator), the
// shard-replicated terminal state (identical on every worker — the
// coordinator cross-checks Hash), and the worker's execution stats.
// InformedAt is shipped by shard 0 only; the other shards prove their
// replica agrees through Hash.
type ShardResult struct {
	Rounds       int
	Completed    bool
	Exchanges    int64
	Messages     int64
	Dropped      int64
	Delivered    int64
	RumorPayload int64
	Hash         uint64
	InformedAt   []int
	Stats        sim.DistStats
}

// WriteFrame emits one frame. The caller flushes any buffering.
func WriteFrame(w io.Writer, kind byte, payload []byte) error {
	if len(payload) > MaxFramePayload {
		return fmt.Errorf("api: %d-byte shard frame exceeds the %d cap", len(payload), MaxFramePayload)
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = kind
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame, appending the payload to buf (pass a
// truncated scratch buffer to amortize allocation; the returned slice
// aliases it).
func ReadFrame(r io.Reader, buf []byte) (kind byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > MaxFramePayload {
		return 0, nil, fmt.Errorf("api: %d-byte shard frame exceeds the %d cap", n, MaxFramePayload)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	return hdr[4], buf, nil
}

// Round-frame flag bits.
const (
	flagPending     = 1 << 0
	flagIdle        = 1 << 1
	flagCalled      = 1 << 2
	flagWaiting     = 1 << 3
	flagDonePre     = 1 << 4
	flagDonePost    = 1 << 5
	flagMetaCapable = 1 << 6
)

// appendWake encodes a wake round where sim.WakeOnDelivery means
// "never": 0 is the sentinel, any real round r ships as r+1.
func appendWake(dst []byte, r int) []byte {
	if r == sim.WakeOnDelivery {
		return binary.AppendUvarint(dst, 0)
	}
	return binary.AppendUvarint(dst, uint64(r)+1)
}

func readWake(p []byte) (int, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, fmt.Errorf("api: truncated wake varint")
	}
	if v == 0 {
		return sim.WakeOnDelivery, p[n:], nil
	}
	return int(v) - 1, p[n:], nil
}

func readUvarint(p []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, fmt.Errorf("api: truncated varint")
	}
	return v, p[n:], nil
}

// AppendRoundFrame varint-packs one round-barrier frame.
func AppendRoundFrame(dst []byte, f *sim.DistFrame) []byte {
	dst = binary.AppendUvarint(dst, uint64(f.Round))
	dst = binary.AppendUvarint(dst, uint64(f.Shard))
	var flags byte
	if f.Pending {
		flags |= flagPending
	}
	if f.Idle {
		flags |= flagIdle
	}
	if f.Called {
		flags |= flagCalled
	}
	if f.Waiting {
		flags |= flagWaiting
	}
	if f.DonePre {
		flags |= flagDonePre
	}
	if f.DonePost {
		flags |= flagDonePost
	}
	if f.MetaCapable {
		flags |= flagMetaCapable
	}
	dst = append(dst, flags)
	dst = appendWake(dst, f.MinWake)
	dst = appendWake(dst, f.SleeperWake)
	// NextDeliver uses -1 as "no pending delivery"; shift by one.
	dst = binary.AppendUvarint(dst, uint64(f.NextDeliver+1))
	// Leader summaries use sentinels down to sim.LeaderAgnostic (-2);
	// shift by two.
	dst = binary.AppendUvarint(dst, uint64(f.LeadPre+2))
	dst = binary.AppendUvarint(dst, uint64(f.LeadPost+2))
	dst = binary.AppendUvarint(dst, uint64(len(f.Intents)))
	for i := range f.Intents {
		in := &f.Intents[i]
		dst = binary.AppendUvarint(dst, uint64(in.U))
		dst = binary.AppendUvarint(dst, uint64(in.Idx))
		dst = binary.AppendUvarint(dst, uint64(in.V))
		dst = binary.AppendUvarint(dst, uint64(in.VIdx))
		packed := uint64(in.Lat) << 1
		if in.Lost {
			packed |= 1
		}
		dst = binary.AppendUvarint(dst, packed)
	}
	dst = binary.AppendUvarint(dst, uint64(len(f.Gains)))
	for _, g := range f.Gains {
		dst = binary.AppendUvarint(dst, uint64(g.Node))
		dst = binary.AppendUvarint(dst, uint64(g.Rumor))
	}
	dst = binary.AppendUvarint(dst, uint64(len(f.Err)))
	dst = append(dst, f.Err...)
	return dst
}

// DecodeRoundFrame unpacks p into f, reusing f's slice capacity.
func DecodeRoundFrame(p []byte, f *sim.DistFrame) error {
	var v uint64
	var err error
	if v, p, err = readUvarint(p); err != nil {
		return err
	}
	f.Round = int(v)
	if v, p, err = readUvarint(p); err != nil {
		return err
	}
	f.Shard = int(v)
	if len(p) < 1 {
		return fmt.Errorf("api: truncated round frame flags")
	}
	flags := p[0]
	p = p[1:]
	f.Pending = flags&flagPending != 0
	f.Idle = flags&flagIdle != 0
	f.Called = flags&flagCalled != 0
	f.Waiting = flags&flagWaiting != 0
	f.DonePre = flags&flagDonePre != 0
	f.DonePost = flags&flagDonePost != 0
	f.MetaCapable = flags&flagMetaCapable != 0
	if f.MinWake, p, err = readWake(p); err != nil {
		return err
	}
	if f.SleeperWake, p, err = readWake(p); err != nil {
		return err
	}
	if v, p, err = readUvarint(p); err != nil {
		return err
	}
	f.NextDeliver = int(v) - 1
	if v, p, err = readUvarint(p); err != nil {
		return err
	}
	f.LeadPre = int32(v) - 2
	if v, p, err = readUvarint(p); err != nil {
		return err
	}
	f.LeadPost = int32(v) - 2
	if v, p, err = readUvarint(p); err != nil {
		return err
	}
	f.Intents = f.Intents[:0]
	for i := uint64(0); i < v; i++ {
		var in sim.DistIntent
		var u uint64
		if u, p, err = readUvarint(p); err != nil {
			return err
		}
		in.U = int32(u)
		if u, p, err = readUvarint(p); err != nil {
			return err
		}
		in.Idx = int32(u)
		if u, p, err = readUvarint(p); err != nil {
			return err
		}
		in.V = int32(u)
		if u, p, err = readUvarint(p); err != nil {
			return err
		}
		in.VIdx = int32(u)
		if u, p, err = readUvarint(p); err != nil {
			return err
		}
		in.Lost = u&1 != 0
		in.Lat = int32(u >> 1)
		f.Intents = append(f.Intents, in)
	}
	if v, p, err = readUvarint(p); err != nil {
		return err
	}
	f.Gains = f.Gains[:0]
	for i := uint64(0); i < v; i++ {
		var g sim.DistGain
		var u uint64
		if u, p, err = readUvarint(p); err != nil {
			return err
		}
		g.Node = int32(u)
		if u, p, err = readUvarint(p); err != nil {
			return err
		}
		g.Rumor = int32(u)
		f.Gains = append(f.Gains, g)
	}
	if v, p, err = readUvarint(p); err != nil {
		return err
	}
	if uint64(len(p)) != v {
		return fmt.Errorf("api: round frame error-string length %d, %d bytes remain", v, len(p))
	}
	f.Err = string(p)
	return nil
}

// AppendMetaFrame varint-packs one meta-sub-barrier frame.
func AppendMetaFrame(dst []byte, f *sim.DistMetaFrame) []byte {
	dst = binary.AppendUvarint(dst, uint64(f.Round))
	dst = binary.AppendUvarint(dst, uint64(f.Shard))
	dst = binary.AppendUvarint(dst, uint64(len(f.Metas)))
	for i := range f.Metas {
		m := &f.Metas[i]
		dst = binary.AppendUvarint(dst, uint64(m.Node))
		dst = binary.AppendUvarint(dst, uint64(len(m.Meta)))
		for _, r := range m.Meta {
			dst = binary.AppendUvarint(dst, uint64(r))
		}
	}
	return dst
}

// DecodeMetaFrame unpacks p into f, reusing f's outer slice capacity.
func DecodeMetaFrame(p []byte, f *sim.DistMetaFrame) error {
	var v uint64
	var err error
	if v, p, err = readUvarint(p); err != nil {
		return err
	}
	f.Round = int(v)
	if v, p, err = readUvarint(p); err != nil {
		return err
	}
	f.Shard = int(v)
	if v, p, err = readUvarint(p); err != nil {
		return err
	}
	f.Metas = f.Metas[:0]
	for i := uint64(0); i < v; i++ {
		var m sim.DistNodeMeta
		var u uint64
		if u, p, err = readUvarint(p); err != nil {
			return err
		}
		m.Node = int32(u)
		if u, p, err = readUvarint(p); err != nil {
			return err
		}
		m.Meta = make([]int32, 0, u)
		for j := uint64(0); j < u; j++ {
			var r uint64
			if r, p, err = readUvarint(p); err != nil {
				return err
			}
			m.Meta = append(m.Meta, int32(r))
		}
		f.Metas = append(f.Metas, m)
	}
	if len(p) != 0 {
		return fmt.Errorf("api: %d trailing bytes after meta frame", len(p))
	}
	return nil
}

// InformedHash folds the shard-replicated terminal state into the
// cross-check value every worker ships (FNV-1a over Rounds, Completed
// and the InformedAt array). Coordinator-side inequality means the
// replicas diverged — a bug, reported as an error rather than a result.
func InformedHash(rounds int, completed bool, informedAt []int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(rounds))
	if completed {
		mix(1)
	} else {
		mix(0)
	}
	mix(uint64(len(informedAt)))
	for _, r := range informedAt {
		mix(uint64(int64(r)))
	}
	return h
}

// AppendShardResult varint-packs the terminal result frame.
func AppendShardResult(dst []byte, r *ShardResult) []byte {
	dst = binary.AppendUvarint(dst, uint64(r.Rounds))
	if r.Completed {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = binary.AppendUvarint(dst, uint64(r.Exchanges))
	dst = binary.AppendUvarint(dst, uint64(r.Messages))
	dst = binary.AppendUvarint(dst, uint64(r.Dropped))
	dst = binary.AppendUvarint(dst, uint64(r.Delivered))
	dst = binary.AppendUvarint(dst, uint64(r.RumorPayload))
	dst = binary.AppendUvarint(dst, r.Hash)
	if r.InformedAt != nil {
		dst = append(dst, 1)
		dst = binary.AppendUvarint(dst, uint64(len(r.InformedAt)))
		for _, at := range r.InformedAt {
			// -1 means never informed; shift by one.
			dst = binary.AppendUvarint(dst, uint64(at+1))
		}
	} else {
		dst = append(dst, 0)
	}
	st := &r.Stats
	for _, v := range []int64{st.Rounds, st.Barriers, st.MetaBarriers, st.Intents, st.CrossIntents, st.Gains, st.ComputeNS, st.WaitNS} {
		dst = binary.AppendUvarint(dst, uint64(v))
	}
	return dst
}

// DecodeShardResult unpacks a terminal result frame.
func DecodeShardResult(p []byte) (*ShardResult, error) {
	r := &ShardResult{}
	var v uint64
	var err error
	if v, p, err = readUvarint(p); err != nil {
		return nil, err
	}
	r.Rounds = int(v)
	if len(p) < 1 {
		return nil, fmt.Errorf("api: truncated shard result")
	}
	r.Completed = p[0] == 1
	p = p[1:]
	for _, dst := range []*int64{&r.Exchanges, &r.Messages, &r.Dropped, &r.Delivered, &r.RumorPayload} {
		if v, p, err = readUvarint(p); err != nil {
			return nil, err
		}
		*dst = int64(v)
	}
	if r.Hash, p, err = readUvarint(p); err != nil {
		return nil, err
	}
	if len(p) < 1 {
		return nil, fmt.Errorf("api: truncated shard result")
	}
	hasInformed := p[0] == 1
	p = p[1:]
	if hasInformed {
		if v, p, err = readUvarint(p); err != nil {
			return nil, err
		}
		r.InformedAt = make([]int, v)
		for i := range r.InformedAt {
			var at uint64
			if at, p, err = readUvarint(p); err != nil {
				return nil, err
			}
			r.InformedAt[i] = int(at) - 1
		}
	}
	st := &r.Stats
	for _, dst := range []*int64{&st.Rounds, &st.Barriers, &st.MetaBarriers, &st.Intents, &st.CrossIntents, &st.Gains, &st.ComputeNS, &st.WaitNS} {
		if v, p, err = readUvarint(p); err != nil {
			return nil, err
		}
		*dst = int64(v)
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("api: %d trailing bytes after shard result", len(p))
	}
	return r, nil
}
