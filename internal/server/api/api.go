// Package api is the wire schema of the gossipd NDJSON streams, shared
// by the server, the gossipd CLI, the loadgen client and the tests so
// the event shapes exist in exactly one place.
//
// # Streams
//
// POST /v1/simulations responds with: one "accepted" event, zero or
// more "progress" events (the informed-count curve), then exactly one
// "result" or "error" event.
//
// POST /v1/sweeps responds with: one "accepted" event (carrying
// variants and fork_round), then per variant in index order one
// "variant" event followed by that variant's progress and result (or
// error) events, then exactly one "sweep_result" event.
//
// Every event carries schema_version.
//
// # Schema versioning policy
//
// SchemaVersion bumps only on breaking changes to events that already
// exist: renaming or removing a field, changing a field's type or
// meaning, or reordering the stream's required events. Additions are
// not breaking and do not bump the version — new event types, new
// endpoints, and new fields marked omitempty (clients must ignore
// unknown fields and unknown event types). The sweep events, for
// example, extend schema 1: an "accepted" event from /v1/simulations
// is byte-identical to what it was before sweeps existed.
package api

// SchemaVersion stamps every NDJSON event so clients can detect stream
// format changes, mirroring the experiment JSON artifact convention.
const SchemaVersion = 1

// ContentType is the response media type of the event streams.
const ContentType = "application/x-ndjson"

// CacheHeader reports whether the response body was replayed from the
// request cache ("hit") or computed by this request ("miss"). It lives
// in a header — never in the body — so identical requests produce
// byte-identical bodies whether cold or cached.
const CacheHeader = "X-Gossipd-Cache"

// Accepted opens every stream. Variants and ForkRound are set only on
// sweep streams (omitempty keeps simulation bodies byte-stable).
type Accepted struct {
	SchemaVersion int    `json:"schema_version"`
	Event         string `json:"event"` // "accepted"
	Driver        string `json:"driver"`
	RequestKey    string `json:"request_key"`
	Variants      int    `json:"variants,omitempty"`
	ForkRound     *int   `json:"fork_round,omitempty"`
}

// Progress is one point of the informed-count curve.
type Progress struct {
	SchemaVersion int    `json:"schema_version"`
	Event         string `json:"event"` // "progress"
	Round         int    `json:"round"`
	Informed      int    `json:"informed"`
}

// Result terminates a successful simulation (or one sweep variant).
type Result struct {
	SchemaVersion int       `json:"schema_version"`
	Event         string    `json:"event"` // "result"
	Result        JobResult `json:"result"`
}

// Error terminates a failed simulation, sweep, or sweep variant.
type Error struct {
	SchemaVersion int    `json:"schema_version"`
	Event         string `json:"event"` // "error"
	Error         string `json:"error"`
}

// Variant announces one sweep variant's section of the stream; the
// variant's progress and result (or error) events follow. RequestKey is
// the variant's content address — the same key a later sweep sharing
// this base, fork round and overlay would reuse.
type Variant struct {
	SchemaVersion int    `json:"schema_version"`
	Event         string `json:"event"` // "variant"
	Index         int    `json:"index"`
	RequestKey    string `json:"request_key"`
}

// SweepResult terminates a sweep stream: the variant tally and the
// rounds summed over successful variants.
type SweepResult struct {
	SchemaVersion int    `json:"schema_version"`
	Event         string `json:"event"` // "sweep_result"
	Variants      int    `json:"variants"`
	Completed     int    `json:"completed"`
	Errors        int    `json:"errors"`
	TotalRounds   int64  `json:"total_rounds"`
}

// JobResult is the final payload of a successful job: the normalized
// DriverResult transport totals. InformedAt is deliberately absent (it
// is O(n)); its shape is carried by the progress events instead.
type JobResult struct {
	Rounds       int    `json:"rounds"`
	Completed    bool   `json:"completed"`
	Exchanges    int64  `json:"exchanges"`
	Messages     int64  `json:"messages,omitempty"`
	Dropped      int64  `json:"dropped"`
	Delivered    int64  `json:"delivered"`
	RumorPayload int64  `json:"rumor_payload"`
	Winner       string `json:"winner,omitempty"`
}

// Event is the decode-side union: every field of every event type, for
// clients that scan a stream line by line and switch on Event.
type Event struct {
	SchemaVersion int        `json:"schema_version"`
	Event         string     `json:"event"`
	Driver        string     `json:"driver,omitempty"`
	RequestKey    string     `json:"request_key,omitempty"`
	Round         int        `json:"round,omitempty"`
	Informed      int        `json:"informed,omitempty"`
	Error         string     `json:"error,omitempty"`
	Result        *JobResult `json:"result,omitempty"`
	Index         int        `json:"index,omitempty"`
	Variants      int        `json:"variants,omitempty"`
	ForkRound     *int       `json:"fork_round,omitempty"`
	Completed     int        `json:"completed,omitempty"`
	Errors        int        `json:"errors,omitempty"`
	TotalRounds   int64      `json:"total_rounds,omitempty"`
}
