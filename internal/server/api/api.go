// Package api is the wire schema of the gossipd NDJSON streams and the
// /v1 request envelopes, shared by the server, the gossipd CLI, the
// loadgen client and the tests so the request and event shapes exist in
// exactly one place.
//
// # Streams
//
// POST /v1/simulations responds with: one "accepted" event, zero or
// more "progress" events (the informed-count curve), then exactly one
// "result" or "error" event.
//
// POST /v1/sweeps responds with: one "accepted" event (carrying
// variants and fork_round), then per variant in index order one
// "variant" event followed by that variant's progress and result (or
// error) events, then exactly one "sweep_result" event.
//
// POST /v1/estimates responds with: one "accepted" event, one
// "progress" event per scored candidate (carrying stage and candidate
// instead of the curve fields), then exactly one "estimate" or "error"
// event.
//
// Every event carries schema_version.
//
// # Schema versioning policy
//
// SchemaVersion bumps only on breaking changes to events that already
// exist: renaming or removing a field, changing a field's type or
// meaning, or reordering the stream's required events. Additions are
// not breaking and do not bump the version — new event types, new
// endpoints, and new fields marked omitempty (clients must ignore
// unknown fields and unknown event types). The sweep events, for
// example, extended schema 1 without a bump.
//
// Schema 2 (the estimates release) changed the "error" event's error
// field from a bare string to the structured ErrorDetail object that
// 400 responses always used — a type change on an existing field, the
// canonical breaking case. ErrorDetail.UnmarshalJSON still accepts the
// schema-1 string form, so clients built against this package decode
// old persisted streams.
package api

// SchemaVersion stamps every NDJSON event so clients can detect stream
// format changes, mirroring the experiment JSON artifact convention.
// Version 2: structured error events (see the versioning policy above).
const SchemaVersion = 2

// ContentType is the response media type of the event streams.
const ContentType = "application/x-ndjson"

// CacheHeader reports whether the response body was replayed from the
// request cache ("hit") or computed by this request ("miss"). It lives
// in a header — never in the body — so identical requests produce
// byte-identical bodies whether cold or cached.
const CacheHeader = "X-Gossipd-Cache"

// Accepted opens every stream. Variants and ForkRound are set only on
// sweep streams (omitempty keeps simulation bodies byte-stable).
type Accepted struct {
	SchemaVersion int    `json:"schema_version"`
	Event         string `json:"event"` // "accepted"
	Driver        string `json:"driver"`
	RequestKey    string `json:"request_key"`
	Variants      int    `json:"variants,omitempty"`
	ForkRound     *int   `json:"fork_round,omitempty"`
}

// Progress is one point of the informed-count curve.
type Progress struct {
	SchemaVersion int    `json:"schema_version"`
	Event         string `json:"event"` // "progress"
	Round         int    `json:"round"`
	Informed      int    `json:"informed"`
}

// Result terminates a successful simulation (or one sweep variant).
type Result struct {
	SchemaVersion int       `json:"schema_version"`
	Event         string    `json:"event"` // "result"
	Result        JobResult `json:"result"`
}

// Error terminates a failed simulation, sweep, estimate, or sweep
// variant. Since schema 2 the error field is the same ErrorDetail
// object the 400 response body uses, so clients handle one error shape
// everywhere.
type Error struct {
	SchemaVersion int         `json:"schema_version"`
	Event         string      `json:"event"` // "error"
	Error         ErrorDetail `json:"error"`
}

// Variant announces one sweep variant's section of the stream; the
// variant's progress and result (or error) events follow. RequestKey is
// the variant's content address — the same key a later sweep sharing
// this base, fork round and overlay would reuse.
type Variant struct {
	SchemaVersion int    `json:"schema_version"`
	Event         string `json:"event"` // "variant"
	Index         int    `json:"index"`
	RequestKey    string `json:"request_key"`
}

// SweepResult terminates a sweep stream: the variant tally and the
// rounds summed over successful variants.
type SweepResult struct {
	SchemaVersion int    `json:"schema_version"`
	Event         string `json:"event"` // "sweep_result"
	Variants      int    `json:"variants"`
	Completed     int    `json:"completed"`
	Errors        int    `json:"errors"`
	TotalRounds   int64  `json:"total_rounds"`
}

// JobResult is the final payload of a successful job: the normalized
// DriverResult transport totals. InformedAt is deliberately absent (it
// is O(n)); its shape is carried by the progress events instead.
type JobResult struct {
	Rounds       int    `json:"rounds"`
	Completed    bool   `json:"completed"`
	Exchanges    int64  `json:"exchanges"`
	Messages     int64  `json:"messages,omitempty"`
	Dropped      int64  `json:"dropped"`
	Delivered    int64  `json:"delivered"`
	RumorPayload int64  `json:"rumor_payload"`
	Winner       string `json:"winner,omitempty"`
}

// EstimateCandidate is one point of the estimator's parameter space:
// a uniform loss rate, a churn intensity (how many nodes cycle through
// leave/rejoin), and a latency scale — the conductance proxy, since
// scaling every edge latency dilates the mixing time without changing
// the topology.
type EstimateCandidate struct {
	Loss  float64 `json:"loss"`
	Churn int     `json:"churn"`
	Scale int     `json:"scale"`
}

// EstimateProgress is one scored candidate of an estimate stream. The
// event name is "progress" like the curve points, distinguished by the
// stage field ("coarse", "refine-1"…, "verify"). Score is absent when
// the candidate's simulation failed (Err says why).
type EstimateProgress struct {
	SchemaVersion int               `json:"schema_version"`
	Event         string            `json:"event"` // "progress"
	Stage         string            `json:"stage"`
	Candidate     EstimateCandidate `json:"candidate"`
	Score         *float64          `json:"score,omitempty"`
	Err           string            `json:"err,omitempty"`
	Evaluated     int               `json:"evaluated"`
}

// EstimateResidual reports how well the winning candidate's
// re-simulation reproduces the observed curve: the ICC-space distance
// plus the raw final-size and spread-time gaps.
type EstimateResidual struct {
	ICC                float64 `json:"icc"`
	FinalInformedDelta float64 `json:"final_informed_delta"`
	RoundsDelta        int     `json:"rounds_delta"`
}

// Estimate terminates a successful estimate stream: the fitted
// parameters, their adversity-DSL rendering (directly replayable as a
// /v1/simulations fault_spec), the verification residual, and the
// search tally.
type Estimate struct {
	SchemaVersion int               `json:"schema_version"`
	Event         string            `json:"event"` // "estimate"
	Best          EstimateCandidate `json:"best"`
	FaultSpec     string            `json:"fault_spec"`
	Score         float64           `json:"score"`
	Residual      EstimateResidual  `json:"residual"`
	Candidates    int               `json:"candidates"`
	CoarseScore   float64           `json:"coarse_score"`
}

// Event is the decode-side union: every field of every event type, for
// clients that scan a stream line by line and switch on Event.
type Event struct {
	SchemaVersion int                `json:"schema_version"`
	Event         string             `json:"event"`
	Driver        string             `json:"driver,omitempty"`
	RequestKey    string             `json:"request_key,omitempty"`
	Round         int                `json:"round,omitempty"`
	Informed      int                `json:"informed,omitempty"`
	Error         *ErrorDetail       `json:"error,omitempty"`
	Result        *JobResult         `json:"result,omitempty"`
	Index         int                `json:"index,omitempty"`
	Variants      int                `json:"variants,omitempty"`
	ForkRound     *int               `json:"fork_round,omitempty"`
	Completed     int                `json:"completed,omitempty"`
	Errors        int                `json:"errors,omitempty"`
	TotalRounds   int64              `json:"total_rounds,omitempty"`
	Stage         string             `json:"stage,omitempty"`
	Candidate     *EstimateCandidate `json:"candidate,omitempty"`
	Score         *float64           `json:"score,omitempty"`
	Evaluated     int                `json:"evaluated,omitempty"`
	Best          *EstimateCandidate `json:"best,omitempty"`
	FaultSpec     string             `json:"fault_spec,omitempty"`
	Residual      *EstimateResidual  `json:"residual,omitempty"`
	Candidates    int                `json:"candidates,omitempty"`
	CoarseScore   float64            `json:"coarse_score,omitempty"`
}
