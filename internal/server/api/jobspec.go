package api

import (
	"encoding/json"
	"fmt"
)

// This file is the request half of the /v1 surface: one JobSpec struct
// describes a simulation everywhere a simulation is asked for — as the
// body of POST /v1/simulations, as the base of a sweep, and as the
// reference of an estimate — so driver/graph/seed/fault-spec validation
// lives in exactly one server-side path regardless of which endpoint
// the spec arrived through.

// JobSpec is one simulation job. `driver` and `graph` are required;
// everything else defaults. The driver-specific fields (source,
// variant, ell, k, d, known_latencies, …) are validated against the
// driver's machine-readable options schema (gossip.Driver.RequestKeys)
// — setting a field the driver does not read is a 400, not a silent
// no-op.
type JobSpec struct {
	// Driver is a name or alias from the gossip driver registry.
	Driver string `json:"driver"`
	// Graph names the generated topology.
	Graph GraphSpec `json:"graph"`
	// Seed drives all randomness (graph generation and protocol); it is
	// the determinism anchor the response cache is keyed on.
	Seed uint64 `json:"seed"`
	// Workers shards intra-round simulation; results are bit-identical
	// for any value, so it is an execution knob excluded from the cache
	// key.
	Workers int `json:"workers,omitempty"`
	// Shards distributes the job across that many worker gossipd
	// processes (0 = run in this process; otherwise >= 2, at most the
	// fleet's worker count). Like workers, results are bit-identical for
	// any value, so it is an execution knob excluded from the cache key.
	// Requires a fleet (-peers) and a distributable driver.
	Shards int `json:"shards,omitempty"`
	// Transport selects the execution fabric: "" or "sim" is the
	// deterministic calendar engine; "chan" runs the same protocol code
	// on a real in-process goroutine mesh (gossip.RunNet over
	// transport.ChanMesh). Like workers and shards it is an execution
	// knob excluded from the cache key — but a real-transport run is
	// nondeterministic, so "chan" jobs additionally bypass the cache in
	// both directions: they never replay a memoized body and their own
	// results are never memoized. Requires a single-phase driver
	// (push-pull, flood) and a benign, unsharded request.
	Transport string `json:"transport,omitempty"`
	// MaxRounds overrides the driver's horizon (0 = driver default).
	MaxRounds int `json:"max_rounds,omitempty"`
	// FaultSpec is the adversity DSL (see package adversity), e.g.
	// "loss=0.1;churn=3:10-20:amnesia;flap=0-1:5-9;crash=4:6,7".
	FaultSpec string `json:"fault_spec,omitempty"`
	// TimeoutMS bounds job execution (not queue wait). Absent means the
	// server default; zero or negative is a 400; larger than the server
	// maximum is clamped. Excluded from the cache key.
	TimeoutMS *int `json:"timeout_ms,omitempty"`
	// ProgressPoints caps how many progress events the stream carries
	// (the curve is sampled evenly, first and last change points always
	// kept). Absent means 32, the historical cap; the admissible range
	// is [2, 4096]. Bodies are cached at full resolution and sampled at
	// serve time, so this is an execution knob excluded from the cache
	// key: two requests differing only here share one execution.
	ProgressPoints *int `json:"progress_points,omitempty"`

	// Driver-specific options; see GET /v1/drivers for which driver
	// accepts which. Every key a driver's request_keys advertises is
	// settable here (pinned by TestRequestCoversDriverSchemas).
	Source         *int    `json:"source,omitempty"`
	Sources        []int   `json:"sources,omitempty"`
	Objective      *string `json:"objective,omitempty"`
	Variant        *string `json:"variant,omitempty"`
	Ell            *int    `json:"ell,omitempty"`
	K              *int    `json:"k,omitempty"`
	D              *int    `json:"d,omitempty"`
	Budget         *int    `json:"budget,omitempty"`
	KnownLatencies *bool   `json:"known_latencies,omitempty"`
	MaxInPerRound  *int    `json:"max_in_per_round,omitempty"`
	FaultTolerant  *bool   `json:"fault_tolerant,omitempty"`
	LBTimeout      *int    `json:"lb_timeout,omitempty"`
	SkipCheck      *bool   `json:"skip_check,omitempty"`
	SuspectAfter   *int    `json:"suspect_after,omitempty"`
	StableRounds   *int    `json:"stable_rounds,omitempty"`
}

// GraphSpec is the request form of graphgen.Spec.
type GraphSpec struct {
	// Family is one of graphgen.Families().
	Family string `json:"family"`
	// N follows the CLI -n semantics (per-side for dumbbell/gadget,
	// per-layer for ring); every family yields at least N nodes.
	N int `json:"n"`
	// Latency (0 = 1), P (0 = 0.3, er/gadget only) and Layers (0 = 6,
	// ring only) mirror the CLI flags.
	Latency int     `json:"latency,omitempty"`
	P       float64 `json:"p,omitempty"`
	Layers  int     `json:"layers,omitempty"`
}

// SweepRequest is the JSON body of POST /v1/sweeps: one base simulation
// plus mid-run parameter divergences. The server runs the base job once
// up to fork_round, freezes the engine there (gossip.Fork), and resumes
// the shared warm prefix once per variant — so a 16-variant sweep pays
// for the common prefix once instead of 16 times. The base must name a
// single-phase driver (push-pull, flood, dtg, superstep, rr); the
// multi-phase pipelines have no single engine to freeze and are a 400.
type SweepRequest struct {
	// Base is a complete simulation job spec: it defines the shared
	// prefix and every knob the variants do not override.
	Base JobSpec `json:"base"`
	// ForkRound is the round barrier the prefix is frozen at. The engine
	// freezes at the first processed round >= ForkRound (event-driven
	// rounds can jump); a fork past the end of the base run degenerates
	// to the finished run for every variant.
	ForkRound int `json:"fork_round"`
	// Variants are the divergences, applied from the fork round on. A
	// nil field inherits the base value; at least one variant required.
	Variants []SweepVariant `json:"variants"`
}

// SweepVariant overrides the divergence-safe knobs of the base request.
// Everything else — topology, seed, source, objective, protocol
// parameters — shaped the prefix and is frozen (see gossip.WarmPrefix).
type SweepVariant struct {
	// FaultSpec replaces the base fault schedule from the fork round on
	// (adversity DSL; "" clears it). Loss draws fresh per-variant random
	// streams; scheduled events dated before the fork round are skipped.
	FaultSpec *string `json:"fault_spec,omitempty"`
	// MaxRounds replaces the base horizon (0 = driver default). It must
	// not land before fork_round.
	MaxRounds *int `json:"max_rounds,omitempty"`
	// MaxInPerRound replaces the base in-degree cap, for drivers that
	// accept it.
	MaxInPerRound *int `json:"max_in_per_round,omitempty"`
}

// CurvePoint is one point of an observed cumulative informed curve
// submitted for estimation: Informed nodes were informed at or before
// Round. Rounds must be strictly increasing, counts finite, positive
// and non-decreasing.
type CurvePoint struct {
	Round    int     `json:"round"`
	Informed float64 `json:"informed"`
}

// EstimateGrid bounds the coarse search lattice. The zero value (and an
// absent grid) defaults per the graph size; see the README's
// "Estimating parameters" section for the defaults.
type EstimateGrid struct {
	// LossMax is the top of the loss axis; the coarse pass tries
	// LossSteps evenly spaced rates in [0, LossMax].
	LossMax   float64 `json:"loss_max,omitempty"`
	LossSteps int     `json:"loss_steps,omitempty"`
	// ChurnMax is the top of the churn axis (nodes cycling through
	// leave/rejoin); the coarse pass tries ChurnSteps evenly spaced
	// intensities in [0, ChurnMax].
	ChurnMax   int `json:"churn_max,omitempty"`
	ChurnSteps int `json:"churn_steps,omitempty"`
	// Scales lists the latency multipliers (conductance proxies) tried;
	// strictly increasing, each in [1, 8], at most 4.
	Scales []int `json:"scales,omitempty"`
}

// EstimateRequest is the JSON body of POST /v1/estimates: fit loss,
// churn and latency-scale parameters so that Base simulated under them
// reproduces the observed curve. Exactly one of Observed (a measured
// curve) and Reference (a job spec whose simulated curve becomes the
// observation — the ground-truth-recovery mode) must be set.
type EstimateRequest struct {
	// Base is the candidate template: the driver, topology, seed and
	// protocol options every candidate simulation runs with. It must be
	// benign (no fault_spec — the candidates supply the faults) and name
	// a warm-startable single-phase driver.
	Base JobSpec `json:"base"`
	// Observed is the measured cumulative informed curve to fit.
	Observed []CurvePoint `json:"observed,omitempty"`
	// Reference, when set instead of Observed, is simulated first and
	// its informed curve becomes the observation.
	Reference *JobSpec `json:"reference,omitempty"`
	// Grid bounds the coarse lattice (nil: sized from the graph).
	Grid *EstimateGrid `json:"grid,omitempty"`
	// Refine is how many halving refinement passes follow the coarse
	// grid (absent: 2; range [0, 4]).
	Refine *int `json:"refine,omitempty"`
}

// ErrorDetail is the one structured error shape of the /v1 surface: it
// is the 400 response body ({"error":{"field":…,"message":…}}) and,
// since schema 2, the payload of the stream-terminating "error" event.
// Field is set when the failure is attributable to one request field.
type ErrorDetail struct {
	Field   string `json:"field,omitempty"`
	Message string `json:"message"`
}

// Error makes *ErrorDetail a Go error so server-side validation can
// return it directly.
func (e *ErrorDetail) Error() string {
	if e.Field == "" {
		return e.Message
	}
	return e.Field + ": " + e.Message
}

// UnmarshalJSON accepts both the schema-2 object form and the schema-1
// bare string an old persisted stream carries in its error events.
func (e *ErrorDetail) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var msg string
		if err := json.Unmarshal(b, &msg); err != nil {
			return err
		}
		*e = ErrorDetail{Message: msg}
		return nil
	}
	type plain ErrorDetail // drop the method set to avoid recursing
	var p plain
	if err := json.Unmarshal(b, &p); err != nil {
		return fmt.Errorf("error detail: %w", err)
	}
	*e = ErrorDetail(p)
	return nil
}
