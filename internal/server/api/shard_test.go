package api

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"gossip/internal/sim"
)

func sampleRoundFrame() sim.DistFrame {
	return sim.DistFrame{
		Round: 7,
		Shard: 1,
		Intents: []sim.DistIntent{
			{U: 3, Idx: 0, V: 9, VIdx: 2, Lat: 1},
			{U: 4, Idx: 3, V: 0, VIdx: 5, Lat: 12, Lost: true},
		},
		Gains:       []sim.DistGain{{Node: 9, Rumor: 3}, {Node: 0, Rumor: 4}},
		MinWake:     10,
		SleeperWake: sim.WakeOnDelivery,
		NextDeliver: 8,
		Pending:     true,
		Idle:        true,
		Called:      true,
		Waiting:     true,
		DonePre:     true,
		DonePost:    true,
		MetaCapable: true,
		Err:         "shard says ouch",
	}
}

func TestRoundFrameRoundTrip(t *testing.T) {
	want := sampleRoundFrame()
	enc := AppendRoundFrame(nil, &want)
	var got sim.DistFrame
	if err := DecodeRoundFrame(enc, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round frame round-trip:\n got %+v\nwant %+v", got, want)
	}

	// A minimal frame (no intents, no gains, sentinel calendar) must
	// round-trip too, reusing the decode target's slice capacity.
	minimal := sim.DistFrame{Round: 0, Shard: 0, MinWake: sim.WakeOnDelivery,
		SleeperWake: sim.WakeOnDelivery, NextDeliver: -1}
	enc = AppendRoundFrame(enc[:0], &minimal)
	if err := DecodeRoundFrame(enc, &got); err != nil {
		t.Fatal(err)
	}
	if got.Round != 0 || got.NextDeliver != -1 || got.MinWake != sim.WakeOnDelivery ||
		len(got.Intents) != 0 || len(got.Gains) != 0 || got.Pending || got.Err != "" {
		t.Fatalf("minimal frame round-trip: %+v", got)
	}
}

// TestRoundFrameTruncations feeds every proper prefix of a valid
// encoding to the decoder: each must error, never panic or succeed.
func TestRoundFrameTruncations(t *testing.T) {
	f := sampleRoundFrame()
	enc := AppendRoundFrame(nil, &f)
	var got sim.DistFrame
	for i := 0; i < len(enc); i++ {
		if err := DecodeRoundFrame(enc[:i], &got); err == nil {
			t.Fatalf("decoding %d of %d bytes succeeded", i, len(enc))
		}
	}
}

func TestMetaFrameRoundTrip(t *testing.T) {
	want := sim.DistMetaFrame{
		Round: 4,
		Shard: 2,
		Metas: []sim.DistNodeMeta{
			{Node: 7, Meta: []int32{1, 2, 3}},
			{Node: 12, Meta: []int32{}},
		},
	}
	enc := AppendMetaFrame(nil, &want)
	var got sim.DistMetaFrame
	if err := DecodeMetaFrame(enc, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("meta frame round-trip:\n got %+v\nwant %+v", got, want)
	}
	for i := 0; i < len(enc); i++ {
		if err := DecodeMetaFrame(enc[:i], &got); err == nil {
			t.Fatalf("decoding %d of %d bytes succeeded", i, len(enc))
		}
	}
	if err := DecodeMetaFrame(append(enc, 0), &got); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestShardResultRoundTrip(t *testing.T) {
	want := &ShardResult{
		Rounds:       19,
		Completed:    true,
		Exchanges:    100,
		Messages:     200,
		Dropped:      3,
		Delivered:    97,
		RumorPayload: 512,
		Hash:         0xdeadbeefcafe,
		InformedAt:   []int{0, 2, -1, 5},
		Stats: sim.DistStats{Rounds: 19, Barriers: 20, MetaBarriers: 1,
			Intents: 100, CrossIntents: 40, Gains: 50, ComputeNS: 123456, WaitNS: 7890},
	}
	enc := AppendShardResult(nil, want)
	got, err := DecodeShardResult(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("shard result round-trip:\n got %+v\nwant %+v", got, want)
	}

	// Non-shard-0 results ship no InformedAt; nil must survive.
	want.InformedAt = nil
	enc = AppendShardResult(enc[:0], want)
	if got, err = DecodeShardResult(enc); err != nil {
		t.Fatal(err)
	}
	if got.InformedAt != nil {
		t.Fatalf("nil InformedAt decoded as %v", got.InformedAt)
	}
	for i := 0; i < len(enc); i++ {
		if _, err := DecodeShardResult(enc[:i]); err == nil {
			t.Fatalf("decoding %d of %d bytes succeeded", i, len(enc))
		}
	}
}

func TestWriteReadFrame(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte("hello"), {}, bytes.Repeat([]byte{7}, 1<<16)}
	kinds := []byte{FrameJob, FrameRound, FrameResult}
	for i, p := range payloads {
		if err := WriteFrame(&buf, kinds[i], p); err != nil {
			t.Fatal(err)
		}
	}
	var scratch []byte
	for i, want := range payloads {
		kind, p, err := ReadFrame(&buf, scratch[:0])
		if err != nil {
			t.Fatal(err)
		}
		scratch = p
		if kind != kinds[i] || !bytes.Equal(p, want) {
			t.Fatalf("frame %d: kind %d payload %d bytes", i, kind, len(p))
		}
	}

	// A header advertising an over-cap payload must be rejected before
	// any allocation.
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(MaxFramePayload+1))
	hdr[4] = FrameRound
	if _, _, err := ReadFrame(bytes.NewReader(hdr[:]), nil); err == nil {
		t.Fatal("over-cap frame header accepted")
	}
	// Truncated header and truncated payload both error.
	if _, _, err := ReadFrame(bytes.NewReader(hdr[:3]), nil); err == nil {
		t.Fatal("truncated header accepted")
	}
	binary.BigEndian.PutUint32(hdr[:4], 10)
	short := append(append([]byte{}, hdr[:]...), 1, 2, 3)
	if _, _, err := ReadFrame(bytes.NewReader(short), nil); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestInformedHash(t *testing.T) {
	base := InformedHash(5, true, []int{0, 1, 2})
	if InformedHash(5, true, []int{0, 1, 2}) != base {
		t.Fatal("hash is not deterministic")
	}
	for name, h := range map[string]uint64{
		"rounds":    InformedHash(6, true, []int{0, 1, 2}),
		"completed": InformedHash(5, false, []int{0, 1, 2}),
		"informed":  InformedHash(5, true, []int{0, 1, 3}),
		"length":    InformedHash(5, true, []int{0, 1}),
	} {
		if h == base {
			t.Errorf("changing %s did not change the hash", name)
		}
	}
}
