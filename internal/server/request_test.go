package server

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"gossip/internal/gossip"
)

func intp(v int) *int          { return &v }
func strp(v string) *string    { return &v }
func boolp(v bool) *bool       { return &v }
func testServer() *Server      { return New(Config{MaxN: 1 << 12}) }
func okGraph() GraphSpec       { return GraphSpec{Family: "dumbbell", N: 8, Latency: 12} }
func msp(ms int) time.Duration { return time.Duration(ms) * time.Millisecond }

// TestValidateRejects is the request-validation table: every malformed
// request must map to a structured field-level error (the 400 path) —
// never a panic, never an opaque 500.
func TestValidateRejects(t *testing.T) {
	s := testServer()
	cases := []struct {
		name      string
		req       Request
		wantField string
		wantMsg   string
	}{
		{"unknown driver", Request{Driver: "zzz", Graph: okGraph()}, "driver", "unknown driver"},
		{"empty driver", Request{Graph: okGraph()}, "driver", "unknown driver"},
		{"unknown family", Request{Driver: "push-pull", Graph: GraphSpec{Family: "moebius", N: 8}}, "graph.family", "unknown family"},
		{"n too small", Request{Driver: "push-pull", Graph: GraphSpec{Family: "clique", N: 1}}, "graph.n", "outside"},
		{"n too large", Request{Driver: "push-pull", Graph: GraphSpec{Family: "clique", N: 1 << 13}}, "graph.n", "outside"},
		{"negative latency", Request{Driver: "push-pull", Graph: GraphSpec{Family: "clique", N: 8, Latency: -1}}, "graph.latency", "outside"},
		{"p out of range", Request{Driver: "push-pull", Graph: GraphSpec{Family: "er", N: 8, P: 1.5}}, "graph.p", "outside"},
		{"layers out of range", Request{Driver: "push-pull", Graph: GraphSpec{Family: "ring", N: 4, Layers: 65}}, "graph.layers", "outside"},
		{"negative workers", Request{Driver: "push-pull", Graph: okGraph(), Workers: -1}, "workers", "outside"},
		{"huge workers", Request{Driver: "push-pull", Graph: okGraph(), Workers: 1 << 10}, "workers", "outside"},
		{"negative max_rounds", Request{Driver: "push-pull", Graph: okGraph(), MaxRounds: -1}, "max_rounds", "outside"},
		{"zero timeout", Request{Driver: "push-pull", Graph: okGraph(), TimeoutMS: intp(0)}, "timeout_ms", "positive"},
		{"negative timeout", Request{Driver: "push-pull", Graph: okGraph(), TimeoutMS: intp(-5)}, "timeout_ms", "positive"},
		{"malformed fault spec", Request{Driver: "push-pull", Graph: okGraph(), FaultSpec: "loss=banana"}, "fault_spec", "probability"},
		{"fault spec bad item", Request{Driver: "push-pull", Graph: okGraph(), FaultSpec: "quake=0.5"}, "fault_spec", "unknown item"},
		{"fault spec not key=value", Request{Driver: "push-pull", Graph: okGraph(), FaultSpec: ";;;x"}, "fault_spec", "key=value"},
		// okGraph is a dumbbell with n=8, which builds 16 nodes: ids
		// 0..15 are valid sources, 16 is the first invalid one.
		{"source out of range", Request{Driver: "push-pull", Graph: okGraph(), Source: intp(16)}, "source", "outside"},
		{"negative source", Request{Driver: "push-pull", Graph: okGraph(), Source: intp(-1)}, "source", "outside"},
		{"sources out of range", Request{Driver: "push-pull", Graph: okGraph(), Sources: []int{3, 16}}, "sources", "outside"},
		{"source on dtg", Request{Driver: "dtg", Graph: okGraph(), Source: intp(0)}, "source", "does not accept"},
		{"sources on flood", Request{Driver: "flood", Graph: okGraph(), Sources: []int{1}}, "sources", "does not accept"},
		{"ell on push-pull", Request{Driver: "push-pull", Graph: okGraph(), Ell: intp(2)}, "ell", "does not accept"},
		{"k on flood", Request{Driver: "flood", Graph: okGraph(), K: intp(2)}, "k", "does not accept"},
		{"d on dtg", Request{Driver: "dtg", Graph: okGraph(), D: intp(2)}, "d", "does not accept"},
		{"budget on flood", Request{Driver: "flood", Graph: okGraph(), Budget: intp(9)}, "budget", "does not accept"},
		{"known_latencies on rr", Request{Driver: "rr", Graph: okGraph(), KnownLatencies: boolp(true)}, "known_latencies", "does not accept"},
		{"fault_tolerant on pattern", Request{Driver: "pattern", Graph: okGraph(), FaultTolerant: boolp(true)}, "fault_tolerant", "does not accept"},
		{"skip_check on dtg", Request{Driver: "dtg", Graph: okGraph(), SkipCheck: boolp(true)}, "skip_check", "does not accept"},
		{"lb_timeout on flood", Request{Driver: "flood", Graph: okGraph(), LBTimeout: intp(4)}, "lb_timeout", "does not accept"},
		{"max_in_per_round on dtg", Request{Driver: "dtg", Graph: okGraph(), MaxInPerRound: intp(1)}, "max_in_per_round", "does not accept"},
		{"negative max_in_per_round", Request{Driver: "push-pull", Graph: okGraph(), MaxInPerRound: intp(-1)}, "max_in_per_round", ">= 0"},
		{"objective on flood", Request{Driver: "flood", Graph: okGraph(), Objective: strp("all-to-all")}, "objective", "does not accept"},
		{"bad objective value", Request{Driver: "push-pull", Graph: okGraph(), Objective: strp("sideways")}, "objective", "unknown objective"},
		{"variant on dtg", Request{Driver: "dtg", Graph: okGraph(), Variant: strp("blocking")}, "variant", "does not accept"},
		{"bad variant value", Request{Driver: "push-pull", Graph: okGraph(), Variant: strp("sideways")}, "variant", "no variant"},
		{"flood variant on push-pull", Request{Driver: "push-pull", Graph: okGraph(), Variant: strp("nonblocking")}, "variant", "no variant"},
		{"negative ell", Request{Driver: "dtg", Graph: okGraph(), Ell: intp(-2)}, "ell", ">= 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			jb, ferr := s.validate(tc.req)
			if ferr == nil {
				t.Fatalf("validate accepted %+v (job %+v)", tc.req, jb)
			}
			if ferr.Field != tc.wantField {
				t.Errorf("field = %q, want %q (message %q)", ferr.Field, tc.wantField, ferr.Message)
			}
			if !strings.Contains(ferr.Message, tc.wantMsg) {
				t.Errorf("message %q does not mention %q", ferr.Message, tc.wantMsg)
			}
			if ferr.Error() == "" {
				t.Error("empty Error()")
			}
		})
	}
}

// TestValidateNormalizes pins the canonicalization rules the cache key
// depends on: alias collapse, family-irrelevant parameter zeroing,
// fault-spec rendering, and the execution-knob exclusions.
func TestValidateNormalizes(t *testing.T) {
	s := testServer()

	a, ferr := s.validate(Request{Driver: "pushpull", Graph: GraphSpec{Family: " CLIQUE ", N: 8, P: 0.7, Layers: 3}})
	if ferr != nil {
		t.Fatal(ferr)
	}
	b, ferr := s.validate(Request{Driver: "push-pull", Graph: GraphSpec{Family: "clique", N: 8, Latency: 1}})
	if ferr != nil {
		t.Fatal(ferr)
	}
	if a.key != b.key {
		t.Fatalf("alias/default/irrelevant-param requests got different keys:\n%+v\n%+v", a.can, b.can)
	}

	// workers and timeout are execution knobs: same key, different job.
	c, ferr := s.validate(Request{Driver: "push-pull", Graph: okGraph(), Workers: 8, TimeoutMS: intp(50)})
	if ferr != nil {
		t.Fatal(ferr)
	}
	d, ferr := s.validate(Request{Driver: "push-pull", Graph: okGraph()})
	if ferr != nil {
		t.Fatal(ferr)
	}
	if c.key != d.key {
		t.Fatal("workers/timeout_ms leaked into the cache key")
	}
	if c.workers != 8 || c.timeout != msp(50) {
		t.Fatalf("job knobs not applied: %+v", c)
	}
	if d.timeout != s.cfg.DefaultTimeout {
		t.Fatalf("default timeout not applied: %v", d.timeout)
	}

	// fault specs are normalized through the DSL renderer.
	e, ferr := s.validate(Request{Driver: "push-pull", Graph: okGraph(), FaultSpec: " loss=0.10 "})
	if ferr != nil {
		t.Fatal(ferr)
	}
	f, ferr := s.validate(Request{Driver: "push-pull", Graph: okGraph(), FaultSpec: "loss=0.1"})
	if ferr != nil {
		t.Fatal(ferr)
	}
	if e.key != f.key || e.can.FaultSpec != "loss=0.1" {
		t.Fatalf("fault spec not normalized: %q vs %q", e.can.FaultSpec, f.can.FaultSpec)
	}
	if e.spec == nil {
		t.Fatal("parsed spec not retained")
	}
	if e.key == d.key {
		t.Fatal("fault spec did not change the cache key")
	}

	// an effectively-empty fault spec is the benign request.
	g, ferr := s.validate(Request{Driver: "push-pull", Graph: okGraph(), FaultSpec: " ; ; "})
	if ferr != nil {
		t.Fatal(ferr)
	}
	if g.key != d.key || g.spec != nil {
		t.Fatal("empty fault spec items should normalize to the benign request")
	}
}

// TestValidateClampsTimeout: over-the-max requests are clamped, not
// rejected.
func TestValidateClampsTimeout(t *testing.T) {
	s := New(Config{MaxTimeout: msp(100)})
	jb, ferr := s.validate(Request{Driver: "push-pull", Graph: okGraph(), TimeoutMS: intp(1 << 30)})
	if ferr != nil {
		t.Fatal(ferr)
	}
	if jb.timeout != msp(100) {
		t.Fatalf("timeout = %v, want clamp to 100ms", jb.timeout)
	}
}

// TestValidateDriverFields pins that accepted driver-specific fields
// land in DriverOptions.
func TestValidateDriverFields(t *testing.T) {
	s := testServer()
	jb, ferr := s.validate(Request{
		Driver: "spanner", Graph: okGraph(), Seed: 9,
		D: intp(40), KnownLatencies: boolp(true), MaxRounds: 500, Workers: 2,
	})
	if ferr != nil {
		t.Fatal(ferr)
	}
	opts := jb.driverOptions()
	if opts.D != 40 || !opts.KnownLatencies || opts.Seed != 9 || opts.MaxRounds != 500 || opts.Workers != 2 {
		t.Fatalf("driver options: %+v", opts)
	}
	jb2, ferr := s.validate(Request{Driver: "superstep", Graph: okGraph(), Ell: intp(3)})
	if ferr != nil {
		t.Fatal(ferr)
	}
	if jb2.driverOptions().Ell != 3 {
		t.Fatalf("ell not forwarded: %+v", jb2.driverOptions())
	}
}

// TestValidateSourceUsesBuiltNodeCount pins the finding that node-id
// bounds follow the family's built size, not the raw n parameter: a
// dumbbell with n=8 has 16 nodes, so the second clique is addressable.
func TestValidateSourceUsesBuiltNodeCount(t *testing.T) {
	s := testServer()
	jb, ferr := s.validate(Request{Driver: "push-pull", Graph: okGraph(), Source: intp(10)})
	if ferr != nil {
		t.Fatalf("source 10 on a 16-node dumbbell rejected: %v", ferr)
	}
	if jb.driverOptions().Source != 10 {
		t.Fatalf("source not forwarded: %+v", jb.driverOptions())
	}
	ring := GraphSpec{Family: "ring", N: 4, Latency: 2, Layers: 3}
	if _, ferr := s.validate(Request{Driver: "push-pull", Graph: ring, Source: intp(11)}); ferr != nil {
		t.Fatalf("source 11 on a 3x4 ring (12 nodes) rejected: %v", ferr)
	}
	if _, ferr := s.validate(Request{Driver: "push-pull", Graph: ring, Source: intp(12)}); ferr == nil {
		t.Fatal("source 12 on a 12-node ring accepted")
	}
}

// TestRequestCoversDriverSchemas pins that every key a driver advertises
// through GET /v1/drivers is actually settable on a POST request: the
// Request struct's JSON surface must cover the registry vocabulary.
func TestRequestCoversDriverSchemas(t *testing.T) {
	fields := map[string]bool{"driver": true, "graph": true, "workers": true, "timeout_ms": true}
	rt := reflect.TypeOf(Request{})
	for i := 0; i < rt.NumField(); i++ {
		tag, _, _ := strings.Cut(rt.Field(i).Tag.Get("json"), ",")
		fields[tag] = true
	}
	for _, name := range gossip.Names() {
		d, _ := gossip.Lookup(name)
		for _, key := range d.RequestKeys() {
			if !fields[key] {
				t.Errorf("driver %q advertises request key %q with no Request field to carry it", name, key)
			}
		}
	}
}

// TestValidateFullOptionSurface drives one request using every
// spanner-side key and one using the push-pull-side keys, pinning the
// request→DriverOptions mapping.
func TestValidateFullOptionSurface(t *testing.T) {
	s := testServer()
	jb, ferr := s.validate(Request{
		Driver: "spanner", Graph: okGraph(), Seed: 4,
		D: intp(30), KnownLatencies: boolp(true), FaultTolerant: boolp(true),
		LBTimeout: intp(9), SkipCheck: boolp(true),
	})
	if ferr != nil {
		t.Fatal(ferr)
	}
	opts := jb.driverOptions()
	if opts.D != 30 || !opts.KnownLatencies || !opts.FaultTolerant || opts.LBTimeout != 9 || !opts.SkipCheck {
		t.Fatalf("spanner options: %+v", opts)
	}
	jb2, ferr := s.validate(Request{
		Driver: "push-pull", Graph: okGraph(),
		Objective: strp("all-to-all"), Sources: []int{1, 9}, MaxInPerRound: intp(2),
	})
	if ferr != nil {
		t.Fatal(ferr)
	}
	opts2 := jb2.driverOptions()
	if opts2.Objective != gossip.AllToAll || len(opts2.Sources) != 2 || opts2.Sources[1] != 9 || opts2.MaxInPerRound != 2 {
		t.Fatalf("push-pull options: %+v", opts2)
	}
	jb3, ferr := s.validate(Request{Driver: "rr", Graph: okGraph(), K: intp(12), Budget: intp(40)})
	if ferr != nil {
		t.Fatal(ferr)
	}
	if o := jb3.driverOptions(); o.K != 12 || o.Budget != 40 {
		t.Fatalf("rr options: %+v", o)
	}
	// distinct option values must split the cache key
	if jb.key == jb2.key || jb2.key == jb3.key {
		t.Fatal("different option surfaces share a cache key")
	}
}
