package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// testFleet boots n real servers on loopback listeners sharing one
// membership list. It mirrors loadgen.StartFleet, which this package
// cannot import (loadgen imports server).
type testFleet struct {
	servers []*Server
	urls    []string
	https   []*http.Server
}

func startTestFleet(t *testing.T, n int, cfg Config) *testFleet {
	t.Helper()
	listeners := make([]net.Listener, n)
	peers := make([]string, n)
	for i := range listeners {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = lis
		peers[i] = lis.Addr().String()
	}
	f := &testFleet{}
	for i, lis := range listeners {
		mcfg := cfg
		mcfg.Peers = peers
		mcfg.Advertise = peers[i]
		s := New(mcfg)
		hs := &http.Server{Handler: s.Handler()}
		go func() { _ = hs.Serve(lis) }()
		f.servers = append(f.servers, s)
		f.urls = append(f.urls, "http://"+lis.Addr().String())
		f.https = append(f.https, hs)
	}
	t.Cleanup(func() {
		for i, s := range f.servers {
			s.Drain()
			_ = f.https[i].Close()
		}
	})
	return f
}

func postSim(t *testing.T, base string, req Request) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/simulations", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestFleetShardedRunMatchesSingle runs one request both sharded across
// the fleet and single-process on a fleet member (shards=0 skips the
// coordinator) and requires byte-identical NDJSON.
func TestFleetShardedRunMatchesSingle(t *testing.T) {
	f := startTestFleet(t, 3, Config{Pool: 2, CacheSize: -1})
	req := Request{
		Driver: "push-pull",
		Graph:  GraphSpec{Family: "regular", N: 512, Latency: 1},
		Seed:   41,
		Shards: 2,
	}
	resp, dist := postSim(t, f.urls[0], req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sharded: %d %s", resp.StatusCode, dist)
	}
	req.Shards = 0
	resp, single := postSim(t, f.urls[0], req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single: %d %s", resp.StatusCode, single)
	}
	if !bytes.Equal(dist, single) {
		t.Fatalf("sharded body differs from single-process body:\n%s\nvs\n%s", dist, single)
	}
	m := f.servers[0].Metrics()
	if m.ShardJobs != 1 {
		t.Fatalf("coordinator ShardJobs = %d, want 1", m.ShardJobs)
	}
	var sessions int64
	for _, s := range f.servers[1:] {
		sessions += s.Metrics().ShardSessions
	}
	if sessions != 2 {
		t.Fatalf("worker shard sessions = %d, want 2", sessions)
	}
}

// TestFleetShardValidation exercises the request-level gates of
// distributed execution.
func TestFleetShardValidation(t *testing.T) {
	f := startTestFleet(t, 2, Config{Pool: 1})
	base := Request{
		Driver: "push-pull",
		Graph:  GraphSpec{Family: "clique", N: 16},
		Seed:   1,
	}
	cases := []struct {
		name string
		mut  func(*Request)
		want string
	}{
		{"one shard", func(r *Request) { r.Shards = 1 }, "must be 0"},
		{"beyond fleet", func(r *Request) { r.Shards = 4 }, "exceeds the fleet"},
		{"non-distributable", func(r *Request) { r.Shards = 1; r.Driver = "auto" }, "must be 0"},
	}
	for _, tc := range cases {
		req := base
		tc.mut(&req)
		resp, body := postSim(t, f.urls[0], req)
		if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), tc.want) {
			t.Errorf("%s: %d %s (want 400 with %q)", tc.name, resp.StatusCode, body, tc.want)
		}
	}
	// No fleet at all: shards must be rejected outright.
	single := httptest.NewServer(New(Config{}).Handler())
	defer single.Close()
	req := base
	req.Shards = 2
	resp, body := postSim(t, single.URL, req)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "needs a fleet") {
		t.Fatalf("no-fleet shards: %d %s", resp.StatusCode, body)
	}
}

// TestMetricsUnderConcurrentScrapes hammers /metrics from several
// goroutines while a job mix (including a sharded job and a forwarded
// request) runs on the fleet, requiring every scrape to parse and every
// counter to be monotonic per member — the satellite contract for the
// new gossipd_shard_* and cache-forwarding counters. The -race CI run
// doubles as the data-race check on the shard/forward counter paths.
func TestMetricsUnderConcurrentScrapes(t *testing.T) {
	f := startTestFleet(t, 3, Config{Pool: 2})

	counters := []string{
		"gossipd_jobs_completed_total",
		"gossipd_cache_hits_total",
		"gossipd_cache_misses_total",
		"gossipd_rounds_simulated_total",
		"gossipd_shard_jobs_total",
		"gossipd_shard_sessions_total",
		"gossipd_shard_failures_total",
		"gossipd_cache_forwarded_total",
		"gossipd_cache_forward_served_total",
		"gossipd_cache_forward_failures_total",
	}
	parse := func(body string) (map[string]int64, error) {
		out := map[string]int64{}
		for _, line := range strings.Split(body, "\n") {
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			name, val, ok := strings.Cut(line, " ")
			if !ok {
				return nil, fmt.Errorf("unparseable metrics line %q", line)
			}
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("metric %s: %w", name, err)
			}
			out[name] = v
		}
		return out, nil
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, 8)

	// Scrapers: one per member, each checking monotonicity against its
	// own previous scrape.
	for _, url := range f.urls {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			prev := map[string]int64{}
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(url + "/metrics")
				if err != nil {
					errc <- err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("scrape: %d %v", resp.StatusCode, err)
					return
				}
				cur, err := parse(string(body))
				if err != nil {
					errc <- err
					return
				}
				for _, c := range counters {
					if cur[c] < prev[c] {
						errc <- fmt.Errorf("%s went backwards on %s: %d -> %d", c, url, prev[c], cur[c])
						return
					}
				}
				prev = cur
			}
		}(url)
	}

	// Load: unique jobs spread over the members (forwarding fires
	// whenever the key's owner is a different member), one repeated job
	// posted to two members (cross-member hit), and one sharded job.
	for i := 0; i < 6; i++ {
		req := Request{
			Driver: "flood",
			Graph:  GraphSpec{Family: "clique", N: 12},
			Seed:   uint64(100 + i),
		}
		if resp, body := postSim(t, f.urls[i%3], req); resp.StatusCode != http.StatusOK {
			t.Fatalf("load job %d: %d %s", i, resp.StatusCode, body)
		}
	}
	shared := Request{Driver: "push-pull", Graph: GraphSpec{Family: "path", N: 24, Latency: 1}, Seed: 9}
	postSim(t, f.urls[0], shared)
	postSim(t, f.urls[1], shared)
	sharded := Request{
		Driver: "push-pull",
		Graph:  GraphSpec{Family: "regular", N: 256, Latency: 1},
		Seed:   77, Shards: 2,
	}
	if resp, body := postSim(t, f.urls[0], sharded); resp.StatusCode != http.StatusOK {
		t.Fatalf("sharded job: %d %s", resp.StatusCode, body)
	}

	time.Sleep(50 * time.Millisecond) // let scrapers observe the final state
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	var forwarded, served, shardJobs, sessions int64
	for _, s := range f.servers {
		m := s.Metrics()
		forwarded += m.Forwarded
		served += m.ForwardServed
		shardJobs += m.ShardJobs
		sessions += m.ShardSessions
	}
	if forwarded == 0 || served == 0 {
		t.Fatalf("forward counters never moved: forwarded=%d served=%d", forwarded, served)
	}
	if shardJobs == 0 || sessions == 0 {
		t.Fatalf("shard counters never moved: jobs=%d sessions=%d", shardJobs, sessions)
	}
}
