package server

import (
	"container/list"
	"sync"
)

// lruCache memoizes completed deterministic jobs: request key → the full
// NDJSON response body. Replaying an entry is what makes an identical
// request bit-identical to its first execution for free.
type lruCache struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry struct {
	key  string
	body []byte
}

func newLRU(max int) *lruCache {
	return &lruCache{max: max, order: list.New(), items: make(map[string]*list.Element)}
}

// disabled reports a non-positive capacity: memoization is off and — so
// that "every request executes" holds as documented — the server also
// skips request coalescing.
func (c *lruCache) disabled() bool { return c.max <= 0 }

// get returns the cached body and refreshes the entry's recency.
func (c *lruCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).body, true
}

// put stores (or refreshes) a body, evicting from the cold end past max.
func (c *lruCache) put(key string, body []byte) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).body = body
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, body: body})
	for c.order.Len() > c.max {
		cold := c.order.Back()
		c.order.Remove(cold)
		delete(c.items, cold.Value.(*lruEntry).key)
	}
}

func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// flight is one in-flight execution of a request key. Concurrent
// identical requests coalesce onto it: the first arrival (the leader)
// executes, everyone else waits on done and replays body. A nil body
// with a closed done means the leader failed nondeterministically (a
// timeout); followers retry — each key executes at most once per
// success, which is what makes cache-miss counts deterministic under
// concurrency (misses == distinct keys).
type flight struct {
	done chan struct{}
	body []byte
}

// join returns the flight for key, creating it when absent; the creator
// is the leader (second return true) and must eventually resolve it.
func (s *Server) join(key string) (*flight, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.inflight[key]; ok {
		return f, false
	}
	f := &flight{done: make(chan struct{})}
	s.inflight[key] = f
	return f, true
}

// resolve publishes the leader's outcome (nil body = failed) and wakes
// the followers. The entry leaves the table first so a post-resolve
// arrival starts fresh rather than observing a settled flight.
func (s *Server) resolve(key string, f *flight, body []byte) {
	s.mu.Lock()
	delete(s.inflight, key)
	f.body = body
	s.mu.Unlock()
	close(f.done)
}
