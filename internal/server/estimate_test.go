package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"gossip/internal/curve"
	"gossip/internal/gossip"
	"gossip/internal/graphgen"
	"gossip/internal/server/api"
)

func postEstimate(t *testing.T, url string, req EstimateRequest) (int, string, []byte) {
	t.Helper()
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/estimates", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get(CacheHeader), body
}

// lossyEstimateReq plants loss=0.2 via a reference job and asks for it
// back on a grid that contains the truth.
func lossyEstimateReq() EstimateRequest {
	ref := pushPullReq()
	ref.FaultSpec = "loss=0.2"
	return EstimateRequest{
		Base:      pushPullReq(),
		Reference: &ref,
		Grid:      &api.EstimateGrid{LossMax: 0.4, LossSteps: 3, ChurnMax: 2, ChurnSteps: 2, Scales: []int{1}},
		Refine:    intp(1),
	}
}

// TestEstimateStreamShapeAndRecovery is the endpoint's happy path: the
// stream is accepted → scored progress events → one estimate terminator,
// and a fault planted via the reference job is recovered exactly (the
// truth sits on the coarse grid, so its cold evaluation reproduces the
// observed curve bit-for-bit and scores an ICC distance of zero).
func TestEstimateStreamShapeAndRecovery(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	status, cache, body := postEstimate(t, ts.URL, lossyEstimateReq())
	if status != http.StatusOK || cache != "miss" {
		t.Fatalf("status %d cache %q, want 200 miss", status, cache)
	}
	events := decodeStream(t, body)
	if events[0]["event"] != "accepted" || events[0]["request_key"] == "" {
		t.Fatalf("bad accepted event: %+v", events[0])
	}
	last := events[len(events)-1]
	if last["event"] != "estimate" {
		t.Fatalf("last event %+v, want estimate", last)
	}
	stages := map[string]int{}
	for _, ev := range events[1 : len(events)-1] {
		if ev["event"] != "progress" {
			t.Fatalf("mid-stream event %+v, want progress", ev)
		}
		if ev["candidate"] == nil || ev["evaluated"].(float64) <= 0 {
			t.Fatalf("unscored progress event: %+v", ev)
		}
		stages[ev["stage"].(string)]++
	}
	if stages["coarse"] != 6 { // 3 loss × 2 churn × 1 scale
		t.Fatalf("stages %+v, want 6 coarse evals", stages)
	}
	if stages["refine-1"] == 0 {
		t.Fatalf("stages %+v, want a refinement pass", stages)
	}
	best := last["best"].(map[string]any)
	if best["loss"] != 0.2 || best["churn"] != 0.0 || best["scale"] != 1.0 {
		t.Fatalf("best %+v, want the planted loss=0.2", best)
	}
	if last["score"] != 0.0 {
		t.Fatalf("planted truth must score 0, got %v", last["score"])
	}
	if last["fault_spec"] == "" {
		t.Fatal("estimate carries no fault_spec rendering")
	}
	res := last["residual"].(map[string]any)
	if res["icc"] != 0.0 || res["final_informed_delta"] != 0.0 || res["rounds_delta"] != 0.0 {
		t.Fatalf("residual %+v, want exact zeros for an on-grid truth", res)
	}
}

// TestEstimateObservedCurve drives the endpoint with a submitted curve
// instead of a reference job: the observed points come from a prior
// /v1/simulations stream, closing the loop the README documents.
func TestEstimateObservedCurve(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	// Simulate the reference out-of-band and feed its curve back in.
	ref := pushPullReq()
	ref.FaultSpec = "loss=0.2"
	status, _, simBody := postJob(t, ts.URL, ref)
	if status != http.StatusOK {
		t.Fatalf("reference simulation status %d", status)
	}
	var observed []api.CurvePoint
	for _, ev := range decodeStream(t, simBody) {
		if ev["event"] == "progress" {
			observed = append(observed, api.CurvePoint{Round: int(ev["round"].(float64)), Informed: ev["informed"].(float64)})
		}
	}
	if len(observed) < 2 {
		t.Fatalf("reference produced %d points", len(observed))
	}

	req := lossyEstimateReq()
	req.Reference = nil
	req.Observed = observed
	status, _, body := postEstimate(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	events := decodeStream(t, body)
	last := events[len(events)-1]
	if last["event"] != "estimate" {
		t.Fatalf("last event %+v, want estimate", last)
	}
	best := last["best"].(map[string]any)
	if best["loss"] != 0.2 || best["churn"] != 0.0 {
		t.Fatalf("best %+v, want the planted loss=0.2", best)
	}
}

// TestEstimateMemoizedAndDeterministic pins the service contract on the
// new surface: identical estimate ⇒ hit ⇒ byte-identical body, and the
// body is byte-identical across execution pool sizes (the estimate
// fan-out is execution machinery, not key material).
func TestEstimateMemoizedAndDeterministic(t *testing.T) {
	var bodies [][]byte
	for _, pool := range []int{1, 8} {
		srv := New(Config{Pool: pool})
		ts := httptest.NewServer(srv.Handler())
		_, cache1, body1 := postEstimate(t, ts.URL, lossyEstimateReq())
		_, cache2, body2 := postEstimate(t, ts.URL, lossyEstimateReq())
		ts.Close()
		if cache1 != "miss" || cache2 != "hit" {
			t.Fatalf("pool %d: cache %q then %q, want miss then hit", pool, cache1, cache2)
		}
		if !bytes.Equal(body1, body2) {
			t.Fatalf("pool %d: cached replay differs", pool)
		}
		if n := srv.Metrics().EstimatesExecuted; n != 1 {
			t.Fatalf("pool %d: %d estimates executed, want 1", pool, n)
		}
		bodies = append(bodies, body1)
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Fatalf("estimate diverges across pool sizes:\n%s\nvs\n%s", bodies[0], bodies[1])
	}
}

// TestEstimateSharesSimulationCache: candidate evaluations publish the
// exact bodies /v1/simulations would, so a direct simulation of an
// evaluated candidate replays from cache without executing.
func TestEstimateSharesSimulationCache(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if status, _, _ := postEstimate(t, ts.URL, lossyEstimateReq()); status != http.StatusOK {
		t.Fatalf("estimate status %d", status)
	}
	misses := srv.Metrics().CacheMisses
	// The benign coarse candidate is exactly pushPullReq's canonical job.
	status, cache, _ := postJob(t, ts.URL, pushPullReq())
	if status != http.StatusOK || cache != "hit" {
		t.Fatalf("status %d cache %q, want a hit off the estimate's evaluations", status, cache)
	}
	if after := srv.Metrics().CacheMisses; after != misses {
		t.Fatalf("direct simulation of an evaluated candidate executed (misses %d -> %d)", misses, after)
	}
}

func TestEstimateValidation(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	obs := []api.CurvePoint{{Round: 0, Informed: 1}, {Round: 3, Informed: 9}}
	cases := []struct {
		name  string
		mut   func(*EstimateRequest)
		field string
	}{
		{"both observed and reference", func(r *EstimateRequest) { r.Observed = obs }, "observed"},
		{"neither observed nor reference", func(r *EstimateRequest) { r.Reference = nil }, "observed"},
		{"single-point curve", func(r *EstimateRequest) {
			r.Reference = nil
			r.Observed = obs[:1]
		}, "observed"},
		{"non-increasing rounds", func(r *EstimateRequest) {
			r.Reference = nil
			r.Observed = []api.CurvePoint{{Round: 3, Informed: 1}, {Round: 3, Informed: 2}}
		}, "observed[1]"},
		{"negative round", func(r *EstimateRequest) {
			r.Reference = nil
			r.Observed = []api.CurvePoint{{Round: -1, Informed: 1}, {Round: 3, Informed: 2}}
		}, "observed[0]"},
		{"non-positive informed", func(r *EstimateRequest) {
			r.Reference = nil
			r.Observed = []api.CurvePoint{{Round: 0, Informed: 0}, {Round: 3, Informed: 2}}
		}, "observed[0]"},
		{"decreasing informed", func(r *EstimateRequest) {
			r.Reference = nil
			r.Observed = []api.CurvePoint{{Round: 0, Informed: 5}, {Round: 3, Informed: 2}}
		}, "observed[1]"},
		{"informed above graph size", func(r *EstimateRequest) {
			r.Reference = nil
			r.Observed = []api.CurvePoint{{Round: 0, Informed: 1}, {Round: 3, Informed: 17}}
		}, "observed[1]"},
		{"faulty base", func(r *EstimateRequest) { r.Base.FaultSpec = "loss=0.1" }, "base.fault_spec"},
		{"unknown base driver", func(r *EstimateRequest) { r.Base.Driver = "nope" }, "base.driver"},
		{"multi-phase base", func(r *EstimateRequest) { r.Base.Driver = "spanner" }, "base.driver"},
		{"sharded base", func(r *EstimateRequest) { r.Base.Shards = 2 }, "base.shards"},
		{"bad loss_max", func(r *EstimateRequest) { r.Grid.LossMax = 1.5 }, "grid.loss_max"},
		{"bad loss_steps", func(r *EstimateRequest) { r.Grid.LossSteps = 99 }, "grid.loss_steps"},
		{"churn_max at n", func(r *EstimateRequest) { r.Grid.ChurnMax = 16; r.Grid.ChurnSteps = 2 }, "grid.churn_max"},
		{"non-increasing scales", func(r *EstimateRequest) { r.Grid.Scales = []int{2, 2} }, "grid.scales"},
		{"zero scale", func(r *EstimateRequest) { r.Grid.Scales = []int{0} }, "grid.scales"},
		{"refine out of range", func(r *EstimateRequest) { r.Refine = intp(9) }, "refine"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := lossyEstimateReq()
			tc.mut(&req)
			status, _, body := postEstimate(t, ts.URL, req)
			if status != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (body %s)", status, body)
			}
			var out map[string]*FieldError
			if err := json.Unmarshal(body, &out); err != nil || out["error"] == nil {
				t.Fatalf("bad 400 body %s: %v", body, err)
			}
			if out["error"].Field != tc.field {
				t.Fatalf("error field %q, want %q (%s)", out["error"].Field, tc.field, out["error"].Message)
			}
		})
	}
}

// TestProgressPointsKnob pins the satellite contract: progress_points
// shapes the served stream but not the cache key, so two requests that
// differ only there share one execution and one cache entry.
func TestProgressPointsKnob(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := Request{Driver: "push-pull", Graph: GraphSpec{Family: "er", N: 64, P: 0.2, Latency: 1}, Seed: 7}
	status, cache1, body1 := postJob(t, ts.URL, req)
	if status != http.StatusOK || cache1 != "miss" {
		t.Fatalf("status %d cache %q", status, cache1)
	}
	count := func(body []byte) int {
		n := 0
		for _, ev := range decodeStream(t, body) {
			if ev["event"] == "progress" {
				n++
			}
		}
		return n
	}
	base := count(body1)
	if base < 2 || base > defaultProgressPoints {
		t.Fatalf("default curve has %d points, want 2..%d", base, defaultProgressPoints)
	}

	coarse := req
	coarse.ProgressPoints = intp(2)
	status, cache2, body2 := postJob(t, ts.URL, coarse)
	if status != http.StatusOK || cache2 != "hit" {
		t.Fatalf("resampled request: status %d cache %q, want a hit (execution knob)", status, cache2)
	}
	if got := count(body2); got != 2 {
		t.Fatalf("progress_points=2 served %d points", got)
	}
	// First and last change points survive resampling.
	ev1, ev2 := decodeStream(t, body1), decodeStream(t, body2)
	if ev1[1]["round"] != ev2[1]["round"] {
		t.Fatalf("first change point moved: %+v vs %+v", ev1[1], ev2[1])
	}
	if ev1[len(ev1)-2]["round"] != ev2[len(ev2)-2]["round"] {
		t.Fatal("last change point moved under resampling")
	}
	if n := srv.Metrics().CacheMisses; n != 1 {
		t.Fatalf("%d executions for one canonical job, want 1", n)
	}

	// A wider budget serves more of the cached full-resolution curve.
	fine := req
	fine.ProgressPoints = intp(maxProgressPoints)
	_, cache3, body3 := postJob(t, ts.URL, fine)
	if cache3 != "hit" {
		t.Fatalf("full-resolution request: cache %q, want hit", cache3)
	}
	if got := count(body3); got < base {
		t.Fatalf("progress_points=%d served %d points, want >= default %d", maxProgressPoints, got, base)
	}

	for _, bad := range []int{1, -3, maxProgressPoints + 1} {
		badReq := req
		badReq.ProgressPoints = intp(bad)
		if status, _, _ := postJob(t, ts.URL, badReq); status != http.StatusBadRequest {
			t.Fatalf("progress_points=%d: status %d, want 400", bad, status)
		}
	}
}

// TestGoldenCurveExtraction pins the curve the service streams against
// the one the estimator derives from the same engine run: identical
// change points, identically sampled. This is the contract that lets
// /v1/estimates consume /v1/simulations output as its observed input.
func TestGoldenCurveExtraction(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	req := Request{Driver: "push-pull", Graph: GraphSpec{Family: "er", N: 64, P: 0.2, Latency: 1}, Seed: 7}

	jb, ferr := srv.validate(req)
	if ferr != nil {
		t.Fatal(ferr)
	}
	g, err := graphgen.Build(graphgen.Spec{
		Family: jb.can.Graph.Family, N: jb.can.Graph.N, Latency: jb.can.Graph.Latency,
		P: jb.can.Graph.P, Layers: jb.can.Graph.Layers, Seed: jb.can.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := gossip.Dispatch(jb.can.Driver, g, jb.driverOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := curve.FromInformedAt(res.InformedAt).Sample(defaultProgressPoints)

	_, _, body := postJob(t, ts.URL, req)
	var got curve.Curve
	for _, ev := range decodeStream(t, body) {
		if ev["event"] == "progress" {
			got = append(got, curve.Point{Round: int(ev["round"].(float64)), Informed: ev["informed"].(float64)})
		}
	}
	if len(got) != len(want) {
		t.Fatalf("served %d points, engine curve has %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d: served %+v, engine %+v", i, got[i], want[i])
		}
	}
}

// FuzzEstimateValidate: no input reaches a panic through estimate
// validation; rejects are structured field errors.
func FuzzEstimateValidate(f *testing.F) {
	seed, _ := json.Marshal(lossyEstimateReq())
	f.Add(string(seed))
	f.Add(`{"base":{"driver":"push-pull","graph":{"family":"clique","n":8}},"observed":[{"round":0,"informed":1},{"round":2,"informed":8}]}`)
	f.Add(`{"base":{"driver":"push-pull","graph":{"family":"clique","n":8}},"observed":[{"round":0,"informed":1e309}]}`)
	f.Add(`{"base":{},"observed":[{"round":-1,"informed":-5},{"round":-1,"informed":"x"}]}`)
	f.Add(`{"grid":{"scales":[0,0,0]},"refine":-1}`)
	f.Add(`{"base":{"driver":"spanner","graph":{"family":"grid","n":9}},"reference":{"driver":"push-pull","graph":{"family":"grid","n":9}}}`)
	srv := New(Config{})
	f.Fuzz(func(t *testing.T, raw string) {
		var req EstimateRequest
		if err := json.Unmarshal([]byte(raw), &req); err != nil {
			return
		}
		ej, ferr := srv.validateEstimate(req)
		if ferr == nil && ej == nil {
			t.Fatal("validateEstimate returned neither a job nor an error")
		}
		if ferr != nil && ferr.Message == "" {
			t.Fatalf("unstructured validation error for %q", raw)
		}
	})
}
