package server

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

// TestDiskStoreRoundTrip pins the storage unit: put/get round-trips,
// absent keys miss, short keys are rejected, and the on-disk layout is
// the sharded git-style <dir>/<key[:2]>/<key>.ndjson.
func TestDiskStoreRoundTrip(t *testing.T) {
	st, err := newDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := "abcdef0123456789abcdef0123456789"
	if _, ok := st.get(key); ok {
		t.Fatal("hit on empty store")
	}
	body := []byte("{\"event\":\"accepted\"}\n{\"event\":\"result\"}\n")
	st.put(key, body)
	got, ok := st.get(key)
	if !ok || !bytes.Equal(got, body) {
		t.Fatalf("round-trip: ok=%v got %q", ok, got)
	}
	if _, err := os.Stat(filepath.Join(st.dir, "ab", key+".ndjson")); err != nil {
		t.Fatalf("sharded layout: %v", err)
	}
	if _, ok := st.get("x"); ok {
		t.Fatal("short key served")
	}
	st.put("x", body) // must not panic or write
	// A truncated entry degrades to a miss, never a corrupt replay.
	if err := os.WriteFile(st.path(key), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.get(key); ok {
		t.Fatal("empty entry served")
	}
}

// TestStoreSurvivesRestart is the persistence contract: a fresh Server
// sharing the store directory replays completed simulations and sweeps
// byte-identically as cache hits, without re-executing.
func TestStoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	srv1 := New(Config{StoreDir: dir})
	ts1 := httptest.NewServer(srv1.Handler())
	_, cache1, simBody1 := postJob(t, ts1.URL, pushPullReq())
	_, scache1, sweepBody1 := postSweep(t, ts1.URL, pushPullSweep())
	ts1.Close()
	if cache1 != "miss" || scache1 != "miss" {
		t.Fatalf("first server: %q/%q, want miss/miss", cache1, scache1)
	}

	srv2 := New(Config{StoreDir: dir})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	_, cache2, simBody2 := postJob(t, ts2.URL, pushPullReq())
	_, scache2, sweepBody2 := postSweep(t, ts2.URL, pushPullSweep())
	if cache2 != "hit" || scache2 != "hit" {
		t.Fatalf("restarted server: %q/%q, want hit/hit", cache2, scache2)
	}
	if !bytes.Equal(simBody1, simBody2) || !bytes.Equal(sweepBody1, sweepBody2) {
		t.Fatal("replayed bodies differ from the originals")
	}
	m := srv2.Metrics()
	if m.StoreHits == 0 {
		t.Fatalf("no store hits recorded: %+v", m)
	}
	if m.CacheMisses != 0 {
		t.Fatalf("restarted server re-executed: %+v", m)
	}
}

// TestStoreDisabledWithCache: negative CacheSize turns off every tier,
// the disk store included.
func TestStoreDisabledWithCache(t *testing.T) {
	srv := New(Config{StoreDir: t.TempDir(), CacheSize: -1})
	if srv.store != nil {
		t.Fatal("disk store active with caching disabled")
	}
}
