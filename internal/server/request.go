package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"gossip/internal/adversity"
	"gossip/internal/gossip"
	"gossip/internal/graphgen"
	"gossip/internal/server/api"
)

// Request is the JSON body of POST /v1/simulations. The struct itself —
// the shared /v1 job spec, also the base of sweeps and estimates —
// lives in internal/server/api; these aliases keep the server-side name
// every existing caller and test uses.
type Request = api.JobSpec

// GraphSpec is the request form of graphgen.Spec (see api.GraphSpec).
type GraphSpec = api.GraphSpec

// FieldError is a structured request-validation failure: which field
// was wrong and why. It is the one error schema of the /v1 surface
// (api.ErrorDetail): the 400 body {"error":{"field":…,"message":…}} and
// the payload of stream-terminating error events.
type FieldError = api.ErrorDetail

func fieldErrf(field, format string, args ...any) *FieldError {
	return &FieldError{Field: field, Message: fmt.Sprintf(format, args...)}
}

// canonical is the cache-key material: the request after defaulting and
// normalization, stripped of execution-only knobs (workers, timeout).
// Two requests with the same canonical form are the same deterministic
// computation and must produce byte-identical response bodies.
type canonical struct {
	Driver         string    `json:"driver"`
	Graph          GraphSpec `json:"graph"`
	Seed           uint64    `json:"seed"`
	MaxRounds      int       `json:"max_rounds"`
	FaultSpec      string    `json:"fault_spec"`
	Source         int       `json:"source"`
	Sources        []int     `json:"sources"`
	Objective      string    `json:"objective"`
	Variant        string    `json:"variant"`
	Ell            int       `json:"ell"`
	K              int       `json:"k"`
	D              int       `json:"d"`
	Budget         int       `json:"budget"`
	KnownLatencies bool      `json:"known_latencies"`
	MaxInPerRound  int       `json:"max_in_per_round"`
	FaultTolerant  bool      `json:"fault_tolerant"`
	LBTimeout      int       `json:"lb_timeout"`
	SkipCheck      bool      `json:"skip_check"`
	SuspectAfter   int       `json:"suspect_after"`
	StableRounds   int       `json:"stable_rounds"`
}

// job is a validated, normalized simulation request ready to execute.
type job struct {
	can canonical
	key string
	// transport is the execution fabric: "" = the calendar engine,
	// "chan" = a real goroutine mesh (nondeterministic; bypasses the
	// cache in both directions).
	transport string
	workers   int
	shards    int
	timeout   time.Duration
	points    int // progress_points: serve-time curve sampling cap
	spec      *adversity.Spec
}

// variants lists the admissible Variant values per driver; drivers whose
// schema includes the "variant" key but appear nowhere here accept any
// value (none today).
var variants = map[string][]string{
	"push-pull": {gossip.VariantBlocking},
	"flood":     {gossip.VariantNonBlocking},
}

// objectives maps the request-level objective names onto the registry's
// completion criteria.
var objectives = map[string]gossip.Objective{
	"broadcast":       gossip.Broadcast,
	"all-to-all":      gossip.AllToAll,
	"local-broadcast": gossip.LocalBroadcast,
}

func objectiveNames() []string {
	out := make([]string, 0, len(objectives))
	for k := range objectives {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// validate checks a request against the server limits and the driver's
// options schema, returning the normalized job or a field-level error.
// It never panics on any input (the fault-spec DSL parse included).
func (s *Server) validate(req Request) (*job, *FieldError) {
	d, ok := gossip.Lookup(req.Driver)
	if !ok {
		return nil, fieldErrf("driver", "unknown driver %q (have %s)",
			req.Driver, strings.Join(gossip.Names(), ", "))
	}

	g := req.Graph
	g.Family = strings.ToLower(strings.TrimSpace(g.Family))
	if !knownFamily(g.Family) {
		return nil, fieldErrf("graph.family", "unknown family %q (have %s)",
			req.Graph.Family, strings.Join(graphgen.Families(), ", "))
	}
	if g.N < 2 || g.N > s.cfg.MaxN {
		return nil, fieldErrf("graph.n", "n %d outside [2, %d]", g.N, s.cfg.MaxN)
	}
	if g.Latency < 0 || g.Latency > 1<<20 {
		return nil, fieldErrf("graph.latency", "latency %d outside [0, 2^20]", g.Latency)
	}
	if g.Latency == 0 {
		g.Latency = 1
	}
	if g.P < 0 || g.P > 1 {
		return nil, fieldErrf("graph.p", "p %v outside [0, 1]", g.P)
	}
	if g.Layers < 0 || g.Layers > 64 {
		return nil, fieldErrf("graph.layers", "layers %d outside [0, 64]", g.Layers)
	}
	// Zero the parameters the family ignores so the canonical form (and
	// therefore the cache key) does not split on irrelevant fields.
	switch g.Family {
	case "er", "gadget":
		if g.P == 0 {
			g.P = 0.3
		}
	default:
		g.P = 0
	}
	if g.Family == "ring" {
		if g.Layers == 0 {
			g.Layers = 6
		}
	} else {
		g.Layers = 0
	}
	// Bound what the family actually builds, not just the n parameter:
	// a ring multiplies n by layers, a dumbbell doubles it.
	if built := graphSpecNodes(g); built > s.cfg.MaxN {
		return nil, fieldErrf("graph.n", "%s with n=%d builds %d nodes, over the server cap %d",
			g.Family, g.N, built, s.cfg.MaxN)
	}

	if req.Workers < 0 || req.Workers > s.cfg.MaxWorkers {
		return nil, fieldErrf("workers", "workers %d outside [0, %d]", req.Workers, s.cfg.MaxWorkers)
	}
	if req.MaxRounds < 0 || req.MaxRounds > s.cfg.MaxRoundsCap {
		return nil, fieldErrf("max_rounds", "max_rounds %d outside [0, %d]", req.MaxRounds, s.cfg.MaxRoundsCap)
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS != nil {
		if *req.TimeoutMS <= 0 {
			return nil, fieldErrf("timeout_ms", "timeout_ms %d must be positive (omit it for the server default)", *req.TimeoutMS)
		}
		timeout = time.Duration(*req.TimeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}

	points := defaultProgressPoints
	if req.ProgressPoints != nil {
		if *req.ProgressPoints < 2 || *req.ProgressPoints > maxProgressPoints {
			return nil, fieldErrf("progress_points", "progress_points %d outside [2, %d]", *req.ProgressPoints, maxProgressPoints)
		}
		points = *req.ProgressPoints
	}

	var spec *adversity.Spec
	faultSpec := ""
	if strings.TrimSpace(req.FaultSpec) != "" {
		parsed, err := adversity.ParseSpec(req.FaultSpec)
		if err != nil {
			return nil, fieldErrf("fault_spec", "%v", err)
		}
		if !parsed.Empty() {
			spec = parsed
			faultSpec = parsed.String() // normalized DSL rendering
		}
	}

	can := canonical{
		Driver:    d.Name,
		Graph:     g,
		Seed:      req.Seed,
		MaxRounds: req.MaxRounds,
		FaultSpec: faultSpec,
	}
	if ferr := applyDriverFields(d, req, &can); ferr != nil {
		return nil, ferr
	}

	if req.Shards != 0 {
		if req.Shards < 2 {
			return nil, fieldErrf("shards", "shards %d must be 0 (run in-process) or >= 2", req.Shards)
		}
		workers := s.shardWorkers()
		if len(workers) == 0 {
			return nil, fieldErrf("shards", "distributed execution needs a fleet (start gossipd with -peers/-advertise)")
		}
		if req.Shards > len(workers) {
			return nil, fieldErrf("shards", "shards %d exceeds the fleet's %d workers", req.Shards, len(workers))
		}
		if !gossip.Distributable(d.Name) {
			return nil, fieldErrf("shards", "driver %q does not support distributed execution (distributable: push-pull, flood, dtg, superstep, election, echo)", d.Name)
		}
		if can.MaxInPerRound > 0 {
			return nil, fieldErrf("shards", "distributed execution does not support max_in_per_round")
		}
	}

	// The transport knob is execution-only, like workers and shards: it
	// never reaches the canonical form. "chan" runs the job for real
	// (gossip.RunNet), which supports exactly what the net mode supports
	// — a single-phase driver, a benign schedule, one process.
	transport := strings.ToLower(strings.TrimSpace(req.Transport))
	switch transport {
	case "", "sim":
		transport = ""
	case "chan":
		if d.Prepare == nil {
			return nil, fieldErrf("transport", "driver %q is multi-phase and has no real-transport mode (single-phase: push-pull, flood)", d.Name)
		}
		if req.Shards != 0 {
			return nil, fieldErrf("transport", "transport \"chan\" runs in one process; it cannot be combined with shards")
		}
		if spec != nil {
			return nil, fieldErrf("transport", "transport \"chan\" does not support fault_spec (the real fabric supplies its own adversity)")
		}
		if can.MaxInPerRound > 0 {
			return nil, fieldErrf("transport", "transport \"chan\" does not support max_in_per_round")
		}
		if can.Objective != "" && can.Objective != "broadcast" {
			return nil, fieldErrf("transport", "transport \"chan\" completion is broadcast-only, not %q", can.Objective)
		}
	default:
		return nil, fieldErrf("transport", "unknown transport %q (have sim, chan)", req.Transport)
	}

	jb := &job{can: can, transport: transport, workers: req.Workers, shards: req.Shards, timeout: timeout, points: points, spec: spec}
	jb.key = requestKey(can)
	return jb, nil
}

// applyDriverFields moves the driver-specific request fields into the
// canonical form, rejecting any field the driver's schema does not
// declare and any out-of-range value. Node ids are bounded by the
// family's built node count (graphgen.Spec.MinNodes — e.g. a dumbbell
// with n=8 has 16 nodes), not the raw n parameter.
func applyDriverFields(d *gossip.Driver, req Request, can *canonical) *FieldError {
	reject := func(field string) *FieldError {
		return fieldErrf(field, "driver %q does not accept %q (accepted keys: %s)",
			d.Name, field, strings.Join(d.RequestKeys(), ", "))
	}
	nonNeg := func(field string, set *int, dst *int) *FieldError {
		if set == nil {
			return nil
		}
		if !d.AcceptsKey(field) {
			return reject(field)
		}
		if *set < 0 {
			return fieldErrf(field, "%s %d must be >= 0", field, *set)
		}
		*dst = *set
		return nil
	}
	nodes := graphSpecNodes(can.Graph)
	if req.Source != nil {
		if !d.AcceptsKey("source") {
			return reject("source")
		}
		if *req.Source < 0 || *req.Source >= nodes {
			return fieldErrf("source", "source %d outside [0, %d) (%s with n=%d builds %d nodes)",
				*req.Source, nodes, can.Graph.Family, can.Graph.N, nodes)
		}
		can.Source = *req.Source
	}
	if len(req.Sources) > 0 {
		if !d.AcceptsKey("sources") {
			return reject("sources")
		}
		for _, s := range req.Sources {
			if s < 0 || s >= nodes {
				return fieldErrf("sources", "source %d outside [0, %d)", s, nodes)
			}
		}
		can.Sources = append([]int(nil), req.Sources...)
	}
	if req.Objective != nil {
		if !d.AcceptsKey("objective") {
			return reject("objective")
		}
		if _, ok := objectives[*req.Objective]; !ok {
			return fieldErrf("objective", "unknown objective %q (have %s)",
				*req.Objective, strings.Join(objectiveNames(), ", "))
		}
		can.Objective = *req.Objective
	}
	if req.Variant != nil {
		if !d.AcceptsKey("variant") {
			return reject("variant")
		}
		ok := false
		for _, v := range variants[d.Name] {
			if *req.Variant == v {
				ok = true
			}
		}
		if !ok {
			return fieldErrf("variant", "driver %q has no variant %q (have %s)",
				d.Name, *req.Variant, strings.Join(variants[d.Name], ", "))
		}
		can.Variant = *req.Variant
	}
	if ferr := nonNeg("ell", req.Ell, &can.Ell); ferr != nil {
		return ferr
	}
	if ferr := nonNeg("k", req.K, &can.K); ferr != nil {
		return ferr
	}
	if ferr := nonNeg("d", req.D, &can.D); ferr != nil {
		return ferr
	}
	if ferr := nonNeg("budget", req.Budget, &can.Budget); ferr != nil {
		return ferr
	}
	if ferr := nonNeg("max_in_per_round", req.MaxInPerRound, &can.MaxInPerRound); ferr != nil {
		return ferr
	}
	if ferr := nonNeg("lb_timeout", req.LBTimeout, &can.LBTimeout); ferr != nil {
		return ferr
	}
	if ferr := nonNeg("suspect_after", req.SuspectAfter, &can.SuspectAfter); ferr != nil {
		return ferr
	}
	if ferr := nonNeg("stable_rounds", req.StableRounds, &can.StableRounds); ferr != nil {
		return ferr
	}
	if req.KnownLatencies != nil {
		if !d.AcceptsKey("known_latencies") {
			return reject("known_latencies")
		}
		can.KnownLatencies = *req.KnownLatencies
	}
	if req.FaultTolerant != nil {
		if !d.AcceptsKey("fault_tolerant") {
			return reject("fault_tolerant")
		}
		can.FaultTolerant = *req.FaultTolerant
	}
	if req.SkipCheck != nil {
		if !d.AcceptsKey("skip_check") {
			return reject("skip_check")
		}
		can.SkipCheck = *req.SkipCheck
	}
	return nil
}

// graphSpecNodes is the built node count of a normalized GraphSpec (a
// lower bound only for gadget; see graphgen.Spec.MinNodes).
func graphSpecNodes(g GraphSpec) int {
	return graphgen.Spec{Family: g.Family, N: g.N, Layers: g.Layers}.MinNodes()
}

func knownFamily(name string) bool {
	for _, f := range graphgen.Families() {
		if f == name {
			return true
		}
	}
	return false
}

// bodyVersionSalt folds the rendered-body generation into every cache
// key. The disk store persists bodies across restarts, so when the body
// format changes incompatibly (schema 2 moved error events to the
// structured form and caches curves at full resolution), salting the
// keys retires the previous generation's entries instead of replaying
// them in the old shape. Bump the suffix alongside api.SchemaVersion.
const bodyVersionSalt = "gossipd-body-v2\n"

// requestKey hashes the canonical form into the memoization key surfaced
// to clients as request_key. Struct field order makes the JSON — and so
// the key — deterministic.
func requestKey(can canonical) string {
	b, err := json.Marshal(can)
	if err != nil {
		// canonical contains only marshalable scalar fields
		panic(fmt.Sprintf("server: canonical request marshal: %v", err))
	}
	sum := sha256.Sum256(append([]byte(bodyVersionSalt), b...))
	return hex.EncodeToString(sum[:16])
}

// driverOptions maps the job onto the registry's option surface.
func (j *job) driverOptions() gossip.DriverOptions {
	return gossip.DriverOptions{
		Source:         j.can.Source,
		Sources:        j.can.Sources,
		Objective:      objectives[j.can.Objective], // "" maps to the zero value, Broadcast
		Variant:        j.can.Variant,
		Seed:           j.can.Seed,
		MaxRounds:      j.can.MaxRounds,
		Ell:            j.can.Ell,
		K:              j.can.K,
		D:              j.can.D,
		Budget:         j.can.Budget,
		KnownLatencies: j.can.KnownLatencies,
		MaxInPerRound:  j.can.MaxInPerRound,
		FaultTolerant:  j.can.FaultTolerant,
		LBTimeout:      j.can.LBTimeout,
		SkipCheck:      j.can.SkipCheck,
		SuspectAfter:   j.can.SuspectAfter,
		StableRounds:   j.can.StableRounds,
		ExecOptions: gossip.ExecOptions{
			Adversity: j.spec,
			Workers:   j.workers,
		},
	}
}
