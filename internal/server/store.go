package server

import (
	"fmt"
	"os"
	"path/filepath"
)

// diskStore is the persistent tier of the result cache: a
// content-addressed directory of completed NDJSON bodies, keyed by the
// same sha256-derived request keys as the in-memory LRU. Bodies are
// deterministic, so the store never needs invalidation — a key's bytes
// are either absent or correct forever.
//
// Layout: <dir>/<key[:2]>/<key>.ndjson. The two-character shard keeps
// directory fan-out bounded (256 subdirectories) the way git's object
// store does. Writes go through a temp file in the same directory
// followed by an atomic rename, so a crash mid-write never leaves a
// truncated body where a key should be.
type diskStore struct {
	dir string
}

// newDiskStore opens (creating if needed) the store rooted at dir.
func newDiskStore(dir string) (*diskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: result store: %w", err)
	}
	return &diskStore{dir: dir}, nil
}

func (d *diskStore) path(key string) string {
	return filepath.Join(d.dir, key[:2], key+".ndjson")
}

// get returns the stored body for key, or ok=false when absent. Read
// errors degrade to a miss: the job re-executes and rewrites the entry.
func (d *diskStore) get(key string) ([]byte, bool) {
	if len(key) < 2 {
		return nil, false
	}
	body, err := os.ReadFile(d.path(key))
	if err != nil || len(body) == 0 {
		return nil, false
	}
	return body, true
}

// put persists body under key, atomically. Failures are swallowed: the
// store is a cache, and a write error only costs a future recompute.
func (d *diskStore) put(key string, body []byte) {
	if len(key) < 2 || len(body) == 0 {
		return
	}
	path := d.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+key+".tmp-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	if _, err := tmp.Write(body); err != nil {
		tmp.Close()
		os.Remove(name)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
	}
}
