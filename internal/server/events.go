package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"

	"gossip/internal/curve"
	"gossip/internal/gossip"
	"gossip/internal/server/api"
)

// The NDJSON wire types live in internal/server/api (shared with the
// gossipd CLI, loadgen and the tests); this file keeps the server-side
// aliases and the deterministic rendering helpers.
const (
	SchemaVersion = api.SchemaVersion
	ContentType   = api.ContentType
	CacheHeader   = api.CacheHeader
)

// JobResult is re-exported so existing server callers and tests keep
// compiling against the one wire definition.
type JobResult = api.JobResult

// defaultProgressPoints is the informed-curve cap a request gets when
// it does not set progress_points — the historical 32-line shape.
// maxProgressPoints bounds what a request may ask for. Bodies are
// cached at full resolution regardless (the estimator needs every
// change point); the cap is applied when a body is served
// (sampleStream), so it is an execution knob outside the cache key.
const (
	defaultProgressPoints = 32
	maxProgressPoints     = 4096
)

// mustLine marshals one event and appends the newline. Events are plain
// structs of scalars; a marshal failure is a programming error.
func mustLine(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("server: event marshal: %v", err))
	}
	return append(b, '\n')
}

func acceptedLine(jb *job) []byte {
	return mustLine(api.Accepted{
		SchemaVersion: SchemaVersion,
		Event:         "accepted",
		Driver:        jb.can.Driver,
		RequestKey:    jb.key,
	})
}

func errorLine(msg string) []byte {
	return mustLine(api.Error{
		SchemaVersion: SchemaVersion,
		Event:         "error",
		Error:         api.ErrorDetail{Message: msg},
	})
}

// resultLines renders the deterministic tail of a successful stream:
// the full-resolution informed-count curve followed by the result
// event. Cached bodies keep every change point; serving samples them
// down to the request's progress_points (sampleStream).
func resultLines(res gossip.DriverResult) []byte {
	var out []byte
	for _, p := range curve.FromInformedAt(res.InformedAt) {
		out = append(out, mustLine(api.Progress{
			SchemaVersion: SchemaVersion,
			Event:         "progress",
			Round:         p.Round,
			// Engine-derived curves are integral counts.
			Informed: int(p.Informed),
		})...)
	}
	out = append(out, mustLine(api.Result{
		SchemaVersion: SchemaVersion,
		Event:         "result",
		Result: api.JobResult{
			Rounds:       res.Rounds,
			Completed:    res.Completed,
			Exchanges:    res.Exchanges,
			Messages:     res.Messages,
			Dropped:      res.Dropped,
			Delivered:    res.Delivered,
			RumorPayload: res.RumorPayload,
			Winner:       res.Winner,
		},
	})...)
	return out
}

// progressPrefix identifies curve progress lines inside a rendered body
// byte-cheaply. The server renders every such line itself (mustLine of
// api.Progress), so the layout is exact; estimate progress events carry
// "stage" where "round" sits and estimate bodies never flow through
// sampling anyway.
var progressPrefix = []byte(`{"schema_version":` + strconv.Itoa(SchemaVersion) + `,"event":"progress","round":`)

// sampleStream rewrites a full-resolution body for serving: every
// maximal run of consecutive progress lines (one run per simulation,
// one per variant in a sweep body) is evenly sampled down to at most
// max lines, the first and last always kept — the same selection
// curve.Sample makes on points. A body whose runs already fit is
// returned unchanged, so default-shaped bodies serve with zero copies.
func sampleStream(body []byte, max int) []byte {
	if max < 2 {
		max = defaultProgressPoints
	}
	var out []byte
	changed := false
	for i := 0; i < len(body); {
		if !bytes.HasPrefix(body[i:], progressPrefix) {
			j := lineEnd(body, i)
			if changed {
				out = append(out, body[i:j]...)
			}
			i = j
			continue
		}
		start := i
		var starts []int
		for i < len(body) && bytes.HasPrefix(body[i:], progressPrefix) {
			starts = append(starts, i)
			i = lineEnd(body, i)
		}
		if len(starts) <= max {
			if changed {
				out = append(out, body[start:i]...)
			}
			continue
		}
		if !changed {
			changed = true
			out = append(out, body[:start]...)
		}
		for k := 0; k < max; k++ {
			ls := starts[k*(len(starts)-1)/(max-1)]
			out = append(out, body[ls:lineEnd(body, ls)]...)
		}
	}
	if !changed {
		return body
	}
	return out
}

// lineEnd returns the index one past line i's newline (or len(b) for an
// unterminated final line).
func lineEnd(b []byte, i int) int {
	j := bytes.IndexByte(b[i:], '\n')
	if j < 0 {
		return len(b)
	}
	return i + j + 1
}
