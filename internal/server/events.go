package server

import (
	"encoding/json"
	"fmt"
	"sort"

	"gossip/internal/gossip"
)

// SchemaVersion stamps every NDJSON event so clients can detect stream
// format changes, mirroring the experiment JSON artifact convention.
const SchemaVersion = 1

// ContentType is the response media type of the simulation stream.
const ContentType = "application/x-ndjson"

// CacheHeader reports whether the response body was replayed from the
// request cache ("hit") or computed by this request ("miss"). It lives in
// a header — never in the body — so identical requests produce
// byte-identical bodies whether cold or cached.
const CacheHeader = "X-Gossipd-Cache"

// The NDJSON stream of a simulation is: one "accepted" event, zero or
// more "progress" events (the informed-count curve, at most
// maxProgressEvents of them), then exactly one "result" or "error"
// event. Every event carries schema_version.
type acceptedEvent struct {
	SchemaVersion int    `json:"schema_version"`
	Event         string `json:"event"` // "accepted"
	Driver        string `json:"driver"`
	RequestKey    string `json:"request_key"`
}

type progressEvent struct {
	SchemaVersion int    `json:"schema_version"`
	Event         string `json:"event"` // "progress"
	Round         int    `json:"round"`
	Informed      int    `json:"informed"`
}

type resultEvent struct {
	SchemaVersion int       `json:"schema_version"`
	Event         string    `json:"event"` // "result"
	Result        JobResult `json:"result"`
}

type errorEvent struct {
	SchemaVersion int    `json:"schema_version"`
	Event         string `json:"event"` // "error"
	Error         string `json:"error"`
}

// JobResult is the final payload of a successful job: the normalized
// DriverResult transport totals. InformedAt is deliberately absent (it is
// O(n)); its shape is carried by the progress events instead.
type JobResult struct {
	Rounds       int    `json:"rounds"`
	Completed    bool   `json:"completed"`
	Exchanges    int64  `json:"exchanges"`
	Messages     int64  `json:"messages,omitempty"`
	Dropped      int64  `json:"dropped"`
	Delivered    int64  `json:"delivered"`
	RumorPayload int64  `json:"rumor_payload"`
	Winner       string `json:"winner,omitempty"`
}

// maxProgressEvents caps the informed-curve sampling so a 40k-round DTG
// run does not stream 40k lines; change points are sampled evenly with
// the first and last always kept.
const maxProgressEvents = 32

// mustLine marshals one event and appends the newline. Events are plain
// structs of scalars; a marshal failure is a programming error.
func mustLine(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("server: event marshal: %v", err))
	}
	return append(b, '\n')
}

func acceptedLine(jb *job) []byte {
	return mustLine(acceptedEvent{SchemaVersion, "accepted", jb.can.Driver, jb.key})
}

func errorLine(msg string) []byte {
	return mustLine(errorEvent{SchemaVersion, "error", msg})
}

// resultLines renders the deterministic tail of a successful stream: the
// sampled informed-count curve followed by the result event.
func resultLines(res gossip.DriverResult) []byte {
	var out []byte
	for _, p := range progressPoints(res, maxProgressEvents) {
		out = append(out, mustLine(p)...)
	}
	out = append(out, mustLine(resultEvent{SchemaVersion, "result", JobResult{
		Rounds:       res.Rounds,
		Completed:    res.Completed,
		Exchanges:    res.Exchanges,
		Messages:     res.Messages,
		Dropped:      res.Dropped,
		Delivered:    res.Delivered,
		RumorPayload: res.RumorPayload,
		Winner:       res.Winner,
	}})...)
	return out
}

// progressPoints derives the per-round informed-count curve from
// InformedAt (rounds where the count changed, cumulative), sampled down
// to at most max points. Drivers with no single watched rumor (the
// multi-phase pipelines) report no curve. The derivation is a pure
// function of the result, so the stream stays byte-identical across
// worker counts and cache replays.
func progressPoints(res gossip.DriverResult, max int) []progressEvent {
	if len(res.InformedAt) == 0 {
		return nil
	}
	// gains[r] = nodes first informed at round r (InformedAt values are
	// bounded by the final round).
	gains := map[int]int{}
	rounds := make([]int, 0, 16)
	for _, r := range res.InformedAt {
		if r < 0 {
			continue
		}
		if gains[r] == 0 {
			rounds = append(rounds, r)
		}
		gains[r]++
	}
	if len(rounds) == 0 {
		return nil
	}
	sort.Ints(rounds)
	points := make([]progressEvent, len(rounds))
	informed := 0
	for i, r := range rounds {
		informed += gains[r]
		points[i] = progressEvent{SchemaVersion, "progress", r, informed}
	}
	if len(points) <= max {
		return points
	}
	// Evenly sample, always keeping the first and last change points.
	sampled := make([]progressEvent, 0, max)
	for i := 0; i < max; i++ {
		idx := i * (len(points) - 1) / (max - 1)
		sampled = append(sampled, points[idx])
	}
	return sampled
}
