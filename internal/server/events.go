package server

import (
	"encoding/json"
	"fmt"
	"sort"

	"gossip/internal/gossip"
	"gossip/internal/server/api"
)

// The NDJSON wire types live in internal/server/api (shared with the
// gossipd CLI, loadgen and the tests); this file keeps the server-side
// aliases and the deterministic rendering helpers.
const (
	SchemaVersion = api.SchemaVersion
	ContentType   = api.ContentType
	CacheHeader   = api.CacheHeader
)

// JobResult is re-exported so existing server callers and tests keep
// compiling against the one wire definition.
type JobResult = api.JobResult

// maxProgressEvents caps the informed-curve sampling so a 40k-round DTG
// run does not stream 40k lines; change points are sampled evenly with
// the first and last always kept.
const maxProgressEvents = 32

// mustLine marshals one event and appends the newline. Events are plain
// structs of scalars; a marshal failure is a programming error.
func mustLine(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("server: event marshal: %v", err))
	}
	return append(b, '\n')
}

func acceptedLine(jb *job) []byte {
	return mustLine(api.Accepted{
		SchemaVersion: SchemaVersion,
		Event:         "accepted",
		Driver:        jb.can.Driver,
		RequestKey:    jb.key,
	})
}

func errorLine(msg string) []byte {
	return mustLine(api.Error{SchemaVersion: SchemaVersion, Event: "error", Error: msg})
}

// resultLines renders the deterministic tail of a successful stream: the
// sampled informed-count curve followed by the result event.
func resultLines(res gossip.DriverResult) []byte {
	var out []byte
	for _, p := range progressPoints(res, maxProgressEvents) {
		out = append(out, mustLine(p)...)
	}
	out = append(out, mustLine(api.Result{
		SchemaVersion: SchemaVersion,
		Event:         "result",
		Result: api.JobResult{
			Rounds:       res.Rounds,
			Completed:    res.Completed,
			Exchanges:    res.Exchanges,
			Messages:     res.Messages,
			Dropped:      res.Dropped,
			Delivered:    res.Delivered,
			RumorPayload: res.RumorPayload,
			Winner:       res.Winner,
		},
	})...)
	return out
}

// progressPoints derives the per-round informed-count curve from
// InformedAt (rounds where the count changed, cumulative), sampled down
// to at most max points. Drivers with no single watched rumor (the
// multi-phase pipelines) report no curve. The derivation is a pure
// function of the result, so the stream stays byte-identical across
// worker counts and cache replays.
func progressPoints(res gossip.DriverResult, max int) []api.Progress {
	if len(res.InformedAt) == 0 {
		return nil
	}
	// gains[r] = nodes first informed at round r (InformedAt values are
	// bounded by the final round).
	gains := map[int]int{}
	rounds := make([]int, 0, 16)
	for _, r := range res.InformedAt {
		if r < 0 {
			continue
		}
		if gains[r] == 0 {
			rounds = append(rounds, r)
		}
		gains[r]++
	}
	if len(rounds) == 0 {
		return nil
	}
	sort.Ints(rounds)
	points := make([]api.Progress, len(rounds))
	informed := 0
	for i, r := range rounds {
		informed += gains[r]
		points[i] = api.Progress{SchemaVersion: SchemaVersion, Event: "progress", Round: r, Informed: informed}
	}
	if len(points) <= max {
		return points
	}
	// Evenly sample, always keeping the first and last change points.
	sampled := make([]api.Progress, 0, max)
	for i := 0; i < max; i++ {
		idx := i * (len(points) - 1) / (max - 1)
		sampled = append(sampled, points[idx])
	}
	return sampled
}
