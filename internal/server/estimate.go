package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sync"
	"time"

	"gossip/internal/curve"
	"gossip/internal/estimate"
	"gossip/internal/gossip"
	"gossip/internal/graphgen"
	"gossip/internal/server/api"
)

// EstimateRequest is the JSON body of POST /v1/estimates; the struct
// lives in internal/server/api with the rest of the /v1 envelopes.
type EstimateRequest = api.EstimateRequest

// maxObservedPoints bounds a submitted curve; maxEstimateCandidates
// bounds the coarse lattice a single request may fan out.
const (
	maxObservedPoints      = 4096
	maxEstimateCandidates  = 128
	maxEstimateScales      = 4
	maxEstimateScale       = 8
	maxEstimateRefine      = 4
	defaultEstimateRefine  = 2
	defaultEstimateLossCap = 1.0 // loss_max must stay below certain spread
)

// errEstimateAborted marks transient (drain) aborts inside an estimate:
// streamed but never cached, like timeouts.
var errEstimateAborted = errors.New("server is draining; estimate aborted")

// estimateJob is a validated, normalized estimate request.
type estimateJob struct {
	base     *job
	ref      *job // nil when the request carried an observed curve
	observed curve.Curve
	grid     estimate.Grid
	refine   int
	key      string
}

// estimateCanonical is the key material of an estimate: the base and
// reference canonical forms, the observed curve, the normalized grid
// and the refinement depth. Struct field order makes the JSON — and so
// the key — deterministic.
type estimateCanonical struct {
	Base      canonical        `json:"base"`
	Observed  []api.CurvePoint `json:"observed"`
	Reference *canonical       `json:"reference"`
	Grid      api.EstimateGrid `json:"grid"`
	Refine    int              `json:"refine"`
}

// validateEstimate checks an estimate against the server limits and the
// curve/grid contracts, returning the normalized job or a field-level
// error. Like validate, it never panics on any input — FuzzEstimateValidate
// pins that.
func (s *Server) validateEstimate(req EstimateRequest) (*estimateJob, *FieldError) {
	base, ferr := s.validate(req.Base)
	if ferr != nil {
		return nil, fieldErrf("base."+ferr.Field, "%s", ferr.Message)
	}
	d, _ := gossip.Lookup(base.can.Driver)
	if !d.WarmStart() {
		return nil, fieldErrf("base.driver",
			"driver %q is a multi-phase pipeline and cannot be fitted (single-phase drivers only)", d.Name)
	}
	if base.can.FaultSpec != "" {
		return nil, fieldErrf("base.fault_spec", "an estimate's base must be benign; the candidates supply the faults")
	}
	if base.shards != 0 {
		return nil, fieldErrf("base.shards", "estimates run their candidate simulations in-process; shards is not supported")
	}
	nodes := graphSpecNodes(base.can.Graph)

	ej := &estimateJob{base: base}
	switch {
	case len(req.Observed) > 0 && req.Reference != nil:
		return nil, fieldErrf("observed", "set exactly one of observed and reference, not both")
	case len(req.Observed) == 0 && req.Reference == nil:
		return nil, fieldErrf("observed", "an estimate needs an observed curve or a reference job to simulate one")
	case req.Reference != nil:
		ref, ferr := s.validate(*req.Reference)
		if ferr != nil {
			return nil, fieldErrf("reference."+ferr.Field, "%s", ferr.Message)
		}
		rd, _ := gossip.Lookup(ref.can.Driver)
		if !rd.WarmStart() {
			return nil, fieldErrf("reference.driver",
				"driver %q reports no informed curve (single-phase drivers only)", rd.Name)
		}
		if ref.shards != 0 {
			return nil, fieldErrf("reference.shards", "estimates run the reference simulation in-process; shards is not supported")
		}
		ej.ref = ref
	default:
		if len(req.Observed) < 2 {
			return nil, fieldErrf("observed", "an observed curve needs at least 2 points")
		}
		if len(req.Observed) > maxObservedPoints {
			return nil, fieldErrf("observed", "%d points over the cap %d", len(req.Observed), maxObservedPoints)
		}
		prev := curve.Point{Round: -1}
		for i, p := range req.Observed {
			field := fmt.Sprintf("observed[%d]", i)
			if p.Round < 0 || p.Round > s.cfg.MaxRoundsCap {
				return nil, fieldErrf(field, "round %d outside [0, %d]", p.Round, s.cfg.MaxRoundsCap)
			}
			if p.Round <= prev.Round {
				return nil, fieldErrf(field, "rounds must be strictly increasing (%d after %d)", p.Round, prev.Round)
			}
			if math.IsNaN(p.Informed) || math.IsInf(p.Informed, 0) {
				return nil, fieldErrf(field, "informed count must be finite")
			}
			if p.Informed <= 0 {
				return nil, fieldErrf(field, "informed count %v must be positive", p.Informed)
			}
			if p.Informed < prev.Informed {
				return nil, fieldErrf(field, "informed counts must be non-decreasing (%v after %v)", p.Informed, prev.Informed)
			}
			if p.Informed > float64(nodes) {
				return nil, fieldErrf(field, "informed count %v exceeds the %d nodes the base graph builds", p.Informed, nodes)
			}
			prev = curve.Point{Round: p.Round, Informed: p.Informed}
			ej.observed = append(ej.observed, prev)
		}
	}

	grid := estimate.DefaultGrid(nodes)
	if req.Grid != nil {
		g := *req.Grid
		if g.LossMax != 0 || g.LossSteps != 0 {
			if math.IsNaN(g.LossMax) || g.LossMax < 0 || g.LossMax >= defaultEstimateLossCap {
				return nil, fieldErrf("grid.loss_max", "loss_max %v outside [0, 1)", g.LossMax)
			}
			if g.LossSteps < 1 || g.LossSteps > 16 {
				return nil, fieldErrf("grid.loss_steps", "loss_steps %d outside [1, 16]", g.LossSteps)
			}
			grid.LossMax, grid.LossSteps = g.LossMax, g.LossSteps
		}
		if g.ChurnMax != 0 || g.ChurnSteps != 0 {
			if g.ChurnMax < 0 || g.ChurnMax >= nodes {
				return nil, fieldErrf("grid.churn_max", "churn_max %d outside [0, %d)", g.ChurnMax, nodes)
			}
			if g.ChurnSteps < 1 || g.ChurnSteps > 8 {
				return nil, fieldErrf("grid.churn_steps", "churn_steps %d outside [1, 8]", g.ChurnSteps)
			}
			grid.ChurnMax, grid.ChurnSteps = g.ChurnMax, g.ChurnSteps
		}
		if len(g.Scales) > 0 {
			if len(g.Scales) > maxEstimateScales {
				return nil, fieldErrf("grid.scales", "%d scales over the cap %d", len(g.Scales), maxEstimateScales)
			}
			for i, sc := range g.Scales {
				if sc < 1 || sc > maxEstimateScale {
					return nil, fieldErrf("grid.scales", "scale %d outside [1, %d]", sc, maxEstimateScale)
				}
				if i > 0 && sc <= g.Scales[i-1] {
					return nil, fieldErrf("grid.scales", "scales must be strictly increasing")
				}
				if base.can.Graph.Latency*sc > 1<<20 {
					return nil, fieldErrf("grid.scales", "scale %d lifts the base latency %d over 2^20", sc, base.can.Graph.Latency)
				}
			}
			grid.Scales = append([]int(nil), g.Scales...)
		}
	}
	// The defaults always pass these bounds; re-check after overrides.
	if n := len(grid.Candidates()); n > maxEstimateCandidates {
		return nil, fieldErrf("grid", "%d coarse candidates over the cap %d", n, maxEstimateCandidates)
	}
	for _, sc := range grid.Scales {
		if base.can.Graph.Latency*sc > 1<<20 {
			return nil, fieldErrf("grid.scales", "scale %d lifts the base latency %d over 2^20", sc, base.can.Graph.Latency)
		}
	}
	ej.grid = grid

	ej.refine = defaultEstimateRefine
	if req.Refine != nil {
		if *req.Refine < 0 || *req.Refine > maxEstimateRefine {
			return nil, fieldErrf("refine", "refine %d outside [0, %d]", *req.Refine, maxEstimateRefine)
		}
		ej.refine = *req.Refine
	}

	can := estimateCanonical{
		Base:   base.can,
		Grid:   api.EstimateGrid{LossMax: grid.LossMax, LossSteps: grid.LossSteps, ChurnMax: grid.ChurnMax, ChurnSteps: grid.ChurnSteps, Scales: grid.Scales},
		Refine: ej.refine,
	}
	for _, p := range ej.observed {
		can.Observed = append(can.Observed, api.CurvePoint{Round: p.Round, Informed: p.Informed})
	}
	if ej.ref != nil {
		refCan := ej.ref.can
		can.Reference = &refCan
	}
	ej.key = hashKey(can)
	return ej, nil
}

// handleEstimate serves POST /v1/estimates on the shared
// cache/coalesce/leader loop. Estimate bodies are served verbatim
// (their progress events are scored candidates, not curve points, so
// progress_points sampling does not apply).
func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	s.met.inflight.Add(1)
	defer s.met.inflight.Add(-1)

	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var req EstimateRequest
	if err := dec.Decode(&req); err != nil {
		writeFieldError(w, fieldErrf("body", "decoding estimate request: %v", err))
		return
	}
	ej, ferr := s.validateEstimate(req)
	if ferr != nil {
		writeFieldError(w, ferr)
		return
	}

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(s.drainCtx, cancel)
	defer stop()

	s.serveJob(w, ctx, ej.key, nil,
		func(w http.ResponseWriter, ctx context.Context, f *flight) { s.runEstimateLeader(w, ctx, ej, f) })
}

// estChunk is one ordered piece of the estimate stream after the
// accepted line; nondet marks wall-clock content (drain aborts) that
// must keep the body out of the cache.
type estChunk struct {
	line   []byte
	nondet bool
}

// runEstimateLeader mirrors runSweepLeader: queue for a slot, stream
// the fit's progress, publish the outcome unless it was transient. The
// base request's timeout governs the whole estimate.
func (s *Server) runEstimateLeader(w http.ResponseWriter, ctx context.Context, ej *estimateJob, f *flight) {
	s.met.queued.Add(1)
	err := s.pool.Acquire(ctx)
	s.met.queued.Add(-1)
	if err != nil {
		if f != nil {
			s.resolve(ej.key, f, nil)
		}
		if s.Draining() {
			writeUnavailable(w)
		}
		return
	}

	accepted := estimateAcceptedLine(ej)
	s.met.misses.Add(1)
	s.met.estimates.Add(1)
	w.Header().Set(CacheHeader, "miss")
	w.Header().Set("Content-Type", ContentType)
	w.WriteHeader(http.StatusOK)
	flushWrite(w, accepted)

	// Generous buffer: every eval emits one chunk, plus the terminal one.
	out := make(chan estChunk, len(ej.grid.Candidates())+9*(ej.refine+1)+8)
	s.met.running.Add(1)
	go func() {
		defer s.met.running.Add(-1)
		s.produceEstimate(ej, out)
	}()

	timer := time.NewTimer(ej.base.timeout)
	defer timer.Stop()
	body := append([]byte(nil), accepted...)
	cacheable := true
	for {
		select {
		case c, ok := <-out:
			if !ok {
				if cacheable {
					s.publish(ej.key, body)
					if f != nil {
						s.resolve(ej.key, f, body)
					}
					s.met.completed.Add(1)
				} else {
					if f != nil {
						s.resolve(ej.key, f, nil)
					}
					s.met.failed.Add(1)
				}
				return
			}
			cacheable = cacheable && !c.nondet
			body = append(body, c.line...)
			flushWrite(w, c.line)
		case <-timer.C:
			// Wall-clock, not canonical: never cached. The producer keeps
			// going so candidate bodies still land in the shared cache.
			if f != nil {
				s.resolve(ej.key, f, nil)
			}
			s.met.failed.Add(1)
			flushWrite(w, errorLine(fmt.Sprintf("estimate exceeded its %v execution timeout", ej.base.timeout)))
			return
		}
	}
}

// produceEstimate computes the stream after the accepted line: resolve
// the observation (simulating the reference on the slot the caller
// acquired if needed), release the slot, then run the coarse-to-fine
// fit with candidate simulations fanning out on their own pool slots —
// the leader-releases-before-fan-out pattern produceSweep uses, so an
// estimate makes progress even on a 1-slot pool.
func (s *Server) produceEstimate(ej *estimateJob, out chan<- estChunk) {
	defer close(out)
	if s.cfg.gate != nil {
		s.cfg.gate(ej.key)
	}
	observed := ej.observed
	if ej.ref != nil {
		cv, err := s.estimateEvalJob(ej.ref, true)
		s.pool.Release()
		if err != nil {
			out <- estChunk{line: errorLine("reference: " + err.Error()), nondet: errors.Is(err, errEstimateAborted)}
			return
		}
		if len(cv) == 0 {
			out <- estChunk{line: errorLine("reference simulation produced no informed curve")}
			return
		}
		observed = cv
	} else {
		s.pool.Release()
	}

	nodes := graphSpecNodes(ej.base.can.Graph)
	protected := ej.base.can.Source

	// Warm prefixes are per latency scale (the one candidate axis a fork
	// cannot diverge on), created lazily under a lock; creation is a
	// deterministic function of the scale, so the lazy order never shows.
	var mu sync.Mutex
	prefixes := map[int]*gossip.WarmPrefix{}
	prefixErrs := map[int]error{}
	forkFor := func(scale int) (*gossip.WarmPrefix, error) {
		mu.Lock()
		defer mu.Unlock()
		if err, ok := prefixErrs[scale]; ok {
			return nil, err
		}
		if p, ok := prefixes[scale]; ok {
			return p, nil
		}
		g, err := graphgen.Build(candidateGraphSpec(ej.base, scale))
		if err == nil {
			var p *gossip.WarmPrefix
			p, err = gossip.Fork(ej.base.can.Driver, g, ej.base.driverOptions(), estimate.ChurnLeave)
			if err == nil {
				prefixes[scale] = p
				return p, nil
			}
		}
		prefixErrs[scale] = err
		return nil, err
	}

	evalCold := func(c estimate.Candidate) (curve.Curve, error) {
		return s.estimateEvalJob(s.candidateJob(ej.base, c, nodes, protected), false)
	}
	evalWarm := func(c estimate.Candidate) (curve.Curve, error) {
		if err := s.pool.Acquire(s.drainCtx); err != nil {
			return nil, errEstimateAborted
		}
		defer s.pool.Release()
		p, err := forkFor(c.Scale)
		if err != nil {
			return nil, err
		}
		opts := ej.base.driverOptions()
		opts.Adversity = c.Spec(nodes, protected)
		res, err := p.Resume(opts)
		if err != nil {
			return nil, err
		}
		return curve.FromInformedAt(res.InformedAt), nil
	}

	evaluated := 0
	res, err := estimate.Fit(estimate.Config{
		Observed: observed,
		Grid:     ej.grid,
		Refine:   ej.refine,
		EvalCold: evalCold,
		EvalWarm: evalWarm,
		Batch:    s.estimateBatch,
		OnEval: func(e estimate.Eval) {
			evaluated++
			out <- estChunk{line: estimateProgressLine(e, evaluated)}
		},
	})
	if err != nil {
		out <- estChunk{line: errorLine(err.Error()), nondet: errors.Is(err, errEstimateAborted)}
		return
	}
	out <- estChunk{line: estimateLine(observed, res, nodes, protected)}
}

// estimateBatch fans one fit stage across the pool, one goroutine (and
// one slot, acquired inside eval) per candidate, outcomes in index
// order. A drain abort anywhere fails the whole batch as transient.
func (s *Server) estimateBatch(_ string, cands []estimate.Candidate, eval func(estimate.Candidate) (curve.Curve, error)) ([]estimate.BatchOut, error) {
	outs := make([]estimate.BatchOut, len(cands))
	var wg sync.WaitGroup
	for i, c := range cands {
		wg.Add(1)
		go func(i int, c estimate.Candidate) {
			defer wg.Done()
			cv, err := eval(c)
			outs[i] = estimate.BatchOut{Curve: cv, Err: err}
		}(i, c)
	}
	wg.Wait()
	for _, o := range outs {
		if errors.Is(o.Err, errEstimateAborted) {
			return nil, errEstimateAborted
		}
	}
	return outs, nil
}

// candidateGraphSpec is the base topology with the candidate's latency
// scale applied.
func candidateGraphSpec(base *job, scale int) graphgen.Spec {
	return graphgen.Spec{
		Family:  base.can.Graph.Family,
		N:       base.can.Graph.N,
		Latency: base.can.Graph.Latency * scale,
		P:       base.can.Graph.P,
		Layers:  base.can.Graph.Layers,
		Seed:    base.can.Seed,
	}
}

// candidateJob maps a candidate onto the exact /v1/simulations job it
// parameterizes — same canonical form, same request key — so candidate
// evaluations share cache entries with direct simulation requests.
func (s *Server) candidateJob(base *job, c estimate.Candidate, nodes, protected int) *job {
	can := base.can
	can.Graph.Latency = base.can.Graph.Latency * c.Scale
	spec := c.Spec(nodes, protected)
	if spec != nil {
		can.FaultSpec = spec.String()
	}
	jb := &job{can: can, workers: base.workers, timeout: base.timeout, points: maxProgressPoints, spec: spec}
	jb.key = requestKey(can)
	return jb
}

// estimateEvalJob runs one simulation job for the estimator: replay its
// curve from the shared cache when possible, otherwise execute and
// publish the exact body /v1/simulations would have (byte-identical, so
// the entry serves both surfaces). haveSlot marks the caller as already
// holding a pool slot (the leader resolving its reference); otherwise
// one is acquired on the drain context.
func (s *Server) estimateEvalJob(jb *job, haveSlot bool) (curve.Curve, error) {
	if !s.cache.disabled() {
		if body, ok := s.lookup(jb.key); ok {
			return curveFromBody(body)
		}
	}
	if !haveSlot {
		if err := s.pool.Acquire(s.drainCtx); err != nil {
			return nil, errEstimateAborted
		}
		defer s.pool.Release()
	}
	g, err := graphgen.Build(graphgen.Spec{
		Family:  jb.can.Graph.Family,
		N:       jb.can.Graph.N,
		Latency: jb.can.Graph.Latency,
		P:       jb.can.Graph.P,
		Layers:  jb.can.Graph.Layers,
		Seed:    jb.can.Seed,
	})
	if err != nil {
		err = fmt.Errorf("building graph: %w", err)
		s.publish(jb.key, append(append([]byte(nil), acceptedLine(jb)...), errorLine(err.Error())...))
		return nil, err
	}
	res, err := gossip.Dispatch(jb.can.Driver, g, jb.driverOptions())
	if err != nil {
		// Deterministic like runLeader's driver errors: publish the error
		// stream so replays and direct requests see the identical body.
		s.publish(jb.key, append(append([]byte(nil), acceptedLine(jb)...), errorLine(err.Error())...))
		return nil, err
	}
	body := append(append([]byte(nil), acceptedLine(jb)...), resultLines(res)...)
	s.publish(jb.key, body)
	return curve.FromInformedAt(res.InformedAt), nil
}

// curveFromBody re-derives the informed curve from a cached simulation
// body (full resolution — cached bodies are never sampled). A body that
// terminates in an error event yields that error.
func curveFromBody(body []byte) (curve.Curve, error) {
	var c curve.Curve
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var last api.Event
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var ev api.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("cached body: %w", err)
		}
		if ev.Event == "progress" {
			c = append(c, curve.Point{Round: ev.Round, Informed: float64(ev.Informed)})
		}
		last = ev
	}
	if last.Event == "error" && last.Error != nil {
		return nil, errors.New(last.Error.Message)
	}
	return c, nil
}

func estimateAcceptedLine(ej *estimateJob) []byte {
	return mustLine(api.Accepted{
		SchemaVersion: SchemaVersion,
		Event:         "accepted",
		Driver:        ej.base.can.Driver,
		RequestKey:    ej.key,
	})
}

// estimateProgressLine renders one scored candidate. Scores can be +Inf
// (failed candidates), which JSON cannot carry — those events omit the
// score and carry the error string instead.
func estimateProgressLine(e estimate.Eval, evaluated int) []byte {
	p := api.EstimateProgress{
		SchemaVersion: SchemaVersion,
		Event:         "progress",
		Stage:         e.Stage,
		Candidate:     api.EstimateCandidate{Loss: e.Candidate.Loss, Churn: e.Candidate.Churn, Scale: e.Candidate.Scale},
		Err:           e.Err,
		Evaluated:     evaluated,
	}
	if !math.IsInf(e.Score, 0) && !math.IsNaN(e.Score) {
		sc := e.Score
		p.Score = &sc
	}
	return mustLine(p)
}

func estimateLine(observed curve.Curve, res *estimate.Result, nodes, protected int) []byte {
	faultSpec := ""
	if spec := res.Best.Spec(nodes, protected); spec != nil {
		faultSpec = spec.String()
	}
	return mustLine(api.Estimate{
		SchemaVersion: SchemaVersion,
		Event:         "estimate",
		Best:          api.EstimateCandidate{Loss: res.Best.Loss, Churn: res.Best.Churn, Scale: res.Best.Scale},
		FaultSpec:     faultSpec,
		Score:         res.Score,
		Residual: api.EstimateResidual{
			ICC:                res.Score,
			FinalInformedDelta: res.BestCurve.Final() - observed.Final(),
			RoundsDelta:        res.BestCurve.FinalRound() - observed.FinalRound(),
		},
		Candidates:  res.Evaluated,
		CoarseScore: res.CoarseScore,
	})
}
