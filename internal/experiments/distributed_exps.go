package experiments

import (
	"context"
	"fmt"
	"reflect"
	"time"

	"gossip/internal/gossip"
	"gossip/internal/graphgen"
	"gossip/internal/runner"
)

// expE28Distributed measures what shard-partitioned execution buys a
// large push-pull broadcast: the serial engine against the distributed
// engine (2 workers over the in-process exchanger), on the same random
// regular graphs the service shards over HTTP. Two ratios are reported
// side by side, deliberately:
//
//   - wall ratio — honest end-to-end wall clock. On a multi-core host
//     this is the real speedup; on a single-core host (this repo's CI
//     class) the two workers time-slice one CPU and the ratio sits
//     below 1, which the table records rather than hides.
//   - compute ratio — serial wall clock over the slowest worker's
//     compute time (its wall minus barrier-wait, per DistStats). This
//     is the critical-path speedup the partition itself creates, the
//     quantity that turns into wall-clock speedup once each worker
//     owns a core.
//
// The table doubles as a correctness record: every distributed run must
// reproduce the serial run bit-identically.
var expE28Distributed = Experiment{
	ID:     "E28",
	Title:  "distributed execution: serial vs 2-shard partitioned push-pull",
	Source: "engineering extension (deterministic shard partitioning over the Theorem 29 engine)",
	Run:    runE28,
}

func runE28(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	sizes := []int{1 << 16, 1 << 18, 1 << 20}
	if cfg.Quick {
		sizes = []int{1 << 12, 1 << 14}
	}
	const shards = 2
	names := cellNames(len(sizes), func(i int) string {
		return fmt.Sprintf("push-pull(n=%d)", sizes[i])
	})
	cells, err := runGrid(ctx, cfg, "E28", names, cfg.Trials,
		func(ctx context.Context, c runner.Coord, seed uint64) (runner.Sample, error) {
			n := sizes[c.CellIndex]
			g, err := graphgen.Build(graphgen.Spec{Family: "regular", N: n, Latency: 1, Seed: seed})
			if err != nil {
				return runner.Sample{}, err
			}
			opts := gossip.DriverOptions{Source: 0, Seed: seed, MaxRounds: 1 << 14}

			serialStart := time.Now()
			serial, err := gossip.Dispatch("push-pull", g, opts)
			if err != nil {
				return runner.Sample{}, err
			}
			serialNS := float64(time.Since(serialStart))

			distStart := time.Now()
			dist, stats, err := gossip.DispatchLocalSharded("push-pull", g, opts, shards)
			if err != nil {
				return runner.Sample{}, err
			}
			distNS := float64(time.Since(distStart))

			agree := 1.0
			if !reflect.DeepEqual(serial.InformedAt, dist.InformedAt) ||
				serial.Rounds != dist.Rounds || serial.Exchanges != dist.Exchanges ||
				serial.Delivered != dist.Delivered || serial.RumorPayload != dist.RumorPayload {
				agree = 0
			}
			// Critical path: the slowest worker's non-waiting time. The
			// barrier protocol means every worker finishes the run; the one
			// that computed longest bounds any real-time schedule.
			var maxComputeNS, crossIntents float64
			for _, st := range stats {
				if v := float64(st.ComputeNS); v > maxComputeNS {
					maxComputeNS = v
				}
				crossIntents += float64(st.CrossIntents)
			}
			return runner.V(map[string]float64{
				"serialMS":  serialNS / 1e6,
				"distMS":    distNS / 1e6,
				"computeMS": maxComputeNS / 1e6,
				"wallX":     serialNS / distNS,
				"computeX":  serialNS / maxComputeNS,
				"cross":     crossIntents,
				"agree":     agree,
			}), nil
		})
	if err != nil {
		return nil, fmt.Errorf("E28: %w", err)
	}
	tbl := &Table{
		ID:    "E28",
		Title: "distributed push-pull scaling (serial vs 2-shard partition)",
		Claim: "partitioning the round loop across 2 workers roughly halves the critical-path compute time while reproducing the serial run bit-identically",
		Headers: []string{
			"cell", "serial ms", "dist ms", "critical-path ms", "wall ×", "compute ×", "cross intents", "dist ≡ serial",
		},
	}
	for i, name := range names {
		cell := &cells[i]
		tbl.AddRow(name, cell.Mean("serialMS"), cell.Mean("distMS"),
			cell.Mean("computeMS"), cell.Mean("wallX"), cell.Mean("computeX"),
			cell.Mean("cross"), cell.Min("agree") == 1)
	}
	tbl.AddNote("compute × is serial wall over the slowest worker's compute time (its OS thread's CPU clock on Linux, wall minus barrier wait elsewhere): the speedup the partition creates once workers own separate cores")
	tbl.AddNote("wall × is honest end-to-end wall clock; below 1 on a single-core host, where both workers time-slice one CPU")
	tbl.AddNote("the same partition runs over HTTP in gossipd's fleet mode; CI's distributed-smoke byte-compares that path against a single process")
	return tbl, nil
}
