package experiments

import (
	"context"
	"fmt"

	"gossip/internal/adversity"
	"gossip/internal/gossip"
	"gossip/internal/graphgen"
	"gossip/internal/runner"
	"gossip/internal/stats"
)

// expE24LossSweep measures push-pull one-to-all under uniform
// per-exchange message loss: rumor spreading is an epidemic process, so
// dropping each delivery independently with probability p thins the
// effective contact rate by (1-p) and the spread time should grow by
// roughly 1/(1-p) — the removal/attrition dynamics the epidemic
// literature (Lega 2020; Pandey et al. 2020, see PAPERS.md) studies.
// Every trial re-runs 8-way sharded and must match the serial run
// exactly: a continuously-executed proof that fault schedules preserve
// the engine's worker-count determinism.
var expE24LossSweep = Experiment{
	ID:     "E24",
	Title:  "push-pull under message loss (epidemic slowdown sweep)",
	Source: "engineering extension of Theorem 29; epidemic attrition per PAPERS.md",
	Run:    runE24,
}

func runE24(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	n := 256
	if cfg.Quick {
		n = 64
	}
	losses := []float64{0, 0.05, 0.1, 0.2, 0.3}
	names := cellNames(len(losses), func(i int) string {
		return fmt.Sprintf("loss=%.0f%%", losses[i]*100)
	})
	cells, err := runGrid(ctx, cfg, "E24", names, cfg.Trials,
		func(ctx context.Context, c runner.Coord, seed uint64) (runner.Sample, error) {
			g, err := graphgen.RandomRegular(n, 4, 1, graphgen.NewRand(seed))
			if err != nil {
				return runner.Sample{}, err
			}
			var spec *adversity.Spec
			if p := losses[c.CellIndex]; p > 0 {
				spec = &adversity.Spec{Loss: p}
			}
			opts := gossip.DriverOptions{Source: 0, Seed: seed, MaxRounds: 1 << 14, ExecOptions: gossip.ExecOptions{Adversity: spec}}
			serial, err := gossip.Dispatch("push-pull", g, opts)
			if err != nil {
				return runner.Sample{}, err
			}
			opts.Workers = 8
			sharded, err := gossip.Dispatch("push-pull", g, opts)
			if err != nil {
				return runner.Sample{}, err
			}
			if serial.Rounds != sharded.Rounds || serial.Completed != sharded.Completed ||
				serial.Exchanges != sharded.Exchanges || serial.Dropped != sharded.Dropped ||
				serial.Delivered != sharded.Delivered || serial.RumorPayload != sharded.RumorPayload {
				return runner.Sample{}, fmt.Errorf(
					"shard determinism violated under loss=%v seed=%d: w1 %+v vs w8 %+v",
					losses[c.CellIndex], seed, serial, sharded)
			}
			if !serial.Completed {
				return runner.Sample{}, fmt.Errorf("incomplete at loss=%v", losses[c.CellIndex])
			}
			dropFrac := 0.0
			if serial.Exchanges > 0 {
				dropFrac = float64(serial.Dropped) / float64(serial.Exchanges)
			}
			return runner.V(map[string]float64{
				"rounds":    float64(serial.Rounds),
				"exchanges": float64(serial.Exchanges),
				"dropfrac":  dropFrac,
			}), nil
		})
	if err != nil {
		return nil, fmt.Errorf("E24: %w", err)
	}
	tbl := &Table{
		ID:    "E24",
		Title: "push-pull under message loss (4-regular random graph)",
		Claim: "per-exchange loss p thins the epidemic contact rate: spread time grows smoothly, staying near the 1/(1-p) slowdown",
		Headers: []string{
			"loss", "mean rounds", "p90", "slowdown", "1/(1-p)", "measured drop frac",
		},
	}
	base := stats.Summarize(cells[0].Values("rounds")).Mean
	for i, name := range names {
		sum := stats.Summarize(cells[i].Values("rounds"))
		slowdown := 0.0
		if base > 0 {
			slowdown = sum.Mean / base
		}
		tbl.AddRow(name, sum.Mean, sum.P90, slowdown, 1/(1-losses[i]), cells[i].Mean("dropfrac"))
	}
	tbl.AddNote("every trial re-ran with Workers=8 under the same loss schedule and matched the serial run exactly")
	tbl.AddNote("measured drop fraction tracks the configured probability: losses hit delivered exchanges only, per the adversity accounting")
	return tbl, nil
}

// expE25Churn measures broadcast resilience under node churn: a
// fraction of nodes leaves early and rejoins mid-run, either retaining
// their rumor state or rejoining amnesic. Push-pull routes around the
// absences; amnesia forces re-dissemination, so it can only be slower
// than retention. Completion is judged over currently-alive nodes (the
// survivors), and every trial asserts serial/sharded equality.
var expE25Churn = Experiment{
	ID:     "E25",
	Title:  "churn resilience: retention vs amnesia rejoins",
	Source: "engineering extension of Section 6 (robustness discussion)",
	Run:    runE25,
}

func runE25(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	n := 64
	if cfg.Quick {
		n = 32
	}
	churned := []int{0, n / 16, n / 8, n / 4}
	type variant struct {
		name    string
		amnesia bool
	}
	variants := []variant{{"retention", false}, {"amnesia", true}}
	var names []string
	for _, v := range variants {
		for _, k := range churned {
			names = append(names, fmt.Sprintf("%s churned=%d", v.name, k))
		}
	}
	cellCase := func(idx int) (variant, int) {
		return variants[idx/len(churned)], churned[idx%len(churned)]
	}
	cells, err := runGrid(ctx, cfg, "E25", names, cfg.Trials,
		func(ctx context.Context, c runner.Coord, seed uint64) (runner.Sample, error) {
			v, k := cellCase(c.CellIndex)
			g, err := graphgen.RandomRegular(n, 4, 1, graphgen.NewRand(seed))
			if err != nil {
				return runner.Sample{}, err
			}
			var spec *adversity.Spec
			if k > 0 {
				spec = &adversity.Spec{}
				for i := 0; i < k; i++ {
					// Nodes 1..k (never the source) leave at round 3,
					// staggered rejoins from round 12.
					spec.Churn = append(spec.Churn, adversity.Churn{
						Node: 1 + i, Leave: 3, Rejoin: 12 + i%5, Amnesia: v.amnesia,
					})
				}
			}
			opts := gossip.DriverOptions{Source: 0, Seed: seed, MaxRounds: 1 << 14, ExecOptions: gossip.ExecOptions{Adversity: spec}}
			serial, err := gossip.Dispatch("push-pull", g, opts)
			if err != nil {
				return runner.Sample{}, err
			}
			opts.Workers = 8
			sharded, err := gossip.Dispatch("push-pull", g, opts)
			if err != nil {
				return runner.Sample{}, err
			}
			if serial.Rounds != sharded.Rounds || serial.Completed != sharded.Completed ||
				serial.Exchanges != sharded.Exchanges || serial.Dropped != sharded.Dropped ||
				serial.Delivered != sharded.Delivered || serial.RumorPayload != sharded.RumorPayload {
				return runner.Sample{}, fmt.Errorf(
					"shard determinism violated (%s, churned=%d, seed=%d)", v.name, k, seed)
			}
			return runner.V(map[string]float64{
				"rounds":  float64(serial.Rounds),
				"ok":      b2f(serial.Completed),
				"dropped": float64(serial.Dropped),
			}), nil
		})
	if err != nil {
		return nil, fmt.Errorf("E25: %w", err)
	}
	tbl := &Table{
		ID:    "E25",
		Title: "churn resilience (push-pull, 4-regular random graph)",
		Claim: "push-pull completes through leave/rejoin churn; amnesia rejoins cost extra rounds over retention",
		Headers: []string{
			"variant", "churned", "mean rounds", "p90", "mean dropped", "all complete",
		},
	}
	for i := range cells {
		v, k := cellCase(i)
		sum := stats.Summarize(cells[i].Values("rounds"))
		tbl.AddRow(v.name, k, sum.Mean, sum.P90, cells[i].Mean("dropped"), cells[i].Min("ok") == 1)
	}
	tbl.AddNote("exchanges in flight across a node's down interval are dropped (the node neither responds nor forwards); completion is judged over currently-alive nodes")
	tbl.AddNote("every trial re-ran with Workers=8 under the same churn schedule and matched the serial run exactly")
	return tbl, nil
}
