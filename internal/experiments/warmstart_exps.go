package experiments

import (
	"context"
	"fmt"
	"reflect"

	"gossip/internal/adversity"
	"gossip/internal/gossip"
	"gossip/internal/graphgen"
	"gossip/internal/runner"
)

// expE27WarmSweep measures what warm-start forking buys a parameter
// sweep: one shared prefix (gossip.Fork at half the base run) resumed
// once per loss-rate variant, against the cold baseline that replays
// the prefix for every variant. Cost is reported in simulated rounds —
// a deterministic counter, like every experiment table; wall-clock
// speedup belongs to BenchmarkSweepWarmStart, where the regression gate
// can see it. The table doubles as a correctness record: the control
// variant must reproduce the cold run bit-for-bit, and a diverged
// variant resumed twice must agree with itself.
var expE27WarmSweep = Experiment{
	ID:     "E27",
	Title:  "warm-start sweeps: shared-prefix forking vs cold replay per variant",
	Source: "engineering extension (snapshot/restore under the Theorem 29 engine)",
	Run:    runE27,
}

func runE27(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	fanouts := []int{4, 8, 16}
	side := 16
	if cfg.Quick {
		fanouts = []int{4, 8}
		side = 8
	}
	names := cellNames(len(fanouts), func(i int) string {
		return fmt.Sprintf("sweep(variants=%d)", fanouts[i])
	})
	cells, err := runGrid(ctx, cfg, "E27", names, cfg.Trials,
		func(ctx context.Context, c runner.Coord, seed uint64) (runner.Sample, error) {
			variants := fanouts[c.CellIndex]
			g := graphgen.Grid(side, side, 2)
			base := gossip.DriverOptions{Source: 0, Seed: seed, MaxRounds: 1 << 14}

			cold, err := gossip.Dispatch("push-pull", g, base)
			if err != nil {
				return runner.Sample{}, err
			}
			w, err := gossip.Fork("push-pull", g, base, cold.Rounds/2)
			if err != nil {
				return runner.Sample{}, err
			}
			fork := w.Round()

			agree := 1.0
			coldRounds, warmRounds := 0.0, float64(fork)
			for v := 0; v < variants; v++ {
				opts := base
				if v > 0 {
					// Diverge on the fault schedule from the fork round on:
					// loss rates fanning out over the variants.
					loss := 0.5 * float64(v) / float64(variants)
					opts.Adversity = adversity.MustParseSpec(fmt.Sprintf("loss=%.3f", loss))
				}
				res, err := w.Resume(opts)
				if err != nil {
					return runner.Sample{}, err
				}
				// Cold baseline cost: replaying the prefix per variant means
				// each variant simulates all of its rounds from round 0.
				coldRounds += float64(res.Rounds)
				warmRounds += float64(res.Rounds - fork)
				if v == 0 && !reflect.DeepEqual(res.InformedAt, cold.InformedAt) {
					agree = 0 // control variant must equal the cold run
				}
				if v == 1 {
					again, err := w.Resume(opts)
					if err != nil {
						return runner.Sample{}, err
					}
					if !reflect.DeepEqual(again.InformedAt, res.InformedAt) ||
						again.Exchanges != res.Exchanges {
						agree = 0 // diverged resumes must be deterministic
					}
				}
			}
			return runner.V(map[string]float64{
				"fork":  float64(fork),
				"cold":  coldRounds,
				"warm":  warmRounds,
				"saved": 1 - warmRounds/coldRounds,
				"agree": agree,
			}), nil
		})
	if err != nil {
		return nil, fmt.Errorf("E27: %w", err)
	}
	tbl := &Table{
		ID:    "E27",
		Title: "warm-start sweep scaling (shared prefix vs per-variant cold replay)",
		Claim: "forking one engine snapshot across a sweep removes the shared prefix from every variant but the first, while the control variant stays bit-identical to the cold run",
		Headers: []string{
			"sweep", "fork round", "cold rounds", "warm rounds", "rounds saved", "warm ≡ cold",
		},
	}
	for i, name := range names {
		cell := &cells[i]
		tbl.AddRow(name, cell.Mean("fork"), cell.Mean("cold"),
			cell.Mean("warm"), cell.Mean("saved"), cell.Min("agree") == 1)
	}
	tbl.AddNote("cost unit is simulated rounds summed over variants, prefix included; wall-clock speedup is gated by BenchmarkSweepWarmStart")
	tbl.AddNote("variant 0 is the undiverged control (must equal the cold run); variants 1+ diverge on message-loss rate from the fork round")
	return tbl, nil
}
