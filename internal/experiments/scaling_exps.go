package experiments

import (
	"context"
	"fmt"
	"math"

	"gossip/internal/gossip"
	"gossip/internal/graphgen"
	"gossip/internal/runner"
	"gossip/internal/stats"
)

// expE23Scaling exercises the million-node substrate at experiment scale:
// push-pull on CSR-native ring+matching expanders across a size sweep,
// with every trial run twice — serial and with 8 intra-round shards —
// and the two results asserted bit-identical. It is both a scaling curve
// (rounds should track the expander's O(log n) spread time) and a
// continuously-executed determinism proof of the sharded engine.
var expE23Scaling = Experiment{
	ID:     "E23",
	Title:  "CSR substrate scaling: push-pull rounds vs n on streamed expanders",
	Source: "engineering extension of Theorem 29 (O(log n) on expanders)",
	Run:    runE23,
}

func runE23(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	ns := []int{1 << 14, 1 << 15, 1 << 17}
	if cfg.Quick {
		ns = []int{1 << 11, 1 << 12, 1 << 13}
	}
	names := cellNames(len(ns), func(i int) string {
		return fmt.Sprintf("expander(n=%d)", ns[i])
	})
	cells, err := runGrid(ctx, cfg, "E23", names, cfg.Trials,
		func(ctx context.Context, c runner.Coord, seed uint64) (runner.Sample, error) {
			n := ns[c.CellIndex]
			csr, err := graphgen.RingMatchingExpanderCSR(n, 1, graphgen.NewRand(seed))
			if err != nil {
				return runner.Sample{}, err
			}
			opts := gossip.DriverOptions{Source: 0, Seed: seed, MaxRounds: 1 << 14, ExecOptions: gossip.ExecOptions{CSR: csr}}
			serial, err := gossip.Dispatch("push-pull", nil, opts)
			if err != nil {
				return runner.Sample{}, err
			}
			opts.Workers = 8
			sharded, err := gossip.Dispatch("push-pull", nil, opts)
			if err != nil {
				return runner.Sample{}, err
			}
			if serial.Rounds != sharded.Rounds || serial.Exchanges != sharded.Exchanges {
				return runner.Sample{}, fmt.Errorf(
					"shard determinism violated at n=%d seed=%d: w1 %d/%d vs w8 %d/%d",
					n, seed, serial.Rounds, serial.Exchanges, sharded.Rounds, sharded.Exchanges)
			}
			if !serial.Completed {
				return runner.Sample{}, fmt.Errorf("incomplete at n=%d", n)
			}
			return runner.V(map[string]float64{
				"rounds":    float64(serial.Rounds),
				"exchanges": float64(serial.Exchanges),
			}), nil
		})
	if err != nil {
		return nil, fmt.Errorf("E23: %w", err)
	}
	tbl := &Table{
		ID:    "E23",
		Title: "CSR substrate scaling (push-pull on ring+matching expanders)",
		Claim: "constant-degree expanders spread in O(log n) rounds; sharded rounds are bit-identical to serial",
		Headers: []string{
			"graph", "mean rounds", "p90", "rounds/log2 n", "mean exchanges",
		},
	}
	worst := 0.0
	for i, name := range names {
		cell := &cells[i]
		sum := stats.Summarize(cell.Values("rounds"))
		perLog := sum.Mean / math.Log2(float64(ns[i]))
		if perLog > worst {
			worst = perLog
		}
		tbl.AddRow(name, sum.Mean, sum.P90, perLog, cell.Mean("exchanges"))
	}
	tbl.AddNote("rounds/log2 n stays bounded (≤ %.2f here): the Theorem 29 expander regime", worst)
	tbl.AddNote("every trial re-ran with Workers=8 and matched the serial run exactly")
	return tbl, nil
}
