package experiments

import (
	"context"
	"fmt"
	"math"

	"gossip/internal/gossip"
	"gossip/internal/graph"
	"gossip/internal/graphgen"
	"gossip/internal/runner"
	"gossip/internal/stats"
)

// expE14Robustness tests the Section 6 qualitative claim: "exchanging
// messages with the help of the spanner does not have good robustness
// properties whereas push-pull is inherently quite robust". A fraction
// of nodes is failed from the start; push-pull routes around them while
// the DTG-based spanner pipeline stalls waiting on dead peers.
var expE14Robustness = Experiment{
	ID:     "E14",
	Title:  "robustness under fail-stop crashes",
	Source: "Section 6 (robustness discussion)",
	Run:    runE14,
}

func runE14(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	n := 32
	if cfg.Quick {
		n = 16
	}
	type topo struct {
		name string
		mk   func() *graph.Graph
	}
	topos := []topo{
		{"clique", func() *graph.Graph { return graphgen.Clique(n, 2) }},
		{"grid6x6", func() *graph.Graph { return graphgen.Grid(6, 6, 2) }},
	}
	crashCounts := []int{0, 2, 4}
	// Cells are the (topology, crash count) product.
	var names []string
	for _, tp := range topos {
		for _, crashes := range crashCounts {
			names = append(names, fmt.Sprintf("%s crashed=%d", tp.name, crashes))
		}
	}
	cellCase := func(idx int) (topo, int) {
		return topos[idx/len(crashCounts)], crashCounts[idx%len(crashCounts)]
	}
	cells, err := runGrid(ctx, cfg, "E14", names, cfg.Trials,
		func(ctx context.Context, c runner.Coord, seed uint64) (runner.Sample, error) {
			tp, crashes := cellCase(c.CellIndex)
			g := tp.mk()
			crashAt := make([]int, g.N())
			for u := range crashAt {
				crashAt[u] = -1
			}
			// Fail low-ID nodes (never the source) at round 5 — mid-run,
			// while exchanges with them are in flight. On the grid these
			// IDs sit on the top edge, so survivors stay connected.
			for i := 0; i < crashes; i++ {
				crashAt[1+i] = 5
			}
			res, err := gossip.RunPushPullWithCrashes(g, 0, crashAt, seed, 1<<18)
			if err != nil {
				return runner.Sample{}, err
			}
			s := runner.Sample{Values: map[string]float64{
				"pp":    float64(res.Rounds),
				"pp_ok": b2f(res.Completed),
			}}
			// The spanner pipeline run is deterministic per cell; trial 0
			// carries it so the cell has exactly one sample of it.
			if c.Trial == 0 {
				sp, err := gossip.SpannerBroadcast(tp.mk(), gossip.SpannerOptions{
					KnownLatencies: true,
					Seed:           seed,
					MaxPhaseRounds: 8192,
					CrashAt:        crashAt,
				})
				if err != nil {
					return runner.Sample{}, err
				}
				s.Values["sp"] = float64(sp.Rounds)
				s.Values["sp_ok"] = b2f(sp.Completed)
			}
			return s, nil
		})
	if err != nil {
		return nil, fmt.Errorf("E14: %w", err)
	}
	tbl := &Table{
		ID:    "E14",
		Title: "robustness under fail-stop crashes",
		Claim: "push-pull is inherently robust; the spanner pipeline is not (Section 6)",
		Headers: []string{
			"graph", "crashed@5", "push-pull", "pp Δ%", "spanner", "sp Δ%", "complete",
		},
	}
	for i := range cells {
		c := &cells[i]
		tp, crashes := cellCase(i)
		base := &cells[(i/len(crashCounts))*len(crashCounts)] // crashes=0 cell of this topology
		pp, sp := c.Mean("pp"), c.Mean("sp")
		ppBase, spBase := base.Mean("pp"), base.Mean("sp")
		tbl.AddRow(tp.name, crashes, pp, pct(pp, ppBase), sp, pct(sp, spBase),
			fmt.Sprintf("pp=%v sp=%v", c.Min("pp_ok") == 1, c.Min("sp_ok") == 1))
	}
	tbl.AddNote("push-pull is insensitive to mid-run crashes; the pipeline degrades — DTG has no timeout, so every node whose in-flight partner died stalls for the rest of its phase, and only the non-blocking RR pass (plus spanner redundancy) rescues completion")
	return tbl, nil
}

// pct returns the percent change of v over base.
func pct(v, base float64) float64 {
	if base == 0 {
		return 0
	}
	return (v - base) / base * 100
}

// expE15Messages measures push-pull message complexity on the clique —
// the Karp et al. setting the paper's prior-work section discusses.
// Plain push-pull stopped at completion sends Θ(n log n) messages.
var expE15Messages = Experiment{
	ID:     "E15",
	Title:  "push-pull message complexity on the clique",
	Source: "prior work: Karp et al. [24] (Section 1)",
	Run:    runE15,
}

func runE15(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	ns := []int{32, 64, 128, 256}
	if cfg.Quick {
		ns = []int{32, 64}
	}
	names := cellNames(len(ns), func(i int) string { return fmt.Sprintf("clique(%d)", ns[i]) })
	cells, err := runGrid(ctx, cfg, "E15", names, cfg.Trials,
		func(ctx context.Context, c runner.Coord, seed uint64) (runner.Sample, error) {
			g := graphgen.Clique(ns[c.CellIndex], 1)
			res, err := gossip.RunPushPull(g, 0, seed, 1<<18)
			if err != nil {
				return runner.Sample{}, err
			}
			if !res.Completed {
				return runner.Sample{}, fmt.Errorf("incomplete")
			}
			return runner.V(map[string]float64{
				"rounds":   float64(res.Rounds),
				"messages": float64(res.Messages),
			}), nil
		})
	if err != nil {
		return nil, fmt.Errorf("E15: %w", err)
	}
	tbl := &Table{
		ID:    "E15",
		Title: "push-pull message complexity on the clique",
		Claim: "plain push-pull uses Θ(n log n) messages on K_n (Karp et al. discussion)",
		Headers: []string{
			"n", "mean rounds", "mean messages", "n·ln n", "messages/(n·ln n)",
		},
	}
	var xs, ys []float64
	for i, n := range ns {
		c := &cells[i]
		nln := float64(n) * math.Log(float64(n))
		mm := c.Mean("messages")
		tbl.AddRow(n, c.Mean("rounds"), mm, nln, mm/nln)
		xs = append(xs, float64(n))
		ys = append(ys, mm)
	}
	if exp, _, r2, err := stats.PowerLawFit(xs, ys); err == nil {
		tbl.AddNote("fitted messages ~ n^%.2f (R²=%.3f); Θ(n log n) predicts slightly above 1", exp, r2)
	}
	tbl.AddNote("Karp et al. reach O(n log log n) with median-counter termination — an optimization this plain protocol deliberately omits")
	return tbl, nil
}

// expE16BoundedIn explores the conclusion's open question: what happens
// when each node accepts only O(1) incoming connections per round (the
// restricted model of Daum et al. [9])?
var expE16BoundedIn = Experiment{
	ID:     "E16",
	Title:  "push-pull under bounded in-degree",
	Source: "Section 7 / Daum et al. [9]",
	Run:    runE16,
}

func runE16(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"clique(32)", graphgen.Clique(32, 1)},
		{"star(33)", graphgen.Star(33, 1)},
	}
	caps := []int{0, 4, 1}
	var names []string
	for _, c := range graphs {
		for _, cap := range caps {
			capName := "∞"
			if cap > 0 {
				capName = fmt.Sprintf("%d", cap)
			}
			names = append(names, fmt.Sprintf("%s cap=%s", c.name, capName))
		}
	}
	cells, err := runGrid(ctx, cfg, "E16", names, cfg.Trials,
		func(ctx context.Context, c runner.Coord, seed uint64) (runner.Sample, error) {
			g := graphs[c.CellIndex/len(caps)].g
			cap := caps[c.CellIndex%len(caps)]
			res, err := gossip.RunPushPullBoundedInDegree(g, 0, cap, seed, 1<<18)
			if err != nil {
				return runner.Sample{}, err
			}
			if !res.Completed {
				return runner.Sample{}, fmt.Errorf("incomplete")
			}
			return runner.V(map[string]float64{
				"rounds":  float64(res.Rounds),
				"dropped": float64(res.Dropped),
			}), nil
		})
	if err != nil {
		return nil, fmt.Errorf("E16: %w", err)
	}
	tbl := &Table{
		ID:    "E16",
		Title: "push-pull under bounded in-degree",
		Claim: "capping incoming connections degrades hub topologies first (Daum et al. model)",
		Headers: []string{
			"graph", "cap", "mean rounds", "mean dropped",
		},
	}
	for i := range cells {
		c := &cells[i]
		gc := graphs[i/len(caps)]
		cap := caps[i%len(caps)]
		capName := "∞"
		if cap > 0 {
			capName = fmt.Sprintf("%d", cap)
		}
		tbl.AddRow(gc.name, capName, c.Mean("rounds"), c.Mean("dropped"))
	}
	tbl.AddNote("the star collapses from O(1) to Θ(n) rounds at cap 1: every leaf fights for the center's single slot — the congestion Daum et al. formalize")
	return tbl, nil
}
