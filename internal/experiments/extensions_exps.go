package experiments

import (
	"fmt"
	"math"

	"gossip/internal/gossip"
	"gossip/internal/graph"
	"gossip/internal/graphgen"
	"gossip/internal/stats"
)

// expE14Robustness tests the Section 6 qualitative claim: "exchanging
// messages with the help of the spanner does not have good robustness
// properties whereas push-pull is inherently quite robust". A fraction
// of nodes is failed from the start; push-pull routes around them while
// the DTG-based spanner pipeline stalls waiting on dead peers.
var expE14Robustness = Experiment{
	ID:     "E14",
	Title:  "robustness under fail-stop crashes",
	Source: "Section 6 (robustness discussion)",
	Run:    runE14,
}

func runE14(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	n := 32
	if cfg.Quick {
		n = 16
	}
	tbl := &Table{
		ID:    "E14",
		Title: "robustness under fail-stop crashes",
		Claim: "push-pull is inherently robust; the spanner pipeline is not (Section 6)",
		Headers: []string{
			"graph", "crashed@5", "push-pull", "pp Δ%", "spanner", "sp Δ%", "complete",
		},
	}
	type topo struct {
		name string
		mk   func() *graph.Graph
	}
	topos := []topo{
		{"clique", func() *graph.Graph { return graphgen.Clique(n, 2) }},
		{"grid6x6", func() *graph.Graph { return graphgen.Grid(6, 6, 2) }},
	}
	for _, tp := range topos {
		nn := tp.mk().N()
		var ppBase, spBase float64
		for _, crashes := range []int{0, 2, 4} {
			crashAt := make([]int, nn)
			for u := range crashAt {
				crashAt[u] = -1
			}
			// Fail low-ID nodes (never the source) at round 5 — mid-run,
			// while exchanges with them are in flight. On the grid these
			// IDs sit on the top edge, so survivors stay connected.
			for i := 0; i < crashes; i++ {
				crashAt[1+i] = 5
			}
			var ppRounds []float64
			ppOK := true
			for trial := 0; trial < cfg.Trials; trial++ {
				res, err := gossip.RunPushPullWithCrashes(tp.mk(), 0, crashAt, cfg.Seed+uint64(trial), 1<<18)
				if err != nil {
					return nil, err
				}
				ppOK = ppOK && res.Completed
				ppRounds = append(ppRounds, float64(res.Rounds))
			}
			sp, err := gossip.SpannerBroadcast(tp.mk(), gossip.SpannerOptions{
				KnownLatencies: true,
				Seed:           cfg.Seed,
				MaxPhaseRounds: 8192,
				CrashAt:        crashAt,
			})
			if err != nil {
				return nil, err
			}
			pp := stats.Mean(ppRounds)
			if crashes == 0 {
				ppBase, spBase = pp, float64(sp.Rounds)
			}
			tbl.AddRow(tp.name, crashes, pp, pct(pp, ppBase), sp.Rounds,
				pct(float64(sp.Rounds), spBase), fmt.Sprintf("pp=%v sp=%v", ppOK, sp.Completed))
		}
	}
	tbl.AddNote("push-pull is insensitive to mid-run crashes; the pipeline degrades — DTG has no timeout, so every node whose in-flight partner died stalls for the rest of its phase, and only the non-blocking RR pass (plus spanner redundancy) rescues completion")
	return tbl, nil
}

// pct returns the percent change of v over base.
func pct(v, base float64) float64 {
	if base == 0 {
		return 0
	}
	return (v - base) / base * 100
}

// expE15Messages measures push-pull message complexity on the clique —
// the Karp et al. setting the paper's prior-work section discusses.
// Plain push-pull stopped at completion sends Θ(n log n) messages.
var expE15Messages = Experiment{
	ID:     "E15",
	Title:  "push-pull message complexity on the clique",
	Source: "prior work: Karp et al. [24] (Section 1)",
	Run:    runE15,
}

func runE15(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	ns := []int{32, 64, 128, 256}
	if cfg.Quick {
		ns = []int{32, 64}
	}
	tbl := &Table{
		ID:    "E15",
		Title: "push-pull message complexity on the clique",
		Claim: "plain push-pull uses Θ(n log n) messages on K_n (Karp et al. discussion)",
		Headers: []string{
			"n", "mean rounds", "mean messages", "n·ln n", "messages/(n·ln n)",
		},
	}
	var xs, ys []float64
	for _, n := range ns {
		g := graphgen.Clique(n, 1)
		var rounds, msgs []float64
		for trial := 0; trial < cfg.Trials; trial++ {
			res, err := gossip.RunPushPull(g, 0, cfg.Seed+uint64(n*100+trial), 1<<18)
			if err != nil {
				return nil, err
			}
			if !res.Completed {
				return nil, fmt.Errorf("E15 n=%d: incomplete", n)
			}
			rounds = append(rounds, float64(res.Rounds))
			msgs = append(msgs, float64(res.Messages))
		}
		nln := float64(n) * math.Log(float64(n))
		mm := stats.Mean(msgs)
		tbl.AddRow(n, stats.Mean(rounds), mm, nln, mm/nln)
		xs = append(xs, float64(n))
		ys = append(ys, mm)
	}
	if exp, _, r2, err := stats.PowerLawFit(xs, ys); err == nil {
		tbl.AddNote("fitted messages ~ n^%.2f (R²=%.3f); Θ(n log n) predicts slightly above 1", exp, r2)
	}
	tbl.AddNote("Karp et al. reach O(n log log n) with median-counter termination — an optimization this plain protocol deliberately omits")
	return tbl, nil
}

// expE16BoundedIn explores the conclusion's open question: what happens
// when each node accepts only O(1) incoming connections per round (the
// restricted model of Daum et al. [9])?
var expE16BoundedIn = Experiment{
	ID:     "E16",
	Title:  "push-pull under bounded in-degree",
	Source: "Section 7 / Daum et al. [9]",
	Run:    runE16,
}

func runE16(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	star := graphgen.Star(33, 1)
	clique := graphgen.Clique(32, 1)
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"clique(32)", clique},
		{"star(33)", star},
	}
	tbl := &Table{
		ID:    "E16",
		Title: "push-pull under bounded in-degree",
		Claim: "capping incoming connections degrades hub topologies first (Daum et al. model)",
		Headers: []string{
			"graph", "cap", "mean rounds", "mean dropped",
		},
	}
	for _, c := range cases {
		for _, cap := range []int{0, 4, 1} {
			var rounds, dropped []float64
			for trial := 0; trial < cfg.Trials; trial++ {
				res, err := gossip.RunPushPullBoundedInDegree(c.g, 0, cap, cfg.Seed+uint64(trial)*3+1, 1<<18)
				if err != nil {
					return nil, err
				}
				if !res.Completed {
					return nil, fmt.Errorf("E16 %s cap=%d: incomplete", c.name, cap)
				}
				rounds = append(rounds, float64(res.Rounds))
				dropped = append(dropped, float64(res.Dropped))
			}
			capName := "∞"
			if cap > 0 {
				capName = fmt.Sprintf("%d", cap)
			}
			tbl.AddRow(c.name, capName, stats.Mean(rounds), stats.Mean(dropped))
		}
	}
	tbl.AddNote("the star collapses from O(1) to Θ(n) rounds at cap 1: every leaf fights for the center's single slot — the congestion Daum et al. formalize")
	return tbl, nil
}
