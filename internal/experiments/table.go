// Package experiments regenerates the paper's evaluation: one experiment
// per theorem/figure claim (the paper is pure theory, so its "tables and
// figures" are theorem-level predictions — lower-bound constructions,
// upper-bound scalings and crossovers). Each experiment builds the exact
// constructions from the paper, measures simulated round counts, and
// prints the measured value next to the predicted bound.
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	// ID is the experiment identifier (E1..E22).
	ID string
	// Title is a short human description.
	Title string
	// Source cites the theorem/lemma/figure reproduced (stamped by
	// RunOne from the experiment registry).
	Source string
	// Claim quotes the paper prediction being tested.
	Claim string
	// Headers and Rows hold the tabular data.
	Headers []string
	Rows    [][]string
	// Notes carry fitted exponents, verdicts, and caveats.
	Notes []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a formatted note line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title); err != nil {
		return err
	}
	if t.Claim != "" {
		if _, err := fmt.Fprintf(w, "claim: %s\n", t.Claim); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		return "  " + strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintln(w, line(t.Headers)); err != nil {
		return err
	}
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(sep)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// tableJSON is the stable artifact schema (schema_version 1). Cells stay
// strings — exactly what the text renderer prints — so artifacts diff
// cleanly and are bit-identical at any worker count.
type tableJSON struct {
	SchemaVersion int        `json:"schema_version"`
	ID            string     `json:"id"`
	Title         string     `json:"title"`
	Source        string     `json:"source,omitempty"`
	Claim         string     `json:"claim,omitempty"`
	Headers       []string   `json:"headers"`
	Rows          [][]string `json:"rows"`
	Notes         []string   `json:"notes,omitempty"`
}

// JSON writes the table as an indented JSON artifact. The output is a
// pure function of the experiment configuration (no timestamps or host
// details), so artifacts from different worker counts are identical.
func (t *Table) JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tableJSON{
		SchemaVersion: 1,
		ID:            t.ID,
		Title:         t.Title,
		Source:        t.Source,
		Claim:         t.Claim,
		Headers:       t.Headers,
		Rows:          t.Rows,
		Notes:         t.Notes,
	})
}

// CSV writes the table as comma-separated values (headers first).
func (t *Table) CSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = esc(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(parts, ","))
		return err
	}
	if err := writeRow(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}
