package experiments

import (
	"context"
	"fmt"
	"math"

	"gossip/internal/gossip"
	"gossip/internal/graphgen"
	"gossip/internal/runner"
	"gossip/internal/stats"
)

// expE4DeltaLower reproduces the Theorem 9 construction: local broadcast
// on Gsym(2Δ,1,Δ,singleton) plus an expander costs Ω(Δ) because either
// the single fast cross edge must be found (the guessing game) or a
// latency-Δ slow edge must be crossed.
var expE4DeltaLower = Experiment{
	ID:     "E4",
	Title:  "Ω(Δ) local broadcast on the Theorem 9 network",
	Source: "Theorem 9, Figure 1(b)",
	Run:    runE4,
}

func runE4(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	deltas := []int{4, 8, 16, 32}
	if cfg.Quick {
		deltas = []int{4, 8, 16}
	}
	names := cellNames(len(deltas), func(i int) string { return fmt.Sprintf("Δ=%d", deltas[i]) })
	cells, err := runGrid(ctx, cfg, "E4", names, cfg.Trials,
		func(ctx context.Context, c runner.Coord, seed uint64) (runner.Sample, error) {
			delta := deltas[c.CellIndex]
			n := 2*delta + 16
			rng := graphgen.NewRand(seed)
			net, err := graphgen.NewTheorem9Network(n, delta, delta, rng)
			if err != nil {
				return runner.Sample{}, err
			}
			res, err := gossip.RunPushPullLocalBroadcast(net.Graph, seed+1, 1<<20)
			if err != nil {
				return runner.Sample{}, err
			}
			if !res.Completed {
				return runner.Sample{}, fmt.Errorf("local broadcast incomplete")
			}
			return runner.V(map[string]float64{"rounds": float64(res.Rounds)}), nil
		})
	if err != nil {
		return nil, fmt.Errorf("E4: %w", err)
	}
	tbl := &Table{
		ID:      "E4",
		Title:   "Ω(Δ) local broadcast on the Theorem 9 network",
		Claim:   "any algorithm needs Ω(Δ) rounds for local broadcast (Theorem 9)",
		Headers: []string{"Δ", "n", "mean rounds (push-pull)", "rounds/Δ"},
	}
	var xs, ys []float64
	for i, delta := range deltas {
		mean := cells[i].Mean("rounds")
		tbl.AddRow(delta, 2*delta+16, mean, mean/float64(delta))
		xs = append(xs, float64(delta))
		ys = append(ys, mean)
	}
	if exp, _, r2, err := stats.PowerLawFit(xs, ys); err == nil {
		tbl.AddNote("fitted rounds ~ Δ^%.2f (R²=%.3f); Theorem 9 predicts exponent >= 1", exp, r2)
	}
	return tbl, nil
}

// expE5ConductanceLower reproduces the Theorem 10 construction: the
// random bipartite gadget where push-pull local broadcast needs
// Ω(log n/φ + ℓ) rounds.
var expE5ConductanceLower = Experiment{
	ID:     "E5",
	Title:  "Ω(log n/φ + ℓ) on the Theorem 10 bipartite gadget",
	Source: "Theorem 10, Figure 1(a)",
	Run:    runE5,
}

func runE5(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	n := 64
	ell := 4
	if cfg.Quick {
		n = 32
	}
	phis := []float64{0.5, 0.25, 0.125, 0.0625}
	names := cellNames(len(phis), func(i int) string { return fmt.Sprintf("φ=%g", phis[i]) })
	cells, err := runGrid(ctx, cfg, "E5", names, cfg.Trials,
		func(ctx context.Context, c runner.Coord, seed uint64) (runner.Sample, error) {
			phi := phis[c.CellIndex]
			rng := graphgen.NewRand(seed)
			net, err := graphgen.NewTheorem10Network(n, ell, 1<<20, phi, rng)
			if err != nil {
				return runner.Sample{}, err
			}
			ensureCover(net, rng)
			res, err := gossip.RunPushPullLocalBroadcast(net.Graph, seed+1, 1<<19)
			if err != nil {
				return runner.Sample{}, err
			}
			if !res.Completed {
				return runner.Sample{}, fmt.Errorf("local broadcast incomplete after %d rounds", res.Rounds)
			}
			return runner.V(map[string]float64{"rounds": float64(res.Rounds)}), nil
		})
	if err != nil {
		return nil, fmt.Errorf("E5: %w", err)
	}
	tbl := &Table{
		ID:    "E5",
		Title: "Ω(log n/φ + ℓ) on the Theorem 10 bipartite gadget",
		Claim: "push-pull local broadcast needs Ω(log n/φℓ + ℓ) (Theorem 10)",
		Headers: []string{
			"n(side)", "φ", "ℓ", "mean rounds", "ln(2n)/φ + ℓ", "measured/bound",
		},
	}
	var invPhi, means []float64
	for i, phi := range phis {
		mean := cells[i].Mean("rounds")
		bound := math.Log(float64(2*n))/phi + float64(ell)
		tbl.AddRow(n, phi, ell, mean, bound, mean/bound)
		invPhi = append(invPhi, 1/phi)
		means = append(means, mean)
	}
	if exp, _, r2, err := stats.PowerLawFit(invPhi, means); err == nil {
		tbl.AddNote("fitted rounds ~ (1/φ)^%.2f (R²=%.3f); Theorem 10 predicts exponent ~1", exp, r2)
	}
	tbl.AddNote("slow cross edges have latency 2^20; completion within horizon proves only fast edges were useful")
	return tbl, nil
}

// ensureCover gives every right-side node at least one fast cross edge,
// matching the theorem's w.h.p. conditioning (each u ∈ R is connected by
// a latency-ℓ edge to some node in L with high probability).
func ensureCover(net *graphgen.Theorem10Network, rng interface{ IntN(int) int }) {
	gd := net.Gadget
	for j := 0; j < gd.M; j++ {
		has := false
		for i := 0; i < gd.M; i++ {
			if gd.Targets[[2]int{i, j}] {
				has = true
				break
			}
		}
		if !has {
			i := rng.IntN(gd.M)
			gd.Targets[[2]int{i, j}] = true
			if err := gd.Graph.SetLatency(gd.Left(i), gd.Right(j), net.Ell); err != nil {
				panic(err)
			}
		}
	}
}

// expE6Tradeoff reproduces the Theorem 13 ring of gadgets (Figure 2):
// broadcast cost follows min(Δ+D, ℓ/φ) as the slow-latency parameter ℓ
// sweeps, with a visible crossover between the two regimes.
var expE6Tradeoff = Experiment{
	ID:     "E6",
	Title:  "Ω(min(Δ+D, ℓ/φ)) trade-off on the ring of gadgets",
	Source: "Theorem 13, Figure 2, Corollary 18",
	Run:    runE6,
}

func runE6(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	k, s := 8, 4
	if cfg.Quick {
		k, s = 6, 3
	}
	ells := []int{1, 4, 16, 64, 256}
	names := cellNames(len(ells), func(i int) string { return fmt.Sprintf("ℓ=%d", ells[i]) })
	cells, err := runGrid(ctx, cfg, "E6", names, cfg.Trials,
		func(ctx context.Context, c runner.Coord, seed uint64) (runner.Sample, error) {
			ell := ells[c.CellIndex]
			rng := graphgen.NewRand(seed)
			ring, err := graphgen.NewRingNetwork(k, s, ell, rng)
			if err != nil {
				return runner.Sample{}, err
			}
			g := ring.Graph
			res, err := gossip.Unified(g, gossip.UnifiedOptions{
				Source:         0,
				KnownLatencies: false,
				Seed:           seed + 1,
				MaxRounds:      1 << 21,
			})
			if err != nil {
				return runner.Sample{}, err
			}
			if res.Rounds < 0 {
				return runner.Sample{}, fmt.Errorf("both arms incomplete")
			}
			return runner.Sample{
				Values: map[string]float64{
					"pp":     float64(res.PushPull.Rounds),
					"sp":     float64(res.Spanner.Rounds),
					"uni":    float64(res.Rounds),
					"alpha":  ring.Alpha(),
					"deltaD": float64(g.MaxDegree()) + float64(g.WeightedDiameter()),
				},
				Labels: map[string]string{"winner": res.Winner},
			}, nil
		})
	if err != nil {
		return nil, fmt.Errorf("E6: %w", err)
	}
	tbl := &Table{
		ID:    "E6",
		Title: "Ω(min(Δ+D, ℓ/φ)) trade-off on the ring of gadgets",
		Claim: "broadcast needs Ω(min(Δ+D, ℓ/φℓ)) (Theorem 13)",
		Headers: []string{
			"ℓ", "Δ+D", "ℓ/φ", "min (predicted)", "push-pull", "spanner", "unified", "winner",
		},
	}
	for i, ell := range ells {
		c := &cells[i]
		deltaD := c.Mean("deltaD")
		ellOverPhi := float64(ell) / c.Mean("alpha")
		pred := math.Min(deltaD, ellOverPhi)
		tbl.AddRow(ell, deltaD, ellOverPhi, pred,
			c.Mean("pp"), c.Mean("sp"), c.Mean("uni"), c.Label("winner"))
	}
	tbl.AddNote("the measured columns grow with ℓ while ℓ/φ < Δ+D, then flatten once Δ+D takes over — the Theorem 13 crossover; measured stays above the predicted min throughout")
	return tbl, nil
}
