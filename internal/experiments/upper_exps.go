package experiments

import (
	"fmt"
	"math"

	"gossip/internal/conductance"
	"gossip/internal/gossip"
	"gossip/internal/graph"
	"gossip/internal/graphgen"
	"gossip/internal/sim"
	"gossip/internal/spanner"
	"gossip/internal/stats"
)

// expE7PushPullUpper checks Theorem 29: push-pull completes within
// c·(ℓ*/φ*)·ln n across families, with a bounded measured/bound ratio.
var expE7PushPullUpper = Experiment{
	ID:     "E7",
	Title:  "push-pull vs the (ℓ*/φ*)·log n bound",
	Source: "Theorem 29, Corollary 30",
	Run:    runE7,
}

func runE7(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	rng := graphgen.NewRand(cfg.Seed)
	er, err := graphgen.ErdosRenyi(18, 0.35, 1, rng)
	if err != nil {
		return nil, err
	}
	graphgen.AssignRandomLatencies(er, 1, 8, rng)
	ring, err := graphgen.NewRingNetwork(5, 4, 16, rng)
	if err != nil {
		return nil, err
	}
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"clique(16,ℓ=1)", graphgen.Clique(16, 1)},
		{"clique(16,ℓ=8)", graphgen.Clique(16, 8)},
		{"dumbbell(9,ℓ=64)", graphgen.Dumbbell(9, 64)},
		{"star(18,ℓ=4)", graphgen.Star(18, 4)},
		{"er(18,rand ℓ≤8)", er},
		{"ring(5,4,ℓ=16)", ring.Graph},
	}
	tbl := &Table{
		ID:    "E7",
		Title: "push-pull vs the (ℓ*/φ*)·log n bound",
		Claim: "push-pull completes in O((ℓ*/φ*)·log n) w.h.p. (Theorem 29)",
		Headers: []string{
			"graph", "φ*", "ℓ*", "bound", "mean rounds", "p90", "measured/bound",
		},
	}
	worst := 0.0
	for _, c := range cases {
		cond, err := conductance.Exact(c.g)
		if err != nil {
			return nil, fmt.Errorf("E7 %s: %w", c.name, err)
		}
		bound, err := gossip.PushPullBound(cond.PhiStar, cond.EllStar, c.g.N())
		if err != nil {
			return nil, err
		}
		var rounds []float64
		for trial := 0; trial < cfg.Trials*2; trial++ {
			res, err := gossip.RunPushPull(c.g, 0, cfg.Seed+uint64(trial)*101, 1<<21)
			if err != nil {
				return nil, err
			}
			if !res.Completed {
				return nil, fmt.Errorf("E7 %s: incomplete", c.name)
			}
			rounds = append(rounds, float64(res.Rounds))
		}
		sum := stats.Summarize(rounds)
		ratio := sum.Mean / bound
		if ratio > worst {
			worst = ratio
		}
		tbl.AddRow(c.name, cond.PhiStar, cond.EllStar, bound, sum.Mean, sum.P90, ratio)
	}
	tbl.AddNote("worst measured/bound ratio = %.2f; Theorem 29 predicts a universal constant", worst)
	return tbl, nil
}

// expE8Spanner verifies the Section 4.1 pipeline: spanner size, stretch
// and out-degree (Lemma 19 / Theorem 20) and the O(D log³ n) broadcast
// time scaling (Theorem 25).
var expE8Spanner = Experiment{
	ID:     "E8",
	Title:  "directed spanner properties and Spanner Broadcast scaling",
	Source: "Lemma 19, Theorem 20, Theorem 25",
	Run:    runE8,
}

func runE8(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	ns := []int{32, 64, 128, 256}
	if cfg.Quick {
		ns = []int{32, 64}
	}
	tbl := &Table{
		ID:    "E8",
		Title: "directed spanner properties and Spanner Broadcast scaling",
		Claim: "O(log n)-stretch spanner with O(n log n) edges and O(log n) out-degree (Theorem 20)",
		Headers: []string{
			"n", "edges", "n·log2 n", "max out-deg", "2k-1 (stretch bound)", "stretch",
		},
	}
	for _, n := range ns {
		g := graphgen.Clique(n, 1)
		sp, err := spanner.Build(g, spanner.Options{Seed: cfg.Seed + uint64(n)})
		if err != nil {
			return nil, err
		}
		stretch := sp.Stretch(g, 5, graphgen.NewRand(cfg.Seed+uint64(n)*3))
		tbl.AddRow(n, sp.NumEdges(), float64(n)*math.Log2(float64(n)),
			sp.MaxOutDegree(), 2*sp.K-1, stretch)
	}
	// Broadcast time scaling in D on paths of growing length.
	lens := []int{8, 16, 32}
	if cfg.Quick {
		lens = []int{8, 16}
	}
	var ds, rs []float64
	for _, l := range lens {
		g := graphgen.Path(l, 2)
		d := int(g.WeightedDiameter())
		res, err := gossip.SpannerBroadcast(g, gossip.SpannerOptions{
			D: d, KnownLatencies: true, Seed: cfg.Seed, SkipCheck: true,
		})
		if err != nil {
			return nil, err
		}
		if !res.Completed {
			return nil, fmt.Errorf("E8 path(%d): incomplete", l)
		}
		logn := math.Log2(float64(g.N()))
		tbl.AddNote("path n=%d D=%d: spanner broadcast %d rounds; D·log³n = %.0f; ratio %.3f",
			l, d, res.Rounds, float64(d)*logn*logn*logn, float64(res.Rounds)/(float64(d)*logn*logn*logn))
		ds = append(ds, float64(d))
		rs = append(rs, float64(res.Rounds))
	}
	if exp, _, r2, err := stats.PowerLawFit(ds, rs); err == nil {
		tbl.AddNote("fitted rounds ~ D^%.2f (R²=%.3f); Theorem 25 predicts ~linear in D", exp, r2)
	}
	return tbl, nil
}

// expE9Pattern verifies Lemmas 26-28: T(k) completes all-to-all
// dissemination in O(D log² n log D).
var expE9Pattern = Experiment{
	ID:     "E9",
	Title:  "Pattern Broadcast T(k) correctness and scaling",
	Source: "Lemmas 26-28, Algorithm 5",
	Run:    runE9,
}

func runE9(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	lens := []int{4, 8, 16, 32}
	if cfg.Quick {
		lens = []int{4, 8, 16}
	}
	tbl := &Table{
		ID:      "E9",
		Title:   "Pattern Broadcast T(k) correctness and scaling",
		Claim:   "T(D) solves all-to-all dissemination in O(D·log²n·logD) (Lemma 27)",
		Headers: []string{"graph", "D", "rounds", "D·log²n·logD", "ratio", "complete"},
	}
	var ds, rs []float64
	for _, l := range lens {
		g := graphgen.Cycle(l, 2)
		d := int(g.WeightedDiameter())
		res, err := gossip.PatternBroadcast(g, gossip.PatternOptions{
			D: d, Seed: cfg.Seed, SkipCheck: true,
		})
		if err != nil {
			return nil, err
		}
		logn := math.Log2(float64(g.N()))
		logd := math.Max(1, math.Log2(float64(d)))
		bound := float64(d) * logn * logn * logd
		tbl.AddRow(fmt.Sprintf("cycle(%d,ℓ=2)", l), d, res.Rounds, bound,
			float64(res.Rounds)/bound, res.Completed)
		ds = append(ds, float64(d))
		rs = append(rs, float64(res.Rounds))
	}
	if exp, _, r2, err := stats.PowerLawFit(ds, rs); err == nil {
		tbl.AddNote("fitted rounds ~ D^%.2f (R²=%.3f); Lemma 27 predicts ~D·logD", exp, r2)
	}
	return tbl, nil
}

// expE10Unified shows the Theorem 31 combination beating each arm on the
// topology that favors the other.
var expE10Unified = Experiment{
	ID:     "E10",
	Title:  "unified algorithm: winner flips with topology",
	Source: "Theorem 31, Section 6",
	Run:    runE10,
}

func runE10(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	rng := graphgen.NewRand(cfg.Seed)
	ringSmall, err := graphgen.NewRingNetwork(6, 4, 2, rng)
	if err != nil {
		return nil, err
	}
	ringLarge, err := graphgen.NewRingNetwork(6, 4, 512, rng)
	if err != nil {
		return nil, err
	}
	// The sparse bipartite gadget is the spanner arm's home turf: D is
	// tiny (one fast edge per right node), but push-pull must *find*
	// each right node's single fast edge among 2n candidates — the
	// Theorem 10 Ω(log n/φ) regime.
	side := 64
	if cfg.Quick {
		side = 32
	}
	gadget, err := graphgen.NewTheorem10Network(side, 1, 1<<20, 0.001, rng)
	if err != nil {
		return nil, err
	}
	ensureCover(gadget, rng)
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"clique(32,ℓ=1)", graphgen.Clique(32, 1)},
		{"dumbbell(12,ℓ=512)", graphgen.Dumbbell(12, 512)},
		{"ring(6,4,ℓ=2)", ringSmall.Graph},
		{"ring(6,4,ℓ=512)", ringLarge.Graph},
		{"star(32,ℓ=8)", graphgen.Star(32, 8)},
		{fmt.Sprintf("gadget(%d,1 fast/node)", side), gadget.Graph},
	}
	tbl := &Table{
		ID:    "E10",
		Title: "unified algorithm: winner flips with topology",
		Claim: "unified time = O(min((D+Δ)log³n, (ℓ*/φ*)log n)) (Theorem 31)",
		Headers: []string{
			"graph", "push-pull", "spanner", "unified", "winner",
		},
	}
	for _, c := range cases {
		res, err := gossip.Unified(c.g, gossip.UnifiedOptions{
			Source: 0, KnownLatencies: true, Seed: cfg.Seed + 3, MaxRounds: 1 << 21,
		})
		if err != nil {
			return nil, fmt.Errorf("E10 %s: %w", c.name, err)
		}
		tbl.AddRow(c.name, res.PushPull.Rounds, res.Spanner.Rounds, res.Rounds, res.Winner)
	}
	tbl.AddNote("well-connected graphs favor push-pull; the sparse gadget (needle-in-haystack fast edges, tiny D) flips the winner to the spanner arm, as Theorem 31 predicts")
	return tbl, nil
}

// expE11DTG verifies the ℓ-DTG building block: local broadcast in
// O(ℓ·log² n).
var expE11DTG = Experiment{
	ID:     "E11",
	Title:  "ℓ-DTG local broadcast cost",
	Source: "Appendix A.1, Section 4.1.1",
	Run:    runE11,
}

func runE11(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	tbl := &Table{
		ID:      "E11",
		Title:   "ℓ-DTG local broadcast cost",
		Claim:   "ℓ-DTG solves ℓ-local broadcast in O(ℓ·log²n) (Section 4.1.1)",
		Headers: []string{"graph", "ℓ", "rounds", "ℓ·log²n", "ratio"},
	}
	var ells, rounds []float64
	for _, ell := range []int{1, 2, 4, 8, 16} {
		g := graphgen.Clique(16, ell)
		res, err := gossip.RunDTG(g, gossip.DTGOptions{Ell: ell, Seed: cfg.Seed, MaxRounds: 1 << 20})
		if err != nil {
			return nil, err
		}
		if !res.Completed {
			return nil, fmt.Errorf("E11 ℓ=%d: incomplete", ell)
		}
		logn := math.Log2(16)
		bound := float64(ell) * logn * logn
		tbl.AddRow(fmt.Sprintf("clique(16,ℓ=%d)", ell), ell, res.Rounds, bound, float64(res.Rounds)/bound)
		ells = append(ells, float64(ell))
		rounds = append(rounds, float64(res.Rounds))
	}
	if exp, _, r2, err := stats.PowerLawFit(ells, rounds); err == nil {
		tbl.AddNote("fitted rounds ~ ℓ^%.2f (R²=%.3f); predicted exponent 1", exp, r2)
	}
	// n-scaling at fixed ℓ.
	for _, n := range []int{8, 16, 32, 64} {
		g := graphgen.Clique(n, 1)
		res, err := gossip.RunDTG(g, gossip.DTGOptions{Ell: 1, Seed: cfg.Seed, MaxRounds: 1 << 20})
		if err != nil {
			return nil, err
		}
		logn := math.Log2(float64(n))
		tbl.AddNote("clique n=%d: %d rounds; log²n = %.1f; ratio %.2f", n, res.Rounds, logn*logn, float64(res.Rounds)/(logn*logn))
	}
	return tbl, nil
}

// expE12RR verifies Lemma 21 / Figure 3: RR Broadcast on the directed
// spanner delivers between any two nodes within distance k in
// k·Δout + k rounds.
var expE12RR = Experiment{
	ID:     "E12",
	Title:  "RR Broadcast within the Lemma 21 budget",
	Source: "Lemma 21, Algorithm 1, Figure 3",
	Run:    runE12,
}

func runE12(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"grid(5x5,ℓ=2)", graphgen.Grid(5, 5, 2)},
		{"cycle(16,ℓ=3)", graphgen.Cycle(16, 3)},
		{"clique(20,ℓ=4)", graphgen.Clique(20, 4)},
	}
	tbl := &Table{
		ID:      "E12",
		Title:   "RR Broadcast within the Lemma 21 budget",
		Claim:   "rumors cross distance k within k·Δout + k rounds (Lemma 21)",
		Headers: []string{"graph", "k", "Δout", "budget k·Δout+k", "rounds used", "complete"},
	}
	for _, c := range cases {
		sp, err := spanner.Build(c.g, spanner.Options{Seed: cfg.Seed + 5})
		if err != nil {
			return nil, err
		}
		k := int(c.g.WeightedDiameter()) * (2*sp.K - 1)
		res, err := gossip.RunRR(c.g, gossip.RROptions{
			Spanner: sp, K: k, Seed: cfg.Seed + 6, MaxRounds: 1 << 21,
			Stop: sim.StopAllHaveAll(),
		})
		if err != nil {
			return nil, err
		}
		full := true
		for _, r := range res.FinalRumors() {
			if !r.Full() {
				full = false
			}
		}
		budget := k*sp.MaxOutDegree() + k
		tbl.AddRow(c.name, k, sp.MaxOutDegree(), budget, res.Rounds, full)
		if !full {
			tbl.AddNote("%s: VIOLATION — budget exhausted before completion", c.name)
		}
	}
	tbl.AddNote("rounds used is the all-have-all completion round; Lemma 21 promises completion by the budget")
	return tbl, nil
}

// expE13NoPull verifies footnote 3: without pull, a star with slow edges
// costs Ω(nD) while push-pull needs ~D.
var expE13NoPull = Experiment{
	ID:     "E13",
	Title:  "the cost of dropping pull (blocking flood on a star)",
	Source: "footnote 3",
	Run:    runE13,
}

func runE13(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	lat := 16
	ns := []int{8, 16, 32}
	tbl := &Table{
		ID:      "E13",
		Title:   "the cost of dropping pull (blocking flood on a star)",
		Claim:   "push-only flooding needs Ω(nD) on a star (footnote 3)",
		Headers: []string{"n", "D", "flood rounds", "(n-1)·D", "push-pull rounds"},
	}
	for _, n := range ns {
		g := graphgen.Star(n, lat)
		flood, err := gossip.RunFlood(g, 0, true, cfg.Seed, 1<<21)
		if err != nil {
			return nil, err
		}
		pp, err := gossip.RunPushPull(g, 0, cfg.Seed, 1<<21)
		if err != nil {
			return nil, err
		}
		if !flood.Completed || !pp.Completed {
			return nil, fmt.Errorf("E13 n=%d: incomplete", n)
		}
		tbl.AddRow(n, 2*lat, flood.Rounds, (n-1)*lat, pp.Rounds)
	}
	tbl.AddNote("flood grows linearly in n at fixed D; push-pull stays ~D because leaves pull")
	return tbl, nil
}
