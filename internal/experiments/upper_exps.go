package experiments

import (
	"context"
	"fmt"
	"math"

	"gossip/internal/conductance"
	"gossip/internal/gossip"
	"gossip/internal/graph"
	"gossip/internal/graphgen"
	"gossip/internal/runner"
	"gossip/internal/sim"
	"gossip/internal/spanner"
	"gossip/internal/stats"
)

// expE7PushPullUpper checks Theorem 29: push-pull completes within
// c·(ℓ*/φ*)·ln n across families, with a bounded measured/bound ratio.
var expE7PushPullUpper = Experiment{
	ID:     "E7",
	Title:  "push-pull vs the (ℓ*/φ*)·log n bound",
	Source: "Theorem 29, Corollary 30",
	Run:    runE7,
}

func runE7(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	rng := graphgen.NewRand(cfg.Seed)
	er, err := graphgen.ErdosRenyi(18, 0.35, 1, rng)
	if err != nil {
		return nil, err
	}
	graphgen.AssignRandomLatencies(er, 1, 8, rng)
	ring, err := graphgen.NewRingNetwork(5, 4, 16, rng)
	if err != nil {
		return nil, err
	}
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"clique(16,ℓ=1)", graphgen.Clique(16, 1)},
		{"clique(16,ℓ=8)", graphgen.Clique(16, 8)},
		{"dumbbell(9,ℓ=64)", graphgen.Dumbbell(9, 64)},
		{"star(18,ℓ=4)", graphgen.Star(18, 4)},
		{"er(18,rand ℓ≤8)", er},
		{"ring(5,4,ℓ=16)", ring.Graph},
	}
	names := cellNames(len(cases), func(i int) string { return cases[i].name })
	cells, err := runGrid(ctx, cfg, "E7", names, cfg.Trials*2,
		func(ctx context.Context, c runner.Coord, seed uint64) (runner.Sample, error) {
			g := cases[c.CellIndex].g
			res, err := gossip.Dispatch("push-pull", g, gossip.DriverOptions{
				Source: 0, Seed: seed, MaxRounds: 1 << 21,
			})
			if err != nil {
				return runner.Sample{}, err
			}
			if !res.Completed {
				return runner.Sample{}, fmt.Errorf("incomplete")
			}
			s := runner.V(map[string]float64{"rounds": float64(res.Rounds)})
			// The exact cut enumeration is deterministic and expensive;
			// trial 0 carries it so it parallelizes with the other cells
			// instead of serializing the aggregation loop.
			if c.Trial == 0 {
				cond, err := conductance.Exact(g)
				if err != nil {
					return runner.Sample{}, err
				}
				bound, err := gossip.PushPullBound(cond.PhiStar, cond.EllStar, g.N())
				if err != nil {
					return runner.Sample{}, err
				}
				s.Values["phiStar"] = cond.PhiStar
				s.Values["ellStar"] = float64(cond.EllStar)
				s.Values["bound"] = bound
			}
			return s, nil
		})
	if err != nil {
		return nil, fmt.Errorf("E7: %w", err)
	}
	tbl := &Table{
		ID:    "E7",
		Title: "push-pull vs the (ℓ*/φ*)·log n bound",
		Claim: "push-pull completes in O((ℓ*/φ*)·log n) w.h.p. (Theorem 29)",
		Headers: []string{
			"graph", "φ*", "ℓ*", "bound", "mean rounds", "p90", "measured/bound",
		},
	}
	worst := 0.0
	for i, c := range cases {
		cell := &cells[i]
		bound := cell.Mean("bound")
		sum := stats.Summarize(cell.Values("rounds"))
		ratio := sum.Mean / bound
		if ratio > worst {
			worst = ratio
		}
		tbl.AddRow(c.name, cell.Mean("phiStar"), int(cell.Mean("ellStar")), bound, sum.Mean, sum.P90, ratio)
	}
	tbl.AddNote("worst measured/bound ratio = %.2f; Theorem 29 predicts a universal constant", worst)
	return tbl, nil
}

// expE8Spanner verifies the Section 4.1 pipeline: spanner size, stretch
// and out-degree (Lemma 19 / Theorem 20) and the O(D log³ n) broadcast
// time scaling (Theorem 25).
var expE8Spanner = Experiment{
	ID:     "E8",
	Title:  "directed spanner properties and Spanner Broadcast scaling",
	Source: "Lemma 19, Theorem 20, Theorem 25",
	Run:    runE8,
}

func runE8(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	ns := []int{32, 64, 128, 256}
	if cfg.Quick {
		ns = []int{32, 64}
	}
	lens := []int{8, 16, 32}
	if cfg.Quick {
		lens = []int{8, 16}
	}
	// One grid covers both halves of the experiment: spanner-property
	// cells on cliques, then broadcast-scaling cells on paths.
	var names []string
	for _, n := range ns {
		names = append(names, fmt.Sprintf("clique n=%d", n))
	}
	for _, l := range lens {
		names = append(names, fmt.Sprintf("path n=%d", l))
	}
	cells, err := runGrid(ctx, cfg, "E8", names, 1,
		func(ctx context.Context, c runner.Coord, seed uint64) (runner.Sample, error) {
			if c.CellIndex < len(ns) {
				n := ns[c.CellIndex]
				g := graphgen.Clique(n, 1)
				sp, err := spanner.Build(g, spanner.Options{Seed: seed})
				if err != nil {
					return runner.Sample{}, err
				}
				stretch := sp.Stretch(g, 5, graphgen.NewRand(seed+1))
				return runner.V(map[string]float64{
					"edges":   float64(sp.NumEdges()),
					"outdeg":  float64(sp.MaxOutDegree()),
					"k":       float64(sp.K),
					"stretch": stretch,
				}), nil
			}
			l := lens[c.CellIndex-len(ns)]
			g := graphgen.Path(l, 2)
			d := int(g.WeightedDiameter())
			res, err := gossip.SpannerBroadcast(g, gossip.SpannerOptions{
				D: d, KnownLatencies: true, Seed: seed, SkipCheck: true,
			})
			if err != nil {
				return runner.Sample{}, err
			}
			if !res.Completed {
				return runner.Sample{}, fmt.Errorf("incomplete")
			}
			return runner.V(map[string]float64{
				"d":      float64(d),
				"rounds": float64(res.Rounds),
			}), nil
		})
	if err != nil {
		return nil, fmt.Errorf("E8: %w", err)
	}
	tbl := &Table{
		ID:    "E8",
		Title: "directed spanner properties and Spanner Broadcast scaling",
		Claim: "O(log n)-stretch spanner with O(n log n) edges and O(log n) out-degree (Theorem 20)",
		Headers: []string{
			"n", "edges", "n·log2 n", "max out-deg", "2k-1 (stretch bound)", "stretch",
		},
	}
	for i, n := range ns {
		c := &cells[i]
		tbl.AddRow(n, int(c.Mean("edges")), float64(n)*math.Log2(float64(n)),
			int(c.Mean("outdeg")), 2*int(c.Mean("k"))-1, c.Mean("stretch"))
	}
	var ds, rs []float64
	for i, l := range lens {
		c := &cells[len(ns)+i]
		d, rounds := c.Mean("d"), c.Mean("rounds")
		logn := math.Log2(float64(l))
		tbl.AddNote("path n=%d D=%.0f: spanner broadcast %.0f rounds; D·log³n = %.0f; ratio %.3f",
			l, d, rounds, d*logn*logn*logn, rounds/(d*logn*logn*logn))
		ds = append(ds, d)
		rs = append(rs, rounds)
	}
	if exp, _, r2, err := stats.PowerLawFit(ds, rs); err == nil {
		tbl.AddNote("fitted rounds ~ D^%.2f (R²=%.3f); Theorem 25 predicts ~linear in D", exp, r2)
	}
	return tbl, nil
}

// expE9Pattern verifies Lemmas 26-28: T(k) completes all-to-all
// dissemination in O(D log² n log D).
var expE9Pattern = Experiment{
	ID:     "E9",
	Title:  "Pattern Broadcast T(k) correctness and scaling",
	Source: "Lemmas 26-28, Algorithm 5",
	Run:    runE9,
}

func runE9(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	lens := []int{4, 8, 16, 32}
	if cfg.Quick {
		lens = []int{4, 8, 16}
	}
	names := cellNames(len(lens), func(i int) string { return fmt.Sprintf("cycle(%d,ℓ=2)", lens[i]) })
	cells, err := runGrid(ctx, cfg, "E9", names, 1,
		func(ctx context.Context, c runner.Coord, seed uint64) (runner.Sample, error) {
			g := graphgen.Cycle(lens[c.CellIndex], 2)
			d := int(g.WeightedDiameter())
			res, err := gossip.PatternBroadcast(g, gossip.PatternOptions{
				D: d, Seed: seed, SkipCheck: true,
			})
			if err != nil {
				return runner.Sample{}, err
			}
			return runner.V(map[string]float64{
				"d":        float64(d),
				"rounds":   float64(res.Rounds),
				"complete": b2f(res.Completed),
			}), nil
		})
	if err != nil {
		return nil, fmt.Errorf("E9: %w", err)
	}
	tbl := &Table{
		ID:      "E9",
		Title:   "Pattern Broadcast T(k) correctness and scaling",
		Claim:   "T(D) solves all-to-all dissemination in O(D·log²n·logD) (Lemma 27)",
		Headers: []string{"graph", "D", "rounds", "D·log²n·logD", "ratio", "complete"},
	}
	var ds, rs []float64
	for i, l := range lens {
		c := &cells[i]
		d, rounds := c.Mean("d"), c.Mean("rounds")
		logn := math.Log2(float64(l))
		logd := math.Max(1, math.Log2(d))
		bound := d * logn * logn * logd
		tbl.AddRow(c.Name, int(d), int(rounds), bound, rounds/bound, c.Min("complete") == 1)
		ds = append(ds, d)
		rs = append(rs, rounds)
	}
	if exp, _, r2, err := stats.PowerLawFit(ds, rs); err == nil {
		tbl.AddNote("fitted rounds ~ D^%.2f (R²=%.3f); Lemma 27 predicts ~D·logD", exp, r2)
	}
	return tbl, nil
}

// expE10Unified shows the Theorem 31 combination beating each arm on the
// topology that favors the other.
var expE10Unified = Experiment{
	ID:     "E10",
	Title:  "unified algorithm: winner flips with topology",
	Source: "Theorem 31, Section 6",
	Run:    runE10,
}

func runE10(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	rng := graphgen.NewRand(cfg.Seed)
	ringSmall, err := graphgen.NewRingNetwork(6, 4, 2, rng)
	if err != nil {
		return nil, err
	}
	ringLarge, err := graphgen.NewRingNetwork(6, 4, 512, rng)
	if err != nil {
		return nil, err
	}
	// The sparse bipartite gadget is the spanner arm's home turf: D is
	// tiny (one fast edge per right node), but push-pull must *find*
	// each right node's single fast edge among 2n candidates — the
	// Theorem 10 Ω(log n/φ) regime.
	side := 64
	if cfg.Quick {
		side = 32
	}
	gadget, err := graphgen.NewTheorem10Network(side, 1, 1<<20, 0.001, rng)
	if err != nil {
		return nil, err
	}
	ensureCover(gadget, rng)
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"clique(32,ℓ=1)", graphgen.Clique(32, 1)},
		{"dumbbell(12,ℓ=512)", graphgen.Dumbbell(12, 512)},
		{"ring(6,4,ℓ=2)", ringSmall.Graph},
		{"ring(6,4,ℓ=512)", ringLarge.Graph},
		{"star(32,ℓ=8)", graphgen.Star(32, 8)},
		{fmt.Sprintf("gadget(%d,1 fast/node)", side), gadget.Graph},
	}
	names := cellNames(len(cases), func(i int) string { return cases[i].name })
	cells, err := runGrid(ctx, cfg, "E10", names, 1,
		func(ctx context.Context, c runner.Coord, seed uint64) (runner.Sample, error) {
			res, err := gossip.Unified(cases[c.CellIndex].g, gossip.UnifiedOptions{
				Source: 0, KnownLatencies: true, Seed: seed, MaxRounds: 1 << 21,
			})
			if err != nil {
				return runner.Sample{}, err
			}
			return runner.Sample{
				Values: map[string]float64{
					"pp":  float64(res.PushPull.Rounds),
					"sp":  float64(res.Spanner.Rounds),
					"uni": float64(res.Rounds),
				},
				Labels: map[string]string{"winner": res.Winner},
			}, nil
		})
	if err != nil {
		return nil, fmt.Errorf("E10: %w", err)
	}
	tbl := &Table{
		ID:    "E10",
		Title: "unified algorithm: winner flips with topology",
		Claim: "unified time = O(min((D+Δ)log³n, (ℓ*/φ*)log n)) (Theorem 31)",
		Headers: []string{
			"graph", "push-pull", "spanner", "unified", "winner",
		},
	}
	for i := range cells {
		c := &cells[i]
		tbl.AddRow(c.Name, int(c.Mean("pp")), int(c.Mean("sp")), int(c.Mean("uni")), c.Label("winner"))
	}
	tbl.AddNote("well-connected graphs favor push-pull; the sparse gadget (needle-in-haystack fast edges, tiny D) flips the winner to the spanner arm, as Theorem 31 predicts")
	return tbl, nil
}

// expE11DTG verifies the ℓ-DTG building block: local broadcast in
// O(ℓ·log² n).
var expE11DTG = Experiment{
	ID:     "E11",
	Title:  "ℓ-DTG local broadcast cost",
	Source: "Appendix A.1, Section 4.1.1",
	Run:    runE11,
}

func runE11(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	ells := []int{1, 2, 4, 8, 16}
	ns := []int{8, 16, 32, 64}
	// One grid: ℓ-sweep cells at n=16, then n-sweep cells at ℓ=1.
	var names []string
	for _, ell := range ells {
		names = append(names, fmt.Sprintf("clique(16,ℓ=%d)", ell))
	}
	for _, n := range ns {
		names = append(names, fmt.Sprintf("clique(%d,ℓ=1)", n))
	}
	cells, err := runGrid(ctx, cfg, "E11", names, 1,
		func(ctx context.Context, c runner.Coord, seed uint64) (runner.Sample, error) {
			n, ell := 16, 1
			if c.CellIndex < len(ells) {
				ell = ells[c.CellIndex]
			} else {
				n = ns[c.CellIndex-len(ells)]
			}
			g := graphgen.Clique(n, ell)
			res, err := gossip.RunDTG(g, gossip.DTGOptions{Ell: ell, Seed: seed, MaxRounds: 1 << 20})
			if err != nil {
				return runner.Sample{}, err
			}
			if !res.Completed {
				return runner.Sample{}, fmt.Errorf("incomplete")
			}
			return runner.V(map[string]float64{"rounds": float64(res.Rounds)}), nil
		})
	if err != nil {
		return nil, fmt.Errorf("E11: %w", err)
	}
	tbl := &Table{
		ID:      "E11",
		Title:   "ℓ-DTG local broadcast cost",
		Claim:   "ℓ-DTG solves ℓ-local broadcast in O(ℓ·log²n) (Section 4.1.1)",
		Headers: []string{"graph", "ℓ", "rounds", "ℓ·log²n", "ratio"},
	}
	var xs, rounds []float64
	for i, ell := range ells {
		r := cells[i].Mean("rounds")
		logn := math.Log2(16)
		bound := float64(ell) * logn * logn
		tbl.AddRow(cells[i].Name, ell, int(r), bound, r/bound)
		xs = append(xs, float64(ell))
		rounds = append(rounds, r)
	}
	if exp, _, r2, err := stats.PowerLawFit(xs, rounds); err == nil {
		tbl.AddNote("fitted rounds ~ ℓ^%.2f (R²=%.3f); predicted exponent 1", exp, r2)
	}
	for i, n := range ns {
		r := cells[len(ells)+i].Mean("rounds")
		logn := math.Log2(float64(n))
		tbl.AddNote("clique n=%d: %.0f rounds; log²n = %.1f; ratio %.2f", n, r, logn*logn, r/(logn*logn))
	}
	return tbl, nil
}

// expE12RR verifies Lemma 21 / Figure 3: RR Broadcast on the directed
// spanner delivers between any two nodes within distance k in
// k·Δout + k rounds.
var expE12RR = Experiment{
	ID:     "E12",
	Title:  "RR Broadcast within the Lemma 21 budget",
	Source: "Lemma 21, Algorithm 1, Figure 3",
	Run:    runE12,
}

func runE12(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"grid(5x5,ℓ=2)", graphgen.Grid(5, 5, 2)},
		{"cycle(16,ℓ=3)", graphgen.Cycle(16, 3)},
		{"clique(20,ℓ=4)", graphgen.Clique(20, 4)},
	}
	names := cellNames(len(cases), func(i int) string { return cases[i].name })
	cells, err := runGrid(ctx, cfg, "E12", names, 1,
		func(ctx context.Context, c runner.Coord, seed uint64) (runner.Sample, error) {
			g := cases[c.CellIndex].g
			sp, err := spanner.Build(g, spanner.Options{Seed: seed})
			if err != nil {
				return runner.Sample{}, err
			}
			k := int(g.WeightedDiameter()) * (2*sp.K - 1)
			res, err := gossip.RunRR(g, gossip.RROptions{
				Spanner: sp, K: k, Seed: seed + 1, MaxRounds: 1 << 21,
				Stop: sim.StopAllHaveAll(),
			})
			if err != nil {
				return runner.Sample{}, err
			}
			full := 1.0
			for _, r := range res.FinalRumors() {
				if !r.Full() {
					full = 0
				}
			}
			return runner.V(map[string]float64{
				"k":      float64(k),
				"outdeg": float64(sp.MaxOutDegree()),
				"rounds": float64(res.Rounds),
				"full":   full,
			}), nil
		})
	if err != nil {
		return nil, fmt.Errorf("E12: %w", err)
	}
	tbl := &Table{
		ID:      "E12",
		Title:   "RR Broadcast within the Lemma 21 budget",
		Claim:   "rumors cross distance k within k·Δout + k rounds (Lemma 21)",
		Headers: []string{"graph", "k", "Δout", "budget k·Δout+k", "rounds used", "complete"},
	}
	for i := range cells {
		c := &cells[i]
		k, outdeg := int(c.Mean("k")), int(c.Mean("outdeg"))
		full := c.Min("full") == 1
		tbl.AddRow(c.Name, k, outdeg, k*outdeg+k, int(c.Mean("rounds")), full)
		if !full {
			tbl.AddNote("%s: VIOLATION — budget exhausted before completion", c.Name)
		}
	}
	tbl.AddNote("rounds used is the all-have-all completion round; Lemma 21 promises completion by the budget")
	return tbl, nil
}

// expE13NoPull verifies footnote 3: without pull, a star with slow edges
// costs Ω(nD) while push-pull needs ~D.
var expE13NoPull = Experiment{
	ID:     "E13",
	Title:  "the cost of dropping pull (blocking flood on a star)",
	Source: "footnote 3",
	Run:    runE13,
}

func runE13(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	lat := 16
	ns := []int{8, 16, 32}
	names := cellNames(len(ns), func(i int) string { return fmt.Sprintf("star(%d,ℓ=%d)", ns[i], lat) })
	cells, err := runGrid(ctx, cfg, "E13", names, 1,
		func(ctx context.Context, c runner.Coord, seed uint64) (runner.Sample, error) {
			g := graphgen.Star(ns[c.CellIndex], lat)
			// Both arms go through the driver registry by name — the one
			// protocol-selection code path shared with core and the CLIs.
			vals := map[string]float64{}
			for _, arm := range []struct{ key, driver string }{
				{"flood", "flood"}, {"pp", "push-pull"},
			} {
				res, err := gossip.Dispatch(arm.driver, g, gossip.DriverOptions{
					Source: 0, Seed: seed, MaxRounds: 1 << 21,
				})
				if err != nil {
					return runner.Sample{}, err
				}
				if !res.Completed {
					return runner.Sample{}, fmt.Errorf("%s incomplete", arm.driver)
				}
				vals[arm.key] = float64(res.Rounds)
			}
			return runner.V(vals), nil
		})
	if err != nil {
		return nil, fmt.Errorf("E13: %w", err)
	}
	tbl := &Table{
		ID:      "E13",
		Title:   "the cost of dropping pull (blocking flood on a star)",
		Claim:   "push-only flooding needs Ω(nD) on a star (footnote 3)",
		Headers: []string{"n", "D", "flood rounds", "(n-1)·D", "push-pull rounds"},
	}
	for i, n := range ns {
		c := &cells[i]
		tbl.AddRow(n, 2*lat, int(c.Mean("flood")), (n-1)*lat, int(c.Mean("pp")))
	}
	tbl.AddNote("flood grows linearly in n at fixed D; push-pull stays ~D because leaves pull")
	return tbl, nil
}
