package experiments

import (
	"context"
	"fmt"

	"gossip/internal/adversity"
	"gossip/internal/gossip"
	"gossip/internal/graph"
	"gossip/internal/graphgen"
	"gossip/internal/runner"
	"gossip/internal/sim"
	"gossip/internal/stats"
)

// expE30Election measures leader election on the gossip engine across
// failure regimes: benign, the leader crashing mid-election, the leader
// churning out and rejoining amnesic, and sustained message loss. In
// every regime the run must stabilize on the highest surviving ID (after
// a rejoin, on the rejoined maximum again), and every trial re-runs
// 8-way sharded and must match the serial run exactly — the coordination
// layer rides the same determinism contract as dissemination.
var expE30Election = Experiment{
	ID:     "E30",
	Title:  "leader election under churn: stabilization time and correctness",
	Source: "engineering extension: coordination protocols on the calendar engine",
	Run:    runE30,
}

func runE30(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	n := 48
	if cfg.Quick {
		n = 24
	}
	// Tight-but-safe timers keep stabilization times comparable across
	// regimes (the graph-derived defaults are deliberately looser).
	suspectAfter, stableRounds := 96, 16
	type regime struct {
		name  string
		build func() *adversity.Spec
		// want is the leader every survivor must decide on.
		want int
	}
	regimes := []regime{
		{"benign", func() *adversity.Spec { return nil }, n - 1},
		{"leader crash", func() *adversity.Spec {
			return &adversity.Spec{Crashes: []adversity.Crash{{Round: 20, Nodes: []graph.NodeID{n - 1}}}}
		}, n - 2},
		{"leader churn+amnesia", func() *adversity.Spec {
			return &adversity.Spec{Churn: []adversity.Churn{{Node: n - 1, Leave: 10, Rejoin: 150, Amnesia: true}}}
		}, n - 1},
		{"loss=15%", func() *adversity.Spec {
			return &adversity.Spec{Loss: 0.15}
		}, n - 1},
	}
	names := cellNames(len(regimes), func(i int) string { return regimes[i].name })
	cells, err := runGrid(ctx, cfg, "E30", names, cfg.Trials,
		func(ctx context.Context, c runner.Coord, seed uint64) (runner.Sample, error) {
			rg := regimes[c.CellIndex]
			g, err := graphgen.RandomRegular(n, 4, 1, graphgen.NewRand(seed))
			if err != nil {
				return runner.Sample{}, err
			}
			spec := rg.build()
			opts := gossip.DriverOptions{
				Seed: seed, MaxRounds: 1 << 14,
				SuspectAfter: suspectAfter, StableRounds: stableRounds,
				ExecOptions: gossip.ExecOptions{Adversity: spec},
			}
			serial, err := gossip.Dispatch("election", g, opts)
			if err != nil {
				return runner.Sample{}, err
			}
			opts.Workers = 8
			sharded, err := gossip.Dispatch("election", g, opts)
			if err != nil {
				return runner.Sample{}, err
			}
			if serial.Rounds != sharded.Rounds || serial.Completed != sharded.Completed ||
				serial.Exchanges != sharded.Exchanges || serial.Dropped != sharded.Dropped ||
				serial.Delivered != sharded.Delivered || serial.RumorPayload != sharded.RumorPayload {
				return runner.Sample{}, fmt.Errorf(
					"shard determinism violated (%s, seed=%d): w1 %+v vs w8 %+v",
					rg.name, seed, serial, sharded)
			}
			if !serial.Completed {
				return runner.Sample{}, fmt.Errorf("%s: election never stabilized (seed=%d)", rg.name, seed)
			}
			correct := true
			for u, p := range serial.Sim.World.Protos {
				if spec.NeverReturns(u) {
					continue
				}
				l, decided := p.(sim.LeaderReporter).Leader()
				if !decided || l != rg.want {
					correct = false
				}
			}
			return runner.V(map[string]float64{
				"rounds":  float64(serial.Rounds),
				"correct": b2f(correct),
			}), nil
		})
	if err != nil {
		return nil, fmt.Errorf("E30: %w", err)
	}
	tbl := &Table{
		ID:    "E30",
		Title: "leader election under churn (4-regular random graph)",
		Claim: "election stabilizes on the highest surviving ID in every regime; re-election after a leader crash costs roughly the suspicion window on top of benign stabilization",
		Headers: []string{
			"regime", "mean rounds", "p90", "always correct leader",
		},
	}
	for i, name := range names {
		sum := stats.Summarize(cells[i].Values("rounds"))
		tbl.AddRow(name, sum.Mean, sum.P90, cells[i].Min("correct") == 1)
	}
	tbl.AddNote("timers: suspect_after=%d, stable_rounds=%d; \"correct\" means every survivor decided on the expected maximum surviving ID", suspectAfter, stableRounds)
	tbl.AddNote("every trial re-ran with Workers=8 under the same fault schedule and matched the serial run exactly")
	return tbl, nil
}

// expE31Echo measures the echo/convergecast wave under message loss.
// Echo keeps no retransmission state: a lost exchange is repaired only
// if later traffic re-arms the sweep, so the wave's completion
// probability decays as loss grows while completed waves stay correct
// (the root heard every survivor). Every trial re-runs 8-way sharded
// and must match the serial run exactly.
var expE31Echo = Experiment{
	ID:     "E31",
	Title:  "echo wave completion vs message loss",
	Source: "engineering extension: coordination protocols on the calendar engine",
	Run:    runE31,
}

func runE31(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	n := 64
	if cfg.Quick {
		n = 32
	}
	losses := []float64{0, 0.05, 0.1, 0.2, 0.3}
	names := cellNames(len(losses), func(i int) string {
		return fmt.Sprintf("loss=%.0f%%", losses[i]*100)
	})
	cells, err := runGrid(ctx, cfg, "E31", names, cfg.Trials,
		func(ctx context.Context, c runner.Coord, seed uint64) (runner.Sample, error) {
			g, err := graphgen.RandomRegular(n, 4, 1, graphgen.NewRand(seed))
			if err != nil {
				return runner.Sample{}, err
			}
			var spec *adversity.Spec
			if p := losses[c.CellIndex]; p > 0 {
				spec = &adversity.Spec{Loss: p}
			}
			opts := gossip.DriverOptions{
				Source: 0, Seed: seed, MaxRounds: 1 << 12,
				ExecOptions: gossip.ExecOptions{Adversity: spec},
			}
			serial, err := gossip.Dispatch("echo", g, opts)
			if err != nil {
				return runner.Sample{}, err
			}
			opts.Workers = 8
			sharded, err := gossip.Dispatch("echo", g, opts)
			if err != nil {
				return runner.Sample{}, err
			}
			if serial.Rounds != sharded.Rounds || serial.Completed != sharded.Completed ||
				serial.Exchanges != sharded.Exchanges || serial.Dropped != sharded.Dropped ||
				serial.Delivered != sharded.Delivered || serial.RumorPayload != sharded.RumorPayload {
				return runner.Sample{}, fmt.Errorf(
					"shard determinism violated under loss=%v seed=%d: w1 %+v vs w8 %+v",
					losses[c.CellIndex], seed, serial, sharded)
			}
			root := serial.Sim.World.Views[0]
			acked := 0
			for u := 0; u < n; u++ {
				if root.Knows(graph.NodeID(u)) {
					acked++
				}
			}
			if serial.Completed && acked != n {
				return runner.Sample{}, fmt.Errorf(
					"completed wave with %d/%d acks at the root (seed=%d)", acked, n, seed)
			}
			return runner.V(map[string]float64{
				"rounds":  float64(serial.Rounds),
				"ok":      b2f(serial.Completed),
				"ackfrac": float64(acked) / float64(n),
			}), nil
		})
	if err != nil {
		return nil, fmt.Errorf("E31: %w", err)
	}
	tbl := &Table{
		ID:    "E31",
		Title: "echo wave vs message loss (4-regular random graph)",
		Claim: "without retransmission state the wave's completion probability decays with loss, but completed waves are always full: the root heard every node",
		Headers: []string{
			"loss", "completion frac", "mean ack frac", "mean rounds",
		},
	}
	for i, name := range names {
		tbl.AddRow(name, cells[i].Mean("ok"), cells[i].Mean("ackfrac"), stats.Summarize(cells[i].Values("rounds")).Mean)
	}
	tbl.AddNote("a trial that quiesces incomplete still reports its partial ack fraction; completed trials are checked to be full before aggregation")
	tbl.AddNote("every trial re-ran with Workers=8 under the same loss schedule and matched the serial run exactly")
	return tbl, nil
}
