package experiments

import (
	"context"
	"fmt"

	"gossip/internal/runner"
)

// Config tunes experiment scale.
type Config struct {
	// Seed drives all randomness. Each trial's RNG seed is derived from
	// a stable hash of (Seed, experiment, cell, trial) — see
	// runner.DeriveSeed — so results do not depend on scheduling.
	Seed uint64
	// Trials is the number of repetitions averaged per data point
	// (default 5, or 3 under Quick).
	Trials int
	// Quick shrinks problem sizes for CI and benchmarks.
	Quick bool
	// Workers caps the goroutine pool fanning trials across cores
	// (0 = GOMAXPROCS). Results are identical at any worker count.
	Workers int
	// Progress, when non-nil, receives per-experiment trial completion
	// counts (serialized by the runner).
	Progress func(done, total int)
}

func (c Config) withDefaults() Config {
	if c.Trials <= 0 {
		c.Trials = 5
		if c.Quick {
			c.Trials = 3
		}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// runGrid fans an experiment's trial grid across the configured worker
// pool and returns per-cell samples in declaration order.
func runGrid(ctx context.Context, cfg Config, exp string, cells []string, trialsPerCell int, fn runner.TrialFunc) ([]runner.Cell, error) {
	return runner.Run(ctx, runner.Grid{
		Exp:    exp,
		Cells:  cells,
		Trials: trialsPerCell,
		Run:    fn,
	}, runner.Options{
		BaseSeed: cfg.Seed,
		Workers:  cfg.Workers,
		Progress: cfg.Progress,
	})
}

// cellNames builds the n cell names of a single-axis grid.
func cellNames(n int, f func(i int) string) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = f(i)
	}
	return names
}

// b2f encodes a per-trial boolean as a 0/1 metric; aggregate with
// Cell.Min to ask "did it hold on every trial".
func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Experiment binds a paper claim to a runnable measurement.
type Experiment struct {
	ID    string
	Title string
	// Source cites the theorem/lemma/figure reproduced.
	Source string
	Run    func(ctx context.Context, cfg Config) (*Table, error)
}

// RunOne executes e and stamps provenance (the paper source) onto the
// resulting table so renderers and JSON artifacts carry the citation.
func RunOne(ctx context.Context, cfg Config, e Experiment) (*Table, error) {
	tbl, err := e.Run(ctx, cfg)
	if err != nil {
		return nil, err
	}
	if tbl.Source == "" {
		tbl.Source = e.Source
	}
	return tbl, nil
}

// All returns every experiment in ID order.
func All() []Experiment {
	return []Experiment{
		expE1Theorem5,
		expE2GuessSingleton,
		expE3GuessRandom,
		expE4DeltaLower,
		expE5ConductanceLower,
		expE6Tradeoff,
		expE7PushPullUpper,
		expE8Spanner,
		expE9Pattern,
		expE10Unified,
		expE11DTG,
		expE12RR,
		expE13NoPull,
		expE14Robustness,
		expE15Messages,
		expE16BoundedIn,
		expE17LocalBroadcast,
		expE18Blocking,
		expE19Curves,
		expE20Bandwidth,
		expE21Jitter,
		expE22FaultTolerant,
		expE23Scaling,
		expE24LossSweep,
		expE25Churn,
		expE26Service,
		expE27WarmSweep,
		expE28Distributed,
		expE29Estimate,
		expE30Election,
		expE31Echo,
	}
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}
