package experiments

import "fmt"

// Config tunes experiment scale.
type Config struct {
	// Seed drives all randomness.
	Seed uint64
	// Trials is the number of repetitions averaged per data point
	// (default 5, or 3 under Quick).
	Trials int
	// Quick shrinks problem sizes for CI and benchmarks.
	Quick bool
}

func (c Config) withDefaults() Config {
	if c.Trials <= 0 {
		c.Trials = 5
		if c.Quick {
			c.Trials = 3
		}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Experiment binds a paper claim to a runnable measurement.
type Experiment struct {
	ID    string
	Title string
	// Source cites the theorem/lemma/figure reproduced.
	Source string
	Run    func(cfg Config) (*Table, error)
}

// All returns every experiment in ID order.
func All() []Experiment {
	return []Experiment{
		expE1Theorem5,
		expE2GuessSingleton,
		expE3GuessRandom,
		expE4DeltaLower,
		expE5ConductanceLower,
		expE6Tradeoff,
		expE7PushPullUpper,
		expE8Spanner,
		expE9Pattern,
		expE10Unified,
		expE11DTG,
		expE12RR,
		expE13NoPull,
		expE14Robustness,
		expE15Messages,
		expE16BoundedIn,
		expE17LocalBroadcast,
		expE18Blocking,
		expE19Curves,
		expE20Bandwidth,
		expE21Jitter,
		expE22FaultTolerant,
	}
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}
