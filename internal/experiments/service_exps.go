package experiments

import (
	"context"
	"fmt"

	"gossip/internal/loadgen"
	"gossip/internal/runner"
	"gossip/internal/server"
)

// expE26Service exercises the gossipd service layer at experiment scale:
// each trial boots an in-process server per pool size, drives the
// closed-loop load generator's fixed mix through real HTTP, and then
// replays the mix against a single-slot reference server, asserting
// every response body byte-identical. The table reports only
// deterministic counters (requests, distinct jobs, cache hits, rounds);
// wall-clock throughput belongs to BenchmarkServerThroughput, where the
// regression gate can see it.
var expE26Service = Experiment{
	ID:     "E26",
	Title:  "service-layer scaling: gossipd under closed-loop load across pool sizes",
	Source: "engineering extension (serving the Theorem 29 workloads)",
	Run:    runE26,
}

func runE26(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	pools := []int{1, 2, 4}
	clients := 6
	if cfg.Quick {
		pools = []int{1, 4}
		clients = 4
	}
	names := cellNames(len(pools), func(i int) string {
		return fmt.Sprintf("gossipd(pool=%d)", pools[i])
	})
	cells, err := runGrid(ctx, cfg, "E26", names, cfg.Trials,
		func(ctx context.Context, c runner.Coord, seed uint64) (runner.Sample, error) {
			pool := pools[c.CellIndex]
			rep, err := driveServer(ctx, pool, clients, seed)
			if err != nil {
				return runner.Sample{}, err
			}
			// Reference run: one execution slot, sequential clients. The
			// service determinism contract says its bodies must match the
			// loaded server's bit for bit, key by key.
			ref, err := driveServer(ctx, 1, 1, seed)
			if err != nil {
				return runner.Sample{}, err
			}
			agree := 1.0
			for key, body := range rep.Bodies {
				other, ok := ref.Bodies[key]
				if !ok || string(other) != string(body) {
					agree = 0
				}
			}
			if rep.CacheMisses != rep.DistinctKeys {
				return runner.Sample{}, fmt.Errorf(
					"pool=%d seed=%d: %d misses for %d distinct jobs (memoization broke)",
					pool, seed, rep.CacheMisses, rep.DistinctKeys)
			}
			return runner.V(map[string]float64{
				"requests": float64(rep.Requests),
				"distinct": float64(rep.DistinctKeys),
				"hits":     float64(rep.CacheHits),
				"rounds":   float64(rep.RoundsSimulated),
				"agree":    agree,
			}), nil
		})
	if err != nil {
		return nil, fmt.Errorf("E26: %w", err)
	}
	tbl := &Table{
		ID:    "E26",
		Title: "gossipd service throughput scaling (closed-loop load, fixed mix)",
		Claim: "the service layer preserves engine determinism: identical jobs are byte-identical across pool sizes, memoized with exactly one execution per distinct request",
		Headers: []string{
			"server", "requests", "distinct jobs", "cache hits", "rounds simulated", "pools agree",
		},
	}
	for i, name := range names {
		cell := &cells[i]
		tbl.AddRow(name, cell.Mean("requests"), cell.Mean("distinct"),
			cell.Mean("hits"), cell.Mean("rounds"), cell.Min("agree") == 1)
	}
	tbl.AddNote("every trial replays its mix against a pool=1 reference server and byte-compares all bodies")
	tbl.AddNote("cache misses == distinct jobs in every trial: concurrent identical requests coalesce onto one execution")
	return tbl, nil
}

// driveServer boots an in-process gossipd with the given pool size and
// runs the load generator's fixed mix against it over real HTTP.
func driveServer(ctx context.Context, pool, clients int, seed uint64) (*loadgen.Report, error) {
	l, err := loadgen.StartLocal(server.Config{Pool: pool, CacheSize: 256})
	if err != nil {
		return nil, err
	}
	defer l.Close()
	rep, err := loadgen.Run(ctx, loadgen.Options{
		BaseURL:  l.URL,
		Clients:  clients,
		Requests: 3,
		BaseSeed: seed,
	})
	if err != nil {
		return nil, err
	}
	if err := rep.Err(); err != nil {
		return nil, fmt.Errorf("pool=%d: %w", pool, err)
	}
	return rep, nil
}
