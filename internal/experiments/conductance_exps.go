package experiments

import (
	"context"
	"fmt"

	"gossip/internal/conductance"
	"gossip/internal/graph"
	"gossip/internal/graphgen"
	"gossip/internal/runner"
)

// expE1Theorem5 verifies the Theorem 5 sandwich
// φ*/2ℓ* <= φavg <= L·φ*/ℓ* across structurally different families.
var expE1Theorem5 = Experiment{
	ID:     "E1",
	Title:  "critical vs average weighted conductance",
	Source: "Theorem 5",
	Run:    runE1,
}

func runE1(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	rng := graphgen.NewRand(cfg.Seed)
	er, err := graphgen.ErdosRenyi(14, 0.4, 1, rng)
	if err != nil {
		return nil, err
	}
	graphgen.AssignRandomLatencies(er, 1, 32, rng)
	ring, err := graphgen.NewRingNetwork(4, 4, 12, rng)
	if err != nil {
		return nil, err
	}
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"clique(10,ℓ=1)", graphgen.Clique(10, 1)},
		{"clique(10,ℓ=7)", graphgen.Clique(10, 7)},
		{"dumbbell(8,ℓ=32)", graphgen.Dumbbell(8, 32)},
		{"star(14,ℓ=5)", graphgen.Star(14, 5)},
		{"cycle(14,ℓ=3)", graphgen.Cycle(14, 3)},
		{"grid(4x4,ℓ=2)", graphgen.Grid(4, 4, 2)},
		{"er(14,rand ℓ≤32)", er},
		{"ring(k=4,s=4,ℓ=12)", ring.Graph},
	}
	names := cellNames(len(cases), func(i int) string { return cases[i].name })
	// Exact cut enumeration is deterministic, so one trial per cell; the
	// runner still fans the eight enumerations across cores.
	cells, err := runGrid(ctx, cfg, "E1", names, 1,
		func(ctx context.Context, c runner.Coord, seed uint64) (runner.Sample, error) {
			res, err := conductance.Exact(cases[c.CellIndex].g)
			if err != nil {
				return runner.Sample{}, err
			}
			return runner.V(map[string]float64{
				"phiStar": res.PhiStar,
				"ellStar": float64(res.EllStar),
				"classes": float64(res.NonEmptyClasses),
				"phiAvg":  res.PhiAvg,
				"holds":   b2f(res.CheckTheorem5() == nil),
			}), nil
		})
	if err != nil {
		return nil, fmt.Errorf("E1: %w", err)
	}
	tbl := &Table{
		ID:    "E1",
		Title: "critical vs average weighted conductance",
		Claim: "φ*/2ℓ* ≤ φavg ≤ L·φ*/ℓ*  (Theorem 5)",
		Headers: []string{
			"graph", "φ*", "ℓ*", "L", "φavg", "φ*/2ℓ*", "Lφ*/ℓ*", "holds",
		},
	}
	violations := 0
	for i := range cells {
		c := &cells[i]
		phiStar, ellStar := c.Mean("phiStar"), c.Mean("ellStar")
		lower := phiStar / (2 * ellStar)
		upper := c.Mean("classes") * phiStar / ellStar
		holds := c.Min("holds") == 1
		if !holds {
			violations++
		}
		tbl.AddRow(c.Name, phiStar, int(ellStar), int(c.Mean("classes")),
			c.Mean("phiAvg"), lower, upper, holds)
	}
	if violations == 0 {
		tbl.AddNote("Theorem 5 holds on all %d families (exact cut enumeration)", len(cases))
	} else {
		tbl.AddNote("VIOLATIONS: %d (investigate)", violations)
	}
	return tbl, nil
}
