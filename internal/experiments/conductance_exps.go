package experiments

import (
	"fmt"

	"gossip/internal/conductance"
	"gossip/internal/graph"
	"gossip/internal/graphgen"
)

// expE1Theorem5 verifies the Theorem 5 sandwich
// φ*/2ℓ* <= φavg <= L·φ*/ℓ* across structurally different families.
var expE1Theorem5 = Experiment{
	ID:     "E1",
	Title:  "critical vs average weighted conductance",
	Source: "Theorem 5",
	Run:    runE1,
}

func runE1(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	rng := graphgen.NewRand(cfg.Seed)
	type namedGraph struct {
		name string
		g    *graph.Graph
	}
	er, err := graphgen.ErdosRenyi(14, 0.4, 1, rng)
	if err != nil {
		return nil, err
	}
	graphgen.AssignRandomLatencies(er, 1, 32, rng)
	ring, err := graphgen.NewRingNetwork(4, 4, 12, rng)
	if err != nil {
		return nil, err
	}
	cases := []namedGraph{
		{"clique(10,ℓ=1)", graphgen.Clique(10, 1)},
		{"clique(10,ℓ=7)", graphgen.Clique(10, 7)},
		{"dumbbell(8,ℓ=32)", graphgen.Dumbbell(8, 32)},
		{"star(14,ℓ=5)", graphgen.Star(14, 5)},
		{"cycle(14,ℓ=3)", graphgen.Cycle(14, 3)},
		{"grid(4x4,ℓ=2)", graphgen.Grid(4, 4, 2)},
		{"er(14,rand ℓ≤32)", er},
		{"ring(k=4,s=4,ℓ=12)", ring.Graph},
	}
	tbl := &Table{
		ID:    "E1",
		Title: "critical vs average weighted conductance",
		Claim: "φ*/2ℓ* ≤ φavg ≤ L·φ*/ℓ*  (Theorem 5)",
		Headers: []string{
			"graph", "φ*", "ℓ*", "L", "φavg", "φ*/2ℓ*", "Lφ*/ℓ*", "holds",
		},
	}
	violations := 0
	for _, c := range cases {
		res, err := conductance.Exact(c.g)
		if err != nil {
			return nil, fmt.Errorf("E1 %s: %w", c.name, err)
		}
		lower := res.PhiStar / (2 * float64(res.EllStar))
		upper := float64(res.NonEmptyClasses) * res.PhiStar / float64(res.EllStar)
		holds := res.CheckTheorem5() == nil
		if !holds {
			violations++
		}
		tbl.AddRow(c.name, res.PhiStar, res.EllStar, res.NonEmptyClasses, res.PhiAvg, lower, upper, holds)
	}
	if violations == 0 {
		tbl.AddNote("Theorem 5 holds on all %d families (exact cut enumeration)", len(cases))
	} else {
		tbl.AddNote("VIOLATIONS: %d (investigate)", violations)
	}
	return tbl, nil
}
