package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestAllRegistered(t *testing.T) {
	all := All()
	if len(all) != 31 {
		t.Fatalf("registered %d experiments, want 31", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Source == "" || e.Run == nil {
			t.Fatalf("experiment %+v incomplete", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate ID %s", e.ID)
		}
		seen[e.ID] = true
	}
}

func TestGet(t *testing.T) {
	e, err := Get("E1")
	if err != nil {
		t.Fatal(err)
	}
	if e.ID != "E1" {
		t.Fatalf("Get(E1) = %s", e.ID)
	}
	if _, err := Get("E99"); err == nil {
		t.Fatal("expected error for unknown ID")
	}
}

// Every experiment must run to completion in Quick mode and produce a
// well-formed table. This is the repository's end-to-end integration
// test: it exercises generators, conductance, the simulator, every
// protocol and the guessing game.
func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep skipped in -short")
	}
	cfg := Config{Seed: 7, Quick: true, Trials: 2}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tbl, err := RunOne(context.Background(), cfg, e)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if tbl.Source != e.Source {
				t.Fatalf("%s: source not stamped (%q)", e.ID, tbl.Source)
			}
			if len(tbl.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			for _, row := range tbl.Rows {
				if len(row) != len(tbl.Headers) {
					t.Fatalf("%s row width %d != headers %d", e.ID, len(row), len(tbl.Headers))
				}
			}
			var buf bytes.Buffer
			if err := tbl.Render(&buf); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(buf.String(), e.ID) {
				t.Fatalf("%s render missing ID", e.ID)
			}
		})
	}
}

// TestWorkerCountDeterminism is the harness's core guarantee: the same
// grid produces byte-identical JSON artifacts at workers=1 and
// workers=8, because every trial's randomness derives from its grid
// coordinates rather than from scheduling order.
func TestWorkerCountDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism sweep skipped in -short")
	}
	// A cross-section of grid shapes: multi-trial stochastic cells (E2,
	// E4), sparse metrics (E3), mixed per-trial + per-cell work (E14),
	// and label-carrying samples (E6).
	// E26 rides along to pin that even the HTTP service layer produces
	// schedule-independent tables (its metrics are all counters the
	// coalescing cache makes deterministic).
	for _, id := range []string{"E2", "E3", "E4", "E6", "E14", "E26"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			e, err := Get(id)
			if err != nil {
				t.Fatal(err)
			}
			render := func(workers int) string {
				cfg := Config{Seed: 11, Quick: true, Trials: 2, Workers: workers}
				tbl, err := RunOne(context.Background(), cfg, e)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				var buf bytes.Buffer
				if err := tbl.JSON(&buf); err != nil {
					t.Fatal(err)
				}
				return buf.String()
			}
			serial := render(1)
			parallel := render(8)
			if serial != parallel {
				t.Fatalf("JSON diverged between workers=1 and workers=8:\n--- workers=1\n%s\n--- workers=8\n%s", serial, parallel)
			}
		})
	}
}

func TestRunHonorsContextCancellation(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond) // let the deadline pass
	e, err := Get("E2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunOne(ctx, Config{Quick: true, Trials: 1}, e); err == nil {
		t.Fatal("expected context error")
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	tbl := &Table{
		ID:      "T",
		Title:   "demo",
		Claim:   "x",
		Headers: []string{"a", "b"},
	}
	tbl.AddRow(1, 2.5)
	tbl.AddRow("x,y", 10000.0)
	tbl.AddNote("note %d", 1)
	var txt bytes.Buffer
	if err := tbl.Render(&txt); err != nil {
		t.Fatal(err)
	}
	out := txt.String()
	for _, want := range []string{"T — demo", "claim: x", "2.500", "note: note 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q in:\n%s", want, out)
		}
	}
	var csv bytes.Buffer
	if err := tbl.CSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), `"x,y"`) {
		t.Fatalf("CSV escaping broken:\n%s", csv.String())
	}
	if !strings.HasPrefix(csv.String(), "a,b\n") {
		t.Fatalf("CSV header broken:\n%s", csv.String())
	}
}

func TestTableJSON(t *testing.T) {
	tbl := &Table{
		ID:      "T",
		Title:   "demo",
		Source:  "Theorem 1",
		Claim:   "x",
		Headers: []string{"a", "b"},
	}
	tbl.AddRow(1, 2.5)
	tbl.AddNote("note %d", 1)
	var buf bytes.Buffer
	if err := tbl.JSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		SchemaVersion int        `json:"schema_version"`
		ID            string     `json:"id"`
		Source        string     `json:"source"`
		Headers       []string   `json:"headers"`
		Rows          [][]string `json:"rows"`
		Notes         []string   `json:"notes"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if decoded.SchemaVersion != 1 || decoded.ID != "T" || decoded.Source != "Theorem 1" {
		t.Fatalf("decoded = %+v", decoded)
	}
	if len(decoded.Rows) != 1 || decoded.Rows[0][1] != "2.500" {
		t.Fatalf("rows = %v", decoded.Rows)
	}
	if len(decoded.Notes) != 1 {
		t.Fatalf("notes = %v", decoded.Notes)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Trials != 5 || c.Seed != 1 {
		t.Fatalf("defaults = %+v", c)
	}
	q := Config{Quick: true}.withDefaults()
	if q.Trials != 3 {
		t.Fatalf("quick trials = %d", q.Trials)
	}
}

func TestFormatFloat(t *testing.T) {
	tests := []struct {
		v    float64
		want string
	}{
		{0, "0"}, {12345, "12345"}, {99.5, "99.5"}, {1.23456, "1.235"},
	}
	for _, tt := range tests {
		if got := formatFloat(tt.v); got != tt.want {
			t.Fatalf("formatFloat(%v) = %q, want %q", tt.v, got, tt.want)
		}
	}
}
