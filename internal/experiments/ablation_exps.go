package experiments

import (
	"fmt"

	"gossip/internal/gossip"
	"gossip/internal/graph"
	"gossip/internal/graphgen"
	"gossip/internal/sim"
	"gossip/internal/stats"
	"gossip/internal/viz"
)

// expE17LocalBroadcast compares the two local broadcast primitives the
// paper names in Section 4.1.1: Haeupler's deterministic DTG and the
// randomized Superstep of Censor-Hillel et al.
var expE17LocalBroadcast = Experiment{
	ID:     "E17",
	Title:  "local broadcast primitives: DTG vs Superstep",
	Source: "Section 4.1.1 ([5] and [20])",
	Run:    runE17,
}

func runE17(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	rng := graphgen.NewRand(cfg.Seed)
	er, err := graphgen.ErdosRenyi(24, 0.3, 1, rng)
	if err != nil {
		return nil, err
	}
	graphgen.AssignRandomLatencies(er, 1, 8, rng)
	cases := []struct {
		name string
		g    *graph.Graph
		ell  int
	}{
		{"clique(32,ℓ=1)", graphgen.Clique(32, 1), 1},
		{"star(32,ℓ=2)", graphgen.Star(32, 2), 2},
		{"grid(6x6,ℓ=2)", graphgen.Grid(6, 6, 2), 2},
		{"er(24,rand ℓ≤8)", er, 8},
	}
	tbl := &Table{
		ID:    "E17",
		Title: "local broadcast primitives: DTG vs Superstep",
		Claim: "both primitives solve ℓ-local broadcast in O(ℓ·polylog n) (Section 4.1.1)",
		Headers: []string{
			"graph", "ℓ", "DTG rounds", "DTG exch", "Superstep rounds", "SS exch",
		},
	}
	for _, c := range cases {
		var dr, de, sr, se []float64
		for trial := 0; trial < cfg.Trials; trial++ {
			d, err := gossip.RunDTG(c.g, gossip.DTGOptions{
				Ell: c.ell, Seed: cfg.Seed + uint64(trial), MaxRounds: 1 << 19,
			})
			if err != nil {
				return nil, err
			}
			s, err := gossip.RunSuperstep(c.g, gossip.SuperstepOptions{
				Ell: c.ell, Seed: cfg.Seed + uint64(trial), MaxRounds: 1 << 19,
			})
			if err != nil {
				return nil, err
			}
			if !d.Completed || !s.Completed {
				return nil, fmt.Errorf("E17 %s: incomplete", c.name)
			}
			dr = append(dr, float64(d.Rounds))
			de = append(de, float64(d.Exchanges))
			sr = append(sr, float64(s.Rounds))
			se = append(se, float64(s.Exchanges))
		}
		tbl.AddRow(c.name, c.ell, stats.Mean(dr), stats.Mean(de), stats.Mean(sr), stats.Mean(se))
	}
	tbl.AddNote("DTG is deterministic and pipelines aggressively; Superstep trades determinism for simplicity and supports timeouts (see E22)")
	return tbl, nil
}

// expE18Blocking ablates the model's non-blocking initiation rule
// (Section 1: "each node can initiate a new exchange in every round,
// even if previous messages have not yet been delivered").
var expE18Blocking = Experiment{
	ID:     "E18",
	Title:  "non-blocking vs blocking push-pull",
	Source: "Section 1 (model; non-blocking footnote)",
	Run:    runE18,
}

func runE18(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	tbl := &Table{
		ID:    "E18",
		Title: "non-blocking vs blocking push-pull",
		Claim: "non-blocking initiation pipelines slow edges; blocking pays them serially",
		Headers: []string{
			"graph", "non-blocking", "blocking", "blocking/non-blocking",
		},
	}
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"clique(24,ℓ=1)", graphgen.Clique(24, 1)},
		{"clique(24,ℓ=16)", graphgen.Clique(24, 16)},
		{"dumbbell(10,ℓ=64)", graphgen.Dumbbell(10, 64)},
	}
	for _, c := range cases {
		var nb, bl []float64
		for trial := 0; trial < cfg.Trials*2; trial++ {
			a, err := gossip.RunPushPull(c.g, 0, cfg.Seed+uint64(trial), 1<<20)
			if err != nil {
				return nil, err
			}
			b, err := gossip.RunPushPullBlocking(c.g, 0, cfg.Seed+uint64(trial), 1<<20)
			if err != nil {
				return nil, err
			}
			if !a.Completed || !b.Completed {
				return nil, fmt.Errorf("E18 %s: incomplete", c.name)
			}
			nb = append(nb, float64(a.Rounds))
			bl = append(bl, float64(b.Rounds))
		}
		mn, mb := stats.Mean(nb), stats.Mean(bl)
		tbl.AddRow(c.name, mn, mb, mb/mn)
	}
	tbl.AddNote("with unit latencies the variants coincide; with slow edges blocking wastes the latency window — the reason the model allows pipelined initiations")
	return tbl, nil
}

// expE19Curves renders the spreading curves (informed nodes per round) of
// push-pull on contrasting topologies — the figure-style view of how the
// weighted bottleneck shapes the epidemic.
var expE19Curves = Experiment{
	ID:     "E19",
	Title:  "spreading curves across topologies",
	Source: "Section 1 (motivation) / Theorem 29 dynamics",
	Run:    runE19,
}

func runE19(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	rng := graphgen.NewRand(cfg.Seed)
	ring, err := graphgen.NewRingNetwork(8, 4, 32, rng)
	if err != nil {
		return nil, err
	}
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"clique(64,ℓ=1)", graphgen.Clique(64, 1)},
		{"dumbbell(32,ℓ=64)", graphgen.Dumbbell(32, 64)},
		{"ring(8,4,ℓ=32)", ring.Graph},
	}
	tbl := &Table{
		ID:    "E19",
		Title: "spreading curves across topologies",
		Claim: "the bottleneck (φ*, ℓ*) shapes the epidemic: exponential on expanders, plateau at slow cuts",
		Headers: []string{
			"graph", "rounds", "half-time", "half/total", "curve",
		},
	}
	for _, c := range cases {
		res, err := gossip.RunPushPull(c.g, 0, cfg.Seed+11, 1<<20)
		if err != nil {
			return nil, err
		}
		if !res.Completed {
			return nil, fmt.Errorf("E19 %s: incomplete", c.name)
		}
		curve := res.SpreadCurve()
		ht := res.HalfTime()
		tbl.AddRow(c.name, res.Rounds, ht, float64(ht)/float64(res.Rounds),
			viz.SparklineInts(downsampleInts(curve, 24)))
	}
	tbl.AddNote("the clique saturates almost immediately after half-time (S-curve); the dumbbell plateaus at n/2 until the latency-ℓ* bridge delivers — the ℓ*/φ* bottleneck made visible")
	return tbl, nil
}

func downsampleInts(xs []int, width int) []int {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	ds := viz.Downsample(fs, width)
	out := make([]int, len(ds))
	for i, f := range ds {
		out[i] = int(f)
	}
	return out
}

// expE20Bandwidth contrasts the rumor-payload cost of push-pull and the
// spanner pipeline: Section 6 notes push-pull works with small messages
// while the spanner algorithm relies on DTG's large exchanges.
var expE20Bandwidth = Experiment{
	ID:     "E20",
	Title:  "bandwidth: rumor payload of push-pull vs spanner pipeline",
	Source: "Section 6 (message size discussion)",
	Run:    runE20,
}

func runE20(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	tbl := &Table{
		ID:    "E20",
		Title: "bandwidth: rumor payload of push-pull vs spanner pipeline",
		Claim: "push-pull works with small messages; the spanner pipeline ships far more rumor payload (Section 6)",
		Headers: []string{
			"graph", "pp rounds", "pp payload", "sp rounds", "sp payload", "payload ratio",
		},
	}
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"grid(5x5,ℓ=2)", graphgen.Grid(5, 5, 2)},
		{"clique(24,ℓ=2)", graphgen.Clique(24, 2)},
	}
	for _, c := range cases {
		pp, err := gossip.RunPushPullAllToAll(c.g, cfg.Seed+1, 1<<20)
		if err != nil {
			return nil, err
		}
		if !pp.Completed {
			return nil, fmt.Errorf("E20 %s: push-pull incomplete", c.name)
		}
		sp, err := gossip.SpannerBroadcast(c.g, gossip.SpannerOptions{
			KnownLatencies: true, Seed: cfg.Seed + 2, SkipCheck: true,
			D: int(c.g.WeightedDiameter()),
		})
		if err != nil {
			return nil, err
		}
		ratio := float64(sp.RumorPayload) / float64(pp.RumorPayload)
		tbl.AddRow(c.name, pp.Rounds, pp.RumorPayload, sp.Rounds, sp.RumorPayload, ratio)
	}
	tbl.AddNote("payload counts rumor units actually carried by delivered exchanges; the pipeline's repeated DTG phases dominate push-pull's bandwidth")
	return tbl, nil
}

// expE21Jitter perturbs realized latencies (footnote 2: nodes cannot
// predict link latency) and checks which algorithms degrade.
var expE21Jitter = Experiment{
	ID:     "E21",
	Title:  "latency jitter: planning with stale information",
	Source: "Section 1, footnote 2",
	Run:    runE21,
}

func runE21(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	g := graphgen.Grid(5, 5, 4)
	tbl := &Table{
		ID:    "E21",
		Title: "latency jitter: planning with stale information",
		Claim: "push-pull is oblivious to jitter; latency-planned schedules degrade gracefully (footnote 2)",
		Headers: []string{
			"jitter", "push-pull rounds", "dtg rounds", "dtg complete",
		},
	}
	for _, jitter := range []float64{0, 0.2, 0.5} {
		var ppRounds, dtgRounds []float64
		dtgOK := true
		for trial := 0; trial < cfg.Trials; trial++ {
			seed := cfg.Seed + uint64(trial)*17
			pp, err := sim.Run(sim.Config{
				Graph: g, Seed: seed, MaxRounds: 1 << 19,
				Mode: sim.OneToAll, Source: 0, LatencyJitter: jitter,
			}, func(nv *sim.NodeView) sim.Protocol { return gossip.NewPushPull(nv) },
				sim.StopAllInformed(0))
			if err != nil {
				return nil, err
			}
			dtg, err := sim.Run(sim.Config{
				Graph: g, Seed: seed, MaxRounds: 1 << 19, KnownLatencies: true,
				Mode: sim.AllToAll, LatencyJitter: jitter,
			}, func(nv *sim.NodeView) sim.Protocol { return gossip.NewDTG(nv, 8) },
				sim.StopAllDone())
			if err != nil {
				return nil, err
			}
			ppRounds = append(ppRounds, float64(pp.Rounds))
			dtgRounds = append(dtgRounds, float64(dtg.Rounds))
			dtgOK = dtgOK && dtg.Completed
		}
		tbl.AddRow(jitter, stats.Mean(ppRounds), stats.Mean(dtgRounds), dtgOK)
	}
	tbl.AddNote("nominal latencies stay within the ℓ filter under these jitter levels, so DTG still completes; its waits simply stretch with the realized round trips")
	return tbl, nil
}

// expE22FaultTolerant evaluates this repository's extension of the
// paper's future-work direction (Section 7: "development of reliable
// robust fault-tolerant algorithms"): the Superstep primitive with
// timeouts inside the spanner pipeline, under mid-run crashes.
var expE22FaultTolerant = Experiment{
	ID:     "E22",
	Title:  "fault-tolerant pipeline: Superstep+timeout vs plain DTG",
	Source: "Section 7 (future work), extension",
	Run:    runE22,
}

func runE22(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	n := 24
	tbl := &Table{
		ID:    "E22",
		Title: "fault-tolerant pipeline: Superstep+timeout vs plain DTG",
		Claim: "timeout-based abandonment restores progress under crashes (Section 7 future work)",
		Headers: []string{
			"crashed@5", "dtg rounds", "dtg complete", "ss+timeout rounds", "ss complete",
		},
	}
	for _, crashes := range []int{0, 2, 4} {
		crashAt := make([]int, n)
		for u := range crashAt {
			crashAt[u] = -1
		}
		for i := 0; i < crashes; i++ {
			crashAt[1+i] = 5
		}
		g := graphgen.Clique(n, 2)
		plain, err := gossip.SpannerBroadcast(g, gossip.SpannerOptions{
			KnownLatencies: true, Seed: cfg.Seed, MaxPhaseRounds: 4096, CrashAt: crashAt,
		})
		if err != nil {
			return nil, err
		}
		robust, err := gossip.SpannerBroadcast(g, gossip.SpannerOptions{
			KnownLatencies: true, Seed: cfg.Seed, MaxPhaseRounds: 4096,
			CrashAt: crashAt, UseSuperstep: true, LBTimeout: 8,
		})
		if err != nil {
			return nil, err
		}
		tbl.AddRow(crashes, plain.Rounds, plain.Completed, robust.Rounds, robust.Completed)
	}
	tbl.AddNote("the plain pipeline leans on RR redundancy to finish despite stalled DTG phases; the timeout variant keeps the local-broadcast phases themselves healthy")
	return tbl, nil
}
