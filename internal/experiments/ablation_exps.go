package experiments

import (
	"context"
	"fmt"

	"gossip/internal/gossip"
	"gossip/internal/graph"
	"gossip/internal/graphgen"
	"gossip/internal/runner"
	"gossip/internal/sim"
	"gossip/internal/viz"
)

// expE17LocalBroadcast compares the two local broadcast primitives the
// paper names in Section 4.1.1: Haeupler's deterministic DTG and the
// randomized Superstep of Censor-Hillel et al.
var expE17LocalBroadcast = Experiment{
	ID:     "E17",
	Title:  "local broadcast primitives: DTG vs Superstep",
	Source: "Section 4.1.1 ([5] and [20])",
	Run:    runE17,
}

func runE17(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	rng := graphgen.NewRand(cfg.Seed)
	er, err := graphgen.ErdosRenyi(24, 0.3, 1, rng)
	if err != nil {
		return nil, err
	}
	graphgen.AssignRandomLatencies(er, 1, 8, rng)
	cases := []struct {
		name string
		g    *graph.Graph
		ell  int
	}{
		{"clique(32,ℓ=1)", graphgen.Clique(32, 1), 1},
		{"star(32,ℓ=2)", graphgen.Star(32, 2), 2},
		{"grid(6x6,ℓ=2)", graphgen.Grid(6, 6, 2), 2},
		{"er(24,rand ℓ≤8)", er, 8},
	}
	names := cellNames(len(cases), func(i int) string { return cases[i].name })
	cells, err := runGrid(ctx, cfg, "E17", names, cfg.Trials,
		func(ctx context.Context, c runner.Coord, seed uint64) (runner.Sample, error) {
			cse := cases[c.CellIndex]
			d, err := gossip.RunDTG(cse.g, gossip.DTGOptions{
				Ell: cse.ell, Seed: seed, MaxRounds: 1 << 19,
			})
			if err != nil {
				return runner.Sample{}, err
			}
			s, err := gossip.RunSuperstep(cse.g, gossip.SuperstepOptions{
				Ell: cse.ell, Seed: seed, MaxRounds: 1 << 19,
			})
			if err != nil {
				return runner.Sample{}, err
			}
			if !d.Completed || !s.Completed {
				return runner.Sample{}, fmt.Errorf("incomplete")
			}
			return runner.V(map[string]float64{
				"dtg_rounds": float64(d.Rounds),
				"dtg_exch":   float64(d.Exchanges),
				"ss_rounds":  float64(s.Rounds),
				"ss_exch":    float64(s.Exchanges),
			}), nil
		})
	if err != nil {
		return nil, fmt.Errorf("E17: %w", err)
	}
	tbl := &Table{
		ID:    "E17",
		Title: "local broadcast primitives: DTG vs Superstep",
		Claim: "both primitives solve ℓ-local broadcast in O(ℓ·polylog n) (Section 4.1.1)",
		Headers: []string{
			"graph", "ℓ", "DTG rounds", "DTG exch", "Superstep rounds", "SS exch",
		},
	}
	for i, cse := range cases {
		c := &cells[i]
		tbl.AddRow(cse.name, cse.ell, c.Mean("dtg_rounds"), c.Mean("dtg_exch"),
			c.Mean("ss_rounds"), c.Mean("ss_exch"))
	}
	tbl.AddNote("DTG is deterministic and pipelines aggressively; Superstep trades determinism for simplicity and supports timeouts (see E22)")
	return tbl, nil
}

// expE18Blocking ablates the model's non-blocking initiation rule
// (Section 1: "each node can initiate a new exchange in every round,
// even if previous messages have not yet been delivered").
var expE18Blocking = Experiment{
	ID:     "E18",
	Title:  "non-blocking vs blocking push-pull",
	Source: "Section 1 (model; non-blocking footnote)",
	Run:    runE18,
}

func runE18(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"clique(24,ℓ=1)", graphgen.Clique(24, 1)},
		{"clique(24,ℓ=16)", graphgen.Clique(24, 16)},
		{"dumbbell(10,ℓ=64)", graphgen.Dumbbell(10, 64)},
	}
	names := cellNames(len(cases), func(i int) string { return cases[i].name })
	cells, err := runGrid(ctx, cfg, "E18", names, cfg.Trials*2,
		func(ctx context.Context, c runner.Coord, seed uint64) (runner.Sample, error) {
			g := cases[c.CellIndex].g
			a, err := gossip.RunPushPull(g, 0, seed, 1<<20)
			if err != nil {
				return runner.Sample{}, err
			}
			b, err := gossip.RunPushPullBlocking(g, 0, seed, 1<<20)
			if err != nil {
				return runner.Sample{}, err
			}
			if !a.Completed || !b.Completed {
				return runner.Sample{}, fmt.Errorf("incomplete")
			}
			return runner.V(map[string]float64{
				"nb": float64(a.Rounds),
				"bl": float64(b.Rounds),
			}), nil
		})
	if err != nil {
		return nil, fmt.Errorf("E18: %w", err)
	}
	tbl := &Table{
		ID:    "E18",
		Title: "non-blocking vs blocking push-pull",
		Claim: "non-blocking initiation pipelines slow edges; blocking pays them serially",
		Headers: []string{
			"graph", "non-blocking", "blocking", "blocking/non-blocking",
		},
	}
	for i, cse := range cases {
		c := &cells[i]
		mn, mb := c.Mean("nb"), c.Mean("bl")
		tbl.AddRow(cse.name, mn, mb, mb/mn)
	}
	tbl.AddNote("with unit latencies the variants coincide; with slow edges blocking wastes the latency window — the reason the model allows pipelined initiations")
	return tbl, nil
}

// expE19Curves renders the spreading curves (informed nodes per round) of
// push-pull on contrasting topologies — the figure-style view of how the
// weighted bottleneck shapes the epidemic.
var expE19Curves = Experiment{
	ID:     "E19",
	Title:  "spreading curves across topologies",
	Source: "Section 1 (motivation) / Theorem 29 dynamics",
	Run:    runE19,
}

func runE19(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	rng := graphgen.NewRand(cfg.Seed)
	ring, err := graphgen.NewRingNetwork(8, 4, 32, rng)
	if err != nil {
		return nil, err
	}
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"clique(64,ℓ=1)", graphgen.Clique(64, 1)},
		{"dumbbell(32,ℓ=64)", graphgen.Dumbbell(32, 64)},
		{"ring(8,4,ℓ=32)", ring.Graph},
	}
	names := cellNames(len(cases), func(i int) string { return cases[i].name })
	cells, err := runGrid(ctx, cfg, "E19", names, 1,
		func(ctx context.Context, c runner.Coord, seed uint64) (runner.Sample, error) {
			res, err := gossip.RunPushPull(cases[c.CellIndex].g, 0, seed, 1<<20)
			if err != nil {
				return runner.Sample{}, err
			}
			if !res.Completed {
				return runner.Sample{}, fmt.Errorf("incomplete")
			}
			ht := res.HalfTime()
			return runner.Sample{
				Values: map[string]float64{
					"rounds":   float64(res.Rounds),
					"halftime": float64(ht),
				},
				Labels: map[string]string{
					"curve": viz.SparklineInts(downsampleInts(res.SpreadCurve(), 24)),
				},
			}, nil
		})
	if err != nil {
		return nil, fmt.Errorf("E19: %w", err)
	}
	tbl := &Table{
		ID:    "E19",
		Title: "spreading curves across topologies",
		Claim: "the bottleneck (φ*, ℓ*) shapes the epidemic: exponential on expanders, plateau at slow cuts",
		Headers: []string{
			"graph", "rounds", "half-time", "half/total", "curve",
		},
	}
	for i := range cells {
		c := &cells[i]
		rounds, ht := c.Mean("rounds"), c.Mean("halftime")
		tbl.AddRow(c.Name, int(rounds), int(ht), ht/rounds, c.Label("curve"))
	}
	tbl.AddNote("the clique saturates almost immediately after half-time (S-curve); the dumbbell plateaus at n/2 until the latency-ℓ* bridge delivers — the ℓ*/φ* bottleneck made visible")
	return tbl, nil
}

func downsampleInts(xs []int, width int) []int {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	ds := viz.Downsample(fs, width)
	out := make([]int, len(ds))
	for i, f := range ds {
		out[i] = int(f)
	}
	return out
}

// expE20Bandwidth contrasts the rumor-payload cost of push-pull and the
// spanner pipeline: Section 6 notes push-pull works with small messages
// while the spanner algorithm relies on DTG's large exchanges.
var expE20Bandwidth = Experiment{
	ID:     "E20",
	Title:  "bandwidth: rumor payload of push-pull vs spanner pipeline",
	Source: "Section 6 (message size discussion)",
	Run:    runE20,
}

func runE20(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"grid(5x5,ℓ=2)", graphgen.Grid(5, 5, 2)},
		{"clique(24,ℓ=2)", graphgen.Clique(24, 2)},
	}
	names := cellNames(len(cases), func(i int) string { return cases[i].name })
	cells, err := runGrid(ctx, cfg, "E20", names, 1,
		func(ctx context.Context, c runner.Coord, seed uint64) (runner.Sample, error) {
			g := cases[c.CellIndex].g
			pp, err := gossip.RunPushPullAllToAll(g, seed, 1<<20)
			if err != nil {
				return runner.Sample{}, err
			}
			if !pp.Completed {
				return runner.Sample{}, fmt.Errorf("push-pull incomplete")
			}
			sp, err := gossip.SpannerBroadcast(g, gossip.SpannerOptions{
				KnownLatencies: true, Seed: seed + 1, SkipCheck: true,
				D: int(g.WeightedDiameter()),
			})
			if err != nil {
				return runner.Sample{}, err
			}
			return runner.V(map[string]float64{
				"pp_rounds":  float64(pp.Rounds),
				"pp_payload": float64(pp.RumorPayload),
				"sp_rounds":  float64(sp.Rounds),
				"sp_payload": float64(sp.RumorPayload),
			}), nil
		})
	if err != nil {
		return nil, fmt.Errorf("E20: %w", err)
	}
	tbl := &Table{
		ID:    "E20",
		Title: "bandwidth: rumor payload of push-pull vs spanner pipeline",
		Claim: "push-pull works with small messages; the spanner pipeline ships far more rumor payload (Section 6)",
		Headers: []string{
			"graph", "pp rounds", "pp payload", "sp rounds", "sp payload", "payload ratio",
		},
	}
	for i := range cells {
		c := &cells[i]
		tbl.AddRow(c.Name, int(c.Mean("pp_rounds")), int(c.Mean("pp_payload")),
			int(c.Mean("sp_rounds")), int(c.Mean("sp_payload")),
			c.Mean("sp_payload")/c.Mean("pp_payload"))
	}
	tbl.AddNote("payload counts rumor units actually carried by delivered exchanges; the pipeline's repeated DTG phases dominate push-pull's bandwidth")
	return tbl, nil
}

// expE21Jitter perturbs realized latencies (footnote 2: nodes cannot
// predict link latency) and checks which algorithms degrade.
var expE21Jitter = Experiment{
	ID:     "E21",
	Title:  "latency jitter: planning with stale information",
	Source: "Section 1, footnote 2",
	Run:    runE21,
}

func runE21(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	g := graphgen.Grid(5, 5, 4)
	jitters := []float64{0, 0.2, 0.5}
	names := cellNames(len(jitters), func(i int) string { return fmt.Sprintf("jitter=%g", jitters[i]) })
	cells, err := runGrid(ctx, cfg, "E21", names, cfg.Trials,
		func(ctx context.Context, c runner.Coord, seed uint64) (runner.Sample, error) {
			jitter := jitters[c.CellIndex]
			pp, err := sim.Run(sim.Config{
				Graph: g, Seed: seed, MaxRounds: 1 << 19,
				Mode: sim.OneToAll, Source: 0, LatencyJitter: jitter,
			}, func(nv *sim.NodeView) sim.Protocol { return gossip.NewPushPull(nv) },
				sim.StopAllInformed(0))
			if err != nil {
				return runner.Sample{}, err
			}
			dtg, err := sim.Run(sim.Config{
				Graph: g, Seed: seed, MaxRounds: 1 << 19, KnownLatencies: true,
				Mode: sim.AllToAll, LatencyJitter: jitter,
			}, func(nv *sim.NodeView) sim.Protocol { return gossip.NewDTG(nv, 8) },
				sim.StopAllDone())
			if err != nil {
				return runner.Sample{}, err
			}
			return runner.V(map[string]float64{
				"pp":     float64(pp.Rounds),
				"dtg":    float64(dtg.Rounds),
				"dtg_ok": b2f(dtg.Completed),
			}), nil
		})
	if err != nil {
		return nil, fmt.Errorf("E21: %w", err)
	}
	tbl := &Table{
		ID:    "E21",
		Title: "latency jitter: planning with stale information",
		Claim: "push-pull is oblivious to jitter; latency-planned schedules degrade gracefully (footnote 2)",
		Headers: []string{
			"jitter", "push-pull rounds", "dtg rounds", "dtg complete",
		},
	}
	for i, jitter := range jitters {
		c := &cells[i]
		tbl.AddRow(jitter, c.Mean("pp"), c.Mean("dtg"), c.Min("dtg_ok") == 1)
	}
	tbl.AddNote("nominal latencies stay within the ℓ filter under these jitter levels, so DTG still completes; its waits simply stretch with the realized round trips")
	return tbl, nil
}

// expE22FaultTolerant evaluates this repository's extension of the
// paper's future-work direction (Section 7: "development of reliable
// robust fault-tolerant algorithms"): the Superstep primitive with
// timeouts inside the spanner pipeline, under mid-run crashes.
var expE22FaultTolerant = Experiment{
	ID:     "E22",
	Title:  "fault-tolerant pipeline: Superstep+timeout vs plain DTG",
	Source: "Section 7 (future work), extension",
	Run:    runE22,
}

func runE22(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	n := 24
	crashCounts := []int{0, 2, 4}
	names := cellNames(len(crashCounts), func(i int) string { return fmt.Sprintf("crashed=%d", crashCounts[i]) })
	cells, err := runGrid(ctx, cfg, "E22", names, 1,
		func(ctx context.Context, c runner.Coord, seed uint64) (runner.Sample, error) {
			crashes := crashCounts[c.CellIndex]
			crashAt := make([]int, n)
			for u := range crashAt {
				crashAt[u] = -1
			}
			for i := 0; i < crashes; i++ {
				crashAt[1+i] = 5
			}
			g := graphgen.Clique(n, 2)
			plain, err := gossip.SpannerBroadcast(g, gossip.SpannerOptions{
				KnownLatencies: true, Seed: seed, MaxPhaseRounds: 4096, CrashAt: crashAt,
			})
			if err != nil {
				return runner.Sample{}, err
			}
			robust, err := gossip.SpannerBroadcast(g, gossip.SpannerOptions{
				KnownLatencies: true, Seed: seed, MaxPhaseRounds: 4096,
				CrashAt: crashAt, UseSuperstep: true, LBTimeout: 8,
			})
			if err != nil {
				return runner.Sample{}, err
			}
			return runner.V(map[string]float64{
				"plain":     float64(plain.Rounds),
				"plain_ok":  b2f(plain.Completed),
				"robust":    float64(robust.Rounds),
				"robust_ok": b2f(robust.Completed),
			}), nil
		})
	if err != nil {
		return nil, fmt.Errorf("E22: %w", err)
	}
	tbl := &Table{
		ID:    "E22",
		Title: "fault-tolerant pipeline: Superstep+timeout vs plain DTG",
		Claim: "timeout-based abandonment restores progress under crashes (Section 7 future work)",
		Headers: []string{
			"crashed@5", "dtg rounds", "dtg complete", "ss+timeout rounds", "ss complete",
		},
	}
	for i, crashes := range crashCounts {
		c := &cells[i]
		tbl.AddRow(crashes, int(c.Mean("plain")), c.Min("plain_ok") == 1,
			int(c.Mean("robust")), c.Min("robust_ok") == 1)
	}
	tbl.AddNote("the plain pipeline leans on RR redundancy to finish despite stalled DTG phases; the timeout variant keeps the local-broadcast phases themselves healthy")
	return tbl, nil
}
