package experiments

import (
	"context"
	"fmt"
	"reflect"

	"gossip/internal/curve"
	"gossip/internal/estimate"
	"gossip/internal/gossip"
	"gossip/internal/graphgen"
	"gossip/internal/runner"
)

// expE29Estimate closes the loop on the service's inverse problem: a
// ground-truth fault configuration simulates an observed informed-count
// curve, and the coarse-to-fine ICC fit (the machinery behind POST
// /v1/estimates) must hand the configuration back. Three graph families
// cross three fault regimes; every truth sits on the coarse lattice, so
// its cold evaluation reproduces the observed curve bit-for-bit, exact
// recovery is the expected outcome, and "recovered" is a sharp 0/1
// metric rather than a tolerance band. Each trial also re-runs the fit
// with an 8-way concurrent batch evaluator and requires the result to
// be bit-identical to the serial fit — the determinism contract
// extended through the estimator.
var expE29Estimate = Experiment{
	ID:     "E29",
	Title:  "inverse estimation: ICC-space fit recovers planted loss and churn",
	Source: "engineering extension (inverse problem per Lega's ICC parameter estimation)",
	Run:    runE29,
}

// e29Regime is one planted ground truth.
type e29Regime struct {
	name  string
	truth estimate.Candidate
}

func runE29(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	families := []graphgen.Spec{
		{Family: "dumbbell", N: 12, Latency: 2},
		{Family: "grid", N: 25, Latency: 1},
		{Family: "er", N: 24, Latency: 1, P: 0.25},
	}
	// The planted faults are the strong ends of their axes: weaker ones
	// (loss 0.15, churn 2) are occasionally invisible in InformedAt at
	// these scales — the fault perturbs no first-delivery — which makes
	// the inverse problem genuinely unidentifiable for that seed, not
	// merely hard.
	regimes := []e29Regime{
		{"benign", estimate.Candidate{Scale: 1}},
		{"lossy", estimate.Candidate{Loss: 0.3, Scale: 1}},
		{"churny", estimate.Candidate{Churn: 4, Scale: 1}},
	}
	if cfg.Quick {
		families = families[:2]
	}
	// The lattice contains every planted truth: loss 0/0.15/0.3, churn
	// 0/4, scale 1. The churn axis is deliberately two-step: at these
	// scales churn 2 and churn 4 occasionally produce ICC-identical
	// curves, and a coarse lattice with both would sometimes return the
	// equally-consistent smaller intensity. Refinement still explores
	// intermediate intensities, but the strict-improvement cold verify
	// cannot displace the coarse truth on a tie.
	grid := estimate.Grid{LossMax: 0.3, LossSteps: 3, ChurnMax: 4, ChurnSteps: 2, Scales: []int{1}}

	names := cellNames(len(families)*len(regimes), func(i int) string {
		return fmt.Sprintf("%s/%s", families[i/len(regimes)].Family, regimes[i%len(regimes)].name)
	})
	cells, err := runGrid(ctx, cfg, "E29", names, cfg.Trials,
		func(ctx context.Context, c runner.Coord, seed uint64) (runner.Sample, error) {
			spec := families[c.CellIndex/len(regimes)]
			regime := regimes[c.CellIndex%len(regimes)]
			spec.Seed = seed
			g, err := graphgen.Build(spec)
			if err != nil {
				return runner.Sample{}, err
			}
			n := g.N()
			base := gossip.DriverOptions{Source: 0, Seed: seed, MaxRounds: 1 << 14}

			evalCold := func(cand estimate.Candidate) (curve.Curve, error) {
				opts := base
				opts.Adversity = cand.Spec(n, base.Source)
				res, err := gossip.Dispatch("push-pull", g, opts)
				if err != nil {
					return nil, err
				}
				return curve.FromInformedAt(res.InformedAt), nil
			}
			// Warm refinement scoring: one prefix forked at the churn
			// leave round, resumed per candidate — the same continuation
			// the service uses.
			w, err := gossip.Fork("push-pull", g, base, estimate.ChurnLeave)
			if err != nil {
				return runner.Sample{}, err
			}
			evalWarm := func(cand estimate.Candidate) (curve.Curve, error) {
				opts := base
				opts.Adversity = cand.Spec(n, base.Source)
				res, err := w.Resume(opts)
				if err != nil {
					return nil, err
				}
				return curve.FromInformedAt(res.InformedAt), nil
			}

			observed, err := evalCold(regime.truth)
			if err != nil {
				return runner.Sample{}, err
			}
			fit := func(batch func(string, []estimate.Candidate, func(estimate.Candidate) (curve.Curve, error)) ([]estimate.BatchOut, error)) (*estimate.Result, error) {
				return estimate.Fit(estimate.Config{
					Observed: observed,
					Grid:     grid,
					Refine:   1,
					EvalCold: evalCold,
					EvalWarm: evalWarm,
					Batch:    batch,
				})
			}
			serial, err := fit(nil)
			if err != nil {
				return runner.Sample{}, err
			}
			concurrent, err := fit(concurrentBatch(8))
			if err != nil {
				return runner.Sample{}, err
			}
			return runner.V(map[string]float64{
				"loss":      serial.Best.Loss,
				"churn":     float64(serial.Best.Churn),
				"score":     serial.Score,
				"evals":     float64(serial.Evaluated),
				"recovered": b2f(serial.Best == regime.truth && serial.Score == 0),
				"agree":     b2f(reflect.DeepEqual(serial, concurrent)),
			}), nil
		})
	if err != nil {
		return nil, fmt.Errorf("E29: %w", err)
	}
	tbl := &Table{
		ID:    "E29",
		Title: "inverse parameter estimation (coarse-to-fine ICC fit vs planted ground truth)",
		Claim: "for truths on the coarse lattice the fit recovers the planted loss and churn exactly (ICC residual 0) on every family and regime, bit-identically at any batch concurrency",
		Headers: []string{
			"cell", "fitted loss", "fitted churn", "residual", "evals", "exact recovery", "serial ≡ 8-way",
		},
	}
	for i, name := range names {
		cell := &cells[i]
		tbl.AddRow(name, cell.Mean("loss"), cell.Mean("churn"), cell.Mean("score"),
			cell.Mean("evals"), cell.Min("recovered") == 1, cell.Min("agree") == 1)
	}
	tbl.AddNote("lattice: loss {0, 0.15, 0.3} × churn {0, 4} × scale {1}, one warm refinement pass, cold-verified winner")
	tbl.AddNote("exact recovery holds because an on-lattice truth reproduces its own observation bit-for-bit (residual 0) and score ties break benign-first")
	return tbl, nil
}

// concurrentBatch evaluates a fit stage with up to width goroutines,
// outcomes in index order — the experiment's stand-in for the service's
// pool fan-out.
func concurrentBatch(width int) func(string, []estimate.Candidate, func(estimate.Candidate) (curve.Curve, error)) ([]estimate.BatchOut, error) {
	return func(_ string, cands []estimate.Candidate, eval func(estimate.Candidate) (curve.Curve, error)) ([]estimate.BatchOut, error) {
		outs := make([]estimate.BatchOut, len(cands))
		sem := make(chan struct{}, width)
		done := make(chan int)
		for i := range cands {
			go func(i int) {
				sem <- struct{}{}
				cv, err := eval(cands[i])
				outs[i] = estimate.BatchOut{Curve: cv, Err: err}
				<-sem
				done <- i
			}(i)
		}
		for range cands {
			<-done
		}
		return outs, nil
	}
}
