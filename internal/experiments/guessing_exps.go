package experiments

import (
	"context"
	"fmt"
	"math"

	"gossip/internal/graphgen"
	"gossip/internal/guessing"
	"gossip/internal/runner"
	"gossip/internal/stats"
)

// expE2GuessSingleton measures the Lemma 7 shape: with a singleton
// target, the number of rounds grows linearly in m even for the adaptive
// fresh-pair strategy.
var expE2GuessSingleton = Experiment{
	ID:     "E2",
	Title:  "guessing game, singleton target",
	Source: "Lemma 7",
	Run:    runE2,
}

func runE2(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	ms := []int{8, 16, 32, 64, 128}
	if cfg.Quick {
		ms = []int{8, 16, 32}
	}
	names := cellNames(len(ms), func(i int) string { return fmt.Sprintf("m=%d", ms[i]) })
	cells, err := runGrid(ctx, cfg, "E2", names, cfg.Trials*4,
		func(ctx context.Context, c runner.Coord, seed uint64) (runner.Sample, error) {
			m := ms[c.CellIndex]
			rng := graphgen.NewRand(seed)
			game, err := guessing.NewGame(m, guessing.SingletonTarget(m, rng))
			if err != nil {
				return runner.Sample{}, err
			}
			r, solved, err := guessing.Play(game, guessing.NewFreshStrategy(m, rng), 10*m)
			if err != nil {
				return runner.Sample{}, err
			}
			if !solved {
				r = 10 * m
			}
			return runner.V(map[string]float64{"rounds": float64(r)}), nil
		})
	if err != nil {
		return nil, fmt.Errorf("E2: %w", err)
	}
	tbl := &Table{
		ID:      "E2",
		Title:   "guessing game, singleton target",
		Claim:   "any ε-error protocol needs Ω(m) rounds (Lemma 7)",
		Headers: []string{"m", "mean rounds", "rounds/m", "worst-case m/2"},
	}
	var xs, ys []float64
	for i, m := range ms {
		mean := cells[i].Mean("rounds")
		tbl.AddRow(m, mean, mean/float64(m), float64(m)/2)
		xs = append(xs, float64(m))
		ys = append(ys, mean)
	}
	if exp, _, r2, err := stats.PowerLawFit(xs, ys); err == nil {
		tbl.AddNote("fitted rounds ~ m^%.2f (R²=%.3f); Lemma 7 predicts exponent 1", exp, r2)
	}
	return tbl, nil
}

// expE3GuessRandom measures the Lemma 8 gap: for Random_p targets the
// adaptive fresh strategy needs Θ(1/p) rounds while the random
// (push-pull-like) strategy needs Θ(log m / p).
var expE3GuessRandom = Experiment{
	ID:     "E3",
	Title:  "guessing game, Random_p target",
	Source: "Lemma 8 (a) and (b)",
	Run:    runE3,
}

func runE3(ctx context.Context, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	m := 128
	if cfg.Quick {
		m = 48
	}
	cs := []float64{4, 8, 16, 32}
	names := cellNames(len(cs), func(i int) string { return fmt.Sprintf("p=%g/m", cs[i]) })
	cells, err := runGrid(ctx, cfg, "E3", names, cfg.Trials*2,
		func(ctx context.Context, c runner.Coord, seed uint64) (runner.Sample, error) {
			p := cs[c.CellIndex] / float64(m)
			rng := graphgen.NewRand(seed)
			target := guessing.RandomTarget(m, p, rng)
			gameF, err := guessing.NewGame(m, clonePairs(target))
			if err != nil {
				return runner.Sample{}, err
			}
			rF, okF, err := guessing.Play(gameF, guessing.NewFreshStrategy(m, rng), 500*m)
			if err != nil {
				return runner.Sample{}, err
			}
			gameR, err := guessing.NewGame(m, clonePairs(target))
			if err != nil {
				return runner.Sample{}, err
			}
			rR, okR, err := guessing.Play(gameR, guessing.NewRandomStrategy(m, rng), 500*m)
			if err != nil {
				return runner.Sample{}, err
			}
			s := runner.Sample{Values: map[string]float64{}}
			if okF {
				s.Values["fresh"] = float64(rF)
			}
			if okR {
				s.Values["random"] = float64(rR)
			}
			return s, nil
		})
	if err != nil {
		return nil, fmt.Errorf("E3: %w", err)
	}
	tbl := &Table{
		ID:    "E3",
		Title: "guessing game, Random_p target",
		Claim: "general protocols need Ω(1/p); random guessing needs Ω(log m/p) (Lemma 8)",
		Headers: []string{
			"m", "p", "fresh rounds", "1/p", "fresh·p", "random rounds", "ln(m)/p", "random/fresh",
		},
	}
	var invP, freshMeans, randMeans []float64
	for i, c := range cs {
		p := c / float64(m)
		fm := cells[i].Mean("fresh")
		rm := cells[i].Mean("random")
		tbl.AddRow(m, p, fm, 1/p, fm*p, rm, math.Log(float64(m))/p, rm/fm)
		invP = append(invP, 1/p)
		freshMeans = append(freshMeans, fm)
		randMeans = append(randMeans, rm)
	}
	if exp, _, r2, err := stats.PowerLawFit(invP, freshMeans); err == nil {
		tbl.AddNote("fresh rounds ~ (1/p)^%.2f (R²=%.3f); Lemma 8a predicts exponent 1", exp, r2)
	}
	if exp, _, r2, err := stats.PowerLawFit(invP, randMeans); err == nil {
		tbl.AddNote("random rounds ~ (1/p)^%.2f (R²=%.3f); Lemma 8b predicts exponent 1 with a log m factor", exp, r2)
	}
	return tbl, nil
}

func clonePairs(t map[guessing.Pair]bool) map[guessing.Pair]bool {
	out := make(map[guessing.Pair]bool, len(t))
	for k, v := range t {
		out[k] = v
	}
	return out
}
