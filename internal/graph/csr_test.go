package graph_test

import (
	"sort"
	"testing"

	"gossip/internal/graph"
	"gossip/internal/graphgen"
)

// familyGraphs builds one representative random graph from every
// graphgen family (the legacy adjacency-map generators).
func familyGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	rng := graphgen.NewRand(99)
	out := map[string]*graph.Graph{
		"clique":   graphgen.Clique(17, 3),
		"star":     graphgen.Star(23, 2),
		"path":     graphgen.Path(19, 4),
		"cycle":    graphgen.Cycle(21, 1),
		"grid":     graphgen.Grid(5, 7, 2),
		"tree":     graphgen.BinaryTree(25, 3),
		"dumbbell": graphgen.Dumbbell(9, 40),
	}
	er, err := graphgen.ErdosRenyi(24, 0.3, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	graphgen.AssignRandomLatencies(er, 1, 9, rng)
	out["er"] = er
	reg, err := graphgen.RandomRegular(20, 4, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	out["regular"] = reg
	hyper, err := graphgen.Hypercube(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	out["hypercube"] = hyper
	torus, err := graphgen.Torus(4, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	out["torus"] = torus
	ws, err := graphgen.WattsStrogatz(30, 2, 0.2, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	out["watts-strogatz"] = ws
	cl, err := graphgen.ChungLu(26, 2.5, 60, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	out["chung-lu"] = cl
	bc, err := graphgen.BarbellChain(3, 5, 12)
	if err != nil {
		t.Fatal(err)
	}
	out["barbell-chain"] = bc
	mb, err := graphgen.MultiBridgeDumbbell(6, 3, 20)
	if err != nil {
		t.Fatal(err)
	}
	out["multibridge"] = mb
	ring, err := graphgen.NewRingNetwork(4, 6, 16, rng)
	if err != nil {
		t.Fatal(err)
	}
	out["ring-network"] = ring.Graph
	gadget, err := graphgen.NewTheorem10Network(8, 1, 32, 0.4, rng)
	if err != nil {
		t.Fatal(err)
	}
	out["theorem10"] = gadget.Graph
	return out
}

type nbrPair struct{ id, lat int }

func sortedNeighbors(pairs []nbrPair) []nbrPair {
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].id != pairs[j].id {
			return pairs[i].id < pairs[j].id
		}
		return pairs[i].lat < pairs[j].lat
	})
	return pairs
}

// TestCSRMatchesLegacyAdjacency is the representation-equivalence
// property: on a random graph from every graphgen family, the CSR
// neighbor sets (with latencies) must equal the legacy adjacency lists —
// and the conversion must preserve adjacency ORDER, which is what keeps
// seeded protocol runs identical across representations.
func TestCSRMatchesLegacyAdjacency(t *testing.T) {
	for name, g := range familyGraphs(t) {
		t.Run(name, func(t *testing.T) {
			c := g.CSR()
			if err := c.Validate(); err != nil {
				t.Fatalf("CSR invalid: %v", err)
			}
			if c.N() != g.N() || c.M() != g.M() {
				t.Fatalf("size mismatch: csr %d/%d vs graph %d/%d", c.N(), c.M(), g.N(), g.M())
			}
			if c.MaxDegree() != g.MaxDegree() || c.MaxLatency() != g.MaxLatency() {
				t.Fatalf("Δ/ℓmax mismatch: csr %d/%d vs graph %d/%d",
					c.MaxDegree(), c.MaxLatency(), g.MaxDegree(), g.MaxLatency())
			}
			for u := 0; u < g.N(); u++ {
				legacy := g.Neighbors(u)
				ids := c.NeighborIDs(u)
				lats := c.Latencies(u)
				if len(ids) != len(legacy) {
					t.Fatalf("node %d: degree %d vs %d", u, len(ids), len(legacy))
				}
				for i := range legacy {
					// Order-preserving: position i must match exactly.
					if int(ids[i]) != legacy[i].ID || int(lats[i]) != legacy[i].Latency {
						t.Fatalf("node %d slot %d: csr (%d,%d) vs legacy (%d,%d)",
							u, i, ids[i], lats[i], legacy[i].ID, legacy[i].Latency)
					}
					// Mate involution: the peer's slot points back here.
					pi := c.PeerIndex(u, i)
					v := int(ids[i])
					if int(c.NeighborIDs(v)[pi]) != u {
						t.Fatalf("node %d slot %d: PeerIndex %d at %d does not point back", u, i, pi, v)
					}
				}
			}
			// Round-trip through the legacy representation preserves the
			// edge set.
			back := c.Graph()
			if back.N() != g.N() || back.M() != g.M() {
				t.Fatalf("round-trip size mismatch")
			}
			for u := 0; u < g.N(); u++ {
				a := make([]nbrPair, 0, g.Degree(u))
				for _, nb := range g.Neighbors(u) {
					a = append(a, nbrPair{nb.ID, nb.Latency})
				}
				b := make([]nbrPair, 0, back.Degree(u))
				for _, nb := range back.Neighbors(u) {
					b = append(b, nbrPair{nb.ID, nb.Latency})
				}
				sortedNeighbors(a)
				sortedNeighbors(b)
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("node %d: round-trip neighbor sets differ", u)
					}
				}
			}
		})
	}
}

// TestCSRBuilderMatchesGraph: streaming the same edge list through the
// builder and through the legacy graph yields the same structure.
func TestCSRBuilderMatchesGraph(t *testing.T) {
	rng := graphgen.NewRand(7)
	g, err := graphgen.ErdosRenyi(30, 0.2, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	graphgen.AssignRandomLatencies(g, 1, 12, rng)
	b := graph.NewCSRBuilder(g.N())
	g.ForEachEdge(func(e graph.Edge) { b.MustAddEdge(e.U, e.V, e.Latency) })
	c, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	want := g.CSR()
	if c.M() != want.M() || c.N() != want.N() {
		t.Fatalf("builder CSR %v vs conversion %v", c, want)
	}
	for u := 0; u < g.N(); u++ {
		a := make([]nbrPair, 0)
		for i, id := range c.NeighborIDs(u) {
			a = append(a, nbrPair{int(id), int(c.Latencies(u)[i])})
		}
		w := make([]nbrPair, 0)
		for i, id := range want.NeighborIDs(u) {
			w = append(w, nbrPair{int(id), int(want.Latencies(u)[i])})
		}
		sortedNeighbors(a)
		sortedNeighbors(w)
		for i := range a {
			if a[i] != w[i] {
				t.Fatalf("node %d: builder neighbor sets differ from conversion", u)
			}
		}
	}
}

// TestCSRBuilderRejects pins the builder's validation surface.
func TestCSRBuilderRejects(t *testing.T) {
	b := graph.NewCSRBuilder(4)
	if err := b.AddEdge(0, 0, 1); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := b.AddEdge(0, 9, 1); err == nil {
		t.Fatal("out-of-range endpoint accepted")
	}
	if err := b.AddEdge(0, 1, 0); err == nil {
		t.Fatal("non-positive latency accepted")
	}
	b.MustAddEdge(0, 1, 1)
	b.MustAddEdge(1, 0, 2) // duplicate in reverse orientation
	if _, err := b.Finalize(); err == nil {
		t.Fatal("duplicate edge accepted at Finalize")
	}
}

// FuzzCSRBuilder decodes the fuzz input as an edge stream and checks
// that every successfully finalized CSR validates and agrees with the
// legacy graph built from the same stream (or that both paths reject).
func FuzzCSRBuilder(f *testing.F) {
	f.Add([]byte{4, 0, 1, 1, 1, 2, 1, 2, 3, 1, 3, 0, 1})
	f.Add([]byte{3, 0, 1, 5, 1, 2, 200})
	f.Add([]byte{2, 0, 1, 1, 0, 1, 1}) // duplicate
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 1 {
			return
		}
		n := int(data[0])%32 + 2
		b := graph.NewCSRBuilder(n)
		g := graph.New(n)
		legacyErr := false
		for i := 1; i+2 < len(data); i += 3 {
			u, v, lat := int(data[i])%n, int(data[i+1])%n, int(data[i+2])+1
			errB := b.AddEdge(u, v, lat)
			errG := g.AddEdge(u, v, lat)
			if (errB == nil) != (errG == nil) {
				// The builder defers duplicate detection to Finalize; all
				// other validations must agree immediately.
				if errG != nil && g.HasEdge(u, v) && errB == nil {
					legacyErr = true
					continue
				}
				t.Fatalf("add (%d,%d,%d): builder err %v, graph err %v", u, v, lat, errB, errG)
			}
		}
		c, err := b.Finalize()
		if legacyErr {
			if err == nil {
				t.Fatal("builder accepted a duplicate the legacy graph rejected")
			}
			return
		}
		if err != nil {
			t.Fatalf("finalize failed on a clean stream: %v", err)
		}
		if c.M() != g.M() {
			t.Fatalf("edge count %d vs legacy %d", c.M(), g.M())
		}
		for u := 0; u < n; u++ {
			if c.Degree(u) != g.Degree(u) {
				t.Fatalf("node %d: degree %d vs legacy %d", u, c.Degree(u), g.Degree(u))
			}
			for i, id := range c.NeighborIDs(u) {
				lat, ok := g.Latency(u, int(id))
				if !ok || lat != int(c.Latencies(u)[i]) {
					t.Fatalf("node %d: CSR edge (%d,%d,%d) missing from legacy graph", u, u, id, c.Latencies(u)[i])
				}
				if int(c.NeighborIDs(int(id))[c.PeerIndex(u, i)]) != u {
					t.Fatalf("mate involution broken at (%d,%d)", u, id)
				}
			}
		}
	})
}
