package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	g := New(5)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 10)
	g.MustAddEdge(3, 4, 7)
	g.MustAddEdge(0, 4, 3)
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != g.N() || back.M() != g.M() {
		t.Fatalf("round trip lost structure: n=%d m=%d", back.N(), back.M())
	}
	for _, e := range g.Edges() {
		l, ok := back.Latency(e.U, e.V)
		if !ok || l != e.Latency {
			t.Fatalf("edge (%d,%d) lost or changed: %d,%v", e.U, e.V, l, ok)
		}
	}
}

func TestSaveDeterministic(t *testing.T) {
	g := New(4)
	g.MustAddEdge(2, 3, 5)
	g.MustAddEdge(0, 1, 1)
	var a, b bytes.Buffer
	if err := g.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := g.Save(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("Save output nondeterministic")
	}
	if !strings.HasPrefix(a.String(), "n 4\ne 0 1 1\n") {
		t.Fatalf("unexpected format:\n%s", a.String())
	}
}

func TestLoadCommentsAndBlank(t *testing.T) {
	in := "# header\n\nn 3\n# edges\ne 0 1 2\n e 1 2 4 \n"
	g, err := Load(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("m = %d", g.M())
	}
}

func TestLoadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"edge before n":  "e 0 1 2\n",
		"duplicate n":    "n 2\nn 3\n",
		"bad n":          "n zero\n",
		"negative n":     "n -4\n",
		"short e":        "n 2\ne 0 1\n",
		"non-integer":    "n 2\ne 0 one 2\n",
		"unknown":        "x 1\n",
		"bad edge":       "n 2\ne 0 0 1\n",
		"duplicate edge": "n 2\ne 0 1 1\ne 1 0 2\n",
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Load(strings.NewReader(in)); err == nil {
				t.Fatalf("Load(%q) succeeded", in)
			}
		})
	}
}

// Property: random graphs survive a save/load round trip bit-exactly.
func TestQuickSaveLoad(t *testing.T) {
	f := func(seed int64) bool {
		n := int(seed%10) + 2
		if n < 2 {
			n = 2
		}
		g := New(n)
		// Deterministic pseudo-random edges from the seed.
		s := uint64(seed)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				s = s*6364136223846793005 + 1442695040888963407
				if s%3 == 0 {
					g.MustAddEdge(u, v, int(s%50)+1)
				}
			}
		}
		var buf bytes.Buffer
		if err := g.Save(&buf); err != nil {
			return false
		}
		back, err := Load(&buf)
		if err != nil {
			return false
		}
		if back.N() != g.N() || back.M() != g.M() {
			return false
		}
		for _, e := range g.Edges() {
			if l, ok := back.Latency(e.U, e.V); !ok || l != e.Latency {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveEdge(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 2)
	g.MustAddEdge(2, 3, 3)
	g.MustAddEdge(0, 3, 4)
	if err := g.RemoveEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if g.M() != 3 || g.HasEdge(1, 2) {
		t.Fatalf("edge not removed: m=%d", g.M())
	}
	// Index remapping must keep the remaining edges intact.
	for _, e := range []struct{ u, v, lat int }{{0, 1, 1}, {2, 3, 3}, {0, 3, 4}} {
		if l, ok := g.Latency(e.u, e.v); !ok || l != e.lat {
			t.Fatalf("edge (%d,%d) broken after removal: %d,%v", e.u, e.v, l, ok)
		}
	}
	if g.Degree(1) != 1 || g.Degree(2) != 1 {
		t.Fatalf("degrees wrong after removal: %d, %d", g.Degree(1), g.Degree(2))
	}
	if err := g.RemoveEdge(1, 2); err == nil {
		t.Fatal("removing a missing edge should error")
	}
	// Remove the swapped-in last edge to exercise index remap again.
	if err := g.RemoveEdge(0, 3); err != nil {
		t.Fatal(err)
	}
	if l, _ := g.Latency(2, 3); l != 3 {
		t.Fatal("remap corrupted an edge")
	}
}

func TestRemoveEdgeThenAdd(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 2)
	if err := g.RemoveEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(0, 1, 9); err != nil {
		t.Fatal(err)
	}
	if l, _ := g.Latency(0, 1); l != 9 {
		t.Fatal("re-added edge has wrong latency")
	}
	if g.M() != 2 {
		t.Fatalf("m = %d", g.M())
	}
}
