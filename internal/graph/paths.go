package graph

import (
	"container/heap"
	"math"
)

// Infinity is the distance reported for unreachable nodes.
const Infinity = math.MaxInt64 / 4

// distItem is a priority-queue entry for Dijkstra.
type distItem struct {
	node NodeID
	dist int64
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Distances returns the weighted shortest-path distance (sum of latencies)
// from src to every node. Unreachable nodes get Infinity.
func (g *Graph) Distances(src NodeID) []int64 {
	dist := make([]int64, g.n)
	for i := range dist {
		dist[i] = Infinity
	}
	dist[src] = 0
	h := &distHeap{{node: src, dist: 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(distItem)
		if it.dist > dist[it.node] {
			continue
		}
		for _, e := range g.adj[it.node] {
			nd := it.dist + int64(e.latency)
			if nd < dist[e.to] {
				dist[e.to] = nd
				heap.Push(h, distItem{node: e.to, dist: nd})
			}
		}
	}
	return dist
}

// HopDistances returns unweighted (hop-count) BFS distances from src.
func (g *Graph) HopDistances(src NodeID) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range g.adj[u] {
			if dist[e.to] < 0 {
				dist[e.to] = dist[u] + 1
				queue = append(queue, e.to)
			}
		}
	}
	return dist
}

// Eccentricity returns the maximum weighted distance from src to any node,
// or Infinity when some node is unreachable.
func (g *Graph) Eccentricity(src NodeID) int64 {
	max := int64(0)
	for _, d := range g.Distances(src) {
		if d > max {
			max = d
		}
	}
	return max
}

// WeightedDiameter returns the exact weighted diameter D: the maximum over
// all pairs of the shortest-path distance. It runs Dijkstra from every
// node (O(n·m·log n)), which is fine at experiment scale.
// Returns Infinity for disconnected graphs.
func (g *Graph) WeightedDiameter() int64 {
	max := int64(0)
	for u := 0; u < g.n; u++ {
		if ecc := g.Eccentricity(u); ecc > max {
			max = ecc
		}
	}
	return max
}

// WeightedDiameterLower returns a diameter lower bound using a double
// sweep (eccentricity of the farthest node from node 0); exact on trees
// and usually tight in practice, at the cost of two Dijkstra runs.
func (g *Graph) WeightedDiameterLower() int64 {
	d0 := g.Distances(0)
	far := NodeID(0)
	for u, d := range d0 {
		if d > d0[far] && d < Infinity {
			far = u
		}
	}
	return g.Eccentricity(far)
}

// HopDiameter returns the exact unweighted diameter (max BFS ecc), or -1
// for disconnected graphs.
func (g *Graph) HopDiameter() int {
	max := 0
	for u := 0; u < g.n; u++ {
		for _, d := range g.HopDistances(u) {
			if d < 0 {
				return -1
			}
			if d > max {
				max = d
			}
		}
	}
	return max
}

// KHopNeighborhood returns all nodes within k hops of src (including src).
func (g *Graph) KHopNeighborhood(src NodeID, k int) []NodeID {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []NodeID{src}
	out := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if dist[u] == k {
			continue
		}
		for _, e := range g.adj[u] {
			if dist[e.to] < 0 {
				dist[e.to] = dist[u] + 1
				queue = append(queue, e.to)
				out = append(out, e.to)
			}
		}
	}
	return out
}
