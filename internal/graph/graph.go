// Package graph implements the weighted undirected graphs of the paper's
// model: connected graphs whose edges carry positive integer latencies.
// It provides the structural queries every other package relies on —
// degrees, volumes, latency-filtered subgraphs G_ℓ, Dijkstra distances,
// and weighted/hop diameters.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node; nodes are always numbered 0..N-1.
type NodeID = int

// Edge is an undirected edge with an integer latency (the paper's edge
// weight). Invariant: U < V and Latency >= 1.
type Edge struct {
	U, V    NodeID
	Latency int
}

// halfEdge is the adjacency-list entry stored at each endpoint.
type halfEdge struct {
	to      NodeID
	latency int
	index   int // index into Graph.edges
}

// Graph is a weighted undirected multigraph-free graph. The zero value is
// unusable; construct with New.
type Graph struct {
	n     int
	adj   [][]halfEdge
	edges []Edge
	// edgeIdx maps the canonical (u,v) pair (u<v) to the edge index so
	// duplicate insertions are rejected and latency lookups are O(1)
	// without scanning adjacency lists.
	edgeIdx map[[2]NodeID]int
}

// New returns an empty graph on n nodes.
func New(n int) *Graph {
	if n <= 0 {
		panic(fmt.Sprintf("graph: non-positive node count %d", n))
	}
	return &Graph{
		n:       n,
		adj:     make([][]halfEdge, n),
		edgeIdx: make(map[[2]NodeID]int),
	}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// AddEdge inserts the undirected edge (u,v) with the given latency.
// It returns an error when the endpoints are invalid, equal, the latency
// is < 1, or the edge already exists.
func (g *Graph) AddEdge(u, v NodeID, latency int) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at node %d", u)
	}
	if latency < 1 {
		return fmt.Errorf("graph: edge (%d,%d) has non-positive latency %d", u, v, latency)
	}
	if u > v {
		u, v = v, u
	}
	key := [2]NodeID{u, v}
	if _, ok := g.edgeIdx[key]; ok {
		return fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
	}
	idx := len(g.edges)
	g.edges = append(g.edges, Edge{U: u, V: v, Latency: latency})
	g.edgeIdx[key] = idx
	g.adj[u] = append(g.adj[u], halfEdge{to: v, latency: latency, index: idx})
	g.adj[v] = append(g.adj[v], halfEdge{to: u, latency: latency, index: idx})
	return nil
}

// MustAddEdge is AddEdge that panics on error; generators use it because
// their edge sets are correct by construction.
func (g *Graph) MustAddEdge(u, v NodeID, latency int) {
	if err := g.AddEdge(u, v, latency); err != nil {
		panic(err)
	}
}

// HasEdge reports whether the undirected edge (u,v) exists.
func (g *Graph) HasEdge(u, v NodeID) bool {
	if u > v {
		u, v = v, u
	}
	_, ok := g.edgeIdx[[2]NodeID{u, v}]
	return ok
}

// Latency returns the latency of edge (u,v) and whether the edge exists.
func (g *Graph) Latency(u, v NodeID) (int, bool) {
	if u > v {
		u, v = v, u
	}
	idx, ok := g.edgeIdx[[2]NodeID{u, v}]
	if !ok {
		return 0, false
	}
	return g.edges[idx].Latency, true
}

// SetLatency changes the latency of an existing edge.
func (g *Graph) SetLatency(u, v NodeID, latency int) error {
	if latency < 1 {
		return fmt.Errorf("graph: non-positive latency %d", latency)
	}
	a, b := u, v
	if a > b {
		a, b = b, a
	}
	idx, ok := g.edgeIdx[[2]NodeID{a, b}]
	if !ok {
		return fmt.Errorf("graph: edge (%d,%d) does not exist", u, v)
	}
	g.edges[idx].Latency = latency
	for _, end := range []NodeID{a, b} {
		for i := range g.adj[end] {
			if g.adj[end][i].index == idx {
				g.adj[end][i].latency = latency
			}
		}
	}
	return nil
}

// RemoveEdge deletes the undirected edge (u,v). The last edge in the edge
// list is swapped into the vacated slot, so edge order is not stable
// across removals.
func (g *Graph) RemoveEdge(u, v NodeID) error {
	a, b := u, v
	if a > b {
		a, b = b, a
	}
	idx, ok := g.edgeIdx[[2]NodeID{a, b}]
	if !ok {
		return fmt.Errorf("graph: cannot remove missing edge (%d,%d)", u, v)
	}
	dropHalf := func(node NodeID) {
		adj := g.adj[node]
		for i := range adj {
			if adj[i].index == idx {
				adj[i] = adj[len(adj)-1]
				g.adj[node] = adj[:len(adj)-1]
				return
			}
		}
	}
	dropHalf(a)
	dropHalf(b)
	delete(g.edgeIdx, [2]NodeID{a, b})
	last := len(g.edges) - 1
	if idx != last {
		moved := g.edges[last]
		g.edges[idx] = moved
		g.edgeIdx[[2]NodeID{moved.U, moved.V}] = idx
		for _, end := range []NodeID{moved.U, moved.V} {
			for i := range g.adj[end] {
				if g.adj[end][i].index == last {
					g.adj[end][i].index = idx
				}
			}
		}
	}
	g.edges = g.edges[:last]
	return nil
}

// Degree returns the number of edges incident to u.
func (g *Graph) Degree(u NodeID) int { return len(g.adj[u]) }

// MaxDegree returns the maximum degree over all nodes.
func (g *Graph) MaxDegree() int {
	max := 0
	for u := 0; u < g.n; u++ {
		if d := len(g.adj[u]); d > max {
			max = d
		}
	}
	return max
}

// Volume returns the sum of degrees of the nodes for which in[id] is true.
func (g *Graph) Volume(in []bool) int {
	vol := 0
	for u := 0; u < g.n; u++ {
		if in[u] {
			vol += len(g.adj[u])
		}
	}
	return vol
}

// Neighbor describes one incident edge from the perspective of a node.
type Neighbor struct {
	ID      NodeID
	Latency int
}

// Neighbors returns u's neighbors with edge latencies, in insertion order.
func (g *Graph) Neighbors(u NodeID) []Neighbor {
	out := make([]Neighbor, len(g.adj[u]))
	for i, h := range g.adj[u] {
		out[i] = Neighbor{ID: h.to, Latency: h.latency}
	}
	return out
}

// NeighborIDs returns just the neighbor IDs of u, in insertion order.
func (g *Graph) NeighborIDs(u NodeID) []NodeID {
	out := make([]NodeID, len(g.adj[u]))
	for i, h := range g.adj[u] {
		out[i] = h.to
	}
	return out
}

// Edges returns a copy of the edge list.
func (g *Graph) Edges() []Edge {
	return append([]Edge(nil), g.edges...)
}

// ForEachEdge calls fn once per undirected edge.
func (g *Graph) ForEachEdge(fn func(e Edge)) {
	for _, e := range g.edges {
		fn(e)
	}
}

// MaxLatency returns the largest edge latency (ℓmax), or 0 for an
// edgeless graph.
func (g *Graph) MaxLatency() int {
	max := 0
	for _, e := range g.edges {
		if e.Latency > max {
			max = e.Latency
		}
	}
	return max
}

// DistinctLatencies returns the sorted set of distinct edge latencies.
func (g *Graph) DistinctLatencies() []int {
	seen := make(map[int]bool)
	for _, e := range g.edges {
		seen[e.Latency] = true
	}
	out := make([]int, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}

// SubgraphMaxLatency returns G_ℓ: the subgraph containing exactly the
// edges of latency <= ℓ (the node set is unchanged).
func (g *Graph) SubgraphMaxLatency(l int) *Graph {
	sub := New(g.n)
	for _, e := range g.edges {
		if e.Latency <= l {
			sub.MustAddEdge(e.U, e.V, e.Latency)
		}
	}
	return sub
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for _, e := range g.edges {
		c.MustAddEdge(e.U, e.V, e.Latency)
	}
	return c
}

// Connected reports whether the graph is connected (ignoring latencies).
func (g *Graph) Connected() bool {
	if g.n == 0 {
		return true
	}
	seen := make([]bool, g.n)
	stack := []NodeID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, h := range g.adj[u] {
			if !seen[h.to] {
				seen[h.to] = true
				count++
				stack = append(stack, h.to)
			}
		}
	}
	return count == g.n
}

// Validate checks the structural invariants a paper-model network must
// satisfy: at least one node, connected, all latencies >= 1.
func (g *Graph) Validate() error {
	if g.n == 0 {
		return fmt.Errorf("graph: empty graph")
	}
	for _, e := range g.edges {
		if e.Latency < 1 {
			return fmt.Errorf("graph: edge (%d,%d) has latency %d < 1", e.U, e.V, e.Latency)
		}
	}
	if !g.Connected() {
		return fmt.Errorf("graph: not connected")
	}
	return nil
}

// String summarizes the graph for debugging.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d Δ=%d ℓmax=%d}", g.n, g.M(), g.MaxDegree(), g.MaxLatency())
}
