package graph

import (
	"testing"
	"testing/quick"
)

func mustTriangle(t *testing.T) *Graph {
	t.Helper()
	g := New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 2)
	g.MustAddEdge(0, 2, 5)
	return g
}

func TestAddEdgeValidation(t *testing.T) {
	g := New(3)
	tests := []struct {
		name    string
		u, v    int
		lat     int
		wantErr bool
	}{
		{"valid", 0, 1, 1, false},
		{"duplicate", 0, 1, 2, true},
		{"duplicate reversed", 1, 0, 2, true},
		{"self loop", 2, 2, 1, true},
		{"zero latency", 1, 2, 0, true},
		{"negative latency", 1, 2, -3, true},
		{"out of range", 0, 3, 1, true},
		{"negative node", -1, 0, 1, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := g.AddEdge(tt.u, tt.v, tt.lat)
			if (err != nil) != tt.wantErr {
				t.Fatalf("AddEdge(%d,%d,%d) err = %v, wantErr %v", tt.u, tt.v, tt.lat, err, tt.wantErr)
			}
		})
	}
}

func TestNewPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0)
}

func TestLatencyLookup(t *testing.T) {
	g := mustTriangle(t)
	if l, ok := g.Latency(2, 0); !ok || l != 5 {
		t.Fatalf("Latency(2,0) = %d,%v want 5,true", l, ok)
	}
	if _, ok := g.Latency(0, 0); ok {
		t.Fatal("Latency of missing edge reported ok")
	}
	if !g.HasEdge(1, 0) || g.HasEdge(0, 0) {
		t.Fatal("HasEdge wrong")
	}
}

func TestSetLatency(t *testing.T) {
	g := mustTriangle(t)
	if err := g.SetLatency(0, 2, 9); err != nil {
		t.Fatal(err)
	}
	if l, _ := g.Latency(0, 2); l != 9 {
		t.Fatalf("latency after SetLatency = %d, want 9", l)
	}
	// Adjacency copies must agree.
	for _, nb := range g.Neighbors(0) {
		if nb.ID == 2 && nb.Latency != 9 {
			t.Fatalf("adjacency latency = %d, want 9", nb.Latency)
		}
	}
	if err := g.SetLatency(0, 1, 0); err == nil {
		t.Fatal("expected error for non-positive latency")
	}
	if err := g.SetLatency(0, 0, 1); err == nil {
		t.Fatal("expected error for missing edge")
	}
}

func TestDegreesAndVolume(t *testing.T) {
	g := mustTriangle(t)
	if g.Degree(0) != 2 || g.MaxDegree() != 2 {
		t.Fatal("degree bookkeeping wrong")
	}
	vol := g.Volume([]bool{true, true, false})
	if vol != 4 {
		t.Fatalf("Volume = %d, want 4", vol)
	}
}

func TestSubgraphMaxLatency(t *testing.T) {
	g := mustTriangle(t)
	sub := g.SubgraphMaxLatency(2)
	if sub.M() != 2 {
		t.Fatalf("G_2 has %d edges, want 2", sub.M())
	}
	if sub.HasEdge(0, 2) {
		t.Fatal("G_2 contains the latency-5 edge")
	}
	if sub.N() != g.N() {
		t.Fatal("G_ℓ changed the node set")
	}
}

func TestDistinctLatenciesAndMax(t *testing.T) {
	g := mustTriangle(t)
	lats := g.DistinctLatencies()
	want := []int{1, 2, 5}
	if len(lats) != 3 {
		t.Fatalf("DistinctLatencies = %v", lats)
	}
	for i := range want {
		if lats[i] != want[i] {
			t.Fatalf("DistinctLatencies = %v, want %v", lats, want)
		}
	}
	if g.MaxLatency() != 5 {
		t.Fatalf("MaxLatency = %d", g.MaxLatency())
	}
}

func TestConnectedAndValidate(t *testing.T) {
	g := mustTriangle(t)
	if !g.Connected() {
		t.Fatal("triangle not connected")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	h := New(4)
	h.MustAddEdge(0, 1, 1)
	if h.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	if err := h.Validate(); err == nil {
		t.Fatal("expected validation error for disconnected graph")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := mustTriangle(t)
	c := g.Clone()
	if err := c.SetLatency(0, 1, 7); err != nil {
		t.Fatal(err)
	}
	if l, _ := g.Latency(0, 1); l != 1 {
		t.Fatal("clone mutation leaked into original")
	}
}

func TestDistances(t *testing.T) {
	// Path 0-1-2-3 with latencies 1,2,3 plus shortcut 0-3 latency 10.
	g := New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 2)
	g.MustAddEdge(2, 3, 3)
	g.MustAddEdge(0, 3, 10)
	d := g.Distances(0)
	want := []int64{0, 1, 3, 6}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("Distances(0) = %v, want %v", d, want)
		}
	}
	if g.WeightedDiameter() != 6 {
		t.Fatalf("WeightedDiameter = %d, want 6", g.WeightedDiameter())
	}
}

func TestDistancesPreferMultiHop(t *testing.T) {
	// Direct slow edge vs fast two-hop path: the paper's motivating case.
	g := New(3)
	g.MustAddEdge(0, 2, 100)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	if d := g.Distances(0); d[2] != 2 {
		t.Fatalf("dist(0,2) = %d, want 2 via the fast path", d[2])
	}
}

func TestHopDistancesAndDiameter(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 5)
	g.MustAddEdge(1, 2, 5)
	g.MustAddEdge(2, 3, 5)
	hd := g.HopDistances(0)
	if hd[3] != 3 {
		t.Fatalf("hop dist = %v", hd)
	}
	if g.HopDiameter() != 3 {
		t.Fatalf("HopDiameter = %d, want 3", g.HopDiameter())
	}
	if g.WeightedDiameter() != 15 {
		t.Fatalf("WeightedDiameter = %d, want 15", g.WeightedDiameter())
	}
}

func TestHopDiameterDisconnected(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 1)
	if g.HopDiameter() != -1 {
		t.Fatal("disconnected HopDiameter should be -1")
	}
}

func TestEccentricityUnreachable(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 1)
	if g.Eccentricity(0) < Infinity {
		t.Fatal("eccentricity with unreachable node should be Infinity")
	}
}

func TestKHopNeighborhood(t *testing.T) {
	g := New(5)
	for v := 1; v < 5; v++ {
		g.MustAddEdge(v-1, v, 1)
	}
	nh := g.KHopNeighborhood(0, 2)
	if len(nh) != 3 {
		t.Fatalf("2-hop neighborhood of path head = %v", nh)
	}
}

func TestWeightedDiameterLowerIsLowerBound(t *testing.T) {
	g := New(6)
	g.MustAddEdge(0, 1, 3)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 4)
	g.MustAddEdge(3, 4, 1)
	g.MustAddEdge(4, 5, 2)
	g.MustAddEdge(0, 5, 1)
	lower := g.WeightedDiameterLower()
	exact := g.WeightedDiameter()
	if lower > exact {
		t.Fatalf("double-sweep %d exceeds exact diameter %d", lower, exact)
	}
}

// Property: on random paths with random latencies, the diameter equals
// the sum of latencies when no shortcut exists.
func TestQuickPathDiameter(t *testing.T) {
	f := func(rawLats []uint8) bool {
		if len(rawLats) == 0 || len(rawLats) > 50 {
			return true
		}
		g := New(len(rawLats) + 1)
		sum := int64(0)
		for i, rl := range rawLats {
			lat := int(rl%30) + 1
			g.MustAddEdge(i, i+1, lat)
			sum += int64(lat)
		}
		return g.WeightedDiameter() == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
