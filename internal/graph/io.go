package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Save serializes the graph as a plain-text edge list:
//
//	# comment lines allowed
//	n <nodes>
//	e <u> <v> <latency>
//
// Edges are written in canonical (u, v) order so output is deterministic.
func (g *Graph) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "n %d\n", g.n); err != nil {
		return err
	}
	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	for _, e := range edges {
		if _, err := fmt.Fprintf(bw, "e %d %d %d\n", e.U, e.V, e.Latency); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load parses a graph in the Save format. Blank lines and lines
// starting with '#' are ignored. The "n" line must precede every "e"
// line.
func Load(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	var g *Graph
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "n":
			if g != nil {
				return nil, fmt.Errorf("graph: line %d: duplicate n line", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: want 'n <nodes>'", lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("graph: line %d: bad node count %q", lineNo, fields[1])
			}
			g = New(n)
		case "e":
			if g == nil {
				return nil, fmt.Errorf("graph: line %d: edge before n line", lineNo)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("graph: line %d: want 'e <u> <v> <latency>'", lineNo)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			lat, err3 := strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("graph: line %d: non-integer field", lineNo)
			}
			if err := g.AddEdge(u, v, lat); err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("graph: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("graph: empty input")
	}
	return g, nil
}
