package graph

import (
	"fmt"
)

// CSR is an immutable compressed-sparse-row view of a latency graph: the
// substrate representation for million-node simulations. Adjacency lives
// in three flat int32 arrays (neighbor ids, latencies, reverse half-edge
// indices) indexed by a per-node offset table, so degree and neighbor
// slicing are O(1) with no per-node allocations and no pointer chasing.
//
// Half-edge h of node u (h in [Offset(u), Offset(u+1))) points at
// neighbor nbr[h] over an edge of latency lat[h]; mate[h] is the index of
// the reverse half-edge, so the adjacency index of u at its neighbor is
// mate[h]-Offset(nbr[h]) — an O(1) answer to the reverse-index query the
// simulator asks on every exchange.
//
// Build one with a CSRBuilder (streaming generators) or Graph.CSR()
// (conversion that preserves the legacy adjacency order, which keeps
// seeded protocol runs bit-identical across representations).
type CSR struct {
	n      int
	offs   []int32 // len n+1
	nbr    []int32 // len 2m
	lat    []int32 // len 2m
	mate   []int32 // len 2m
	maxLat int
}

// N returns the number of nodes.
func (c *CSR) N() int { return c.n }

// M returns the number of undirected edges.
func (c *CSR) M() int { return len(c.nbr) / 2 }

// HalfEdges returns the number of directed half-edges (2·M).
func (c *CSR) HalfEdges() int { return len(c.nbr) }

// Offset returns the index of node u's first half-edge.
func (c *CSR) Offset(u int) int32 { return c.offs[u] }

// Degree returns the number of edges incident to u.
func (c *CSR) Degree(u int) int { return int(c.offs[u+1] - c.offs[u]) }

// NeighborIDs returns u's neighbors as a read-only view into the CSR
// arrays, in adjacency order.
func (c *CSR) NeighborIDs(u int) []int32 { return c.nbr[c.offs[u]:c.offs[u+1]] }

// Latencies returns the latencies of u's incident edges as a read-only
// view parallel to NeighborIDs.
func (c *CSR) Latencies(u int) []int32 { return c.lat[c.offs[u]:c.offs[u+1]] }

// PeerIndex returns the adjacency index of u in the list of its i-th
// neighbor — the reverse-index lookup, O(1) via the mate table.
func (c *CSR) PeerIndex(u, i int) int {
	h := c.offs[u] + int32(i)
	return int(c.mate[h] - c.offs[c.nbr[h]])
}

// HalfIndex returns the flat half-edge index of u's i-th adjacency slot,
// usable as a key into per-half-edge side tables.
func (c *CSR) HalfIndex(u, i int) int { return int(c.offs[u]) + i }

// MaxDegree returns the maximum degree over all nodes.
func (c *CSR) MaxDegree() int {
	max := 0
	for u := 0; u < c.n; u++ {
		if d := c.Degree(u); d > max {
			max = d
		}
	}
	return max
}

// MaxLatency returns the largest edge latency (0 for an edgeless graph).
func (c *CSR) MaxLatency() int { return c.maxLat }

// ForEachEdge calls fn once per undirected edge (u < v by half-edge
// canonicalization: the half with the smaller flat index reports).
func (c *CSR) ForEachEdge(fn func(u, v, latency int)) {
	for u := 0; u < c.n; u++ {
		for h := c.offs[u]; h < c.offs[u+1]; h++ {
			if c.mate[h] > h {
				fn(u, int(c.nbr[h]), int(c.lat[h]))
			}
		}
	}
}

// Connected reports whether the graph is connected (ignoring latencies).
func (c *CSR) Connected() bool {
	if c.n == 0 {
		return true
	}
	seen := make([]bool, c.n)
	stack := make([]int32, 0, 1024)
	stack = append(stack, 0)
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range c.NeighborIDs(int(u)) {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == c.n
}

// Validate checks the structural invariants of a paper-model network in
// CSR form: at least one node, connected, positive latencies, and a
// consistent mate involution (mate[mate[h]] == h with matching
// endpoints and latencies).
func (c *CSR) Validate() error {
	if c.n == 0 {
		return fmt.Errorf("graph: empty CSR")
	}
	if len(c.offs) != c.n+1 || int(c.offs[c.n]) != len(c.nbr) ||
		len(c.lat) != len(c.nbr) || len(c.mate) != len(c.nbr) {
		return fmt.Errorf("graph: inconsistent CSR array lengths")
	}
	for u := 0; u < c.n; u++ {
		for h := c.offs[u]; h < c.offs[u+1]; h++ {
			v := c.nbr[h]
			if v < 0 || int(v) >= c.n {
				return fmt.Errorf("graph: CSR neighbor %d out of range", v)
			}
			if int(v) == u {
				return fmt.Errorf("graph: CSR self-loop at node %d", u)
			}
			if c.lat[h] < 1 {
				return fmt.Errorf("graph: CSR edge (%d,%d) has latency %d < 1", u, v, c.lat[h])
			}
			m := c.mate[h]
			if m < 0 || int(m) >= len(c.nbr) || c.mate[m] != h {
				return fmt.Errorf("graph: CSR mate table broken at half-edge %d", h)
			}
			if int(c.nbr[m]) != u || c.lat[m] != c.lat[h] ||
				m < c.offs[v] || m >= c.offs[v+1] {
				return fmt.Errorf("graph: CSR mate of (%d,%d) does not point back", u, v)
			}
		}
	}
	if !c.Connected() {
		return fmt.Errorf("graph: not connected")
	}
	return nil
}

// Graph materializes the CSR as a legacy adjacency-map graph (property
// tests and tooling interop; the result's adjacency order follows edge
// emission order, not necessarily the CSR order).
func (c *CSR) Graph() *Graph {
	g := New(c.n)
	c.ForEachEdge(func(u, v, latency int) { g.MustAddEdge(u, v, latency) })
	return g
}

// String summarizes the CSR for debugging.
func (c *CSR) String() string {
	return fmt.Sprintf("csr{n=%d m=%d Δ=%d ℓmax=%d}", c.n, c.M(), c.MaxDegree(), c.maxLat)
}

// CSR converts g to compressed sparse row form, preserving g's adjacency
// order exactly: protocols that index neighbors by adjacency position
// (every registered driver) behave bit-identically on either
// representation under the same seed.
func (g *Graph) CSR() *CSR {
	n := g.n
	c := &CSR{n: n, offs: make([]int32, n+1)}
	for u := 0; u < n; u++ {
		c.offs[u+1] = c.offs[u] + int32(len(g.adj[u]))
	}
	total := int(c.offs[n])
	c.nbr = make([]int32, total)
	c.lat = make([]int32, total)
	c.mate = make([]int32, total)
	// epos[e] is the first-seen half-edge position of edge index e, so the
	// second half can link mates without any map.
	epos := make([]int32, len(g.edges))
	for i := range epos {
		epos[i] = -1
	}
	for u := 0; u < n; u++ {
		for i, h := range g.adj[u] {
			p := c.offs[u] + int32(i)
			c.nbr[p] = int32(h.to)
			c.lat[p] = int32(h.latency)
			if h.latency > c.maxLat {
				c.maxLat = h.latency
			}
			if q := epos[h.index]; q >= 0 {
				c.mate[p] = q
				c.mate[q] = p
			} else {
				epos[h.index] = p
			}
		}
	}
	return c
}

// CSRBuilder accumulates a streamed undirected edge list and finalizes
// it into a CSR in two passes (degree count, then placement) — flat
// arrays only, no intermediate adjacency maps, which is what makes
// million-node graph generation feasible.
type CSRBuilder struct {
	n    int
	us   []int32
	vs   []int32
	lats []int32
}

// NewCSRBuilder returns a builder for a graph on n nodes.
func NewCSRBuilder(n int) *CSRBuilder {
	if n <= 0 {
		panic(fmt.Sprintf("graph: non-positive node count %d", n))
	}
	return &CSRBuilder{n: n}
}

// N returns the node count the builder was created with.
func (b *CSRBuilder) N() int { return b.n }

// AddEdge appends the undirected edge (u,v). Endpoint range, self-loops
// and latency positivity are checked here; duplicate edges are detected
// at Finalize (a streaming builder has no per-pair index to consult).
func (b *CSRBuilder) AddEdge(u, v, latency int) error {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at node %d", u)
	}
	if latency < 1 {
		return fmt.Errorf("graph: edge (%d,%d) has non-positive latency %d", u, v, latency)
	}
	b.us = append(b.us, int32(u))
	b.vs = append(b.vs, int32(v))
	b.lats = append(b.lats, int32(latency))
	return nil
}

// MustAddEdge is AddEdge that panics on error; generators use it because
// their edge sets are correct by construction.
func (b *CSRBuilder) MustAddEdge(u, v, latency int) {
	if err := b.AddEdge(u, v, latency); err != nil {
		panic(err)
	}
}

// Finalize builds the CSR: counting pass, prefix sum, placement pass,
// with mates linked directly and duplicates rejected by a stamped
// single-array sweep (no sorting, no maps).
func (b *CSRBuilder) Finalize() (*CSR, error) {
	n := b.n
	c := &CSR{n: n, offs: make([]int32, n+1)}
	deg := make([]int32, n)
	for i := range b.us {
		deg[b.us[i]]++
		deg[b.vs[i]]++
	}
	for u := 0; u < n; u++ {
		c.offs[u+1] = c.offs[u] + deg[u]
	}
	total := int(c.offs[n])
	c.nbr = make([]int32, total)
	c.lat = make([]int32, total)
	c.mate = make([]int32, total)
	cursor := deg // reuse: cursor[u] = next free slot of u
	copy(cursor, c.offs[:n])
	for i := range b.us {
		u, v, l := b.us[i], b.vs[i], b.lats[i]
		pu, pv := cursor[u], cursor[v]
		cursor[u]++
		cursor[v]++
		c.nbr[pu], c.lat[pu] = v, l
		c.nbr[pv], c.lat[pv] = u, l
		c.mate[pu], c.mate[pv] = pv, pu
		if int(l) > c.maxLat {
			c.maxLat = int(l)
		}
	}
	// Duplicate sweep: stamp[v] = u+1 while scanning u's list.
	stamp := make([]int32, n)
	for u := 0; u < n; u++ {
		for _, v := range c.NeighborIDs(u) {
			if stamp[v] == int32(u)+1 {
				return nil, fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
			}
			stamp[v] = int32(u) + 1
		}
	}
	return c, nil
}
