package netcheck

import (
	"math/rand/v2"
	"reflect"
	"testing"
	"time"

	"gossip/internal/gossip"
	"gossip/internal/graph"
	"gossip/internal/graphgen"
)

// The tier-1 netcheck: real goroutine-mesh runs of push-pull and flood
// on two graph families, each classified against a simulator-derived
// ICC envelope. `make netcheck` runs exactly these tests. They are the
// only intentionally nondeterministic tests in the repository — the
// envelope tolerances (Dilation, completion horizon) are sized so that
// a healthy run passes with wide margin and a protocol or transport
// regression (stalls, lost completions, wrong spread shape) fails.

func expanderCSR(t *testing.T) *graph.CSR {
	t.Helper()
	rng := rand.New(rand.NewPCG(11, 11))
	g, err := graphgen.RandomRegular(48, 4, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	return g.CSR()
}

func gridCSR() *graph.CSR { return graphgen.Grid(7, 7, 1).CSR() }

func runSpec(t *testing.T, spec Spec) {
	t.Helper()
	rep, err := RunChan(spec)
	if err != nil {
		t.Fatalf("RunChan: %v", err)
	}
	t.Log(rep.String())
	if !rep.Passed() {
		t.Fatalf("netcheck failed:\n%s", rep.String())
	}
}

func TestNetCheckPushPullExpander(t *testing.T) {
	runSpec(t, Spec{
		Name:   "push-pull/expander",
		CSR:    expanderCSR(t),
		Driver: "push-pull",
		Opts:   gossip.DriverOptions{Seed: 100, MaxRounds: 4000},
	})
}

func TestNetCheckPushPullGrid(t *testing.T) {
	runSpec(t, Spec{
		Name:   "push-pull/grid",
		CSR:    gridCSR(),
		Driver: "push-pull",
		Opts:   gossip.DriverOptions{Seed: 200, MaxRounds: 4000},
	})
}

func TestNetCheckFloodExpander(t *testing.T) {
	runSpec(t, Spec{
		Name:   "flood/expander",
		CSR:    expanderCSR(t),
		Driver: "flood",
		Opts:   gossip.DriverOptions{Seed: 300, MaxRounds: 4000},
	})
}

func TestNetCheckFloodGrid(t *testing.T) {
	runSpec(t, Spec{
		Name:   "flood/grid",
		CSR:    gridCSR(),
		Driver: "flood",
		Opts:   gossip.DriverOptions{Seed: 400, MaxRounds: 4000},
	})
}

// TestBuildSimEnvelopeDeterministic pins that the envelope half of the
// harness is exactly as deterministic as the simulator underneath it.
func TestBuildSimEnvelopeDeterministic(t *testing.T) {
	spec := Spec{
		CSR:    gridCSR(),
		Driver: "push-pull",
		Opts:   gossip.DriverOptions{Seed: 5, MaxRounds: 4000},
	}
	a, err := BuildSimEnvelope(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildSimEnvelope(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two envelope builds over the same spec differ")
	}
	if h := Horizon(a); h <= a.RoundsHi {
		t.Fatalf("Horizon %d not above the slowest replica %d", h, a.RoundsHi)
	}
}

// TestCheckResultRejectsIncomplete pins that a real run that never
// informs everyone fails regardless of its curve shape.
func TestCheckResultRejectsIncomplete(t *testing.T) {
	spec := Spec{
		CSR:    gridCSR(),
		Driver: "push-pull",
		Opts:   gossip.DriverOptions{Seed: 5, MaxRounds: 4000},
	}
	env, err := BuildSimEnvelope(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckResult(env, gossip.NetResult{Completed: false, Rounds: 10}); err == nil {
		t.Fatal("incomplete run passed")
	}
}

func TestReportPassed(t *testing.T) {
	if (Report{}).Passed() {
		t.Fatal("empty report passed")
	}
	r := Report{Trials: []TrialResult{{Completed: true}}}
	if !r.Passed() {
		t.Fatal("clean trial failed")
	}
	// Below five trials no outlier is tolerated.
	r.Trials = append(r.Trials, TrialResult{Completed: true, Violation: "x"})
	if r.Passed() {
		t.Fatal("violating trial passed with < 5 trials")
	}
	// At five trials, exactly one envelope outlier is tolerated...
	clean := TrialResult{Completed: true}
	r.Trials = []TrialResult{clean, clean, clean, clean, {Completed: true, Violation: "x"}}
	if !r.Passed() {
		t.Fatal("single outlier among 5 trials failed")
	}
	// ...two are not.
	r.Trials[3].Violation = "y"
	if r.Passed() {
		t.Fatal("two outliers among 5 trials passed")
	}
	// An incomplete trial always fails, outlier budget or not.
	r.Trials = []TrialResult{clean, clean, clean, clean, {Completed: false}}
	if r.Passed() {
		t.Fatal("incomplete trial passed")
	}
}

// TestSpecDefaults pins the documented defaults.
func TestSpecDefaults(t *testing.T) {
	s := Spec{}.withDefaults()
	if s.Replicas != 16 || s.Trials != 5 || s.Round != 2*time.Millisecond {
		t.Fatalf("defaults = %+v", s)
	}
	if s.Envelope.Levels != 32 || s.Envelope.Dilation != 3 || s.Envelope.BandTolerance != 0.2 {
		t.Fatalf("envelope defaults = %+v", s.Envelope)
	}
}
